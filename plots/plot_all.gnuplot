# Renders every reproduced figure from the bench outputs.
# Usage:
#   for b in build/bench/bench_fig*; do $b > plots/$(basename $b).dat; done
#   gnuplot plots/plot_all.gnuplot        # writes plots/fig*.png
set terminal pngcairo size 900,600 font "sans,11"
set datafile commentschars "#"
set key top left

set output "plots/fig04_instantiation.png"
set title "Figure 4: Instantiation times for Mini-OS UDP server"
set xlabel "# of instances"; set ylabel "Milliseconds"
plot "plots/bench_fig04_instantiation.dat" using 1:2 with lines title "boot", \
     "" using 1:3 with lines title "restore", \
     "" using 1:4 with lines title "clone + XS deep copy", \
     "" using 1:5 with lines title "clone"

set output "plots/fig05_density.png"
set title "Figure 5: Memory consumption, booting vs cloning"
set xlabel "# of instances"; set ylabel "Free memory (GB)"
plot "plots/bench_fig05_memory_density.dat" using 1:($2>=0?$2:1/0) with lines title "Booting Hyp free", \
     "" using 1:($3>=0?$3:1/0) with lines title "Booting Dom0 free", \
     "" using 1:($4>=0?$4:1/0) with lines title "Cloning Hyp free", \
     "" using 1:($5>=0?$5:1/0) with lines title "Cloning Dom0 free"

set output "plots/fig06_fork_clone.png"
set title "Figure 6: fork and cloning duration vs memory size"
set xlabel "Memory allocation size (MB)"; set ylabel "Milliseconds"
set logscale xy
plot "plots/bench_fig06_fork_clone_memsize.dat" using 1:2 with linespoints title "process 1st fork", \
     "" using 1:3 with linespoints title "process 2nd fork", \
     "" using 1:4 with linespoints title "Unikraft 1st clone", \
     "" using 1:5 with linespoints title "Unikraft 2nd clone", \
     "" using 1:6 with linespoints title "userspace operations"
unset logscale

set output "plots/fig07_nginx.png"
set title "Figure 7: NGINX HTTP request throughput"
set xlabel "# Workers"; set ylabel "Requests/sec"
set style data histogram; set style fill solid 0.6; set boxwidth 0.3
plot "plots/bench_fig07_nginx_throughput.dat" using 2:xtic(1) title "nginx processes", \
     "" using 4 title "nginx clones"
set style data lines

set output "plots/fig08_redis.png"
set title "Figure 8: Redis database saving times"
set xlabel "Keys number"; set ylabel "Milliseconds"
set logscale y; set logscale x
plot "plots/bench_fig08_redis_save.dat" using ($1+1):2 with linespoints title "VM process fork", \
     "" using ($1+1):3 with linespoints title "VM process save", \
     "" using ($1+1):4 with linespoints title "Unikraft clone", \
     "" using ($1+1):5 with linespoints title "Unikraft save", \
     "" using ($1+1):6 with linespoints title "userspace operations"
unset logscale

set output "plots/fig09_fuzzing.png"
set title "Figure 9: Fuzzing throughput"
set xlabel "Time elapsed (s)"; set ylabel "Throughput (executions/s)"
plot for [i=2:8] "plots/bench_fig09_fuzzing.dat" using 1:i with lines title columnheader(i)

set output "plots/fig10_faas_memory.png"
set title "Figure 10: OpenFaaS memory, containers vs unikernels"
set xlabel "Seconds"; set ylabel "Memory (MB)"
plot "plots/bench_fig10_faas_memory.dat" using 1:2 with lines title "containers", \
     "" using 1:4 with lines title "unikernels"

set output "plots/fig11_faas_scaling.png"
set title "Figure 11: Reaction to increasing function-call demand"
set xlabel "Seconds"; set ylabel "Throughput (reqs/sec)"
plot "plots/bench_fig11_faas_scaling.dat" using 1:2 with steps title "containers", \
     "" using 1:3 with steps title "unikernels"
