#include <gtest/gtest.h>

#include "src/faas/gateway.h"

namespace nephele {
namespace {

SystemConfig FaasSystem() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 1024 * 1024;  // 4 GiB pool for 64 MiB guests
  return cfg;
}

TEST(ContainerBackend, ReadinessLatencies) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  ASSERT_TRUE(backend.Deploy().ok());
  EXPECT_EQ(backend.ScaleUp().code(), StatusCode::kOk);
  EXPECT_EQ(backend.ReadyInstances(), 0u);
  // Nothing is ready before the image pull completes (~33 s) — the early
  // scale-up cannot leapfrog it.
  loop.RunUntil(SimTime(SimDuration::Seconds(30).ns()));
  EXPECT_EQ(backend.ReadyInstances(), 0u);
  loop.RunUntil(SimTime(SimDuration::Seconds(40).ns()));
  EXPECT_EQ(backend.ReadyInstances(), 2u);
  ASSERT_EQ(backend.ReadinessTimes().size(), 2u);
  EXPECT_NEAR(backend.ReadinessTimes()[0], 33.0, 1.0);
}

TEST(ContainerBackend, MemoryStepsPerInstance) {
  EventLoop loop;
  ContainerBackend::Config cfg;
  ContainerBackend backend(loop, cfg);
  EXPECT_EQ(backend.MemoryBytes(), 0u);
  ASSERT_TRUE(backend.Deploy().ok());
  EXPECT_EQ(backend.MemoryBytes(), cfg.first_instance_bytes);
  ASSERT_TRUE(backend.ScaleUp().ok());
  EXPECT_EQ(backend.MemoryBytes(), cfg.first_instance_bytes + cfg.instance_bytes);
}

TEST(ContainerBackend, DeployTwiceRejected) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  ASSERT_TRUE(backend.Deploy().ok());
  EXPECT_EQ(backend.Deploy().code(), StatusCode::kFailedPrecondition);
}

TEST(UnikernelBackend, DeployBootsRealGuest) {
  NepheleSystem system(FaasSystem());
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend backend(guests, UnikernelBackend::Config{});
  ASSERT_TRUE(backend.Deploy().ok());
  system.loop().RunUntil(system.Now() + SimDuration::Seconds(5));
  EXPECT_EQ(backend.ReadyInstances(), 1u);
  EXPECT_EQ(backend.TotalInstances(), 1u);
  // First instance: ~64 MiB VM + ~21 MiB services (Sec. 7.3: 85 MB).
  double mb = static_cast<double>(backend.MemoryBytes()) / (1 << 20);
  EXPECT_GT(mb, 70.0);
  EXPECT_LT(mb, 100.0);
}

TEST(UnikernelBackend, ScaleUpClonesCheaply) {
  NepheleSystem system(FaasSystem());
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend backend(guests, UnikernelBackend::Config{});
  ASSERT_TRUE(backend.Deploy().ok());
  system.loop().RunUntil(system.Now() + SimDuration::Seconds(5));
  double first_mb = static_cast<double>(backend.MemoryBytes()) / (1 << 20);
  ASSERT_TRUE(backend.ScaleUp().ok());
  system.loop().RunUntil(system.Now() + SimDuration::Seconds(5));
  EXPECT_EQ(backend.ReadyInstances(), 2u);
  double per_clone_mb = static_cast<double>(backend.MemoryBytes()) / (1 << 20) - first_mb;
  // Sec. 7.3: "tens of megabytes (35 MB on average)" per additional
  // unikernel instance, vs hundreds for containers.
  EXPECT_GT(per_clone_mb, 20.0);
  EXPECT_LT(per_clone_mb, 60.0);
  // The clone is a real domain in the parent's family.
  ASSERT_EQ(backend.instances().size(), 2u);
  EXPECT_TRUE(system.hypervisor().IsDescendantOf(backend.instances()[1],
                                                 backend.instances()[0]));
}

TEST(Gateway, ScalesWhenLoadExceedsThreshold) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  GatewayConfig gcfg;
  gcfg.query_interval = SimDuration::Seconds(10);
  OpenFaasGateway gateway(loop, backend, gcfg);
  auto result = gateway.Run(SimDuration::Seconds(60), [](double) { return 60.0; });
  // 60 RPS demand / 10 RPS threshold: the autoscaler keeps adding instances.
  EXPECT_GT(backend.TotalInstances(), 3u);
  EXPECT_EQ(result.series.size(), 60u);
}

TEST(Gateway, NoScaleUnderThreshold) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  OpenFaasGateway gateway(loop, backend, GatewayConfig{});
  (void)gateway.Run(SimDuration::Seconds(60), [](double) { return 5.0; });
  EXPECT_EQ(backend.TotalInstances(), 1u);  // just the deployment
}

TEST(Gateway, MaxInstancesCap) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  GatewayConfig gcfg;
  gcfg.max_instances = 3;
  gcfg.query_interval = SimDuration::Seconds(5);
  OpenFaasGateway gateway(loop, backend, gcfg);
  (void)gateway.Run(SimDuration::Seconds(120), [](double) { return 1e6; });
  EXPECT_EQ(backend.TotalInstances(), 3u);
}

TEST(Gateway, ServedTracksCapacity) {
  EventLoop loop;
  ContainerBackend::Config ccfg;
  ccfg.capacity_rps = 600;
  ContainerBackend backend(loop, ccfg);
  GatewayConfig gcfg;
  gcfg.max_instances = 1;  // isolate the capacity model from autoscaling
  OpenFaasGateway gateway(loop, backend, gcfg);
  auto result = gateway.Run(SimDuration::Seconds(40), [](double) { return 1000.0; });
  // Before the first instance is ready nothing is served; afterwards the
  // single instance saturates at its capacity.
  EXPECT_DOUBLE_EQ(result.series[10].served_rps, 0.0);
  EXPECT_DOUBLE_EQ(result.series.back().served_rps, 600.0);
}

TEST(Gateway, UnikernelsReactFasterThanContainers) {
  // The Fig. 11 headline: clones start serving much sooner.
  EventLoop closs;
  ContainerBackend containers(closs, ContainerBackend::Config{});
  OpenFaasGateway cgw(closs, containers, GatewayConfig{});
  auto cres = cgw.Run(SimDuration::Seconds(60), [](double) { return 1450.0; });

  NepheleSystem system(FaasSystem());
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend unikernels(guests, UnikernelBackend::Config{});
  OpenFaasGateway ugw(system.loop(), unikernels, GatewayConfig{});
  auto ures = ugw.Run(SimDuration::Seconds(60), [](double) { return 1450.0; });

  ASSERT_FALSE(cres.readiness_times.empty());
  ASSERT_FALSE(ures.readiness_times.empty());
  EXPECT_LT(ures.readiness_times[0], 5.0);   // ~3 s
  EXPECT_GT(cres.readiness_times[0], 25.0);  // ~33 s
  // Cumulative served requests over the first minute favour unikernels.
  EXPECT_GT(ures.total_served, cres.total_served);
}

}  // namespace
}  // namespace nephele
