#include <gtest/gtest.h>

#include "src/baseline/linux_process.h"
#include "src/base/units.h"

namespace nephele {
namespace {

class LinuxProcessTest : public ::testing::Test {
 protected:
  LinuxProcessTest() : model_(loop_, costs_) {}
  CostModel costs_;
  EventLoop loop_;
  LinuxProcessModel model_;
};

TEST_F(LinuxProcessTest, SpawnCreatesResidentProcess) {
  auto pid = model_.Spawn(16);
  ASSERT_TRUE(pid.ok());
  const auto* p = model_.Find(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->resident_pages, MiBToPages(16));
  EXPECT_FALSE(p->cow_marked);
}

TEST_F(LinuxProcessTest, ForkDuplicatesAndMarksCow) {
  auto pid = model_.Spawn(16);
  auto child = model_.Fork(*pid);
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(model_.Find(*pid)->cow_marked);
  EXPECT_TRUE(model_.Find(*child)->cow_marked);
  EXPECT_EQ(model_.Find(*child)->parent, *pid);
  EXPECT_EQ(model_.Find(*child)->resident_pages, MiBToPages(16));
}

TEST_F(LinuxProcessTest, FirstForkSlowerThanSecond) {
  auto pid = model_.Spawn(1024);
  SimTime t0 = loop_.Now();
  ASSERT_TRUE(model_.Fork(*pid).ok());
  SimDuration first = loop_.Now() - t0;
  SimTime t1 = loop_.Now();
  ASSERT_TRUE(model_.Fork(*pid).ok());
  SimDuration second = loop_.Now() - t1;
  EXPECT_GT(first, second);  // Fig. 6: COW marking happens once
}

TEST_F(LinuxProcessTest, SecondForkMatchesFigureSixAnchor) {
  auto pid = model_.Spawn(4096);
  ASSERT_TRUE(model_.Fork(*pid).ok());
  SimTime t1 = loop_.Now();
  ASSERT_TRUE(model_.Fork(*pid).ok());
  double ms = (loop_.Now() - t1).ToMillis();
  EXPECT_NEAR(ms, 65.2, 6.0);  // paper: 65.2 ms at 4096 MiB
}

TEST_F(LinuxProcessTest, SmallForkIsFast) {
  auto pid = model_.Spawn(1);
  ASSERT_TRUE(model_.Fork(*pid).ok());
  SimTime t1 = loop_.Now();
  ASSERT_TRUE(model_.Fork(*pid).ok());
  double ms = (loop_.Now() - t1).ToMillis();
  EXPECT_LT(ms, 0.2);  // paper: 0.07 ms at 1 MiB
}

TEST_F(LinuxProcessTest, ForkGrowExitLifecycle) {
  auto pid = model_.Spawn(4);
  ASSERT_TRUE(model_.GrowResident(*pid, 4).ok());
  EXPECT_EQ(model_.Find(*pid)->resident_pages, MiBToPages(8));
  ASSERT_TRUE(model_.TouchCowPages(*pid, 16).ok());
  ASSERT_TRUE(model_.Exit(*pid).ok());
  EXPECT_EQ(model_.Find(*pid), nullptr);
  EXPECT_EQ(model_.Fork(*pid).status().code(), StatusCode::kNotFound);
}

TEST(ReuseportGroup, SameFlowSticksToWorker) {
  ReuseportServerGroup group(ReuseportServerGroup::Config{.workers = 4}, 1);
  Packet p;
  p.proto = IpProto::kTcp;
  p.src_ip = 7;
  p.src_port = 1234;
  p.dst_ip = 5;
  p.dst_port = 80;
  SimTime t;
  SimTime first_completion = group.Submit(p, t);
  SimTime second_completion = group.Submit(p, t);
  // Second request on the same flow queues behind the first (same worker).
  EXPECT_GT(second_completion, first_completion);
  EXPECT_EQ(group.requests_served(), 2u);
}

TEST(ReuseportGroup, MoreWorkersMoreParallelism) {
  auto run = [](unsigned workers) {
    ReuseportServerGroup group(ReuseportServerGroup::Config{.workers = workers}, 1);
    SimTime now;
    SimTime last;
    for (std::uint16_t i = 0; i < 400; ++i) {
      Packet p;
      p.proto = IpProto::kTcp;
      p.src_ip = 7;
      p.src_port = static_cast<std::uint16_t>(1000 + i);
      p.dst_ip = 5;
      p.dst_port = 80;
      SimTime done = group.Submit(p, now);
      if (last < done) {
        last = done;
      }
    }
    return last;
  };
  // Makespan shrinks roughly linearly with the worker count.
  SimTime one = run(1);
  SimTime four = run(4);
  EXPECT_LT(four.ns() * 3, one.ns());
}

}  // namespace
}  // namespace nephele
