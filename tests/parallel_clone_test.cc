// Determinism golden tests for the parallel clone engine: the observable
// result of a clone batch — guest memory contents, p2m layout, metrics
// export, trace spans, child ids and virtual time — must be byte-identical
// at every worker-thread count. Only host wall-clock time may change.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

constexpr std::uint8_t kStamp[16] = {0xde, 0xad, 0xbe, 0xef, 9, 8, 7, 6,
                                     5,    4,    3,    2,    1, 0, 1, 2};

// FNV-1a over everything fed in; collision-resistant enough for a golden
// comparison where a mismatch means a real divergence.
class Digest {
 public:
  void Add(const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ = (hash_ ^ p[i]) * 0x100000001b3ull;
    }
  }
  template <typename T>
  void AddValue(T v) {
    Add(&v, sizeof(v));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

// Full observable machine state: every domain's p2m (mfn, role, writability)
// plus the bytes of every mapped frame, in domain/gfn order.
std::uint64_t MemoryDigest(NepheleSystem& sys) {
  Digest d;
  std::uint8_t page[kPageSize];
  for (DomId id : sys.hypervisor().DomainIds()) {
    const Domain* dom = sys.hypervisor().FindDomain(id);
    d.AddValue(id);
    d.AddValue(dom->parent);
    d.AddValue(dom->family_root);
    d.AddValue(dom->vcpus.empty() ? std::uint64_t{0} : dom->vcpus[0].rax);
    for (Gfn gfn = 0; gfn < dom->p2m.size(); ++gfn) {
      const P2mEntry& e = dom->p2m[gfn];
      d.AddValue(gfn);
      d.AddValue(e.mfn);
      d.AddValue(static_cast<int>(e.role));
      d.AddValue(e.writable);
      if (e.mfn != kInvalidMfn) {
        sys.hypervisor().frames().ReadBytes(e.mfn, 0, page, kPageSize);
        d.Add(page, kPageSize);
      }
    }
  }
  d.AddValue(sys.hypervisor().FreePoolFrames());
  return d.value();
}

struct RunResult {
  std::vector<DomId> children;
  std::uint64_t memory = 0;
  std::string metrics;
  std::string trace;
  std::int64_t now_ns = 0;
};

// One fixed workload: boot a parent, stamp a few data pages, clone a batch,
// settle the second stage, then COW-write inside one child.
RunResult RunWorkload(unsigned threads, unsigned batch) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  cfg.clone_worker_threads = threads;
  NepheleSystem sys(cfg);

  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 4;
  dcfg.max_clones = 128;
  dcfg.with_vif = true;
  auto parent = sys.toolstack().CreateDomain(dcfg);
  EXPECT_TRUE(parent.ok());
  sys.Settle();

  const Gfn first_data = static_cast<Gfn>(dcfg.image_text_pages);
  for (Gfn i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        sys.hypervisor().WriteGuestPage(*parent, first_data + i, 0, kStamp, sizeof(kStamp)).ok());
  }

  const Domain* p = sys.hypervisor().FindDomain(*parent);
  auto children =
      sys.clone_engine().Clone({*parent, *parent, p->p2m[p->start_info_gfn].mfn, batch});
  EXPECT_TRUE(children.ok()) << children.status().ToString();
  sys.Settle();

  RunResult r;
  if (children.ok()) {
    r.children = *children;
    if (!r.children.empty()) {
      EXPECT_TRUE(sys.hypervisor()
                      .WriteGuestPage(r.children.front(), first_data, 0, kStamp, sizeof(kStamp))
                      .ok());
    }
  }
  ExpectFrameConsistency(sys);
  r.memory = MemoryDigest(sys);
  r.metrics = sys.metrics().ExportJson();
  r.trace = sys.trace().ExportJson();
  r.now_ns = sys.Now().ns();
  return r;
}

class ParallelCloneDeterminism : public ::testing::TestWithParam<unsigned> {};

// The golden test: batches of 1, 8 and 64 children at 2, 4 and 8 worker
// threads reproduce the serial run bit for bit — same guest memory, same
// p2m, same metrics export, same trace-span sequence, same virtual time.
TEST_P(ParallelCloneDeterminism, ByteIdenticalToSerial) {
  const unsigned batch = GetParam();
  const RunResult serial = RunWorkload(1, batch);
  ASSERT_EQ(serial.children.size(), batch);
  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunResult parallel = RunWorkload(threads, batch);
    EXPECT_EQ(parallel.children, serial.children);
    EXPECT_EQ(parallel.memory, serial.memory) << "guest memory diverged";
    EXPECT_EQ(parallel.metrics, serial.metrics) << "metrics export diverged";
    EXPECT_EQ(parallel.trace, serial.trace) << "trace spans diverged";
    EXPECT_EQ(parallel.now_ns, serial.now_ns) << "virtual time diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, ParallelCloneDeterminism,
                         ::testing::Values(1u, 8u, 64u));

// Repeating the identical workload at the same thread count reproduces
// itself — the baseline the cross-thread comparison relies on.
TEST(ParallelClone, RunsAreReproducibleAtFixedThreadCount) {
  const RunResult a = RunWorkload(4, 8);
  const RunResult b = RunWorkload(4, 8);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
}

// Virtual time charges the batch's critical path: a batch of four costs its
// slowest child (the first, which pays the first-share rate), exactly what a
// single clone of the same parent costs — not four times it.
TEST(ParallelClone, VirtualTimeIsCriticalPathNotSum) {
  auto stage1_ns = [](unsigned batch) {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;
    cfg.clone_worker_threads = 4;
    NepheleSystem sys(cfg);
    DomainConfig dcfg;
    dcfg.name = "parent";
    dcfg.memory_mb = 4;
    dcfg.max_clones = 16;
    auto parent = sys.toolstack().CreateDomain(dcfg);
    EXPECT_TRUE(parent.ok());
    sys.Settle();
    const Domain* p = sys.hypervisor().FindDomain(*parent);
    SimTime before = sys.Now();
    auto children =
        sys.clone_engine().Clone({*parent, *parent, p->p2m[p->start_info_gfn].mfn, batch});
    EXPECT_TRUE(children.ok());
    std::int64_t ns = (sys.Now() - before).ns();
    sys.Settle();
    return ns;
  };
  const std::int64_t one = stage1_ns(1);
  const std::int64_t four = stage1_ns(4);
  EXPECT_GT(one, 0);
  EXPECT_EQ(four, one);
}

// The knob itself: engine getter/setter (with clamping) and the toolstack
// administrative path NepheleSystem wires up.
TEST(ParallelClone, WorkerThreadKnob) {
  NepheleSystem sys;
  EXPECT_EQ(sys.clone_engine().worker_threads(), 1u);
  sys.clone_engine().SetWorkerThreads(4);
  EXPECT_EQ(sys.clone_engine().worker_threads(), 4u);
  sys.clone_engine().SetWorkerThreads(0);  // clamped: 0 means serial
  EXPECT_EQ(sys.clone_engine().worker_threads(), 1u);
  ASSERT_TRUE(sys.toolstack().SetCloneWorkerThreads(8).ok());
  EXPECT_EQ(sys.clone_engine().worker_threads(), 8u);

  SystemConfig cfg;
  cfg.clone_worker_threads = 6;
  NepheleSystem configured(cfg);
  EXPECT_EQ(configured.clone_engine().worker_threads(), 6u);
}

// Reconfiguring the thread count mid-life keeps results identical — the
// pool is torn down and rebuilt transparently on the next batch.
TEST(ParallelClone, ReconfiguringThreadsBetweenBatchesIsTransparent) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  NepheleSystem sys(cfg);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 4;
  dcfg.max_clones = 64;
  auto parent = sys.toolstack().CreateDomain(dcfg);
  ASSERT_TRUE(parent.ok());
  sys.Settle();
  const Domain* p = sys.hypervisor().FindDomain(*parent);
  Mfn si = p->p2m[p->start_info_gfn].mfn;
  for (unsigned threads : {1u, 3u, 8u, 2u}) {
    sys.clone_engine().SetWorkerThreads(threads);
    auto children = sys.clone_engine().Clone({*parent, *parent, si, 4});
    ASSERT_TRUE(children.ok()) << children.status().ToString();
    sys.Settle();
    ExpectFrameConsistency(sys);
  }
  EXPECT_EQ(sys.clone_engine().stats().clones, 16u);
}

}  // namespace
}  // namespace nephele
