#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"

namespace nephele {
namespace {

class GuestTest : public ::testing::Test {
 protected:
  GuestTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomainConfig GuestConfig(const std::string& name) {
    DomainConfig cfg;
    cfg.name = name;
    cfg.max_clones = 16;
    return cfg;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

// --- GuestArena ---

TEST_F(GuestTest, ArenaAllocatesAndTouchesPages) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  GuestContext* ctx = guests_.ContextOf(*dom);
  std::size_t free_bytes = ctx->arena().free_bytes();
  auto block = ctx->arena().Allocate(3 * kPageSize, /*resident=*/true);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(ctx->arena().allocated_bytes(), 3 * kPageSize);
  EXPECT_EQ(ctx->arena().free_bytes(), free_bytes - 3 * kPageSize);
  ASSERT_TRUE(ctx->arena().Free(*block).ok());
  EXPECT_EQ(ctx->arena().free_bytes(), free_bytes);
}

TEST_F(GuestTest, ArenaCoalescesFreedBlocks) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestArena& arena = guests_.ContextOf(*dom)->arena();
  auto a = arena.Allocate(kPageSize, false);
  auto b = arena.Allocate(kPageSize, false);
  auto c = arena.Allocate(kPageSize, false);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(arena.Free(*a).ok());
  ASSERT_TRUE(arena.Free(*c).ok());
  ASSERT_TRUE(arena.Free(*b).ok());  // merges with both neighbours
  // One big block again: a full-capacity allocation succeeds.
  auto all = arena.Allocate(arena.capacity_bytes(), false);
  EXPECT_TRUE(all.ok());
}

TEST_F(GuestTest, ArenaExhaustionReported) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestArena& arena = guests_.ContextOf(*dom)->arena();
  EXPECT_EQ(arena.Allocate(arena.capacity_bytes() + kPageSize, false).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(arena.Allocate(0, false).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GuestTest, ArenaReadWriteThroughGuestPages) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestArena& arena = guests_.ContextOf(*dom)->arena();
  auto block = arena.Allocate(2 * kPageSize, true);
  ASSERT_TRUE(block.ok());
  std::uint32_t v = 0xDEADBEEF;
  ASSERT_TRUE(arena.Write(block->offset + kPageSize - 2, &v, sizeof(v)).ok());  // page-crossing
  std::uint32_t out = 0;
  ASSERT_TRUE(arena.Read(block->offset + kPageSize - 2, &out, sizeof(out)).ok());
  EXPECT_EQ(out, 0xDEADBEEF);
}

// --- MiniStack ---

TEST_F(GuestTest, UdpBindFiltersDelivery) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  MiniStack& stack = guests_.ContextOf(*dom)->net();
  int delivered = 0;
  stack.SetDeliveryHandler([&](const Packet&) { ++delivered; });
  Packet p;
  p.proto = IpProto::kUdp;
  p.dst_port = 7;  // UdpReadyApp bound 7
  stack.OnFrameReceived(p);
  p.dst_port = 9;  // nobody bound
  stack.OnFrameReceived(p);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(stack.packets_dropped(), 1u);
}

TEST_F(GuestTest, TcpSynEstablishesFlowAndReplies) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestContext* ctx = guests_.ContextOf(*dom);
  ASSERT_TRUE(ctx->TcpListen(80).ok());
  MiniStack& stack = ctx->net();
  Packet syn;
  syn.proto = IpProto::kTcp;
  syn.tcp_flag = TcpFlag::kSyn;
  syn.src_ip = MakeIpv4(1, 2, 3, 4);
  syn.src_port = 5555;
  syn.dst_ip = ctx->ip();
  syn.dst_port = 80;
  stack.OnFrameReceived(syn);
  EXPECT_EQ(stack.established_flows(), 1u);
  Packet fin = syn;
  fin.tcp_flag = TcpFlag::kFin;
  stack.OnFrameReceived(fin);
  EXPECT_EQ(stack.established_flows(), 0u);
}

TEST_F(GuestTest, TcpDataToNonListeningPortDropped) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  MiniStack& stack = guests_.ContextOf(*dom)->net();
  Packet data;
  data.proto = IpProto::kTcp;
  data.dst_port = 81;
  stack.OnFrameReceived(data);
  EXPECT_EQ(stack.packets_dropped(), 1u);
}

// --- Boot / restore / fork plumbing ---

TEST_F(GuestTest, LaunchBootsAppAndSendsReady) {
  int ready = 0;
  system_.toolstack().default_switch()->set_uplink_sink([&](const Packet& p) {
    if (p.dst_port == 9999) {
      ++ready;
    }
  });
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  EXPECT_EQ(ready, 1);
  EXPECT_TRUE(guests_.Alive(*dom));
}

TEST_F(GuestTest, RestoreRunsOnBootAgain) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  auto image = system_.toolstack().SaveDomain(*dom);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  int ready = 0;
  system_.toolstack().default_switch()->set_uplink_sink([&](const Packet& p) {
    if (p.dst_port == 9999) {
      ++ready;
    }
  });
  auto restored = guests_.Restore(*image, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(restored.ok());
  system_.Settle();
  EXPECT_EQ(ready, 1);
}

TEST_F(GuestTest, ForkRunsContinuationOnBothSides) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  std::vector<std::pair<DomId, bool>> calls;
  ASSERT_TRUE(guests_.ContextOf(*dom)
                  ->Fork(2,
                         [&](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
                           (void)self;
                           calls.push_back({ctx.id(), r.is_child});
                           if (!r.is_child) {
                             EXPECT_EQ(r.children.size(), 2u);
                           }
                         })
                  .ok());
  system_.Settle();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_TRUE(calls[0].second);
  EXPECT_TRUE(calls[1].second);
  EXPECT_FALSE(calls[2].second);  // parent resumes last
  EXPECT_EQ(calls[2].first, *dom);
}

TEST_F(GuestTest, ChildInheritsAppStateSnapshot) {
  UdpReadyConfig app_cfg;
  app_cfg.src_port = 31337;
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(app_cfg));
  system_.Settle();
  DomId child_id = kDomInvalid;
  ASSERT_TRUE(guests_.ContextOf(*dom)
                  ->Fork(1,
                         [&](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
                           if (r.is_child) {
                             child_id = ctx.id();
                             // The snapshot carries the parent's state.
                             EXPECT_EQ(static_cast<UdpReadyApp&>(self).config().src_port, 31337);
                           }
                         })
                  .ok());
  system_.Settle();
  ASSERT_NE(child_id, kDomInvalid);
  EXPECT_TRUE(guests_.Alive(child_id));
  auto* child_app = dynamic_cast<UdpReadyApp*>(guests_.AppOf(child_id));
  ASSERT_NE(child_app, nullptr);
  EXPECT_EQ(child_app->config().src_port, 31337);
}

TEST_F(GuestTest, ChildStackInheritsBindings) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*dom)->TcpListen(8080).ok());
  DomId child_id = kDomInvalid;
  ASSERT_TRUE(guests_.ContextOf(*dom)
                  ->Fork(1,
                         [&](GuestContext& ctx, GuestApp&, const ForkResult& r) {
                           if (r.is_child) {
                             child_id = ctx.id();
                           }
                         })
                  .ok());
  system_.Settle();
  GuestContext* child_ctx = guests_.ContextOf(child_id);
  ASSERT_NE(child_ctx, nullptr);
  EXPECT_TRUE(child_ctx->net().IsTcpListening(8080));
  EXPECT_TRUE(child_ctx->net().IsUdpBound(7));
}

TEST_F(GuestTest, ChildArenaOperatesOnChildPages) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestContext* parent_ctx = guests_.ContextOf(*dom);
  auto block = parent_ctx->arena().Allocate(kPageSize, true);
  ASSERT_TRUE(block.ok());
  std::uint8_t tag = 0x5C;
  ASSERT_TRUE(parent_ctx->arena().Write(block->offset, &tag, 1).ok());

  DomId child_id = kDomInvalid;
  ASSERT_TRUE(parent_ctx
                  ->Fork(1,
                         [&](GuestContext& ctx, GuestApp&, const ForkResult& r) {
                           if (r.is_child) {
                             child_id = ctx.id();
                           }
                         })
                  .ok());
  system_.Settle();
  GuestContext* child_ctx = guests_.ContextOf(child_id);
  // The child sees the parent's heap contents (COW) ...
  std::uint8_t out = 0;
  ASSERT_TRUE(child_ctx->arena().Read(block->offset, &out, 1).ok());
  EXPECT_EQ(out, 0x5C);
  // ... and its writes do not leak back.
  std::uint8_t other = 0xA1;
  ASSERT_TRUE(child_ctx->arena().Write(block->offset, &other, 1).ok());
  ASSERT_TRUE(guests_.ContextOf(*dom)->arena().Read(block->offset, &out, 1).ok());
  EXPECT_EQ(out, 0x5C);
}

TEST_F(GuestTest, ConcurrentForkRejected) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  // Second fork before the first completes: rejected.
  EXPECT_EQ(guests_.ContextOf(*dom)->Fork(1, nullptr).code(),
            StatusCode::kFailedPrecondition);
  system_.Settle();
  // After settling it works again.
  EXPECT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  system_.Settle();
}

TEST_F(GuestTest, ForkOfUnknownGuestFails) {
  EXPECT_EQ(guests_.Fork(404, 1, nullptr).code(), StatusCode::kNotFound);
}

TEST_F(GuestTest, DestroyRemovesGuestAndDomain) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  EXPECT_FALSE(guests_.Alive(*dom));
  EXPECT_EQ(system_.hypervisor().FindDomain(*dom), nullptr);
  EXPECT_EQ(guests_.Destroy(*dom).code(), StatusCode::kNotFound);
}

TEST_F(GuestTest, GuestTimerRespectsLifetime) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  int fired = 0;
  guests_.ContextOf(*dom)->Post(SimDuration::Millis(5), [&](GuestContext&) { ++fired; });
  guests_.ContextOf(*dom)->Post(SimDuration::Millis(10), [&](GuestContext&) { ++fired; });
  // Destroy before the second timer: its callback must be skipped.
  system_.loop().RunUntil(system_.Now() + SimDuration::Millis(6));
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  system_.Settle();
  EXPECT_EQ(fired, 1);
}

TEST_F(GuestTest, ConsoleWriteVisibleToHost) {
  auto dom = guests_.Launch(GuestConfig("a"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*dom)->ConsoleWrite("hello host\n").ok());
  EXPECT_EQ(*system_.devices().console().Output(*dom), "hello host\n");
}

}  // namespace
}  // namespace nephele
