#include <gtest/gtest.h>

#include "src/hypervisor/hypervisor.h"

namespace nephele {
namespace {

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : hv_(loop_, DefaultCostModel(), SmallConfig()) {}

  static HypervisorConfig SmallConfig() {
    HypervisorConfig cfg;
    cfg.pool_frames = 4096;
    return cfg;
  }

  EventLoop loop_;
  Hypervisor hv_;
};

TEST_F(HypervisorTest, Dom0ExistsAtBoot) {
  const Domain* dom0 = hv_.FindDomain(kDom0);
  ASSERT_NE(dom0, nullptr);
  EXPECT_EQ(dom0->name, "Domain-0");
  EXPECT_EQ(dom0->state, DomainState::kRunning);
}

TEST_F(HypervisorTest, CreateDomainAssignsIds) {
  auto a = hv_.CreateDomain("a", 1);
  auto b = hv_.CreateDomain("b", 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(hv_.FindDomain(*b)->vcpus.size(), 2u);
  EXPECT_EQ(hv_.FindDomain(*a)->family_root, *a);
}

TEST_F(HypervisorTest, CreateDomainRejectsZeroVcpus) {
  EXPECT_EQ(hv_.CreateDomain("x", 0).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HypervisorTest, PopulatePhysmapAllocatesFrames) {
  auto dom = hv_.CreateDomain("a", 1);
  std::size_t free_before = hv_.FreePoolFrames();
  auto gfn = hv_.PopulatePhysmap(*dom, 10, PageRole::kData);
  ASSERT_TRUE(gfn.ok());
  EXPECT_EQ(*gfn, 0u);
  EXPECT_EQ(hv_.FreePoolFrames(), free_before - 10);
  EXPECT_EQ(hv_.FindDomain(*dom)->tot_pages(), 10u);
}

TEST_F(HypervisorTest, PopulatePhysmapRollsBackOnExhaustion) {
  auto dom = hv_.CreateDomain("a", 1);
  std::size_t free_before = hv_.FreePoolFrames();
  auto r = hv_.PopulatePhysmap(*dom, free_before + 1, PageRole::kData);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hv_.FreePoolFrames(), free_before);
  EXPECT_EQ(hv_.FindDomain(*dom)->tot_pages(), 0u);
}

TEST_F(HypervisorTest, SpecialPagesRecorded) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.AllocSpecialPage(*dom, PageRole::kStartInfo).ok());
  ASSERT_TRUE(hv_.AllocSpecialPage(*dom, PageRole::kConsoleRing).ok());
  ASSERT_TRUE(hv_.AllocSpecialPage(*dom, PageRole::kXenstoreRing).ok());
  const Domain* d = hv_.FindDomain(*dom);
  EXPECT_EQ(d->start_info_gfn, 0u);
  EXPECT_EQ(d->console_ring_gfn, 1u);
  EXPECT_EQ(d->xenstore_ring_gfn, 2u);
}

TEST_F(HypervisorTest, GuestReadWriteRoundTrip) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 2, PageRole::kData).ok());
  const char msg[] = "hello";
  ASSERT_TRUE(hv_.WriteGuestPage(*dom, 1, 64, msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(hv_.ReadGuestPage(*dom, 1, 64, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, "hello");
}

TEST_F(HypervisorTest, WriteOutsidePageRejected) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 1, PageRole::kData).ok());
  char b = 0;
  EXPECT_EQ(hv_.WriteGuestPage(*dom, 0, kPageSize, &b, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv_.WriteGuestPage(*dom, 5, 0, &b, 1).code(), StatusCode::kOutOfRange);
}

TEST_F(HypervisorTest, WriteToTextPageDenied) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 1, PageRole::kImageText).ok());
  char b = 0;
  EXPECT_EQ(hv_.WriteGuestPage(*dom, 0, 0, &b, 1).code(), StatusCode::kPermissionDenied);
}

TEST_F(HypervisorTest, BuildPageTablesChargesPrivateFrames) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 1024, PageRole::kData).ok());
  ASSERT_TRUE(hv_.BuildPageTables(*dom).ok());
  const Domain* d = hv_.FindDomain(*dom);
  EXPECT_EQ(d->page_table_frames.size(), PageTablePagesFor(1024));
  EXPECT_EQ(d->p2m_frames.size(), 1u);
  // Rebuild releases the old tables first.
  std::size_t free_mid = hv_.FreePoolFrames();
  ASSERT_TRUE(hv_.BuildPageTables(*dom).ok());
  EXPECT_EQ(hv_.FreePoolFrames(), free_mid);
}

TEST_F(HypervisorTest, DestroyReleasesEverything) {
  std::size_t free_before = hv_.FreePoolFrames();
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 100, PageRole::kData).ok());
  ASSERT_TRUE(hv_.BuildPageTables(*dom).ok());
  ASSERT_TRUE(hv_.DestroyDomain(*dom).ok());
  EXPECT_EQ(hv_.FreePoolFrames(), free_before);
  EXPECT_EQ(hv_.FindDomain(*dom), nullptr);
}

TEST_F(HypervisorTest, Dom0CannotBeDestroyed) {
  EXPECT_EQ(hv_.DestroyDomain(kDom0).code(), StatusCode::kPermissionDenied);
}

TEST_F(HypervisorTest, PauseUnpause) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.UnpauseDomain(*dom).ok());
  EXPECT_EQ(hv_.FindDomain(*dom)->state, DomainState::kRunning);
  ASSERT_TRUE(hv_.PauseDomain(*dom).ok());
  EXPECT_TRUE(hv_.FindDomain(*dom)->IsPaused());
}

TEST_F(HypervisorTest, TouchMarksPagesAndCharges) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*dom, 8, PageRole::kData).ok());
  SimTime before = loop_.Now();
  ASSERT_TRUE(hv_.TouchGuestPages(*dom, 0, 8).ok());
  EXPECT_GT(loop_.Now(), before);
  EXPECT_EQ(hv_.TouchGuestPages(*dom, 5, 10).code(), StatusCode::kOutOfRange);
}

TEST_F(HypervisorTest, GrantAndMap) {
  auto granter = hv_.CreateDomain("g", 1);
  auto mapper = hv_.CreateDomain("m", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*granter, 1, PageRole::kData).ok());
  auto ref = hv_.GrantAccess(*granter, *mapper, 0, false);
  ASSERT_TRUE(ref.ok());
  auto gfn = hv_.MapGrant(*mapper, *granter, *ref);
  ASSERT_TRUE(gfn.ok());
  EXPECT_EQ(*gfn, 0u);
  // A third domain may not map it.
  auto other = hv_.CreateDomain("o", 1);
  EXPECT_EQ(hv_.MapGrant(*other, *granter, *ref).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(hv_.UnmapGrant(*mapper, *granter, *ref).ok());
  EXPECT_TRUE(hv_.EndGrantAccess(*granter, *ref).ok());
}

TEST_F(HypervisorTest, GrantCannotEndWhileMapped) {
  auto granter = hv_.CreateDomain("g", 1);
  auto mapper = hv_.CreateDomain("m", 1);
  ASSERT_TRUE(hv_.PopulatePhysmap(*granter, 1, PageRole::kData).ok());
  auto ref = hv_.GrantAccess(*granter, *mapper, 0, true);
  ASSERT_TRUE(hv_.MapGrant(*mapper, *granter, *ref).ok());
  EXPECT_EQ(hv_.EndGrantAccess(*granter, *ref).code(), StatusCode::kFailedPrecondition);
}

TEST_F(HypervisorTest, EvtchnInterdomainDelivery) {
  auto a = hv_.CreateDomain("a", 1);
  auto b = hv_.CreateDomain("b", 1);
  ASSERT_TRUE(hv_.UnpauseDomain(*a).ok());
  ASSERT_TRUE(hv_.UnpauseDomain(*b).ok());
  auto port_b = hv_.EvtchnAllocUnbound(*b, *a);
  ASSERT_TRUE(port_b.ok());
  auto port_a = hv_.EvtchnBindInterdomain(*a, *b, *port_b);
  ASSERT_TRUE(port_a.ok());
  EvtchnPort fired = kInvalidPort;
  hv_.SetEvtchnHandler(*b, [&](EvtchnPort p) { fired = p; });
  ASSERT_TRUE(hv_.EvtchnSend(*a, *port_a).ok());
  loop_.Run();
  EXPECT_EQ(fired, *port_b);
}

TEST_F(HypervisorTest, EvtchnDeliveryDeferredWhilePaused) {
  auto a = hv_.CreateDomain("a", 1);
  auto b = hv_.CreateDomain("b", 1);
  ASSERT_TRUE(hv_.UnpauseDomain(*a).ok());
  auto port_b = hv_.EvtchnAllocUnbound(*b, *a);
  auto port_a = hv_.EvtchnBindInterdomain(*a, *b, *port_b);
  bool fired = false;
  hv_.SetEvtchnHandler(*b, [&](EvtchnPort) { fired = true; });
  ASSERT_TRUE(hv_.EvtchnSend(*a, *port_a).ok());
  loop_.Run();
  EXPECT_FALSE(fired);  // b is paused; pending bit stays set
  EXPECT_TRUE(hv_.FindDomain(*b)->evtchns.entry(*port_b).pending);
}

TEST_F(HypervisorTest, BindInterdomainChecksReservation) {
  auto a = hv_.CreateDomain("a", 1);
  auto b = hv_.CreateDomain("b", 1);
  auto c = hv_.CreateDomain("c", 1);
  auto port_b = hv_.EvtchnAllocUnbound(*b, *a);  // reserved for a
  EXPECT_EQ(hv_.EvtchnBindInterdomain(*c, *b, *port_b).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HypervisorTest, VirqRoundTrip) {
  auto port = hv_.EvtchnBindVirq(kDom0, Virq::kCloned);
  ASSERT_TRUE(port.ok());
  EvtchnPort fired = kInvalidPort;
  hv_.SetEvtchnHandler(kDom0, [&](EvtchnPort p) { fired = p; });
  ASSERT_TRUE(hv_.RaiseVirq(kDom0, Virq::kCloned).ok());
  loop_.Run();
  EXPECT_EQ(fired, *port);
}

TEST_F(HypervisorTest, VirqWithoutBindingFails) {
  EXPECT_EQ(hv_.RaiseVirq(kDom0, Virq::kCloned).code(), StatusCode::kNotFound);
}

TEST_F(HypervisorTest, FamilyRelations) {
  auto a = hv_.CreateDomain("a", 1);
  auto b = hv_.CreateDomain("b", 1);
  auto c = hv_.CreateDomain("c", 1);
  Domain* db = hv_.FindDomain(*b);
  Domain* dc = hv_.FindDomain(*c);
  db->parent = *a;
  db->family_root = *a;
  hv_.FindDomain(*a)->children.push_back(*b);
  dc->parent = *b;
  dc->family_root = *a;
  db->children.push_back(*c);
  EXPECT_TRUE(hv_.IsDescendantOf(*b, *a));
  EXPECT_TRUE(hv_.IsDescendantOf(*c, *a));
  EXPECT_FALSE(hv_.IsDescendantOf(*a, *b));
  EXPECT_TRUE(hv_.SameFamily(*a, *c));
  EXPECT_FALSE(hv_.SameFamily(*a, kDom0));
}

TEST_F(HypervisorTest, CloneConfigViaDomctl) {
  auto dom = hv_.CreateDomain("a", 1);
  ASSERT_TRUE(hv_.SetCloneConfig(*dom, true, 16).ok());
  EXPECT_TRUE(hv_.FindDomain(*dom)->cloning_enabled);
  EXPECT_EQ(hv_.FindDomain(*dom)->max_clones, 16u);
  EXPECT_EQ(hv_.SetCloneConfig(999, true, 1).code(), StatusCode::kNotFound);
}

TEST_F(HypervisorTest, HypercallsAreCounted) {
  std::uint64_t before = hv_.hypercall_count();
  hv_.ChargeHypercall();
  hv_.ChargeHypercall();
  EXPECT_EQ(hv_.hypercall_count(), before + 2);
}

}  // namespace
}  // namespace nephele
