// Cross-cutting coverage: combined-device guests, save/restore with every
// device type, datapath edge cases, and API misuse paths that the per-module
// suites do not reach.

#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/faas/gateway.h"
#include "src/fuzz/fuzz_session.h"
#include "src/guest/guest_manager.h"
#include "src/xenstore/path.h"

namespace nephele {
namespace {

class CoverageTest : public ::testing::Test {
 protected:
  CoverageTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomainConfig FullConfig(const std::string& name) {
    DomainConfig cfg;
    cfg.name = name;
    cfg.memory_mb = 8;
    cfg.max_clones = 8;
    cfg.with_vif = true;
    cfg.with_p9fs = true;
    cfg.with_vbd = true;
    cfg.vbd_size_mb = 8;
    (void)system_.devices().hostfs().CreateFile(cfg.p9_export + "/seed");
    return cfg;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(CoverageTest, GuestWithEveryDeviceTypeBoots) {
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  EXPECT_NE(gd->net, nullptr);
  EXPECT_NE(gd->p9, nullptr);
  EXPECT_NE(gd->vbd, nullptr);
  EXPECT_TRUE(system_.devices().console().HasConsole(*dom));
}

TEST_F(CoverageTest, CloneWithEveryDeviceType) {
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(*dom)->children.front();
  GuestDevices* cd = system_.toolstack().FindDevices(child);
  ASSERT_NE(cd, nullptr);
  EXPECT_NE(cd->net, nullptr);
  EXPECT_NE(cd->p9, nullptr);
  EXPECT_NE(cd->vbd, nullptr);
  // Xenstore trees cloned for all four device types.
  EXPECT_TRUE(system_.xenstore().Exists(XsFrontendPath(child, "vif", 0)));
  EXPECT_TRUE(system_.xenstore().Exists(XsBackendPath(kDom0, "9pfs", child, 0)));
  EXPECT_TRUE(system_.xenstore().Exists(XsBackendPath(kDom0, "vbd", child, 0)));
  EXPECT_TRUE(system_.xenstore().Exists(XsDomainPath(child) + "/console"));
}

TEST_F(CoverageTest, DestroyFullGuestLeavesNothingBehind) {
  std::size_t free_frames = system_.hypervisor().FreePoolFrames();
  std::size_t entries = system_.xenstore().NumEntries();
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_frames);
  // /local/domain subtree removed; only /vm, /libxl counters differ by
  // their removal too.
  EXPECT_EQ(system_.xenstore().NumEntries(), entries);
  EXPECT_FALSE(system_.devices().vbd().HasDisk(DeviceId{*dom, DeviceType::kVbd, 0}));
}

TEST_F(CoverageTest, RestoreRebuildsEveryDevice) {
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  auto image = system_.toolstack().SaveDomain(*dom);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  auto restored = guests_.Restore(*image, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(restored.ok());
  system_.Settle();
  GuestDevices* gd = system_.toolstack().FindDevices(*restored);
  EXPECT_NE(gd->net, nullptr);
  EXPECT_NE(gd->p9, nullptr);
  EXPECT_NE(gd->vbd, nullptr);
  // Restored domain can clone (config preserved).
  ASSERT_TRUE(guests_.ContextOf(*restored)->Fork(1, nullptr).ok());
  system_.Settle();
  EXPECT_EQ(system_.hypervisor().FindDomain(*restored)->children.size(), 1u);
}

TEST_F(CoverageTest, TxRingBackpressureDropsGracefully) {
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  // Stuff the TX ring without letting the backend drain (no Settle).
  Packet p;
  p.proto = IpProto::kUdp;
  p.src_ip = gd->net->ip();
  p.dst_ip = MakeIpv4(10, 8, 255, 1);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < gd->net->tx_ring().capacity() + 10; ++i) {
    if (gd->net->Send(p).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, gd->net->tx_ring().capacity());
  system_.Settle();  // backend drains everything eventually
  EXPECT_TRUE(gd->net->tx_ring().empty());
}

TEST_F(CoverageTest, RxRingOverflowDropsExcess) {
  auto dom = guests_.Launch(FullConfig("full"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(system_.toolstack().PauseDomain(*dom).ok());  // keep RX pending
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  Vif* vif = system_.devices().netback().FindVif(DeviceId{*dom, DeviceType::kVif, 0});
  for (std::size_t i = 0; i < gd->net->rx_ring().capacity() + 16; ++i) {
    vif->DeliverToGuest(Packet{});
  }
  EXPECT_EQ(gd->net->rx_ring().size(), gd->net->rx_ring().capacity());
}

TEST_F(CoverageTest, EventLoopPendingIntrospection) {
  EventLoop loop;
  EXPECT_FALSE(loop.HasPendingEvents());
  loop.Post(SimDuration::Millis(1), [] {});
  loop.Post(SimDuration::Millis(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.RunUntil(SimTime(SimDuration::Millis(1).ns()));
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_FALSE(loop.HasPendingEvents());
}

TEST_F(CoverageTest, PendingEventDeliveredOnUnpause) {
  Hypervisor& hv = system_.hypervisor();
  auto a = hv.CreateDomain("a", 1);
  auto b = hv.CreateDomain("b", 1);
  (void)hv.UnpauseDomain(*a);
  auto port_b = hv.EvtchnAllocUnbound(*b, *a);
  auto port_a = hv.EvtchnBindInterdomain(*a, *b, *port_b);
  int fired = 0;
  hv.SetEvtchnHandler(*b, [&](EvtchnPort) { ++fired; });
  ASSERT_TRUE(hv.EvtchnSend(*a, *port_a).ok());
  system_.Settle();
  EXPECT_EQ(fired, 0);  // b paused: pending bit set, no upcall
  ASSERT_TRUE(hv.UnpauseDomain(*b).ok());
  system_.Settle();
  EXPECT_EQ(fired, 1);  // delivered on unpause
}

TEST_F(CoverageTest, FuzzSessionZeroDurationIsEmpty) {
  FuzzSessionConfig cfg;
  cfg.mode = FuzzMode::kLinuxProcess;
  cfg.duration = SimDuration::Seconds(0);
  auto result = RunFuzzSession(guests_, cfg);
  EXPECT_EQ(result.total_executions, 0u);
  EXPECT_TRUE(result.series.empty());
}

TEST_F(CoverageTest, GatewayRampDemandScalesGradually) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  GatewayConfig gcfg;
  gcfg.query_interval = SimDuration::Seconds(10);
  OpenFaasGateway gateway(loop, backend, gcfg);
  // Demand ramps 0 -> 100 RPS over 100 s: instances appear progressively.
  auto result = gateway.Run(SimDuration::Seconds(120),
                            [](double t) { return std::min(100.0, t); });
  std::size_t early = result.series[20].instances_total;
  std::size_t late = result.series.back().instances_total;
  EXPECT_GT(late, early);
  EXPECT_GT(late, 3u);
}

TEST_F(CoverageTest, BondWithNoSlavesDropsIngress) {
  Bond bond;
  bond.InjectFromUplink(Packet{});  // must not crash
  EXPECT_EQ(bond.num_ports(), 0u);
}

TEST_F(CoverageTest, CloneBatchSharesSnapshotConsistently) {
  // A 3-way batch: all children see the parent's state at CLONEOP time even
  // though their second stages complete one after another.
  auto dom = guests_.Launch(FullConfig("batch"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestMemoryLayout layout = ComputeGuestLayout(FullConfig("batch"), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  std::uint8_t stamp = 0x77;
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(*dom, gfn, 0, &stamp, 1).ok());
  ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(3, nullptr).ok());
  system_.Settle();
  for (DomId c : system_.hypervisor().FindDomain(*dom)->children) {
    std::uint8_t got = 0;
    ASSERT_TRUE(system_.hypervisor().ReadGuestPage(c, gfn, 0, &got, 1).ok());
    EXPECT_EQ(got, 0x77);
  }
  // Shared frame refcount: parent + 3 children.
  Mfn mfn = system_.hypervisor().FindDomain(*dom)->p2m[gfn].mfn;
  EXPECT_EQ(system_.hypervisor().frames().info(mfn).refcount, 4u);
}

TEST_F(CoverageTest, VbdSurvivesRestoreIndependently) {
  auto dom = guests_.Launch(FullConfig("disky"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  ASSERT_TRUE(gd->vbd->Write(0, {1, 2, 3}).ok());
  auto image = system_.toolstack().SaveDomain(*dom);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(guests_.Destroy(*dom).ok());
  auto restored = guests_.Restore(*image, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(restored.ok());
  system_.Settle();
  // The restored guest gets a FRESH zeroed disk (disk contents are not part
  // of the memory image — matching xl's behaviour for throwaway vbds).
  auto data = system_.toolstack().FindDevices(*restored)->vbd->Read(0, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST_F(CoverageTest, XenstoreEntriesScaleWithDeviceCount) {
  std::size_t before = system_.xenstore().NumEntries();
  DomainConfig lean;
  lean.name = "lean";
  lean.with_vif = false;
  auto lean_dom = guests_.Launch(lean, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  std::size_t lean_entries = system_.xenstore().NumEntries() - before;
  auto full_dom =
      guests_.Launch(FullConfig("fat"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  std::size_t full_entries =
      system_.xenstore().NumEntries() - before - lean_entries;
  EXPECT_GT(full_entries, lean_entries + 15);
  ASSERT_TRUE(lean_dom.ok());
  ASSERT_TRUE(full_dom.ok());
}

}  // namespace
}  // namespace nephele
