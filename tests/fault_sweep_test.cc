// Exhaustive fault-sweep harness (the test half of the fault-injection
// tentpole): drives one clone-family scenario that crosses every registered
// fault point, then re-runs it with a fault armed at each point — first,
// middle and last hit, plus seeded-probability plans — and asserts the
// system-wide safety invariants after every variant:
//
//  * frame conservation: free + allocated == total, no frame both freed and
//    mapped, shared refcounts equal the number of p2m references;
//  * the parent's memory is never corrupted by a failed clone;
//  * after DisarmAll() the same system boots and clones successfully;
//  * destroying every domain returns the pool to its initial size (nothing
//    leaked, nothing double-freed).
//
// The coverage test fails if any registered point is never hit, so a fault
// point added to a subsystem without extending the scenario breaks the
// build's tests rather than silently going unswept.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/idc.h"
#include "src/core/system.h"
#include "src/sched/scheduler.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

constexpr std::uint8_t kPattern[8] = {0xa5, 1, 2, 3, 4, 5, 6, 7};

class FaultSweepTest : public ::testing::Test {
 protected:
  // `workers` > 1 runs the sweep against the parallel clone engine, so every
  // injected failure also exercises rollback of a batch the worker pool was
  // staging.
  static SystemConfig SmallSystem(unsigned workers = 1) {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;  // 256 MiB pool
    cfg.clone_worker_threads = workers;
    return cfg;
  }

  static DomainConfig ParentConfig() {
    DomainConfig cfg;
    cfg.name = "sweep";
    cfg.memory_mb = 4;
    cfg.max_clones = 64;
    cfg.with_vif = true;
    cfg.with_p9fs = true;
    cfg.with_vbd = true;
    cfg.vbd_size_mb = 1;
    return cfg;
  }

  // First data gfn of the guest layout ([0, text) | [text, text+data)).
  static Gfn FirstDataGfn() { return static_cast<Gfn>(ParentConfig().image_text_pages); }

  struct ScenarioRun {
    DomId parent = kDomInvalid;
    bool pattern_written = false;
    std::vector<DomId> children;
  };

  // The clone-family workload. Every step tolerates injected failures — the
  // harness asserts invariants afterwards, not step success.
  static ScenarioRun RunScenario(NepheleSystem& sys) {
    ScenarioRun run;
    Toolstack& ts = sys.toolstack();
    Hypervisor& hv = sys.hypervisor();

    auto parent = ts.CreateDomain(ParentConfig());
    sys.Settle();
    if (!parent.ok()) {
      return run;
    }
    run.parent = *parent;

    // IDC primitives cover the grant and evtchn fault points.
    auto region = IdcRegion::Create(hv, run.parent, 2);
    auto channel = IdcChannel::Create(hv, run.parent);
    if (region.ok()) {
      (void)(*region).StoreU32(run.parent, 0, 0xabcd1234u);
    }
    (void)channel;

    // Dirty a few data pages so clones share real contents.
    bool wrote = true;
    for (Gfn i = 0; i < 4; ++i) {
      wrote = hv.WriteGuestPage(run.parent, FirstDataGfn() + i, 0, kPattern, sizeof(kPattern))
                  .ok() &&
              wrote;
    }
    run.pattern_written = wrote;

    // An explicit transaction covers the txn_commit fault point.
    XenstoreDaemon& xs = sys.xenstore();
    auto txn = xs.TransactionStart();
    if (txn.ok()) {
      (void)xs.TxnWrite(*txn, "/sweep/marker", "1");
      (void)xs.TransactionEnd(*txn, /*commit=*/true);
    }

    // A batch of two clones crosses every stage-1, stage-2 and device point.
    const Domain* d = hv.FindDomain(run.parent);
    if (d != nullptr && d->start_info_gfn != kInvalidGfn) {
      auto children = sys.clone_engine().Clone({run.parent, run.parent,
                                               d->p2m[d->start_info_gfn].mfn, 2});
      sys.Settle();
      if (children.ok()) {
        run.children = *children;
      }
    }

    // Child COW writes and a memory reset (cow_resolve and clone/reset).
    for (DomId c : run.children) {
      if (hv.FindDomain(c) == nullptr) {
        continue;
      }
      (void)hv.WriteGuestPage(c, FirstDataGfn(), 0, kPattern, sizeof(kPattern));
      (void)sys.clone_engine().CloneReset(kDom0, c);
    }
    if (!run.children.empty() && hv.FindDomain(run.children.back()) != nullptr) {
      (void)ts.DestroyDomain(run.children.back());
      sys.Settle();
    }

    // A lazy clone crosses the post-copy points: the guest touch of a still
    // not-present page pokes lazy/demand_fault, and the stream batches (the
    // auto-prefetcher plus the explicit finish) poke lazy/stream. The touch
    // lands before the settle so the prefetcher cannot have won the race.
    d = hv.FindDomain(run.parent);
    if (d != nullptr && d->start_info_gfn != kInvalidGfn) {
      auto lazy_kids = sys.clone_engine().Clone(
          {run.parent, run.parent, d->p2m[d->start_info_gfn].mfn, 1, /*lazy=*/true});
      if (lazy_kids.ok() && !lazy_kids->empty()) {
        const DomId lc = lazy_kids->front();
        if (const Domain* cd = hv.FindDomain(lc); cd != nullptr) {
          // Touch the highest deferred gfn: the stream cursor walks upward,
          // so this page is reliably still not-present.
          for (std::size_t g = cd->p2m.size(); g-- > 0;) {
            if (cd->p2m[g].mfn == kInvalidMfn) {
              (void)hv.TouchGuestPages(lc, static_cast<Gfn>(g), 1);
              break;
            }
          }
        }
        sys.Settle();
        (void)sys.clone_engine().FinishStreaming(lc);
      } else {
        sys.Settle();
      }
    }

    // One more clone keeps the tail of the hit sequence on the clone path,
    // so "last hit" variants land after teardown has already happened once.
    d = hv.FindDomain(run.parent);
    if (d != nullptr && d->start_info_gfn != kInvalidGfn) {
      (void)sys.clone_engine().Clone({run.parent, run.parent, d->p2m[d->start_info_gfn].mfn, 1});
      sys.Settle();
    }
    return run;
  }

  // Frame-table consistency lives in tests/frame_invariants.h (shared with
  // the concurrency stress suite).

  static void ExpectParentPatternIntact(NepheleSystem& sys, const ScenarioRun& run) {
    if (run.parent == kDomInvalid || !run.pattern_written ||
        sys.hypervisor().FindDomain(run.parent) == nullptr) {
      return;
    }
    for (Gfn i = 0; i < 4; ++i) {
      std::uint8_t got[sizeof(kPattern)] = {};
      ASSERT_TRUE(
          sys.hypervisor().ReadGuestPage(run.parent, FirstDataGfn() + i, 0, got, sizeof(got)).ok());
      EXPECT_EQ(std::memcmp(got, kPattern, sizeof(kPattern)), 0)
          << "parent page " << (FirstDataGfn() + i) << " corrupted by faulted clone";
    }
  }

  // One full faulted variant: arm, run, then check every invariant plus
  // recovery (a clean clone after DisarmAll) and leak-free teardown.
  static void RunFaultedVariant(const std::string& point, const FaultSpec& spec,
                                unsigned workers = 1) {
    SCOPED_TRACE("fault point: " + point + ", workers: " + std::to_string(workers));
    NepheleSystem sys(SmallSystem(workers));
    FaultInjector& fi = sys.fault_injector();
    const std::size_t initial_free = sys.hypervisor().FreePoolFrames();

    ASSERT_TRUE(fi.Arm(point, spec).ok()) << "unknown fault point " << point;
    ScenarioRun run = RunScenario(sys);
    fi.DisarmAll();

    ExpectFrameConsistency(sys);
    ExpectParentPatternIntact(sys, run);

    // Recovery: the same system must boot and clone cleanly after the fault.
    DomainConfig cfg = ParentConfig();
    cfg.name = "retry";
    auto retry = sys.toolstack().CreateDomain(cfg);
    sys.Settle();
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    const Domain* d = sys.hypervisor().FindDomain(*retry);
    ASSERT_NE(d, nullptr);
    auto kids =
        sys.clone_engine().Clone({*retry, *retry, d->p2m[d->start_info_gfn].mfn, 1});
    sys.Settle();
    EXPECT_TRUE(kids.ok()) << kids.status().ToString();
    ExpectFrameConsistency(sys);

    // Full teardown restores the pool exactly: nothing leaked, nothing
    // double-freed anywhere in the faulted run.
    std::vector<DomId> doms = sys.hypervisor().DomainIds();
    std::sort(doms.rbegin(), doms.rend());  // children before parents
    for (DomId dom : doms) {
      if (dom == kDom0) {
        continue;
      }
      (void)sys.toolstack().DestroyDomain(dom);
      if (sys.hypervisor().FindDomain(dom) != nullptr) {
        (void)sys.hypervisor().DestroyDomain(dom);
      }
    }
    sys.Settle();
    EXPECT_EQ(sys.hypervisor().FreePoolFrames(), initial_free);
  }

  // Per-point hit counts of the unfaulted scenario; drives nth-hit variants.
  static std::map<std::string, std::uint64_t> BaselineHits(unsigned workers = 1) {
    NepheleSystem sys(SmallSystem(workers));
    RunScenario(sys);
    std::map<std::string, std::uint64_t> hits;
    for (const std::string& name : sys.fault_injector().PointNames()) {
      hits[name] = sys.fault_injector().HitCount(name);
    }
    return hits;
  }
};

// Coverage gate: every registered fault point must be exercised by the
// scenario. A new point that the scenario misses fails here by name.
TEST_F(FaultSweepTest, ScenarioCoversEveryRegisteredPoint) {
  std::map<std::string, std::uint64_t> hits = BaselineHits();
  ASSERT_GE(hits.size(), 20u);
  for (const auto& [name, count] : hits) {
    EXPECT_GT(count, 0u) << "fault point never hit by the sweep scenario: " << name;
  }
}

// The deterministic sweep: a single fault armed at every point, on the
// first, a middle and the last hit of the baseline sequence.
TEST_F(FaultSweepTest, NthHitSweepAcrossAllPoints) {
  std::map<std::string, std::uint64_t> baseline = BaselineHits();
  ASSERT_FALSE(baseline.empty());
  for (const auto& [name, hits] : baseline) {
    std::vector<std::uint64_t> nths = {1};
    if (hits >= 3) {
      nths.push_back(hits / 2 + 1);
    }
    if (hits >= 2) {
      nths.push_back(hits);
    }
    for (std::uint64_t nth : nths) {
      SCOPED_TRACE("nth=" + std::to_string(nth));
      RunFaultedVariant(name, FaultSpec::NthHit(nth));
    }
  }
}

// The seeded stochastic sweep: every point under independent per-poke
// probability, several seeds each. Deterministic per seed.
TEST_F(FaultSweepTest, ProbabilitySweepAcrossAllPointsAndSeeds) {
  std::map<std::string, std::uint64_t> baseline = BaselineHits();
  for (const auto& [name, hits] : baseline) {
    (void)hits;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      RunFaultedVariant(name, FaultSpec::WithProbability(0.3, seed));
    }
  }
}

// The parallel clone engine pokes every fault point in the same order and
// the same number of times as the serial engine: fault determinism does not
// depend on the worker-thread count.
TEST_F(FaultSweepTest, ParallelEngineHitSequenceMatchesSerial) {
  std::map<std::string, std::uint64_t> serial = BaselineHits(/*workers=*/1);
  std::map<std::string, std::uint64_t> parallel = BaselineHits(/*workers=*/4);
  EXPECT_EQ(serial, parallel);
}

// The nth-hit sweep against the parallel engine: every fault point fired at
// the first and the last hit while a 4-worker pool stages the batches, so
// rollback must unwind children that workers had already (partially) built.
TEST_F(FaultSweepTest, NthHitSweepAcrossAllPointsParallelEngine) {
  std::map<std::string, std::uint64_t> baseline = BaselineHits(/*workers=*/4);
  ASSERT_FALSE(baseline.empty());
  for (const auto& [name, hits] : baseline) {
    std::vector<std::uint64_t> nths = {1};
    if (hits >= 2) {
      nths.push_back(hits);
    }
    for (std::uint64_t nth : nths) {
      SCOPED_TRACE("nth=" + std::to_string(nth));
      RunFaultedVariant(name, FaultSpec::NthHit(nth), /*workers=*/4);
    }
  }
}

// The stochastic sweep against the parallel engine, one seed per point.
TEST_F(FaultSweepTest, ProbabilitySweepAcrossAllPointsParallelEngine) {
  std::map<std::string, std::uint64_t> baseline = BaselineHits(/*workers=*/4);
  for (const auto& [name, hits] : baseline) {
    (void)hits;
    SCOPED_TRACE("point=" + name);
    RunFaultedVariant(name, FaultSpec::WithProbability(0.3, 5), /*workers=*/4);
  }
}

// A multi-point plan behaves like its parts and resets with DisarmAll.
TEST_F(FaultSweepTest, FaultPlanArmsMultiplePoints) {
  NepheleSystem sys(SmallSystem());
  FaultPlan plan;
  plan.Add("xenstore/request", FaultSpec::WithProbability(0.02, 11))
      .Add("hypervisor/frame_alloc", FaultSpec::WithProbability(0.01, 12));
  ASSERT_TRUE(sys.fault_injector().LoadPlan(plan).ok());
  RunScenario(sys);
  sys.fault_injector().DisarmAll();
  ExpectFrameConsistency(sys);

  // Unknown names fail loudly instead of never injecting.
  FaultPlan typo;
  typo.Add("xenstore/reqest", FaultSpec::NthHit(1));
  EXPECT_FALSE(sys.fault_injector().LoadPlan(typo).ok());
}

// Byte-determinism: the same plan against the same workload produces the
// identical metrics export; a different seed produces a different run.
TEST_F(FaultSweepTest, FaultedRunsAreByteDeterministic) {
  auto run_with_seed = [](std::uint64_t seed) {
    NepheleSystem sys(SmallSystem());
    FaultPlan plan;
    plan.Add("hypervisor/frame_alloc", FaultSpec::WithProbability(0.05, seed))
        .Add("xenstore/request", FaultSpec::WithProbability(0.02, seed ^ 0x9e3779b9u));
    EXPECT_TRUE(sys.fault_injector().LoadPlan(plan).ok());
    RunScenario(sys);
    return sys.metrics().ExportJson();
  };
  const std::string a = run_with_seed(7);
  const std::string b = run_with_seed(7);
  EXPECT_EQ(a, b) << "same seed must reproduce the run byte for byte";

  // Seed-sensitivity, asserted on the raw firing pattern (the scenario may
  // fail at the same early hit for two seeds, so whole-run output is not a
  // reliable discriminator).
  auto pattern_for = [](std::uint64_t seed) {
    FaultInjector inj;
    FaultPoint* p = inj.GetPoint("probe");
    EXPECT_TRUE(inj.Arm("probe", FaultSpec::WithProbability(0.5, seed)).ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += p->Poke().ok() ? '.' : 'X';
    }
    return pattern;
  };
  EXPECT_EQ(pattern_for(7), pattern_for(7));
  EXPECT_NE(pattern_for(7), pattern_for(8)) << "seed must alter the draw sequence";
}

// --- Clone-scheduler fault points -----------------------------------------
//
// The scheduler registers its points (sched/admit, sched/dispatch,
// sched/park) only when one is constructed, so the main coverage gate never
// sees them; this section sweeps them with a dedicated scheduler workload:
// a cold batched acquire, releases back into the warm pool, and a warm
// re-acquire — crossing admit, dispatch and park on every run.

class SchedFaultSweepTest : public FaultSweepTest {
 protected:
  static void RunSchedScenario(NepheleSystem& sys, CloneScheduler& sched) {
    auto parent = sys.toolstack().CreateDomain(ParentConfig());
    sys.Settle();
    if (!parent.ok()) {
      return;
    }
    std::vector<DomId> granted;
    auto collect = [&granted](Result<DomId> r) {
      if (r.ok()) {
        granted.push_back(*r);
      }
    };
    (void)sched.Acquire({kDom0, *parent, kInvalidMfn, 2}, collect);
    sys.Settle();
    for (DomId child : granted) {
      (void)sched.Release(child);
    }
    (void)sched.Acquire({kDom0, *parent, kInvalidMfn, 1}, collect);
    sys.Settle();
    if (!granted.empty()) {
      (void)sched.Release(granted.back());
    }
  }

  static void RunSchedFaultedVariant(const std::string& point, const FaultSpec& spec) {
    SCOPED_TRACE("sched fault point: " + point);
    NepheleSystem sys(SmallSystem());
    CloneScheduler sched(sys);
    const std::size_t initial_free = sys.hypervisor().FreePoolFrames();
    ASSERT_TRUE(sys.fault_injector().Arm(point, spec).ok()) << "unknown fault point " << point;
    RunSchedScenario(sys, sched);
    sys.fault_injector().DisarmAll();
    ExpectFrameConsistency(sys);

    // Recovery: the same scheduler must serve a fresh acquire cleanly.
    DomainConfig cfg = ParentConfig();
    cfg.name = "retry";
    auto retry = sys.toolstack().CreateDomain(cfg);
    sys.Settle();
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    bool granted = false;
    ASSERT_TRUE(sched
                    .Acquire({kDom0, *retry, kInvalidMfn, 1},
                             [&granted](Result<DomId> r) { granted = r.ok(); })
                    .ok());
    sys.Settle();
    EXPECT_TRUE(granted);
    ExpectFrameConsistency(sys);

    // Drain the pool, then full teardown restores the frame pool exactly.
    sched.DrainAll();
    sys.Settle();
    std::vector<DomId> doms = sys.hypervisor().DomainIds();
    std::sort(doms.rbegin(), doms.rend());
    for (DomId dom : doms) {
      if (dom == kDom0) {
        continue;
      }
      (void)sys.toolstack().DestroyDomain(dom);
      if (sys.hypervisor().FindDomain(dom) != nullptr) {
        (void)sys.hypervisor().DestroyDomain(dom);
      }
    }
    sys.Settle();
    EXPECT_EQ(sys.hypervisor().FreePoolFrames(), initial_free);
  }
};

// Coverage gate for the scheduler's own points: the sched workload must hit
// all three.
TEST_F(SchedFaultSweepTest, SchedScenarioCoversSchedPoints) {
  NepheleSystem sys(SmallSystem());
  CloneScheduler sched(sys);
  RunSchedScenario(sys, sched);
  for (const char* point : {"sched/admit", "sched/dispatch", "sched/park"}) {
    EXPECT_GT(sys.fault_injector().HitCount(point), 0u)
        << "sched fault point never hit by the sched sweep scenario: " << point;
  }
}

// Deterministic nth-hit sweep of every sched point: first and second hit.
TEST_F(SchedFaultSweepTest, NthHitSweepAcrossSchedPoints) {
  for (const char* point : {"sched/admit", "sched/dispatch", "sched/park"}) {
    for (std::uint64_t nth : {1u, 2u}) {
      SCOPED_TRACE("nth=" + std::to_string(nth));
      RunSchedFaultedVariant(point, FaultSpec::NthHit(nth));
    }
  }
}

// Seeded stochastic sweep of the sched points.
TEST_F(SchedFaultSweepTest, ProbabilitySweepAcrossSchedPoints) {
  for (const char* point : {"sched/admit", "sched/dispatch", "sched/park"}) {
    for (std::uint64_t seed : {1u, 2u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      RunSchedFaultedVariant(point, FaultSpec::WithProbability(0.4, seed));
    }
  }
}

// fault/injected in the shared registry mirrors the injector's own total.
TEST_F(FaultSweepTest, InjectedCounterMirrorsRegistry) {
  NepheleSystem sys(SmallSystem());
  ASSERT_TRUE(sys.fault_injector().Arm("toolstack/create_domain", FaultSpec::NthHit(1)).ok());
  RunScenario(sys);
  EXPECT_GE(sys.fault_injector().injected_total(), 1u);
  EXPECT_EQ(sys.metrics().GetCounter("fault/injected").value(),
            sys.fault_injector().injected_total());
}

}  // namespace
}  // namespace nephele
