// Metric-naming audit: every name a fully-exercised system registers must
// follow the `subsystem/metric` convention — lowercase [a-z0-9_] path
// segments, at least two of them — and belong to a known subsystem. The
// TSDB collector samples metrics BY NAME into series and the alarm engine
// addresses them declaratively, so a malformed or misplaced name silently
// breaks dashboards and rules; this test turns that into a build failure.

#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <string>

#include "src/core/system.h"
#include "src/load/dispatch.h"
#include "src/load/load_gen.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/feedback.h"
#include "src/sched/scheduler.h"
#include "src/toolstack/domain_config.h"

namespace nephele {
namespace {

// Construct and exercise every metric-registering subsystem so AllNames()
// sees the full surface: system (hypervisor, xenstore, toolstack, clone
// engine, xencloned, fault injector), scheduler + feedback, TSDB + alarms,
// and the request layer (load generator + request-cloning dispatcher).
void ExerciseEverything(NepheleSystem& sys) {
  TsdbCollector tsdb(sys.metrics(), sys.loop(), sys.config().tsdb);
  AlarmEngine alarms(tsdb, sys.metrics());
  for (const AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }
  CloneScheduler sched(sys);
  SchedulerAlarmFeedback feedback(alarms, sched);
  LoadGenerator generator(sys);
  RequestCloneDispatcher dispatcher(sys, sched);

  DomainConfig cfg;
  cfg.name = "audit";
  cfg.max_clones = 8;
  auto parent = sys.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(parent.ok());
  sys.Settle();
  const Domain* d = sys.hypervisor().FindDomain(*parent);
  auto children = sys.clone_engine().Clone({*parent, *parent, d->p2m[d->start_info_gfn].mfn, 2});
  ASSERT_TRUE(children.ok());
  sys.Settle();
  ASSERT_TRUE(sys.clone_engine().CloneReset(kDom0, children->front()).ok());
  DomId got = kDomInvalid;
  (void)sched.Acquire({kDom0, *parent, kInvalidMfn, 1},
                      [&got](Result<DomId> r) { got = r.ok() ? *r : kDomInvalid; });
  sys.Settle();
  if (got != kDomInvalid) {
    (void)sched.Release(got);
    sys.Settle();
  }
  dispatcher.SetParent(*parent);
  generator.Start(SimDuration::Millis(50),
                  [&dispatcher](const LoadRequest& r) { dispatcher.Submit(r); });
  sys.Settle();
  tsdb.ScheduleTicks(2);
  sys.Settle();
}

TEST(MetricNamesTest, EveryNameIsSubsystemSlashMetric) {
  NepheleSystem sys;
  ExerciseEverything(sys);
  const std::regex shape("^[a-z0-9_]+(/[a-z0-9_]+)+$");
  for (const std::string& name : sys.metrics().AllNames()) {
    EXPECT_TRUE(std::regex_match(name, shape))
        << "metric '" << name << "' violates the subsystem/metric naming convention";
  }
}

TEST(MetricNamesTest, EverySubsystemPrefixIsKnown) {
  NepheleSystem sys;
  ExerciseEverything(sys);
  const std::set<std::string> known = {"alarm",  "clone",      "cow",  "fault",
                                       "hypervisor", "load",   "req",  "sched",
                                       "toolstack",  "tsdb",   "xencloned",
                                       "xenstore"};
  for (const std::string& name : sys.metrics().AllNames()) {
    const std::string prefix = name.substr(0, name.find('/'));
    EXPECT_TRUE(known.count(prefix) == 1)
        << "metric '" << name << "' claims unknown subsystem '" << prefix
        << "'; add the subsystem to this allowlist deliberately or fix the name";
  }
}

// The scheduler's names are the ones the TSDB alarms and the fig11 bench
// address literally: lock the exact set so a rename cannot slip through.
TEST(MetricNamesTest, SchedulerNameSetIsExact) {
  NepheleSystem sys;
  ExerciseEverything(sys);
  std::set<std::string> sched_names;
  for (const std::string& name : sys.metrics().AllNames()) {
    if (name.rfind("sched/", 0) == 0) {
      sched_names.insert(name);
    }
  }
  const std::set<std::string> expected = {
      "sched/batch_failures",     "sched/batch_size",
      "sched/batches_dispatched", "sched/eviction_frozen",
      "sched/evictions",          "sched/evictions_pressure",
      "sched/feedback_transitions", "sched/lazy_stream_finishes",
      "sched/lazy_streamed_pages", "sched/parked_total",
      "sched/queue_depth",        "sched/rejected_queue_full",
      "sched/requests_total",     "sched/reset_fallback_destroys",
      "sched/stale_pool_drops",   "sched/timeouts",
      "sched/wait_ns",            "sched/warm_grant_ns",
      "sched/warm_hits",          "sched/warm_misses",
      "sched/warm_pool_size"};
  EXPECT_EQ(sched_names, expected);
}

// Same lock for the request layer: the req_tail alarm and the fig12 bench
// address these names literally.
TEST(MetricNamesTest, RequestLayerNameSetsAreExact) {
  NepheleSystem sys;
  ExerciseEverything(sys);
  std::set<std::string> load_names;
  std::set<std::string> req_names;
  for (const std::string& name : sys.metrics().AllNames()) {
    if (name.rfind("load/", 0) == 0) {
      load_names.insert(name);
    } else if (name.rfind("req/", 0) == 0) {
      req_names.insert(name);
    }
  }
  const std::set<std::string> expected_load = {
      "load/generated", "load/interarrival_ns", "load/state_switches"};
  const std::set<std::string> expected_req = {
      "req/cancelled",  "req/dispatched",     "req/failed",
      "req/in_flight",  "req/latency_ns",     "req/latency_p99_ns",
      "req/rejected",   "req/service_ns",     "req/submitted",
      "req/wins"};
  EXPECT_EQ(load_names, expected_load);
  EXPECT_EQ(req_names, expected_req);
}

}  // namespace
}  // namespace nephele
