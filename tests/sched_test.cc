#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/dst/executor.h"
#include "src/dst/scenario.h"
#include "src/fault/fault.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/feedback.h"
#include "src/sched/scheduler.h"

namespace nephele {
namespace {

// Exercises the CloneScheduler control plane over a fully wired system: the
// batching window, warm pool, admission control and timeout paths all run on
// the system's deterministic event loop against the real clone pipeline.
class SchedTest : public ::testing::Test {
 protected:
  SchedTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;  // 1 GiB pool
    return cfg;
  }

  DomId BootCloneable(std::uint32_t max_clones = 64) {
    DomainConfig cfg;
    cfg.name = "parent";
    cfg.memory_mb = 4;
    cfg.max_clones = max_clones;
    cfg.with_vif = true;
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok());
    return *dom;
  }

  // A scheduler over system_ with explicit knobs (services — metrics, trace,
  // faults — still come from the system so counters land in its registry).
  std::unique_ptr<CloneScheduler> MakeScheduler(SchedulerConfig cfg) {
    return std::make_unique<CloneScheduler>(system_.hypervisor(), system_.clone_engine(),
                                            system_.toolstack(), system_.loop(), cfg,
                                            system_.services());
  }

  CloneRequest Req(DomId parent, unsigned n = 1) { return {kDom0, parent, kInvalidMfn, n}; }

  // Acquire that records every grant into `out` (errors are appended as
  // kDomInvalid so tests can count failures positionally).
  Status AcquireInto(CloneScheduler& sched, DomId parent, unsigned n,
                     std::vector<DomId>* out, std::vector<Status>* errors = nullptr) {
    return sched.Acquire(Req(parent, n), [out, errors](Result<DomId> r) {
      if (r.ok()) {
        out->push_back(*r);
      } else {
        out->push_back(kDomInvalid);
        if (errors != nullptr) errors->push_back(r.status());
      }
    });
  }

  std::uint64_t CounterValue(const std::string& name) {
    return system_.metrics().CounterValue(name);
  }

  NepheleSystem system_;
};

TEST_F(SchedTest, BatchingCoalescesWithinWindow) {
  auto sched = MakeScheduler({});
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  ASSERT_TRUE(AcquireInto(*sched, parent, 2, &granted).ok());
  EXPECT_EQ(sched->QueueDepth(parent), 3u);
  system_.Settle();

  // Both acquires landed inside one window: a single 3-child batch.
  ASSERT_EQ(granted.size(), 3u);
  for (DomId child : granted) {
    const Domain* d = system_.hypervisor().FindDomain(child);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->parent, parent);
  }
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 1u);
  EXPECT_EQ(CounterValue("clone/batches_total"), 1u);
  EXPECT_EQ(CounterValue("clone/clones_total"), 3u);
  EXPECT_EQ(sched->QueueDepth(parent), 0u);
}

TEST_F(SchedTest, WindowBoundaryDispatchesSeparately) {
  auto sched = MakeScheduler({});
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  system_.Settle();  // first window expires and the batch completes
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  system_.Settle();

  ASSERT_EQ(granted.size(), 2u);
  EXPECT_NE(granted[0], granted[1]);
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 2u);
  EXPECT_EQ(CounterValue("clone/batches_total"), 2u);
}

TEST_F(SchedTest, MaxBatchTriggersImmediateDispatch) {
  SchedulerConfig cfg;
  cfg.batch_window = SimDuration::Seconds(3600);  // would never expire
  cfg.max_batch = 2;
  auto sched = MakeScheduler(cfg);
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 2, &granted).ok());
  system_.Settle();

  // Reaching max_batch dispatched without waiting out the window.
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 1u);
  EXPECT_LT(system_.Now(), SimTime() + SimDuration::Seconds(3600));
}

TEST_F(SchedTest, WarmPoolHitMissEvict) {
  SchedulerConfig cfg;
  cfg.warm_pool_capacity = 1;
  auto sched = MakeScheduler(cfg);
  DomId parent = BootCloneable();
  std::vector<DomId> cold;
  ASSERT_TRUE(AcquireInto(*sched, parent, 2, &cold).ok());
  system_.Settle();
  ASSERT_EQ(cold.size(), 2u);
  EXPECT_EQ(CounterValue("sched/warm_misses"), 2u);

  // Park both: the second park overflows capacity 1 and evicts the first
  // (LRU) child.
  auto r0 = sched->Release(cold[0]);
  ASSERT_TRUE(r0.ok());
  EXPECT_TRUE(r0->parked);
  EXPECT_TRUE(r0->reset_applied);
  auto r1 = sched->Release(cold[1]);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->parked);
  EXPECT_EQ(sched->WarmPoolSize(parent), 1u);
  EXPECT_EQ(CounterValue("sched/evictions"), 1u);
  EXPECT_EQ(system_.hypervisor().FindDomain(cold[0]), nullptr);  // evicted
  ASSERT_NE(system_.hypervisor().FindDomain(cold[1]), nullptr);  // parked

  // Next acquire is served warm — from the pool, no new clone batch.
  std::vector<DomId> warm;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &warm).ok());
  system_.Settle();
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0], cold[1]);
  EXPECT_EQ(CounterValue("sched/warm_hits"), 1u);
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 1u);  // unchanged
  EXPECT_EQ(sched->WarmPoolSize(parent), 0u);

  // Pool drained: the following acquire goes cold again.
  std::vector<DomId> cold2;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &cold2).ok());
  system_.Settle();
  ASSERT_EQ(cold2.size(), 1u);
  EXPECT_EQ(CounterValue("sched/warm_misses"), 3u);
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 2u);
}

TEST_F(SchedTest, ReleaseRefusesNonClonesAndDoubleParks) {
  auto sched = MakeScheduler({});
  DomId parent = BootCloneable();
  EXPECT_EQ(sched->Release(parent).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sched->Release(DomId{999}).status().code(), StatusCode::kNotFound);

  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  system_.Settle();
  ASSERT_TRUE(sched->Release(granted[0]).ok());
  EXPECT_EQ(sched->Release(granted[0]).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SchedTest, QueueFullRejectsTyped) {
  SchedulerConfig cfg;
  cfg.max_queue_depth = 2;
  auto sched = MakeScheduler(cfg);
  DomId parent = BootCloneable();
  std::vector<DomId> granted;

  // A request larger than the queue is rejected wholesale, synchronously.
  Status too_big = AcquireInto(*sched, parent, 3, &granted);
  EXPECT_EQ(too_big.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(granted.empty());

  // Fill the queue, then one more is refused while the window is pending.
  ASSERT_TRUE(AcquireInto(*sched, parent, 2, &granted).ok());
  Status overflow = AcquireInto(*sched, parent, 1, &granted);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue("sched/rejected_queue_full"), 2u);

  // The accepted request still completes normally.
  system_.Settle();
  EXPECT_EQ(granted.size(), 2u);
}

TEST_F(SchedTest, TimeoutFailsQueuedRequestWithAborted) {
  SchedulerConfig cfg;
  cfg.batch_window = SimDuration::Seconds(3600);  // never dispatches in time
  cfg.request_timeout = SimDuration::Millis(10);
  auto sched = MakeScheduler(cfg);
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  std::vector<Status> errors;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted, &errors).ok());
  system_.Settle();

  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code(), StatusCode::kAborted);
  EXPECT_EQ(CounterValue("sched/timeouts"), 1u);
  EXPECT_EQ(sched->QueueDepth(parent), 0u);
  EXPECT_EQ(CounterValue("sched/batches_dispatched"), 0u);
}

TEST_F(SchedTest, ResetFailureFallsBackToDestroy) {
  auto sched = MakeScheduler({});
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  system_.Settle();
  ASSERT_EQ(granted.size(), 1u);

  ASSERT_TRUE(system_.fault_injector().Arm("clone/reset", FaultSpec::NthHit(1)).ok());
  auto outcome = sched->Release(granted[0]);
  system_.fault_injector().DisarmAll();

  // Release still succeeds, but the dirty child was destroyed, not parked.
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->parked);
  EXPECT_FALSE(outcome->reset_applied);
  EXPECT_EQ(CounterValue("sched/reset_fallback_destroys"), 1u);
  EXPECT_EQ(sched->WarmPoolSize(parent), 0u);
  EXPECT_EQ(system_.hypervisor().FindDomain(granted[0]), nullptr);
}

TEST_F(SchedTest, PressureWatermarkEvicts) {
  SchedulerConfig cfg;
  // Dom0 can never be this free while guests are running, so every park is
  // immediately reclaimed by the pressure sweep.
  cfg.dom0_low_watermark_bytes = Toolstack::kDom0TotalBytes;
  auto sched = MakeScheduler(cfg);
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 1, &granted).ok());
  system_.Settle();

  auto outcome = sched->Release(granted[0]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reset_applied);  // reset ran before the sweep
  EXPECT_FALSE(outcome->parked);        // ... but the sweep took it back
  EXPECT_GE(CounterValue("sched/evictions_pressure"), 1u);
  EXPECT_EQ(sched->TotalPooled(), 0u);
}

TEST_F(SchedTest, AcquireValidatesRequest) {
  auto sched = MakeScheduler({});
  DomId parent = BootCloneable();
  std::vector<DomId> granted;
  EXPECT_EQ(AcquireInto(*sched, parent, 0, &granted).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AcquireInto(*sched, DomId{777}, 1, &granted).code(), StatusCode::kNotFound);
  EXPECT_TRUE(granted.empty());
}

TEST_F(SchedTest, DrainAllFailsQueuedAndDestroysParked) {
  SchedulerConfig cfg;
  cfg.batch_window = SimDuration::Seconds(3600);
  cfg.request_timeout = SimDuration::Seconds(7200);
  auto sched = MakeScheduler(cfg);
  DomId parent_a = BootCloneable();
  DomId parent_b = BootCloneable();

  // One parked child of parent A...
  std::vector<DomId> granted;
  {
    auto warmup = MakeScheduler({});
    ASSERT_TRUE(AcquireInto(*warmup, parent_a, 1, &granted).ok());
    system_.Settle();
  }
  ASSERT_EQ(granted.size(), 1u);
  ASSERT_TRUE(sched->Release(granted[0]).ok());

  // ... and one queued request for parent B (no pool, never dispatches).
  std::vector<DomId> queued;
  std::vector<Status> errors;
  ASSERT_TRUE(AcquireInto(*sched, parent_b, 1, &queued, &errors).ok());

  sched->DrainAll();
  system_.Settle();
  EXPECT_EQ(sched->TotalPooled(), 0u);
  EXPECT_EQ(sched->TotalQueued(), 0u);
  EXPECT_EQ(system_.hypervisor().FindDomain(granted[0]), nullptr);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].code(), StatusCode::kAborted);
}

// The full telemetry feedback loop, end to end on sim time: a capacity-1
// warm pool thrashes (every round parks two children and evicts one), the
// TSDB samples the eviction rate, the warm_pool_thrash alarm raises after
// its hysteresis streak, and SchedulerAlarmFeedback measurably changes the
// scheduler — eviction freezes (the pool grows past capacity) and the batch
// window stretches by thrash_window_multiplier. When the eviction rate goes
// quiet the alarm clears, the feedback disengages, and the unfreeze catch-up
// sweep trims the pool back to capacity.
TEST_F(SchedTest, ThrashAlarmFreezesEvictionAndWidensWindow) {
  TsdbConfig tcfg;
  tcfg.tick_interval = SimDuration::Millis(1);
  tcfg.ring_capacity = 16;
  TsdbCollector tsdb(system_.metrics(), system_.loop(), tcfg);
  AlarmEngine alarms(tsdb, system_.metrics());
  for (const AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }

  SchedulerConfig cfg;
  cfg.warm_pool_capacity = 1;
  auto sched = MakeScheduler(cfg);
  SchedulerAlarmFeedback feedback(alarms, *sched);

  DomId parent = BootCloneable();
  const SimDuration base_window = sched->effective_batch_window();

  // Thrash until the alarm engages: one eviction per TSDB tick is a rate of
  // 1.0/tick, far above the 0.5 raise threshold. raise_after=2 makes the
  // engage land deterministically within a handful of rounds.
  int rounds = 0;
  while (!sched->eviction_frozen() && rounds < 8) {
    std::vector<DomId> granted;
    ASSERT_TRUE(AcquireInto(*sched, parent, 2, &granted).ok());
    system_.Settle();
    ASSERT_EQ(granted.size(), 2u);
    for (DomId child : granted) {
      ASSERT_NE(child, kDomInvalid);
      (void)sched->Release(child);
    }
    tsdb.ScheduleTicks(1);
    system_.Settle();
    ++rounds;
  }
  ASSERT_TRUE(sched->eviction_frozen()) << "alarm never engaged after " << rounds
                                        << " thrash rounds";
  EXPECT_EQ(sched->batch_window_scale(), sched->config().thrash_window_multiplier);
  EXPECT_EQ(sched->effective_batch_window().ns(),
            (base_window * sched->config().thrash_window_multiplier).ns());
  EXPECT_EQ(system_.metrics().GaugeValue("sched/eviction_frozen"), 1);
  EXPECT_EQ(CounterValue("sched/feedback_transitions"), 1u);
  EXPECT_EQ(CounterValue("alarm/warm_pool_thrash/raised_total"), 1u);
  EXPECT_EQ(system_.metrics().GaugeValue("alarm/warm_pool_thrash/state"), 1);

  // While frozen, Release parks unconditionally: the pool exceeds its
  // capacity of 1 and the eviction counter stands still.
  const std::uint64_t evictions_at_freeze = CounterValue("sched/evictions");
  std::vector<DomId> granted;
  ASSERT_TRUE(AcquireInto(*sched, parent, 2, &granted).ok());
  system_.Settle();
  for (DomId child : granted) {
    ASSERT_NE(child, kDomInvalid);
    (void)sched->Release(child);
  }
  EXPECT_EQ(sched->WarmPoolSize(parent), 2u);
  EXPECT_EQ(CounterValue("sched/evictions"), evictions_at_freeze);

  // Quiet ticks: the eviction rate decays to zero, the alarm clears after
  // its clear_after streak, and the disengage + catch-up sweep restore the
  // capacity limit.
  tsdb.ScheduleTicks(6);
  system_.Settle();
  EXPECT_FALSE(sched->eviction_frozen());
  EXPECT_EQ(sched->batch_window_scale(), 1.0);
  EXPECT_EQ(sched->effective_batch_window().ns(), base_window.ns());
  EXPECT_EQ(system_.metrics().GaugeValue("sched/eviction_frozen"), 0);
  EXPECT_EQ(CounterValue("sched/feedback_transitions"), 2u);
  EXPECT_EQ(CounterValue("alarm/warm_pool_thrash/cleared_total"), 1u);
  EXPECT_EQ(system_.metrics().GaugeValue("alarm/warm_pool_thrash/state"), 0);
  EXPECT_EQ(sched->WarmPoolSize(parent), 1u);
  EXPECT_EQ(CounterValue("sched/evictions"), evictions_at_freeze + 1);
}

// The scheduler must not break sim-time determinism: a scenario exercising
// sched ops produces a byte-identical digest across reruns and clone-engine
// worker counts (the DST suite's core invariant, asserted here on the sched
// corpus shape specifically).
TEST_F(SchedTest, DigestIdenticalAcrossWorkerCounts) {
  const std::string text =
      "# nephele dst scenario v1\n"
      "seed 42\n"
      "launch\n"
      "write dom=0 slot=0 val=7\n"
      "sched_acquire dom=0 n=2\n"
      "write dom=1 slot=1 val=21\n"
      "sched_release slot=0\n"
      "sched_acquire dom=0 n=1\n"
      "sched_release slot=0\n"
      "sched_acquire dom=0 n=3\n";
  auto scenario = Scenario::FromText(text);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  RunOptions one;
  one.force_workers = 1;
  RunOptions four;
  four.force_workers = 4;
  RunResult a = RunScenario(*scenario, one);
  RunResult b = RunScenario(*scenario, one);
  RunResult c = RunScenario(*scenario, four);
  ASSERT_TRUE(a.ok()) << a.fail_kind << ": " << a.message;
  ASSERT_TRUE(b.ok()) << b.fail_kind << ": " << b.message;
  ASSERT_TRUE(c.ok()) << c.fail_kind << ": " << c.message;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, c.digest);
}

}  // namespace
}  // namespace nephele
