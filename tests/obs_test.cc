#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/system.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"

namespace nephele {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x/count");
  Counter& b = reg.GetCounter("x/count");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(reg.CounterValue("x/count"), 3u);

  Gauge& g1 = reg.GetGauge("x/level");
  Gauge& g2 = reg.GetGauge("x/level");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = reg.GetHistogram("x/lat", {10, 20});
  Histogram& h2 = reg.GetHistogram("x/lat");
  EXPECT_EQ(&h1, &h2);
  // Bounds are fixed by the first call for a name.
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistry, FindReturnsNullForAbsentMetrics) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindGauge("nope"), nullptr);
  EXPECT_EQ(reg.FindHistogram("nope"), nullptr);
  EXPECT_EQ(reg.CounterValue("nope"), 0u);
  EXPECT_EQ(reg.GaugeValue("nope"), 0);
}

TEST(MetricsRegistry, GaugeSetAddAndProvider) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("pool/free");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(reg.GaugeValue("pool/free"), 7);

  // A provider-backed gauge is sampled at read time.
  std::int64_t live = 42;
  g.SetProvider([&live] { return live; });
  EXPECT_EQ(reg.GaugeValue("pool/free"), 42);
  live = 17;
  EXPECT_EQ(reg.GaugeValue("pool/free"), 17);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  // Bucket i counts samples <= bounds[i]; index bounds.size() is overflow.
  h.Observe(10);    // bucket 0 (== bound is inside)
  h.Observe(11);    // bucket 1
  h.Observe(100);   // bucket 1
  h.Observe(999);   // bucket 2
  h.Observe(1001);  // overflow
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10 + 11 + 100 + 999 + 1001);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 1001);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h(Histogram::DefaultLatencyBoundsNs());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

// The registry is safe for concurrent recording (clone-engine workers record
// while the simulation thread plans): counters, gauges, histograms and the
// find-or-create maps all take concurrent traffic without losing an update.
TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  Counter& shared_counter = reg.GetCounter("mt/ops");
  Gauge& shared_gauge = reg.GetGauge("mt/level");
  Histogram& shared_hist = reg.GetHistogram("mt/lat", {64, 512, 4096});

  constexpr int kThreads = 8;
  constexpr std::int64_t kOps = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &shared_counter, &shared_gauge, &shared_hist, t] {
      // A per-thread counter created mid-run contends on the registry map.
      Counter& own = reg.GetCounter("mt/thread/" + std::to_string(t));
      for (std::int64_t i = 0; i < kOps; ++i) {
        shared_counter.Increment();
        own.Increment(2);
        shared_gauge.Add(1);
        shared_hist.Observe(i % 6000);
        // Lookups race the other threads' creations.
        reg.GetHistogram("mt/lat").Observe(i % 6000);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  EXPECT_EQ(shared_counter.value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.GaugeValue("mt/level"), kThreads * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.CounterValue("mt/thread/" + std::to_string(t)),
              static_cast<std::uint64_t>(kOps) * 2);
  }
  EXPECT_EQ(shared_hist.count(), static_cast<std::uint64_t>(kThreads) * kOps * 2);
  std::int64_t per_thread_sum = 0;
  for (std::int64_t i = 0; i < kOps; ++i) {
    per_thread_sum += i % 6000;
  }
  EXPECT_EQ(shared_hist.sum(), kThreads * per_thread_sum * 2);
  EXPECT_EQ(shared_hist.min(), 0);
  EXPECT_EQ(shared_hist.max(), 5999);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b <= shared_hist.bounds().size(); ++b) {
    bucket_total += shared_hist.BucketCount(b);
  }
  EXPECT_EQ(bucket_total, shared_hist.count());

  std::string error;
  EXPECT_TRUE(JsonIsWellFormed(reg.ExportJson(), &error)) << error;
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(MetricsExport, JsonIsWellFormedAndSorted) {
  MetricsRegistry reg;
  reg.GetCounter("b/second").Increment(2);
  reg.GetCounter("a/first").Increment(1);
  reg.GetGauge("g/x").Set(-5);
  reg.GetHistogram("h/lat", {100}).Observe(7);

  std::string json = reg.ExportJson();
  std::string error;
  EXPECT_TRUE(JsonIsWellFormed(json, &error)) << error;
  // Names are emitted in sorted order regardless of creation order.
  EXPECT_LT(json.find("a/first"), json.find("b/second"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(JsonWellFormed, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonIsWellFormed("{}"));
  EXPECT_TRUE(JsonIsWellFormed("[1, 2.5, -3e8, \"s\", true, false, null]"));
  EXPECT_TRUE(JsonIsWellFormed("{\"a\": {\"b\": [\"\\n\\u0041\"]}}"));
  EXPECT_TRUE(JsonIsWellFormed("  42  "));
}

TEST(JsonWellFormed, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonIsWellFormed(""));
  EXPECT_FALSE(JsonIsWellFormed("{"));
  EXPECT_FALSE(JsonIsWellFormed("{\"a\": 1,}"));
  EXPECT_FALSE(JsonIsWellFormed("[1 2]"));
  EXPECT_FALSE(JsonIsWellFormed("{} trailing"));
  EXPECT_FALSE(JsonIsWellFormed("\"bad\\escape\""));
  std::string error;
  EXPECT_FALSE(JsonIsWellFormed("[1,", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceRecorder, SpansStampSimulatedTime) {
  EventLoop loop;
  TraceRecorder trace(loop);
  loop.AdvanceBy(SimDuration::Micros(5));
  {
    TraceSpan span = trace.BeginSpan("op");
    span.AddArg("dom", 3);
    loop.AdvanceBy(SimDuration::Micros(2));
  }
  ASSERT_EQ(trace.events().size(), 1u);
  const TraceEvent& e = trace.events()[0];
  EXPECT_EQ(e.name, "op");
  EXPECT_EQ(e.start.ns(), 5000);
  EXPECT_EQ(e.end.ns(), 7000);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].first, "dom");
  EXPECT_EQ(e.args[0].second, 3);

  std::string error;
  EXPECT_TRUE(JsonIsWellFormed(trace.ExportJson(), &error)) << error;
}

TEST(TraceRecorder, BoundedBufferDropsExcessEvents) {
  EventLoop loop;
  TraceRecorder trace(loop, /*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    trace.BeginSpan("op").End();
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped_events(), 3u);
}

TEST(TraceSpan, NullRecorderSpanIsInert) {
  TraceSpan span;  // no recorder
  span.AddArg("k", 1);
  span.End();  // must not crash
}

// ---------------------------------------------------------------------------
// Integration: the wired system feeds the shared registry
// ---------------------------------------------------------------------------

class ObsIntegrationTest : public ::testing::Test {
 protected:
  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;
    return cfg;
  }

  static DomId BootCloneable(NepheleSystem& system) {
    DomainConfig cfg;
    cfg.name = "parent";
    cfg.memory_mb = 4;
    cfg.max_clones = 32;
    auto dom = system.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok());
    return *dom;
  }

  static void CloneAndSettle(NepheleSystem& system, DomId parent, unsigned n = 1) {
    const Domain* d = system.hypervisor().FindDomain(parent);
    Mfn start_info = d->p2m[d->start_info_gfn].mfn;
    auto children = system.clone_engine().Clone({parent, parent, start_info, n});
    ASSERT_TRUE(children.ok()) << children.status().ToString();
    system.Settle();
  }
};

TEST_F(ObsIntegrationTest, CloneRecordsExactlyOneIncrementPerParentPage) {
  NepheleSystem system(SmallSystem());
  DomId parent = BootCloneable(system);
  const Domain* p = system.hypervisor().FindDomain(parent);
  const std::size_t parent_pages = p->p2m.size();

  const MetricsRegistry& m = system.metrics();
  const std::uint64_t shared_before = m.CounterValue("clone/stage1/pages_shared");
  const std::uint64_t private_before = m.CounterValue("clone/stage1/pages_private_copied");
  const std::uint64_t idc_before = m.CounterValue("clone/stage1/pages_idc_shared");

  CloneAndSettle(system, parent);

  // Each parent page takes exactly one of the three stage-1 paths: COW-share,
  // private copy, or IDC true-share.
  const std::uint64_t shared = m.CounterValue("clone/stage1/pages_shared") - shared_before;
  const std::uint64_t copied =
      m.CounterValue("clone/stage1/pages_private_copied") - private_before;
  const std::uint64_t idc = m.CounterValue("clone/stage1/pages_idc_shared") - idc_before;
  EXPECT_EQ(shared + copied + idc, parent_pages);
  EXPECT_GT(shared, 0u);
  // First clone of a never-shared parent: every COW share is a first-share.
  EXPECT_EQ(m.CounterValue("clone/stage1/pages_shared_first"), shared);
  EXPECT_EQ(m.CounterValue("clone/stage1/pages_shared_again"), 0u);

  EXPECT_EQ(m.CounterValue("clone/clones_total"), 1u);
  EXPECT_EQ(m.CounterValue("clone/batches_total"), 1u);
  EXPECT_EQ(m.CounterValue("xencloned/clones_completed"), 1u);
  // Stage timings landed in the shared histograms.
  const Histogram* stage1 = m.FindHistogram("clone/stage1/duration_ns");
  const Histogram* stage2 = m.FindHistogram("clone/stage2/duration_ns");
  ASSERT_NE(stage1, nullptr);
  ASSERT_NE(stage2, nullptr);
  EXPECT_EQ(stage1->count(), 1u);
  EXPECT_EQ(stage2->count(), 1u);
  EXPECT_GT(stage1->sum(), 0);
}

TEST_F(ObsIntegrationTest, SubsystemGaugesTrackLiveState) {
  NepheleSystem system(SmallSystem());
  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.GaugeValue("hypervisor/domains/live"),
            static_cast<std::int64_t>(system.hypervisor().NumDomains()));
  DomId parent = BootCloneable(system);
  const std::int64_t live_before = m.GaugeValue("hypervisor/domains/live");
  CloneAndSettle(system, parent, 2);
  EXPECT_EQ(m.GaugeValue("hypervisor/domains/live"), live_before + 2);
  EXPECT_GT(m.GaugeValue("hypervisor/frames/shared"), 0);
  EXPECT_GT(m.CounterValue("xenstore/requests/total"), 0u);
  EXPECT_GT(m.CounterValue("toolstack/domains_booted"), 0u);
  EXPECT_GT(m.CounterValue("hypervisor/hypercalls"), 0u);
}

TEST_F(ObsIntegrationTest, CloneMetricsObserverAggregatesResumeLatency) {
  NepheleSystem system(SmallSystem());
  DomId parent = BootCloneable(system);
  CloneAndSettle(system, parent, 3);
  const MetricsRegistry& m = system.metrics();
  EXPECT_EQ(m.CounterValue("clone/batches"), 1u);
  EXPECT_EQ(m.CounterValue("clone/completions"), 3u);
  EXPECT_EQ(m.CounterValue("clone/resume/child_total"), 3u);
  EXPECT_EQ(m.CounterValue("clone/resume/parent_total"), 1u);
  const Histogram* fork_to_resume = m.FindHistogram("clone/fork_to_resume/duration_ns");
  ASSERT_NE(fork_to_resume, nullptr);
  EXPECT_EQ(fork_to_resume->count(), 1u);
  EXPECT_GT(fork_to_resume->sum(), 0);
}

TEST_F(ObsIntegrationTest, TraceCoversCloneAndBootPath) {
  NepheleSystem system(SmallSystem());
  DomId parent = BootCloneable(system);
  CloneAndSettle(system, parent);
  bool saw_boot = false;
  bool saw_stage1 = false;
  bool saw_stage2 = false;
  for (const TraceEvent& e : system.trace().events()) {
    saw_boot = saw_boot || e.name == "toolstack/boot";
    saw_stage1 = saw_stage1 || e.name == "clone/stage1";
    saw_stage2 = saw_stage2 || e.name == "clone/stage2";
  }
  EXPECT_TRUE(saw_boot);
  EXPECT_TRUE(saw_stage1);
  EXPECT_TRUE(saw_stage2);
}

// Runs the same seeded scenario in two fresh systems; ExportJson must be
// byte-identical (the determinism contract benches assert on).
TEST_F(ObsIntegrationTest, ExportJsonIsDeterministicAcrossRuns) {
  auto run = [] {
    NepheleSystem system(SmallSystem());
    DomId parent = BootCloneable(system);
    CloneAndSettle(system, parent, 2);
    return system.metrics().ExportJson();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  std::string error;
  EXPECT_TRUE(JsonIsWellFormed(first, &error)) << error;
}

}  // namespace
}  // namespace nephele
