// The bench JSON schema and the perf-regression gate's comparison logic
// (bench/bench_json.h, bench/bench_gate.h) — exercised in-process, without
// spawning bench binaries.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_gate.h"
#include "bench/bench_json.h"
#include "src/obs/json.h"

namespace nephele {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &v, &error)) << error << "\n" << text;
  return v;
}

// Writer documents under no handicap, used as both sides of gate tests.
std::string WallDoc(const std::string& bench, double ms) {
  BenchJsonWriter w(bench);
  w.Add("op_ms", ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  w.Add("op_per_sec", 1000.0 / ms, "ops_per_sec", MetricDir::kHigherIsBetter,
        MetricKind::kWall);
  return w.ToJson();
}

std::string SimDoc(const std::string& bench, double ms) {
  BenchJsonWriter w(bench);
  w.Add("sim_ms", ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
  return w.ToJson();
}

std::string BaselineOf(const std::vector<std::string>& docs) {
  std::vector<JsonValue> parsed;
  parsed.reserve(docs.size());
  for (const std::string& d : docs) {
    parsed.push_back(Parse(d));
  }
  return RecordBaseline(parsed);
}

GateReport Gate(const std::string& baseline, const std::vector<std::string>& currents,
                GateOptions opt = {}) {
  std::vector<JsonValue> parsed;
  parsed.reserve(currents.size());
  for (const std::string& c : currents) {
    parsed.push_back(Parse(c));
  }
  return GateCompare(Parse(baseline), parsed, opt);
}

TEST(BenchJsonTest, SchemaIsExactAndSorted) {
  BenchJsonWriter w("demo");
  w.Add("zeta_ms", 1.5, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  w.Add("alpha_count", 42.0, "count", MetricDir::kHigherIsBetter, MetricKind::kSim);
  EXPECT_EQ(w.ToJson(),
            "{\"bench\":\"demo\",\"handicap_micros\":1000000,\"metrics\":{"
            "\"alpha_count\":{\"direction\":\"higher\",\"kind\":\"sim\",\"unit\":\"count\","
            "\"value_micros\":42000000},"
            "\"zeta_ms\":{\"direction\":\"lower\",\"kind\":\"wall\",\"unit\":\"ms\","
            "\"value_micros\":1500000}"
            "},\"schema_version\":1}\n");
}

TEST(BenchJsonTest, HandicapWorsensOnlyWallMetrics) {
  ASSERT_EQ(setenv("NEPHELE_BENCH_HANDICAP", "2.0", 1), 0);
  BenchJsonWriter w("demo");
  w.Add("wall_lower_ms", 10.0, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  w.Add("wall_higher_ops", 100.0, "ops_per_sec", MetricDir::kHigherIsBetter,
        MetricKind::kWall);
  w.Add("sim_ms", 10.0, "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
  unsetenv("NEPHELE_BENCH_HANDICAP");
  JsonValue doc = Parse(w.ToJson());
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("wall_lower_ms")->Find("value_micros")->number, 20000000.0);
  EXPECT_EQ(metrics->Find("wall_higher_ops")->Find("value_micros")->number, 50000000.0);
  EXPECT_EQ(metrics->Find("sim_ms")->Find("value_micros")->number, 10000000.0)
      << "sim metrics must never be handicapped";
}

TEST(BenchGateTest, IdenticalRunPasses) {
  std::string baseline = BaselineOf({WallDoc("micro", 10.0), SimDoc("fig", 5.0)});
  GateReport report = Gate(baseline, {WallDoc("micro", 10.0), SimDoc("fig", 5.0)});
  EXPECT_TRUE(report.ok()) << report.failures.front();
  EXPECT_EQ(report.metrics_checked, 3u);
}

TEST(BenchGateTest, WallRegressionBeyondBandFails) {
  std::string baseline = BaselineOf({WallDoc("micro", 10.0)});
  // 1.5x: inside the 1.75 band.
  EXPECT_TRUE(Gate(baseline, {WallDoc("micro", 15.0)}).ok());
  // 2x: outside — both the lower-is-better and higher-is-better twin fail.
  GateReport bad = Gate(baseline, {WallDoc("micro", 20.0)});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.failures.size(), 2u);
}

TEST(BenchGateTest, SimBandIsTight) {
  std::string baseline = BaselineOf({SimDoc("fig", 100.0)});
  EXPECT_TRUE(Gate(baseline, {SimDoc("fig", 105.0)}).ok());   // 1.05x
  EXPECT_FALSE(Gate(baseline, {SimDoc("fig", 120.0)}).ok());  // 1.2x > 1.10
}

TEST(BenchGateTest, ImprovementNeverFailsButIsNoted) {
  std::string baseline = BaselineOf({WallDoc("micro", 20.0)});
  GateReport report = Gate(baseline, {WallDoc("micro", 5.0)});
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.notes.empty());
}

TEST(BenchGateTest, SchemaDriftFailsBothDirections) {
  std::string baseline = BaselineOf({WallDoc("micro", 10.0)});
  // A renamed metric vanishes from one side and appears on the other.
  BenchJsonWriter renamed("micro");
  renamed.Add("op_renamed_ms", 10.0, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  renamed.Add("op_per_sec", 100.0, "ops_per_sec", MetricDir::kHigherIsBetter,
              MetricKind::kWall);
  GateReport report = Gate(baseline, {renamed.ToJson()});
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_NE(report.failures[0].find("vanished"), std::string::npos);
  EXPECT_NE(report.failures[1].find("not in the baseline"), std::string::npos);
}

TEST(BenchGateTest, KindChangeIsSchemaDrift) {
  std::string baseline = BaselineOf({SimDoc("fig", 5.0)});
  BenchJsonWriter wall_now("fig");
  wall_now.Add("sim_ms", 5.0, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  GateReport report = Gate(baseline, {wall_now.ToJson()});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures.front().find("kind/direction changed"), std::string::npos);
}

TEST(BenchGateTest, SimOnlySkipsWallMetrics) {
  std::string baseline = BaselineOf({WallDoc("micro", 10.0), SimDoc("fig", 5.0)});
  GateOptions opt;
  opt.sim_only = true;
  // The wall bench regressed 10x — invisible under --sim-only.
  GateReport report = Gate(baseline, {WallDoc("micro", 100.0), SimDoc("fig", 5.0)}, opt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.metrics_checked, 1u);
}

TEST(BenchGateTest, RequireAllFlagsUncoveredBenches) {
  std::string baseline = BaselineOf({WallDoc("micro", 10.0), SimDoc("fig", 5.0)});
  GateOptions opt;
  opt.require_all = true;
  GateReport report = Gate(baseline, {SimDoc("fig", 5.0)}, opt);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures.front().find("produced no current document"), std::string::npos);
  // Without the flag, a partial run (ctest --sim-only) is fine.
  EXPECT_TRUE(Gate(baseline, {SimDoc("fig", 5.0)}).ok());
}

TEST(BenchGateTest, UnknownBenchDemandsRerecord) {
  std::string baseline = BaselineOf({SimDoc("fig", 5.0)});
  GateReport report = Gate(baseline, {SimDoc("brand_new", 5.0)});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures.front().find("not in the baseline"), std::string::npos);
}

TEST(BenchGateTest, RecordBaselineRoundTripsDeterministically) {
  std::string baseline = BaselineOf({SimDoc("b_fig", 5.0), WallDoc("a_micro", 10.0)});
  // Serialization is canonical: parsing and re-recording is a fixed point,
  // and benches land sorted by name regardless of argument order.
  JsonValue parsed = Parse(baseline);
  const JsonValue* benches = parsed.Find("benches");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->members.size(), 2u);
  EXPECT_EQ(benches->members[0].first, "a_micro");
  EXPECT_EQ(benches->members[1].first, "b_fig");
  std::string again = BaselineOf({WallDoc("a_micro", 10.0), SimDoc("b_fig", 5.0)});
  EXPECT_EQ(baseline, again);
}

}  // namespace
}  // namespace nephele
