// The heavy-traffic request layer (ctest label `load`): seeded arrival
// processes with statistical oracles, the open-loop generator, and the
// request-cloning first-response-wins dispatcher with its exact accounting
// identity
//
//   req/dispatched = req/wins + req/cancelled + req/rejected
//
// checked at quiescent points, under fault injection, and across clone
// worker counts. The stochastic-dominance test reproduces the core claim of
// the request-cloning model (arXiv 2002.04416): duplicating every request
// to d=2 cloned instances and cancelling the loser cuts the latency
// distribution at every quantile at moderate utilization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/faas/backend.h"
#include "src/faas/gateway.h"
#include "src/fault/fault.h"
#include "src/guest/guest_manager.h"
#include "src/load/arrival.h"
#include "src/load/dispatch.h"
#include "src/load/load_gen.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/scheduler.h"
#include "src/toolstack/domain_config.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

// ---------------------------------------------------------------------------
// Arrival-process statistical oracles. These draw gaps straight from
// ArrivalProcess (no event loop), so long simulated windows cost nothing:
// the tolerances below sit at >= 3 sigma of the sample statistics.
// ---------------------------------------------------------------------------

struct GapStats {
  double mean_s = 0;
  double cv = 0;  // coefficient of variation of the inter-arrival gaps
};

GapStats DrawGaps(ArrivalProcess& process, std::size_t n) {
  double sum = 0;
  double sum_sq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = process.NextGap().ToSeconds();
    sum += gap;
    sum_sq += gap * gap;
  }
  GapStats stats;
  stats.mean_s = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - stats.mean_s * stats.mean_s;
  stats.cv = std::sqrt(std::max(var, 0.0)) / stats.mean_s;
  return stats;
}

TEST(ArrivalOracleTest, PoissonRateAndCvWithinBand) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.rate_rps = 500.0;
  ArrivalProcess process(cfg, /*seed=*/11);
  GapStats stats = DrawGaps(process, 100000);
  // Empirical rate within 2% (sample sd ~0.3%); exponential gaps have CV 1.
  EXPECT_NEAR(1.0 / stats.mean_s, process.MeanRate(), 0.02 * process.MeanRate());
  EXPECT_GT(stats.cv, 0.95);
  EXPECT_LT(stats.cv, 1.05);
}

TEST(ArrivalOracleTest, BurstyRateMatchesDwellWeightedMixAndOverdisperses) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.rate_rps = 200.0;
  cfg.burst_rate_rps = 2000.0;
  cfg.calm_dwell_mean = SimDuration::Seconds(2);
  cfg.burst_dwell_mean = SimDuration::Millis(250);
  ArrivalProcess process(cfg, /*seed=*/12);
  // MeanRate: (200*2 + 2000*0.25) / 2.25 = 400 req/s.
  EXPECT_NEAR(process.MeanRate(), 400.0, 1e-9);
  // ~2000 simulated seconds: the dwell-cycle noise is down to ~2%.
  GapStats stats = DrawGaps(process, 800000);
  EXPECT_NEAR(1.0 / stats.mean_s, process.MeanRate(), 0.10 * process.MeanRate());
  // Mixing two exponential regimes overdisperses the gaps well past CV 1.
  EXPECT_GT(stats.cv, 1.2);
  EXPECT_GT(process.state_switches(), 100u);
}

TEST(ArrivalOracleTest, DiurnalPeakTroughRatioAndMean) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate_rps = 200.0;
  cfg.diurnal_amplitude = 0.8;
  cfg.diurnal_period = SimDuration::Seconds(120);
  ArrivalProcess process(cfg, /*seed=*/13);
  const double period_s = cfg.diurnal_period.ToSeconds();
  const double horizon_s = 10 * period_s;
  // Bin arrivals by phase across exactly 10 periods.
  constexpr int kBins = 8;
  std::vector<double> bins(kBins, 0);
  double t = 0;
  double total = 0;
  for (;;) {
    t += process.NextGap().ToSeconds();
    if (t >= horizon_s) {
      break;
    }
    const double phase = std::fmod(t, period_s) / period_s;
    bins[static_cast<int>(phase * kBins) % kBins] += 1;
    total += 1;
  }
  // The sinusoid integrates to zero over whole periods: the overall rate is
  // the configured baseline.
  EXPECT_NEAR(total / horizon_s, cfg.rate_rps, 0.05 * cfg.rate_rps);
  // Peak phase bin (sin ~ +1, bin 2 of 8) vs trough bin (sin ~ -1, bin 6):
  // with amplitude 0.8 the expected ratio is ~6; demand a conservative 3x.
  EXPECT_GT(bins[2], 3.0 * std::max(bins[6], 1.0));
}

// ---------------------------------------------------------------------------
// Open-loop generator.
// ---------------------------------------------------------------------------

TEST(LoadGeneratorTest, OpenLoopEmitsSeededMonotonicRequests) {
  EventLoop loop;
  MetricsRegistry metrics;
  LoadConfig cfg;
  cfg.arrival.rate_rps = 1000.0;
  cfg.user_population = 10'000'000;
  cfg.seed = 21;
  LoadGenerator generator(loop, cfg, metrics);
  std::vector<LoadRequest> seen;
  generator.Start(SimDuration::Seconds(1),
                  [&seen](const LoadRequest& r) { seen.push_back(r); });
  loop.Run();
  ASSERT_GT(seen.size(), 800u);
  EXPECT_EQ(metrics.CounterValue("load/generated"), seen.size());
  EXPECT_EQ(generator.generated(), seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].id, i + 1);
    EXPECT_LT(seen[i].user, cfg.user_population);
    if (i > 0) {
      EXPECT_GT(seen[i].arrival.ns(), seen[i - 1].arrival.ns());
    }
  }
}

TEST(LoadGeneratorTest, BurstyRunRecordsStateSwitches) {
  EventLoop loop;
  MetricsRegistry metrics;
  LoadConfig cfg;
  cfg.arrival.kind = ArrivalKind::kBursty;
  cfg.arrival.calm_dwell_mean = SimDuration::Millis(100);
  cfg.arrival.burst_dwell_mean = SimDuration::Millis(50);
  cfg.seed = 22;
  LoadGenerator generator(loop, cfg, metrics);
  generator.Start(SimDuration::Seconds(2), [](const LoadRequest&) {});
  loop.Run();
  EXPECT_GT(metrics.CounterValue("load/state_switches"), 4u);
}

// ---------------------------------------------------------------------------
// Scheduler-mode dispatch: one parent, duplicates acquired from the clone
// scheduler and released to the warm pool on resolution.
// ---------------------------------------------------------------------------

class ScheduledLoadRun {
 public:
  explicit ScheduledLoadRun(const SystemConfig& cfg)
      : system_(cfg), sched_(system_), dispatcher_(system_, sched_), generator_(system_) {
    DomainConfig dcfg;
    dcfg.name = "load-parent";
    dcfg.memory_mb = 4;
    dcfg.max_clones = 512;
    dcfg.with_vif = true;
    auto parent = system_.toolstack().CreateDomain(dcfg);
    EXPECT_TRUE(parent.ok());
    system_.Settle();
    dispatcher_.SetParent(*parent);
    base_domains_ = system_.hypervisor().NumDomains();
  }

  void Run(SimDuration duration) {
    generator_.Start(duration,
                     [this](const LoadRequest& r) { dispatcher_.Submit(r); });
    system_.Settle();
  }

  // The per-duplicate accounting identity plus the no-leak frame: nothing
  // in flight, nothing queued anywhere, and every clone either parked in
  // the warm pool or destroyed.
  void ExpectQuiescentAccounting() {
    EXPECT_EQ(dispatcher_.dispatched(),
              dispatcher_.wins() + dispatcher_.cancelled() + dispatcher_.rejected());
    EXPECT_EQ(dispatcher_.in_flight(), 0u);
    EXPECT_EQ(dispatcher_.pending(), 0u);
    EXPECT_EQ(sched_.TotalQueued(), 0u);
    EXPECT_EQ(system_.metrics().GaugeValue("req/in_flight"), 0);
    EXPECT_EQ(system_.hypervisor().NumDomains(), base_domains_ + sched_.TotalPooled());
    ExpectFrameConsistency(system_);
  }

  NepheleSystem system_;
  CloneScheduler sched_;
  RequestCloneDispatcher dispatcher_;
  LoadGenerator generator_;
  std::size_t base_domains_ = 0;
};

SystemConfig ScheduledConfig() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  cfg.sched.warm_pool_capacity = 8;
  cfg.sched.max_queue_depth = 64;
  cfg.load.arrival.rate_rps = 1000.0;
  cfg.load.clone_factor = 2;
  cfg.load.max_concurrent = 8;
  return cfg;
}

TEST(DispatchAccountingTest, FirstResponseWinsExactAccounting) {
  SystemConfig cfg = ScheduledConfig();
  cfg.load.clone_factor = 3;
  ScheduledLoadRun run(cfg);
  run.Run(SimDuration::Millis(500));
  const std::uint64_t submitted = run.dispatcher_.wins() + run.dispatcher_.failed();
  EXPECT_EQ(submitted, run.generator_.generated());
  // Utilization ~3%: nothing is rejected, so the identity decomposes into
  // one win and d-1 cancellations per request, exactly.
  EXPECT_EQ(run.dispatcher_.rejected(), 0u);
  EXPECT_EQ(run.dispatcher_.failed(), 0u);
  EXPECT_EQ(run.dispatcher_.wins(), run.generator_.generated());
  EXPECT_EQ(run.dispatcher_.cancelled(), 2 * run.dispatcher_.wins());
  EXPECT_EQ(run.dispatcher_.dispatched(), 3 * run.generator_.generated());
  run.ExpectQuiescentAccounting();
}

TEST(DispatchAccountingTest, DispatchFaultDoesNotStrandOrLeak) {
  SystemConfig cfg = ScheduledConfig();
  cfg.load.arrival.rate_rps = 2000.0;
  cfg.load.max_concurrent = 4;
  ScheduledLoadRun run(cfg);
  // Fail the first cold batch dispatch: its tickets come back as errors and
  // their duplicates must count rejected — not strand a warm child, not
  // leak a pending request, not wedge a scheduler queue.
  ASSERT_TRUE(run.system_.fault_injector()
                  .Arm("sched/dispatch",
                       FaultSpec::NthHit(1, StatusCode::kUnavailable, "injected"))
                  .ok());
  run.Run(SimDuration::Millis(500));
  EXPECT_GE(run.system_.metrics().CounterValue("sched/batch_failures"), 1u);
  EXPECT_GE(run.dispatcher_.rejected(), 1u);
  EXPECT_GT(run.dispatcher_.wins(), 0u);
  run.ExpectQuiescentAccounting();
}

// Identical config + seed must produce a byte-identical metrics export —
// across reruns and across clone-worker counts (staging parallelism must
// not reorder anything observable).
std::string RunDigest(unsigned workers) {
  SystemConfig cfg = ScheduledConfig();
  cfg.clone_worker_threads = workers;
  cfg.load.arrival.rate_rps = 2000.0;
  cfg.load.seed = 7;
  ScheduledLoadRun run(cfg);
  run.Run(SimDuration::Millis(400));
  return run.system_.metrics().ExportJson();
}

TEST(DispatchDeterminismTest, DigestIdenticalAcrossRerunsAndWorkerCounts) {
  const std::string once = RunDigest(1);
  const std::string again = RunDigest(1);
  const std::string parallel = RunDigest(4);
  EXPECT_EQ(once, again);
  EXPECT_EQ(once, parallel);
  EXPECT_NE(once.find("req/latency_ns"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stochastic dominance (the core claim of arXiv 2002.04416): at moderate
// utilization, first-response-wins with d=2 sits below d=1 at every
// reported quantile, on a fixed seed set.
// ---------------------------------------------------------------------------

std::vector<std::int64_t> WinLatencies(unsigned clone_factor, std::uint64_t seed) {
  SystemConfig cfg = ScheduledConfig();
  cfg.hypervisor.pool_frames = 512 * 1024;
  cfg.load.clone_factor = clone_factor;
  cfg.load.max_concurrent = 4;
  cfg.load.seed = seed;
  // Heavy requests (E[S] ~ 4.5 ms): the cloning model pays one extra warm
  // grant (~ms) per duplicate, so the min-of-d service benefit only shows
  // when service dominates the grant. This is the regime the model targets.
  cfg.load.service_pages = 2048;
  cfg.load.service_p9_rpcs = 100;
  cfg.load.service_net_packets = 50;
  // ~0.4 utilization of the 4 servers, priced off the cost model.
  const double mean_service_s =
      RequestCloneDispatcher::MeanServiceTime(cfg.load, cfg.costs).ToSeconds();
  cfg.load.arrival.rate_rps = 0.4 * 4 / mean_service_s;
  ScheduledLoadRun run(cfg);
  std::vector<std::int64_t> latencies;
  run.dispatcher_.RecordLatenciesTo(&latencies);
  run.Run(SimDuration::Seconds(2));
  // Drop the cold-start transient (initial clones cost milliseconds; both
  // arms pay it, but it is not what the quantiles are about).
  latencies.erase(latencies.begin(),
                  latencies.begin() +
                      std::min<std::ptrdiff_t>(50, static_cast<std::ptrdiff_t>(latencies.size())));
  return latencies;
}

std::int64_t Quantile(std::vector<std::int64_t> values, double q) {
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  rank = rank == 0 ? 0 : rank - 1;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

TEST(RequestCloningDominanceTest, D2DominatesD1AtEveryQuantile) {
  std::vector<std::int64_t> d1;
  std::vector<std::int64_t> d2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::int64_t> a = WinLatencies(1, seed);
    std::vector<std::int64_t> b = WinLatencies(2, seed);
    d1.insert(d1.end(), a.begin(), a.end());
    d2.insert(d2.end(), b.begin(), b.end());
  }
  ASSERT_GT(d1.size(), 2500u);
  ASSERT_GT(d2.size(), 2500u);
  EXPECT_LT(Quantile(d2, 0.50), Quantile(d1, 0.50));
  EXPECT_LT(Quantile(d2, 0.90), Quantile(d1, 0.90));
  EXPECT_LT(Quantile(d2, 0.99), Quantile(d1, 0.99));
}

// ---------------------------------------------------------------------------
// The req_tail alarm: sustained overload pushes the windowed p99 gauge past
// the 50 ms raise threshold and the stock rule fires.
// ---------------------------------------------------------------------------

TEST(ReqTailAlarmTest, RaisesUnderSustainedOverload) {
  SystemConfig cfg = ScheduledConfig();
  cfg.load.arrival.rate_rps = 20000.0;  // far past one server's ~4k/s
  cfg.load.clone_factor = 1;
  cfg.load.max_concurrent = 1;
  cfg.tsdb.tick_interval = SimDuration::Millis(5);
  cfg.tsdb.ring_capacity = 64;
  ScheduledLoadRun run(cfg);
  TsdbCollector tsdb(run.system_.metrics(), run.system_.loop(), run.system_.config().tsdb);
  AlarmEngine alarms(tsdb, run.system_.metrics());
  for (const AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }
  tsdb.ScheduleTicks(60);  // 300 ms of ticks alongside the overload
  run.Run(SimDuration::Millis(300));
  EXPECT_GE(run.system_.metrics().CounterValue("alarm/req_tail/raised_total"), 1u);
  run.ExpectQuiescentAccounting();
}

// ---------------------------------------------------------------------------
// Fleet mode + gateway scale-down (the regression this PR fixes): retiring
// an instance must never strand the only unfinished duplicate of a request.
// ---------------------------------------------------------------------------

struct FleetRun {
  explicit FleetRun(SystemConfig cfg)
      : system(cfg), guests(system), sched(system), dispatcher(system, sched) {
    (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
    UnikernelBackend::Config bcfg;
    bcfg.first_report_latency = SimDuration::Millis(50);
    bcfg.k8s_report_latency = SimDuration::Millis(50);
    bcfg.warm_report_latency = SimDuration::Millis(10);
    backend.emplace(guests, bcfg);
    backend->AttachScheduler(&sched);
    backend->AttachDispatcher(&dispatcher);
  }

  void DeployThree() {
    ASSERT_TRUE(backend->Deploy().ok());
    system.Settle();
    ASSERT_TRUE(backend->ScaleUp().ok());
    ASSERT_TRUE(backend->ScaleUp().ok());
    system.Settle();
    ASSERT_EQ(backend->ReadyInstances(), 3u);
    ASSERT_EQ(dispatcher.idle_fleet_size(), 3u);
  }

  void Submit(std::uint64_t id) {
    LoadRequest r;
    r.id = id;
    r.user = id;
    r.arrival = system.Now();
    dispatcher.Submit(r);
  }

  NepheleSystem system;
  GuestManager guests;
  CloneScheduler sched;
  RequestCloneDispatcher dispatcher;
  std::optional<UnikernelBackend> backend;
};

SystemConfig FleetConfig(unsigned clone_factor) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 512 * 1024;
  cfg.sched.warm_pool_capacity = 8;
  cfg.load.clone_factor = clone_factor;
  return cfg;
}

TEST(FleetScaleDownTest, RefusesWhenEveryInstanceHoldsASoleDuplicate) {
  FleetRun run(FleetConfig(/*clone_factor=*/1));
  run.DeployThree();
  // d=1: every busy instance holds its request's only duplicate.
  run.Submit(1);
  run.Submit(2);
  run.Submit(3);
  ASSERT_EQ(run.dispatcher.idle_fleet_size(), 0u);
  // The old code retired instances_.back() unconditionally, stranding the
  // request riding it. Now the scan finds no retirable instance.
  Status s = run.backend->ScaleDown();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(run.backend->TotalInstances(), 3u);
  run.system.Settle();
  // Nothing was stranded: all three requests complete.
  EXPECT_EQ(run.dispatcher.wins(), 3u);
  EXPECT_EQ(run.dispatcher.in_flight(), 0u);
  EXPECT_EQ(run.dispatcher.dispatched(),
            run.dispatcher.wins() + run.dispatcher.cancelled() + run.dispatcher.rejected());
}

TEST(FleetScaleDownTest, RetiresRedundantDuplicateAndCancelsIt) {
  FleetRun run(FleetConfig(/*clone_factor=*/2));
  run.DeployThree();
  // Two d=2 requests over three instances: request 1 occupies the root and
  // the first child; request 2 gets the second child plus one pending
  // duplicate. The youngest instance therefore serves a *redundant*
  // duplicate (its request still has the pending one), so scale-down may
  // retire it — cancelling the duplicate — without stranding anyone.
  run.Submit(1);
  run.Submit(2);
  ASSERT_EQ(run.dispatcher.idle_fleet_size(), 0u);
  ASSERT_EQ(run.dispatcher.pending(), 1u);
  ASSERT_TRUE(run.backend->ScaleDown().ok());
  EXPECT_EQ(run.backend->TotalInstances(), 2u);
  EXPECT_GE(run.dispatcher.cancelled(), 1u);
  run.system.Settle();
  // Both requests complete on the surviving instances.
  EXPECT_EQ(run.dispatcher.wins(), 2u);
  EXPECT_EQ(run.dispatcher.in_flight(), 0u);
  EXPECT_EQ(run.dispatcher.dispatched(),
            run.dispatcher.wins() + run.dispatcher.cancelled() + run.dispatcher.rejected());
  ExpectFrameConsistency(run.system);
}

// End-to-end: the gateway's request-level run streams the generator into
// the dispatcher over the fleet while the RPS autoscaler adds instances,
// then drains the in-flight tail. Accounting must close exactly and the
// result mirror the dispatcher's counters.
TEST(GatewayRequestLoadTest, AutoscalesAndDrainsWithExactAccounting) {
  SystemConfig cfg = FleetConfig(/*clone_factor=*/2);
  cfg.load.arrival.rate_rps = 200.0;
  FleetRun run(cfg);
  GatewayConfig gcfg;
  gcfg.query_interval = SimDuration::Seconds(1);
  gcfg.max_instances = 4;
  OpenFaasGateway gateway(run.system.loop(), *run.backend, gcfg);
  LoadGenerator generator(run.system);
  RequestRunResult result =
      gateway.RunRequestLoad(SimDuration::Seconds(10), generator, run.dispatcher);
  EXPECT_GE(result.series.size(), 9u);
  EXPECT_GT(result.generated, 1500u);
  EXPECT_EQ(result.generated, generator.generated());
  // 200 rps over one instance's ~10 rps threshold: the autoscaler scales up.
  EXPECT_GT(run.backend->TotalInstances(), 1u);
  // The drain leaves nothing in flight and the identity closes.
  EXPECT_EQ(run.dispatcher.in_flight(), 0u);
  EXPECT_EQ(run.dispatcher.pending(), 0u);
  EXPECT_EQ(result.wins, run.dispatcher.wins());
  EXPECT_EQ(result.wins + run.dispatcher.failed(), result.generated);
  EXPECT_EQ(run.dispatcher.dispatched(),
            result.wins + result.cancelled + result.rejected);
  ExpectFrameConsistency(run.system);
}

}  // namespace
}  // namespace nephele
