#include <gtest/gtest.h>

#include "src/xenstore/path.h"
#include "src/xenstore/store.h"

namespace nephele {
namespace {

TEST(XsPath, SplitAndJoin) {
  EXPECT_EQ(SplitXsPath("/local/domain/3"),
            (std::vector<std::string>{"local", "domain", "3"}));
  EXPECT_EQ(SplitXsPath("a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitXsPath("/").empty());
  EXPECT_EQ(JoinXsPath({"a", "b"}), "/a/b");
  EXPECT_EQ(JoinXsPath({}), "/");
}

TEST(XsPath, PrefixMatching) {
  EXPECT_TRUE(XsPathHasPrefix("/a/b/c", "/a/b"));
  EXPECT_TRUE(XsPathHasPrefix("/a/b", "/a/b"));
  EXPECT_FALSE(XsPathHasPrefix("/a/bc", "/a/b"));
  EXPECT_TRUE(XsPathHasPrefix("/anything", "/"));
}

TEST(XsPath, CanonicalPaths) {
  EXPECT_EQ(XsDomainPath(7), "/local/domain/7");
  EXPECT_EQ(XsBackendPath(0, "vif", 7, 0), "/local/domain/0/backend/vif/7/0");
  EXPECT_EQ(XsFrontendPath(7, "vif", 0), "/local/domain/7/device/vif/0");
}

class XenstoreTest : public ::testing::Test {
 protected:
  XenstoreTest() : xs_(loop_, DefaultCostModel()) {}
  EventLoop loop_;
  XenstoreDaemon xs_;
};

TEST_F(XenstoreTest, WriteReadRoundTrip) {
  ASSERT_TRUE(xs_.Write("/a/b", "value").ok());
  auto v = xs_.Read("/a/b");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value");
}

TEST_F(XenstoreTest, ReadMissingFails) {
  EXPECT_EQ(xs_.Read("/nope").status().code(), StatusCode::kNotFound);
  // Intermediate nodes created by a write have no value of their own.
  ASSERT_TRUE(xs_.Write("/a/b", "v").ok());
  EXPECT_EQ(xs_.Read("/a").status().code(), StatusCode::kNotFound);
}

TEST_F(XenstoreTest, OverwriteKeepsEntryCount) {
  ASSERT_TRUE(xs_.Write("/k", "1").ok());
  std::size_t entries = xs_.NumEntries();
  ASSERT_TRUE(xs_.Write("/k", "2").ok());
  EXPECT_EQ(xs_.NumEntries(), entries);
  EXPECT_EQ(*xs_.Read("/k"), "2");
}

TEST_F(XenstoreTest, DirectoryLists) {
  ASSERT_TRUE(xs_.Write("/d/x", "1").ok());
  ASSERT_TRUE(xs_.Write("/d/y", "2").ok());
  auto names = xs_.Directory("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"x", "y"}));
}

TEST_F(XenstoreTest, RmRemovesSubtree) {
  ASSERT_TRUE(xs_.Write("/d/x/deep", "1").ok());
  ASSERT_TRUE(xs_.Write("/d/y", "2").ok());
  std::size_t entries = xs_.NumEntries();
  ASSERT_TRUE(xs_.Rm("/d/x").ok());
  EXPECT_FALSE(xs_.Exists("/d/x"));
  EXPECT_TRUE(xs_.Exists("/d/y"));
  EXPECT_EQ(xs_.NumEntries(), entries - 1);
  EXPECT_EQ(xs_.Rm("/d/x").code(), StatusCode::kNotFound);
}

TEST_F(XenstoreTest, WatchFiresOnSubtreeChange) {
  std::vector<std::string> fired;
  ASSERT_TRUE(xs_.Watch("/w", "tok", "owner1",
                        [&](const std::string& path, const std::string& token) {
                          fired.push_back(token + ":" + path);
                        })
                  .ok());
  ASSERT_TRUE(xs_.Write("/w/a", "1").ok());
  ASSERT_TRUE(xs_.Write("/other", "1").ok());
  loop_.Run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "tok:/w/a");
}

TEST_F(XenstoreTest, WatchFiresOnRemoval) {
  int fired = 0;
  ASSERT_TRUE(xs_.Write("/w/a", "1").ok());
  ASSERT_TRUE(
      xs_.Watch("/w", "t", "o", [&](const std::string&, const std::string&) { ++fired; }).ok());
  ASSERT_TRUE(xs_.Rm("/w/a").ok());
  loop_.Run();
  EXPECT_EQ(fired, 1);
}

TEST_F(XenstoreTest, UnwatchStopsDelivery) {
  int fired = 0;
  ASSERT_TRUE(
      xs_.Watch("/w", "t", "o", [&](const std::string&, const std::string&) { ++fired; }).ok());
  ASSERT_TRUE(xs_.Unwatch("/w", "t").ok());
  ASSERT_TRUE(xs_.Write("/w/a", "1").ok());
  loop_.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(xs_.Unwatch("/w", "t").code(), StatusCode::kNotFound);
}

TEST_F(XenstoreTest, RemoveWatchesByOwner) {
  int fired = 0;
  ASSERT_TRUE(
      xs_.Watch("/w", "t1", "own", [&](const std::string&, const std::string&) { ++fired; })
          .ok());
  ASSERT_TRUE(
      xs_.Watch("/w", "t2", "own", [&](const std::string&, const std::string&) { ++fired; })
          .ok());
  xs_.RemoveWatchesOwnedBy("own");
  ASSERT_TRUE(xs_.Write("/w/a", "1").ok());
  loop_.Run();
  EXPECT_EQ(fired, 0);
}

TEST_F(XenstoreTest, DomainIntroduction) {
  EXPECT_FALSE(xs_.DomainKnown(5));
  ASSERT_TRUE(xs_.IntroduceDomain(5).ok());
  EXPECT_TRUE(xs_.DomainKnown(5));
  EXPECT_EQ(xs_.IntroduceDomain(5).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(xs_.ReleaseDomain(5).ok());
  EXPECT_FALSE(xs_.DomainKnown(5));
}

TEST_F(XenstoreTest, RequestsChargeTimeProportionalToStoreSize) {
  ASSERT_TRUE(xs_.Write("/seed", "x").ok());
  SimTime t0 = loop_.Now();
  ASSERT_TRUE(xs_.Write("/a", "1").ok());
  SimDuration small_store = loop_.Now() - t0;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(xs_.Write("/bulk/" + std::to_string(i), "v").ok());
  }
  SimTime t1 = loop_.Now();
  ASSERT_TRUE(xs_.Write("/b", "1").ok());
  SimDuration big_store = loop_.Now() - t1;
  EXPECT_GT(big_store, small_store);
}

TEST_F(XenstoreTest, AccessLogRotationChargesSpike) {
  CostModel costs;
  costs.xs_log_rotate_every = 10;
  costs.xs_log_rotate = SimDuration::Millis(100);
  EventLoop loop;
  XenstoreDaemon xs(loop, costs);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(xs.Write("/k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(xs.stats().log_rotations, 0u);
  SimTime before = loop.Now();
  ASSERT_TRUE(xs.Write("/trip", "v").ok());
  EXPECT_EQ(xs.stats().log_rotations, 1u);
  EXPECT_GT((loop.Now() - before).ToMillis(), 99.0);
}

TEST_F(XenstoreTest, DisablingAccessLogPreventsRotations) {
  CostModel costs;
  costs.xs_log_rotate_every = 5;
  EventLoop loop;
  XenstoreDaemon xs(loop, costs);
  xs.SetAccessLogEnabled(false);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(xs.Write("/k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(xs.stats().log_rotations, 0u);
}

TEST_F(XenstoreTest, StatsCountRequestKinds) {
  (void)xs_.Write("/a", "1");
  (void)xs_.Read("/a");
  (void)xs_.Directory("/");
  EXPECT_EQ(xs_.stats().writes, 1u);
  EXPECT_EQ(xs_.stats().reads, 1u);
  EXPECT_EQ(xs_.stats().directory_lists, 1u);
  EXPECT_EQ(xs_.stats().requests, 3u);
}

// --- xs_clone ---

class XsCloneTest : public XenstoreTest {
 protected:
  void SeedParentDomain(DomId p) {
    const std::string dp = XsDomainPath(p);
    ASSERT_TRUE(xs_.Write(dp + "/name", "guest").ok());
    ASSERT_TRUE(xs_.Write(dp + "/domid", std::to_string(p)).ok());
    ASSERT_TRUE(xs_.Write(dp + "/console/ring-ref", "17").ok());
    ASSERT_TRUE(
        xs_.Write(dp + "/device/vif/0/backend", XsBackendPath(0, "vif", p, 0)).ok());
    ASSERT_TRUE(xs_.Write(dp + "/device/vif/0/state", "4").ok());
    ASSERT_TRUE(xs_.Write(XsBackendPath(0, "vif", p, 0) + "/frontend",
                          XsFrontendPath(p, "vif", 0))
                    .ok());
    ASSERT_TRUE(xs_.Write(XsBackendPath(0, "vif", p, 0) + "/frontend-id",
                          std::to_string(p))
                    .ok());
    ASSERT_TRUE(xs_.IntroduceDomain(p).ok());
  }
};

TEST_F(XsCloneTest, RequiresIntroducedChild) {
  SeedParentDomain(7);
  EXPECT_EQ(xs_.XsClone(7, 8, XsCloneOp::kDevVif, XsDomainPath(7), XsDomainPath(8)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(XsCloneTest, ClonesWholeDirectoryAsOneRequest) {
  SeedParentDomain(7);
  ASSERT_TRUE(xs_.IntroduceDomain(8, 7).ok());
  std::uint64_t before = xs_.stats().requests;
  ASSERT_TRUE(
      xs_.XsClone(7, 8, XsCloneOp::kDevVif, XsDomainPath(7), XsDomainPath(8)).ok());
  EXPECT_EQ(xs_.stats().requests, before + 1);  // ONE request, many entries
  EXPECT_EQ(xs_.stats().xs_clone_requests, 1u);
  EXPECT_EQ(*xs_.Read(XsDomainPath(8) + "/name"), "guest");
  EXPECT_EQ(*xs_.Read(XsDomainPath(8) + "/console/ring-ref"), "17");
}

TEST_F(XsCloneTest, DeviceHeuristicRewritesDomids) {
  SeedParentDomain(7);
  ASSERT_TRUE(xs_.IntroduceDomain(8, 7).ok());
  ASSERT_TRUE(
      xs_.XsClone(7, 8, XsCloneOp::kDevVif, XsDomainPath(7), XsDomainPath(8)).ok());
  // Whole-value domid rewritten.
  EXPECT_EQ(*xs_.Read(XsDomainPath(8) + "/domid"), "8");
  // Path fragment rewritten: .../vif/7/0 -> .../vif/8/0.
  EXPECT_EQ(*xs_.Read(XsDomainPath(8) + "/device/vif/0/backend"),
            XsBackendPath(0, "vif", 8, 0));
}

TEST_F(XsCloneTest, BackendCloneRewritesFrontendReferences) {
  SeedParentDomain(7);
  ASSERT_TRUE(xs_.IntroduceDomain(8, 7).ok());
  ASSERT_TRUE(xs_.XsClone(7, 8, XsCloneOp::kDevVif, XsBackendPath(0, "vif", 7, 0),
                          XsBackendPath(0, "vif", 8, 0))
                  .ok());
  EXPECT_EQ(*xs_.Read(XsBackendPath(0, "vif", 8, 0) + "/frontend-id"), "8");
  // Trailing /domain/7 reference rewritten.
  EXPECT_EQ(*xs_.Read(XsBackendPath(0, "vif", 8, 0) + "/frontend"),
            XsFrontendPath(8, "vif", 0));
}

TEST_F(XsCloneTest, BasicOpCopiesWithoutRewriting) {
  SeedParentDomain(7);
  ASSERT_TRUE(xs_.IntroduceDomain(8, 7).ok());
  ASSERT_TRUE(xs_.XsClone(7, 8, XsCloneOp::kBasic, XsDomainPath(7), XsDomainPath(8)).ok());
  EXPECT_EQ(*xs_.Read(XsDomainPath(8) + "/domid"), "7");  // untouched
}

TEST_F(XsCloneTest, FiresWatchOnCloneRoot) {
  SeedParentDomain(7);
  ASSERT_TRUE(xs_.IntroduceDomain(8, 7).ok());
  int fired = 0;
  ASSERT_TRUE(xs_.Watch(XsDomainPath(8), "t", "o",
                        [&](const std::string&, const std::string&) { ++fired; })
                  .ok());
  ASSERT_TRUE(
      xs_.XsClone(7, 8, XsCloneOp::kDevVif, XsDomainPath(7), XsDomainPath(8)).ok());
  loop_.Run();
  EXPECT_EQ(fired, 1);
}

TEST_F(XsCloneTest, MissingParentPathFails) {
  ASSERT_TRUE(xs_.IntroduceDomain(8).ok());
  EXPECT_EQ(xs_.XsClone(7, 8, XsCloneOp::kBasic, "/nope", "/dst").code(),
            StatusCode::kNotFound);
}

// Property (DESIGN.md invariant 5): for every device heuristic, xs_clone
// equals a deep copy followed by domid rewriting.
class XsCloneEquivalence : public ::testing::TestWithParam<XsCloneOp> {};

TEST_P(XsCloneEquivalence, MatchesRewrittenDeepCopy) {
  EventLoop loop;
  XenstoreDaemon xs(loop, DefaultCostModel());
  const DomId p = 11, c = 12;
  const std::string dp = XsDomainPath(p);
  ASSERT_TRUE(xs.Write(dp + "/domid", std::to_string(p)).ok());
  ASSERT_TRUE(xs.Write(dp + "/ref", "/x/" + std::to_string(p) + "/y").ok());
  ASSERT_TRUE(xs.Write(dp + "/plain", "unrelated-11-ish").ok());
  ASSERT_TRUE(xs.IntroduceDomain(p).ok());
  ASSERT_TRUE(xs.IntroduceDomain(c, p).ok());
  ASSERT_TRUE(xs.XsClone(p, c, GetParam(), dp, XsDomainPath(c)).ok());

  bool rewrite = GetParam() != XsCloneOp::kBasic;
  EXPECT_EQ(*xs.Read(XsDomainPath(c) + "/domid"), rewrite ? "12" : "11");
  EXPECT_EQ(*xs.Read(XsDomainPath(c) + "/ref"), rewrite ? "/x/12/y" : "/x/11/y");
  // Values merely containing the digits are never rewritten.
  EXPECT_EQ(*xs.Read(XsDomainPath(c) + "/plain"), "unrelated-11-ish");
}

INSTANTIATE_TEST_SUITE_P(AllOps, XsCloneEquivalence,
                         ::testing::Values(XsCloneOp::kBasic, XsCloneOp::kDevConsole,
                                           XsCloneOp::kDevVif, XsCloneOp::kDev9pfs));

}  // namespace
}  // namespace nephele
