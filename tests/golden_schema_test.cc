// Golden-file schema tests for the observability exports.
//
// A fixed workload (one guest, one clone batch, one COW write, one reset)
// runs against a fresh system; the resulting MetricsRegistry::ExportJson()
// and TraceRecorder::ExportJson() must match the committed golden files
// byte for byte. Any change to metric names, JSON shape, key ordering or
// span layout shows up as a diff here — intentional changes re-record with:
//
//   NEPHELE_UPDATE_GOLDEN=1 ./golden_schema_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/system.h"
#include "src/load/dispatch.h"
#include "src/load/load_gen.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/scheduler.h"
#include "src/toolstack/domain_config.h"

namespace nephele {
namespace {

#ifndef NEPHELE_GOLDEN_DIR
#define NEPHELE_GOLDEN_DIR "tests/golden"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(NEPHELE_GOLDEN_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("NEPHELE_UPDATE_GOLDEN") != nullptr) {
    std::filesystem::create_directories(NEPHELE_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << "missing golden file " << path << "; record it with NEPHELE_UPDATE_GOLDEN=1";
  const std::string expected = ReadFile(path);
  EXPECT_EQ(actual, expected)
      << "export schema drifted from " << path
      << "; if intentional, re-record with NEPHELE_UPDATE_GOLDEN=1";
}

// The fixed workload both exports are recorded against.
void RunGoldenWorkload(NepheleSystem& sys) {
  DomainConfig cfg;
  cfg.name = "golden";
  cfg.max_clones = 8;
  auto parent = sys.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(parent.ok());
  sys.Settle();

  const Domain* d = sys.hypervisor().FindDomain(*parent);
  ASSERT_NE(d, nullptr);
  auto children =
      sys.clone_engine().Clone({*parent, *parent, d->p2m[d->start_info_gfn].mfn, 2});
  ASSERT_TRUE(children.ok());
  sys.Settle();

  const GuestMemoryLayout layout =
      ComputeGuestLayout(cfg, sys.hypervisor().config().min_domain_pages);
  const std::uint8_t value = 7;
  ASSERT_TRUE(sys.hypervisor()
                  .WriteGuestPage(children->front(), static_cast<Gfn>(layout.heap_first_gfn),
                                  0, &value, 1)
                  .ok());
  ASSERT_TRUE(sys.clone_engine().CloneReset(kDom0, children->front()).ok());
  sys.Settle();
}

// The telemetry pipeline over the same workload: a collector ticking every
// simulated millisecond with the stock alarm rules, four ticks before the
// workload and four after, so the ring holds samples from both the idle and
// the post-clone regime.
struct TsdbExports {
  std::string tsdb;
  std::string alarms;
};

TsdbExports RunTsdbGoldenWorkload(NepheleSystem& sys) {
  TsdbConfig tcfg;
  tcfg.tick_interval = SimDuration::Millis(1);
  tcfg.ring_capacity = 16;
  TsdbCollector tsdb(sys.metrics(), sys.loop(), tcfg);
  AlarmEngine alarms(tsdb, sys.metrics());
  for (const AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }
  tsdb.ScheduleTicks(4);
  sys.Settle();
  RunGoldenWorkload(sys);
  tsdb.ScheduleTicks(4);
  sys.Settle();
  return {tsdb.ExportJson(), alarms.ExportJson()};
}

// The request layer's TSDB surface: a fixed seeded load run (scheduler-mode
// request cloning against one parent) under a ticking collector with the
// stock rules. Locks the schema of the new load/* and req/* series and the
// req_tail alarm export.
TsdbExports RunRequestLayerGoldenWorkload(NepheleSystem& sys) {
  TsdbConfig tcfg;
  tcfg.tick_interval = SimDuration::Millis(5);
  tcfg.ring_capacity = 32;
  TsdbCollector tsdb(sys.metrics(), sys.loop(), tcfg);
  AlarmEngine alarms(tsdb, sys.metrics());
  for (const AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }
  CloneScheduler sched(sys);
  DomainConfig cfg;
  cfg.name = "req-golden";
  cfg.max_clones = 64;
  auto parent = sys.toolstack().CreateDomain(cfg);
  EXPECT_TRUE(parent.ok());
  sys.Settle();
  LoadGenerator generator(sys);
  RequestCloneDispatcher dispatcher(sys, sched);
  dispatcher.SetParent(*parent);
  tsdb.ScheduleTicks(4);
  sys.Settle();
  generator.Start(SimDuration::Millis(100),
                  [&dispatcher](const LoadRequest& r) { dispatcher.Submit(r); });
  tsdb.ScheduleTicks(24);  // interleaves with the load run (5 ms apart)
  sys.Settle();
  return {tsdb.ExportJson(), alarms.ExportJson()};
}

TEST(GoldenSchemaTest, RequestLayerTsdbExportMatchesGolden) {
  NepheleSystem sys;
  TsdbExports exports = RunRequestLayerGoldenWorkload(sys);
  CompareOrUpdate("req_tsdb_export.json", exports.tsdb);
}

TEST(GoldenSchemaTest, RequestLayerAlarmExportMatchesGolden) {
  NepheleSystem sys;
  TsdbExports exports = RunRequestLayerGoldenWorkload(sys);
  CompareOrUpdate("req_alarm_export.json", exports.alarms);
}

TEST(GoldenSchemaTest, RequestLayerExportsAreDeterministicAcrossRuns) {
  NepheleSystem a;
  NepheleSystem b;
  TsdbExports ea = RunRequestLayerGoldenWorkload(a);
  TsdbExports eb = RunRequestLayerGoldenWorkload(b);
  EXPECT_EQ(ea.tsdb, eb.tsdb);
  EXPECT_EQ(ea.alarms, eb.alarms);
}

TEST(GoldenSchemaTest, TsdbExportMatchesGolden) {
  NepheleSystem sys;
  TsdbExports exports = RunTsdbGoldenWorkload(sys);
  CompareOrUpdate("tsdb_export.json", exports.tsdb);
}

TEST(GoldenSchemaTest, AlarmExportMatchesGolden) {
  NepheleSystem sys;
  TsdbExports exports = RunTsdbGoldenWorkload(sys);
  CompareOrUpdate("alarm_export.json", exports.alarms);
}

TEST(GoldenSchemaTest, TsdbExportsAreDeterministicAcrossRuns) {
  NepheleSystem a;
  NepheleSystem b;
  TsdbExports ea = RunTsdbGoldenWorkload(a);
  TsdbExports eb = RunTsdbGoldenWorkload(b);
  EXPECT_EQ(ea.tsdb, eb.tsdb);
  EXPECT_EQ(ea.alarms, eb.alarms);
}

TEST(GoldenSchemaTest, MetricsExportMatchesGolden) {
  NepheleSystem sys;
  RunGoldenWorkload(sys);
  CompareOrUpdate("metrics_export.json", sys.metrics().ExportJson());
}

TEST(GoldenSchemaTest, TraceExportMatchesGolden) {
  NepheleSystem sys;
  RunGoldenWorkload(sys);
  CompareOrUpdate("trace_export.json", sys.trace().ExportJson());
}

// The exports are deterministic: two identical systems running the same
// workload serialize identically. This guards the golden comparison itself
// against nondeterminism (which would make the files flap).
TEST(GoldenSchemaTest, ExportsAreDeterministicAcrossRuns) {
  NepheleSystem a;
  NepheleSystem b;
  RunGoldenWorkload(a);
  RunGoldenWorkload(b);
  EXPECT_EQ(a.metrics().ExportJson(), b.metrics().ExportJson());
  EXPECT_EQ(a.trace().ExportJson(), b.trace().ExportJson());
}

}  // namespace
}  // namespace nephele
