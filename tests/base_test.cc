#include <gtest/gtest.h>

#include <sstream>

#include "src/base/log.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/base/units.h"

namespace nephele {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = ErrNotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(ErrNotFound("a"), ErrNotFound("b"));
  EXPECT_FALSE(ErrNotFound("a") == ErrInternal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(Status, AllConstructorsMapToCodes) {
  EXPECT_EQ(ErrInvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrAlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ErrPermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ErrResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrFailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ErrOutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ErrUnimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ErrInternal("").code(), StatusCode::kInternal);
  EXPECT_EQ(ErrUnavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ErrAborted("").code(), StatusCode::kAborted);
}

TEST(Status, CodeOnlyConstructorHasEmptyMessage) {
  Status s(StatusCode::kUnavailable);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "unavailable");
}

TEST(Status, StreamsToString) {
  std::ostringstream out;
  out << Status() << " / " << ErrNotFound("missing") << " / " << Status(StatusCode::kAborted);
  EXPECT_EQ(out.str(), "ok / not_found: missing / aborted");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "aborted");
}

Status HelperReturnIfError(bool fail) {
  NEPHELE_RETURN_IF_ERROR(fail ? ErrInternal("inner") : Status::Ok());
  return ErrAborted("reached end");
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(HelperReturnIfError(true).code(), StatusCode::kInternal);
  EXPECT_EQ(HelperReturnIfError(false).code(), StatusCode::kAborted);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = ErrNotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrPrefersValue) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> HelperAssign(bool fail) {
  Result<int> inner = fail ? Result<int>(ErrUnavailable("busy")) : Result<int>(10);
  NEPHELE_ASSIGN_OR_RETURN(int v, inner);
  return v + 1;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*HelperAssign(false), 11);
  EXPECT_EQ(HelperAssign(true).status().code(), StatusCode::kUnavailable);
}

TEST(Units, PageArithmetic) {
  EXPECT_EQ(BytesToPages(1), 1u);
  EXPECT_EQ(BytesToPages(kPageSize), 1u);
  EXPECT_EQ(BytesToPages(kPageSize + 1), 2u);
  EXPECT_EQ(PagesToBytes(3), 3 * kPageSize);
  EXPECT_EQ(MiBToPages(4), 1024u);
}

TEST(Units, PageTablePagesGrowWithMapping) {
  // 4 MiB guest: 1024 pages -> 2 L1 + 1 + 1 + 1.
  EXPECT_EQ(PageTablePagesFor(1024), 5u);
  // 4 GiB: 1 Mi pages -> 2048 L1 + 4 L2 + 1 + 1.
  EXPECT_EQ(PageTablePagesFor(1 << 20), 2048u + 4 + 1 + 1);
  EXPECT_GT(PageTablePagesFor(1 << 20), PageTablePagesFor(1024));
}

TEST(Log, LevelGatesOutput) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  NEPHELE_LOG(kDebug, "test") << "suppressed";
  SetLogLevel(old);
}

}  // namespace
}  // namespace nephele
