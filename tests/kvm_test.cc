// Tests for the KVM platform port (Sec. 5.3 / Sec. 9 future work): the
// KVM_CLONE_VM extension, fork-style whole-memory COW (no private-page
// classes), ivshmem IDC, and kvmcloned's vhost/tap second stage.

#include <gtest/gtest.h>

#include "src/kvm/kvmcloned.h"

namespace nephele {
namespace {

class KvmTest : public ::testing::Test {
 protected:
  KvmTest() : host_(loop_, DefaultCostModel(), 64 * 1024) {}

  VmId BootVm(std::size_t pages = 1024, std::uint32_t max_clones = 8) {
    auto vm = host_.CreateVm("kvm-guest", 1);
    EXPECT_TRUE(vm.ok());
    EXPECT_TRUE(host_.SetUserMemoryRegion(*vm, pages).ok());
    if (max_clones > 0) {
      host_.Find(*vm)->max_clones = max_clones;
    }
    EXPECT_TRUE(host_.Run(*vm).ok());
    return *vm;
  }

  VmId CloneAndComplete(VmId parent) {
    auto child = host_.CloneVm(parent);
    EXPECT_TRUE(child.ok()) << child.status().ToString();
    loop_.Run();  // deliver the clone notification, if a daemon listens
    if (host_.Find(*child) != nullptr && !host_.Find(*child)->running) {
      (void)host_.CloneComplete(*child);
    }
    return *child;
  }

  EventLoop loop_;
  KvmHost host_;
};

TEST_F(KvmTest, CreateVmAndMemory) {
  VmId vm = BootVm(512);
  const KvmVm* v = host_.Find(vm);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->memory.size(), 512u);
  EXPECT_TRUE(v->running);
  EXPECT_EQ(host_.SetUserMemoryRegion(vm, 8).code(), StatusCode::kFailedPrecondition);
}

TEST_F(KvmTest, CloneRequiresEnable) {
  VmId vm = BootVm(64, /*max_clones=*/0);
  EXPECT_EQ(host_.CloneVm(vm).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KvmTest, CloneSharesEverythingCow) {
  VmId parent = BootVm(256);
  std::size_t free_before = host_.FreePoolFrames();
  VmId child = CloneAndComplete(parent);
  // fork-COW: ZERO new frames at clone time — even "rings" would share.
  EXPECT_EQ(host_.FreePoolFrames(), free_before);
  const KvmVm* c = host_.Find(child);
  EXPECT_EQ(c->memory.size(), 256u);
  EXPECT_EQ(c->parent, parent);
  EXPECT_EQ(c->vcpus[0].rax, 1u);
  EXPECT_EQ(host_.Find(parent)->vcpus[0].rax, 0u);
  EXPECT_TRUE(host_.SameFamily(parent, child));
}

TEST_F(KvmTest, CowIsolationAfterClone) {
  VmId parent = BootVm(64);
  const char before[] = "kvm-orig";
  ASSERT_TRUE(host_.WriteGuestPage(parent, 5, 0, before, sizeof(before)).ok());
  VmId child = CloneAndComplete(parent);
  char buf[16] = {};
  ASSERT_TRUE(host_.ReadGuestPage(child, 5, 0, buf, sizeof(before)).ok());
  EXPECT_STREQ(buf, "kvm-orig");
  const char mod[] = "kvm-mod!";
  ASSERT_TRUE(host_.WriteGuestPage(child, 5, 0, mod, sizeof(mod)).ok());
  ASSERT_TRUE(host_.ReadGuestPage(parent, 5, 0, buf, sizeof(before)).ok());
  EXPECT_STREQ(buf, "kvm-orig");
  EXPECT_EQ(host_.Find(child)->cow_faults, 1u);
}

TEST_F(KvmTest, ParentPausedUntilDaemonCompletes) {
  VmId parent = BootVm(64);
  auto child = host_.CloneVm(parent);
  ASSERT_TRUE(child.ok());
  EXPECT_FALSE(host_.Find(parent)->running);
  EXPECT_FALSE(host_.Find(*child)->running);
  ASSERT_TRUE(host_.CloneComplete(*child).ok());
  EXPECT_TRUE(host_.Find(parent)->running);
  EXPECT_TRUE(host_.Find(*child)->running);
  EXPECT_EQ(host_.CloneComplete(*child).code(), StatusCode::kNotFound);
}

TEST_F(KvmTest, MaxClonesEnforced) {
  VmId parent = BootVm(64, /*max_clones=*/2);
  (void)CloneAndComplete(parent);
  (void)CloneAndComplete(parent);
  EXPECT_EQ(host_.CloneVm(parent).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KvmTest, DestroyReclaimsEverything) {
  std::size_t free_start = host_.FreePoolFrames();
  VmId parent = BootVm(128);
  VmId child = CloneAndComplete(parent);
  char b = 1;
  ASSERT_TRUE(host_.WriteGuestPage(child, 0, 0, &b, 1).ok());  // one COW copy
  ASSERT_TRUE(host_.DestroyVm(child).ok());
  ASSERT_TRUE(host_.DestroyVm(parent).ok());
  EXPECT_EQ(host_.FreePoolFrames(), free_start);
}

TEST_F(KvmTest, IdcRegionStaysWritableAcrossClone) {
  VmId parent = BootVm(128);
  auto region = KvmIdcRegion::Create(host_, parent, 2);
  ASSERT_TRUE(region.ok());
  VmId child = CloneAndComplete(parent);
  // Child writes, parent reads: true sharing, no COW — across page bounds.
  std::vector<std::uint8_t> msg(32, 0x3C);
  ASSERT_TRUE(region->Write(child, kPageSize - 16, msg.data(), msg.size()).ok());
  std::uint8_t out = 0;
  ASSERT_TRUE(region->Read(parent, kPageSize + 8, &out, 1).ok());
  EXPECT_EQ(out, 0x3C);
  EXPECT_EQ(host_.Find(parent)->cow_faults, 0u);
  EXPECT_EQ(host_.Find(child)->cow_faults, 0u);
}

TEST_F(KvmTest, IdcRegionRejectsStrangers) {
  VmId parent = BootVm(128);
  VmId stranger = BootVm(128);
  auto region = KvmIdcRegion::Create(host_, parent, 1);
  ASSERT_TRUE(region.ok());
  char b = 0;
  EXPECT_EQ(region->Write(stranger, 0, &b, 1).code(), StatusCode::kPermissionDenied);
}

class KvmclonedTest : public KvmTest {
 protected:
  KvmclonedTest() : daemon_(host_, bridge_) {}
  Bridge bridge_;
  Kvmcloned daemon_;
};

TEST_F(KvmclonedTest, SetupNetAttachesTap) {
  VmId vm = BootVm(128);
  auto tap = daemon_.SetupNet(vm, 0xAA, MakeIpv4(10, 9, 0, 2));
  ASSERT_TRUE(tap.ok());
  EXPECT_EQ(bridge_.num_ports(), 1u);
  int uplinked = 0;
  bridge_.set_uplink_sink([&](const Packet&) { ++uplinked; });
  Packet p;
  p.proto = IpProto::kUdp;
  p.src_ip = (*tap)->ip();
  p.dst_ip = MakeIpv4(10, 9, 255, 1);
  ASSERT_TRUE((*tap)->Transmit(p).ok());
  EXPECT_EQ(uplinked, 1);
}

TEST_F(KvmclonedTest, CloneSecondStageCreatesChildTap) {
  VmId parent = BootVm(128);
  ASSERT_TRUE(daemon_.SetupNet(parent, 0xAA, MakeIpv4(10, 9, 0, 2)).ok());
  auto child = host_.CloneVm(parent);
  ASSERT_TRUE(child.ok());
  loop_.Run();  // daemon handles the notification
  EXPECT_EQ(daemon_.clones_completed(), 1u);
  KvmTap* child_tap = daemon_.FindTap(*child);
  ASSERT_NE(child_tap, nullptr);
  // Same MAC/IP, attached to the same switch; both VMs resumed.
  EXPECT_EQ(child_tap->mac(), daemon_.FindTap(parent)->mac());
  EXPECT_EQ(child_tap->ip(), daemon_.FindTap(parent)->ip());
  EXPECT_EQ(bridge_.num_ports(), 2u);
  EXPECT_TRUE(host_.Find(parent)->running);
  EXPECT_TRUE(host_.Find(*child)->running);
}

TEST_F(KvmclonedTest, ChildReceivesTraffic) {
  VmId parent = BootVm(128);
  ASSERT_TRUE(daemon_.SetupNet(parent, 0xAA, MakeIpv4(10, 9, 0, 2)).ok());
  auto child = host_.CloneVm(parent);
  ASSERT_TRUE(child.ok());
  loop_.Run();
  int got = 0;
  daemon_.FindTap(*child)->set_receive_handler([&](const Packet&) { ++got; });
  Packet p;
  p.proto = IpProto::kUdp;
  p.dst_ip = MakeIpv4(10, 9, 0, 2);
  daemon_.FindTap(*child)->DeliverToGuest(p);
  loop_.Run();
  EXPECT_EQ(got, 1);
}

TEST_F(KvmTest, DensityMirrorsXenButWithoutPrivatePages) {
  // The KVM clone has NO private-page tax at all (even the Xen port pays
  // ~1.4 MiB for rings/buffers/PTs); its divergence is purely write-driven.
  VmId parent = BootVm(1024, /*max_clones=*/16);
  std::size_t free_before = host_.FreePoolFrames();
  std::vector<VmId> clones;
  for (int i = 0; i < 10; ++i) {
    clones.push_back(CloneAndComplete(parent));
  }
  EXPECT_EQ(host_.FreePoolFrames(), free_before);  // zero upfront cost
  // Each clone dirties 16 pages -> exactly 160 frames consumed.
  char b = 1;
  for (VmId c : clones) {
    for (Gfn g = 0; g < 16; ++g) {
      ASSERT_TRUE(host_.WriteGuestPage(c, g, 0, &b, 1).ok());
    }
  }
  EXPECT_EQ(free_before - host_.FreePoolFrames(), 160u);
}

}  // namespace
}  // namespace nephele
