#include <gtest/gtest.h>

#include "src/apps/faas_app.h"
#include "src/apps/fuzz_target_app.h"
#include "src/apps/mem_app.h"
#include "src/apps/nginx_app.h"
#include "src/apps/redis_app.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"

namespace nephele {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;
    return cfg;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(AppsTest, UdpReadyAppEchoes) {
  DomainConfig cfg;
  cfg.name = "udp";
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  Packet probe;
  probe.proto = IpProto::kUdp;
  probe.src_ip = MakeIpv4(10, 8, 255, 1);
  probe.src_port = 4242;
  probe.dst_ip = gd->net->ip();
  probe.dst_port = 7;
  probe.payload = {1, 2, 3};
  system_.toolstack().default_switch()->InjectFromUplink(probe);
  system_.Settle();
  ASSERT_EQ(uplink.size(), 1u);
  EXPECT_EQ(uplink[0].dst_port, 4242);
  EXPECT_EQ(uplink[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  auto* app = dynamic_cast<UdpReadyApp*>(guests_.AppOf(*dom));
  EXPECT_EQ(app->packets_echoed(), 1u);
}

TEST_F(AppsTest, MemAppAllocatesResidentChunk) {
  DomainConfig cfg;
  cfg.name = "mem";
  cfg.memory_mb = 16;
  auto dom = guests_.Launch(cfg, std::make_unique<MemApp>(MemAppConfig{.alloc_mb = 8}));
  system_.Settle();
  auto* app = dynamic_cast<MemApp*>(guests_.AppOf(*dom));
  ASSERT_TRUE(app->allocated());
  EXPECT_EQ(app->block().size, 8 * kMiB);
  EXPECT_TRUE(guests_.ContextOf(*dom)->net().IsTcpListening(4000));
}

TEST_F(AppsTest, MemAppForkCommandRepliesWithChildId) {
  DomainConfig cfg;
  cfg.name = "mem";
  cfg.memory_mb = 8;
  cfg.max_clones = 4;
  auto dom = guests_.Launch(cfg, std::make_unique<MemApp>(MemAppConfig{.alloc_mb = 1}));
  system_.Settle();
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  Packet fork_req;
  fork_req.proto = IpProto::kTcp;
  fork_req.src_ip = MakeIpv4(10, 8, 255, 1);
  fork_req.src_port = 5000;
  fork_req.dst_ip = gd->net->ip();
  fork_req.dst_port = 4000;
  std::string cmd = "fork";
  fork_req.payload.assign(cmd.begin(), cmd.end());
  system_.toolstack().default_switch()->InjectFromUplink(fork_req);
  system_.Settle();
  ASSERT_EQ(uplink.size(), 1u);
  std::string reply(uplink[0].payload.begin(), uplink[0].payload.end());
  EXPECT_EQ(reply.rfind("forked:", 0), 0u);
  // The clone exists and is part of the family.
  DomId child = static_cast<DomId>(std::stoi(reply.substr(7)));
  EXPECT_TRUE(system_.hypervisor().IsDescendantOf(child, *dom));
}

TEST_F(AppsTest, NginxMasterForksWorkers) {
  DomainConfig cfg;
  cfg.name = "nginx";
  cfg.max_clones = 8;
  NginxConfig ncfg;
  ncfg.workers = 4;
  auto dom = guests_.Launch(cfg, std::make_unique<NginxApp>(ncfg));
  system_.Settle();
  const Domain* d = system_.hypervisor().FindDomain(*dom);
  EXPECT_EQ(d->children.size(), 3u);  // master + 3 clones = 4 workers
  for (DomId c : d->children) {
    auto* worker = dynamic_cast<NginxApp*>(guests_.AppOf(c));
    ASSERT_NE(worker, nullptr);
    EXPECT_TRUE(worker->is_worker());
    EXPECT_TRUE(guests_.ContextOf(c)->net().IsTcpListening(80));
  }
}

TEST_F(AppsTest, NginxServesHttp) {
  DomainConfig cfg;
  cfg.name = "nginx";
  auto dom = guests_.Launch(cfg, std::make_unique<NginxApp>(NginxConfig{}));
  system_.Settle();
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  Packet req;
  req.proto = IpProto::kTcp;
  req.src_ip = MakeIpv4(10, 8, 255, 1);
  req.src_port = 7777;
  req.dst_ip = gd->net->ip();
  req.dst_port = 80;
  std::string get = "GET / HTTP/1.1";
  req.payload.assign(get.begin(), get.end());
  system_.toolstack().default_switch()->InjectFromUplink(req);
  system_.Settle();
  ASSERT_EQ(uplink.size(), 1u);
  std::string reply(uplink[0].payload.begin(), uplink[0].payload.end());
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_EQ(dynamic_cast<NginxApp*>(guests_.AppOf(*dom))->requests_served(), 1u);
}

TEST_F(AppsTest, RedisSetGet) {
  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 16;
  auto dom = guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  system_.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  ASSERT_TRUE(redis->Set(*ctx, "k1", "v1").ok());
  EXPECT_EQ(*redis->Get("k1"), "v1");
  EXPECT_EQ(redis->Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(redis->num_keys(), 1u);
}

TEST_F(AppsTest, RedisMassInsertDirtiesGuestMemory) {
  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 32;
  auto dom = guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  system_.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  std::size_t allocated_before = ctx->arena().allocated_bytes();
  ASSERT_TRUE(redis->MassInsert(*ctx, 10000).ok());
  EXPECT_EQ(redis->num_keys(), 10000u);
  EXPECT_GT(ctx->arena().allocated_bytes(), allocated_before + 900 * 1000);
}

TEST_F(AppsTest, RedisSaveForksSerializesAndChildExits) {
  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 16;
  cfg.max_clones = 8;
  cfg.with_p9fs = true;
  auto dom = guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  system_.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  ASSERT_TRUE(redis->Set(*ctx, "k", "v").ok());
  DomId saver = kDomInvalid;
  redis->set_on_saved([&](DomId child) { saver = child; });
  ASSERT_TRUE(redis->Save(*ctx).ok());
  system_.Settle();
  ASSERT_NE(saver, kDomInvalid);
  // The dump landed on the 9pfs share and the clone destroyed itself.
  EXPECT_TRUE(system_.devices().hostfs().Exists(cfg.p9_export + "/dump.rdb"));
  EXPECT_FALSE(guests_.Alive(saver));
  EXPECT_TRUE(guests_.Alive(*dom));  // parent unaffected
}

TEST_F(AppsTest, RedisBgsaveOverTcp) {
  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 16;
  cfg.max_clones = 8;
  cfg.with_p9fs = true;
  auto dom = guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  system_.Settle();
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  auto send_cmd = [&](const std::string& cmd) {
    Packet p;
    p.proto = IpProto::kTcp;
    p.src_ip = MakeIpv4(10, 8, 255, 1);
    p.src_port = 6000;
    p.dst_ip = gd->net->ip();
    p.dst_port = 6379;
    p.payload.assign(cmd.begin(), cmd.end());
    system_.toolstack().default_switch()->InjectFromUplink(p);
    system_.Settle();
  };
  send_cmd("SET mykey myval");
  send_cmd("GET mykey");
  send_cmd("BGSAVE");
  send_cmd("DBSIZE");
  ASSERT_EQ(uplink.size(), 4u);
  EXPECT_EQ(std::string(uplink[0].payload.begin(), uplink[0].payload.end()), "+OK");
  EXPECT_EQ(std::string(uplink[1].payload.begin(), uplink[1].payload.end()), "$myval");
  EXPECT_EQ(std::string(uplink[2].payload.begin(), uplink[2].payload.end()),
            "+Background saving started");
  EXPECT_EQ(std::string(uplink[3].payload.begin(), uplink[3].payload.end()), ":1");
  EXPECT_TRUE(system_.devices().hostfs().Exists(cfg.p9_export + "/dump.rdb"));
}

TEST_F(AppsTest, FuzzTargetCoverageVariesWithInput) {
  DomainConfig cfg;
  cfg.name = "fuzz";
  cfg.memory_mb = 8;
  cfg.with_vif = false;
  auto dom = guests_.Launch(cfg, std::make_unique<FuzzTargetApp>(FuzzTargetConfig{}));
  system_.Settle();
  auto* app = dynamic_cast<FuzzTargetApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  std::vector<std::uint8_t> supported{1, 0, 0, 0};
  std::vector<std::uint8_t> unsupported{60, 0, 0, 0};  // nr 60 >= 44
  ExecOutcome a = app->ExecuteInput(*ctx, supported);
  ExecOutcome b = app->ExecuteInput(*ctx, unsupported);
  EXPECT_FALSE(a.crashed);
  EXPECT_TRUE(b.crashed);
  EXPECT_NE(a.coverage, b.coverage);
  EXPECT_EQ(a.pages_dirtied, 3u);
}

TEST_F(AppsTest, FuzzTargetGetppidModeIsStable) {
  DomainConfig cfg;
  cfg.name = "fuzz";
  cfg.memory_mb = 8;
  cfg.with_vif = false;
  FuzzTargetConfig fcfg;
  fcfg.trivial_getppid_mode = true;
  auto dom = guests_.Launch(cfg, std::make_unique<FuzzTargetApp>(fcfg));
  system_.Settle();
  auto* app = dynamic_cast<FuzzTargetApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  ExecOutcome a = app->ExecuteInput(*ctx, {{1, 2, 3, 4}});
  ExecOutcome b = app->ExecuteInput(*ctx, {{9, 9, 9, 9}});
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_FALSE(a.crashed);
  EXPECT_EQ(a.pages_dirtied, 1u);
}

TEST_F(AppsTest, FaasAppServesAtModelledCapacity) {
  DomainConfig cfg;
  cfg.name = "faas";
  auto dom = guests_.Launch(cfg, std::make_unique<FaasApp>(FaasAppConfig{}));
  system_.Settle();
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  SimTime before = system_.Now();
  for (int i = 0; i < 30; ++i) {
    Packet req;
    req.proto = IpProto::kTcp;
    req.src_ip = MakeIpv4(10, 8, 255, 1);
    req.src_port = static_cast<std::uint16_t>(20000 + i);
    req.dst_ip = gd->net->ip();
    req.dst_port = 8080;
    system_.toolstack().default_switch()->InjectFromUplink(req);
  }
  system_.Settle();
  EXPECT_EQ(uplink.size(), 30u);
  // 30 back-to-back requests at ~300 req/s take ~100 ms of busy time.
  double elapsed_ms = (system_.Now() - before).ToMillis();
  EXPECT_GT(elapsed_ms, 80.0);
  EXPECT_LT(elapsed_ms, 140.0);
}

}  // namespace
}  // namespace nephele
