// Tests for the extension IDC mechanisms (message queue, semaphore) — built
// purely from the Nephele primitives (IdcRegion + IdcChannel), as Sec. 5.3
// prescribes for new IPC flavours.

#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/guest/mq.h"
#include "src/sim/rng.h"

namespace nephele {
namespace {

class MqTest : public ::testing::Test {
 protected:
  MqTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;
    return cfg;
  }

  DomId BootParent() {
    DomainConfig cfg;
    cfg.name = "mq-parent";
    cfg.max_clones = 8;
    cfg.with_vif = false;
    auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    EXPECT_TRUE(dom.ok());
    system_.Settle();
    return *dom;
  }

  DomId CloneOnce(DomId parent) {
    EXPECT_TRUE(guests_.ContextOf(parent)->Fork(1, nullptr).ok());
    system_.Settle();
    return system_.hypervisor().FindDomain(parent)->children.back();
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(MqTest, SendReceivePreservesBoundaries) {
  DomId parent = BootParent();
  auto mq = IdcMessageQueue::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(mq.ok());
  ASSERT_TRUE((*mq)->Send(parent, {1, 2, 3}).ok());
  ASSERT_TRUE((*mq)->Send(parent, {}).ok());  // zero-length datagram
  ASSERT_TRUE((*mq)->Send(parent, {9}).ok());
  EXPECT_EQ(*(*mq)->MessagesQueued(parent), 3u);
  EXPECT_EQ(*(*mq)->Receive(parent), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE((*mq)->Receive(parent)->empty());
  EXPECT_EQ(*(*mq)->Receive(parent), (std::vector<std::uint8_t>{9}));
  EXPECT_EQ((*mq)->Receive(parent).status().code(), StatusCode::kUnavailable);
}

TEST_F(MqTest, FullAndOversizeRejected) {
  DomId parent = BootParent();
  auto mq = IdcMessageQueue::Create(system_.hypervisor(), parent, /*slots=*/3);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ((*mq)->capacity_messages(), 2u);
  ASSERT_TRUE((*mq)->Send(parent, {1}).ok());
  ASSERT_TRUE((*mq)->Send(parent, {2}).ok());
  EXPECT_EQ((*mq)->Send(parent, {3}).code(), StatusCode::kUnavailable);
  std::vector<std::uint8_t> big(IdcMessageQueue::kMaxMessage + 1, 0);
  EXPECT_EQ((*mq)->Send(parent, big).code(), StatusCode::kInvalidArgument);
}

TEST_F(MqTest, CrossCloneDatagrams) {
  DomId parent = BootParent();
  auto mq = IdcMessageQueue::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(mq.ok());
  DomId child = CloneOnce(parent);

  // Child -> parent.
  ASSERT_TRUE((*mq)->Send(child, {'h', 'i'}).ok());
  auto msg = (*mq)->Receive(parent);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(std::string(msg->begin(), msg->end()), "hi");

  // Parent -> child, and notification delivery.
  int notified = 0;
  system_.hypervisor().SetEvtchnHandler(child, [&](EvtchnPort) { ++notified; });
  // Rebind the channel endpoint towards the child: a second clone's channel
  // fixup already connected parent:port -> child, so Notify(parent) works.
  ASSERT_TRUE((*mq)->Send(parent, {'y', 'o'}).ok());
  system_.Settle();
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(*(*mq)->Receive(child), (std::vector<std::uint8_t>{'y', 'o'}));
}

TEST_F(MqTest, StrangerRejected) {
  DomId parent = BootParent();
  DomId stranger = BootParent();
  auto mq = IdcMessageQueue::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ((*mq)->Send(stranger, {1}).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ((*mq)->Receive(stranger).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MqTest, MultiPageQueue) {
  DomId parent = BootParent();
  // 62 slots * 256 B ≈ 4 pages: exercises the page-spanning region path.
  auto mq = IdcMessageQueue::Create(system_.hypervisor(), parent, 62);
  ASSERT_TRUE(mq.ok());
  std::vector<std::uint8_t> payload(IdcMessageQueue::kMaxMessage, 0xCD);
  for (std::size_t i = 0; i < (*mq)->capacity_messages(); ++i) {
    ASSERT_TRUE((*mq)->Send(parent, payload).ok()) << i;
  }
  for (std::size_t i = 0; i < (*mq)->capacity_messages(); ++i) {
    auto msg = (*mq)->Receive(parent);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->size(), IdcMessageQueue::kMaxMessage);
  }
}

// Property: FIFO with message boundaries under random interleavings.
class MqStreamProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MqStreamProperty, RandomInterleaving) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  DomainConfig dcfg;
  dcfg.name = "p";
  dcfg.max_clones = 2;
  dcfg.with_vif = false;
  auto parent = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  auto mq = IdcMessageQueue::Create(system.hypervisor(), *parent);
  ASSERT_TRUE(mq.ok());
  ASSERT_TRUE(guests.ContextOf(*parent)->Fork(1, nullptr).ok());
  system.Settle();
  DomId child = system.hypervisor().FindDomain(*parent)->children.front();

  Rng rng(GetParam());
  std::vector<std::vector<std::uint8_t>> sent, received;
  std::uint8_t counter = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.NextBool(0.55)) {
      std::vector<std::uint8_t> msg(rng.NextBelow(32));
      for (auto& b : msg) {
        b = counter;
      }
      ++counter;
      if ((*mq)->Send(*parent, msg).ok()) {
        sent.push_back(msg);
      }
    } else {
      auto msg = (*mq)->Receive(child);
      if (msg.ok()) {
        received.push_back(*msg);
      }
    }
  }
  while (true) {
    auto msg = (*mq)->Receive(child);
    if (!msg.ok()) {
      break;
    }
    received.push_back(*msg);
  }
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqStreamProperty, ::testing::Values(2, 4, 6, 8));

// --- Semaphore ---

TEST_F(MqTest, SemaphoreCounting) {
  DomId parent = BootParent();
  auto sem = IdcSemaphore::Create(system_.hypervisor(), parent, 2);
  ASSERT_TRUE(sem.ok());
  EXPECT_EQ(*(*sem)->Value(parent), 2u);
  EXPECT_TRUE(*(*sem)->TryWait(parent));
  EXPECT_TRUE(*(*sem)->TryWait(parent));
  EXPECT_FALSE(*(*sem)->TryWait(parent));
  ASSERT_TRUE((*sem)->Post(parent).ok());
  EXPECT_TRUE(*(*sem)->TryWait(parent));
}

TEST_F(MqTest, SemaphoreAcrossClone) {
  DomId parent = BootParent();
  auto sem = IdcSemaphore::Create(system_.hypervisor(), parent, 0);
  ASSERT_TRUE(sem.ok());
  DomId child = CloneOnce(parent);
  // Child posts; parent consumes.
  ASSERT_TRUE((*sem)->Post(child).ok());
  EXPECT_EQ(*(*sem)->Value(parent), 1u);
  EXPECT_TRUE(*(*sem)->TryWait(parent));
  EXPECT_FALSE(*(*sem)->TryWait(child));
}

}  // namespace
}  // namespace nephele
