// Hostile-guest fuzzing suite (scripts/check.sh leg 7: `ctest -L hvfuzz`).
//
// Three jobs: (1) replay the shrunk crash corpus (tests/hvfuzz_corpus) and
// require every tape oracle-clean and byte-deterministic across clone worker
// counts; (2) run fresh coverage-guided rounds through the AflEngine —
// NEPHELE_HVFUZZ_ROUNDS overrides the default 200 (0 skips, CI sanitizer
// legs use a short round); (3) prove the oracle + shrinker pipeline works by
// seeding deliberate invariant bugs behind the model's back and requiring
// each to be caught and auto-shrunk to a minimal tape.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/dst/ddmin.h"
#include "src/hvfuzz/fuzzer.h"
#include "src/hvfuzz/harness.h"
#include "src/hvfuzz/tape.h"

namespace nephele {
namespace {

// --- Tape format. ---

TEST(HvTapeTest, TextRoundTripsEveryOpKind) {
  HvTape tape;
  tape.seed = 42;
  for (std::size_t i = 0; i < kNumHvOpKinds; ++i) {
    HvOp op;
    op.kind = static_cast<HvOpKind>(i);
    op.a = static_cast<std::uint32_t>(i * 3 + 1);
    op.b = static_cast<std::uint32_t>(i * 5 + 2);
    op.c = static_cast<std::uint32_t>(i * 7 + 3);
    op.n = static_cast<std::uint32_t>(i + 1);
    op.v = static_cast<std::uint32_t>(i * 2);
    op.flags = static_cast<std::uint32_t>(i % 4);
    op.amount = i * 1000;
    op.nth = 1 + i % 3;
    if (op.kind == HvOpKind::kArm) {
      op.point = "hypervisor/frame_alloc";
    }
    tape.ops.push_back(op);
  }
  auto parsed = ParseTape(TapeToText(tape));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, tape);
}

TEST(HvTapeTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseTape("").ok());                          // no seed line
  EXPECT_FALSE(ParseTape("launch\n").ok());                  // op before seed
  EXPECT_FALSE(ParseTape("seed 1\nwarp a=1\n").ok());        // unknown op
  EXPECT_FALSE(ParseTape("seed 1\nclone a\n").ok());         // not key=value
  EXPECT_FALSE(ParseTape("seed 1\nclone q=1\n").ok());       // unknown field
  EXPECT_FALSE(ParseTape("seed 1\nclone a=beef\n").ok());    // non-numeric
  EXPECT_FALSE(ParseTape("seed x\n").ok());                  // bad seed
}

TEST(HvTapeTest, DecoderIsTotalAndPure) {
  std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x13, 0x7A, 0x42};
  HvTape a = TapeFromBytes(7, bytes);
  HvTape b = TapeFromBytes(7, bytes);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.ops.empty());
  EXPECT_EQ(a.ops[0].kind, HvOpKind::kLaunch);

  // Any byte string decodes; empty relies purely on the fallback stream.
  HvTape empty1 = TapeFromBytes(3, {});
  HvTape empty2 = TapeFromBytes(3, {});
  EXPECT_EQ(empty1, empty2);
  EXPECT_GE(empty1.ops.size(), 6u);
}

// --- Corpus replay. ---

std::vector<std::pair<std::string, HvTape>> LoadCorpus() {
  std::vector<std::pair<std::string, HvTape>> corpus;
  const std::filesystem::path dir(NEPHELE_HVFUZZ_CORPUS_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".tape") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto tape = ParseTape(buf.str());
    EXPECT_TRUE(tape.ok()) << entry.path() << ": " << tape.status().ToString();
    if (tape.ok()) {
      corpus.emplace_back(entry.path().filename().string(), *std::move(tape));
    }
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return corpus;
}

TEST(HvFuzzCorpusTest, EveryTapeReplaysOracleClean) {
  auto corpus = LoadCorpus();
  EXPECT_GE(corpus.size(), 8u) << "shrunk crash corpus went missing";
  for (const auto& [name, tape] : corpus) {
    HvRunResult r = RunTape(tape);
    EXPECT_TRUE(r.ok()) << name << " failed oracle '" << r.fail_kind << "' at op "
                        << r.fail_op << ": " << r.message << "\ndigest:\n"
                        << r.digest;
    EXPECT_EQ(r.ops_executed, tape.ops.size()) << name;
  }
}

TEST(HvFuzzCorpusTest, DigestsAreByteIdenticalAcrossRerunsAndWorkers) {
  for (const auto& [name, tape] : LoadCorpus()) {
    HvRunOptions one;
    one.force_workers = 1;
    HvRunOptions four;
    four.force_workers = 4;
    const std::string d1 = RunTape(tape, one).digest;
    const std::string d1_again = RunTape(tape, one).digest;
    const std::string d4 = RunTape(tape, four).digest;
    EXPECT_EQ(d1, d1_again) << name << ": rerun diverged";
    EXPECT_EQ(d1, d4) << name << ": worker count leaked into the digest";
  }
}

// --- Fresh coverage-guided rounds. ---

int FuzzRounds() {
  const char* env = std::getenv("NEPHELE_HVFUZZ_ROUNDS");
  if (env == nullptr || *env == '\0') {
    return 200;
  }
  return std::atoi(env);
}

TEST(HvFuzzRoundsTest, SeededRoundsStayOracleClean) {
  const int rounds = FuzzRounds();
  if (rounds <= 0) {
    GTEST_SKIP() << "NEPHELE_HVFUZZ_ROUNDS=0";
  }
  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};
  const int per_seed = (rounds + 7) / 8;
  std::size_t executed = 0;
  for (std::uint64_t seed : kSeeds) {
    HvFuzzer fuzzer(seed);
    for (int i = 0; i < per_seed; ++i) {
      HvTape tape = fuzzer.Next();
      HvRunResult r = RunTape(tape);
      fuzzer.Report(r);
      ++executed;
      if (!r.ok()) {
        // A real finding: shrink it and print the minimal tape so it can be
        // fixed and pinned into tests/hvfuzz_corpus/.
        HvShrinkOutcome shrunk = ShrinkHvTape(tape, r);
        FAIL() << "seed " << seed << " round " << i << " violated oracle '"
               << r.fail_kind << "' at op " << r.fail_op << ": " << r.message
               << "\nminimal tape (" << shrunk.tape.ops.size() << " ops, "
               << shrunk.runs << " shrink runs):\n"
               << TapeToText(shrunk.tape) << "\ndigest:\n" << shrunk.result.digest;
      }
    }
    EXPECT_GT(fuzzer.engine().edges_covered(), 0u);
    EXPECT_EQ(fuzzer.engine().executions(), static_cast<std::uint64_t>(per_seed));
    EXPECT_EQ(fuzzer.engine().crashes(), 0u);
  }
  EXPECT_GE(executed, static_cast<std::size_t>(rounds));
}

TEST(HvFuzzRoundsTest, GeneratedTapesAreWorkerCountInvariant) {
  // A deeper spot-check than the corpus: freshly generated tapes (which hit
  // multi-child clone batches more often) at 1 vs 4 staging workers.
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    HvTape tape = TapeFromBytes(seed, {});
    HvRunOptions one;
    one.force_workers = 1;
    HvRunOptions four;
    four.force_workers = 4;
    EXPECT_EQ(RunTape(tape, one).digest, RunTape(tape, four).digest) << "seed " << seed;
  }
}

// --- Seeded invariant bugs: the oracle must catch, the shrinker minimise. ---

HvTape ThreeOpTape() {
  HvTape tape;
  tape.ops.emplace_back();  // launch
  HvOp grant;
  grant.kind = HvOpKind::kGrant;
  grant.c = 1;
  tape.ops.push_back(grant);
  HvOp ev;
  ev.kind = HvOpKind::kEvAlloc;
  tape.ops.push_back(ev);
  return tape;
}

TEST(HvFuzzSeededBugTest, CowIsolationBugIsCaughtAndShrinksToMinimalTape) {
  // Poison tracked cell 0 of every guest behind the model's back: the cells
  // oracle must flag it on the first settled op with a live guest.
  HvRunOptions opts;
  opts.after_op = [](NepheleSystem& sys, const HvOp&, std::size_t) {
    for (DomId id : sys.hypervisor().DomainIds()) {
      if (id == kDom0) {
        continue;
      }
      const std::size_t heap0 =
          ComputeGuestLayout(HvGuestConfig(), sys.hypervisor().config().min_domain_pages)
              .heap_first_gfn;
      const std::uint8_t evil = 0x5A;
      // Cell 0 lives at (heap_first_gfn, offset 17) — see harness.cc.
      (void)sys.hypervisor().WriteGuestPage(id, static_cast<Gfn>(heap0), 17, &evil, 1);
      break;
    }
  };
  HvTape tape = ThreeOpTape();
  HvRunResult r = RunTape(tape, opts);
  ASSERT_EQ(r.fail_kind, "cells") << r.message;

  HvShrinkOutcome shrunk = ShrinkHvTape(tape, r, opts);
  EXPECT_LE(shrunk.tape.ops.size(), 3u);
  EXPECT_EQ(shrunk.result.fail_kind, "cells");
  // The failure needs nothing beyond booting one guest.
  ASSERT_EQ(shrunk.tape.ops.size(), 1u);
  EXPECT_EQ(shrunk.tape.ops[0].kind, HvOpKind::kLaunch);
}

TEST(HvFuzzSeededBugTest, FrameRefcountBugIsCaughtAndShrinks) {
  // Drop a reference the p2m still holds: frame conservation must fail.
  HvRunOptions opts;
  opts.after_op = [](NepheleSystem& sys, const HvOp&, std::size_t) {
    for (DomId id : sys.hypervisor().DomainIds()) {
      if (id == kDom0) {
        continue;
      }
      const Domain* d = sys.hypervisor().FindDomain(id);
      if (d == nullptr || d->p2m.empty()) {
        continue;
      }
      (void)sys.hypervisor().frames().Release(d->p2m[0].mfn);
      break;
    }
  };
  HvTape tape = ThreeOpTape();
  HvRunResult r = RunTape(tape, opts);
  ASSERT_EQ(r.fail_kind, "frames") << r.message;

  HvShrinkOutcome shrunk = ShrinkHvTape(tape, r, opts);
  EXPECT_LE(shrunk.tape.ops.size(), 3u);
  EXPECT_EQ(shrunk.result.fail_kind, "frames");
}

// --- The shared ddmin engine (also exercised end-to-end above). ---

TEST(DdminEngineTest, FindsTheMinimalFailingSubsequence) {
  std::vector<int> ops = {1, 2, 3, 4, 5, 6, 7, 8};
  std::size_t runs_seen = 0;
  auto outcome = DdminShrink<int, bool>(
      ops, true, ops.size() - 1,
      [&runs_seen](const std::vector<int>& candidate) {
        ++runs_seen;
        bool has3 = false;
        bool has7 = false;
        for (int v : candidate) {
          has3 |= v == 3;
          has7 |= v == 7;
        }
        return has3 && has7;
      },
      [](const bool& failed) { return failed; },
      [](const int&) { return std::vector<int>{}; });
  EXPECT_EQ(outcome.ops, (std::vector<int>{3, 7}));
  EXPECT_TRUE(outcome.result);
  EXPECT_EQ(outcome.runs, runs_seen);
}

}  // namespace
}  // namespace nephele
