#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/hypervisor/frame_table.h"
#include "src/sim/rng.h"

namespace nephele {
namespace {

// StageShareAll from one thread is ShareFirst + ShareAgain per extra sharer.
TEST(FrameTable, StageShareAllMatchesShareFirstAgain) {
  FrameTable ft(16);
  std::vector<Mfn> mfns;
  for (int i = 0; i < 8; ++i) {
    mfns.push_back(*ft.Alloc(1));
  }
  ft.StageShareAll(mfns, /*seed=*/0);  // first sharer
  ft.StageShareAll(mfns, /*seed=*/1);  // second sharer
  for (Mfn m : mfns) {
    EXPECT_TRUE(ft.IsShared(m));
    EXPECT_EQ(ft.OwnerOf(m), kDomCow);
    EXPECT_EQ(ft.info(m).refcount.load(), 3u);  // owner + two stagers
  }
  EXPECT_EQ(ft.shared_frames(), mfns.size());
  EXPECT_EQ(ft.frames_saved_by_sharing(), 2 * mfns.size());
}

// The concurrency contract: many workers staging the same frames at once,
// each with a different shard-rotation seed, land on the exact same state
// as the serial equivalent — every sharer counted, each first-share
// transition applied once.
TEST(FrameTable, StageShareAllIsExactUnderConcurrency) {
  constexpr int kWorkers = 8;
  constexpr int kFrames = 1000;
  FrameTable ft(kFrames);
  std::vector<Mfn> mfns;
  for (int i = 0; i < kFrames; ++i) {
    mfns.push_back(*ft.Alloc(1));
  }
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&ft, &mfns, w] { ft.StageShareAll(mfns, static_cast<std::size_t>(w)); });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  for (Mfn m : mfns) {
    EXPECT_TRUE(ft.IsShared(m));
    EXPECT_EQ(ft.OwnerOf(m), kDomCow);
    EXPECT_EQ(ft.info(m).refcount.load(), 1u + kWorkers);
  }
  EXPECT_EQ(ft.shared_frames(), static_cast<std::size_t>(kFrames));
  EXPECT_EQ(ft.frames_saved_by_sharing(), static_cast<std::size_t>(kWorkers) * kFrames);
}

TEST(FrameTable, AllocAndRelease) {
  FrameTable ft(16);
  EXPECT_EQ(ft.free_frames(), 16u);
  auto mfn = ft.Alloc(1);
  ASSERT_TRUE(mfn.ok());
  EXPECT_EQ(ft.free_frames(), 15u);
  EXPECT_EQ(ft.OwnerOf(*mfn), 1);
  EXPECT_TRUE(ft.Release(*mfn).ok());
  EXPECT_EQ(ft.free_frames(), 16u);
}

TEST(FrameTable, ExhaustionReported) {
  FrameTable ft(2);
  EXPECT_TRUE(ft.Alloc(1).ok());
  EXPECT_TRUE(ft.Alloc(1).ok());
  auto r = ft.Alloc(1);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FrameTable, ReleasedFramesAreReusable) {
  FrameTable ft(1);
  auto a = ft.Alloc(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ft.Release(*a).ok());
  auto b = ft.Alloc(2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(ft.OwnerOf(*b), 2);
}

TEST(FrameTable, ShareTransfersOwnershipToDomCow) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  ASSERT_TRUE(mfn.ok());
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  EXPECT_TRUE(ft.IsShared(*mfn));
  EXPECT_EQ(ft.OwnerOf(*mfn), kDomCow);
  EXPECT_EQ(ft.info(*mfn).refcount, 2u);
  EXPECT_EQ(ft.shared_frames(), 1u);
  EXPECT_EQ(ft.frames_saved_by_sharing(), 1u);
}

TEST(FrameTable, ShareFirstRejectsDoubleShare) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  EXPECT_EQ(ft.ShareFirst(*mfn).code(), StatusCode::kFailedPrecondition);
}

TEST(FrameTable, ShareAgainIncrementsRefcount) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  ASSERT_TRUE(ft.ShareAgain(*mfn).ok());
  EXPECT_EQ(ft.info(*mfn).refcount, 3u);
  EXPECT_EQ(ft.frames_saved_by_sharing(), 2u);
}

TEST(FrameTable, ShareAgainRequiresShared) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  EXPECT_EQ(ft.ShareAgain(*mfn).code(), StatusCode::kFailedPrecondition);
}

TEST(FrameTable, CowWriteWithMultipleSharersCopies) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  std::uint8_t data[] = {0xAA};
  ft.WriteBytes(*mfn, 0, data, 1);
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  auto res = ft.ResolveCowWrite(*mfn, 6);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->copied);
  EXPECT_NE(res->mfn, *mfn);
  EXPECT_EQ(ft.OwnerOf(res->mfn), 6);
  // Contents were copied.
  std::uint8_t out = 0;
  ft.ReadBytes(res->mfn, 0, &out, 1);
  EXPECT_EQ(out, 0xAA);
  // Original still shared with refcount 1.
  EXPECT_TRUE(ft.IsShared(*mfn));
  EXPECT_EQ(ft.info(*mfn).refcount, 1u);
}

TEST(FrameTable, LastSharerGetsOwnershipInPlace) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  auto first = ft.ResolveCowWrite(*mfn, 6);
  ASSERT_TRUE(first.ok());
  // refcount dropped to 1: the next fault transfers ownership — possibly to
  // a domain different from the original owner (Sec. 5.2).
  auto second = ft.ResolveCowWrite(*mfn, 7);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->copied);
  EXPECT_EQ(second->mfn, *mfn);
  EXPECT_EQ(ft.OwnerOf(*mfn), 7);
  EXPECT_FALSE(ft.IsShared(*mfn));
  EXPECT_EQ(ft.shared_frames(), 0u);
}

TEST(FrameTable, ReleaseSharedDropsRefcount) {
  FrameTable ft(4);
  auto mfn = ft.Alloc(5);
  ASSERT_TRUE(ft.ShareFirst(*mfn).ok());
  std::size_t free_before = ft.free_frames();
  ASSERT_TRUE(ft.Release(*mfn).ok());
  EXPECT_EQ(ft.free_frames(), free_before);  // still held by one sharer
  EXPECT_EQ(ft.info(*mfn).refcount, 1u);
  ASSERT_TRUE(ft.Release(*mfn).ok());
  EXPECT_EQ(ft.free_frames(), free_before + 1);  // now actually freed
}

TEST(FrameTable, UnwrittenFramesReadZero) {
  FrameTable ft(2);
  auto mfn = ft.Alloc(1);
  std::uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ft.ReadBytes(*mfn, 100, buf, 8);
  for (std::uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(ft.info(*mfn).data, nullptr);  // lazily materialised
}

TEST(FrameTable, WriteMaterialisesLazily) {
  FrameTable ft(2);
  auto mfn = ft.Alloc(1);
  std::uint8_t b = 0x5A;
  ft.WriteBytes(*mfn, kPageSize - 1, &b, 1);
  ASSERT_NE(ft.info(*mfn).data, nullptr);
  std::uint8_t out = 0;
  ft.ReadBytes(*mfn, kPageSize - 1, &out, 1);
  EXPECT_EQ(out, 0x5A);
}

TEST(FrameTable, CopyPageHandlesUnmaterialisedSource) {
  FrameTable ft(4);
  auto src = ft.Alloc(1);
  auto dst = ft.Alloc(1);
  std::uint8_t b = 9;
  ft.WriteBytes(*dst, 0, &b, 1);
  ft.CopyPage(*src, *dst);  // src has no data: dst resets to zero semantics
  std::uint8_t out = 1;
  ft.ReadBytes(*dst, 0, &out, 1);
  EXPECT_EQ(out, 0);
}

TEST(FrameTable, InvalidMfnRejected) {
  FrameTable ft(2);
  EXPECT_EQ(ft.Release(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ft.ShareFirst(0).code(), StatusCode::kInvalidArgument);  // not allocated
}

// Property: across an arbitrary interleaving of alloc/share/cow/release,
// frames are conserved: free + allocated == total, and every shared frame
// keeps refcount >= 1 (DESIGN.md invariant 1).
class FrameConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameConservation, RandomOperationSequence) {
  FrameTable ft(64);
  Rng rng(GetParam());
  std::vector<Mfn> owned;
  std::vector<Mfn> shared;
  for (int step = 0; step < 2000; ++step) {
    switch (rng.NextBelow(4)) {
      case 0: {
        auto mfn = ft.Alloc(static_cast<DomId>(1 + rng.NextBelow(5)));
        if (mfn.ok()) {
          owned.push_back(*mfn);
        }
        break;
      }
      case 1: {
        if (!owned.empty()) {
          std::size_t i = rng.NextBelow(owned.size());
          if (ft.ShareFirst(owned[i]).ok()) {
            shared.push_back(owned[i]);
            shared.push_back(owned[i]);  // two logical holders
            owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        break;
      }
      case 2: {
        if (!shared.empty()) {
          std::size_t i = rng.NextBelow(shared.size());
          Mfn m = shared[i];
          auto res = ft.ResolveCowWrite(m, static_cast<DomId>(1 + rng.NextBelow(5)));
          if (res.ok()) {
            shared.erase(shared.begin() + static_cast<std::ptrdiff_t>(i));
            owned.push_back(res->mfn);
          }
        }
        break;
      }
      default: {
        if (!owned.empty() && rng.NextBool(0.5)) {
          std::size_t i = rng.NextBelow(owned.size());
          EXPECT_TRUE(ft.Release(owned[i]).ok());
          owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (!shared.empty()) {
          std::size_t i = rng.NextBelow(shared.size());
          EXPECT_TRUE(ft.Release(shared[i]).ok());
          shared.erase(shared.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
    }
    EXPECT_EQ(ft.free_frames() + ft.allocated_frames(), ft.total_frames());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace nephele
