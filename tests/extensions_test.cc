// Tests for the smaller extension features: Xenstore transactions, the
// stateful OVS least-loaded selector, and SMP family pinning.

#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/core/smp.h"
#include "src/guest/guest_manager.h"
#include "src/net/switch.h"
#include "src/xenstore/store.h"

namespace nephele {
namespace {

// --- Xenstore transactions ---

class XsTxnTest : public ::testing::Test {
 protected:
  XsTxnTest() : xs_(loop_, DefaultCostModel()) {}
  EventLoop loop_;
  XenstoreDaemon xs_;
};

TEST_F(XsTxnTest, CommitAppliesAtomically) {
  auto txn = xs_.TransactionStart();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/a", "1").ok());
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/b", "2").ok());
  // Nothing visible before commit.
  EXPECT_EQ(xs_.Read("/t/a").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(xs_.TransactionEnd(*txn, /*commit=*/true).ok());
  EXPECT_EQ(*xs_.Read("/t/a"), "1");
  EXPECT_EQ(*xs_.Read("/t/b"), "2");
  EXPECT_EQ(xs_.ActiveTransactions(), 0u);
}

TEST_F(XsTxnTest, AbortDiscards) {
  auto txn = xs_.TransactionStart();
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/a", "1").ok());
  ASSERT_TRUE(xs_.TransactionEnd(*txn, /*commit=*/false).ok());
  EXPECT_EQ(xs_.Read("/t/a").status().code(), StatusCode::kNotFound);
}

TEST_F(XsTxnTest, ReadYourWrites) {
  ASSERT_TRUE(xs_.Write("/t/a", "old").ok());
  auto txn = xs_.TransactionStart();
  EXPECT_EQ(*xs_.TxnRead(*txn, "/t/a"), "old");
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/a", "new").ok());
  EXPECT_EQ(*xs_.TxnRead(*txn, "/t/a"), "new");
  EXPECT_EQ(*xs_.Read("/t/a"), "old");  // outside the transaction
  ASSERT_TRUE(xs_.TransactionEnd(*txn, true).ok());
  EXPECT_EQ(*xs_.Read("/t/a"), "new");
}

TEST_F(XsTxnTest, WriteWriteConflictAborts) {
  ASSERT_TRUE(xs_.Write("/t/a", "0").ok());
  auto txn = xs_.TransactionStart();
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/a", "txn").ok());
  ASSERT_TRUE(xs_.Write("/t/a", "racer").ok());  // concurrent writer
  EXPECT_EQ(xs_.TransactionEnd(*txn, true).code(), StatusCode::kAborted);
  EXPECT_EQ(*xs_.Read("/t/a"), "racer");  // the racer's value stands
}

TEST_F(XsTxnTest, ReadWriteConflictAborts) {
  ASSERT_TRUE(xs_.Write("/t/a", "0").ok());
  auto txn = xs_.TransactionStart();
  EXPECT_EQ(*xs_.TxnRead(*txn, "/t/a"), "0");
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/b", "derived-from-a").ok());
  ASSERT_TRUE(xs_.Write("/t/a", "changed").ok());
  EXPECT_EQ(xs_.TransactionEnd(*txn, true).code(), StatusCode::kAborted);
  EXPECT_FALSE(xs_.Exists("/t/b"));
}

TEST_F(XsTxnTest, IndependentWritesDoNotConflict) {
  auto txn = xs_.TransactionStart();
  ASSERT_TRUE(xs_.TxnWrite(*txn, "/t/a", "1").ok());
  ASSERT_TRUE(xs_.Write("/elsewhere", "x").ok());
  EXPECT_TRUE(xs_.TransactionEnd(*txn, true).ok());
}

TEST_F(XsTxnTest, UnknownTransactionRejected) {
  EXPECT_EQ(xs_.TxnWrite(42, "/a", "1").code(), StatusCode::kNotFound);
  EXPECT_EQ(xs_.TxnRead(42, "/a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(xs_.TransactionEnd(42, true).code(), StatusCode::kNotFound);
}

TEST_F(XsTxnTest, TransactionsChargeRequests) {
  std::uint64_t before = xs_.stats().requests;
  auto txn = xs_.TransactionStart();
  (void)xs_.TxnWrite(*txn, "/t/a", "1");
  (void)xs_.TransactionEnd(*txn, true);
  EXPECT_EQ(xs_.stats().requests, before + 3);
}

// --- OVS least-loaded selector ---

class CountingPort : public SwitchPort {
 public:
  explicit CountingPort(std::string name) : name_(std::move(name)) {}
  void DeliverToGuest(const Packet&) override { ++delivered; }
  MacAddr mac() const override { return 0x1; }
  Ipv4Addr ip() const override { return 5; }
  std::string port_name() const override { return name_; }
  int delivered = 0;

 private:
  std::string name_;
};

Packet FlowPacket(std::uint16_t src_port) {
  Packet p;
  p.proto = IpProto::kTcp;
  p.src_ip = 7;
  p.src_port = src_port;
  p.dst_ip = 5;
  p.dst_port = 80;
  return p;
}

TEST(OvsLeastLoaded, BalancesFlowsExactly) {
  OvsGroup group;
  CountingPort a("a"), b("b"), c("c");
  for (CountingPort* p : {&a, &b, &c}) {
    ASSERT_TRUE(group.Attach(p).ok());
  }
  group.UseLeastLoadedSelector();
  for (std::uint16_t f = 0; f < 9; ++f) {
    group.InjectFromUplink(FlowPacket(static_cast<std::uint16_t>(1000 + f)));
  }
  // Perfectly even — unlike hashing, which only balances in expectation.
  EXPECT_EQ(group.BucketLoad(0), 3u);
  EXPECT_EQ(group.BucketLoad(1), 3u);
  EXPECT_EQ(group.BucketLoad(2), 3u);
}

TEST(OvsLeastLoaded, FlowAffinityPreserved) {
  OvsGroup group;
  CountingPort a("a"), b("b");
  ASSERT_TRUE(group.Attach(&a).ok());
  ASSERT_TRUE(group.Attach(&b).ok());
  group.UseLeastLoadedSelector();
  for (int i = 0; i < 5; ++i) {
    group.InjectFromUplink(FlowPacket(1000));  // same flow
  }
  // One port got everything.
  EXPECT_TRUE((a.delivered == 5 && b.delivered == 0) ||
              (a.delivered == 0 && b.delivered == 5));
  EXPECT_EQ(group.BucketLoad(0) + group.BucketLoad(1), 1u);
}

TEST(OvsLeastLoaded, AdaptsToNewBuckets) {
  OvsGroup group;
  CountingPort a("a");
  ASSERT_TRUE(group.Attach(&a).ok());
  group.UseLeastLoadedSelector();
  group.InjectFromUplink(FlowPacket(1));
  group.InjectFromUplink(FlowPacket(2));
  CountingPort b("b");
  ASSERT_TRUE(group.Attach(&b).ok());  // clone attached later
  group.InjectFromUplink(FlowPacket(3));
  // The new flow lands on the empty bucket.
  EXPECT_EQ(b.delivered, 1);
}

// --- SMP pinning ---

class SmpTest : public ::testing::Test {
 protected:
  SmpTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;
    return cfg;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(SmpTest, FamilyPinnedRoundRobin) {
  DomainConfig cfg;
  cfg.name = "smp";
  cfg.max_clones = 8;
  cfg.with_vif = false;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
    system_.Settle();
  }
  auto family = CollectFamily(system_.hypervisor(), *dom);
  ASSERT_EQ(family.size(), 4u);
  auto pinned = PinFamilyAcrossCpus(system_.hypervisor(), *dom, 4);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*pinned, 4u);
  // One family member per core, all distinct.
  std::set<int> cpus;
  for (DomId d : family) {
    cpus.insert(system_.hypervisor().FindDomain(d)->vcpus[0].affinity);
  }
  EXPECT_EQ(cpus.size(), 4u);
}

TEST_F(SmpTest, PinWrapsWhenFamilyExceedsCpus) {
  DomainConfig cfg;
  cfg.name = "smp";
  cfg.max_clones = 8;
  cfg.with_vif = false;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
    system_.Settle();
  }
  auto pinned = PinFamilyAcrossCpus(system_.hypervisor(), *dom, 2);
  ASSERT_TRUE(pinned.ok());
  for (DomId d : CollectFamily(system_.hypervisor(), *dom)) {
    int cpu = system_.hypervisor().FindDomain(d)->vcpus[0].affinity;
    EXPECT_GE(cpu, 0);
    EXPECT_LT(cpu, 2);
  }
}

TEST_F(SmpTest, PinInvalidArgs) {
  EXPECT_EQ(PinFamilyAcrossCpus(system_.hypervisor(), 1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PinFamilyAcrossCpus(system_.hypervisor(), 404, 4).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SmpTest, CloneAffinityReplicatedThenRepinned) {
  DomainConfig cfg;
  cfg.name = "smp";
  cfg.max_clones = 2;
  cfg.with_vif = false;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  system_.hypervisor().FindDomain(*dom)->vcpus[0].affinity = 1;
  ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(*dom)->children.front();
  // Sec. 5.2: affinity replicated on clone ...
  EXPECT_EQ(system_.hypervisor().FindDomain(child)->vcpus[0].affinity, 1);
  // ... and the SMP helper spreads the family afterwards.
  ASSERT_TRUE(PinFamilyAcrossCpus(system_.hypervisor(), *dom, 2).ok());
  EXPECT_NE(system_.hypervisor().FindDomain(*dom)->vcpus[0].affinity,
            system_.hypervisor().FindDomain(child)->vcpus[0].affinity);
}

}  // namespace
}  // namespace nephele
