#include <gtest/gtest.h>

#include "src/devices/console.h"
#include "src/devices/device_manager.h"
#include "src/devices/hostfs.h"
#include "src/devices/netif.h"
#include "src/devices/p9.h"
#include "src/devices/ring.h"
#include "src/net/switch.h"
#include "src/xenstore/store.h"

namespace nephele {
namespace {

TEST(SharedRing, PushPopFifo) {
  SharedRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.Push(1).ok());
  ASSERT_TRUE(ring.Push(2).ok());
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(*ring.Pop(), 1);
  EXPECT_EQ(*ring.Pop(), 2);
  EXPECT_EQ(ring.Pop().status().code(), StatusCode::kUnavailable);
}

TEST(SharedRing, FullRejectsPush) {
  SharedRing<int> ring(2);
  ASSERT_TRUE(ring.Push(1).ok());
  ASSERT_TRUE(ring.Push(2).ok());
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.Push(3).code(), StatusCode::kUnavailable);
}

TEST(SharedRing, CopyContentsDuplicatesPending) {
  SharedRing<int> src(8);
  ASSERT_TRUE(src.Push(7).ok());
  ASSERT_TRUE(src.Push(8).ok());
  SharedRing<int> dst(8);
  dst.CopyContentsFrom(src);
  EXPECT_EQ(dst.size(), 2u);
  EXPECT_EQ(*dst.Pop(), 7);
  // Copy is independent: draining dst leaves src intact.
  EXPECT_EQ(src.size(), 2u);
}

TEST(Xenbus, NamesAreStable) {
  EXPECT_EQ(XenbusStateName(XenbusState::kConnected), "Connected");
  EXPECT_EQ(XenbusStateValue(XenbusState::kConnected), "4");
  EXPECT_EQ(DeviceTypeName(DeviceType::kP9fs), "9pfs");
}

class DeviceFixture : public ::testing::Test {
 protected:
  DeviceFixture()
      : hv_(loop_, costs_, HypervisorConfig{.pool_frames = 16384}),
        xs_(loop_, costs_),
        devices_(hv_, xs_, loop_, costs_) {}

  DomId NewDomain() {
    auto dom = hv_.CreateDomain("d", 1);
    (void)hv_.UnpauseDomain(*dom);
    return *dom;
  }

  CostModel costs_;
  EventLoop loop_;
  Hypervisor hv_;
  XenstoreDaemon xs_;
  DeviceManager devices_;
};

TEST_F(DeviceFixture, ConsoleLifecycle) {
  DomId dom = NewDomain();
  ASSERT_TRUE(devices_.console().CreateConsole(dom, 0).ok());
  EXPECT_EQ(devices_.console().CreateConsole(dom, 0).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(devices_.console().GuestWrite(dom, "boot ok\n").ok());
  EXPECT_EQ(*devices_.console().Output(dom), "boot ok\n");
  ASSERT_TRUE(devices_.console().DestroyConsole(dom).ok());
  EXPECT_EQ(devices_.console().Output(dom).status().code(), StatusCode::kNotFound);
}

TEST_F(DeviceFixture, ConsoleCloneStartsEmpty) {
  DomId parent = NewDomain();
  DomId child = NewDomain();
  ASSERT_TRUE(devices_.console().CreateConsole(parent, 0).ok());
  ASSERT_TRUE(devices_.console().GuestWrite(parent, "parent output").ok());
  ASSERT_TRUE(devices_.console().CloneConsole(parent, child, 0).ok());
  // Sec. 4.2: the parent's console output is NOT duplicated into the child.
  EXPECT_EQ(*devices_.console().Output(child), "");
  EXPECT_EQ(*devices_.console().Output(parent), "parent output");
}

TEST_F(DeviceFixture, ConsoleCloneNeedsParent) {
  EXPECT_EQ(devices_.console().CloneConsole(5, 6, 0).code(), StatusCode::kNotFound);
}

TEST_F(DeviceFixture, NetFrontendAllocatesGuestPages) {
  DomId dom = NewDomain();
  NetFrontend fe(hv_, dom, 0, 0xaa, MakeIpv4(10, 0, 0, 1));
  ASSERT_TRUE(fe.AllocateRings().ok());
  const Domain* d = hv_.FindDomain(dom);
  EXPECT_EQ(d->tot_pages(), 2 + NetFrontend::kRxBufferPages + NetFrontend::kTxBufferPages);
  // All I/O pages are private roles (clone-duplicated).
  EXPECT_EQ(d->p2m[fe.tx_ring_gfn()].role, PageRole::kIoRing);
  EXPECT_EQ(d->p2m[fe.rx_buffer_gfn()].role, PageRole::kIoBuffer);
}

TEST_F(DeviceFixture, NetConnectAndTransmit) {
  DomId dom = NewDomain();
  NetFrontend fe(hv_, dom, 0, 0xaa, MakeIpv4(10, 0, 0, 1));
  ASSERT_TRUE(fe.AllocateRings().ok());
  auto vif = devices_.netback().ConnectDevice(DeviceId{dom, DeviceType::kVif, 0}, &fe);
  ASSERT_TRUE(vif.ok());
  EXPECT_TRUE(fe.connected());
  EXPECT_EQ((*vif)->state(), XenbusState::kConnected);

  Bridge bridge;
  ASSERT_TRUE(bridge.Attach(*vif).ok());
  (*vif)->set_attached_switch(&bridge);
  int uplinked = 0;
  bridge.set_uplink_sink([&](const Packet&) { ++uplinked; });

  Packet p;
  p.proto = IpProto::kUdp;
  p.src_ip = fe.ip();
  p.dst_ip = MakeIpv4(10, 0, 0, 99);
  ASSERT_TRUE(fe.Send(p).ok());
  loop_.Run();
  EXPECT_EQ(uplinked, 1);
  EXPECT_EQ(devices_.netback().packets_forwarded(), 1u);
}

TEST_F(DeviceFixture, NetSendRequiresConnection) {
  DomId dom = NewDomain();
  NetFrontend fe(hv_, dom, 0, 0xaa, 1);
  ASSERT_TRUE(fe.AllocateRings().ok());
  Packet p;
  EXPECT_EQ(fe.Send(p).code(), StatusCode::kFailedPrecondition);
}

TEST_F(DeviceFixture, NetReceivePathDeliversToGuest) {
  DomId dom = NewDomain();
  NetFrontend fe(hv_, dom, 0, 0xaa, MakeIpv4(10, 0, 0, 1));
  ASSERT_TRUE(fe.AllocateRings().ok());
  auto vif = devices_.netback().ConnectDevice(DeviceId{dom, DeviceType::kVif, 0}, &fe);
  ASSERT_TRUE(vif.ok());
  std::vector<Packet> got;
  fe.set_receive_handler([&](const Packet& p) { got.push_back(p); });
  Packet p;
  p.proto = IpProto::kUdp;
  p.dst_ip = fe.ip();
  p.dst_port = 7;
  (*vif)->DeliverToGuest(p);
  loop_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst_port, 7);
}

TEST_F(DeviceFixture, NetRxStaysPendingWhilePaused) {
  DomId dom = NewDomain();
  ASSERT_TRUE(hv_.PauseDomain(dom).ok());
  NetFrontend fe(hv_, dom, 0, 0xaa, 1);
  ASSERT_TRUE(fe.AllocateRings().ok());
  auto vif = devices_.netback().ConnectDevice(DeviceId{dom, DeviceType::kVif, 0}, &fe);
  int got = 0;
  fe.set_receive_handler([&](const Packet&) { ++got; });
  (*vif)->DeliverToGuest(Packet{});
  loop_.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fe.rx_ring().size(), 1u);  // pending — exactly what ring cloning copies
}

TEST_F(DeviceFixture, NetCloneCopiesBothRings) {
  DomId parent = NewDomain();
  DomId child = NewDomain();
  (void)hv_.PauseDomain(parent);
  NetFrontend parent_fe(hv_, parent, 0, 0xaa, MakeIpv4(10, 0, 0, 1));
  ASSERT_TRUE(parent_fe.AllocateRings().ok());
  auto pvif =
      devices_.netback().ConnectDevice(DeviceId{parent, DeviceType::kVif, 0}, &parent_fe);
  ASSERT_TRUE(pvif.ok());
  // Pending state on both rings while the parent is paused (clone point).
  Packet tx;
  tx.proto = IpProto::kUdp;
  ASSERT_TRUE(parent_fe.tx_ring().Push(tx).ok());
  (*pvif)->DeliverToGuest(Packet{});

  NetFrontend child_fe(hv_, child, 0, parent_fe.mac(), parent_fe.ip());
  ASSERT_TRUE(child_fe.AdoptLayoutFrom(parent_fe).ok());
  loop_.Run();  // drain the parent's own connect-time udev event
  int udev_events = 0;
  devices_.SetUdevHandler([&](const UdevEvent&) { ++udev_events; });
  auto cvif = devices_.netback().CloneDevice(DeviceId{parent, DeviceType::kVif, 0},
                                             DeviceId{child, DeviceType::kVif, 0}, &child_fe);
  ASSERT_TRUE(cvif.ok());
  // The Sec. 5.2.1 shortcut: born Connected, same MAC/IP, rings copied.
  EXPECT_EQ((*cvif)->state(), XenbusState::kConnected);
  EXPECT_EQ((*cvif)->mac(), (*pvif)->mac());
  EXPECT_EQ((*cvif)->ip(), (*pvif)->ip());
  EXPECT_EQ(child_fe.tx_ring().size(), 1u);
  EXPECT_EQ(child_fe.rx_ring().size(), 1u);
  loop_.Run();
  EXPECT_EQ(udev_events, 1);  // udev add for the new vif
}

TEST_F(DeviceFixture, NetCloneRequiresParentDevice) {
  NetFrontend fe(hv_, NewDomain(), 0, 0xaa, 1);
  EXPECT_EQ(devices_.netback()
                .CloneDevice(DeviceId{99, DeviceType::kVif, 0}, DeviceId{5, DeviceType::kVif, 0},
                             &fe)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(HostFs, FileLifecycle) {
  HostFs fs;
  ASSERT_TRUE(fs.CreateFile("/a").ok());
  EXPECT_EQ(fs.CreateFile("/a").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(fs.WriteAt("/a", 2, {1, 2, 3}).ok());
  EXPECT_EQ(*fs.SizeOf("/a"), 5u);
  auto data = fs.ReadAt("/a", 2, 10);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_TRUE(fs.Truncate("/a", 1).ok());
  EXPECT_EQ(*fs.SizeOf("/a"), 1u);
  ASSERT_TRUE(fs.Rename("/a", "/b").ok());
  EXPECT_FALSE(fs.Exists("/a"));
  ASSERT_TRUE(fs.Remove("/b").ok());
  EXPECT_EQ(fs.NumFiles(), 0u);
}

TEST(HostFs, ListByPrefix) {
  HostFs fs;
  ASSERT_TRUE(fs.CreateFile("/srv/a").ok());
  ASSERT_TRUE(fs.CreateFile("/srv/b").ok());
  ASSERT_TRUE(fs.CreateFile("/tmp/c").ok());
  EXPECT_EQ(fs.List("/srv").size(), 2u);
  EXPECT_EQ(fs.List("/").size(), 3u);
}

class P9Fixture : public DeviceFixture {
 protected:
  P9Fixture() {
    (void)devices_.hostfs().CreateFile("/export/etc/conf");
    (void)devices_.hostfs().WriteAt("/export/etc/conf", 0, {'h', 'i'});
  }
};

TEST_F(P9Fixture, LaunchAttachWalkOpenRead) {
  DomId dom = NewDomain();
  auto proc = devices_.p9().LaunchForDomain(dom, "/export");
  ASSERT_TRUE(proc.ok());
  auto root = (*proc)->Attach(dom);
  ASSERT_TRUE(root.ok());
  auto fid = (*proc)->Walk(dom, *root, "etc/conf");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE((*proc)->Open(dom, *fid, false).ok());
  auto data = (*proc)->Read(dom, *fid, 0, 16);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{'h', 'i'}));
  EXPECT_EQ(*(*proc)->StatSize(dom, *fid), 2u);
  ASSERT_TRUE((*proc)->Clunk(dom, *fid).ok());
}

TEST_F(P9Fixture, CreateWrites) {
  DomId dom = NewDomain();
  auto proc = devices_.p9().LaunchForDomain(dom, "/export");
  auto root = (*proc)->Attach(dom);
  auto fid = (*proc)->Create(dom, *root, "dump.rdb");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE((*proc)->Write(dom, *fid, 0, {9, 9}).ok());
  EXPECT_TRUE(devices_.hostfs().Exists("/export/dump.rdb"));
}

TEST_F(P9Fixture, OpenUnknownPathFails) {
  DomId dom = NewDomain();
  auto proc = devices_.p9().LaunchForDomain(dom, "/export");
  auto root = (*proc)->Attach(dom);
  auto fid = (*proc)->Walk(dom, *root, "missing");
  ASSERT_TRUE(fid.ok());  // walk succeeds lazily, like 9p
  EXPECT_EQ((*proc)->Open(dom, *fid, false).code(), StatusCode::kNotFound);
}

TEST_F(P9Fixture, QmpCloneDuplicatesFidTable) {
  DomId parent = NewDomain();
  DomId child = NewDomain();
  auto proc = devices_.p9().LaunchForDomain(parent, "/export");
  auto root = (*proc)->Attach(parent);
  auto fid = (*proc)->Walk(parent, *root, "etc/conf");
  ASSERT_TRUE((*proc)->Open(parent, *fid, false).ok());
  std::size_t parent_fids = (*proc)->NumFids(parent);

  // One process serves the whole family (design decision of Sec. 5.2.1).
  ASSERT_TRUE(devices_.p9().CloneForChild(parent, child).ok());
  EXPECT_EQ(devices_.p9().NumProcesses(), 1u);
  EXPECT_EQ((*proc)->NumFids(child), parent_fids);
  // The child's cloned fid is immediately usable.
  auto data = (*proc)->Read(child, *fid, 0, 16);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
}

TEST_F(P9Fixture, FidsAreIsolatedBetweenDomains) {
  DomId parent = NewDomain();
  DomId child = NewDomain();
  auto proc = devices_.p9().LaunchForDomain(parent, "/export");
  auto root = (*proc)->Attach(parent);
  auto fid = (*proc)->Walk(parent, *root, "etc/conf");
  ASSERT_TRUE((*proc)->Open(parent, *fid, false).ok());
  ASSERT_TRUE(devices_.p9().CloneForChild(parent, child).ok());
  // Clunking the child's fid must not touch the parent's.
  ASSERT_TRUE((*proc)->Clunk(child, *fid).ok());
  EXPECT_TRUE((*proc)->Read(parent, *fid, 0, 1).ok());
  EXPECT_EQ((*proc)->Read(child, *fid, 0, 1).status().code(), StatusCode::kNotFound);
}

TEST_F(P9Fixture, CloneForUnservedParentFails) {
  EXPECT_EQ(devices_.p9().CloneForChild(77, 78).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace nephele
