#include <gtest/gtest.h>

#include "src/core/system.h"

namespace nephele {
namespace {

// Exercises the CLONEOP hypercall + xencloned second stage through the fully
// wired system (the clone path needs both).
class CloneEngineTest : public ::testing::Test {
 protected:
  CloneEngineTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;  // 1 GiB pool
    return cfg;
  }

  DomId BootCloneable(std::uint32_t max_clones = 32, bool with_vif = true) {
    DomainConfig cfg;
    cfg.name = "parent";
    cfg.memory_mb = 4;
    cfg.max_clones = max_clones;
    cfg.with_vif = with_vif;
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok());
    return *dom;
  }

  Mfn StartInfoMfn(DomId dom) {
    const Domain* d = system_.hypervisor().FindDomain(dom);
    return d->p2m[d->start_info_gfn].mfn;
  }

  // Clone and run the second stage to completion.
  std::vector<DomId> CloneAndSettle(DomId parent, unsigned n = 1) {
    auto children = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), n});
    EXPECT_TRUE(children.ok()) << children.status().ToString();
    system_.Settle();
    return children.ok() ? *children : std::vector<DomId>{};
  }

  NepheleSystem system_;
};

TEST_F(CloneEngineTest, RequiresGlobalEnable) {
  SystemConfig cfg;
  cfg.start_xencloned = false;  // nothing enabled cloning globally
  NepheleSystem sys(cfg);
  DomainConfig dcfg;
  dcfg.name = "p";
  dcfg.max_clones = 2;
  auto dom = sys.toolstack().CreateDomain(dcfg);
  const Domain* d = sys.hypervisor().FindDomain(*dom);
  auto r = sys.clone_engine().Clone({*dom, *dom, d->p2m[d->start_info_gfn].mfn, 1});
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CloneEngineTest, RequiresPerDomainEnable) {
  DomId dom = BootCloneable(/*max_clones=*/0);
  auto r = system_.clone_engine().Clone({dom, dom, StartInfoMfn(dom), 1});
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CloneEngineTest, EnforcesMaxClones) {
  DomId dom = BootCloneable(/*max_clones=*/2);
  EXPECT_EQ(CloneAndSettle(dom).size(), 1u);
  EXPECT_EQ(CloneAndSettle(dom).size(), 1u);
  auto r = system_.clone_engine().Clone({dom, dom, StartInfoMfn(dom), 1});
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CloneEngineTest, OnlySelfOrDom0MayClone) {
  DomId a = BootCloneable();
  DomId b = BootCloneable();
  auto r = system_.clone_engine().Clone({b, a, StartInfoMfn(a), 1});
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  // Dom0-triggered cloning (the fuzzing path) is allowed.
  auto ok = system_.clone_engine().Clone({kDom0, a, StartInfoMfn(a), 1});
  EXPECT_TRUE(ok.ok());
  system_.Settle();
}

TEST_F(CloneEngineTest, StartInfoMfnValidated) {
  DomId dom = BootCloneable();
  auto r = system_.clone_engine().Clone({dom, dom, StartInfoMfn(dom) + 1, 1});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CloneEngineTest, ChildInheritsMemoryLayoutAndFamily) {
  DomId parent = BootCloneable();
  auto children = CloneAndSettle(parent);
  ASSERT_EQ(children.size(), 1u);
  const Domain* p = system_.hypervisor().FindDomain(parent);
  const Domain* c = system_.hypervisor().FindDomain(children[0]);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->tot_pages(), p->tot_pages());
  EXPECT_EQ(c->parent, parent);
  EXPECT_EQ(c->family_root, parent);
  EXPECT_EQ(p->children, children);
  EXPECT_TRUE(system_.hypervisor().IsDescendantOf(children[0], parent));
  EXPECT_EQ(c->start_info_gfn, p->start_info_gfn);
}

TEST_F(CloneEngineTest, RaxIsZeroForParentOneForChild) {
  DomId parent = BootCloneable();
  auto children = CloneAndSettle(parent);
  EXPECT_EQ(system_.hypervisor().FindDomain(parent)->vcpus[0].rax, 0u);
  EXPECT_EQ(system_.hypervisor().FindDomain(children[0])->vcpus[0].rax, 1u);
}

TEST_F(CloneEngineTest, VcpuAffinityReplicated) {
  DomId parent = BootCloneable();
  system_.hypervisor().FindDomain(parent)->vcpus[0].affinity = 3;
  auto children = CloneAndSettle(parent);
  EXPECT_EQ(system_.hypervisor().FindDomain(children[0])->vcpus[0].affinity, 3);
}

TEST_F(CloneEngineTest, DataPagesAreSharedCow) {
  DomId parent = BootCloneable();
  const Domain* p = system_.hypervisor().FindDomain(parent);
  GuestMemoryLayout layout =
      ComputeGuestLayout(*system_.toolstack().FindConfig(parent), 1024);
  Gfn heap_gfn = static_cast<Gfn>(layout.heap_first_gfn);
  Mfn parent_mfn_before = p->p2m[heap_gfn].mfn;

  auto children = CloneAndSettle(parent);
  const Domain* c = system_.hypervisor().FindDomain(children[0]);
  // Same machine frame, owned by dom_cow, read-only on both sides.
  EXPECT_EQ(c->p2m[heap_gfn].mfn, parent_mfn_before);
  EXPECT_EQ(system_.hypervisor().frames().OwnerOf(parent_mfn_before), kDomCow);
  EXPECT_FALSE(system_.hypervisor().FindDomain(parent)->p2m[heap_gfn].writable);
  EXPECT_FALSE(c->p2m[heap_gfn].writable);
}

TEST_F(CloneEngineTest, PrivatePagesAreDuplicated) {
  DomId parent = BootCloneable();
  const Domain* p = system_.hypervisor().FindDomain(parent);
  auto children = CloneAndSettle(parent);
  const Domain* c = system_.hypervisor().FindDomain(children[0]);
  // start_info, console ring, xenstore ring, vif rings and buffers.
  EXPECT_NE(c->p2m[c->start_info_gfn].mfn, p->p2m[p->start_info_gfn].mfn);
  EXPECT_NE(c->p2m[c->console_ring_gfn].mfn, p->p2m[p->console_ring_gfn].mfn);
  GuestDevices* gd = system_.toolstack().FindDevices(parent);
  Gfn rx = gd->net->rx_buffer_gfn();
  EXPECT_NE(c->p2m[rx].mfn, p->p2m[rx].mfn);
  EXPECT_TRUE(c->p2m[c->start_info_gfn].writable);
}

TEST_F(CloneEngineTest, CowIsolationAfterClone) {
  DomId parent = BootCloneable();
  GuestMemoryLayout layout =
      ComputeGuestLayout(*system_.toolstack().FindConfig(parent), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  const char before[] = "original";
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(parent, gfn, 0, before, sizeof(before)).ok());

  auto children = CloneAndSettle(parent);
  DomId child = children[0];

  // Contents equal right after the clone.
  char buf[16] = {};
  ASSERT_TRUE(system_.hypervisor().ReadGuestPage(child, gfn, 0, buf, sizeof(before)).ok());
  EXPECT_STREQ(buf, "original");

  // Child writes; parent must not see it (DESIGN.md invariant 2).
  const char child_data[] = "childmod";
  ASSERT_TRUE(
      system_.hypervisor().WriteGuestPage(child, gfn, 0, child_data, sizeof(child_data)).ok());
  ASSERT_TRUE(system_.hypervisor().ReadGuestPage(parent, gfn, 0, buf, sizeof(before)).ok());
  EXPECT_STREQ(buf, "original");
  ASSERT_TRUE(system_.hypervisor().ReadGuestPage(child, gfn, 0, buf, sizeof(child_data)).ok());
  EXPECT_STREQ(buf, "childmod");
  EXPECT_EQ(system_.hypervisor().FindDomain(child)->cow_faults, 1u);
}

TEST_F(CloneEngineTest, LastSharerReclaimsOwnershipWithoutCopy) {
  DomId parent = BootCloneable();
  GuestMemoryLayout layout =
      ComputeGuestLayout(*system_.toolstack().FindConfig(parent), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  auto children = CloneAndSettle(parent);
  Mfn shared_mfn = system_.hypervisor().FindDomain(parent)->p2m[gfn].mfn;

  // Child COWs its copy; the shared frame drops to refcount 1.
  char b = 1;
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(children[0], gfn, 0, &b, 1).ok());
  // Parent's next write transfers ownership in place — no new frame.
  std::size_t free_before = system_.hypervisor().FreePoolFrames();
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(parent, gfn, 0, &b, 1).ok());
  EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
  EXPECT_EQ(system_.hypervisor().frames().OwnerOf(shared_mfn), parent);
}

TEST_F(CloneEngineTest, ParentPausedUntilSecondStageCompletes) {
  DomId parent = BootCloneable();
  auto children = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
  ASSERT_TRUE(children.ok());
  // Before the event loop runs xencloned, the parent must be blocked.
  const Domain* p = system_.hypervisor().FindDomain(parent);
  EXPECT_TRUE(p->blocked_in_clone);
  EXPECT_TRUE(p->IsPaused());
  system_.Settle();
  EXPECT_FALSE(p->blocked_in_clone);
  EXPECT_EQ(p->state, DomainState::kRunning);
  EXPECT_EQ(system_.hypervisor().FindDomain(children->front())->state, DomainState::kRunning);
}

namespace {

// Records every CloneObserver callback it sees, in delivery order.
class RecordingObserver : public CloneObserver {
 public:
  void OnCloneStart(DomId parent, unsigned num_clones) override {
    starts.push_back({parent, num_clones});
  }
  void OnCloneComplete(DomId parent, DomId child) override {
    completions.push_back({parent, child});
  }
  void OnResume(DomId dom, bool is_child) override { resumed.push_back({dom, is_child}); }
  void OnCowFault(DomId dom, Gfn /*gfn*/, bool /*copied*/) override { cow_faults.push_back(dom); }

  std::vector<std::pair<DomId, unsigned>> starts;
  std::vector<std::pair<DomId, DomId>> completions;
  std::vector<std::pair<DomId, bool>> resumed;
  std::vector<DomId> cow_faults;
};

}  // namespace

TEST_F(CloneEngineTest, ObserverSeesResumeForBothSides) {
  DomId parent = BootCloneable();
  RecordingObserver obs;
  system_.clone_engine().AddObserver(&obs);
  auto children = CloneAndSettle(parent);
  system_.clone_engine().RemoveObserver(&obs);
  ASSERT_EQ(obs.resumed.size(), 2u);
  EXPECT_EQ(obs.resumed[0], std::make_pair(children[0], true));
  EXPECT_EQ(obs.resumed[1], std::make_pair(parent, false));
}

TEST_F(CloneEngineTest, ObserverSeesStartCompleteAndCowFault) {
  DomId parent = BootCloneable();
  RecordingObserver obs;
  system_.clone_engine().AddObserver(&obs);
  auto children = CloneAndSettle(parent);
  ASSERT_EQ(obs.starts.size(), 1u);
  EXPECT_EQ(obs.starts[0], std::make_pair(parent, 1u));
  ASSERT_EQ(obs.completions.size(), 1u);
  EXPECT_EQ(obs.completions[0], std::make_pair(parent, children[0]));
  // A write to a shared page surfaces as OnCowFault.
  const Domain* p = system_.hypervisor().FindDomain(parent);
  Gfn gfn = 0;
  for (; gfn < p->p2m.size(); ++gfn) {
    if (system_.hypervisor().frames().IsShared(p->p2m[gfn].mfn) &&
        p->p2m[gfn].role != PageRole::kImageText) {
      break;
    }
  }
  ASSERT_LT(gfn, p->p2m.size());
  std::uint8_t b = 1;
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(parent, gfn, 0, &b, 1).ok());
  system_.clone_engine().RemoveObserver(&obs);
  ASSERT_EQ(obs.cow_faults.size(), 1u);
  EXPECT_EQ(obs.cow_faults[0], parent);
}

TEST_F(CloneEngineTest, RemovedObserverStopsReceivingEvents) {
  DomId parent = BootCloneable(/*max_clones=*/8);
  RecordingObserver obs;
  system_.clone_engine().AddObserver(&obs);
  CloneAndSettle(parent);
  ASSERT_EQ(obs.starts.size(), 1u);
  system_.clone_engine().RemoveObserver(&obs);
  CloneAndSettle(parent);
  EXPECT_EQ(obs.starts.size(), 1u);
  EXPECT_EQ(obs.resumed.size(), 2u);
}

TEST_F(CloneEngineTest, MultiCloneBatch) {
  DomId parent = BootCloneable(/*max_clones=*/8);
  auto children = CloneAndSettle(parent, 3);
  EXPECT_EQ(children.size(), 3u);
  for (DomId c : children) {
    EXPECT_NE(system_.hypervisor().FindDomain(c), nullptr);
    EXPECT_TRUE(system_.hypervisor().SameFamily(parent, c));
  }
  // Pairwise distinct.
  EXPECT_NE(children[0], children[1]);
  EXPECT_NE(children[1], children[2]);
}

TEST_F(CloneEngineTest, CloneOfCloneExtendsFamily) {
  DomId root = BootCloneable();
  auto first = CloneAndSettle(root);
  DomId child = first[0];
  auto second = system_.clone_engine().Clone({child, child, StartInfoMfn(child), 1});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  system_.Settle();
  DomId grandchild = second->front();
  EXPECT_TRUE(system_.hypervisor().IsDescendantOf(grandchild, root));
  EXPECT_EQ(system_.hypervisor().FindDomain(grandchild)->family_root, root);
}

TEST_F(CloneEngineTest, CloneSavesMemory) {
  DomId parent = BootCloneable(/*max_clones=*/16);
  std::size_t free_before = system_.hypervisor().FreePoolFrames();
  auto children = CloneAndSettle(parent);
  ASSERT_EQ(children.size(), 1u);
  std::size_t clone_cost_pages = free_before - system_.hypervisor().FreePoolFrames();
  // Fig. 5 anchor: ~1.6 MiB per clone vs the 4 MiB boot (RX ring ~1 MiB).
  double clone_mb = static_cast<double>(clone_cost_pages) * kPageSize / (1 << 20);
  EXPECT_GT(clone_mb, 1.0);
  EXPECT_LT(clone_mb, 2.0);
}

TEST_F(CloneEngineTest, FirstStageTakesAboutOneMillisecond) {
  DomId parent = BootCloneable();
  SimTime before = system_.Now();
  auto children = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
  ASSERT_TRUE(children.ok());
  double stage1_ms = (system_.Now() - before).ToMillis();
  EXPECT_GT(stage1_ms, 0.3);
  EXPECT_LT(stage1_ms, 2.5);  // Sec. 6.1: "takes only 1 ms"
  system_.Settle();
}

TEST_F(CloneEngineTest, SecondCloneIsCheaperSharing) {
  DomId parent = BootCloneable();
  (void)CloneAndSettle(parent);
  CloneStats after_first = system_.clone_engine().stats();
  (void)CloneAndSettle(parent);
  CloneStats after_second = system_.clone_engine().stats();
  // First clone transferred pages to dom_cow; the second only bumps
  // refcounts (Sec. 6.2 first-vs-second clone gap).
  EXPECT_GT(after_first.pages_shared_first, 0u);
  EXPECT_EQ(after_second.pages_shared_first, after_first.pages_shared_first);
  EXPECT_GT(after_second.pages_shared_again, after_first.pages_shared_again);
}

TEST_F(CloneEngineTest, CloneCowUnsharesExplicitly) {
  DomId parent = BootCloneable();
  auto children = CloneAndSettle(parent);
  DomId child = children[0];
  const Domain* c = system_.hypervisor().FindDomain(child);
  Mfn shared_text = c->p2m[0].mfn;  // gfn 0 is image text
  ASSERT_TRUE(system_.clone_engine().CloneCow(kDom0, child, 0, 4).ok());
  EXPECT_NE(system_.hypervisor().FindDomain(child)->p2m[0].mfn, shared_text);
  EXPECT_TRUE(system_.hypervisor().FindDomain(child)->p2m[0].writable);
  EXPECT_EQ(system_.clone_engine().stats().explicit_cow_pages, 4u);
}

TEST_F(CloneEngineTest, CloneCowPermissionChecked) {
  DomId a = BootCloneable();
  DomId b = BootCloneable();
  EXPECT_EQ(system_.clone_engine().CloneCow(a, b, 0, 1).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(CloneEngineTest, CloneResetRestoresDirtyPages) {
  DomId parent = BootCloneable();
  GuestMemoryLayout layout =
      ComputeGuestLayout(*system_.toolstack().FindConfig(parent), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  const char original[] = "pristine";
  ASSERT_TRUE(
      system_.hypervisor().WriteGuestPage(parent, gfn, 0, original, sizeof(original)).ok());
  auto children = CloneAndSettle(parent);
  DomId child = children[0];

  const char scribble[] = "scribble";
  ASSERT_TRUE(
      system_.hypervisor().WriteGuestPage(child, gfn, 0, scribble, sizeof(scribble)).ok());
  ASSERT_TRUE(
      system_.hypervisor().WriteGuestPage(child, gfn + 1, 0, scribble, sizeof(scribble)).ok());

  auto restored = system_.clone_engine().CloneReset(kDom0, child);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 2u);
  char buf[16] = {};
  ASSERT_TRUE(system_.hypervisor().ReadGuestPage(child, gfn, 0, buf, sizeof(original)).ok());
  EXPECT_STREQ(buf, "pristine");
  // The page is shared again; a further reset restores nothing.
  auto again = system_.clone_engine().CloneReset(kDom0, child);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST_F(CloneEngineTest, CloneResetOnlyForClones) {
  DomId dom = BootCloneable();
  EXPECT_EQ(system_.clone_engine().CloneReset(kDom0, dom).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CloneEngineTest, GrantTableInheritedByChild) {
  DomId parent = BootCloneable();
  std::size_t parent_grants =
      system_.hypervisor().FindDomain(parent)->grants.active_entries();
  ASSERT_GT(parent_grants, 0u);  // vif rings/buffers are granted
  auto children = CloneAndSettle(parent);
  EXPECT_EQ(system_.hypervisor().FindDomain(children[0])->grants.active_entries(),
            parent_grants);
}

TEST_F(CloneEngineTest, NotificationRingBackpressure) {
  DomId parent = BootCloneable(/*max_clones=*/4096);
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent),
                                        static_cast<unsigned>(
                                            system_.clone_engine().notification_ring().capacity()) +
                                            1});
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// Property (DESIGN.md invariant 2/3): transparency across guest memory
// sizes — clone contents equal the parent's at clone time, rax values are
// correct, and writes after the clone never leak across.
class CloneTransparency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CloneTransparency, MemorySizeSweep) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 512 * 1024;
  NepheleSystem system(scfg);
  DomainConfig cfg;
  cfg.name = "p";
  cfg.memory_mb = GetParam();
  cfg.max_clones = 1;
  auto parent = system.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(parent.ok());
  GuestMemoryLayout layout = ComputeGuestLayout(cfg, 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn + layout.heap_pages / 2);
  std::uint32_t tag = static_cast<std::uint32_t>(0xC0FFEE00 + GetParam());
  ASSERT_TRUE(system.hypervisor().WriteGuestPage(*parent, gfn, 8, &tag, sizeof(tag)).ok());

  const Domain* p = system.hypervisor().FindDomain(*parent);
  auto children = system.clone_engine().Clone({*parent, *parent,
                                              p->p2m[p->start_info_gfn].mfn, 1});
  ASSERT_TRUE(children.ok());
  system.Settle();
  DomId child = children->front();

  std::uint32_t out = 0;
  ASSERT_TRUE(system.hypervisor().ReadGuestPage(child, gfn, 8, &out, sizeof(out)).ok());
  EXPECT_EQ(out, tag);
  EXPECT_EQ(system.hypervisor().FindDomain(child)->vcpus[0].rax, 1u);
  EXPECT_EQ(system.hypervisor().FindDomain(*parent)->vcpus[0].rax, 0u);

  std::uint32_t other = ~tag;
  ASSERT_TRUE(system.hypervisor().WriteGuestPage(child, gfn, 8, &other, sizeof(other)).ok());
  ASSERT_TRUE(system.hypervisor().ReadGuestPage(*parent, gfn, 8, &out, sizeof(out)).ok());
  EXPECT_EQ(out, tag);
}

INSTANTIATE_TEST_SUITE_P(MemorySizes, CloneTransparency,
                         ::testing::Values(4, 8, 16, 64, 128));

}  // namespace
}  // namespace nephele
