// Concurrency stress suite for the parallel clone engine (carries the
// `stress` ctest label; run it under -DNEPHELE_TSAN=ON to put every
// worker-pool interleaving in front of ThreadSanitizer). Rounds of mixed
// work — parallel clone batches, COW faults, memory resets, destroys and
// armed fault points forcing mid-batch rollbacks — with the frame-ownership
// invariants re-checked after every round.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

constexpr std::uint8_t kPattern[8] = {0x5a, 7, 6, 5, 4, 3, 2, 1};

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  static SystemConfig StressSystem(unsigned threads) {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 256 * 1024;
    cfg.clone_worker_threads = threads;
    return cfg;
  }

  static DomainConfig ParentConfig() {
    DomainConfig cfg;
    cfg.name = "stress";
    cfg.memory_mb = 4;
    cfg.max_clones = 4096;
    cfg.with_vif = true;
    return cfg;
  }

  static Gfn FirstDataGfn() { return static_cast<Gfn>(ParentConfig().image_text_pages); }

  static Mfn StartInfoMfn(NepheleSystem& sys, DomId dom) {
    const Domain* d = sys.hypervisor().FindDomain(dom);
    return d->p2m[d->start_info_gfn].mfn;
  }

  static void ExpectParentPatternIntact(NepheleSystem& sys, DomId parent) {
    for (Gfn i = 0; i < 4; ++i) {
      std::uint8_t got[sizeof(kPattern)] = {};
      ASSERT_TRUE(
          sys.hypervisor().ReadGuestPage(parent, FirstDataGfn() + i, 0, got, sizeof(got)).ok());
      EXPECT_EQ(std::memcmp(got, kPattern, sizeof(kPattern)), 0)
          << "parent page " << (FirstDataGfn() + i) << " corrupted at round";
    }
  }
};

// The main stress loop: every round clones a parallel batch, COW-writes in
// some children, resets one, destroys a couple, and every other round arms
// a fault point so a batch fails mid-plan and rolls back while the pool is
// hot. Invariants hold after every round; full teardown leaks nothing.
TEST_F(ConcurrencyStressTest, MixedWorkloadKeepsInvariantsEveryRound) {
  NepheleSystem sys(StressSystem(/*threads=*/4));
  const std::size_t initial_free = sys.hypervisor().FreePoolFrames();

  auto parent = sys.toolstack().CreateDomain(ParentConfig());
  ASSERT_TRUE(parent.ok());
  sys.Settle();
  for (Gfn i = 0; i < 4; ++i) {
    ASSERT_TRUE(sys.hypervisor()
                    .WriteGuestPage(*parent, FirstDataGfn() + i, 0, kPattern, sizeof(kPattern))
                    .ok());
  }

  // Fault points the rollback rounds cycle through, each with an nth-hit
  // (counted from arming) that unwinds the batch from a different depth:
  // the first share of child 0, a frame allocation deep inside a later
  // child, child 0's page tables, and the creation of the fourth child.
  const std::vector<std::pair<std::string, std::uint64_t>> points = {
      {"clone/stage1/share", 1},
      {"hypervisor/frame_alloc", 700},
      {"clone/stage1/page_tables", 1},
      {"clone/stage1/create_domain", 4}};

  std::vector<DomId> live_children;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const unsigned batch = (round % 2 == 0) ? 8 : 3;

    auto children = sys.clone_engine().Clone({*parent, *parent, StartInfoMfn(sys, *parent), batch});
    ASSERT_TRUE(children.ok()) << children.status().ToString();
    sys.Settle();
    live_children.insert(live_children.end(), children->begin(), children->end());

    // COW faults in the two newest children, on the pages the parent stamped
    // (shared by the batch) and on a second page.
    for (std::size_t k = live_children.size() - 2; k < live_children.size(); ++k) {
      DomId c = live_children[k];
      std::uint8_t scratch = static_cast<std::uint8_t>(round);
      ASSERT_TRUE(
          sys.hypervisor().WriteGuestPage(c, FirstDataGfn(), 0, &scratch, sizeof(scratch)).ok());
      ASSERT_TRUE(sys.hypervisor()
                      .WriteGuestPage(c, FirstDataGfn() + 1, 0, &scratch, sizeof(scratch))
                      .ok());
    }
    // Memory-reset the newest child back to its post-clone state.
    auto restored = sys.clone_engine().CloneReset(kDom0, live_children.back());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(*restored, 2u);

    // Destroy two children (one dirty, one clean) to churn the pool.
    for (int d = 0; d < 2; ++d) {
      DomId victim = live_children.front();
      live_children.erase(live_children.begin());
      (void)sys.toolstack().DestroyDomain(victim);
      if (sys.hypervisor().FindDomain(victim) != nullptr) {
        (void)sys.hypervisor().DestroyDomain(victim);
      }
    }
    sys.Settle();

    // Every other round: force a mid-batch failure while the pool is warm
    // and check the rollback unwinds the staged children completely.
    if (round % 2 == 1) {
      const auto& [point, nth] = points[static_cast<std::size_t>(round / 2) % points.size()];
      SCOPED_TRACE("rollback via " + point);
      const std::size_t doms_before = sys.hypervisor().DomainIds().size();
      const std::size_t free_before = sys.hypervisor().FreePoolFrames();
      const std::uint64_t rollbacks_before = sys.clone_engine().stats().rollbacks;
      ASSERT_TRUE(sys.fault_injector().Arm(point, FaultSpec::NthHit(nth)).ok());
      auto failed = sys.clone_engine().Clone({*parent, *parent, StartInfoMfn(sys, *parent), 6});
      sys.fault_injector().DisarmAll();
      sys.Settle();
      if (!failed.ok()) {
        EXPECT_EQ(sys.hypervisor().DomainIds().size(), doms_before);
        EXPECT_EQ(sys.hypervisor().FreePoolFrames(), free_before);
        EXPECT_EQ(sys.clone_engine().stats().rollbacks, rollbacks_before + 1);
        EXPECT_FALSE(sys.hypervisor().FindDomain(*parent)->IsPaused());
      } else {
        // The nth hit landed beyond this batch; the clones are real.
        sys.Settle();
        live_children.insert(live_children.end(), failed->begin(), failed->end());
      }
    }

    ExpectFrameConsistency(sys);
    ExpectParentPatternIntact(sys, *parent);
  }

  // Full teardown returns the pool to its boot state: the stressed pool
  // never leaked or double-freed a frame.
  for (auto it = live_children.rbegin(); it != live_children.rend(); ++it) {
    (void)sys.toolstack().DestroyDomain(*it);
    if (sys.hypervisor().FindDomain(*it) != nullptr) {
      (void)sys.hypervisor().DestroyDomain(*it);
    }
  }
  (void)sys.toolstack().DestroyDomain(*parent);
  sys.Settle();
  ExpectFrameConsistency(sys);
  EXPECT_EQ(sys.hypervisor().FreePoolFrames(), initial_free);
}

// Clone families at several thread counts racing through repeated
// generations: clones of clones with the pool staging every batch. The
// family tree and frame table stay consistent throughout.
TEST_F(ConcurrencyStressTest, CloneOfCloneGenerationsUnderPool) {
  NepheleSystem sys(StressSystem(/*threads=*/8));
  auto root = sys.toolstack().CreateDomain(ParentConfig());
  ASSERT_TRUE(root.ok());
  sys.Settle();

  std::vector<DomId> generation = {*root};
  for (int gen = 0; gen < 3; ++gen) {
    SCOPED_TRACE("generation " + std::to_string(gen));
    std::vector<DomId> next;
    for (DomId dom : generation) {
      auto children = sys.clone_engine().Clone({dom, dom, StartInfoMfn(sys, dom), 2});
      ASSERT_TRUE(children.ok()) << children.status().ToString();
      sys.Settle();
      next.insert(next.end(), children->begin(), children->end());
    }
    for (DomId c : next) {
      EXPECT_TRUE(sys.hypervisor().IsDescendantOf(c, *root));
      EXPECT_EQ(sys.hypervisor().FindDomain(c)->family_root, *root);
    }
    ExpectFrameConsistency(sys);
    generation = next;
  }
  // 2 + 4 + 8 descendants of the root.
  EXPECT_EQ(sys.clone_engine().stats().clones, 14u);
}

// Back-to-back batches with the thread count reconfigured between them:
// pool teardown/rebuild under load, with a COW/reset workload in between.
TEST_F(ConcurrencyStressTest, PoolSurvivesRepeatedReconfiguration) {
  NepheleSystem sys(StressSystem(/*threads=*/2));
  auto parent = sys.toolstack().CreateDomain(ParentConfig());
  ASSERT_TRUE(parent.ok());
  sys.Settle();

  for (unsigned threads : {4u, 1u, 8u, 3u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    sys.clone_engine().SetWorkerThreads(threads);
    auto children = sys.clone_engine().Clone({*parent, *parent, StartInfoMfn(sys, *parent), 5});
    ASSERT_TRUE(children.ok()) << children.status().ToString();
    sys.Settle();
    std::uint8_t b = 1;
    for (DomId c : *children) {
      ASSERT_TRUE(sys.hypervisor().WriteGuestPage(c, FirstDataGfn(), 0, &b, 1).ok());
      (void)sys.toolstack().DestroyDomain(c);
      if (sys.hypervisor().FindDomain(c) != nullptr) {
        (void)sys.hypervisor().DestroyDomain(c);
      }
    }
    sys.Settle();
    ExpectFrameConsistency(sys);
  }
}

}  // namespace
}  // namespace nephele
