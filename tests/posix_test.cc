// Tests for the POSIX compatibility shim: fork/pipe/open/socket semantics
// over the unikernel runtime, including descriptor survival across fork —
// the Sec. 7.1 "towards full POSIX compatibility" contract.

#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/guest/posix.h"

namespace nephele {
namespace {

// An app whose whole state is a PosixShim — clones carry their fd table.
class PosixApp : public GuestApp {
 public:
  void OnBoot(GuestContext& ctx) override { (void)ctx; }
  std::unique_ptr<GuestApp> CloneApp() const override {
    return std::make_unique<PosixApp>(*this);
  }
  std::string_view app_name() const override { return "posix"; }

  PosixShim posix;
};

class PosixTest : public ::testing::Test {
 protected:
  PosixTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;
    return cfg;
  }

  DomId BootGuest(bool with_p9 = true) {
    DomainConfig cfg;
    cfg.name = "posix";
    cfg.memory_mb = 8;
    cfg.max_clones = 8;
    cfg.with_p9fs = with_p9;
    if (with_p9) {
      (void)system_.devices().hostfs().CreateFile(cfg.p9_export + "/etc/motd");
      (void)system_.devices().hostfs().WriteAt(cfg.p9_export + "/etc/motd", 0,
                                               {'h', 'e', 'l', 'l', 'o'});
    }
    auto dom = guests_.Launch(cfg, std::make_unique<PosixApp>());
    EXPECT_TRUE(dom.ok());
    system_.Settle();
    return *dom;
  }

  PosixApp& App(DomId dom) { return *dynamic_cast<PosixApp*>(guests_.AppOf(dom)); }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(PosixTest, PidsMatchDomainTree) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  EXPECT_EQ(PosixShim::GetPid(ctx), dom);
  EXPECT_EQ(PosixShim::GetPpid(ctx), kDomInvalid);
  ASSERT_TRUE(ctx.Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(dom)->children.front();
  EXPECT_EQ(PosixShim::GetPpid(*guests_.ContextOf(child)), dom);
}

TEST_F(PosixTest, OpenReadWriteLseekClose) {
  DomId dom = BootGuest();
  GuestContext& ctx = *guests_.ContextOf(dom);
  PosixShim& posix = App(dom).posix;

  auto fd = posix.Open(ctx, "etc/motd", PosixShim::kOpenReadOnly);
  ASSERT_TRUE(fd.ok());
  auto data = posix.Read(ctx, *fd, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hel");
  // Sequential offset advances; lseek rewinds.
  data = posix.Read(ctx, *fd, 8);
  EXPECT_EQ(std::string(data->begin(), data->end()), "lo");
  ASSERT_TRUE(posix.Lseek(*fd, 0).ok());
  data = posix.Read(ctx, *fd, 5);
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello");
  // Read-only fd rejects writes.
  EXPECT_EQ(posix.Write(ctx, *fd, {1}).status().code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(posix.Close(ctx, *fd).ok());
  EXPECT_EQ(posix.Read(ctx, *fd, 1).status().code(), StatusCode::kNotFound);
}

TEST_F(PosixTest, CreateAndWriteFile) {
  DomId dom = BootGuest();
  GuestContext& ctx = *guests_.ContextOf(dom);
  PosixShim& posix = App(dom).posix;
  auto fd = posix.Open(ctx, "output.log", PosixShim::kOpenCreate);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*posix.Write(ctx, *fd, {'a', 'b'}), 2u);
  EXPECT_EQ(*posix.Write(ctx, *fd, {'c'}), 1u);  // appends at the offset
  ASSERT_TRUE(posix.Close(ctx, *fd).ok());
  auto contents =
      system_.devices().hostfs().ReadAt("/srv/guest-root/output.log", 0, 8);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(std::string(contents->begin(), contents->end()), "abc");
}

TEST_F(PosixTest, PipeThenForkCarriesData) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  auto fds = App(dom).posix.Pipe(ctx);
  ASSERT_TRUE(fds.ok());
  auto [read_fd, write_fd] = *fds;

  std::string child_got;
  int rfd = read_fd;
  ASSERT_TRUE(ctx.Fork(1,
                       [rfd, &child_got](GuestContext& fctx, GuestApp& self,
                                         const ForkResult& r) {
                         auto& app = static_cast<PosixApp&>(self);
                         if (r.is_child) {
                           // The fd table was cloned with the app; the pipe
                           // object is family-shared.
                           auto data = app.posix.Read(fctx, rfd, 64);
                           if (data.ok()) {
                             child_got.assign(data->begin(), data->end());
                           }
                         } else {
                           std::string msg = "over the pipe";
                           (void)app.posix.Write(
                               fctx, rfd + 1,
                               std::vector<std::uint8_t>(msg.begin(), msg.end()));
                         }
                       })
                  .ok());
  system_.Settle();
  (void)write_fd;
  // The parent's continuation ran after the child's first read; read again
  // from the child to observe the write.
  DomId child = system_.hypervisor().FindDomain(dom)->children.front();
  auto late = App(child).posix.Read(*guests_.ContextOf(child), read_fd, 64);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(std::string(late->begin(), late->end()), "over the pipe");
}

TEST_F(PosixTest, PipeEndDirectionEnforced) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  auto fds = App(dom).posix.Pipe(ctx);
  ASSERT_TRUE(fds.ok());
  EXPECT_EQ(App(dom).posix.Write(ctx, fds->first, {1}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(App(dom).posix.Read(ctx, fds->second, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PosixTest, FileDescriptorsSurviveFork) {
  DomId dom = BootGuest();
  GuestContext& ctx = *guests_.ContextOf(dom);
  auto fd = App(dom).posix.Open(ctx, "etc/motd", PosixShim::kOpenReadOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(ctx.Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(dom)->children.front();
  // The child's shim copy + the backend's QMP-cloned fid table make the fd
  // usable immediately.
  auto data = App(child).posix.Read(*guests_.ContextOf(child), *fd, 5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello");
}

TEST_F(PosixTest, UdpSocketSendsThroughStack) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  PosixShim& posix = App(dom).posix;
  std::vector<Packet> uplink;
  system_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  auto fd = posix.Socket(ctx);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(posix.Bind(ctx, *fd, 5353).ok());
  ASSERT_TRUE(posix.SendTo(ctx, *fd, MakeIpv4(10, 8, 255, 1), 53, {9}).ok());
  system_.Settle();
  ASSERT_EQ(uplink.size(), 1u);
  EXPECT_EQ(uplink[0].src_port, 5353);
  EXPECT_EQ(uplink[0].dst_port, 53);
}

TEST_F(PosixTest, BadFdsRejectedEverywhere) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  PosixShim& posix = App(dom).posix;
  EXPECT_EQ(posix.Read(ctx, 42, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(posix.Write(ctx, 42, {1}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(posix.Close(ctx, 42).code(), StatusCode::kNotFound);
  EXPECT_EQ(posix.Bind(ctx, 42, 80).code(), StatusCode::kNotFound);
  EXPECT_EQ(posix.Lseek(42, 0).status().code(), StatusCode::kNotFound);
}

TEST_F(PosixTest, OpenWithoutMountFails) {
  DomId dom = BootGuest(false);
  GuestContext& ctx = *guests_.ContextOf(dom);
  EXPECT_EQ(App(dom).posix.Open(ctx, "x", PosixShim::kOpenReadOnly).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nephele
