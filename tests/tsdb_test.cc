// The telemetry pipeline: RingSeries edge cases, collector sampling and
// windowed aggregation, alarm hysteresis, and byte-determinism of the
// TSDB/alarm exports across reruns and clone worker counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/ring_series.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/toolstack/domain_config.h"

namespace nephele {
namespace {

// ---------------------------------------------------------------------
// RingSeries
// ---------------------------------------------------------------------

TEST(RingSeriesTest, FillsThenWrapsOverwritingOldest) {
  RingSeries ring(4);
  for (std::int64_t v = 0; v < 10; ++v) {
    ring.Append(v);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.next_tick(), 10u);
  EXPECT_EQ(ring.first_retained_tick(), 6u);
  EXPECT_FALSE(ring.Retained(5));
  EXPECT_TRUE(ring.Retained(6));
  for (std::uint64_t t = 6; t < 10; ++t) {
    EXPECT_EQ(ring.AtTick(t), static_cast<std::int64_t>(t)) << "tick " << t;
  }
  EXPECT_EQ(ring.Last(), 9);
}

TEST(RingSeriesTest, PartiallyFilledRetainsEverything) {
  RingSeries ring(8);
  ring.Append(41);
  ring.Append(42);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.first_retained_tick(), 0u);
  EXPECT_EQ(ring.AtTick(0), 41);
  EXPECT_EQ(ring.AtTick(1), 42);
}

TEST(RingSeriesTest, ZeroCapacityClampsToOne) {
  RingSeries ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Append(1);
  ring.Append(2);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.Last(), 2);
  EXPECT_EQ(ring.first_retained_tick(), 1u);
}

// ---------------------------------------------------------------------
// Collector sampling + aggregation
// ---------------------------------------------------------------------

TEST(TsdbCollectorTest, SamplesCountersGaugesAndHistogramPairs) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  registry.GetCounter("demo/counter").Increment(3);
  registry.GetGauge("demo/gauge").Set(-7);
  registry.GetHistogram("demo/hist", {10, 100}).Observe(42);
  tsdb.Tick();
  ASSERT_NE(tsdb.FindSeries("demo/counter"), nullptr);
  EXPECT_EQ(tsdb.FindSeries("demo/counter")->Last(), 3);
  EXPECT_EQ(tsdb.FindSeries("demo/gauge")->Last(), -7);
  EXPECT_EQ(tsdb.FindSeries("demo/hist/count")->Last(), 1);
  EXPECT_EQ(tsdb.FindSeries("demo/hist/sum")->Last(), 42);
  // The collector's own tick counter is a series like any other.
  EXPECT_EQ(tsdb.FindSeries("tsdb/ticks")->Last(), 1);
}

TEST(TsdbCollectorTest, WindowLargerThanHistoryClampsToRetained) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  Counter& c = registry.GetCounter("demo/c");
  for (int i = 0; i < 3; ++i) {
    c.Increment(2);
    tsdb.Tick();
  }
  WindowStats stats = tsdb.Aggregate("demo/c", 1000);
  EXPECT_EQ(stats.samples, 3u);
  EXPECT_EQ(stats.min, 2);
  EXPECT_EQ(stats.max, 6);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.rate_per_tick, 2.0);
}

TEST(TsdbCollectorTest, WindowClampsToRingCapacityAfterWrap) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbConfig config;
  config.ring_capacity = 4;
  TsdbCollector tsdb(registry, loop, config);
  Gauge& g = registry.GetGauge("demo/g");
  for (int i = 1; i <= 10; ++i) {
    g.Set(i);
    tsdb.Tick();
  }
  WindowStats stats = tsdb.Aggregate("demo/g", 1000);
  EXPECT_EQ(stats.samples, 4u);  // only the last 4 ticks survive the ring
  EXPECT_EQ(stats.min, 7);
  EXPECT_EQ(stats.max, 10);
}

TEST(TsdbCollectorTest, AllIdenticalWindowHasZeroRate) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  registry.GetGauge("demo/g").Set(5);
  for (int i = 0; i < 4; ++i) {
    tsdb.Tick();
  }
  WindowStats stats = tsdb.Aggregate("demo/g", 4);
  EXPECT_EQ(stats.min, 5);
  EXPECT_EQ(stats.max, 5);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.rate_per_tick, 0.0);
}

TEST(TsdbCollectorTest, EmptyWindowIsAllZeros) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  WindowStats stats = tsdb.Aggregate("absent/series", 8);
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_EQ(tsdb.Percentile("absent/series", 8, 99.0), 0);
  // A known series with a zero-width window is equally empty.
  registry.GetGauge("demo/g").Set(1);
  tsdb.Tick();
  EXPECT_EQ(tsdb.Aggregate("demo/g", 0).samples, 0u);
}

TEST(TsdbCollectorTest, PercentileUsesNearestRank) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  Gauge& g = registry.GetGauge("demo/g");
  for (int i = 1; i <= 10; ++i) {
    g.Set(i);
    tsdb.Tick();
  }
  EXPECT_EQ(tsdb.Percentile("demo/g", 10, 0.0), 1);    // rank clamps up to 1
  EXPECT_EQ(tsdb.Percentile("demo/g", 10, 50.0), 5);   // ceil(0.5*10) = 5
  EXPECT_EQ(tsdb.Percentile("demo/g", 10, 99.0), 10);  // ceil(0.99*10) = 10
  EXPECT_EQ(tsdb.Percentile("demo/g", 10, 150.0), 10); // p clamps to 100
}

TEST(TsdbCollectorTest, MidRunSeriesKeepGlobalTickAlignment) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  registry.GetGauge("early/g").Set(1);
  tsdb.Tick();
  tsdb.Tick();
  registry.GetGauge("late/g").Set(9);  // discovered on the third tick
  tsdb.Tick();
  // Ticks are numbered from 1 in the export; a series discovered mid-run
  // keeps the GLOBAL tick numbering (first_tick 3), not its own local 1.
  const std::string json = tsdb.ExportJson();
  EXPECT_NE(json.find("\"early/g\": {\"first_tick\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"late/g\": {\"first_tick\": 3"), std::string::npos) << json;
}

TEST(TsdbCollectorTest, ScheduledTicksRunOnSimTimeAndDrain) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbConfig config;
  config.tick_interval = SimDuration::Millis(5);
  TsdbCollector tsdb(registry, loop, config);
  tsdb.ScheduleTicks(3);
  loop.Run();  // drains: the collector never re-arms itself
  EXPECT_EQ(tsdb.ticks(), 3u);
  EXPECT_EQ(loop.Now().ns(), SimDuration::Millis(15).ns());
}

// ---------------------------------------------------------------------
// Alarms
// ---------------------------------------------------------------------

struct TransitionLog : TsdbObserver {
  std::vector<std::string> events;
  void OnAlarmRaised(const AlarmRule& rule, std::uint64_t tick) override {
    events.push_back("raise:" + rule.name + "@" + std::to_string(tick));
  }
  void OnAlarmCleared(const AlarmRule& rule, std::uint64_t tick) override {
    events.push_back("clear:" + rule.name + "@" + std::to_string(tick));
  }
};

AlarmRule MeanRule(double raise_above, double clear_below) {
  AlarmRule rule;
  rule.name = "demo";
  rule.series = "demo/g";
  rule.agg = WindowAgg::kMean;
  rule.window = 1;
  rule.raise_above = raise_above;
  rule.clear_below = clear_below;
  rule.raise_after = 2;
  rule.clear_after = 2;
  return rule;
}

TEST(AlarmEngineTest, RaisesAfterConsecutiveTicksAndClearsWithHysteresis) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  AlarmEngine alarms(tsdb, registry);
  alarms.AddRule(MeanRule(10.0, 5.0));
  TransitionLog log;
  alarms.AddObserver(&log);
  Gauge& g = registry.GetGauge("demo/g");

  g.Set(20);
  tsdb.Tick();  // over, streak 1
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kClear);
  tsdb.Tick();  // over, streak 2 -> raised
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kRaised);
  EXPECT_EQ(registry.GaugeValue("alarm/demo/state"), 1);
  EXPECT_EQ(registry.CounterValue("alarm/demo/raised_total"), 1u);

  g.Set(7);     // inside the hysteresis band: neither over nor under
  tsdb.Tick();
  tsdb.Tick();
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kRaised) << "band must not clear";

  g.Set(1);
  tsdb.Tick();  // under, streak 1
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kRaised);
  tsdb.Tick();  // under, streak 2 -> cleared
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kClear);
  EXPECT_EQ(registry.GaugeValue("alarm/demo/state"), 0);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0], "raise:demo@1");
  EXPECT_EQ(log.events[1], "clear:demo@5");
}

TEST(AlarmEngineTest, BoundaryValuesAdvanceNeitherStreakSoNoFlap) {
  MetricsRegistry registry;
  EventLoop loop;
  TsdbCollector tsdb(registry, loop, {});
  AlarmEngine alarms(tsdb, registry);
  alarms.AddRule(MeanRule(10.0, 10.0));  // degenerate band: both thresholds 10
  Gauge& g = registry.GetGauge("demo/g");
  g.Set(10);  // == raise_above: strictly-above never holds
  for (int i = 0; i < 8; ++i) {
    tsdb.Tick();
  }
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kClear);
  EXPECT_EQ(registry.CounterValue("alarm/demo/raised_total"), 0u);

  // An interrupted streak resets: over, over is needed CONSECUTIVELY.
  g.Set(11);
  tsdb.Tick();  // streak 1
  g.Set(10);
  tsdb.Tick();  // boundary resets the streak
  g.Set(11);
  tsdb.Tick();  // streak 1 again
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kClear);
  tsdb.Tick();  // streak 2 -> raised
  EXPECT_EQ(alarms.StateOf("demo"), AlarmState::kRaised);
}

TEST(AlarmEngineTest, DefaultRulesCoverThrashRollbacksStreamStallsAndReqTails) {
  auto rules = AlarmEngine::DefaultNepheleRules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "warm_pool_thrash");
  EXPECT_EQ(rules[0].series, "sched/evictions");
  EXPECT_EQ(rules[1].name, "rollback_storm");
  EXPECT_EQ(rules[1].series, "clone/rolled_back");
  EXPECT_EQ(rules[2].name, "stream_stall");
  EXPECT_EQ(rules[2].series, "clone/lazy_pending_pages");
  EXPECT_EQ(rules[2].agg, WindowAgg::kMin);
  EXPECT_EQ(rules[3].name, "req_tail");
  EXPECT_EQ(rules[3].series, "req/latency_p99_ns");
  EXPECT_EQ(rules[3].agg, WindowAgg::kMin);
  for (std::size_t i = 0; i < 2; ++i) {
    const AlarmRule& r = rules[i];
    EXPECT_LT(r.clear_below, r.raise_above) << r.name << ": hysteresis band must be open";
  }
  // stream_stall watches an integral gauge: raise while min pending > 0,
  // clear once it touches 0 — the band is the gap between 0 and 1.
  EXPECT_EQ(rules[2].raise_above, 0.0);
  EXPECT_EQ(rules[2].clear_below, 1.0);
  // req_tail raises only when the *windowed minimum* of the rolling p99
  // stays past 50 ms — a sustained tail, not one slow request.
  EXPECT_EQ(rules[3].raise_above, 50e6);
  EXPECT_LT(rules[3].clear_below, rules[3].raise_above);
  for (const AlarmRule& r : rules) {
    EXPECT_GE(r.raise_after, 2u) << r.name;
  }
}

// ---------------------------------------------------------------------
// Export determinism
// ---------------------------------------------------------------------

// The golden workload shape of golden_schema_test, reduced: boot, clone a
// batch, tick the collector through it.
std::pair<std::string, std::string> RunAndExport(unsigned clone_workers) {
  SystemConfig cfg;
  cfg.clone_worker_threads = clone_workers;
  cfg.tsdb.tick_interval = SimDuration::Millis(1);
  cfg.tsdb.ring_capacity = 16;
  NepheleSystem sys(cfg);
  TsdbCollector tsdb(sys.metrics(), sys.loop(), sys.config().tsdb);
  AlarmEngine alarms(tsdb, sys.metrics());
  for (AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }
  DomainConfig dcfg;
  dcfg.name = "det";
  dcfg.max_clones = 8;
  auto parent = sys.toolstack().CreateDomain(dcfg);
  EXPECT_TRUE(parent.ok());
  tsdb.ScheduleTicks(4);
  sys.Settle();
  const Domain* d = sys.hypervisor().FindDomain(*parent);
  auto children = sys.clone_engine().Clone({*parent, *parent, d->p2m[d->start_info_gfn].mfn, 4});
  EXPECT_TRUE(children.ok());
  tsdb.ScheduleTicks(4);
  sys.Settle();
  return {tsdb.ExportJson(), alarms.ExportJson()};
}

TEST(TsdbDeterminismTest, ExportsAreByteIdenticalAcrossRerunsAndWorkerCounts) {
  auto [tsdb_w1_a, alarm_w1_a] = RunAndExport(1);
  auto [tsdb_w1_b, alarm_w1_b] = RunAndExport(1);
  auto [tsdb_w4, alarm_w4] = RunAndExport(4);
  EXPECT_EQ(tsdb_w1_a, tsdb_w1_b) << "TSDB export must be stable across reruns";
  EXPECT_EQ(alarm_w1_a, alarm_w1_b) << "alarm export must be stable across reruns";
  EXPECT_EQ(tsdb_w1_a, tsdb_w4) << "TSDB export must not depend on clone worker count";
  EXPECT_EQ(alarm_w1_a, alarm_w4) << "alarm export must not depend on clone worker count";
}

}  // namespace
}  // namespace nephele
