// Shared frame-accounting invariants, asserted by the fault sweep and the
// concurrency stress suite after every perturbation of a system:
//
//  * frame conservation: free + allocated == total;
//  * every allocated frame is mapped by exactly the references the frame
//    table thinks it has (shared refcount == number of p2m references,
//    unshared frames mapped exactly once);
//  * no freed frame is still mapped anywhere.

#ifndef TESTS_FRAME_INVARIANTS_H_
#define TESTS_FRAME_INVARIANTS_H_

#include <gtest/gtest.h>

#include <map>

#include "src/core/system.h"

namespace nephele {

// Frame-table consistency against every live domain's mappings.
inline void ExpectFrameConsistency(NepheleSystem& sys) {
  Hypervisor& hv = sys.hypervisor();
  const FrameTable& ft = hv.frames();
  EXPECT_EQ(ft.free_frames() + ft.allocated_frames(), ft.total_frames());

  std::map<Mfn, std::uint64_t> refs;
  for (DomId id : hv.DomainIds()) {
    const Domain* d = hv.FindDomain(id);
    ASSERT_NE(d, nullptr);
    for (const P2mEntry& e : d->p2m) {
      if (e.mfn != kInvalidMfn) {
        ++refs[e.mfn];
      }
    }
    for (Mfn m : d->page_table_frames) {
      ++refs[m];
    }
    for (Mfn m : d->p2m_frames) {
      ++refs[m];
    }
  }
  EXPECT_EQ(ft.allocated_frames(), refs.size()) << "allocated frames not all mapped (leak)";
  for (const auto& [mfn, count] : refs) {
    const FrameInfo& fi = ft.info(mfn);
    EXPECT_TRUE(fi.allocated) << "freed frame still mapped: mfn " << mfn;
    if (fi.shared) {
      EXPECT_EQ(fi.refcount.load(std::memory_order_relaxed), count)
          << "refcount mismatch on shared mfn " << mfn;
    } else {
      EXPECT_EQ(count, 1u) << "unshared mfn mapped more than once: " << mfn;
    }
  }
}

}  // namespace nephele

#endif  // TESTS_FRAME_INVARIANTS_H_
