// Gtest shim over the reusable hypervisor invariant oracle
// (src/hypervisor/invariants.h), asserted by the fault sweep and the
// concurrency stress suite after every perturbation of a system. The real
// checks — frame conservation and refcount-vs-mapping agreement, p2m
// ownership, grant bookkeeping, evtchn connectivity — live in the library so
// the DST executor and the hvfuzz harness run the identical oracle.

#ifndef TESTS_FRAME_INVARIANTS_H_
#define TESTS_FRAME_INVARIANTS_H_

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/hypervisor/invariants.h"

namespace nephele {

// Full hypervisor state consistency against every live domain's mappings.
inline void ExpectFrameConsistency(NepheleSystem& sys) {
  EXPECT_EQ(CheckHypervisorInvariants(sys.hypervisor()), "");
}

}  // namespace nephele

#endif  // TESTS_FRAME_INVARIANTS_H_
