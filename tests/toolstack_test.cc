#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/xenstore/path.h"

namespace nephele {
namespace {

class ToolstackTest : public ::testing::Test {
 protected:
  ToolstackTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;  // 256 MiB pool
    return cfg;
  }

  DomainConfig GuestConfig(const std::string& name) {
    DomainConfig cfg;
    cfg.name = name;
    cfg.memory_mb = 4;
    return cfg;
  }

  NepheleSystem system_;
};

TEST_F(ToolstackTest, LayoutAccountsForEverything) {
  DomainConfig cfg = GuestConfig("a");
  GuestMemoryLayout layout = ComputeGuestLayout(cfg, 1024);
  EXPECT_EQ(layout.total_pages, 1024u);
  EXPECT_EQ(layout.total_pages, layout.text_pages + layout.data_pages + layout.heap_pages +
                                    layout.special_pages + layout.io_pages);
  // Without a vif there are no I/O pages; heap grows accordingly.
  cfg.with_vif = false;
  GuestMemoryLayout no_vif = ComputeGuestLayout(cfg, 1024);
  EXPECT_EQ(no_vif.io_pages, 0u);
  EXPECT_GT(no_vif.heap_pages, layout.heap_pages);
}

TEST_F(ToolstackTest, MinDomainSizeEnforced) {
  DomainConfig cfg = GuestConfig("a");
  cfg.memory_mb = 1;  // below Xen's 4 MiB minimum
  GuestMemoryLayout layout = ComputeGuestLayout(cfg, 1024);
  EXPECT_EQ(layout.total_pages, 1024u);  // clamped up
}

TEST_F(ToolstackTest, CreateDomainBuildsFullGuest) {
  auto dom = system_.toolstack().CreateDomain(GuestConfig("guest-a"));
  ASSERT_TRUE(dom.ok());
  const Domain* d = system_.hypervisor().FindDomain(*dom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DomainState::kRunning);
  EXPECT_EQ(d->tot_pages(), 1024u);
  EXPECT_FALSE(d->page_table_frames.empty());
  // Devices exist and are connected.
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  ASSERT_NE(gd, nullptr);
  ASSERT_NE(gd->net, nullptr);
  EXPECT_TRUE(gd->net->connected());
  EXPECT_TRUE(system_.devices().console().HasConsole(*dom));
  // Xenstore entries written and domain introduced.
  EXPECT_TRUE(system_.xenstore().DomainKnown(*dom));
  EXPECT_EQ(*system_.xenstore().Read(XsDomainPath(*dom) + "/name"), "guest-a");
  EXPECT_EQ(*system_.xenstore().Read(XsFrontendPath(*dom, "vif", 0) + "/state"), "4");
  EXPECT_EQ(*system_.xenstore().Read(XsBackendPath(kDom0, "vif", *dom, 0) + "/hotplug-status"),
            "connected");
}

TEST_F(ToolstackTest, BootChargesRealisticTime) {
  SimTime before = system_.Now();
  ASSERT_TRUE(system_.toolstack().CreateDomain(GuestConfig("a")).ok());
  double ms = (system_.Now() - before).ToMillis();
  // Fig. 4 anchor: first boots land in the 140-180 ms band.
  EXPECT_GT(ms, 120.0);
  EXPECT_LT(ms, 200.0);
}

TEST_F(ToolstackTest, VifAttachedToDefaultSwitch) {
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  auto dom = system_.toolstack().CreateDomain(GuestConfig("a"));
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(bond.num_ports(), 1u);
}

TEST_F(ToolstackTest, CloneConfigPropagatesToHypervisor) {
  DomainConfig cfg = GuestConfig("a");
  cfg.max_clones = 7;
  auto dom = system_.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(dom.ok());
  EXPECT_TRUE(system_.hypervisor().FindDomain(*dom)->cloning_enabled);
  EXPECT_EQ(system_.hypervisor().FindDomain(*dom)->max_clones, 7u);
}

TEST_F(ToolstackTest, NameCheckAblation) {
  system_.toolstack().SetNameCheckEnabled(true);
  ASSERT_TRUE(system_.toolstack().CreateDomain(GuestConfig("same")).ok());
  auto dup = system_.toolstack().CreateDomain(GuestConfig("same"));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  system_.toolstack().SetNameCheckEnabled(false);
  EXPECT_TRUE(system_.toolstack().CreateDomain(GuestConfig("same")).ok());
}

TEST_F(ToolstackTest, DestroyReleasesResourcesAndRegistry) {
  std::size_t free_before = system_.hypervisor().FreePoolFrames();
  auto dom = system_.toolstack().CreateDomain(GuestConfig("a"));
  ASSERT_TRUE(dom.ok());
  ASSERT_TRUE(system_.toolstack().DestroyDomain(*dom).ok());
  EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
  EXPECT_FALSE(system_.xenstore().DomainKnown(*dom));
  EXPECT_FALSE(system_.xenstore().Exists(XsDomainPath(*dom)));
  EXPECT_EQ(system_.toolstack().FindDevices(*dom), nullptr);
}

TEST_F(ToolstackTest, SaveRestoreRoundTrip) {
  auto dom = system_.toolstack().CreateDomain(GuestConfig("a"));
  ASSERT_TRUE(dom.ok());
  auto image = system_.toolstack().SaveDomain(*dom);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->pages, 1024u);
  ASSERT_TRUE(system_.toolstack().DestroyDomain(*dom).ok());

  SimTime before = system_.Now();
  auto restored = system_.toolstack().RestoreDomain(*image);
  ASSERT_TRUE(restored.ok());
  double restore_ms = (system_.Now() - before).ToMillis();
  const Domain* d = system_.hypervisor().FindDomain(*restored);
  EXPECT_EQ(d->tot_pages(), 1024u);
  EXPECT_EQ(d->state, DomainState::kRunning);
  // Restore sits above boot (whole memory copied back; Fig. 4).
  EXPECT_GT(restore_ms, 150.0);
}

TEST_F(ToolstackTest, SaveUnknownDomainFails) {
  EXPECT_EQ(system_.toolstack().SaveDomain(404).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(system_.toolstack().DestroyDomain(404).code(), StatusCode::kNotFound);
}

TEST_F(ToolstackTest, P9GuestGetsBackendProcess) {
  (void)system_.devices().hostfs().CreateFile("/srv/guest-root/etc/hosts");
  DomainConfig cfg = GuestConfig("a");
  cfg.with_p9fs = true;
  auto dom = system_.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(dom.ok());
  GuestDevices* gd = system_.toolstack().FindDevices(*dom);
  ASSERT_NE(gd->p9, nullptr);
  EXPECT_TRUE(gd->p9->ServesDomain(*dom));
  EXPECT_EQ(*system_.xenstore().Read(XsBackendPath(kDom0, "9pfs", *dom, 0) + "/state"), "4");
}

TEST_F(ToolstackTest, Dom0MemoryDecreasesPerGuest) {
  std::size_t free0 = system_.toolstack().Dom0FreeBytes();
  ASSERT_TRUE(system_.toolstack().CreateDomain(GuestConfig("a")).ok());
  std::size_t free1 = system_.toolstack().Dom0FreeBytes();
  EXPECT_LT(free1, free0);
  // Per-instance Dom0 cost is on the order of ~100 KiB (Fig. 5 rate).
  std::size_t per_instance = free0 - free1;
  EXPECT_GT(per_instance, 50 * 1024u);
  EXPECT_LT(per_instance, 400 * 1024u);
}

TEST_F(ToolstackTest, MacAndIpAutoAssignedUnique) {
  auto a = system_.toolstack().CreateDomain(GuestConfig("a"));
  auto b = system_.toolstack().CreateDomain(GuestConfig("b"));
  GuestDevices* da = system_.toolstack().FindDevices(*a);
  GuestDevices* db = system_.toolstack().FindDevices(*b);
  EXPECT_NE(da->net->mac(), db->net->mac());
  EXPECT_NE(da->net->ip(), db->net->ip());
}

TEST_F(ToolstackTest, RunningDomainsListsManaged) {
  auto a = system_.toolstack().CreateDomain(GuestConfig("a"));
  auto b = system_.toolstack().CreateDomain(GuestConfig("b"));
  auto doms = system_.toolstack().RunningDomains();
  EXPECT_EQ(doms.size(), 2u);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
}

TEST_F(ToolstackTest, BootFailsWhenPoolExhausted) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 512;  // 2 MiB: not enough for one 4 MiB guest
  NepheleSystem tiny(cfg);
  auto dom = tiny.toolstack().CreateDomain(DomainConfig{.name = "big"});
  EXPECT_EQ(dom.status().code(), StatusCode::kResourceExhausted);
  // Partial allocation rolled back.
  EXPECT_EQ(tiny.hypervisor().NumDomains(), 1u);  // only Dom0
}

}  // namespace
}  // namespace nephele
