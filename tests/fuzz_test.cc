#include <gtest/gtest.h>

#include "src/fuzz/fuzz_session.h"
#include "src/fuzz/kfx.h"

namespace nephele {
namespace {

TEST(CoverageMap, MergeCountsFreshEdges) {
  CoverageMap map;
  EXPECT_EQ(map.Merge({1, 2, 3}), 3u);
  EXPECT_EQ(map.Merge({1, 2, 3}), 0u);
  EXPECT_EQ(map.Merge({3, 4}), 1u);
  EXPECT_EQ(map.edges_covered(), 4u);
  EXPECT_TRUE(map.Covered(4));
  EXPECT_FALSE(map.Covered(5));
  map.Reset();
  EXPECT_EQ(map.edges_covered(), 0u);
}

TEST(CoverageMap, EdgesAliasModuloMapSize) {
  CoverageMap map;
  map.Merge({7});
  EXPECT_TRUE(map.Covered(7 + CoverageMap::kMapSize));
}

TEST(AflEngine, SeedsFeedMutation) {
  AflEngine afl(1);
  afl.AddSeed({1, 2, 3, 4});
  auto input = afl.NextInput();
  EXPECT_FALSE(input.empty());
  EXPECT_EQ(afl.executions(), 1u);
}

TEST(AflEngine, NewCoverageGrowsQueue) {
  AflEngine afl(1);
  afl.AddSeed({0, 0, 0, 0});
  std::size_t q0 = afl.queue_size();
  afl.ReportResult({1, 1, 1, 1}, {101, 1009}, false);
  EXPECT_EQ(afl.queue_size(), q0 + 1);
  // Same coverage again: not queued.
  afl.ReportResult({2, 2, 2, 2}, {101, 1009}, false);
  EXPECT_EQ(afl.queue_size(), q0 + 1);
}

TEST(AflEngine, CrashesCounted) {
  AflEngine afl(1);
  afl.ReportResult({1}, {5000}, true);
  EXPECT_EQ(afl.crashes(), 1u);
}

TEST(AflEngine, DeterministicAcrossRuns) {
  AflEngine a(42), b(42);
  a.AddSeed({9, 9, 9, 9});
  b.AddSeed({9, 9, 9, 9});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextInput(), b.NextInput());
  }
}

class KfxTest : public ::testing::Test {
 protected:
  KfxTest() : system_(SmallSystem()), guests_(system_), afl_(7) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomId LaunchTarget() {
    DomainConfig cfg;
    cfg.name = "target";
    cfg.memory_mb = 8;
    cfg.max_clones = 64;
    cfg.with_vif = false;
    auto dom = guests_.Launch(cfg, std::make_unique<FuzzTargetApp>(FuzzTargetConfig{}));
    EXPECT_TRUE(dom.ok());
    system_.Settle();
    return *dom;
  }

  NepheleSystem system_;
  GuestManager guests_;
  AflEngine afl_;
};

TEST_F(KfxTest, SetupClonesAndInstruments) {
  DomId target = LaunchTarget();
  KfxHarness harness(guests_, afl_);
  ASSERT_TRUE(harness.Setup(target).ok());
  EXPECT_NE(harness.clone_dom(), kDomInvalid);
  EXPECT_TRUE(system_.hypervisor().IsDescendantOf(harness.clone_dom(), target));
  // Instrumented text pages are clone-private now.
  const Domain* c = system_.hypervisor().FindDomain(harness.clone_dom());
  const Domain* p = system_.hypervisor().FindDomain(target);
  EXPECT_NE(c->p2m[0].mfn, p->p2m[0].mfn);
  // And excluded from the reset baseline.
  EXPECT_TRUE(c->dirty_since_clone.empty());
}

TEST_F(KfxTest, IterationsExecuteAndReset) {
  DomId target = LaunchTarget();
  KfxHarness harness(guests_, afl_);
  ASSERT_TRUE(harness.Setup(target).ok());
  for (int i = 0; i < 20; ++i) {
    auto it = harness.RunIteration();
    ASSERT_TRUE(it.ok());
    EXPECT_LE(it->pages_reset, 4u);
  }
  EXPECT_EQ(harness.iterations(), 20u);
  EXPECT_GT(afl_.edges_covered(), 0u);
  // Memory state is pristine between iterations: dirty list empty.
  EXPECT_TRUE(
      system_.hypervisor().FindDomain(harness.clone_dom())->dirty_since_clone.empty());
}

TEST_F(KfxTest, IterationThroughputMatchesPaperBand) {
  DomId target = LaunchTarget();
  KfxHarness harness(guests_, afl_);
  ASSERT_TRUE(harness.Setup(target).ok());
  SimTime t0 = system_.Now();
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(harness.RunIteration().ok());
  }
  double execs_per_s = n / (system_.Now() - t0).ToSeconds();
  // Sec. 7.2: ~470 exec/s with cloning.
  EXPECT_GT(execs_per_s, 350.0);
  EXPECT_LT(execs_per_s, 600.0);
}

TEST(FuzzSession, LinuxProcessFasterThanKernelModule) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem sys_a(scfg);
  GuestManager mgr_a(sys_a);
  FuzzSessionConfig cfg;
  cfg.duration = SimDuration::Seconds(5);
  cfg.sample_every = SimDuration::Seconds(1);
  cfg.mode = FuzzMode::kLinuxProcess;
  auto proc = RunFuzzSession(mgr_a, cfg);

  NepheleSystem sys_b(scfg);
  GuestManager mgr_b(sys_b);
  cfg.mode = FuzzMode::kLinuxKernelModule;
  auto module = RunFuzzSession(mgr_b, cfg);

  EXPECT_GT(proc.average_execs_per_second, module.average_execs_per_second);
  EXPECT_NEAR(proc.average_execs_per_second, 590, 120);
  EXPECT_NEAR(module.average_execs_per_second, 320, 80);
  EXPECT_EQ(proc.series.size(), 5u);
}

TEST(FuzzSession, NoCloneModeIsOrdersOfMagnitudeSlower) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem sys(scfg);
  GuestManager mgr(sys);
  FuzzSessionConfig cfg;
  cfg.mode = FuzzMode::kUnikraftNoClone;
  cfg.duration = SimDuration::Seconds(5);
  cfg.sample_every = SimDuration::Seconds(1);
  auto result = RunFuzzSession(mgr, cfg);
  EXPECT_LT(result.average_execs_per_second, 5.0);  // paper: ~2 exec/s
  EXPECT_GT(result.average_execs_per_second, 0.5);
}

}  // namespace
}  // namespace nephele
