#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/xenstore/path.h"

namespace nephele {
namespace {

class XenclonedTest : public ::testing::Test {
 protected:
  XenclonedTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomId BootParent(bool with_p9 = false) {
    DomainConfig cfg;
    cfg.name = "parent";
    cfg.max_clones = 32;
    cfg.with_p9fs = with_p9;
    if (with_p9) {
      (void)system_.devices().hostfs().CreateFile(cfg.p9_export + "/python3");
    }
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok());
    return *dom;
  }

  DomId CloneOnce(DomId parent) {
    const Domain* p = system_.hypervisor().FindDomain(parent);
    auto children =
        system_.clone_engine().Clone({parent, parent, p->p2m[p->start_info_gfn].mfn, 1});
    EXPECT_TRUE(children.ok()) << children.status().ToString();
    system_.Settle();
    return children->front();
  }

  NepheleSystem system_;
};

TEST_F(XenclonedTest, SecondStageBuildsChildRegistry) {
  DomId parent = BootParent();
  DomId child = CloneOnce(parent);
  XenstoreDaemon& xs = system_.xenstore();
  // Introduced with parent id, full Xenstore tree cloned & rewritten.
  EXPECT_TRUE(xs.DomainKnown(child));
  EXPECT_EQ(*xs.Read(XsDomainPath(child) + "/domid"), std::to_string(child));
  EXPECT_EQ(*xs.Read(XsFrontendPath(child, "vif", 0) + "/backend"),
            XsBackendPath(kDom0, "vif", child, 0));
  EXPECT_EQ(*xs.Read(XsBackendPath(kDom0, "vif", child, 0) + "/frontend-id"),
            std::to_string(child));
  // Toolstack registry adopted the clone.
  EXPECT_NE(system_.toolstack().FindConfig(child), nullptr);
  EXPECT_NE(system_.toolstack().FindDevices(child), nullptr);
}

TEST_F(XenclonedTest, GeneratedNamesAreUnique) {
  DomId parent = BootParent();
  DomId c1 = CloneOnce(parent);
  DomId c2 = CloneOnce(parent);
  std::string n1 = system_.hypervisor().FindDomain(c1)->name;
  std::string n2 = system_.hypervisor().FindDomain(c2)->name;
  EXPECT_NE(n1, n2);
  EXPECT_NE(n1, "parent");
  EXPECT_EQ(*system_.xenstore().Read(XsDomainPath(c1) + "/name"), n1);
}

TEST_F(XenclonedTest, CloneUsesFewXenstoreRequests) {
  DomId parent = BootParent();
  std::uint64_t before = system_.xenstore().stats().requests;
  (void)CloneOnce(parent);
  std::uint64_t clone_requests = system_.xenstore().stats().requests - before;
  // xs_clone collapses per-entry writes: single-digit requests per clone
  // (Sec. 5.2.1) vs ~40 for a boot.
  EXPECT_LE(clone_requests, 10u);
  EXPECT_GE(system_.xenstore().stats().xs_clone_requests, 2u);
}

TEST_F(XenclonedTest, DeepCopyModeWritesEveryEntry) {
  DomId parent = BootParent();
  system_.xencloned().SetUseXsClone(false);
  std::uint64_t before = system_.xenstore().stats().writes;
  (void)CloneOnce(parent);
  std::uint64_t writes = system_.xenstore().stats().writes - before;
  EXPECT_GT(writes, 20u);  // one request per entry
  EXPECT_GT(system_.xencloned().stats().deep_copy_writes, 20u);
}

TEST_F(XenclonedTest, ParentInfoCachedAfterFirstClone) {
  DomId parent = BootParent();
  (void)CloneOnce(parent);
  EXPECT_EQ(system_.xencloned().stats().cache_misses, 1u);
  EXPECT_EQ(system_.xencloned().stats().cache_hits, 0u);
  (void)CloneOnce(parent);
  EXPECT_EQ(system_.xencloned().stats().cache_misses, 1u);
  EXPECT_EQ(system_.xencloned().stats().cache_hits, 1u);
}

TEST_F(XenclonedTest, SecondCloneFasterThanFirst) {
  DomId parent = BootParent();
  SimTime t0 = system_.Now();
  (void)CloneOnce(parent);
  SimDuration first = system_.Now() - t0;
  SimTime t1 = system_.Now();
  (void)CloneOnce(parent);
  SimDuration second = system_.Now() - t1;
  EXPECT_LT(second, first);  // Sec. 6.2: 3 ms vs 1.9 ms userspace ops
}

TEST_F(XenclonedTest, CloneVifAttachedToDefaultSwitch) {
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  DomId parent = BootParent();
  EXPECT_EQ(bond.num_ports(), 1u);
  DomId child = CloneOnce(parent);
  EXPECT_EQ(bond.num_ports(), 2u);
  Vif* vif = system_.devices().netback().FindVif(DeviceId{child, DeviceType::kVif, 0});
  ASSERT_NE(vif, nullptr);
  EXPECT_EQ(vif->state(), XenbusState::kConnected);
  EXPECT_EQ(vif->attached_switch(), &bond);
}

TEST_F(XenclonedTest, CloneConsoleExists) {
  DomId parent = BootParent();
  (void)system_.devices().console().GuestWrite(parent, "parent says hi");
  DomId child = CloneOnce(parent);
  ASSERT_TRUE(system_.devices().console().HasConsole(child));
  EXPECT_EQ(*system_.devices().console().Output(child), "");  // not copied
}

TEST_F(XenclonedTest, P9FidTableClonedViaQmp) {
  DomId parent = BootParent(/*with_p9=*/true);
  GuestDevices* pd = system_.toolstack().FindDevices(parent);
  ASSERT_NE(pd->p9, nullptr);
  std::size_t parent_fids = pd->p9->NumFids(parent);
  DomId child = CloneOnce(parent);
  GuestDevices* cd = system_.toolstack().FindDevices(child);
  ASSERT_NE(cd->p9, nullptr);
  EXPECT_EQ(cd->p9, pd->p9);  // same backend process for the family
  EXPECT_EQ(cd->p9->NumFids(child), parent_fids);
}

TEST_F(XenclonedTest, ClonesCompletedCounted) {
  DomId parent = BootParent();
  (void)CloneOnce(parent);
  (void)CloneOnce(parent);
  EXPECT_EQ(system_.xencloned().stats().clones_completed, 2u);
}

TEST_F(XenclonedTest, StartClonesPausedRespected) {
  DomainConfig cfg;
  cfg.name = "p";
  cfg.max_clones = 4;
  cfg.start_clones_paused = true;
  auto parent = system_.toolstack().CreateDomain(cfg);
  ASSERT_TRUE(parent.ok());
  const Domain* p = system_.hypervisor().FindDomain(*parent);
  auto children =
      system_.clone_engine().Clone({*parent, *parent, p->p2m[p->start_info_gfn].mfn, 1});
  ASSERT_TRUE(children.ok());
  system_.Settle();
  // Parent resumed, child left paused (Sec. 5).
  EXPECT_EQ(system_.hypervisor().FindDomain(*parent)->state, DomainState::kRunning);
  EXPECT_TRUE(system_.hypervisor().FindDomain(children->front())->IsPaused());
}

}  // namespace
}  // namespace nephele
