// Tests for the virtual block device — the Sec. 5.3 "new device type"
// extension: backend COW disks, the clone path through xencloned, and the
// guest-visible frontend.

#include <gtest/gtest.h>

#include "src/apps/udp_ready_app.h"
#include "src/devices/vbd.h"
#include "src/guest/guest_manager.h"
#include "src/xenstore/path.h"

namespace nephele {
namespace {

TEST(BlockStore, AllocRefUnref) {
  BlockStore store;
  BlockId b = store.AllocZero();
  EXPECT_EQ(store.RefCount(b), 1u);
  store.Ref(b);
  EXPECT_EQ(store.RefCount(b), 2u);
  store.Unref(b);
  store.Unref(b);
  EXPECT_EQ(store.RefCount(b), 0u);
  EXPECT_EQ(store.live_blocks(), 0u);
}

TEST(BlockStore, LazyMaterialisation) {
  BlockStore store;
  BlockId b = store.AllocZero();
  std::uint8_t buf[4] = {1, 2, 3, 4};
  store.ReadBytes(b, 0, buf, 4);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(store.MaterialisedBytes(), 0u);
  std::uint8_t v = 9;
  store.WriteBytes(b, 100, &v, 1);
  EXPECT_EQ(store.MaterialisedBytes(), kVbdBlockSize);
  store.ReadBytes(b, 100, buf, 1);
  EXPECT_EQ(buf[0], 9);
}

TEST(BlockStore, CowWriteSemantics) {
  BlockStore store;
  BlockId b = store.AllocZero();
  std::uint8_t v = 7;
  store.WriteBytes(b, 0, &v, 1);
  store.Ref(b);  // two owners now
  BlockId w = store.ResolveCowWrite(b);
  EXPECT_NE(w, b);  // copy broke the share
  EXPECT_EQ(store.RefCount(b), 1u);
  std::uint8_t out = 0;
  store.ReadBytes(w, 0, &out, 1);
  EXPECT_EQ(out, 7);  // contents copied
  // Sole owner writes in place.
  EXPECT_EQ(store.ResolveCowWrite(w), w);
}

class VbdBackendTest : public ::testing::Test {
 protected:
  VbdBackendTest() : backend_(loop_, DefaultCostModel()) {}

  DeviceId Disk(DomId dom) { return DeviceId{dom, DeviceType::kVbd, 0}; }

  EventLoop loop_;
  VbdBackend backend_;
};

TEST_F(VbdBackendTest, CreateReadWrite) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 8).ok());
  EXPECT_EQ(*backend_.DiskSize(Disk(1)), 8 * kMiB);
  std::uint8_t data[] = {0xAA, 0xBB};
  ASSERT_TRUE(backend_.Write(Disk(1), 5000, data, 2).ok());
  std::uint8_t out[2] = {};
  ASSERT_TRUE(backend_.Read(Disk(1), 5000, out, 2).ok());
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
}

TEST_F(VbdBackendTest, BoundsChecked) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 1).ok());
  std::uint8_t b = 0;
  EXPECT_EQ(backend_.Write(Disk(1), kMiB, &b, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(backend_.Read(Disk(9), 0, &b, 1).code(), StatusCode::kNotFound);
}

TEST_F(VbdBackendTest, WriteSpansBlocks) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 1).ok());
  std::vector<std::uint8_t> data(kVbdBlockSize + 10, 0x5A);
  ASSERT_TRUE(backend_.Write(Disk(1), kVbdBlockSize - 5, data.data(), data.size()).ok());
  std::uint8_t out = 0;
  ASSERT_TRUE(backend_.Read(Disk(1), 2 * kVbdBlockSize + 4, &out, 1).ok());
  EXPECT_EQ(out, 0x5A);
}

TEST_F(VbdBackendTest, CloneSharesBlocks) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 4).ok());
  std::uint8_t v = 0x42;
  ASSERT_TRUE(backend_.Write(Disk(1), 0, &v, 1).ok());
  std::size_t blocks_before = backend_.store().live_blocks();
  ASSERT_TRUE(backend_.CloneDisk(Disk(1), Disk(2)).ok());
  // No new blocks: the child's table references the parent's.
  EXPECT_EQ(backend_.store().live_blocks(), blocks_before);
  std::uint8_t out = 0;
  ASSERT_TRUE(backend_.Read(Disk(2), 0, &out, 1).ok());
  EXPECT_EQ(out, 0x42);
}

TEST_F(VbdBackendTest, CloneCowIsolation) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 4).ok());
  std::uint8_t parent_v = 1;
  ASSERT_TRUE(backend_.Write(Disk(1), 64, &parent_v, 1).ok());
  ASSERT_TRUE(backend_.CloneDisk(Disk(1), Disk(2)).ok());
  // Child overwrites; parent must keep its data.
  std::uint8_t child_v = 2;
  ASSERT_TRUE(backend_.Write(Disk(2), 64, &child_v, 1).ok());
  std::uint8_t out = 0;
  ASSERT_TRUE(backend_.Read(Disk(1), 64, &out, 1).ok());
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(backend_.Read(Disk(2), 64, &out, 1).ok());
  EXPECT_EQ(out, 2);
  // Exactly one block diverged on each side of that block's share.
  EXPECT_EQ(backend_.PrivateBlocks(Disk(2)), 1u);
}

TEST_F(VbdBackendTest, DestroyReleasesReferences) {
  ASSERT_TRUE(backend_.CreateDisk(Disk(1), 2).ok());
  ASSERT_TRUE(backend_.CloneDisk(Disk(1), Disk(2)).ok());
  std::size_t live = backend_.store().live_blocks();
  ASSERT_TRUE(backend_.DestroyDisk(Disk(2)).ok());
  EXPECT_EQ(backend_.store().live_blocks(), live);  // parent still refs them
  ASSERT_TRUE(backend_.DestroyDisk(Disk(1)).ok());
  EXPECT_EQ(backend_.store().live_blocks(), 0u);
}

TEST_F(VbdBackendTest, CloneRequiresParent) {
  EXPECT_EQ(backend_.CloneDisk(Disk(7), Disk(8)).code(), StatusCode::kNotFound);
}

// --- Full-system integration: boot with vbd, fork, verify the clone path ---

class VbdSystemTest : public ::testing::Test {
 protected:
  VbdSystemTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomId BootWithDisk() {
    DomainConfig cfg;
    cfg.name = "disky";
    cfg.memory_mb = 8;
    cfg.max_clones = 8;
    cfg.with_vbd = true;
    cfg.vbd_size_mb = 16;
    auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    EXPECT_TRUE(dom.ok());
    system_.Settle();
    return *dom;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(VbdSystemTest, BootCreatesConnectedDisk) {
  DomId dom = BootWithDisk();
  GuestContext* ctx = guests_.ContextOf(dom);
  ASSERT_NE(ctx->block(), nullptr);
  EXPECT_EQ(*ctx->block()->Size(), 16 * kMiB);
  EXPECT_EQ(*system_.xenstore().Read(XsBackendPath(kDom0, "vbd", dom, 0) + "/state"), "4");
}

TEST_F(VbdSystemTest, GuestReadWriteThroughFrontend) {
  DomId dom = BootWithDisk();
  VbdFrontend* disk = guests_.ContextOf(dom)->block();
  ASSERT_TRUE(disk->Write(1234, {9, 8, 7}).ok());
  auto data = disk->Read(1234, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST_F(VbdSystemTest, CloneGetsCowSnapshotDisk) {
  DomId parent = BootWithDisk();
  VbdFrontend* pdisk = guests_.ContextOf(parent)->block();
  ASSERT_TRUE(pdisk->Write(0, {'s', 'n', 'a', 'p'}).ok());

  DomId child = kDomInvalid;
  ASSERT_TRUE(guests_.ContextOf(parent)
                  ->Fork(1,
                         [&](GuestContext& ctx, GuestApp&, const ForkResult& r) {
                           if (r.is_child) {
                             child = ctx.id();
                           }
                         })
                  .ok());
  system_.Settle();
  ASSERT_NE(child, kDomInvalid);

  // Xenstore entries for the child's disk exist with rewritten ids.
  EXPECT_EQ(*system_.xenstore().Read(XsBackendPath(kDom0, "vbd", child, 0) + "/frontend-id"),
            std::to_string(child));

  // The child sees the parent's pre-fork data ...
  VbdFrontend* cdisk = guests_.ContextOf(child)->block();
  ASSERT_NE(cdisk, nullptr);
  auto data = cdisk->Read(0, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "snap");

  // ... and writes diverge in both directions.
  ASSERT_TRUE(cdisk->Write(0, {'c'}).ok());
  ASSERT_TRUE(pdisk->Write(1, {'P'}).ok());
  EXPECT_EQ((*pdisk->Read(0, 1))[0], 's');
  EXPECT_EQ((*cdisk->Read(0, 1))[0], 'c');
  EXPECT_EQ((*cdisk->Read(1, 1))[0], 'n');
  EXPECT_EQ((*pdisk->Read(1, 1))[0], 'P');
}

TEST_F(VbdSystemTest, CloneDiskCostsNoBlocksUpfront) {
  DomId parent = BootWithDisk();
  std::size_t blocks_before = system_.devices().vbd().store().live_blocks();
  ASSERT_TRUE(guests_.ContextOf(parent)->Fork(1, nullptr).ok());
  system_.Settle();
  EXPECT_EQ(system_.devices().vbd().store().live_blocks(), blocks_before);
}

TEST_F(VbdSystemTest, DestroyCloneKeepsParentDisk) {
  DomId parent = BootWithDisk();
  VbdFrontend* pdisk = guests_.ContextOf(parent)->block();
  ASSERT_TRUE(pdisk->Write(0, {1}).ok());
  ASSERT_TRUE(guests_.ContextOf(parent)->Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(parent)->children.front();
  ASSERT_TRUE(guests_.Destroy(child).ok());
  EXPECT_EQ((*pdisk->Read(0, 1))[0], 1);
}

}  // namespace
}  // namespace nephele
