// Unit tests for the clone engine's staging pool (src/core/worker_pool):
// construction edge cases, drain-on-destruction, exception containment and
// the submit-after-shutdown path.

#include "src/core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nephele {
namespace {

TEST(WorkerPoolTest, ZeroSizeClampsToOneThread) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.Submit(0, [&] { ran.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerPoolTest, SingleThreadRunsJobsInSubmissionOrder) {
  WorkerPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.Submit(0, [&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(WorkerPoolTest, WorkerSelectionWrapsModuloSize) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  // Worker indices far beyond size() must land on a real worker.
  for (unsigned w : {0u, 1u, 2u, 3u, 17u, 1000u}) {
    pool.Submit(w, [&] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 6);
}

TEST(WorkerPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit(static_cast<unsigned>(i), [&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      });
    }
    // No WaitIdle: the destructor must still run every pending job.
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPoolTest, ThrowingJobIsContainedAndCounted) {
  WorkerPool pool(1);
  std::atomic<int> ran{0};
  pool.Submit(0, [] { throw std::runtime_error("boom"); });
  pool.Submit(0, [&] { ran.fetch_add(1); });
  pool.WaitIdle();
  // The worker survived the throw and ran the next job.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.exceptions_caught(), 1u);

  pool.Submit(0, [] { throw 42; });  // non-std::exception payloads too
  pool.WaitIdle();
  EXPECT_EQ(pool.exceptions_caught(), 2u);
}

TEST(WorkerPoolTest, SubmitAfterShutdownIsRejectedNotRun) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit(0, [&] { ran.fetch_add(1); });
  pool.Shutdown();
  EXPECT_TRUE(pool.shut_down());
  EXPECT_EQ(ran.load(), 1);  // pre-shutdown work drained

  pool.Submit(0, [&] { ran.fetch_add(1); });
  pool.Submit(1, [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.rejected_jobs(), 2u);

  // Shutdown is idempotent; destruction after shutdown is clean.
  pool.Shutdown();
  EXPECT_EQ(pool.rejected_jobs(), 2u);
}

}  // namespace
}  // namespace nephele
