// Negative-path sweep over every guest-reachable entry point: hypercalls,
// grants, event channels, xenstore, 9p and the clone ops. Hostile arguments
// (invalid domids, stale handles, boundary and overflowing sizes) must yield
// typed errors — never kInternal, an assert, a leak or corrupted hypervisor
// state. Every test re-checks the full invariant set from
// src/hypervisor/invariants.h and that the frame pool balance is untouched.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/devices/hostfs.h"
#include "src/devices/p9.h"
#include "src/hypervisor/invariants.h"
#include "src/xenstore/path.h"

namespace nephele {
namespace {

constexpr std::size_t kSizeMax = std::numeric_limits<std::size_t>::max();

class HostileApiTest : public ::testing::Test {
 protected:
  HostileApiTest() : system_(SmallSystem()) {
    system_.Settle();
    baseline_free_ = system_.hypervisor().FreePoolFrames();
  }

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;  // 256 MiB pool
    return cfg;
  }

  DomId Boot(std::uint32_t max_clones = 32) {
    DomainConfig cfg;
    cfg.name = "hostile";
    cfg.memory_mb = 4;
    cfg.max_clones = max_clones;
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok()) << dom.status().ToString();
    system_.Settle();
    return *dom;
  }

  Mfn StartInfoMfn(DomId dom) {
    const Domain* d = system_.hypervisor().FindDomain(dom);
    return d->p2m[d->start_info_gfn].mfn;
  }

  std::size_t P2mSize(DomId dom) {
    return system_.hypervisor().FindDomain(dom)->p2m.size();
  }

  void ExpectClean() {
    EXPECT_EQ(CheckHypervisorInvariants(system_.hypervisor()), "");
  }

  void ExpectPoolBalanced(std::size_t want_free) {
    EXPECT_EQ(system_.hypervisor().FreePoolFrames(), want_free);
  }

  NepheleSystem system_;
  std::size_t baseline_free_ = 0;
};

TEST_F(HostileApiTest, GuestAccessRejectsOverflowingRanges) {
  DomId dom = Boot();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();
  std::uint8_t byte = 0;
  Hypervisor& hv = system_.hypervisor();

  // Boundary sizes: the full page is legal, one byte past is not, and
  // offset+len combinations that wrap size_t must not reach the copy.
  std::vector<std::uint8_t> page(kPageSize, 0);
  EXPECT_TRUE(hv.WriteGuestPage(dom, 500, 0, page.data(), kPageSize).ok());
  EXPECT_EQ(hv.WriteGuestPage(dom, 500, 1, page.data(), kPageSize).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(hv.WriteGuestPage(dom, 500, kPageSize, &byte, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.WriteGuestPage(dom, 500, kSizeMax - 1, &byte, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.WriteGuestPage(dom, 500, 2, &byte, kSizeMax - 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.ReadGuestPage(dom, 500, kSizeMax, &byte, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.ReadGuestPage(dom, 500, 4095, &byte, 2).code(), StatusCode::kOutOfRange);

  // Out-of-p2m gfns.
  EXPECT_EQ(hv.WriteGuestPage(dom, static_cast<Gfn>(P2mSize(dom)), 0, &byte, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(hv.ReadGuestPage(dom, 0xFFFFFFF0u, 0, &byte, 1).code(), StatusCode::kOutOfRange);

  ExpectClean();
  ExpectPoolBalanced(free_before);
}

TEST_F(HostileApiTest, GuestAccessRejectsInvalidDomains) {
  std::uint8_t byte = 7;
  Hypervisor& hv = system_.hypervisor();
  EXPECT_EQ(hv.WriteGuestPage(4242, 0, 0, &byte, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.ReadGuestPage(kDomChild, 0, 0, &byte, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.TouchGuestPages(kDomInvalid, 0, 1).code(), StatusCode::kNotFound);

  DomId dom = Boot();
  EXPECT_TRUE(system_.toolstack().DestroyDomain(dom).ok());
  system_.Settle();
  EXPECT_EQ(hv.WriteGuestPage(dom, 0, 0, &byte, 1).code(), StatusCode::kNotFound);
  ExpectClean();
  ExpectPoolBalanced(baseline_free_);
}

TEST_F(HostileApiTest, TouchAndCowRejectWrapAroundRanges) {
  DomId dom = Boot();
  Hypervisor& hv = system_.hypervisor();

  EXPECT_EQ(hv.TouchGuestPages(dom, 0xFFFFFFF0u, 1024).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.TouchGuestPages(dom, 0, kSizeMax).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(hv.TouchGuestPages(dom, static_cast<Gfn>(P2mSize(dom)), 1).code(),
            StatusCode::kOutOfRange);
  // The empty range at the very end is legal (STL-style half-open bounds).
  EXPECT_TRUE(hv.TouchGuestPages(dom, static_cast<Gfn>(P2mSize(dom)), 0).ok());

  DomId other = Boot();
  const std::size_t free_after_boots = system_.hypervisor().FreePoolFrames();
  CloneEngine& ce = system_.clone_engine();
  EXPECT_EQ(ce.CloneCow(kDom0, dom, 0xFFFFFFF0u, 1024).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ce.CloneCow(kDom0, dom, 0, kSizeMax).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ce.CloneCow(kDom0, 4242, 0, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ce.CloneCow(other, dom, 0, 1).code(), StatusCode::kPermissionDenied);

  ExpectClean();
  ExpectPoolBalanced(free_after_boots);  // every rejected range left the pool alone
}

TEST_F(HostileApiTest, GrantEntryPointsRejectStaleAndForeignHandles) {
  DomId granter = Boot();
  DomId mapper = Boot();
  DomId stranger = Boot();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();
  Hypervisor& hv = system_.hypervisor();

  // Hostile creation.
  EXPECT_EQ(hv.GrantAccess(4242, mapper, 400, false).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.GrantAccess(granter, mapper, static_cast<Gfn>(P2mSize(granter)), false).status().code(),
            StatusCode::kOutOfRange);

  auto ref = hv.GrantAccess(granter, mapper, 400, false);
  ASSERT_TRUE(ref.ok());

  // Hostile mapping: wrong grantee, dead mapper, bogus refs.
  EXPECT_EQ(hv.MapGrant(stranger, granter, *ref).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(hv.MapGrant(mapper, granter, *ref + 1000).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.MapGrant(mapper, 4242, *ref).status().code(), StatusCode::kNotFound);
  DomId doomed = Boot();
  auto ref2 = hv.GrantAccess(granter, doomed, 401, false);
  ASSERT_TRUE(ref2.ok());
  EXPECT_TRUE(system_.toolstack().DestroyDomain(doomed).ok());
  system_.Settle();
  EXPECT_EQ(hv.MapGrant(doomed, granter, *ref2).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(hv.EndGrantAccess(granter, *ref2).ok());

  // A mapping held by `mapper` survives a foreign unmap attempt.
  ASSERT_TRUE(hv.MapGrant(mapper, granter, *ref).ok());
  EXPECT_EQ(hv.UnmapGrant(stranger, granter, *ref).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(hv.UnmapGrant(kDom0, granter, *ref).code(), StatusCode::kPermissionDenied);
  // Revoking while mapped is a typed precondition failure, and a stranger
  // cannot revoke at all (their table has no such ref).
  EXPECT_EQ(hv.EndGrantAccess(granter, *ref).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(hv.EndGrantAccess(stranger, *ref).code(), StatusCode::kNotFound);
  // The legitimate mapper still holds a working mapping.
  EXPECT_TRUE(hv.UnmapGrant(mapper, granter, *ref).ok());
  EXPECT_EQ(hv.UnmapGrant(mapper, granter, *ref).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(hv.EndGrantAccess(granter, *ref).ok());
  EXPECT_EQ(hv.EndGrantAccess(granter, *ref).code(), StatusCode::kNotFound);

  ExpectClean();
  ExpectPoolBalanced(free_before);
}

TEST_F(HostileApiTest, DestroyScrubsGrantsAndBalancesPool) {
  DomId a = Boot();
  DomId b = Boot();
  Hypervisor& hv = system_.hypervisor();
  auto ref = hv.GrantAccess(a, b, 400, false);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(hv.MapGrant(b, a, *ref).ok());
  auto back = hv.GrantAccess(b, a, 400, true);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(hv.MapGrant(a, b, *back).ok());

  // Killing the mapper must not leave the granter's entry claiming a live
  // mapping; killing the granter must not leave b holding a dangling map.
  EXPECT_TRUE(system_.toolstack().DestroyDomain(b).ok());
  system_.Settle();
  ExpectClean();
  EXPECT_TRUE(hv.EndGrantAccess(a, *ref).ok());  // map_count was scrubbed
  EXPECT_TRUE(system_.toolstack().DestroyDomain(a).ok());
  system_.Settle();
  ExpectClean();
  ExpectPoolBalanced(baseline_free_);
}

TEST_F(HostileApiTest, DestroyDomainGuards) {
  EXPECT_EQ(system_.hypervisor().DestroyDomain(kDom0).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(system_.hypervisor().DestroyDomain(4242).code(), StatusCode::kNotFound);
  EXPECT_EQ(system_.hypervisor().DestroyDomain(kDomChild).code(), StatusCode::kNotFound);
  DomId dom = Boot();
  EXPECT_TRUE(system_.toolstack().DestroyDomain(dom).ok());
  system_.Settle();
  EXPECT_EQ(system_.toolstack().DestroyDomain(dom).code(), StatusCode::kNotFound);
  ExpectClean();
  ExpectPoolBalanced(baseline_free_);
}

TEST_F(HostileApiTest, EvtchnEntryPointsRejectHostileCalls) {
  DomId a = Boot();
  DomId b = Boot();
  Hypervisor& hv = system_.hypervisor();

  EXPECT_EQ(hv.EvtchnAllocUnbound(4242, a).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.EvtchnBindInterdomain(a, b, 9999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.EvtchnBindInterdomain(a, 4242, 1).status().code(), StatusCode::kNotFound);

  auto unbound = hv.EvtchnAllocUnbound(a, b);
  ASSERT_TRUE(unbound.ok());
  // Reserved for b: a third party may not bind it.
  DomId c = Boot();
  EXPECT_EQ(hv.EvtchnBindInterdomain(c, a, *unbound).status().code(),
            StatusCode::kPermissionDenied);
  // Sending on a not-yet-connected port is a precondition failure.
  EXPECT_EQ(hv.EvtchnSend(a, *unbound).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(hv.EvtchnSend(a, 9999).code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.EvtchnSend(4242, 1).code(), StatusCode::kNotFound);

  auto bport = hv.EvtchnBindInterdomain(b, a, *unbound);
  ASSERT_TRUE(bport.ok());
  // Re-binding an already-connected remote port must fail cleanly.
  EXPECT_EQ(hv.EvtchnBindInterdomain(c, a, *unbound).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(hv.EvtchnSend(a, *unbound).ok());
  system_.Settle();

  // Destroying one side scrubs the peer: the survivor's send is typed, the
  // invariant sweep sees no dangling connection.
  EXPECT_TRUE(system_.toolstack().DestroyDomain(b).ok());
  system_.Settle();
  ExpectClean();
  EXPECT_EQ(hv.EvtchnSend(a, *unbound).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(hv.EvtchnClose(a, *unbound).ok());
  EXPECT_EQ(hv.EvtchnClose(a, *unbound).code(), StatusCode::kNotFound);
  EXPECT_EQ(hv.EvtchnClose(4242, 1).code(), StatusCode::kNotFound);

  system_.Settle();
  ExpectClean();
  // Tear everything down: nothing the hostile sweep did may leak a frame.
  EXPECT_TRUE(system_.toolstack().DestroyDomain(c).ok());
  EXPECT_TRUE(system_.toolstack().DestroyDomain(a).ok());
  system_.Settle();
  ExpectClean();
  ExpectPoolBalanced(baseline_free_);
}

TEST_F(HostileApiTest, XenstoreRejectsHostileWrites) {
  DomId dom = Boot();
  XenstoreDaemon& xs = system_.xenstore();
  const std::string base = XsDomainPath(dom) + "/data";

  EXPECT_EQ(xs.Write(base + "/" + std::string(300, 'k'), "v").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(xs.Write(base + "/../../0/data/escape", "v").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(xs.Write(base + "/./x", "v").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(xs.Write(base + "/ok", std::string(5000, 'x')).code(), StatusCode::kInvalidArgument);
  std::string deep = base;
  for (int i = 0; i < 600; ++i) {
    deep += "/d";
  }
  EXPECT_EQ(xs.Write(deep, "v").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(xs.Mkdir(base + "/../../oops").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(xs.Rm(XsDomainPath(dom) + "/..").code(), StatusCode::kInvalidArgument);

  // None of the rejects landed anywhere, and sane writes still work.
  EXPECT_FALSE(xs.Exists("/local/domain/0/data/escape"));
  EXPECT_TRUE(xs.Write(base + "/ok", "v").ok());
  ExpectClean();
}

TEST_F(HostileApiTest, P9RejectsEscapesAndBadFids) {
  DomId dom = Boot();
  HostFs fs;
  ASSERT_TRUE(fs.CreateFile("/srv/hostile/file").ok());
  P9BackendProcess p9(system_.loop(), system_.costs(), fs, "/srv/hostile");

  EXPECT_EQ(p9.Walk(dom, 1, "x").status().code(), StatusCode::kNotFound);  // not attached
  auto root = p9.Attach(dom);
  ASSERT_TRUE(root.ok());

  EXPECT_EQ(p9.Walk(dom, *root, "..").status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(p9.Walk(dom, *root, "a/../../b").status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(p9.Walk(dom, *root, ".").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p9.Create(dom, *root, "..").status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(p9.Create(dom, *root, "a/b").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p9.Create(dom, *root, ".").status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(p9.Open(dom, 9999, false).code(), StatusCode::kNotFound);
  EXPECT_EQ(p9.Read(dom, 9999, 0, 16).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(p9.Clunk(dom, 9999).code(), StatusCode::kNotFound);

  // The legitimate path still works after the hostile sweep.
  auto fid = p9.Walk(dom, *root, "file");
  ASSERT_TRUE(fid.ok());
  EXPECT_TRUE(p9.Open(dom, *fid, false).ok());
  system_.Settle();
  ExpectClean();
}

TEST_F(HostileApiTest, CloneOpsRejectHostileRequests) {
  DomId parent = Boot();
  DomId stranger = Boot();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();
  CloneEngine& ce = system_.clone_engine();

  EXPECT_EQ(ce.Clone({stranger, parent, StartInfoMfn(parent), 1}).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ce.Clone({kDomInvalid, parent, StartInfoMfn(parent), 1}).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ce.Clone({kDom0, 4242, 0, 1}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ce.Clone({parent, parent, static_cast<Mfn>(0xDEADBEEF), 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ce.Clone({parent, parent, StartInfoMfn(parent), 0}).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(ce.CloneReset(kDom0, parent).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ce.CloneReset(kDom0, 4242).status().code(), StatusCode::kNotFound);

  auto child = ce.Clone({parent, parent, StartInfoMfn(parent), 1});
  ASSERT_TRUE(child.ok());
  system_.Settle();
  EXPECT_EQ(ce.CloneReset(stranger, child->front()).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(ce.CloneReset(kDom0, child->front()).ok());
  system_.Settle();

  EXPECT_TRUE(system_.toolstack().DestroyDomain(child->front()).ok());
  system_.Settle();
  ExpectClean();
  ExpectPoolBalanced(free_before);
}

TEST_F(HostileApiTest, MigrateOutOfFamilyLinkedDomainNamesTheBlockingRelatives) {
  DomId parent = Boot();
  auto children = system_.clone_engine().Clone({kDom0, parent, StartInfoMfn(parent), 2});
  ASSERT_TRUE(children.ok());
  system_.Settle();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();

  // The parent of living clones must not emigrate: CoW-shared frames would
  // dangle. The refusal is typed and names every blocking relative.
  Status refused = system_.toolstack().MigrateOut(parent).status();
  ASSERT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  const std::string parent_msg(refused.message());
  for (DomId child : *children) {
    EXPECT_NE(parent_msg.find("domid " + std::to_string(child)), std::string::npos)
        << parent_msg;
  }
  EXPECT_NE(parent_msg.find("children"), std::string::npos) << parent_msg;

  // Same for a child, which names its parent.
  Status child_refused = system_.toolstack().MigrateOut(children->front()).status();
  ASSERT_EQ(child_refused.code(), StatusCode::kFailedPrecondition);
  const std::string child_msg(child_refused.message());
  EXPECT_NE(child_msg.find("hostile"), std::string::npos) << child_msg;
  EXPECT_NE(child_msg.find("domid " + std::to_string(parent)), std::string::npos)
      << child_msg;

  // The split-phase entry point refuses identically, and nothing was left
  // pending: the whole family is still running and the pool untouched.
  EXPECT_EQ(system_.toolstack().BeginMigrateOut(parent).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(system_.hypervisor().FindDomain(parent)->state, DomainState::kRunning);
  for (DomId child : *children) {
    EXPECT_NE(system_.hypervisor().FindDomain(child), nullptr);
  }
  ExpectClean();
  ExpectPoolBalanced(free_before);

  // Once the family is gone the same domain emigrates cleanly.
  for (DomId child : *children) {
    EXPECT_TRUE(system_.toolstack().DestroyDomain(child).ok());
  }
  system_.Settle();
  auto stream = system_.toolstack().BeginMigrateOut(parent);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_TRUE(system_.toolstack().AbortMigrateOut(parent).ok());
  ExpectClean();
}

}  // namespace
}  // namespace nephele
