#include <gtest/gtest.h>

#include "src/net/packet.h"
#include "src/net/switch.h"

namespace nephele {
namespace {

class FakePort : public SwitchPort {
 public:
  FakePort(MacAddr mac, Ipv4Addr ip, std::string name)
      : mac_(mac), ip_(ip), name_(std::move(name)) {}

  void DeliverToGuest(const Packet& packet) override { received.push_back(packet); }
  MacAddr mac() const override { return mac_; }
  Ipv4Addr ip() const override { return ip_; }
  std::string port_name() const override { return name_; }

  std::vector<Packet> received;

 private:
  MacAddr mac_;
  Ipv4Addr ip_;
  std::string name_;
};

Packet MakeUdp(Ipv4Addr src_ip, std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port) {
  Packet p;
  p.proto = IpProto::kUdp;
  p.src_ip = src_ip;
  p.src_port = src_port;
  p.dst_ip = dst_ip;
  p.dst_port = dst_port;
  return p;
}

TEST(Packet, Ipv4Formatting) {
  EXPECT_EQ(Ipv4ToString(MakeIpv4(10, 8, 0, 2)), "10.8.0.2");
  EXPECT_EQ(MakeIpv4(255, 255, 255, 255), 0xffffffffu);
}

TEST(Packet, FlowKeyOrderingAndReversal) {
  Packet p = MakeUdp(1, 10, 2, 20);
  FlowKey k = KeyOf(p);
  FlowKey r = Reversed(k);
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_FALSE(k == r);
  EXPECT_TRUE(k == KeyOf(p));
}

TEST(Packet, Layer34HashIsDeterministic) {
  Packet p = MakeUdp(1, 10, 2, 20);
  EXPECT_EQ(Layer34Hash(p), Layer34Hash(p));
  Packet q = MakeUdp(1, 11, 2, 20);
  EXPECT_NE(Layer34Hash(p), Layer34Hash(q));  // overwhelmingly likely
}

TEST(Bridge, ForwardsByLearnedMac) {
  Bridge bridge;
  FakePort a(0xaa, 1, "a");
  FakePort b(0xbb, 2, "b");
  ASSERT_TRUE(bridge.Attach(&a).ok());
  ASSERT_TRUE(bridge.Attach(&b).ok());
  Packet p = MakeUdp(1, 10, 2, 20);
  p.dst_mac = 0xbb;
  bridge.TransmitFromGuest(&a, p);
  ASSERT_EQ(b.received.size(), 1u);
}

TEST(Bridge, UnknownMacGoesToUplink) {
  Bridge bridge;
  FakePort a(0xaa, 1, "a");
  ASSERT_TRUE(bridge.Attach(&a).ok());
  int uplinked = 0;
  bridge.set_uplink_sink([&](const Packet&) { ++uplinked; });
  Packet p = MakeUdp(1, 10, 99, 20);
  p.dst_mac = 0xcc;
  bridge.TransmitFromGuest(&a, p);
  EXPECT_EQ(uplinked, 1);
}

TEST(Bridge, IngressFallsBackToIpMatch) {
  Bridge bridge;
  FakePort a(0xaa, MakeIpv4(10, 0, 0, 1), "a");
  ASSERT_TRUE(bridge.Attach(&a).ok());
  Packet p = MakeUdp(1, 10, MakeIpv4(10, 0, 0, 1), 20);
  bridge.InjectFromUplink(p);
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(Bridge, DoubleAttachRejected) {
  Bridge bridge;
  FakePort a(0xaa, 1, "a");
  ASSERT_TRUE(bridge.Attach(&a).ok());
  EXPECT_EQ(bridge.Attach(&a).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(bridge.Detach(&a).ok());
  EXPECT_EQ(bridge.Detach(&a).code(), StatusCode::kNotFound);
}

TEST(Bond, SameTupleAlwaysSameSlave) {
  Bond bond;
  FakePort s0(0x1, 5, "s0"), s1(0x1, 5, "s1"), s2(0x1, 5, "s2");
  ASSERT_TRUE(bond.Attach(&s0).ok());
  ASSERT_TRUE(bond.Attach(&s1).ok());
  ASSERT_TRUE(bond.Attach(&s2).ok());
  Packet p = MakeUdp(7, 1234, 5, 80);
  std::size_t pick = bond.SelectIndex(p);
  for (int i = 0; i < 20; ++i) {
    bond.InjectFromUplink(p);
  }
  EXPECT_EQ(bond.slave(pick)->port_name(),
            pick == 0 ? "s0" : (pick == 1 ? "s1" : "s2"));
  FakePort* chosen = static_cast<FakePort*>(bond.slave(pick));
  EXPECT_EQ(chosen->received.size(), 20u);
}

TEST(Bond, DistinctPortsSpreadAcrossSlaves) {
  Bond bond;
  FakePort s0(0x1, 5, "s0"), s1(0x1, 5, "s1"), s2(0x1, 5, "s2"), s3(0x1, 5, "s3");
  for (FakePort* s : {&s0, &s1, &s2, &s3}) {
    ASSERT_TRUE(bond.Attach(s).ok());
  }
  for (std::uint16_t port = 1000; port < 1400; ++port) {
    bond.InjectFromUplink(MakeUdp(7, port, 5, 80));
  }
  // Roughly uniform: each slave within 2x of fair share.
  for (FakePort* s : {&s0, &s1, &s2, &s3}) {
    EXPECT_GT(s->received.size(), 50u) << s->port_name();
    EXPECT_LT(s->received.size(), 200u) << s->port_name();
  }
}

TEST(Bond, EgressIsStateless) {
  Bond bond;
  FakePort s0(0x1, 5, "s0");
  ASSERT_TRUE(bond.Attach(&s0).ok());
  int uplinked = 0;
  bond.set_uplink_sink([&](const Packet&) { ++uplinked; });
  bond.TransmitFromGuest(&s0, MakeUdp(5, 80, 7, 1234));
  EXPECT_EQ(uplinked, 1);
  EXPECT_TRUE(s0.received.empty());
}

TEST(OvsGroup, DefaultSelectorHashes) {
  OvsGroup group;
  FakePort b0(0x1, 5, "b0"), b1(0x1, 5, "b1");
  ASSERT_TRUE(group.Attach(&b0).ok());
  ASSERT_TRUE(group.Attach(&b1).ok());
  Packet p = MakeUdp(7, 4242, 5, 80);
  group.InjectFromUplink(p);
  group.InjectFromUplink(p);
  EXPECT_EQ(b0.received.size() + b1.received.size(), 2u);
  // Same flow sticks to the same bucket.
  EXPECT_TRUE(b0.received.size() == 2 || b1.received.size() == 2);
  EXPECT_EQ(group.flows_seen(), 1u);
}

TEST(OvsGroup, CustomSelectorOverrides) {
  OvsGroup group;
  FakePort b0(0x1, 5, "b0"), b1(0x1, 5, "b1");
  ASSERT_TRUE(group.Attach(&b0).ok());
  ASSERT_TRUE(group.Attach(&b1).ok());
  group.set_selector([](const Packet&, std::size_t) { return std::size_t{1}; });
  group.InjectFromUplink(MakeUdp(1, 1, 5, 80));
  group.InjectFromUplink(MakeUdp(2, 2, 5, 80));
  EXPECT_EQ(b1.received.size(), 2u);
  EXPECT_TRUE(b0.received.empty());
}

TEST(FindPortForSlave, ProducesInjectiveMapping) {
  // The Fig. 4 methodology: a unique source port per clone such that the
  // bond maps each tuple to the intended slave.
  const std::size_t slaves = 8;
  std::uint16_t next_start = 10000;
  for (std::size_t want = 0; want < slaves; ++want) {
    auto port = FindPortForSlave(MakeIpv4(10, 8, 255, 1), MakeIpv4(10, 8, 0, 2), 7,
                                 IpProto::kUdp, slaves, want, next_start);
    ASSERT_TRUE(port.ok());
    Packet probe = MakeUdp(MakeIpv4(10, 8, 255, 1), *port, MakeIpv4(10, 8, 0, 2), 7);
    EXPECT_EQ(Layer34Hash(probe) % slaves, want);
    next_start = static_cast<std::uint16_t>(*port + 1);
  }
}

TEST(FindPortForSlave, RejectsBadIndex) {
  EXPECT_EQ(FindPortForSlave(1, 2, 7, IpProto::kUdp, 4, 9).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FindPortForSlave(1, 2, 7, IpProto::kUdp, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// Property: the bond's hash-selection is a function — replaying any packet
// set yields identical slave counts (DESIGN.md invariant 6).
class BondDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BondDeterminism, ReplayMatches) {
  std::size_t num_slaves = GetParam();
  auto run = [num_slaves]() {
    Bond bond;
    std::vector<std::unique_ptr<FakePort>> slaves;
    for (std::size_t i = 0; i < num_slaves; ++i) {
      slaves.push_back(std::make_unique<FakePort>(0x1, 5, "s" + std::to_string(i)));
      EXPECT_TRUE(bond.Attach(slaves.back().get()).ok());
    }
    std::vector<std::size_t> counts;
    for (std::uint16_t port = 2000; port < 2200; ++port) {
      bond.InjectFromUplink(MakeUdp(7, port, 5, 80));
    }
    for (auto& s : slaves) {
      counts.push_back(s->received.size());
    }
    return counts;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(SlaveCounts, BondDeterminism, ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace nephele
