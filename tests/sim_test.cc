#include <gtest/gtest.h>

#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"
#include "src/sim/series.h"
#include "src/sim/time.h"

namespace nephele {
namespace {

TEST(SimTime, ConversionsRoundTrip) {
  SimDuration d = SimDuration::Millis(1.5);
  EXPECT_EQ(d.ns(), 1'500'000);
  EXPECT_DOUBLE_EQ(d.ToMillis(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration::Seconds(2).ToSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(SimDuration::Micros(3).ToMicros(), 3.0);
}

TEST(SimTime, Arithmetic) {
  SimTime t(1000);
  SimTime u = t + SimDuration::Nanos(500);
  EXPECT_EQ(u.ns(), 1500);
  EXPECT_EQ((u - t).ns(), 500);
  EXPECT_LT(t, u);
  SimDuration scaled = SimDuration::Micros(10) * 2.5;
  EXPECT_EQ(scaled.ns(), 25'000);
}

TEST(EventLoop, AdvanceByMovesClock) {
  EventLoop loop;
  EXPECT_EQ(loop.Now().ns(), 0);
  loop.AdvanceBy(SimDuration::Millis(5));
  EXPECT_DOUBLE_EQ(loop.Now().ToMillis(), 5.0);
}

TEST(EventLoop, PostedEventsRunInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Post(SimDuration::Millis(10), [&] { order.push_back(2); });
  loop.Post(SimDuration::Millis(5), [&] { order.push_back(1); });
  loop.Post(SimDuration::Millis(20), [&] { order.push_back(3); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.Now().ToMillis(), 20.0);
}

TEST(EventLoop, SameInstantIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Post(SimDuration::Millis(1), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, EventsCanPostEvents) {
  EventLoop loop;
  int fired = 0;
  loop.Post(SimDuration::Millis(1), [&] {
    ++fired;
    loop.Post(SimDuration::Millis(1), [&] { ++fired; });
  });
  EXPECT_EQ(loop.Run(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.Post(SimDuration::Millis(5), [&] { ++fired; });
  loop.Post(SimDuration::Millis(50), [&] { ++fired; });
  loop.RunUntil(SimTime(SimDuration::Millis(10).ns()));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.Now().ToMillis(), 10.0);
  EXPECT_TRUE(loop.HasPendingEvents());
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.AdvanceBy(SimDuration::Millis(3));
  bool fired = false;
  loop.Post(SimDuration::Millis(-10), [&] { fired = true; });
  loop.Run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(loop.Now().ToMillis(), 3.0);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, BoundsRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    std::int64_t v = r.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, GaussianIsRoughlyCentred) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    sum += r.NextGaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / 10000.0, 10.0, 0.1);
}

TEST(Series, TableStoresRows) {
  SeriesTable t("test", {"x", "y"});
  t.AddRow({1, 2});
  t.AddRow({3, 4});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Column(1), (std::vector<double>{2, 4}));
}

TEST(Series, RunningStat) {
  RunningStat s;
  for (double x : {2.0, 4.0, 6.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(CostModel, DefaultAnchorsSane) {
  const CostModel& c = DefaultCostModel();
  // Second-fork Fig. 6 anchor: 4096 MiB ~= 1 Mi pages -> ~65 ms + fixed.
  double fork2_ms =
      (c.proc_fork_fixed + SimDuration::Nanos(c.proc_fork_pte_copy.ns() * (1 << 20))).ToMillis();
  EXPECT_NEAR(fork2_ms, 65.2, 5.0);
  // Unikraft KFX reset anchor: ~125 us for 3 dirty pages.
  double reset_us = (c.clone_reset_fixed + c.clone_reset_per_page * 3.0).ToMicros();
  EXPECT_NEAR(reset_us, 125.0, 15.0);
}

}  // namespace
}  // namespace nephele
