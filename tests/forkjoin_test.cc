// Tests for the fork-join data-parallel app: fork + COW-shared dataset +
// IDC message queue + semaphore working together.

#include <gtest/gtest.h>

#include "src/apps/forkjoin_app.h"
#include "src/guest/guest_manager.h"

namespace nephele {
namespace {

class ForkJoinTest : public ::testing::Test {
 protected:
  ForkJoinTest() : system_(SmallSystem()), guests_(system_) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  Result<DomId> Launch(ForkJoinConfig fj_cfg, std::uint64_t* out_total, unsigned* out_workers) {
    DomainConfig cfg;
    cfg.name = "forkjoin";
    cfg.memory_mb = 8;
    cfg.max_clones = fj_cfg.workers + 1;
    cfg.with_vif = false;
    auto app = std::make_unique<ForkJoinApp>(fj_cfg);
    app->set_on_done([out_total, out_workers](std::uint64_t total, unsigned workers) {
      *out_total = total;
      *out_workers = workers;
    });
    auto dom = guests_.Launch(cfg, std::move(app));
    system_.Settle();
    return dom;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(ForkJoinTest, FourWorkersComputeCorrectSum) {
  std::uint64_t total = 0;
  unsigned workers = 0;
  auto dom = Launch(ForkJoinConfig{.dataset_kb = 128, .workers = 4}, &total, &workers);
  ASSERT_TRUE(dom.ok());
  auto* app = dynamic_cast<ForkJoinApp*>(guests_.AppOf(*dom));
  ASSERT_NE(app, nullptr);
  EXPECT_TRUE(app->done());
  EXPECT_EQ(workers, 4u);
  EXPECT_EQ(total, app->ExpectedSum());
}

TEST_F(ForkJoinTest, SingleWorkerDegenerateCase) {
  std::uint64_t total = 0;
  unsigned workers = 0;
  auto dom = Launch(ForkJoinConfig{.dataset_kb = 16, .workers = 1}, &total, &workers);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(workers, 1u);
  EXPECT_EQ(total, dynamic_cast<ForkJoinApp*>(guests_.AppOf(*dom))->ExpectedSum());
}

TEST_F(ForkJoinTest, UnevenShardsCovered) {
  // 100 KiB over 7 workers: the last shard is short.
  std::uint64_t total = 0;
  unsigned workers = 0;
  auto dom = Launch(ForkJoinConfig{.dataset_kb = 100, .workers = 7}, &total, &workers);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(workers, 7u);
  EXPECT_EQ(total, dynamic_cast<ForkJoinApp*>(guests_.AppOf(*dom))->ExpectedSum());
}

TEST_F(ForkJoinTest, WorkersExitAfterReporting) {
  std::uint64_t total = 0;
  unsigned workers = 0;
  auto dom = Launch(ForkJoinConfig{.dataset_kb = 32, .workers = 3}, &total, &workers);
  ASSERT_TRUE(dom.ok());
  // Only the parent remains; the fork+exit children destroyed themselves.
  EXPECT_EQ(guests_.NumGuests(), 1u);
  EXPECT_TRUE(guests_.Alive(*dom));
}

TEST_F(ForkJoinTest, DatasetStaysSharedUntilWritten) {
  std::uint64_t total = 0;
  unsigned workers = 0;
  std::size_t free_before = system_.hypervisor().FreePoolFrames();
  auto dom = Launch(ForkJoinConfig{.dataset_kb = 256, .workers = 4}, &total, &workers);
  ASSERT_TRUE(dom.ok());
  // Workers only READ the dataset: no COW copies of its 64 pages were made,
  // and all clone memory was returned at exit.
  std::size_t used = free_before - system_.hypervisor().FreePoolFrames();
  GuestMemoryLayout layout;
  (void)layout;
  // Parent footprint only (2 MiB guest pages + PTs + shared leftovers).
  EXPECT_LT(used * kPageSize, 10 * kMiB);
  EXPECT_EQ(total, dynamic_cast<ForkJoinApp*>(guests_.AppOf(*dom))->ExpectedSum());
}

}  // namespace
}  // namespace nephele
