// Error-path unit tests for the transactional clone engine: one test per
// stage, asserting the exact injected Status code surfaces to the caller,
// the precise metric counters (clone/rolled_back, fault/injected,
// clone/clones_total), and that the rollback left no trace — pool frames at
// the pre-clone value, parent resumable and re-clonable.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/xenstore/path.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

class CloneRollbackTest : public ::testing::Test {
 protected:
  CloneRollbackTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 64 * 1024;
    return cfg;
  }

  DomId BootParent(bool with_devices = false) {
    DomainConfig cfg;
    cfg.name = "parent";
    cfg.memory_mb = 4;
    cfg.max_clones = 32;
    cfg.with_vif = true;
    cfg.with_p9fs = with_devices;
    cfg.with_vbd = with_devices;
    cfg.vbd_size_mb = 1;
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok()) << dom.status().ToString();
    system_.Settle();
    return *dom;
  }

  Mfn StartInfoMfn(DomId dom) {
    const Domain* d = system_.hypervisor().FindDomain(dom);
    return d->p2m[d->start_info_gfn].mfn;
  }

  std::uint64_t RolledBack() {
    return system_.metrics().GetCounter("clone/rolled_back").value();
  }
  std::uint64_t Injected() { return system_.metrics().GetCounter("fault/injected").value(); }
  std::uint64_t ClonesTotal() {
    return system_.metrics().GetCounter("clone/clones_total").value();
  }

  // Arms `point` to fail the first stage-1 attempt, checks the full rollback
  // contract, then proves an un-faulted clone still works.
  void ExpectStage1Rollback(const std::string& point) {
    SCOPED_TRACE(point);
    DomId parent = BootParent();
    const Domain* p = system_.hypervisor().FindDomain(parent);
    const std::size_t free_before = system_.hypervisor().FreePoolFrames();
    const std::size_t domains_before = system_.hypervisor().DomainIds().size();
    const bool data_writable_before = p->p2m[310].writable;

    ASSERT_TRUE(system_.fault_injector()
                    .Arm(point, FaultSpec::NthHit(1, StatusCode::kAborted, "boom"))
                    .ok());
    auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
    system_.Settle();

    // The injected code surfaces verbatim.
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status().ToString();

    // Exact counters: one injection, one rollback, zero clones.
    EXPECT_EQ(Injected(), 1u);
    EXPECT_EQ(RolledBack(), 1u);
    EXPECT_EQ(ClonesTotal(), 0u);

    // No trace: frames returned, no extra domain, parent untouched and
    // running.
    EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
    EXPECT_EQ(system_.hypervisor().DomainIds().size(), domains_before);
    EXPECT_EQ(p->state, DomainState::kRunning);
    EXPECT_FALSE(p->blocked_in_clone);
    EXPECT_TRUE(p->children.empty());
    EXPECT_EQ(p->clones_created, 0u);
    EXPECT_EQ(p->p2m[310].writable, data_writable_before)
        << "parent pte not restored by rollback";

    // The engine stays usable: disarm and clone for real.
    system_.fault_injector().DisarmAll();
    auto ok = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
    system_.Settle();
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ClonesTotal(), 1u);
    EXPECT_EQ(RolledBack(), 1u);  // unchanged by the successful clone
  }

  // Arms `point` to fail the second stage, checks the abort contract.
  void ExpectStage2Abort(const std::string& point, bool with_devices) {
    SCOPED_TRACE(point);
    DomId parent = BootParent(with_devices);
    const std::size_t free_before = system_.hypervisor().FreePoolFrames();
    const std::size_t domains_before = system_.hypervisor().DomainIds().size();

    ASSERT_TRUE(system_.fault_injector()
                    .Arm(point, FaultSpec::NthHit(1, StatusCode::kUnavailable, "boom"))
                    .ok());
    auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
    ASSERT_TRUE(r.ok()) << "stage 1 must succeed; the fault is in stage 2";
    DomId child = (*r)[0];
    system_.Settle();

    // The child was destroyed and its Xenstore subtree removed.
    EXPECT_EQ(system_.hypervisor().FindDomain(child), nullptr);
    EXPECT_FALSE(system_.xenstore().DomainKnown(child));
    EXPECT_FALSE(system_.xenstore().Read(XsDomainPath(child) + "/name").ok());

    // Pool back to the pre-clone value (child private pages, page tables and
    // the shared references all returned or released).
    EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
    EXPECT_EQ(system_.hypervisor().DomainIds().size(), domains_before);

    // The parent is resumable: unblocked, running, and re-clonable.
    const Domain* p = system_.hypervisor().FindDomain(parent);
    EXPECT_FALSE(p->blocked_in_clone);
    EXPECT_EQ(p->state, DomainState::kRunning);
    EXPECT_TRUE(p->children.empty());

    EXPECT_GE(Injected(), 1u);
    EXPECT_EQ(RolledBack(), 1u);
    EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_aborted").value(), 1u);
    EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_completed").value(), 0u);

    system_.fault_injector().DisarmAll();
    auto ok = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
    system_.Settle();
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(system_.hypervisor().FindDomain(parent)->children.size(), 1u);
  }

  NepheleSystem system_;
};

// --- Stage-1 rollback, one test per stage. ---

TEST_F(CloneRollbackTest, CreateDomainStage) {
  ExpectStage1Rollback("clone/stage1/create_domain");
}

TEST_F(CloneRollbackTest, MemoryStage) { ExpectStage1Rollback("clone/stage1/memory"); }

TEST_F(CloneRollbackTest, ShareStage) { ExpectStage1Rollback("clone/stage1/share"); }

TEST_F(CloneRollbackTest, PageTableStage) {
  ExpectStage1Rollback("clone/stage1/page_tables");
}

TEST_F(CloneRollbackTest, GrantStage) { ExpectStage1Rollback("clone/stage1/grants"); }

TEST_F(CloneRollbackTest, EvtchnStage) { ExpectStage1Rollback("clone/stage1/evtchns"); }

// Frame-pool exhaustion inside CloneMemory's private-page allocation.
TEST_F(CloneRollbackTest, FrameAllocDuringCloneMemory) {
  DomId parent = BootParent();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();
  // Skip the boot-time allocations: arm for the first alloc of the clone.
  ASSERT_TRUE(system_.fault_injector()
                  .Arm("hypervisor/frame_alloc", FaultSpec::NthHit(1))
                  .ok());
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
  system_.Settle();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(RolledBack(), 1u);
  EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
  EXPECT_FALSE(system_.hypervisor().FindDomain(parent)->blocked_in_clone);
}

// A fault on the second child of a batch unwinds the first child too: the
// batch is all-or-nothing.
TEST_F(CloneRollbackTest, BatchIsAllOrNothing) {
  DomId parent = BootParent();
  const std::size_t free_before = system_.hypervisor().FreePoolFrames();
  const std::size_t domains_before = system_.hypervisor().DomainIds().size();
  ASSERT_TRUE(system_.fault_injector()
                  .Arm("clone/stage1/create_domain",
                       FaultSpec::NthHit(2, StatusCode::kAborted, "second child"))
                  .ok());
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 2});
  system_.Settle();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_EQ(RolledBack(), 1u) << "one rollback event per failed batch";
  EXPECT_EQ(ClonesTotal(), 0u);
  EXPECT_EQ(system_.hypervisor().DomainIds().size(), domains_before);
  EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
  const Domain* p = system_.hypervisor().FindDomain(parent);
  EXPECT_TRUE(p->children.empty());
  EXPECT_EQ(p->clones_created, 0u);
  EXPECT_FALSE(p->blocked_in_clone);
  EXPECT_EQ(p->state, DomainState::kRunning);
}

// --- Stage-2 aborts. ---

TEST_F(CloneRollbackTest, XenclonedStage2Fault) {
  ExpectStage2Abort("xencloned/stage2", /*with_devices=*/false);
}

TEST_F(CloneRollbackTest, XsCloneFault) {
  ExpectStage2Abort("xenstore/xs_clone", /*with_devices=*/false);
}

TEST_F(CloneRollbackTest, ConsoleCloneFault) {
  ExpectStage2Abort("devices/console_clone", /*with_devices=*/false);
}

TEST_F(CloneRollbackTest, NetCloneFault) {
  ExpectStage2Abort("devices/net_clone", /*with_devices=*/false);
}

TEST_F(CloneRollbackTest, P9CloneFault) {
  ExpectStage2Abort("devices/p9_clone", /*with_devices=*/true);
}

TEST_F(CloneRollbackTest, VbdCloneFault) {
  ExpectStage2Abort("devices/vbd_clone", /*with_devices=*/true);
}

// A stage-2 abort of one child of a batch must not wedge the others or the
// parent: the aborted child retires its outstanding slot like a completion.
TEST_F(CloneRollbackTest, PartialBatchStage2Abort) {
  DomId parent = BootParent();
  ASSERT_TRUE(system_.fault_injector()
                  .Arm("xencloned/stage2", FaultSpec::NthHit(2))
                  .ok());
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 2});
  ASSERT_TRUE(r.ok());
  system_.Settle();

  const Domain* p = system_.hypervisor().FindDomain(parent);
  EXPECT_EQ(p->state, DomainState::kRunning) << "parent must resume despite one abort";
  EXPECT_FALSE(p->blocked_in_clone);
  ASSERT_EQ(p->children.size(), 1u) << "one child survives, one was aborted";
  // Exactly one of the two stage-1 children made it through stage 2; the
  // survivor is the one the parent still lists.
  const bool first_alive = system_.hypervisor().FindDomain((*r)[0]) != nullptr;
  const bool second_alive = system_.hypervisor().FindDomain((*r)[1]) != nullptr;
  EXPECT_NE(first_alive, second_alive);
  EXPECT_EQ(p->children[0], first_alive ? (*r)[0] : (*r)[1]);
  EXPECT_EQ(RolledBack(), 1u);
  EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_completed").value(), 1u);
  EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_aborted").value(), 1u);
}

// --- CloneReset under fault. ---

TEST_F(CloneRollbackTest, CloneResetFaultLeavesDirtyListConsistent) {
  DomId parent = BootParent();
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
  ASSERT_TRUE(r.ok());
  system_.Settle();
  DomId child = (*r)[0];

  // Dirty two pages on the child.
  std::uint8_t b = 0x5a;
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(child, 310, 0, &b, 1).ok());
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(child, 311, 0, &b, 1).ok());
  const Domain* c = system_.hypervisor().FindDomain(child);
  ASSERT_EQ(c->dirty_since_clone.size(), 2u);

  ASSERT_TRUE(system_.fault_injector()
                  .Arm("clone/reset", FaultSpec::NthHit(1, StatusCode::kUnavailable, "boom"))
                  .ok());
  auto reset = system_.clone_engine().CloneReset(kDom0, child);
  ASSERT_FALSE(reset.ok());
  EXPECT_EQ(reset.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(c->dirty_since_clone.size(), 2u) << "failed reset must not lose dirty entries";

  // Disarmed retry restores both pages.
  system_.fault_injector().DisarmAll();
  auto retry = system_.clone_engine().CloneReset(kDom0, child);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 2u);
  EXPECT_TRUE(c->dirty_since_clone.empty());
}

// Regression: a CloneReset issued after a fault-aborted clone of the same
// parent. The abort path (CloneAborted + hv destroy) must leave frame
// refcounts, the engine's pending-slot table and the rollback/abort counters
// in a state where the surviving child resets cleanly and the parent can
// clone again.
TEST_F(CloneRollbackTest, CloneResetAfterAbortedCloneStaysConsistent) {
  DomId parent = BootParent();
  ASSERT_TRUE(system_.fault_injector()
                  .Arm("xencloned/stage2", FaultSpec::NthHit(1))
                  .ok());
  auto r = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 2});
  ASSERT_TRUE(r.ok());
  system_.Settle();
  system_.fault_injector().DisarmAll();

  // First child aborted mid-stage-2, second survived.
  ASSERT_EQ(system_.hypervisor().FindDomain((*r)[0]), nullptr);
  const DomId child = (*r)[1];
  ASSERT_NE(system_.hypervisor().FindDomain(child), nullptr);
  EXPECT_EQ(RolledBack(), 1u);
  EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_aborted").value(), 1u);
  ExpectFrameConsistency(system_);

  // Dirty the survivor, then reset it. The abort must not have corrupted the
  // shared-frame refcounts the reset re-shares against.
  std::uint8_t b = 0x77;
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(child, 310, 0, &b, 1).ok());
  ASSERT_TRUE(system_.hypervisor().WriteGuestPage(child, 311, 0, &b, 1).ok());
  auto reset = system_.clone_engine().CloneReset(kDom0, child);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  EXPECT_EQ(*reset, 2u);
  EXPECT_TRUE(system_.hypervisor().FindDomain(child)->dirty_since_clone.empty());
  EXPECT_EQ(system_.metrics().GetCounter("clone/reset/count").value(), 1u);
  ExpectFrameConsistency(system_);

  // The aborted child's pending slot was retired: the parent is unblocked
  // and a fresh batch goes through end to end.
  const Domain* p = system_.hypervisor().FindDomain(parent);
  EXPECT_FALSE(p->blocked_in_clone);
  EXPECT_EQ(p->state, DomainState::kRunning);
  auto again = system_.clone_engine().Clone({parent, parent, StartInfoMfn(parent), 1});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  system_.Settle();
  EXPECT_NE(system_.hypervisor().FindDomain((*again)[0]), nullptr);
  EXPECT_EQ(system_.metrics().GetCounter("xencloned/clones_completed").value(), 2u);
  EXPECT_EQ(RolledBack(), 1u) << "the clean batch must not add rollbacks";
  ExpectFrameConsistency(system_);
}

// --- Toolstack boot unwinding (the FailBoot path). ---

TEST_F(CloneRollbackTest, FailedBootLeavesNoTrace) {
  // Fail the nth frame allocation for several n, walking the fault through
  // the boot sequence (domain creation, physmap population, special pages,
  // device rings). Every failed boot must unwind completely; boots that
  // survive are torn down and still must return to the starting state.
  DomainConfig cfg;
  cfg.memory_mb = 4;
  cfg.max_clones = 4;
  cfg.with_p9fs = true;
  cfg.with_vbd = true;
  unsigned boots_failed = 0;
  for (unsigned nth : {1u, 10u, 100u, 300u, 600u}) {
    SCOPED_TRACE(nth);
    const std::size_t free_before = system_.hypervisor().FreePoolFrames();
    const std::size_t domains_before = system_.hypervisor().DomainIds().size();
    ASSERT_TRUE(system_.fault_injector()
                    .Arm("hypervisor/frame_alloc", FaultSpec::NthHit(nth))
                    .ok());
    cfg.name = "doomed" + std::to_string(nth);
    auto dom = system_.toolstack().CreateDomain(cfg);
    system_.Settle();
    system_.fault_injector().DisarmAll();
    if (dom.ok()) {
      ASSERT_TRUE(system_.toolstack().DestroyDomain(*dom).ok());
      system_.Settle();
    } else {
      ++boots_failed;
    }
    EXPECT_EQ(system_.hypervisor().FreePoolFrames(), free_before);
    EXPECT_EQ(system_.hypervisor().DomainIds().size(), domains_before);
  }
  EXPECT_GE(boots_failed, 1u) << "no nth-hit value made the boot fail";

  // And boot still works afterwards.
  cfg.name = "phoenix";
  auto ok = system_.toolstack().CreateDomain(cfg);
  system_.Settle();
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace nephele
