#include <gtest/gtest.h>

#include "src/core/idc.h"
#include "src/core/system.h"
#include "src/guest/ipc.h"
#include "src/sim/rng.h"

namespace nephele {
namespace {

class IdcTest : public ::testing::Test {
 protected:
  IdcTest() : system_(SmallSystem()) {}

  static SystemConfig SmallSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 128 * 1024;
    return cfg;
  }

  DomId BootParent() {
    DomainConfig cfg;
    cfg.name = "idc-parent";
    cfg.max_clones = 16;
    cfg.with_vif = false;
    auto dom = system_.toolstack().CreateDomain(cfg);
    EXPECT_TRUE(dom.ok());
    return *dom;
  }

  DomId CloneOnce(DomId parent) {
    const Domain* p = system_.hypervisor().FindDomain(parent);
    auto children =
        system_.clone_engine().Clone({parent, parent, p->p2m[p->start_info_gfn].mfn, 1});
    EXPECT_TRUE(children.ok()) << children.status().ToString();
    system_.Settle();
    return children->front();
  }

  NepheleSystem system_;
};

TEST_F(IdcTest, RegionReadWriteByOwner) {
  DomId parent = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 2);
  ASSERT_TRUE(region.ok());
  const char msg[] = "shared!";
  ASSERT_TRUE(region->Write(parent, 100, msg, sizeof(msg)).ok());
  char out[8] = {};
  ASSERT_TRUE(region->Read(parent, 100, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, "shared!");
}

TEST_F(IdcTest, RegionSpansPages) {
  DomId parent = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 2);
  ASSERT_TRUE(region.ok());
  std::vector<std::uint8_t> data(kPageSize, 0x7E);
  ASSERT_TRUE(region->Write(parent, kPageSize / 2, data.data(), data.size()).ok());
  std::uint8_t b = 0;
  ASSERT_TRUE(region->Read(parent, kPageSize + 10, &b, 1).ok());
  EXPECT_EQ(b, 0x7E);
  EXPECT_EQ(region->Write(parent, 2 * kPageSize - 1, data.data(), 2).code(),
            StatusCode::kOutOfRange);
}

TEST_F(IdcTest, RegionIsTrulySharedWithClone) {
  DomId parent = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 1);
  ASSERT_TRUE(region.ok());
  DomId child = CloneOnce(parent);

  // Child writes, parent reads — IDC pages are NOT COW (invariant 8).
  const char msg[] = "from-child";
  ASSERT_TRUE(region->Write(child, 0, msg, sizeof(msg)).ok());
  char out[16] = {};
  ASSERT_TRUE(region->Read(parent, 0, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, "from-child");

  // And the other way.
  const char reply[] = "from-parent";
  ASSERT_TRUE(region->Write(parent, 64, reply, sizeof(reply)).ok());
  ASSERT_TRUE(region->Read(child, 64, out, sizeof(reply)).ok());
  EXPECT_STREQ(out, "from-parent");
}

TEST_F(IdcTest, RegionRejectsStrangers) {
  DomId parent = BootParent();
  DomId stranger = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 1);
  ASSERT_TRUE(region.ok());
  char b = 0;
  EXPECT_EQ(region->Write(stranger, 0, &b, 1).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(region->Read(stranger, 0, &b, 1).code(), StatusCode::kPermissionDenied);
}

TEST_F(IdcTest, RegionSharedOwnershipMovesToDomCow) {
  DomId parent = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 1);
  ASSERT_TRUE(region.ok());
  const Domain* p = system_.hypervisor().FindDomain(parent);
  Mfn mfn = p->p2m[region->first_gfn()].mfn;
  EXPECT_EQ(system_.hypervisor().frames().OwnerOf(mfn), parent);
  (void)CloneOnce(parent);
  EXPECT_EQ(system_.hypervisor().frames().OwnerOf(mfn), kDomCow);
  // Still writable by the parent (no COW fault).
  EXPECT_TRUE(system_.hypervisor().FindDomain(parent)->p2m[region->first_gfn()].writable);
}

TEST_F(IdcTest, GrandchildInheritsAccess) {
  DomId parent = BootParent();
  auto region = IdcRegion::Create(system_.hypervisor(), parent, 1);
  ASSERT_TRUE(region.ok());
  DomId child = CloneOnce(parent);
  DomId grandchild = CloneOnce(child);
  const char msg[] = "gc";
  ASSERT_TRUE(region->Write(grandchild, 0, msg, sizeof(msg)).ok());
  char out[4] = {};
  ASSERT_TRUE(region->Read(parent, 0, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, "gc");
}

TEST_F(IdcTest, ChannelBindsCloneAutomatically) {
  DomId parent = BootParent();
  auto channel = IdcChannel::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(channel.ok());
  // Before the clone, the port is an unbound DOMID_CHILD endpoint.
  const Domain* p = system_.hypervisor().FindDomain(parent);
  EXPECT_EQ(p->evtchns.entry(channel->port()).state, EvtchnState::kUnbound);
  EXPECT_EQ(p->evtchns.entry(channel->port()).remote_dom, kDomChild);

  DomId child = CloneOnce(parent);
  // After the clone both ends are connected (invariant 8).
  const Domain* c = system_.hypervisor().FindDomain(child);
  EXPECT_EQ(c->evtchns.entry(channel->port()).state, EvtchnState::kInterdomain);
  EXPECT_EQ(c->evtchns.entry(channel->port()).remote_dom, parent);
  EXPECT_EQ(system_.hypervisor().FindDomain(parent)->evtchns.entry(channel->port()).remote_dom,
            child);
}

TEST_F(IdcTest, ChannelNotifyReachesPeer) {
  DomId parent = BootParent();
  auto channel = IdcChannel::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(channel.ok());
  DomId child = CloneOnce(parent);
  int parent_notified = 0;
  system_.hypervisor().SetEvtchnHandler(parent, [&](EvtchnPort) { ++parent_notified; });
  ASSERT_TRUE(channel->Notify(child).ok());
  system_.Settle();
  EXPECT_EQ(parent_notified, 1);
}

TEST_F(IdcTest, PipeWriteReadAcrossClone) {
  DomId parent = BootParent();
  auto pipe = IdcPipe::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(pipe.ok());
  DomId child = CloneOnce(parent);

  auto wrote = (*pipe)->Write(parent, {1, 2, 3, 4});
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 4u);
  EXPECT_EQ(*(*pipe)->BytesAvailable(child), 4u);
  auto read = (*pipe)->Read(child, 10);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(*(*pipe)->BytesAvailable(child), 0u);
}

TEST_F(IdcTest, PipeIsByteStreamWithWrapAround) {
  DomId parent = BootParent();
  auto pipe = IdcPipe::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(pipe.ok());
  std::size_t cap = (*pipe)->capacity();
  std::vector<std::uint8_t> big(cap, 0xEE);
  // Fill completely, drain, then fill again across the wrap point.
  EXPECT_EQ(*(*pipe)->Write(parent, big), cap);
  EXPECT_EQ(*(*pipe)->Write(parent, {1}), 0u);  // full
  EXPECT_EQ((*pipe)->Read(parent, cap)->size(), cap);
  std::vector<std::uint8_t> wrap{7, 8, 9};
  EXPECT_EQ(*(*pipe)->Write(parent, wrap), 3u);
  EXPECT_EQ(*(*pipe)->Read(parent, 3), wrap);
}

TEST_F(IdcTest, PipePartialWriteWhenNearlyFull) {
  DomId parent = BootParent();
  auto pipe = IdcPipe::Create(system_.hypervisor(), parent);
  std::size_t cap = (*pipe)->capacity();
  std::vector<std::uint8_t> almost(cap - 2, 1);
  EXPECT_EQ(*(*pipe)->Write(parent, almost), cap - 2);
  EXPECT_EQ(*(*pipe)->Write(parent, {2, 2, 2, 2}), 2u);  // only 2 fit
}

TEST_F(IdcTest, SocketPairBothDirections) {
  DomId parent = BootParent();
  auto pair = IdcSocketPair::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(pair.ok());
  DomId child = CloneOnce(parent);

  // Parent (endpoint 0) -> child (endpoint 1).
  ASSERT_TRUE((*pair)->Send(parent, 0, {10, 11}).ok());
  auto at_child = (*pair)->Recv(child, 1, 16);
  ASSERT_TRUE(at_child.ok());
  EXPECT_EQ(*at_child, (std::vector<std::uint8_t>{10, 11}));

  // Child -> parent.
  ASSERT_TRUE((*pair)->Send(child, 1, {42}).ok());
  auto at_parent = (*pair)->Recv(parent, 0, 16);
  ASSERT_TRUE(at_parent.ok());
  EXPECT_EQ(*at_parent, (std::vector<std::uint8_t>{42}));
}

TEST_F(IdcTest, SocketPairStrangerRejected) {
  DomId parent = BootParent();
  DomId stranger = BootParent();
  auto pair = IdcSocketPair::Create(system_.hypervisor(), parent);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ((*pair)->Send(stranger, 0, {1}).status().code(), StatusCode::kPermissionDenied);
}

// Property: pipe preserves arbitrary interleavings of writes/reads — the
// stream read equals the stream written (FIFO, no loss/duplication).
class PipeStreamProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipeStreamProperty, RandomInterleaving) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(scfg);
  DomainConfig dcfg;
  dcfg.name = "p";
  dcfg.max_clones = 2;
  dcfg.with_vif = false;
  auto parent = system.toolstack().CreateDomain(dcfg);
  ASSERT_TRUE(parent.ok());
  auto pipe = IdcPipe::Create(system.hypervisor(), *parent);
  ASSERT_TRUE(pipe.ok());
  const Domain* p = system.hypervisor().FindDomain(*parent);
  auto children = system.clone_engine().Clone({*parent, *parent,
                                              p->p2m[p->start_info_gfn].mfn, 1});
  ASSERT_TRUE(children.ok());
  system.Settle();
  DomId child = children->front();

  Rng rng(GetParam());
  std::vector<std::uint8_t> sent, received;
  std::uint8_t next = 0;
  for (int step = 0; step < 500; ++step) {
    if (rng.NextBool(0.5)) {
      std::vector<std::uint8_t> chunk(1 + rng.NextBelow(64));
      for (auto& b : chunk) {
        b = next++;
      }
      auto n = (*pipe)->Write(*parent, chunk);
      ASSERT_TRUE(n.ok());
      sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(*n));
      next = static_cast<std::uint8_t>(sent.empty() ? 0 : sent.back() + 1);
    } else {
      auto chunk = (*pipe)->Read(child, 1 + rng.NextBelow(96));
      ASSERT_TRUE(chunk.ok());
      received.insert(received.end(), chunk->begin(), chunk->end());
    }
  }
  auto rest = (*pipe)->Read(child, (*pipe)->capacity());
  ASSERT_TRUE(rest.ok());
  received.insert(received.end(), rest->begin(), rest->end());
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeStreamProperty, ::testing::Values(3, 7, 11, 19, 23));

}  // namespace
}  // namespace nephele
