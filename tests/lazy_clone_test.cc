// Post-copy (lazy) cloning suite (ctest label `lazy`): a fully-streamed lazy
// clone must be observationally identical to an eager one — same guest
// memory, same p2m topology and writability, same pool level — at every
// clone-worker count; the stream and demand-fault counters must move by
// exactly the pages they claim; a half-streamed child must tear down without
// leaking a frame in either destruction order; the invariant oracle must
// flag corrupted partially-mapped state; the scheduler must finish a child's
// stream before parking it; and the stream_stall alarm must raise while the
// backlog never drains and clear once it does.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/hypervisor/invariants.h"
#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/scheduler.h"
#include "tests/frame_invariants.h"

namespace nephele {
namespace {

constexpr std::uint8_t kStamp[16] = {0x4c, 0x41, 0x5a, 0x59, 9, 8, 7, 6,
                                     5,    4,    3,    2,    1, 0, 1, 2};

SystemConfig LazySystem(unsigned workers, bool manual_stream) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  cfg.clone_worker_threads = workers;
  if (manual_stream) {
    cfg.lazy_clone.auto_stream = false;
  }
  return cfg;
}

DomainConfig GuestConfig() {
  DomainConfig cfg;
  cfg.name = "lazy";
  cfg.memory_mb = 4;
  cfg.max_clones = 128;
  cfg.with_vif = true;
  return cfg;
}

Gfn FirstDataGfn() { return static_cast<Gfn>(GuestConfig().image_text_pages); }

// Boot a parent and stamp a few data pages so clones carry real content.
DomId BootStampedParent(NepheleSystem& sys) {
  auto parent = sys.toolstack().CreateDomain(GuestConfig());
  EXPECT_TRUE(parent.ok()) << parent.status().ToString();
  sys.Settle();
  for (Gfn i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        sys.hypervisor().WriteGuestPage(*parent, FirstDataGfn() + i, 0, kStamp, sizeof(kStamp))
            .ok());
  }
  return *parent;
}

Result<std::vector<DomId>> CloneBatch(NepheleSystem& sys, DomId parent, unsigned n, bool lazy) {
  const Domain* d = sys.hypervisor().FindDomain(parent);
  auto children = sys.clone_engine().Clone({parent, parent, d->p2m[d->start_info_gfn].mfn, n, lazy});
  sys.Settle();
  return children;
}

// FNV-1a over the observable machine state a guest could distinguish: family
// topology, per-gfn role/writability/presence and frame CONTENT, plus the
// pool level. Deliberately excludes raw mfn values, metrics and virtual
// time — lazy streaming spends different simulated work than an eager copy,
// but must land on the same machine.
std::uint64_t StateDigest(NepheleSystem& sys) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto add = [&h](const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
      h = (h ^ p[i]) * 0x100000001b3ull;
    }
  };
  auto add_val = [&add](auto v) { add(&v, sizeof(v)); };
  std::uint8_t page[kPageSize];
  for (DomId id : sys.hypervisor().DomainIds()) {
    const Domain* dom = sys.hypervisor().FindDomain(id);
    add_val(id);
    add_val(dom->parent);
    add_val(dom->family_root);
    for (Gfn gfn = 0; gfn < dom->p2m.size(); ++gfn) {
      const P2mEntry& e = dom->p2m[gfn];
      add_val(gfn);
      add_val(static_cast<int>(e.role));
      add_val(e.writable);
      add_val(e.mfn != kInvalidMfn);
      if (e.mfn != kInvalidMfn) {
        sys.hypervisor().frames().ReadBytes(e.mfn, 0, page, kPageSize);
        add(page, kPageSize);
      }
    }
  }
  add_val(sys.hypervisor().FreePoolFrames());
  return h;
}

// One workload at a given worker count: boot, stamp, clone a 4-batch (eager
// or lazy), fully stream every lazy child, then COW-write in the first
// child. Returns the end-state digest.
std::uint64_t RunWorkload(unsigned workers, bool lazy) {
  NepheleSystem sys(LazySystem(workers, /*manual_stream=*/lazy));
  const DomId parent = BootStampedParent(sys);
  auto children = CloneBatch(sys, parent, 4, lazy);
  EXPECT_TRUE(children.ok()) << children.status().ToString();
  if (lazy) {
    for (DomId c : *children) {
      EXPECT_GT(sys.clone_engine().PendingStreamPages(c), 0u)
          << "lazy child " << c << " came fully mapped";
      EXPECT_TRUE(sys.clone_engine().FinishStreaming(c).ok());
      EXPECT_FALSE(sys.clone_engine().IsStreaming(c));
    }
    sys.Settle();
  }
  EXPECT_TRUE(sys.hypervisor()
                  .WriteGuestPage(children->front(), FirstDataGfn(), 0, kStamp, sizeof(kStamp))
                  .ok());
  ExpectFrameConsistency(sys);
  EXPECT_EQ(CheckHypervisorInvariants(sys.hypervisor()), "");
  return StateDigest(sys);
}

// --- Digest equivalence: lazy ends where eager starts. ---

TEST(LazyCloneEquivalence, FullyStreamedLazyMatchesEagerAtEveryWorkerCount) {
  const std::uint64_t eager = RunWorkload(1, /*lazy=*/false);
  const std::uint64_t lazy = RunWorkload(1, /*lazy=*/true);
  EXPECT_EQ(lazy, eager) << "a fully-streamed lazy clone diverged from the eager machine";
  for (unsigned workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(RunWorkload(workers, /*lazy=*/false), eager);
    EXPECT_EQ(RunWorkload(workers, /*lazy=*/true), eager);
  }
}

// --- Exact counter accounting. ---

TEST(LazyCloneCounters, StreamedPagesAndDemandFaultsMoveByExactlyTheirPages) {
  NepheleSystem sys(LazySystem(1, /*manual_stream=*/true));
  MetricsRegistry& m = sys.metrics();
  const DomId parent = BootStampedParent(sys);

  const std::uint64_t base_streamed = m.CounterValue("clone/streamed_pages");
  const std::uint64_t base_faults = m.CounterValue("clone/lazy/demand_faults");
  const std::uint64_t base_deferred = m.CounterValue("clone/lazy/deferred_pages");

  auto children = CloneBatch(sys, parent, 1, /*lazy=*/true);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  const DomId child = children->front();

  const std::size_t deferred = sys.clone_engine().PendingStreamPages(child);
  ASSERT_GT(deferred, 3u);
  EXPECT_EQ(m.CounterValue("clone/lazy/clones"), 1u);
  EXPECT_EQ(m.CounterValue("clone/lazy/deferred_pages") - base_deferred, deferred);
  EXPECT_EQ(m.GaugeValue("clone/lazy_pending_pages"), static_cast<std::int64_t>(deferred));

  // Demand-fault exactly 3 distinct deferred pages.
  const Domain* cd = sys.hypervisor().FindDomain(child);
  ASSERT_NE(cd, nullptr);
  std::vector<Gfn> holes;
  for (Gfn gfn = 0; gfn < cd->p2m.size() && holes.size() < 3; ++gfn) {
    if (cd->p2m[gfn].mfn == kInvalidMfn) {
      holes.push_back(gfn);
    }
  }
  ASSERT_EQ(holes.size(), 3u);
  for (Gfn gfn : holes) {
    ASSERT_TRUE(sys.hypervisor().TouchGuestPages(child, gfn, 1).ok());
  }
  sys.Settle();
  EXPECT_EQ(m.CounterValue("clone/lazy/demand_faults") - base_faults, 3u);
  EXPECT_EQ(sys.clone_engine().PendingStreamPages(child), deferred - 3);

  // One pump batch streams exactly min(batch, pending) pages.
  const std::size_t batch = sys.config().lazy_clone.stream_batch_pages;
  const std::size_t pumped = sys.clone_engine().StreamPump(1);
  EXPECT_EQ(pumped, std::min(batch, deferred - 3));
  EXPECT_EQ(m.CounterValue("clone/streamed_pages") - base_streamed, pumped);

  // Finishing drains the rest; every deferred page is now accounted to
  // exactly one of the two paths.
  ASSERT_TRUE(sys.clone_engine().FinishStreaming(child).ok());
  EXPECT_FALSE(sys.clone_engine().IsStreaming(child));
  EXPECT_EQ(sys.clone_engine().PendingStreamPages(child), 0u);
  EXPECT_EQ(m.CounterValue("clone/streamed_pages") - base_streamed, deferred - 3);
  EXPECT_EQ(m.CounterValue("clone/lazy/demand_faults") - base_faults, 3u);
  EXPECT_EQ(m.GaugeValue("clone/lazy_pending_pages"), 0);
  EXPECT_GT(m.CounterValue("clone/lazy/stream_batches"), 0u);
  EXPECT_EQ(CheckHypervisorInvariants(sys.hypervisor()), "");
}

// --- Teardown of half-streamed children conserves frames. ---

TEST(LazyCloneTeardown, HalfStreamedChildLeaksNothingInEitherDestructionOrder) {
  NepheleSystem sys(LazySystem(1, /*manual_stream=*/true));
  const std::size_t boot_free = sys.hypervisor().FreePoolFrames();

  // Order 1: the child dies mid-stream (it abandons its own stream).
  {
    const DomId parent = BootStampedParent(sys);
    const std::size_t parent_free = sys.hypervisor().FreePoolFrames();
    auto children = CloneBatch(sys, parent, 1, /*lazy=*/true);
    ASSERT_TRUE(children.ok());
    const DomId child = children->front();
    ASSERT_GT(sys.clone_engine().StreamPump(1), 0u);
    ASSERT_TRUE(sys.clone_engine().IsStreaming(child)) << "child streamed out too fast";
    (void)sys.toolstack().DestroyDomain(child);
    if (sys.hypervisor().FindDomain(child) != nullptr) {
      ASSERT_TRUE(sys.hypervisor().DestroyDomain(child).ok());
    }
    sys.Settle();
    EXPECT_FALSE(sys.clone_engine().IsStreaming(child));
    EXPECT_EQ(sys.hypervisor().FreePoolFrames(), parent_free);
    ExpectFrameConsistency(sys);

    // Order 2: the parent dies mid-stream — the destroy hook must finish
    // the child's stream (it has no other source for its snapshot).
    auto second = CloneBatch(sys, parent, 1, /*lazy=*/true);
    ASSERT_TRUE(second.ok());
    const DomId orphan = second->front();
    ASSERT_TRUE(sys.clone_engine().IsStreaming(orphan));
    (void)sys.toolstack().DestroyDomain(parent);
    if (sys.hypervisor().FindDomain(parent) != nullptr) {
      ASSERT_TRUE(sys.hypervisor().DestroyDomain(parent).ok());
    }
    sys.Settle();
    EXPECT_FALSE(sys.clone_engine().IsStreaming(orphan));
    EXPECT_EQ(sys.clone_engine().PendingStreamPages(orphan), 0u);
    EXPECT_EQ(CheckHypervisorInvariants(sys.hypervisor()), "");
    // The orphan still reads its full clone-time snapshot.
    std::uint8_t got[sizeof(kStamp)] = {};
    ASSERT_TRUE(
        sys.hypervisor().ReadGuestPage(orphan, FirstDataGfn(), 0, got, sizeof(got)).ok());
    EXPECT_EQ(std::memcmp(got, kStamp, sizeof(kStamp)), 0);

    (void)sys.toolstack().DestroyDomain(orphan);
    if (sys.hypervisor().FindDomain(orphan) != nullptr) {
      ASSERT_TRUE(sys.hypervisor().DestroyDomain(orphan).ok());
    }
    sys.Settle();
  }
  EXPECT_EQ(sys.hypervisor().FreePoolFrames(), boot_free);
  ExpectFrameConsistency(sys);
}

// --- The oracle sees corrupted partially-mapped state. ---

TEST(LazyCloneInvariants, OracleFlagsWritableHoleAndLedgerDrift) {
  NepheleSystem sys(LazySystem(1, /*manual_stream=*/true));
  const DomId parent = BootStampedParent(sys);
  auto children = CloneBatch(sys, parent, 1, /*lazy=*/true);
  ASSERT_TRUE(children.ok());
  Domain* cd = sys.hypervisor().FindDomain(children->front());
  ASSERT_NE(cd, nullptr);
  ASSERT_EQ(CheckP2mInvariants(sys.hypervisor()), "");

  Gfn hole = kInvalidGfn;
  for (Gfn gfn = 0; gfn < cd->p2m.size(); ++gfn) {
    if (cd->p2m[gfn].mfn == kInvalidMfn) {
      hole = gfn;
      break;
    }
  }
  ASSERT_NE(hole, kInvalidGfn);

  // A writable not-present pte would let the guest scribble into a page the
  // stream has not delivered.
  cd->p2m[hole].writable = true;
  EXPECT_NE(CheckP2mInvariants(sys.hypervisor()).find("not-present but writable"),
            std::string::npos);
  cd->p2m[hole].writable = false;

  // A ledger that disagrees with the p2m is a stream the engine lost track
  // of (the latent pre-lazy invariant assumed every entry resolves).
  const std::size_t ledger = cd->lazy_deferred_pages;
  cd->lazy_deferred_pages = 0;
  EXPECT_NE(CheckP2mInvariants(sys.hypervisor()).find("ledger"), std::string::npos);
  cd->lazy_deferred_pages = ledger;
  EXPECT_EQ(CheckP2mInvariants(sys.hypervisor()), "");
}

// --- Scheduler: streams finish before a child parks. ---

TEST(LazySchedDispatch, ReleaseFinishesTheStreamBeforeParking) {
  SystemConfig cfg = LazySystem(1, /*manual_stream=*/true);
  cfg.sched.lazy_dispatch = true;
  NepheleSystem sys(cfg);
  CloneScheduler sched(sys);
  const DomId parent = BootStampedParent(sys);

  std::vector<DomId> granted;
  ASSERT_TRUE(sched
                  .Acquire({kDom0, parent, kInvalidMfn, 1},
                           [&granted](Result<DomId> r) {
                             ASSERT_TRUE(r.ok()) << r.status().ToString();
                             granted.push_back(*r);
                           })
                  .ok());
  sys.Settle();
  ASSERT_EQ(granted.size(), 1u);
  const DomId child = granted.front();
  ASSERT_TRUE(sys.clone_engine().IsStreaming(child))
      << "lazy_dispatch did not produce a streaming child";
  const std::size_t pending = sys.clone_engine().PendingStreamPages(child);

  auto outcome = sched.Release(child);
  sys.Settle();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->parked);
  EXPECT_FALSE(sys.clone_engine().IsStreaming(child))
      << "a parked child must never be half-mapped";
  EXPECT_EQ(sys.metrics().CounterValue("sched/lazy_stream_finishes"), 1u);
  EXPECT_EQ(sys.metrics().CounterValue("sched/lazy_streamed_pages"), pending);
  EXPECT_EQ(CheckHypervisorInvariants(sys.hypervisor()), "");

  sched.DrainAll();
  sys.Settle();
}

// --- The stream_stall alarm. ---

TEST(LazyStreamAlarm, StallRaisesWhileBacklogPersistsAndClearsWhenDrained) {
  SystemConfig cfg = LazySystem(1, /*manual_stream=*/true);
  cfg.tsdb.tick_interval = SimDuration::Millis(1);
  NepheleSystem sys(cfg);
  TsdbCollector tsdb(sys.metrics(), sys.loop(), sys.config().tsdb);
  AlarmEngine alarms(tsdb, sys.metrics());
  for (AlarmRule& rule : AlarmEngine::DefaultNepheleRules()) {
    alarms.AddRule(rule);
  }

  const DomId parent = BootStampedParent(sys);
  tsdb.Tick();  // a healthy sample: pending == 0
  EXPECT_EQ(alarms.StateOf("stream_stall"), AlarmState::kClear);

  auto children = CloneBatch(sys, parent, 1, /*lazy=*/true);
  ASSERT_TRUE(children.ok());
  ASSERT_GT(sys.clone_engine().PendingStreamPages(children->front()), 0u);

  // Manual mode with no pump: the backlog never drains. kMin over the
  // 4-tick window stays 0 until the healthy boot sample ages out, then two
  // consecutive over-ticks raise.
  for (int i = 0; i < 4; ++i) {
    tsdb.Tick();
    EXPECT_EQ(alarms.StateOf("stream_stall"), AlarmState::kClear)
        << "tick " << i << ": the healthy sample is still in the window";
  }
  tsdb.Tick();
  EXPECT_EQ(alarms.StateOf("stream_stall"), AlarmState::kRaised);
  EXPECT_EQ(sys.metrics().GaugeValue("alarm/stream_stall/state"), 1);

  // Draining the stream touches 0; kMin over the window follows immediately
  // and two under-ticks clear.
  ASSERT_TRUE(sys.clone_engine().FinishStreaming(children->front()).ok());
  tsdb.Tick();
  EXPECT_EQ(alarms.StateOf("stream_stall"), AlarmState::kRaised);
  tsdb.Tick();
  EXPECT_EQ(alarms.StateOf("stream_stall"), AlarmState::kClear);
}

}  // namespace
}  // namespace nephele
