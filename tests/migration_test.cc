// Tests for live migration between hosts (two independent NepheleSystems),
// including the Sec. 8 constraint that clone-family members cannot migrate
// (it would break the page-sharing potential).

#include <gtest/gtest.h>

#include "src/apps/redis_app.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"

namespace nephele {
namespace {

SystemConfig HostConfig() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 64 * 1024;
  return cfg;
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : source_(HostConfig()), target_(HostConfig()), src_guests_(source_),
        dst_guests_(target_) {}

  DomainConfig Guest(const std::string& name) {
    DomainConfig cfg;
    cfg.name = name;
    cfg.memory_mb = 4;
    cfg.max_clones = 8;
    return cfg;
  }

  NepheleSystem source_;
  NepheleSystem target_;
  GuestManager src_guests_;
  GuestManager dst_guests_;
};

TEST_F(MigrationTest, PageContentsSurviveMigration) {
  auto dom = src_guests_.Launch(Guest("mig"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(dom.ok());
  source_.Settle();
  GuestMemoryLayout layout = ComputeGuestLayout(Guest("mig"), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  const char payload[] = "travels-with-me";
  ASSERT_TRUE(source_.hypervisor().WriteGuestPage(*dom, gfn, 16, payload, sizeof(payload)).ok());

  auto new_dom = src_guests_.MigrateTo(dst_guests_, *dom);
  ASSERT_TRUE(new_dom.ok()) << new_dom.status().ToString();
  target_.Settle();

  // Source domain gone; target domain running with identical contents.
  EXPECT_EQ(source_.hypervisor().FindDomain(*dom), nullptr);
  EXPECT_FALSE(src_guests_.Alive(*dom));
  const Domain* d = target_.hypervisor().FindDomain(*new_dom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DomainState::kRunning);
  EXPECT_EQ(d->tot_pages(), 1024u);
  char out[sizeof(payload)] = {};
  ASSERT_TRUE(
      target_.hypervisor().ReadGuestPage(*new_dom, gfn, 16, out, sizeof(payload)).ok());
  EXPECT_STREQ(out, "travels-with-me");
}

TEST_F(MigrationTest, AppStateTravels) {
  DomainConfig cfg = Guest("redis-mig");
  cfg.memory_mb = 16;
  auto dom = src_guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  ASSERT_TRUE(dom.ok());
  source_.Settle();
  auto* redis = dynamic_cast<RedisApp*>(src_guests_.AppOf(*dom));
  ASSERT_TRUE(redis->Set(*src_guests_.ContextOf(*dom), "city", "rome").ok());

  auto new_dom = src_guests_.MigrateTo(dst_guests_, *dom);
  ASSERT_TRUE(new_dom.ok());
  target_.Settle();
  auto* migrated = dynamic_cast<RedisApp*>(dst_guests_.AppOf(*new_dom));
  ASSERT_NE(migrated, nullptr);
  EXPECT_EQ(*migrated->Get("city"), "rome");
}

TEST_F(MigrationTest, MigratedGuestStillServes) {
  auto dom = src_guests_.Launch(Guest("srv"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  auto new_dom = src_guests_.MigrateTo(dst_guests_, *dom);
  ASSERT_TRUE(new_dom.ok());
  target_.Settle();

  // Packets on the TARGET host reach the migrated guest.
  std::vector<Packet> uplink;
  target_.toolstack().default_switch()->set_uplink_sink(
      [&](const Packet& p) { uplink.push_back(p); });
  GuestDevices* gd = target_.toolstack().FindDevices(*new_dom);
  Packet probe;
  probe.proto = IpProto::kUdp;
  probe.src_ip = MakeIpv4(10, 8, 255, 1);
  probe.src_port = 777;
  probe.dst_ip = gd->net->ip();
  probe.dst_port = 7;  // the UDP binding migrated with the stack state
  target_.toolstack().default_switch()->InjectFromUplink(probe);
  target_.Settle();
  ASSERT_EQ(uplink.size(), 1u);
  EXPECT_EQ(uplink[0].dst_port, 777);  // the echo
}

TEST_F(MigrationTest, FamilyMembersRefuseToMigrate) {
  auto dom = src_guests_.Launch(Guest("fam"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  ASSERT_TRUE(src_guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  source_.Settle();
  DomId child = source_.hypervisor().FindDomain(*dom)->children.front();

  // Neither the parent (has children) nor the clone (has a parent) may move.
  EXPECT_EQ(src_guests_.MigrateTo(dst_guests_, *dom).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(src_guests_.MigrateTo(dst_guests_, child).status().code(),
            StatusCode::kFailedPrecondition);
  // Both still alive on the source.
  EXPECT_TRUE(src_guests_.Alive(*dom));
  EXPECT_TRUE(src_guests_.Alive(child));
}

TEST_F(MigrationTest, MigratedGuestCanCloneOnTarget) {
  auto dom = src_guests_.Launch(Guest("mover"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  auto new_dom = src_guests_.MigrateTo(dst_guests_, *dom);
  ASSERT_TRUE(new_dom.ok());
  target_.Settle();
  // Cloning works on the new host (config, including max_clones, migrated).
  ASSERT_TRUE(dst_guests_.ContextOf(*new_dom)->Fork(1, nullptr).ok());
  target_.Settle();
  EXPECT_EQ(target_.hypervisor().FindDomain(*new_dom)->children.size(), 1u);
}

TEST_F(MigrationTest, SourcePoolFullyReclaimed) {
  std::size_t free_before = source_.hypervisor().FreePoolFrames();
  auto dom = src_guests_.Launch(Guest("tmp"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  ASSERT_TRUE(src_guests_.MigrateTo(dst_guests_, *dom).ok());
  EXPECT_EQ(source_.hypervisor().FreePoolFrames(), free_before);
}

TEST_F(MigrationTest, UnknownGuestRejected) {
  EXPECT_EQ(src_guests_.MigrateTo(dst_guests_, 404).status().code(), StatusCode::kNotFound);
}


TEST_F(MigrationTest, DirtyLoggingTracksWrites) {
  auto dom = src_guests_.Launch(Guest("dl"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  Hypervisor& hv = source_.hypervisor();
  EXPECT_EQ(hv.FetchAndResetDirtyLog(*dom).status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(hv.SetDirtyLogging(*dom, true).ok());
  GuestMemoryLayout layout = ComputeGuestLayout(Guest("dl"), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  char b = 1;
  ASSERT_TRUE(hv.WriteGuestPage(*dom, gfn, 0, &b, 1).ok());
  ASSERT_TRUE(hv.WriteGuestPage(*dom, gfn, 8, &b, 1).ok());      // same page: one entry
  ASSERT_TRUE(hv.WriteGuestPage(*dom, gfn + 3, 0, &b, 1).ok());
  auto dirty = hv.FetchAndResetDirtyLog(*dom);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(*dirty, (std::vector<Gfn>{gfn, gfn + 3}));
  // Fetch resets the log.
  EXPECT_TRUE(hv.FetchAndResetDirtyLog(*dom)->empty());
  ASSERT_TRUE(hv.SetDirtyLogging(*dom, false).ok());
}

TEST_F(MigrationTest, LiveMigrationConvergesAndCarriesLatestData) {
  auto dom = src_guests_.Launch(Guest("live"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  GuestMemoryLayout layout = ComputeGuestLayout(Guest("live"), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  std::uint32_t version = 0;
  ASSERT_TRUE(source_.hypervisor().WriteGuestPage(*dom, gfn, 0, &version, 4).ok());

  // The "running guest" bumps a counter between pre-copy rounds.
  int activity_rounds = 0;
  auto between = [&] {
    if (activity_rounds++ < 2) {
      ++version;
      (void)source_.hypervisor().WriteGuestPage(*dom, gfn, 0, &version, 4);
    }
  };
  Toolstack::LiveMigrationStats stats;
  auto stream =
      source_.toolstack().MigrateOutLive(*dom, /*max_rounds=*/8, between, &stats);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  // Round 0 + rounds for the two dirtying bursts.
  EXPECT_GE(stats.precopy_rounds, 2u);
  EXPECT_GT(stats.pages_shipped, 1024u);  // full sweep + re-shipped pages
  // Downtime is tiny compared to the full-copy time (nothing left dirty).
  EXPECT_LT(stats.downtime.ToMillis(), 15.0);

  auto new_dom = target_.toolstack().MigrateIn(*stream);
  ASSERT_TRUE(new_dom.ok());
  std::uint32_t got = 0;
  ASSERT_TRUE(target_.hypervisor().ReadGuestPage(*new_dom, gfn, 0, &got, 4).ok());
  EXPECT_EQ(got, version);  // the LAST version travelled
}

TEST_F(MigrationTest, LiveMigrationRefusesFamilies) {
  auto dom = src_guests_.Launch(Guest("fam2"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  source_.Settle();
  ASSERT_TRUE(src_guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  source_.Settle();
  Toolstack::LiveMigrationStats stats;
  EXPECT_EQ(source_.toolstack().MigrateOutLive(*dom, 4, nullptr, &stats).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nephele
