// The deterministic-simulation-testing suite (label: dst).
//
// Drives src/dst end to end: corpus replay, coverage-guided generation with
// the full oracle after every op, digest determinism across reruns and
// worker-thread counts, and the seeded-bug catch + shrink loop that proves
// the harness can actually find and minimise a defect.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/system.h"
#include "src/dst/executor.h"
#include "src/dst/generator.h"
#include "src/dst/reference_model.h"
#include "src/dst/scenario.h"
#include "src/dst/shrinker.h"

namespace nephele {
namespace {

#ifndef NEPHELE_DST_CORPUS_DIR
#define NEPHELE_DST_CORPUS_DIR "tests/dst_corpus"
#endif

Scenario MustParse(const std::string& text) {
  auto parsed = Scenario::FromText(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

// ---------------------------------------------------------------------------
// Scenario text encoding.
// ---------------------------------------------------------------------------

TEST(DstScenarioTest, TextRoundTripsEveryOpKind) {
  Scenario scenario;
  scenario.seed = 42;
  scenario.pool_frames = 9000;
  Op op;
  op.kind = OpKind::kLaunchGuest;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kCloneBatch;
  op.dom = 1;
  op.n = 3;
  op.workers = 4;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kCowWrite;
  op.dom = 2;
  op.slot = 17;
  op.value = 200;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kCloneReset;
  op.dom = 3;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kDestroy;
  op.dom = 1;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kMigrateOut;
  op.dom = 0;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kMigrateIn;
  op.slot = 2;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kArmFault;
  op.point = "clone/stage1/share";
  op.spec = FaultSpec::NthHit(5);
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kArmFault;
  op.point = "xenstore/request";
  op.spec = FaultSpec::WithProbability(0.25, 99);
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kDisarmFaults;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kDeviceIo;
  op.dom = 0;
  op.slot = 5;
  op.value = 77;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kAdvanceTime;
  op.amount = 123456;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kSchedAcquire;
  op.dom = 1;
  op.n = 2;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kSchedRelease;
  op.slot = 3;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kCloneLazy;
  op.dom = 0;
  op.n = 2;
  op.workers = 2;
  op.slot = 4;
  scenario.ops.push_back(op);
  op = Op{};
  op.kind = OpKind::kTouchUnmapped;
  op.dom = 1;
  op.slot = 5;
  op.value = 99;
  scenario.ops.push_back(op);

  const std::string text = scenario.ToText();
  Scenario reparsed = MustParse(text);
  EXPECT_EQ(scenario, reparsed);
  // Encoding is canonical: a second round trip is byte-identical.
  EXPECT_EQ(text, reparsed.ToText());
}

TEST(DstScenarioTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(Scenario::FromText("frobnicate dom=1\n").ok());
  EXPECT_FALSE(Scenario::FromText("write dom=1 wat=3\n").ok());
  EXPECT_FALSE(Scenario::FromText("write dom=abc\n").ok());
  EXPECT_FALSE(Scenario::FromText("arm nth=2\n").ok());  // missing point=
  EXPECT_FALSE(Scenario::FromText("clone dom\n").ok());  // operand without =
}

TEST(DstScenarioTest, TapeDecodingIsPure) {
  std::vector<std::uint8_t> tape = {7, 13, 255, 0, 42, 99, 1, 2, 3};
  Scenario a = ScenarioFromTape(123, tape);
  Scenario b = ScenarioFromTape(123, tape);
  EXPECT_EQ(a, b);
  // A different seed re-derives the fallback stream: scenarios diverge.
  Scenario c = ScenarioFromTape(124, tape);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------------------------
// Reference model unit checks.
// ---------------------------------------------------------------------------

TEST(DstModelTest, ResetRestoresParentCurrentContentAndCountsDuplicates) {
  ReferenceModel model;
  model.Launch(1);
  model.Write(1, 0, 10);
  model.CloneBatchPlanned(1, 1);
  model.CloneChild(1, 2);
  // Child dirties slot 0's page, parent then moves on.
  model.Write(2, 0, 99);
  model.Write(1, 0, 77);
  // A second clone re-shares the child? No — re-share happens on reset. The
  // duplicate comes from clone->write->clone->write on the same page:
  model.CloneBatchPlanned(2, 1);
  model.CloneChild(2, 3);
  model.Write(2, 1, 5);  // same page as slot 0, re-dirties after re-share
  EXPECT_EQ(model.Reset(2), 2u);  // page 0 appears twice on the dirty list
  // Reset copied the parent's *current* cells: slot 0 is 77, not 10.
  EXPECT_EQ(model.Find(2)->cells[0], 77);
  EXPECT_TRUE(model.Find(2)->dirty.empty());
}

TEST(DstModelTest, DestroyReparentsToGrandparent) {
  ReferenceModel model;
  model.Launch(1);
  model.CloneBatchPlanned(1, 1);
  model.CloneChild(1, 2);
  model.CloneBatchPlanned(2, 1);
  model.CloneChild(2, 3);
  model.Destroy(2);
  EXPECT_EQ(model.Find(3)->parent, 1u);
  model.Destroy(1);
  EXPECT_EQ(model.Find(3)->parent, kDomInvalid);
  EXPECT_FALSE(model.CanReset(3));
}

// ---------------------------------------------------------------------------
// Corpus replay.
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir(NEPHELE_DST_CORPUS_DIR);
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".scn") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DstCorpusTest, EveryStoredScenarioReplaysGreen) {
  const auto files = CorpusFiles();
  ASSERT_FALSE(files.empty()) << "no corpus at " << NEPHELE_DST_CORPUS_DIR;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    Scenario scenario = MustParse(text.str());
    RunResult result = RunScenario(scenario);
    EXPECT_TRUE(result.ok()) << path.filename() << " failed " << result.fail_kind << " at op "
                             << result.fail_op << ": " << result.message;
  }
}

// ---------------------------------------------------------------------------
// Coverage-guided generation: the oracle holds over >= 200 fresh scenarios.
// ---------------------------------------------------------------------------

TEST(DstGenerationTest, TwoHundredGeneratedScenariosSatisfyTheOracle) {
  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};
  constexpr int kPerSeed = 25;  // 8 * 25 = 200 scenarios
  std::size_t total = 0;
  for (std::uint64_t seed : kSeeds) {
    ScenarioGenerator gen(seed);
    for (int i = 0; i < kPerSeed; ++i) {
      Scenario scenario = gen.Next();
      RunResult result = RunScenario(scenario);
      ASSERT_TRUE(result.ok()) << "seed " << seed << " scenario " << i << " failed "
                               << result.fail_kind << " at op " << result.fail_op << ": "
                               << result.message << "\n"
                               << scenario.ToText();
      gen.Report(result);
      ++total;
    }
    EXPECT_GT(gen.edges_covered(), 0u);
  }
  EXPECT_GE(total, 200u);
}

TEST(DstGenerationTest, DigestsAreIdenticalAcrossRerunsAndWorkerCounts) {
  constexpr std::uint64_t kSeeds[] = {7, 1001, 424242};
  for (std::uint64_t seed : kSeeds) {
    ScenarioGenerator gen(seed);
    for (int i = 0; i < 4; ++i) {
      Scenario scenario = gen.Next();
      RunOptions serial;
      serial.force_workers = 1;
      RunResult first = RunScenario(scenario, serial);
      RunResult again = RunScenario(scenario, serial);
      ASSERT_TRUE(first.ok()) << first.fail_kind << ": " << first.message;
      EXPECT_EQ(first.digest, again.digest) << "rerun diverged\n" << scenario.ToText();

      RunOptions wide;
      wide.force_workers = 4;
      RunResult parallel = RunScenario(scenario, wide);
      EXPECT_EQ(first.digest, parallel.digest)
          << "worker count changed observable behaviour\n"
          << scenario.ToText();
      gen.Report(first);
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded bug: the oracle catches it, the shrinker minimises it.
// ---------------------------------------------------------------------------

// The deliberate defect: after every advance op, a stray hypervisor write
// lands in the newest guest's first tracked cell behind the model's back —
// the shape of a real bug where some background path scribbles over guest
// memory.
RunOptions SeededBugOptions() {
  RunOptions options;
  options.after_op = [](NepheleSystem& sys, const Op& op, std::size_t) {
    if (op.kind != OpKind::kAdvanceTime) {
      return;
    }
    const auto ids = sys.hypervisor().DomainIds();
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      if (*it == kDom0) {
        continue;
      }
      const GuestMemoryLayout layout = ComputeGuestLayout(
          DstGuestConfig(), sys.hypervisor().config().min_domain_pages);
      const std::uint8_t rogue = 0x5a;
      (void)sys.hypervisor().WriteGuestPage(*it, static_cast<Gfn>(layout.heap_first_gfn), 0,
                                            &rogue, 1);
      return;
    }
  };
  return options;
}

TEST(DstShrinkTest, SeededBugIsCaughtAndShrunkToAMinimalReproducer) {
  // A long scenario with one advance op buried in structural noise.
  Scenario scenario = MustParse(
      "seed 77\n"
      "launch\n"
      "write dom=0 slot=3 val=9\n"
      "advance ns=1000\n"
      "launch\n"
      "devio dom=0 key=1 val=5\n"
      "clone dom=0 n=2\n"
      "write dom=2 slot=0 val=4\n"
      "write dom=1 slot=7 val=8\n"
      "reset dom=2\n"
      "devio dom=1 key=2 val=6\n"
      "launch\n"
      "write dom=3 slot=11 val=3\n"
      "destroy dom=3\n"
      "clone dom=0 n=1\n"
      "write dom=0 slot=2 val=2\n"
      "advance ns=5000\n"
      "devio dom=2 key=3 val=7\n"
      "launch\n"
      "write dom=4 slot=5 val=1\n"
      "advance ns=2500\n");

  const RunOptions options = SeededBugOptions();
  RunResult failure = RunScenario(scenario, options);
  ASSERT_FALSE(failure.ok()) << "the seeded bug went undetected";
  EXPECT_EQ(failure.fail_kind, "cells");
  // Caught at the first advance op, not at the end of the run.
  EXPECT_EQ(failure.fail_op, 2u);

  ShrinkOutcome shrunk = ShrinkScenario(scenario, failure, options);
  EXPECT_FALSE(shrunk.result.ok());
  EXPECT_EQ(shrunk.result.fail_kind, failure.fail_kind);
  EXPECT_LE(shrunk.scenario.ops.size(), 12u);
  // The true minimum: one guest plus the op that triggers the rogue write.
  EXPECT_EQ(shrunk.scenario.ops.size(), 2u)
      << "not fully minimised:\n"
      << shrunk.scenario.ToText();
  // The minimised scenario still fails when replayed from its text form.
  Scenario reparsed = MustParse(shrunk.scenario.ToText());
  RunResult replay = RunScenario(reparsed, options);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.fail_kind, failure.fail_kind);
}

// A clean system run under the same scenario (no seeded bug) passes — the
// failure above is the bug, not the harness.
TEST(DstShrinkTest, SameScenarioPassesWithoutTheSeededBug) {
  Scenario scenario = MustParse(
      "seed 77\n"
      "launch\n"
      "write dom=0 slot=3 val=9\n"
      "advance ns=1000\n"
      "clone dom=0 n=2\n"
      "reset dom=1\n"
      "advance ns=2500\n");
  RunResult result = RunScenario(scenario);
  EXPECT_TRUE(result.ok()) << result.fail_kind << ": " << result.message;
}

}  // namespace
}  // namespace nephele
