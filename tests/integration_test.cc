// Cross-module scenarios: the full paper workflows end to end.

#include <gtest/gtest.h>

#include "src/apps/nginx_app.h"
#include "src/apps/redis_app.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/guest/ipc.h"
#include "src/net/switch.h"

namespace nephele {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : system_(BigSystem()), guests_(system_) {}

  static SystemConfig BigSystem() {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 512 * 1024;  // 2 GiB
    return cfg;
  }

  NepheleSystem system_;
  GuestManager guests_;
};

TEST_F(IntegrationTest, BootCloneChainUdpReadiness) {
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  int ready = 0;
  bond.set_uplink_sink([&](const Packet& p) {
    if (p.dst_port == 9999) {
      ++ready;
    }
  });
  DomainConfig cfg;
  cfg.name = "udp";
  cfg.max_clones = 64;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  ASSERT_EQ(ready, 1);

  // Chain: clone 10 times sequentially from the parent, like the Fig. 4 run.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(guests_.ContextOf(*dom)
                    ->Fork(1,
                           [](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
                             if (r.is_child) {
                               static_cast<UdpReadyApp&>(self).SendReady(ctx);
                             }
                           })
                    .ok());
    system_.Settle();
  }
  EXPECT_EQ(ready, 11);
  EXPECT_EQ(bond.num_ports(), 11u);
  EXPECT_EQ(system_.hypervisor().FindDomain(*dom)->children.size(), 10u);
}

TEST_F(IntegrationTest, ClonesShareIdenticalMacAndIp) {
  DomainConfig cfg;
  cfg.name = "udp";
  cfg.max_clones = 4;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
  system_.Settle();
  DomId child = system_.hypervisor().FindDomain(*dom)->children.front();
  GuestDevices* pd = system_.toolstack().FindDevices(*dom);
  GuestDevices* cd = system_.toolstack().FindDevices(child);
  EXPECT_EQ(pd->net->mac(), cd->net->mac());
  EXPECT_EQ(pd->net->ip(), cd->net->ip());
}

TEST_F(IntegrationTest, BondRoutesFlowsToDistinctClones) {
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  DomainConfig cfg;
  cfg.name = "udp";
  cfg.max_clones = 4;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(guests_.ContextOf(*dom)->Fork(1, nullptr).ok());
    system_.Settle();
  }
  ASSERT_EQ(bond.num_ports(), 4u);

  // The Fig. 4 methodology: find src ports that map injectively to slaves.
  GuestDevices* pd = system_.toolstack().FindDevices(*dom);
  std::set<std::string> hit_slaves;
  std::uint16_t start = 20000;
  for (std::size_t want = 0; want < 4; ++want) {
    auto port = FindPortForSlave(MakeIpv4(10, 8, 255, 1), pd->net->ip(), 7, IpProto::kUdp, 4,
                                 want, start);
    ASSERT_TRUE(port.ok());
    start = static_cast<std::uint16_t>(*port + 1);
    Packet p;
    p.proto = IpProto::kUdp;
    p.src_ip = MakeIpv4(10, 8, 255, 1);
    p.src_port = *port;
    p.dst_ip = pd->net->ip();
    p.dst_port = 7;
    hit_slaves.insert(bond.slave(bond.SelectIndex(p))->port_name());
    bond.InjectFromUplink(p);
  }
  system_.Settle();
  EXPECT_EQ(hit_slaves.size(), 4u);  // all four family members reachable
}

TEST_F(IntegrationTest, NginxWorkersServeThroughBond) {
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  std::vector<Packet> replies;
  bond.set_uplink_sink([&](const Packet& p) { replies.push_back(p); });

  DomainConfig cfg;
  cfg.name = "nginx";
  cfg.max_clones = 8;
  NginxConfig ncfg;
  ncfg.workers = 4;
  auto dom = guests_.Launch(cfg, std::make_unique<NginxApp>(ncfg));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  ASSERT_EQ(bond.num_ports(), 4u);

  // 200 requests from distinct client ports spread across the workers.
  GuestDevices* pd = system_.toolstack().FindDevices(*dom);
  for (std::uint16_t i = 0; i < 200; ++i) {
    Packet req;
    req.proto = IpProto::kTcp;
    req.src_ip = MakeIpv4(10, 8, 255, 1);
    req.src_port = static_cast<std::uint16_t>(30000 + i);
    req.dst_ip = pd->net->ip();
    req.dst_port = 80;
    bond.InjectFromUplink(req);
  }
  system_.Settle();
  EXPECT_EQ(replies.size(), 200u);
  // Work landed on several workers (master + clones).
  std::size_t served_by_master =
      dynamic_cast<NginxApp*>(guests_.AppOf(*dom))->requests_served();
  EXPECT_LT(served_by_master, 200u);
  EXPECT_GT(served_by_master, 0u);
}

TEST_F(IntegrationTest, RedisSnapshotWhileServing) {
  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 32;
  cfg.max_clones = 8;
  cfg.with_p9fs = true;
  auto dom = guests_.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  ASSERT_TRUE(dom.ok());
  system_.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests_.AppOf(*dom));
  GuestContext* ctx = guests_.ContextOf(*dom);
  ASSERT_TRUE(redis->MassInsert(*ctx, 5000).ok());
  ASSERT_TRUE(redis->Set(*ctx, "live", "before-save").ok());

  ASSERT_TRUE(redis->Save(*ctx).ok());
  system_.Settle();

  // Parent kept serving: mutate after the snapshot.
  ASSERT_TRUE(redis->Set(*ctx, "live", "after-save").ok());
  EXPECT_EQ(*redis->Get("live"), "after-save");
  // Snapshot file reflects the dataset at fork time.
  auto size = system_.devices().hostfs().SizeOf(cfg.p9_export + "/dump.rdb");
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 5000u * 90);
  // The saver clone is gone; only parent remains in the family registry.
  EXPECT_EQ(guests_.NumGuests(), 1u);
}

TEST_F(IntegrationTest, PipeAcrossForkCarriesData) {
  DomainConfig cfg;
  cfg.name = "piped";
  cfg.max_clones = 2;
  cfg.with_vif = false;
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  // pipe(2) before fork(2), exactly like POSIX processes.
  auto pipe = IdcPipe::Create(system_.hypervisor(), *dom);
  ASSERT_TRUE(pipe.ok());
  IdcPipe* raw_pipe = pipe->get();
  std::string child_read;
  ASSERT_TRUE(guests_.ContextOf(*dom)
                  ->Fork(1,
                         [&child_read, raw_pipe](GuestContext& ctx, GuestApp&,
                                                 const ForkResult& r) {
                           if (r.is_child) {
                             auto data = raw_pipe->Read(ctx.id(), 64);
                             if (data.ok()) {
                               child_read.assign(data->begin(), data->end());
                             }
                           } else {
                             std::string msg = "hello child";
                             (void)raw_pipe->Write(
                                 ctx.id(), std::vector<std::uint8_t>(msg.begin(), msg.end()));
                           }
                         })
                  .ok());
  system_.Settle();
  // Parent's continuation ran after the child's: write the data again and
  // let the child read it via a follow-up read to assert stream semantics.
  DomId child = system_.hypervisor().FindDomain(*dom)->children.front();
  auto data = raw_pipe->Read(child, 64);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello child");
}

TEST_F(IntegrationTest, MemoryDensityMiniSweep) {
  // A scaled-down Fig. 5: boot one parent, clone until a fixed budget, and
  // verify clones cost ~1.5 MiB vs 4 MiB boots.
  DomainConfig cfg;
  cfg.name = "density";
  cfg.max_clones = 4096;
  auto parent = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(parent.ok());
  system_.Settle();
  std::size_t free_start = system_.hypervisor().FreePoolFrames();
  const int kClones = 50;
  for (int i = 0; i < kClones; ++i) {
    ASSERT_TRUE(guests_.ContextOf(*parent)->Fork(1, nullptr).ok());
    system_.Settle();
  }
  double per_clone_mb =
      static_cast<double>(free_start - system_.hypervisor().FreePoolFrames()) * kPageSize /
      kClones / (1 << 20);
  EXPECT_GT(per_clone_mb, 1.0);
  EXPECT_LT(per_clone_mb, 2.0);
  // >2.5x density vs booting (Sec. 6.2's 3x claim at machine scale).
  EXPECT_GT(4.0 / per_clone_mb, 2.5);
}

TEST_F(IntegrationTest, FamiliesAreIsolated) {
  DomainConfig cfg;
  cfg.name = "fam-a";
  cfg.max_clones = 4;
  cfg.with_vif = false;
  auto a = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  cfg.name = "fam-b";
  auto b = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  ASSERT_TRUE(guests_.ContextOf(*a)->Fork(1, nullptr).ok());
  system_.Settle();
  DomId a_child = system_.hypervisor().FindDomain(*a)->children.front();
  // Cross-family: no shared pages, no IDC access (invariant 7).
  EXPECT_FALSE(system_.hypervisor().SameFamily(a_child, *b));
  auto region = IdcRegion::Create(system_.hypervisor(), *a, 1);
  ASSERT_TRUE(region.ok());
  char byte = 0;
  EXPECT_EQ(region->Write(*b, 0, &byte, 1).code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(region->Write(a_child, 0, &byte, 1).ok());
}

TEST_F(IntegrationTest, CloneSpeedupHeadline) {
  // Sec. 1/9: cloning ~8x faster than booting (at small instance counts the
  // gap is ~6x and widens with Xenstore growth).
  Bond bond;
  system_.toolstack().SetDefaultSwitch(&bond);
  SimTime ready_at;
  bond.set_uplink_sink([&](const Packet& p) {
    if (p.dst_port == 9999) {
      ready_at = system_.Now();
    }
  });
  DomainConfig cfg;
  cfg.name = "speed";
  cfg.max_clones = 4;
  SimTime boot_start = system_.Now();
  auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system_.Settle();
  double boot_ms = (ready_at - boot_start).ToMillis();

  SimTime clone_start = system_.Now();
  ASSERT_TRUE(guests_.ContextOf(*dom)
                  ->Fork(1,
                         [](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
                           if (r.is_child) {
                             static_cast<UdpReadyApp&>(self).SendReady(ctx);
                           }
                         })
                  .ok());
  system_.Settle();
  double clone_ms = (ready_at - clone_start).ToMillis();
  EXPECT_GT(boot_ms / clone_ms, 4.0);
  EXPECT_GT(clone_ms, 15.0);
  EXPECT_LT(clone_ms, 40.0);
}

}  // namespace
}  // namespace nephele
