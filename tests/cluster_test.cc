// Fabric-level coverage: the Host/ClusterFabric redesign (DESIGN.md §16).
// Image replication to peers, first-class cross-host migration with typed
// errors and clean rollback under link faults/partitions (frame conservation
// asserted on both hosts via src/hypervisor/invariants.h), cross-host
// Acquire through each placement policy, cross-host warm pools, the
// NepheleSystem facade, and byte-determinism of the merged cluster exports
// across reruns and clone worker counts.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fabric.h"
#include "src/core/system.h"
#include "src/hypervisor/invariants.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/cluster_scheduler.h"

namespace nephele {
namespace {

ClusterConfig SmallCluster(std::size_t hosts) {
  ClusterConfig cfg;
  cfg.hosts = hosts;
  cfg.host.hypervisor.pool_frames = 64 * 1024;  // 256 MiB pool per host
  return cfg;
}

DomainConfig GuestConfig(const std::string& name, std::uint32_t max_clones = 64) {
  DomainConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 4;
  cfg.max_clones = max_clones;
  return cfg;
}

DomId Boot(Host& host, const DomainConfig& cfg) {
  auto dom = host.toolstack().CreateDomain(cfg);
  EXPECT_TRUE(dom.ok()) << dom.status().ToString();
  host.Settle();
  return *dom;
}

void ExpectClean(ClusterFabric& fabric) {
  for (std::size_t i = 0; i < fabric.num_hosts(); ++i) {
    EXPECT_EQ(CheckHypervisorInvariants(fabric.host(i).hypervisor()), "")
        << "host " << i;
  }
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

TEST(ClusterFacadeTest, NepheleSystemIsASingleHostFabric) {
  NepheleSystem sys;
  EXPECT_EQ(sys.fabric().num_hosts(), 1u);
  EXPECT_EQ(&sys.host(), &sys.fabric().host(0));
  EXPECT_EQ(&sys.metrics(), &sys.host().metrics());
  EXPECT_EQ(&sys.loop(), &sys.fabric().loop());
  EXPECT_EQ(sys.host().metrics_prefix(), "host0/");

  // The facade still boots guests exactly as before.
  DomId dom = Boot(sys, GuestConfig("facade"));
  EXPECT_NE(sys.hypervisor().FindDomain(dom), nullptr);
}

TEST(ClusterFacadeTest, MergedExportOfOneUnprefixedPartEqualsPlainExport) {
  NepheleSystem sys;
  (void)Boot(sys, GuestConfig("export"));
  EXPECT_EQ(ExportMergedJson({{"", &sys.metrics()}}), sys.metrics().ExportJson());
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

TEST(ClusterMigrateTest, MovesDomainBetweenHosts) {
  ClusterFabric fabric(SmallCluster(2));
  DomId dom = Boot(fabric.host(0), GuestConfig("mover", /*max_clones=*/0));
  const std::size_t dst_before = fabric.host(1).hypervisor().NumDomains();

  auto moved = fabric.Migrate(dom, 0, 1);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  fabric.Settle();

  EXPECT_EQ(fabric.host(0).hypervisor().FindDomain(dom), nullptr);
  const Domain* d = fabric.host(1).hypervisor().FindDomain(*moved);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DomainState::kRunning);
  EXPECT_EQ(fabric.host(1).hypervisor().NumDomains(), dst_before + 1);
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/migrations_total"), 1u);
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/migrations_failed"), 0u);
  EXPECT_GT(fabric.metrics().CounterValue("fabric/link_tx_bytes"), 0u);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, TypedErrors) {
  ClusterFabric fabric(SmallCluster(2));
  DomId dom = Boot(fabric.host(0), GuestConfig("typed", /*max_clones=*/0));

  EXPECT_EQ(fabric.Migrate(dom, 0, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fabric.Migrate(dom, 0, 7).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fabric.Migrate(DomId{9999}, 0, 1).status().code(), StatusCode::kNotFound);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, FamilyLinkedDomainIsRefusedNamingRelatives) {
  ClusterFabric fabric(SmallCluster(2));
  Host& host = fabric.host(0);
  DomId parent = Boot(host, GuestConfig("ancestor"));
  const Domain* pd = host.hypervisor().FindDomain(parent);
  auto children = host.clone_engine().Clone(
      {kDom0, parent, pd->p2m[pd->start_info_gfn].mfn, 1});
  ASSERT_TRUE(children.ok());
  fabric.Settle();

  auto refused = fabric.Migrate(parent, 0, 1);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  const std::string msg(refused.status().message());
  EXPECT_NE(msg.find("ancestor"), std::string::npos) << msg;
  EXPECT_NE(msg.find("domid " + std::to_string(children->front())), std::string::npos) << msg;

  // The refused migration must not have touched the family.
  EXPECT_NE(host.hypervisor().FindDomain(parent), nullptr);
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/migrations_failed"), 1u);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, BeginAbortRestoresTheSource) {
  ClusterFabric fabric(SmallCluster(2));
  Host& host = fabric.host(0);
  DomId dom = Boot(host, GuestConfig("abortee", /*max_clones=*/0));

  auto stream = host.toolstack().BeginMigrateOut(dom);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(host.hypervisor().FindDomain(dom)->state, DomainState::kPaused);
  // A second Begin while one is pending is refused.
  EXPECT_EQ(host.toolstack().BeginMigrateOut(dom).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(host.toolstack().AbortMigrateOut(dom).ok());
  EXPECT_EQ(host.hypervisor().FindDomain(dom)->state, DomainState::kRunning);
  // Nothing pending anymore: Complete/Abort without Begin are typed errors.
  EXPECT_EQ(host.toolstack().CompleteMigrateOut(dom).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(host.toolstack().AbortMigrateOut(dom).code(), StatusCode::kFailedPrecondition);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, LinkFaultMidMigrationRollsBackCleanly) {
  ClusterFabric fabric(SmallCluster(2));
  DomId dom = Boot(fabric.host(0), GuestConfig("survivor", /*max_clones=*/0));
  const std::size_t src_domains = fabric.host(0).hypervisor().NumDomains();
  const std::size_t dst_domains = fabric.host(1).hypervisor().NumDomains();
  const std::size_t src_free = fabric.host(0).hypervisor().FreePoolFrames();
  const std::size_t dst_free = fabric.host(1).hypervisor().FreePoolFrames();

  ASSERT_TRUE(fabric.fault_injector().Arm("fabric/link", FaultSpec::NthHit(1)).ok());
  auto failed = fabric.Migrate(dom, 0, 1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);

  // The source is back to running, the destination untouched, and frame
  // conservation holds on both hosts.
  const Domain* d = fabric.host(0).hypervisor().FindDomain(dom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DomainState::kRunning);
  EXPECT_EQ(fabric.host(0).hypervisor().NumDomains(), src_domains);
  EXPECT_EQ(fabric.host(1).hypervisor().NumDomains(), dst_domains);
  EXPECT_EQ(fabric.host(0).hypervisor().FreePoolFrames(), src_free);
  EXPECT_EQ(fabric.host(1).hypervisor().FreePoolFrames(), dst_free);
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/migrations_failed"), 1u);
  ExpectClean(fabric);

  // With the fault disarmed the same migration goes through.
  fabric.fault_injector().DisarmAll();
  auto moved = fabric.Migrate(dom, 0, 1);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  fabric.Settle();
  EXPECT_NE(fabric.host(1).hypervisor().FindDomain(*moved), nullptr);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, MigrateFaultPointRollsBackToo) {
  ClusterFabric fabric(SmallCluster(2));
  DomId dom = Boot(fabric.host(0), GuestConfig("poked", /*max_clones=*/0));
  ASSERT_TRUE(fabric.fault_injector().Arm("fabric/migrate", FaultSpec::NthHit(1)).ok());

  auto failed = fabric.Migrate(dom, 0, 1);
  ASSERT_FALSE(failed.ok());
  const Domain* d = fabric.host(0).hypervisor().FindDomain(dom);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DomainState::kRunning);
  ExpectClean(fabric);
}

TEST(ClusterMigrateTest, PartitionBlocksThenRecovers) {
  ClusterFabric fabric(SmallCluster(3));
  DomId dom = Boot(fabric.host(0), GuestConfig("islander", /*max_clones=*/0));

  ASSERT_TRUE(fabric.Partition(1, true).ok());
  auto blocked = fabric.Migrate(dom, 0, 1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fabric.host(0).hypervisor().FindDomain(dom)->state, DomainState::kRunning);
  EXPECT_GT(fabric.metrics().CounterValue("fabric/link_down_drops"), 0u);
  ExpectClean(fabric);

  // The partition only cut host 1: host 2 is still reachable.
  auto sideways = fabric.Migrate(dom, 0, 2);
  ASSERT_TRUE(sideways.ok()) << sideways.status().ToString();
  fabric.Settle();

  ASSERT_TRUE(fabric.Partition(1, false).ok());
  auto moved = fabric.Migrate(*sideways, 2, 1);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  fabric.Settle();
  EXPECT_NE(fabric.host(1).hypervisor().FindDomain(*moved), nullptr);
  ExpectClean(fabric);
}

// ---------------------------------------------------------------------------
// Replication + placement
// ---------------------------------------------------------------------------

TEST(ClusterSchedulerTest, RegisterParentReplicatesToEveryPeer) {
  ClusterFabric fabric(SmallCluster(3));
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));

  auto family = sched.RegisterParent(0, parent);
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  fabric.Settle();

  EXPECT_EQ(sched.replica(*family, 0), parent);
  for (std::size_t host = 1; host < 3; ++host) {
    DomId replica = sched.replica(*family, host);
    ASSERT_NE(replica, kDomInvalid) << "host " << host;
    const Domain* d = fabric.host(host).hypervisor().FindDomain(replica);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name, "fn");
    EXPECT_TRUE(d->cloning_enabled);
  }
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/replications_total"), 2u);
  EXPECT_EQ(fabric.metrics().CounterValue("cluster/replicas_created"), 2u);
  ExpectClean(fabric);
}

TEST(ClusterSchedulerTest, ReplicationFailureLeavesPeerIneligible) {
  ClusterConfig cfg = SmallCluster(3);
  cfg.placement = PlacementPolicy::kSpread;
  ClusterFabric fabric(cfg);
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));

  ASSERT_TRUE(fabric.SetLinkDown(0, 2, true).ok());
  auto family = sched.RegisterParent(0, parent);
  ASSERT_TRUE(family.ok());
  fabric.Settle();
  EXPECT_EQ(sched.replica(*family, 2), kDomInvalid);
  EXPECT_EQ(fabric.metrics().CounterValue("fabric/replications_failed"), 1u);

  // Placement routes around the replica-less host.
  std::vector<ClusterGrant> grants;
  ASSERT_TRUE(sched.Acquire(*family, 4, [&grants](Result<ClusterGrant> r) {
                     ASSERT_TRUE(r.ok()) << r.status().ToString();
                     grants.push_back(*r);
                   })
                  .ok());
  fabric.Settle();
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(sched.active_on(2), 0u);
  ExpectClean(fabric);
}

// Runs one Acquire wave under `policy` and returns per-host active counts.
std::vector<std::size_t> PlaceWave(PlacementPolicy policy, unsigned children,
                                   bool fatten_host0 = false) {
  ClusterConfig cfg = SmallCluster(3);
  cfg.placement = policy;
  ClusterFabric fabric(cfg);
  if (fatten_host0) {
    // Shrink host 0's headroom so memory-aware placement avoids it.
    (void)Boot(fabric.host(0), [] {
      DomainConfig fat = GuestConfig("ballast", 0);
      fat.memory_mb = 32;
      return fat;
    }());
  }
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));
  auto family = sched.RegisterParent(0, parent);
  EXPECT_TRUE(family.ok());
  fabric.Settle();

  unsigned granted = 0;
  EXPECT_TRUE(sched.Acquire(*family, children, [&granted](Result<ClusterGrant> r) {
                     EXPECT_TRUE(r.ok()) << r.status().ToString();
                     ++granted;
                   })
                  .ok());
  fabric.Settle();
  EXPECT_EQ(granted, children);
  ExpectClean(fabric);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < fabric.num_hosts(); ++i) {
    active.push_back(sched.active_on(i));
  }
  return active;
}

TEST(ClusterSchedulerTest, PackPlacementFillsTheFirstHost) {
  EXPECT_EQ(PlaceWave(PlacementPolicy::kPack, 6),
            (std::vector<std::size_t>{6, 0, 0}));
}

TEST(ClusterSchedulerTest, SpreadPlacementBalancesHosts) {
  EXPECT_EQ(PlaceWave(PlacementPolicy::kSpread, 6),
            (std::vector<std::size_t>{2, 2, 2}));
}

TEST(ClusterSchedulerTest, MemoryAwarePlacementAvoidsThePressuredHost) {
  std::vector<std::size_t> active =
      PlaceWave(PlacementPolicy::kMemoryAware, 4, /*fatten_host0=*/true);
  EXPECT_EQ(active[0], 0u) << "children landed on the pressured host";
  EXPECT_EQ(active[1] + active[2], 4u);
}

TEST(ClusterSchedulerTest, WarmPoolServesAcrossAcquires) {
  ClusterConfig cfg = SmallCluster(2);
  cfg.placement = PlacementPolicy::kSpread;
  ClusterFabric fabric(cfg);
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));
  auto family = sched.RegisterParent(0, parent);
  ASSERT_TRUE(family.ok());
  fabric.Settle();

  std::vector<ClusterGrant> grants;
  auto collect = [&grants](Result<ClusterGrant> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    grants.push_back(*r);
  };
  ASSERT_TRUE(sched.Acquire(*family, 2, collect).ok());
  fabric.Settle();
  ASSERT_EQ(grants.size(), 2u);
  for (const ClusterGrant& g : grants) {
    ASSERT_TRUE(sched.Release(g).ok());
  }
  fabric.Settle();
  EXPECT_EQ(fabric.metrics().CounterValue("cluster/released_total"), 2u);

  // The re-acquire is served from the parked children, wherever they sit.
  const std::uint64_t warm_before = fabric.metrics().CounterValue("cluster/warm_placements");
  std::vector<ClusterGrant> regrants;
  ASSERT_TRUE(sched.Acquire(*family, 2, [&regrants](Result<ClusterGrant> r) {
                     ASSERT_TRUE(r.ok()) << r.status().ToString();
                     regrants.push_back(*r);
                   })
                  .ok());
  fabric.Settle();
  ASSERT_EQ(regrants.size(), 2u);
  EXPECT_EQ(fabric.metrics().CounterValue("cluster/warm_placements"), warm_before + 2);
  ExpectClean(fabric);
}

// ---------------------------------------------------------------------------
// Cluster exports: prefixes + determinism
// ---------------------------------------------------------------------------

TEST(ClusterExportTest, HostMetricsAreTaggedFabricMetricsAreNot) {
  ClusterFabric fabric(SmallCluster(2));
  (void)Boot(fabric.host(1), GuestConfig("tagged", 0));
  const std::string merged = fabric.ExportClusterMetricsJson();
  EXPECT_NE(merged.find("\"host0/hypervisor/"), std::string::npos);
  EXPECT_NE(merged.find("\"host1/toolstack/domains_booted\""), std::string::npos);
  EXPECT_NE(merged.find("\"fabric/link_tx_bytes\""), std::string::npos);
  // Host registries themselves stay unprefixed (golden-export compatible).
  EXPECT_EQ(fabric.host(1).metrics().ExportJson().find("host1/"), std::string::npos);
}

// Every fabric-registry metric follows subsystem/metric with a fabric-level
// subsystem — the cluster counterpart of tests/metric_names_test.cc.
TEST(ClusterExportTest, FabricMetricNamesAreWellFormed) {
  ClusterFabric fabric(SmallCluster(2));
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));
  auto family = sched.RegisterParent(0, parent);
  ASSERT_TRUE(family.ok());
  (void)fabric.Migrate(parent, 0, 0);  // exercise the failure counters too
  fabric.Settle();
  for (const std::string& name : fabric.metrics().AllNames()) {
    const std::string prefix = name.substr(0, name.find('/'));
    EXPECT_TRUE(prefix == "fabric" || prefix == "cluster" || prefix == "fault")
        << "fabric metric '" << name << "' claims unexpected subsystem '" << prefix << "'";
  }
}

struct ClusterDigest {
  std::string metrics;
  std::string tsdb;
};

// A whole little cluster lifetime: replication, a placement wave, releases,
// a warm wave, one migration, telemetry ticks. Returns the merged exports.
ClusterDigest RunClusterScenario(unsigned clone_workers) {
  ClusterConfig cfg = SmallCluster(3);
  cfg.placement = PlacementPolicy::kSpread;
  cfg.host.clone_worker_threads = clone_workers;
  ClusterFabric fabric(cfg);
  std::vector<std::unique_ptr<TsdbCollector>> tsdbs;
  for (std::size_t i = 0; i < fabric.num_hosts(); ++i) {
    tsdbs.push_back(std::make_unique<TsdbCollector>(
        fabric.host(i).metrics(), fabric.loop(), fabric.host(i).config().tsdb));
  }
  ClusterScheduler sched(fabric);
  DomId parent = Boot(fabric.host(0), GuestConfig("fn"));
  auto family = sched.RegisterParent(0, parent);
  EXPECT_TRUE(family.ok());
  fabric.Settle();

  std::vector<ClusterGrant> grants;
  EXPECT_TRUE(sched.Acquire(*family, 9, [&grants](Result<ClusterGrant> r) {
                     if (r.ok()) {
                       grants.push_back(*r);
                     }
                   })
                  .ok());
  fabric.Settle();
  for (const ClusterGrant& g : grants) {
    (void)sched.Release(g);
  }
  fabric.Settle();
  grants.clear();
  EXPECT_TRUE(sched.Acquire(*family, 4, [&grants](Result<ClusterGrant> r) {
                     if (r.ok()) {
                       grants.push_back(*r);
                     }
                   })
                  .ok());
  fabric.Settle();

  DomId solo = Boot(fabric.host(0), GuestConfig("solo", 0));
  auto moved = fabric.Migrate(solo, 0, 2);
  EXPECT_TRUE(moved.ok());
  fabric.Settle();

  for (auto& tsdb : tsdbs) {
    tsdb->ScheduleTicks(3);
  }
  fabric.Settle();

  std::vector<std::pair<std::string, const TsdbCollector*>> parts;
  for (std::size_t i = 0; i < tsdbs.size(); ++i) {
    parts.emplace_back("host" + std::to_string(i), tsdbs[i].get());
  }
  return ClusterDigest{fabric.ExportClusterMetricsJson(),
                       TsdbCollector::ExportMergedJson(parts)};
}

TEST(ClusterExportTest, DigestIsByteIdenticalAcrossRerunsAndWorkerCounts) {
  ClusterDigest first = RunClusterScenario(1);
  ClusterDigest rerun = RunClusterScenario(1);
  ClusterDigest parallel = RunClusterScenario(4);
  EXPECT_EQ(first.metrics, rerun.metrics) << "rerun changed the metrics digest";
  EXPECT_EQ(first.tsdb, rerun.tsdb) << "rerun changed the TSDB digest";
  EXPECT_EQ(first.metrics, parallel.metrics) << "worker count changed the metrics digest";
  EXPECT_EQ(first.tsdb, parallel.tsdb) << "worker count changed the TSDB digest";
}

}  // namespace
}  // namespace nephele
