// Randomized differential tests of the system's core invariants: every run
// compares the virtualization stack against a trivially-correct reference
// model under thousands of random operations.

#include <gtest/gtest.h>

#include <map>

#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/sim/rng.h"

namespace nephele {
namespace {

SystemConfig PropertyPool() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  return cfg;
}

DomainConfig PropertyGuest(const std::string& name) {
  DomainConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 4;
  cfg.max_clones = 512;
  cfg.with_vif = false;
  return cfg;
}

// --- Property 1: COW isolation across a whole family, vs a reference map.
//
// A family of domains shares pages COW. The reference model is a per-domain
// byte map: after any interleaving of clones and writes, every domain must
// read exactly what the reference predicts — no write may ever leak to a
// relative, and unwritten bytes must equal the value inherited at clone
// time.

class FamilyCowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FamilyCowProperty, RandomClonesAndWrites) {
  NepheleSystem system(PropertyPool());
  GuestManager guests(system);
  auto root = guests.Launch(PropertyGuest("root"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(root.ok());
  system.Settle();

  GuestMemoryLayout layout = ComputeGuestLayout(PropertyGuest("root"), 1024);
  const Gfn heap0 = static_cast<Gfn>(layout.heap_first_gfn);
  const int kSlots = 24;  // distinct (gfn, offset) cells we operate on

  // Reference: per-domain view of every cell.
  std::map<DomId, std::array<std::uint8_t, kSlots>> reference;
  reference[*root] = {};

  std::vector<DomId> family{*root};
  Rng rng(GetParam());

  for (int step = 0; step < 600; ++step) {
    if (rng.NextBool(0.12) && family.size() < 24) {
      // Clone a random family member.
      DomId parent = family[rng.NextBelow(family.size())];
      std::size_t before = family.size();
      ASSERT_TRUE(guests.ContextOf(parent)->Fork(1, nullptr).ok());
      system.Settle();
      DomId child = system.hypervisor().FindDomain(parent)->children.back();
      ASSERT_NE(child, kDomInvalid);
      family.push_back(child);
      reference[child] = reference[parent];  // inherits the parent's view
      ASSERT_EQ(family.size(), before + 1);
    } else {
      // Random write by a random member to a random cell.
      DomId writer = family[rng.NextBelow(family.size())];
      int slot = static_cast<int>(rng.NextBelow(kSlots));
      std::uint8_t value = static_cast<std::uint8_t>(rng.NextBelow(256));
      Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
      std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
      ASSERT_TRUE(system.hypervisor().WriteGuestPage(writer, gfn, offset, &value, 1).ok());
      reference[writer][static_cast<std::size_t>(slot)] = value;
    }
    // Spot-check three random (domain, cell) pairs every step.
    for (int check = 0; check < 3; ++check) {
      DomId dom = family[rng.NextBelow(family.size())];
      int slot = static_cast<int>(rng.NextBelow(kSlots));
      Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
      std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
      std::uint8_t got = 0;
      ASSERT_TRUE(system.hypervisor().ReadGuestPage(dom, gfn, offset, &got, 1).ok());
      ASSERT_EQ(got, reference[dom][static_cast<std::size_t>(slot)])
          << "dom" << dom << " slot " << slot << " step " << step;
    }
  }

  // Full final sweep over every domain and cell.
  for (DomId dom : family) {
    for (int slot = 0; slot < kSlots; ++slot) {
      Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
      std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
      std::uint8_t got = 0;
      ASSERT_TRUE(system.hypervisor().ReadGuestPage(dom, gfn, offset, &got, 1).ok());
      EXPECT_EQ(got, reference[dom][static_cast<std::size_t>(slot)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyCowProperty, ::testing::Values(101, 202, 303, 404, 505));

// --- Property 2: frame conservation under boot/clone/destroy churn.
//
// Whatever interleaving of boots, clones and destroys runs, the pool must
// balance exactly: free + allocated == total at every step, and destroying
// everything returns the pool to its starting level.

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, PoolBalancesUnderChurn) {
  NepheleSystem system(PropertyPool());
  GuestManager guests(system);
  Rng rng(GetParam());
  std::size_t free_at_start = system.hypervisor().FreePoolFrames();

  std::vector<DomId> live;
  int created = 0;
  for (int step = 0; step < 120; ++step) {
    switch (rng.NextBelow(3)) {
      case 0: {  // boot
        auto dom = guests.Launch(PropertyGuest("churn-" + std::to_string(created++)),
                                 std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
        if (dom.ok()) {
          system.Settle();
          live.push_back(*dom);
        }
        break;
      }
      case 1: {  // clone a random live guest
        if (!live.empty()) {
          DomId parent = live[rng.NextBelow(live.size())];
          std::size_t before = system.hypervisor().FindDomain(parent)->children.size();
          if (guests.ContextOf(parent)->Fork(1, nullptr).ok()) {
            system.Settle();
            const auto& children = system.hypervisor().FindDomain(parent)->children;
            if (children.size() > before) {
              live.push_back(children.back());
            }
          }
        }
        break;
      }
      default: {  // destroy a random live guest
        if (!live.empty()) {
          std::size_t i = rng.NextBelow(live.size());
          // Destroying a guest whose children still exist re-parents them in
          // the hypervisor; the runtime handles each individually.
          (void)guests.Destroy(live[i]);
          system.Settle();
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
    }
    const FrameTable& frames = system.hypervisor().frames();
    ASSERT_EQ(frames.free_frames() + frames.allocated_frames(), frames.total_frames());
  }

  while (!live.empty()) {
    (void)guests.Destroy(live.back());
    live.pop_back();
    system.Settle();
  }
  EXPECT_EQ(system.hypervisor().FreePoolFrames(), free_at_start);
  EXPECT_EQ(system.hypervisor().frames().shared_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty, ::testing::Values(11, 22, 33, 44));

// --- Property 3: clone chains (clone-of-clone-of-...) keep full ancestry
// and memory semantics at arbitrary depth.

class ChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChainProperty, DeepCloneChain) {
  NepheleSystem system(PropertyPool());
  GuestManager guests(system);
  auto root = guests.Launch(PropertyGuest("chain"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(root.ok());
  system.Settle();
  GuestMemoryLayout layout = ComputeGuestLayout(PropertyGuest("chain"), 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);

  int depth = GetParam();
  DomId current = *root;
  for (int level = 0; level < depth; ++level) {
    // Each generation stamps its level before cloning; the clone inherits
    // every ancestor's stamp made before its creation.
    std::uint8_t stamp = static_cast<std::uint8_t>(level + 1);
    ASSERT_TRUE(system.hypervisor()
                    .WriteGuestPage(current, gfn + static_cast<Gfn>(level), 0, &stamp, 1)
                    .ok());
    ASSERT_TRUE(guests.ContextOf(current)->Fork(1, nullptr).ok());
    system.Settle();
    DomId child = system.hypervisor().FindDomain(current)->children.back();
    EXPECT_TRUE(system.hypervisor().IsDescendantOf(child, *root));
    EXPECT_EQ(system.hypervisor().FindDomain(child)->family_root, *root);
    current = child;
  }
  // The deepest clone sees all ancestor stamps.
  for (int level = 0; level < depth; ++level) {
    std::uint8_t got = 0;
    ASSERT_TRUE(system.hypervisor()
                    .ReadGuestPage(current, gfn + static_cast<Gfn>(level), 0, &got, 1)
                    .ok());
    EXPECT_EQ(got, static_cast<std::uint8_t>(level + 1)) << "level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainProperty, ::testing::Values(2, 4, 8, 16));

// --- Property 4: COW isolation survives random fault interleavings.
//
// Same reference model as property 1, but a seeded adversary keeps re-arming
// random fault points with random probability policies while the workload
// runs. Operations are allowed to fail — a failed clone must roll back (the
// child never joins the family, the reference is not updated), a failed
// write must not mutate — but the surviving family's memory must still match
// the reference byte for byte, and the frame pool must balance at every
// step.

class FaultInterleavingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultInterleavingProperty, CowModelHoldsUnderInjectedFaults) {
  NepheleSystem system(PropertyPool());
  GuestManager guests(system);
  auto root = guests.Launch(PropertyGuest("root"), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  ASSERT_TRUE(root.ok());
  system.Settle();

  GuestMemoryLayout layout = ComputeGuestLayout(PropertyGuest("root"), 1024);
  const Gfn heap0 = static_cast<Gfn>(layout.heap_first_gfn);
  const int kSlots = 24;

  std::map<DomId, std::array<std::uint8_t, kSlots>> reference;
  reference[*root] = {};
  std::vector<DomId> family{*root};
  Rng rng(GetParam());
  const std::vector<std::string> points = system.fault_injector().PointNames();
  ASSERT_FALSE(points.empty());

  int clones_succeeded = 0;
  int faults_hit_paths = 0;
  for (int step = 0; step < 400; ++step) {
    // The adversary: occasionally rewire which faults are armed.
    if (rng.NextBool(0.15)) {
      system.fault_injector().DisarmAll();
      // Arm between one and three random points with a random policy.
      std::size_t n = 1 + rng.NextBelow(3);
      for (std::size_t i = 0; i < n; ++i) {
        const std::string& point = points[rng.NextBelow(points.size())];
        FaultSpec spec = rng.NextBool(0.5)
                             ? FaultSpec::NthHit(1 + rng.NextBelow(8))
                             : FaultSpec::WithProbability(0.2, rng.NextU64());
        ASSERT_TRUE(system.fault_injector().Arm(point, spec).ok());
      }
    }

    if (rng.NextBool(0.15) && family.size() < 24) {
      DomId parent = family[rng.NextBelow(family.size())];
      const std::size_t before = system.hypervisor().FindDomain(parent)->children.size();
      Status forked = guests.ContextOf(parent)->Fork(1, nullptr);
      system.Settle();
      if (forked.ok()) {
        // Stage 2 may still have aborted the child; it joined the family
        // only if the parent lists it.
        const auto& children = system.hypervisor().FindDomain(parent)->children;
        if (children.size() > before) {
          DomId child = children.back();
          family.push_back(child);
          reference[child] = reference[parent];
          ++clones_succeeded;
        } else {
          ++faults_hit_paths;
        }
      } else {
        ++faults_hit_paths;
      }
    } else {
      DomId writer = family[rng.NextBelow(family.size())];
      int slot = static_cast<int>(rng.NextBelow(kSlots));
      std::uint8_t value = static_cast<std::uint8_t>(rng.NextBelow(256));
      Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
      std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
      Status wrote = system.hypervisor().WriteGuestPage(writer, gfn, offset, &value, 1);
      if (wrote.ok()) {
        reference[writer][static_cast<std::size_t>(slot)] = value;
      } else {
        ++faults_hit_paths;
      }
    }

    // Pool conservation holds mid-fault, every step.
    const FrameTable& frames = system.hypervisor().frames();
    ASSERT_EQ(frames.free_frames() + frames.allocated_frames(), frames.total_frames());

    // Spot-check the reference model with faults disarmed so the reads
    // themselves cannot fail.
    if (step % 7 == 0) {
      system.fault_injector().DisarmAll();
      for (int check = 0; check < 3; ++check) {
        DomId dom = family[rng.NextBelow(family.size())];
        int slot = static_cast<int>(rng.NextBelow(kSlots));
        Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
        std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
        std::uint8_t got = 0;
        ASSERT_TRUE(system.hypervisor().ReadGuestPage(dom, gfn, offset, &got, 1).ok());
        ASSERT_EQ(got, reference[dom][static_cast<std::size_t>(slot)])
            << "dom" << dom << " slot " << slot << " step " << step;
      }
    }
  }

  // Final sweep, faults off.
  system.fault_injector().DisarmAll();
  for (DomId dom : family) {
    for (int slot = 0; slot < kSlots; ++slot) {
      Gfn gfn = heap0 + static_cast<Gfn>(slot / 4);
      std::size_t offset = (static_cast<std::size_t>(slot) % 4) * 64;
      std::uint8_t got = 0;
      ASSERT_TRUE(system.hypervisor().ReadGuestPage(dom, gfn, offset, &got, 1).ok());
      EXPECT_EQ(got, reference[dom][static_cast<std::size_t>(slot)]);
    }
  }
  // The run must have exercised both sides: some clones made it through,
  // and some operations were actually failed by the adversary.
  EXPECT_GT(clones_succeeded, 0) << "adversary too strong — property vacuous";
  EXPECT_GT(faults_hit_paths, 0) << "adversary too weak — property vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInterleavingProperty,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005));

}  // namespace
}  // namespace nephele
