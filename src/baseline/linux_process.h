// Linux process model used by every baseline series: fork()/COW costs per
// the ON-DEMAND-FORK observation that fork time is dominated by page-table
// copying (Fig. 6 anchors: 0.07 ms at 1 MiB -> 65.2 ms at 4096 MiB for the
// second fork), exec(), COW write faults and SO_REUSEPORT worker groups.

#ifndef SRC_BASELINE_LINUX_PROCESS_H_
#define SRC_BASELINE_LINUX_PROCESS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/result.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace nephele {

using Pid = std::uint32_t;

class LinuxProcessModel {
 public:
  LinuxProcessModel(EventLoop& loop, const CostModel& costs) : loop_(loop), costs_(costs) {}

  struct Process {
    Pid pid = 0;
    Pid parent = 0;
    std::size_t resident_pages = 0;
    // Address space already marked COW by a previous fork: subsequent forks
    // only copy PTEs (Fig. 6 first-vs-second fork gap).
    bool cow_marked = false;
  };

  // fork()+exec() a fresh process with `resident_mb` of touched memory.
  Result<Pid> Spawn(std::size_t resident_mb);

  // fork(): duplicates the process; charges the page-table copy (and the COW
  // marking on the first fork of this address space).
  Result<Pid> Fork(Pid pid);

  // Touches `pages` COW pages (write faults after a fork).
  Status TouchCowPages(Pid pid, std::size_t pages);

  // Grows the resident set (malloc + memset).
  Status GrowResident(Pid pid, std::size_t mb);

  Status Exit(Pid pid);

  const Process* Find(Pid pid) const;
  std::size_t NumProcesses() const { return processes_.size(); }

 private:
  EventLoop& loop_;
  const CostModel& costs_;
  std::map<Pid, Process> processes_;
  Pid next_pid_ = 100;
};

// SO_REUSEPORT worker group: the kernel load-balances new connections across
// N workers sharing one listen address (the NGINX-on-Linux deployment of
// Sec. 7.1). Single-core busy model per worker, with higher jitter than
// pinned unikernel clones (user/kernel switches, shared kernel locks).
class ReuseportServerGroup {
 public:
  struct Config {
    unsigned workers = 1;
    // Anchor: Fig. 7 — NGINX processes reach roughly 26-27k requests/s per
    // worker, below the pinned clones and with more variance.
    SimDuration service_time = SimDuration::Micros(37);
    double jitter = 0.08;
    // Extra per-request cost per additional worker (shared kernel state).
    double contention_per_worker = 0.015;
  };

  ReuseportServerGroup(Config config, std::uint64_t seed) : config_(config), rng_(seed) {
    busy_until_.resize(config.workers);
    // Per-run worker placement luck: unpinned workers land on cores with
    // different cache/neighbour conditions — the run-to-run variance the
    // paper's error bars show for the process deployment.
    worker_factor_.reserve(config.workers);
    for (unsigned i = 0; i < config.workers; ++i) {
      worker_factor_.push_back(std::max(0.85, rng_.NextGaussian(1.0, 0.04)));
    }
  }

  // Dispatches one request arriving at `now` (kernel picks the worker by
  // flow hash); returns its completion time.
  SimTime Submit(const Packet& packet, SimTime now);

  std::uint64_t requests_served() const { return served_; }

 private:
  Config config_;
  Rng rng_;
  std::vector<SimTime> busy_until_;
  std::vector<double> worker_factor_;
  std::uint64_t served_ = 0;
};

}  // namespace nephele

#endif  // SRC_BASELINE_LINUX_PROCESS_H_
