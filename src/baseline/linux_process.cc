#include "src/baseline/linux_process.h"

#include "src/base/units.h"

namespace nephele {

Result<Pid> LinuxProcessModel::Spawn(std::size_t resident_mb) {
  loop_.AdvanceBy(costs_.proc_exec);
  Pid pid = next_pid_++;
  Process p;
  p.pid = pid;
  p.resident_pages = MiBToPages(resident_mb);
  loop_.AdvanceBy(SimDuration::Nanos(
      static_cast<std::int64_t>(p.resident_pages) * costs_.guest_touch_page.ns()));
  processes_[pid] = p;
  return pid;
}

Result<Pid> LinuxProcessModel::Fork(Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return ErrNotFound("no such process");
  }
  Process& parent = it->second;
  loop_.AdvanceBy(costs_.proc_fork_fixed);
  // Page-table entry copies for the whole resident set.
  loop_.AdvanceBy(SimDuration::Nanos(static_cast<std::int64_t>(parent.resident_pages) *
                                     costs_.proc_fork_pte_copy.ns()));
  if (!parent.cow_marked) {
    // First fork: also write-protect every PTE (mark the address space COW).
    loop_.AdvanceBy(SimDuration::Nanos(static_cast<std::int64_t>(parent.resident_pages) *
                                       costs_.proc_fork_pte_protect.ns()));
    parent.cow_marked = true;
  }
  Pid child_pid = next_pid_++;
  Process child = parent;
  child.pid = child_pid;
  child.parent = pid;
  child.cow_marked = true;  // child address space is born COW-marked
  processes_[child_pid] = child;
  return child_pid;
}

Status LinuxProcessModel::TouchCowPages(Pid pid, std::size_t pages) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return ErrNotFound("no such process");
  }
  loop_.AdvanceBy(costs_.proc_cow_fault * static_cast<double>(pages));
  return Status::Ok();
}

Status LinuxProcessModel::GrowResident(Pid pid, std::size_t mb) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return ErrNotFound("no such process");
  }
  std::size_t pages = MiBToPages(mb);
  it->second.resident_pages += pages;
  loop_.AdvanceBy(SimDuration::Nanos(static_cast<std::int64_t>(pages) *
                                     costs_.guest_touch_page.ns()));
  return Status::Ok();
}

Status LinuxProcessModel::Exit(Pid pid) {
  if (processes_.erase(pid) == 0) {
    return ErrNotFound("no such process");
  }
  return Status::Ok();
}

const LinuxProcessModel::Process* LinuxProcessModel::Find(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

SimTime ReuseportServerGroup::Submit(const Packet& packet, SimTime now) {
  std::size_t worker = Layer34Hash(packet) % busy_until_.size();
  double jitter = 1.0 + (rng_.NextDouble() * 2.0 - 1.0) * config_.jitter;
  double contention =
      1.0 + config_.contention_per_worker * static_cast<double>(busy_until_.size() - 1);
  SimDuration service = config_.service_time * (jitter * contention * worker_factor_[worker]);
  SimTime start = busy_until_[worker] < now ? now : busy_until_[worker];
  busy_until_[worker] = start + service;
  ++served_;
  return busy_until_[worker];
}

}  // namespace nephele
