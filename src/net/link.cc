#include "src/net/link.h"

namespace nephele {

FabricLink::FabricLink(EventLoop& loop, std::string name, LinkConfig config,
                       MetricsRegistry* metrics, FaultInjector* faults)
    : loop_(loop), name_(std::move(name)), config_(config) {
  if (metrics != nullptr) {
    c_bytes_ = &metrics->GetCounter("fabric/link_tx_bytes");
    c_packets_ = &metrics->GetCounter("fabric/link_tx_packets");
    c_down_drops_ = &metrics->GetCounter("fabric/link_down_drops");
  }
  if (faults != nullptr) {
    f_link_ = faults->GetPoint("fabric/link");
  }
}

std::size_t FabricLink::PacketCount(std::size_t payload_bytes) const {
  const std::size_t mtu = config_.mtu_bytes == 0 ? 1500 : config_.mtu_bytes;
  return payload_bytes == 0 ? 1 : (payload_bytes + mtu - 1) / mtu;
}

std::size_t FabricLink::WireBytes(std::size_t payload_bytes) const {
  // An empty Packet's wire_size() is exactly the per-frame header overhead.
  const std::size_t header = Packet{}.wire_size();
  return payload_bytes + PacketCount(payload_bytes) * header;
}

Status FabricLink::Transfer(std::size_t payload_bytes) {
  if (down_) {
    if (c_down_drops_ != nullptr) {
      c_down_drops_->Increment();
    }
    return ErrUnavailable("link " + name_ + " is down");
  }
  if (f_link_ != nullptr) {
    if (Status s = f_link_->Poke(); !s.ok()) {
      if (c_down_drops_ != nullptr) {
        c_down_drops_->Increment();
      }
      return s;
    }
  }
  const std::size_t wire = WireBytes(payload_bytes);
  const std::size_t packets = PacketCount(payload_bytes);
  const double gbps = config_.bandwidth_gbps <= 0.0 ? 10.0 : config_.bandwidth_gbps;
  const double serialize_ns = static_cast<double>(wire) * 8.0 / gbps;  // bits / (Gbps) = ns
  loop_.AdvanceBy(config_.latency + SimDuration::Nanos(static_cast<std::int64_t>(serialize_ns)));
  ++transfers_;
  bytes_sent_ += wire;
  if (c_bytes_ != nullptr) {
    c_bytes_->Increment(wire);
  }
  if (c_packets_ != nullptr) {
    c_packets_->Increment(packets);
  }
  return Status::Ok();
}

}  // namespace nephele
