#include "src/net/switch.h"

#include <algorithm>

namespace nephele {

// ---------------------------------------------------------------------------
// Bridge
// ---------------------------------------------------------------------------

Status Bridge::Attach(SwitchPort* port) {
  if (std::find(ports_.begin(), ports_.end(), port) != ports_.end()) {
    return ErrAlreadyExists("port already attached");
  }
  ports_.push_back(port);
  fdb_[port->mac()] = port;
  return Status::Ok();
}

Status Bridge::Detach(SwitchPort* port) {
  auto it = std::find(ports_.begin(), ports_.end(), port);
  if (it == ports_.end()) {
    return ErrNotFound("port not attached");
  }
  ports_.erase(it);
  std::erase_if(fdb_, [port](const auto& kv) { return kv.second == port; });
  return Status::Ok();
}

void Bridge::TransmitFromGuest(SwitchPort* from, const Packet& packet) {
  fdb_[from->mac()] = from;  // learn source
  auto it = fdb_.find(packet.dst_mac);
  if (it != fdb_.end() && it->second != from) {
    it->second->DeliverToGuest(packet);
    return;
  }
  ToUplink(packet);
}

void Bridge::InjectFromUplink(const Packet& packet) {
  auto it = fdb_.find(packet.dst_mac);
  if (it != fdb_.end()) {
    it->second->DeliverToGuest(packet);
    return;
  }
  // Unknown MAC: match on IP (ARP is not modelled), else drop.
  for (SwitchPort* p : ports_) {
    if (p->ip() == packet.dst_ip) {
      p->DeliverToGuest(packet);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Bond
// ---------------------------------------------------------------------------

Status Bond::Attach(SwitchPort* port) {
  if (std::find(slaves_.begin(), slaves_.end(), port) != slaves_.end()) {
    return ErrAlreadyExists("slave already enslaved");
  }
  slaves_.push_back(port);
  return Status::Ok();
}

Status Bond::Detach(SwitchPort* port) {
  auto it = std::find(slaves_.begin(), slaves_.end(), port);
  if (it == slaves_.end()) {
    return ErrNotFound("slave not enslaved");
  }
  slaves_.erase(it);
  return Status::Ok();
}

std::size_t Bond::SelectIndex(const Packet& packet) const {
  return Layer34Hash(packet) % slaves_.size();
}

void Bond::TransmitFromGuest(SwitchPort* /*from*/, const Packet& packet) {
  // Egress through the bond master goes straight to the uplink; the bond is
  // stateless (Sec. 5.2.1: "this approach does not keep any state").
  ToUplink(packet);
}

void Bond::InjectFromUplink(const Packet& packet) {
  if (slaves_.empty()) {
    return;
  }
  slaves_[SelectIndex(packet)]->DeliverToGuest(packet);
}

// ---------------------------------------------------------------------------
// OvsGroup
// ---------------------------------------------------------------------------

OvsGroup::OvsGroup() {
  selector_ = [](const Packet& p, std::size_t buckets) { return Layer34Hash(p) % buckets; };
}

Status OvsGroup::Attach(SwitchPort* port) {
  if (std::find(buckets_.begin(), buckets_.end(), port) != buckets_.end()) {
    return ErrAlreadyExists("bucket already present");
  }
  buckets_.push_back(port);
  return Status::Ok();
}

Status OvsGroup::Detach(SwitchPort* port) {
  auto it = std::find(buckets_.begin(), buckets_.end(), port);
  if (it == buckets_.end()) {
    return ErrNotFound("bucket not present");
  }
  buckets_.erase(it);
  return Status::Ok();
}

void OvsGroup::TransmitFromGuest(SwitchPort* /*from*/, const Packet& packet) {
  ToUplink(packet);
}

void OvsGroup::InjectFromUplink(const Packet& packet) {
  if (buckets_.empty()) {
    return;
  }
  ++flow_counts_[KeyOf(packet)];
  buckets_[selector_(packet, buckets_.size()) % buckets_.size()]->DeliverToGuest(packet);
}

void OvsGroup::UseLeastLoadedSelector() {
  selector_ = [this](const Packet& p, std::size_t num_buckets) -> std::size_t {
    if (bucket_load_.size() != num_buckets) {
      bucket_load_.assign(num_buckets, 0);
      // Recount existing assignments that still fit.
      for (auto& [flow, bucket] : flow_assignment_) {
        if (bucket < num_buckets) {
          ++bucket_load_[bucket];
        }
      }
    }
    FlowKey key = KeyOf(p);
    auto it = flow_assignment_.find(key);
    if (it != flow_assignment_.end() && it->second < num_buckets) {
      return it->second;  // flow affinity
    }
    std::size_t best = 0;
    for (std::size_t b = 1; b < num_buckets; ++b) {
      if (bucket_load_[b] < bucket_load_[best]) {
        best = b;
      }
    }
    flow_assignment_[key] = best;
    ++bucket_load_[best];
    return best;
  };
}

std::size_t OvsGroup::BucketLoad(std::size_t bucket) const {
  return bucket < bucket_load_.size() ? bucket_load_[bucket] : 0;
}

Result<std::uint16_t> FindPortForSlave(Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t dst_port,
                                       IpProto proto, std::size_t num_slaves,
                                       std::size_t want_index, std::uint16_t start_port) {
  if (num_slaves == 0 || want_index >= num_slaves) {
    return ErrInvalidArgument("bad slave index");
  }
  Packet probe;
  probe.proto = proto;
  probe.src_ip = src_ip;
  probe.dst_ip = dst_ip;
  probe.dst_port = dst_port;
  for (std::uint32_t port = start_port; port <= 65535; ++port) {
    probe.src_port = static_cast<std::uint16_t>(port);
    if (Layer34Hash(probe) % num_slaves == want_index) {
      return static_cast<std::uint16_t>(port);
    }
  }
  return ErrNotFound("no port maps to requested slave");
}

}  // namespace nephele
