// FabricLink: one direction of a latency/bandwidth-costed inter-host link.
// Migration and replication streams cross the cluster on these; the cost
// model reuses the packet framing of src/net (Packet::wire_size() charges a
// 54-byte L2+L3+L4 header per frame), so a stream's virtual-time cost is
//
//   latency + (payload + ceil(payload/mtu) * 54 bytes) * 8 / bandwidth
//
// charged synchronously on the shared cluster event loop. Links carry a
// down flag (partition injection) and poke the fabric-level fault point
// "fabric/link" once per transfer, so tests can fail a stream mid-flight
// deterministically.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/fault/fault.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/sim/time.h"

namespace nephele {

struct LinkConfig {
  // One-way propagation delay, charged once per Transfer.
  SimDuration latency = SimDuration::Micros(50);
  // Serialization rate. 10 Gbps is the paper's testbed NIC class.
  double bandwidth_gbps = 10.0;
  // Payload bytes per frame; each frame pays the 54-byte wire header.
  std::size_t mtu_bytes = 1500;
};

class FabricLink {
 public:
  // `metrics` and `faults` may be null (standalone constructions): the link
  // then skips counting and never injects.
  FabricLink(EventLoop& loop, std::string name, LinkConfig config,
             MetricsRegistry* metrics = nullptr, FaultInjector* faults = nullptr);

  FabricLink(const FabricLink&) = delete;
  FabricLink& operator=(const FabricLink&) = delete;

  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return config_; }

  // Partition injection: a down link refuses every Transfer with
  // kUnavailable until brought back up.
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Ships `payload_bytes` across the link, charging propagation latency and
  // per-frame serialization on the loop. Fails with kUnavailable when the
  // link is down, or with whatever the armed "fabric/link" fault injects.
  Status Transfer(std::size_t payload_bytes);

  // Frames a payload the way Transfer charges it: full-MTU packets plus the
  // per-frame header overhead.
  std::size_t WireBytes(std::size_t payload_bytes) const;
  std::size_t PacketCount(std::size_t payload_bytes) const;

  std::uint64_t transfers() const { return transfers_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  EventLoop& loop_;
  std::string name_;
  LinkConfig config_;
  Counter* c_bytes_ = nullptr;
  Counter* c_packets_ = nullptr;
  Counter* c_down_drops_ = nullptr;
  FaultPoint* f_link_ = nullptr;
  bool down_ = false;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace nephele

#endif  // SRC_NET_LINK_H_
