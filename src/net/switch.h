// Dom0 software switching. A HostSwitch multiplexes one physical uplink
// across many vif backend ports:
//   * Bridge      — classic learning bridge (distinct MAC per guest).
//   * Bond        — Linux bonding, balance-xor + layer3+4 policy: all slaves
//                   share one MAC/IP; a flow hash picks the slave. This is
//                   Nephele's stateless option for clone networking (Sec. 5.2.1).
//   * OvsGroup    — Open vSwitch select-group: like bond, but the selector is
//                   pluggable for richer, stateful policies.

#ifndef SRC_NET_SWITCH_H_
#define SRC_NET_SWITCH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/net/packet.h"
#include "src/sim/event_loop.h"

namespace nephele {

// One attachable endpoint (a vif backend). The switch pushes guest-bound
// packets into it.
class SwitchPort {
 public:
  virtual ~SwitchPort() = default;
  virtual void DeliverToGuest(const Packet& packet) = 0;
  virtual MacAddr mac() const = 0;
  virtual Ipv4Addr ip() const = 0;
  virtual std::string port_name() const = 0;
};

// Packets leaving towards the external network (and the host itself) land in
// this sink; benchmark load generators register here.
using UplinkSink = std::function<void(const Packet&)>;

class HostSwitch {
 public:
  virtual ~HostSwitch() = default;

  virtual Status Attach(SwitchPort* port) = 0;
  virtual Status Detach(SwitchPort* port) = 0;
  virtual std::size_t num_ports() const = 0;

  // Guest egress.
  virtual void TransmitFromGuest(SwitchPort* from, const Packet& packet) = 0;
  // Host/external ingress.
  virtual void InjectFromUplink(const Packet& packet) = 0;

  void set_uplink_sink(UplinkSink sink) { uplink_ = std::move(sink); }

 protected:
  void ToUplink(const Packet& packet) {
    if (uplink_) {
      uplink_(packet);
    }
  }

 private:
  UplinkSink uplink_;
};

// Learning bridge keyed by destination MAC; floods unknown destinations to
// the uplink.
class Bridge : public HostSwitch {
 public:
  Status Attach(SwitchPort* port) override;
  Status Detach(SwitchPort* port) override;
  std::size_t num_ports() const override { return ports_.size(); }
  void TransmitFromGuest(SwitchPort* from, const Packet& packet) override;
  void InjectFromUplink(const Packet& packet) override;

 private:
  std::vector<SwitchPort*> ports_;
  std::map<MacAddr, SwitchPort*> fdb_;
};

// Linux bond, balance-xor mode with xmit_hash_policy=layer3+4. Slaves carry
// identical MAC/IP; the layer3+4 hash of an incoming packet selects the
// slave deterministically, so one 5-tuple always reaches the same clone.
class Bond : public HostSwitch {
 public:
  Status Attach(SwitchPort* port) override;
  Status Detach(SwitchPort* port) override;
  std::size_t num_ports() const override { return slaves_.size(); }
  void TransmitFromGuest(SwitchPort* from, const Packet& packet) override;
  void InjectFromUplink(const Packet& packet) override;

  // The slave index the current hash policy picks for `packet`.
  std::size_t SelectIndex(const Packet& packet) const;
  SwitchPort* slave(std::size_t i) const { return slaves_[i]; }

 private:
  std::vector<SwitchPort*> slaves_;
};

// OVS select group: hash-based by default, but the selection function can be
// replaced to implement stateful policies (Sec. 5.2.1 second solution).
class OvsGroup : public HostSwitch {
 public:
  using Selector = std::function<std::size_t(const Packet&, std::size_t num_buckets)>;

  OvsGroup();

  Status Attach(SwitchPort* port) override;
  Status Detach(SwitchPort* port) override;
  std::size_t num_ports() const override { return buckets_.size(); }
  void TransmitFromGuest(SwitchPort* from, const Packet& packet) override;
  void InjectFromUplink(const Packet& packet) override;

  void set_selector(Selector selector) { selector_ = std::move(selector); }

  // Installs a stateful least-loaded selector (the Sec. 5.2.1 motivation for
  // OVS groups: "it can be easily extended for more complex selection
  // criteria that can leverage the state information it keeps"): a new flow
  // goes to the bucket currently serving the fewest flows; known flows stay
  // put.
  void UseLeastLoadedSelector();

  // Per-flow statistics OVS keeps and custom selectors can use.
  std::size_t flows_seen() const { return flow_counts_.size(); }
  // Active-flow count of one bucket under the least-loaded selector.
  std::size_t BucketLoad(std::size_t bucket) const;

 private:
  std::vector<SwitchPort*> buckets_;
  Selector selector_;
  std::map<FlowKey, std::uint64_t> flow_counts_;
  // Least-loaded selector state: flow -> bucket assignment and per-bucket
  // active-flow counts.
  std::map<FlowKey, std::size_t> flow_assignment_;
  std::vector<std::size_t> bucket_load_;
};

// Searches for a source port such that the bond's layer3+4 hash maps the
// tuple (src_ip:port -> dst_ip:dst_port) to slave `want_index` out of
// `num_slaves`. Mirrors the paper's Fig. 4 methodology ("assign a unique
// port number to each UDP server ... so that there were no two different
// <address, port> tuples mapping to the same slave interface").
Result<std::uint16_t> FindPortForSlave(Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t dst_port,
                                       IpProto proto, std::size_t num_slaves,
                                       std::size_t want_index, std::uint16_t start_port = 10000);

}  // namespace nephele

#endif  // SRC_NET_SWITCH_H_
