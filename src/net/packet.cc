#include "src/net/packet.h"

#include <tuple>

namespace nephele {

std::string Ipv4ToString(Ipv4Addr addr) {
  return std::to_string((addr >> 24) & 0xff) + "." + std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." + std::to_string(addr & 0xff);
}

std::uint32_t Layer34Hash(const Packet& p) {
  std::uint32_t h = p.src_ip ^ p.dst_ip;
  h ^= static_cast<std::uint32_t>(p.src_port) ^ (static_cast<std::uint32_t>(p.dst_port) << 16);
  // Final avalanche so consecutive ports spread (fmix32 from MurmurHash3).
  h ^= h >> 16;
  h *= 0x85ebca6b;
  h ^= h >> 13;
  h *= 0xc2b2ae35;
  h ^= h >> 16;
  return h;
}

FlowKey KeyOf(const Packet& p) {
  return FlowKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
}

FlowKey Reversed(const FlowKey& k) {
  return FlowKey{k.dst_ip, k.src_ip, k.dst_port, k.src_port, k.proto};
}

}  // namespace nephele
