// Packet and flow types shared by the guest mini-stack, the split network
// drivers and the Dom0 software switches.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

namespace nephele {

using Ipv4Addr = std::uint32_t;
using MacAddr = std::uint64_t;  // low 48 bits

constexpr Ipv4Addr MakeIpv4(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (static_cast<Ipv4Addr>(a) << 24) | (b << 16) | (c << 8) | d;
}

std::string Ipv4ToString(Ipv4Addr addr);

enum class IpProto : std::uint8_t {
  kUdp = 17,
  kTcp = 6,
};

// TCP segment kinds, at the granularity our flow model needs.
enum class TcpFlag : std::uint8_t {
  kNone = 0,
  kSyn = 1,
  kSynAck = 2,
  kFin = 4,
};

struct Packet {
  IpProto proto = IpProto::kUdp;
  MacAddr src_mac = 0;
  MacAddr dst_mac = 0;
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  TcpFlag tcp_flag = TcpFlag::kNone;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const { return 54 + payload.size(); }
};

// The Linux bonding driver's layer3+4 transmit hash
// (Documentation/networking/bonding.txt): ((src_port ^ dst_port) ^
// ((src_ip ^ dst_ip) & 0xffff...)) — we reproduce the spirit: a symmetric
// hash over the 5-tuple so a flow always picks the same slave.
std::uint32_t Layer34Hash(const Packet& p);

// Exact-match flow key used by connection tables.
struct FlowKey {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  friend bool operator<(const FlowKey& a, const FlowKey& b) {
    return std::tie(a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.proto) <
           std::tie(b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.proto);
  }
  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return std::tie(a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.proto) ==
           std::tie(b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.proto);
  }
};

FlowKey KeyOf(const Packet& p);
// The reverse direction of a flow.
FlowKey Reversed(const FlowKey& k);

}  // namespace nephele

#endif  // SRC_NET_PACKET_H_
