// Function-instance backends for the OpenFaaS-like gateway (Sec. 7.3):
// containers (the vanilla setup — a calibrated model) vs. unikernel clones
// (backed by the real Nephele cloning pipeline).

#ifndef SRC_FAAS_BACKEND_H_
#define SRC_FAAS_BACKEND_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/base/units.h"
#include "src/guest/guest_manager.h"

namespace nephele {

class CloneScheduler;
class RequestCloneDispatcher;

class FunctionBackend {
 public:
  virtual ~FunctionBackend() = default;

  // Deploys the first instance (t=0 of the experiment).
  virtual Status Deploy() = 0;
  // Launches one more instance; it becomes ready asynchronously.
  virtual Status ScaleUp() = 0;
  // Retires one instance. Backends without an instance-recycling path keep
  // the default refusal (the container model has no scale-down rule).
  virtual Status ScaleDown() { return ErrUnimplemented("scale-down not supported"); }

  virtual std::size_t ReadyInstances() const = 0;
  virtual std::size_t TotalInstances() const = 0;
  // Serving capacity of one ready instance, requests/s.
  virtual double CapacityPerInstance() const = 0;
  // Occupied memory right now (Fig. 10's y axis).
  virtual std::size_t MemoryBytes() const = 0;
  // Times (seconds since experiment start) at which instances were reported
  // ready by the orchestrator — Fig. 10's dashed vertical lines.
  virtual const std::vector<double>& ReadinessTimes() const = 0;
};

// The vanilla setup: Kubernetes pods running the function container.
class ContainerBackend : public FunctionBackend {
 public:
  struct Config {
    // First instance includes the image pull (Fig. 10: ready at ~33 s).
    SimDuration first_start_latency = SimDuration::Seconds(33);
    // Subsequent instances: scheduling + container start.
    SimDuration start_latency = SimDuration::Seconds(12);
    std::size_t first_instance_bytes = 90 * kMiB;
    std::size_t instance_bytes = 220 * kMiB;  // "hundreds of megabytes"
    double capacity_rps = 600;                // native Linux stack
  };

  ContainerBackend(EventLoop& loop, Config config) : loop_(loop), config_(config) {}

  Status Deploy() override;
  Status ScaleUp() override;
  std::size_t ReadyInstances() const override { return ready_; }
  std::size_t TotalInstances() const override { return total_; }
  double CapacityPerInstance() const override { return config_.capacity_rps; }
  std::size_t MemoryBytes() const override;
  const std::vector<double>& ReadinessTimes() const override { return readiness_; }

 private:
  void LaunchOne(SimDuration latency);

  EventLoop& loop_;
  Config config_;
  std::size_t ready_ = 0;
  std::size_t total_ = 0;
  SimTime image_pulled_at_;
  std::vector<double> readiness_;
};

// The Nephele setup: the first instance boots a Unikraft+Python guest; every
// further instance is a clone of it (KubeKraft-style packaging).
class UnikernelBackend : public FunctionBackend {
 public:
  struct Config {
    std::size_t memory_mb = 64;
    // Kubernetes-side pod bookkeeping until the instance is *reported*
    // ready; dominates over the ~25 ms clone itself.
    SimDuration k8s_report_latency = SimDuration::Seconds(2);
    SimDuration first_report_latency = SimDuration::Seconds(3);
    // Dom0-side services per instance (pod wrapper, kubelet bookkeeping):
    // part of the "85 MB first / 35 MB subsequent" split of Sec. 7.3.
    std::size_t services_bytes_per_instance = 21 * kMiB;
    // Python interpreter warm-up after the clone: pages the child dirties.
    std::size_t warmup_pages = 2600;
    double capacity_rps = 300;  // lwip stack (Sec. 7.3)
    // Reporting latency for an instance served from the scheduler's warm
    // pool: no pod creation, just marking the endpoint ready again.
    SimDuration warm_report_latency = SimDuration::Millis(200);
  };

  UnikernelBackend(GuestManager& manager, Config config)
      : manager_(manager), config_(config) {}

  // Routes scale-up through `sched` (batching + warm pool) instead of
  // calling Fork directly, and enables ScaleDown: retired instances are
  // released to the scheduler, which resets and parks them. Installs the
  // scheduler's clone executor and evict hook; pass nullptr to detach.
  void AttachScheduler(CloneScheduler* sched);

  // Wires the request-cloning dispatcher onto this fleet: instances join
  // the dispatcher's server set as they report ready, and ScaleDown
  // consults RequestCloneDispatcher::InstancePinned so it never retires
  // the instance holding the only unfinished duplicate of a request (a
  // retired instance's *redundant* duplicate is cancelled instead). Pass
  // nullptr to detach.
  void AttachDispatcher(RequestCloneDispatcher* dispatcher);

  Status Deploy() override;
  Status ScaleUp() override;
  Status ScaleDown() override;
  std::size_t ReadyInstances() const override { return ready_; }
  std::size_t TotalInstances() const override { return instances_.size(); }
  double CapacityPerInstance() const override { return config_.capacity_rps; }
  std::size_t MemoryBytes() const override;
  const std::vector<double>& ReadinessTimes() const override { return readiness_; }

  const std::vector<DomId>& instances() const { return instances_; }

 private:
  void OnInstanceGranted(DomId dom, bool warm);
  void ReportReady(DomId dom);

  GuestManager& manager_;
  Config config_;
  CloneScheduler* sched_ = nullptr;
  RequestCloneDispatcher* dispatcher_ = nullptr;
  std::vector<DomId> instances_;
  std::size_t ready_ = 0;
  std::vector<double> readiness_;
};

class ClusterFabric;

// The multi-host setup: one UnikernelBackend per fabric host, presented to
// the gateway as a single elastic fleet. Scale-up routes to a host by the
// fabric's placement policy (spread = fewest instances, memory-aware/pack =
// free-frame pressure against the pack reserve); scale-down retires from
// the fullest host. Aggregate figures sum the per-host backends.
class ClusterBackend : public FunctionBackend {
 public:
  // `backends[i]` must manage instances on fabric host i. Not owned.
  ClusterBackend(ClusterFabric& fabric, std::vector<UnikernelBackend*> backends);

  Status Deploy() override;
  Status ScaleUp() override;
  Status ScaleDown() override;
  std::size_t ReadyInstances() const override;
  std::size_t TotalInstances() const override;
  double CapacityPerInstance() const override;
  std::size_t MemoryBytes() const override;
  // Merged (sorted) readiness times across hosts, rebuilt on read.
  const std::vector<double>& ReadinessTimes() const override;

  std::size_t InstancesOn(std::size_t host) const;

 private:
  std::size_t PickScaleUpHost() const;

  ClusterFabric& fabric_;
  std::vector<UnikernelBackend*> backends_;
  mutable std::vector<double> merged_readiness_;
};

}  // namespace nephele

#endif  // SRC_FAAS_BACKEND_H_
