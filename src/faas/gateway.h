// OpenFaaS-like gateway with RPS autoscaling (Sec. 7.3): periodically
// queries the load per instance and launches one instance whenever it
// exceeds the threshold. Traffic is modelled at flow level (ab-style load
// generator saturating the deployment), sampled once per second.

#ifndef SRC_FAAS_GATEWAY_H_
#define SRC_FAAS_GATEWAY_H_

#include <functional>
#include <vector>

#include "src/faas/backend.h"
#include "src/sim/event_loop.h"

namespace nephele {

struct GatewayConfig {
  // The autoscaler query period. The paper keeps OpenFaaS's default; our
  // default is shorter so the readiness staircase of Figs. 10-11 lands at
  // comparable times (see EXPERIMENTS.md).
  SimDuration query_interval = SimDuration::Seconds(10);
  // Default requests-per-second scaling threshold (Sec. 7.3).
  double rps_threshold_per_instance = 10.0;
  unsigned instances_per_scale_up = 1;
  std::size_t max_instances = 20;
  // Scale-down rule: retire one instance when the per-instance load drops
  // below this. 0 (the default) disables it — the paper's experiment only
  // scales up; the scheduler bench uses it to exercise the warm pool.
  double scale_down_threshold_per_instance = 0.0;
};

struct GatewaySample {
  double t_seconds = 0;
  double demand_rps = 0;
  double served_rps = 0;
  std::size_t instances_ready = 0;
  std::size_t instances_total = 0;
  double memory_mb = 0;
};

struct GatewayRunResult {
  std::vector<GatewaySample> series;
  std::vector<double> readiness_times;
  double total_served = 0;
};

class LoadGenerator;
class RequestCloneDispatcher;

// Result of a request-level run (RunRequestLoad): the per-second series
// plus the dispatcher's final accounting.
struct RequestRunResult {
  std::vector<GatewaySample> series;
  std::vector<double> readiness_times;
  std::uint64_t generated = 0;
  std::uint64_t wins = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
};

class OpenFaasGateway {
 public:
  OpenFaasGateway(EventLoop& loop, FunctionBackend& backend, GatewayConfig config)
      : loop_(loop), backend_(backend), config_(config) {}

  // Runs the experiment: deploys at t=0, then drives `demand_rps(t)` for
  // `duration`, autoscaling along the way. Returns the per-second series.
  GatewayRunResult Run(SimDuration duration, std::function<double(double)> demand_rps);

  // Request-level run: deploys at t=0, streams `generator`'s arrivals into
  // `dispatcher` for `duration`, then drains the in-flight tail. The same
  // per-second alert rule as Run() applies — demand is the measured arrival
  // rate, served the measured win rate — including
  // scale_down_threshold_per_instance, which the backend's pinning protocol
  // (UnikernelBackend::AttachDispatcher) keeps safe for in-flight cloned
  // duplicates.
  RequestRunResult RunRequestLoad(SimDuration duration, LoadGenerator& generator,
                                  RequestCloneDispatcher& dispatcher);

 private:
  EventLoop& loop_;
  FunctionBackend& backend_;
  GatewayConfig config_;
};

}  // namespace nephele

#endif  // SRC_FAAS_GATEWAY_H_
