#include "src/faas/backend.h"

#include "src/apps/faas_app.h"
#include "src/base/log.h"

namespace nephele {

// ---------------------------------------------------------------------------
// ContainerBackend
// ---------------------------------------------------------------------------

void ContainerBackend::LaunchOne(SimDuration latency) {
  ++total_;
  SimTime ready_at = loop_.Now() + latency;
  // No container can start before the node finished pulling the function
  // image (which the first instance's start latency includes).
  if (ready_at < image_pulled_at_) {
    ready_at = image_pulled_at_ + SimDuration::Millis(400);
  }
  loop_.PostAt(ready_at, [this] {
    ++ready_;
    readiness_.push_back(loop_.Now().ToSeconds());
  });
}

Status ContainerBackend::Deploy() {
  if (total_ != 0) {
    return ErrFailedPrecondition("already deployed");
  }
  image_pulled_at_ = loop_.Now() + config_.first_start_latency;
  LaunchOne(config_.first_start_latency);
  return Status::Ok();
}

Status ContainerBackend::ScaleUp() {
  if (total_ == 0) {
    return ErrFailedPrecondition("not deployed");
  }
  LaunchOne(config_.start_latency);
  return Status::Ok();
}

std::size_t ContainerBackend::MemoryBytes() const {
  if (total_ == 0) {
    return 0;
  }
  return config_.first_instance_bytes + (total_ - 1) * config_.instance_bytes;
}

// ---------------------------------------------------------------------------
// UnikernelBackend
// ---------------------------------------------------------------------------

Status UnikernelBackend::Deploy() {
  if (!instances_.empty()) {
    return ErrFailedPrecondition("already deployed");
  }
  DomainConfig cfg;
  cfg.name = "faas-fn";
  cfg.memory_mb = config_.memory_mb;
  // Unikraft + Python 3.7 + newlib + lwip: ~6 MB binary (Sec. 7.3).
  cfg.image_text_pages = 1400;
  cfg.image_data_pages = 260;
  cfg.max_clones = 1024;
  cfg.with_p9fs = true;  // Python runtime shared via the 9pfs root
  NEPHELE_ASSIGN_OR_RETURN(DomId dom,
                           manager_.Launch(cfg, std::make_unique<FaasApp>(FaasAppConfig{})));
  instances_.push_back(dom);
  // Interpreter warm-up on the first instance (touches resident memory).
  EventLoop& loop = manager_.system().loop();
  loop.Post(SimDuration::Millis(800), [this, dom] {
    GuestContext* ctx = manager_.ContextOf(dom);
    if (ctx != nullptr) {
      (void)ctx->arena().Allocate(config_.warmup_pages * kPageSize, /*resident=*/true);
    }
  });
  loop.Post(config_.first_report_latency, [this] {
    ++ready_;
    readiness_.push_back(manager_.system().loop().Now().ToSeconds());
  });
  return Status::Ok();
}

Status UnikernelBackend::ScaleUp() {
  if (instances_.empty()) {
    return ErrFailedPrecondition("not deployed");
  }
  DomId root = instances_.front();
  UnikernelBackend* self = this;
  std::size_t warmup_pages = config_.warmup_pages;
  SimDuration report_latency = config_.k8s_report_latency;
  return manager_.Fork(
      root,
      1,
      [self, warmup_pages, report_latency](GuestContext& ctx, GuestApp& app,
                                           const ForkResult& r) {
        (void)app;
        if (!r.is_child) {
          return;
        }
        self->instances_.push_back(ctx.id());
        // The clone warms its own interpreter state (COW divergence).
        (void)ctx.arena().Allocate(warmup_pages * kPageSize, /*resident=*/true);
        GuestManager& mgr = ctx.manager();
        mgr.system().loop().Post(report_latency, [self, &mgr] {
          ++self->ready_;
          self->readiness_.push_back(mgr.system().loop().Now().ToSeconds());
        });
      },
      /*caller=*/kDom0);
}

std::size_t UnikernelBackend::MemoryBytes() const {
  std::size_t bytes = instances_.size() * config_.services_bytes_per_instance;
  Hypervisor& hv = manager_.system().hypervisor();
  for (DomId dom : instances_) {
    bytes += hv.DomainOwnedFrames(dom) * kPageSize;
  }
  // Frames the family shares COW sit in dom_cow and are charged once (the
  // whole point of Fig. 10: subsequent instances add only their private
  // divergence).
  bytes += hv.frames().shared_frames() * kPageSize;
  return bytes;
}

}  // namespace nephele
