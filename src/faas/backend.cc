#include "src/faas/backend.h"

#include <algorithm>
#include <memory>

#include "src/apps/faas_app.h"
#include "src/base/log.h"
#include "src/core/fabric.h"
#include "src/load/dispatch.h"
#include "src/sched/scheduler.h"

namespace nephele {

// ---------------------------------------------------------------------------
// ContainerBackend
// ---------------------------------------------------------------------------

void ContainerBackend::LaunchOne(SimDuration latency) {
  ++total_;
  SimTime ready_at = loop_.Now() + latency;
  // No container can start before the node finished pulling the function
  // image (which the first instance's start latency includes).
  if (ready_at < image_pulled_at_) {
    ready_at = image_pulled_at_ + SimDuration::Millis(400);
  }
  loop_.PostAt(ready_at, [this] {
    ++ready_;
    readiness_.push_back(loop_.Now().ToSeconds());
  });
}

Status ContainerBackend::Deploy() {
  if (total_ != 0) {
    return ErrFailedPrecondition("already deployed");
  }
  image_pulled_at_ = loop_.Now() + config_.first_start_latency;
  LaunchOne(config_.first_start_latency);
  return Status::Ok();
}

Status ContainerBackend::ScaleUp() {
  if (total_ == 0) {
    return ErrFailedPrecondition("not deployed");
  }
  LaunchOne(config_.start_latency);
  return Status::Ok();
}

std::size_t ContainerBackend::MemoryBytes() const {
  if (total_ == 0) {
    return 0;
  }
  return config_.first_instance_bytes + (total_ - 1) * config_.instance_bytes;
}

// ---------------------------------------------------------------------------
// UnikernelBackend
// ---------------------------------------------------------------------------

Status UnikernelBackend::Deploy() {
  if (!instances_.empty()) {
    return ErrFailedPrecondition("already deployed");
  }
  DomainConfig cfg;
  cfg.name = "faas-fn";
  cfg.memory_mb = config_.memory_mb;
  // Unikraft + Python 3.7 + newlib + lwip: ~6 MB binary (Sec. 7.3).
  cfg.image_text_pages = 1400;
  cfg.image_data_pages = 260;
  cfg.max_clones = 1024;
  cfg.with_p9fs = true;  // Python runtime shared via the 9pfs root
  NEPHELE_ASSIGN_OR_RETURN(DomId dom,
                           manager_.Launch(cfg, std::make_unique<FaasApp>(FaasAppConfig{})));
  instances_.push_back(dom);
  // Interpreter warm-up on the first instance (touches resident memory).
  EventLoop& loop = manager_.system().loop();
  loop.Post(SimDuration::Millis(800), [this, dom] {
    GuestContext* ctx = manager_.ContextOf(dom);
    if (ctx != nullptr) {
      (void)ctx->arena().Allocate(config_.warmup_pages * kPageSize, /*resident=*/true);
    }
  });
  loop.Post(config_.first_report_latency, [this, dom] { ReportReady(dom); });
  return Status::Ok();
}

void UnikernelBackend::ReportReady(DomId dom) {
  ++ready_;
  readiness_.push_back(manager_.system().loop().Now().ToSeconds());
  // Only instances still in the fleet join the dispatcher's server set — a
  // scale-down may have retired this one while its readiness was in flight.
  if (dispatcher_ != nullptr &&
      std::find(instances_.begin(), instances_.end(), dom) != instances_.end()) {
    dispatcher_->AddFleetInstance(dom);
  }
}

void UnikernelBackend::AttachDispatcher(RequestCloneDispatcher* dispatcher) {
  dispatcher_ = dispatcher;
  if (dispatcher != nullptr) {
    dispatcher->SetFleetMode(true);
  }
}

void UnikernelBackend::AttachScheduler(CloneScheduler* sched) {
  sched_ = sched;
  if (sched == nullptr) {
    return;
  }
  // Scheduled batches still go through GuestManager so children get their
  // runtime plumbing; the continuation only warms the interpreter — instance
  // bookkeeping happens per grant, in OnInstanceGranted.
  std::size_t warmup_pages = config_.warmup_pages;
  sched->SetCloneExecutor([this, warmup_pages](const CloneRequest& req) {
    return manager_.ForkChildren(
        req.parent, req.num_children,
        [warmup_pages](GuestContext& ctx, GuestApp& app, const ForkResult& r) {
          (void)app;
          if (r.is_child) {
            (void)ctx.arena().Allocate(warmup_pages * kPageSize, /*resident=*/true);
          }
        },
        req.caller);
  });
  // Evicted pool children are full guests; tear them down through the
  // manager so their runtime state goes too.
  sched->SetEvictFn([this](DomId dom) { (void)manager_.Destroy(dom); });
}

void UnikernelBackend::OnInstanceGranted(DomId dom, bool warm) {
  instances_.push_back(dom);
  // A warm child's interpreter state survived CloneReset-then-park; it skips
  // pod creation and re-warming entirely.
  SimDuration latency = warm ? config_.warm_report_latency : config_.k8s_report_latency;
  manager_.system().loop().Post(latency, [this, dom] { ReportReady(dom); });
}

Status UnikernelBackend::ScaleDown() {
  if (sched_ == nullptr) {
    return ErrUnimplemented("scale-down requires an attached scheduler");
  }
  if (instances_.size() <= 1) {
    return ErrFailedPrecondition("nothing to scale down");
  }
  // Retire the youngest instance the request layer can spare; the root
  // (front) is never released. An instance serving a *redundant* duplicate
  // (its request has another one unfinished) may be retired — its duplicate
  // is cancelled — but the holder of a request's only unfinished duplicate
  // is pinned until the request resolves.
  std::size_t victim_idx = instances_.size();
  for (std::size_t i = instances_.size(); i-- > 1;) {
    if (dispatcher_ == nullptr || !dispatcher_->InstancePinned(instances_[i])) {
      victim_idx = i;
      break;
    }
  }
  if (victim_idx >= instances_.size()) {
    return ErrUnavailable(
        "every retirable instance holds the only unfinished duplicate of a request");
  }
  DomId victim = instances_[victim_idx];
  instances_.erase(instances_.begin() + static_cast<std::ptrdiff_t>(victim_idx));
  if (ready_ > 0) {
    --ready_;
  }
  if (dispatcher_ != nullptr) {
    dispatcher_->HandleRetiredInstance(victim);
  }
  NEPHELE_ASSIGN_OR_RETURN(ReleaseOutcome outcome, sched_->Release(victim));
  (void)outcome;
  return Status::Ok();
}

Status UnikernelBackend::ScaleUp() {
  if (instances_.empty()) {
    return ErrFailedPrecondition("not deployed");
  }
  DomId root = instances_.front();
  if (sched_ != nullptr) {
    const Domain* d = manager_.system().hypervisor().FindDomain(root);
    if (d == nullptr || d->start_info_gfn == kInvalidGfn) {
      return ErrInternal("root domain incomplete");
    }
    CloneRequest req;
    req.caller = kDom0;
    req.parent = root;
    req.start_info_mfn = d->p2m[d->start_info_gfn].mfn;
    req.num_children = 1;
    // Whether this grant comes warm is decided synchronously inside
    // Acquire; the flag is read back (via the warm-hit counter) before the
    // loop delivers the grant.
    MetricsRegistry& metrics = manager_.system().metrics();
    const std::uint64_t hits_before = metrics.CounterValue("sched/warm_hits");
    auto warm = std::make_shared<bool>(false);
    Status s = sched_->Acquire(req, [this, warm](Result<DomId> r) {
      if (r.ok()) {
        OnInstanceGranted(*r, *warm);
      }
    });
    if (!s.ok()) {
      return s;
    }
    *warm = metrics.CounterValue("sched/warm_hits") > hits_before;
    return Status::Ok();
  }
  UnikernelBackend* self = this;
  std::size_t warmup_pages = config_.warmup_pages;
  SimDuration report_latency = config_.k8s_report_latency;
  return manager_.Fork(
      root,
      1,
      [self, warmup_pages, report_latency](GuestContext& ctx, GuestApp& app,
                                           const ForkResult& r) {
        (void)app;
        if (!r.is_child) {
          return;
        }
        self->instances_.push_back(ctx.id());
        // The clone warms its own interpreter state (COW divergence).
        (void)ctx.arena().Allocate(warmup_pages * kPageSize, /*resident=*/true);
        ctx.manager().system().loop().Post(
            report_latency, [self, dom = ctx.id()] { self->ReportReady(dom); });
      },
      /*caller=*/kDom0);
}

std::size_t UnikernelBackend::MemoryBytes() const {
  std::size_t bytes = instances_.size() * config_.services_bytes_per_instance;
  Hypervisor& hv = manager_.system().hypervisor();
  for (DomId dom : instances_) {
    bytes += hv.DomainOwnedFrames(dom) * kPageSize;
  }
  // Frames the family shares COW sit in dom_cow and are charged once (the
  // whole point of Fig. 10: subsequent instances add only their private
  // divergence).
  bytes += hv.frames().shared_frames() * kPageSize;
  return bytes;
}

// ---------------------------------------------------------------------------
// ClusterBackend
// ---------------------------------------------------------------------------

ClusterBackend::ClusterBackend(ClusterFabric& fabric, std::vector<UnikernelBackend*> backends)
    : fabric_(fabric), backends_(std::move(backends)) {}

std::size_t ClusterBackend::PickScaleUpHost() const {
  // Placement mirrors the cluster scheduler's cold-clone rules on the
  // signals a fleet sees: instance counts for spread, hypervisor frame
  // headroom for pack/memory-aware.
  const PlacementPolicy policy = fabric_.config().placement;
  std::size_t best = 0;
  for (std::size_t i = 1; i < backends_.size(); ++i) {
    switch (policy) {
      case PlacementPolicy::kPack:
        // Stick with the lowest-indexed host that still has frame headroom.
        if (fabric_.host(best).hypervisor().FreePoolFrames() >
            fabric_.config().pack_reserve_frames) {
          continue;
        }
        if (fabric_.host(i).hypervisor().FreePoolFrames() >
            fabric_.host(best).hypervisor().FreePoolFrames()) {
          best = i;
        }
        break;
      case PlacementPolicy::kSpread:
        if (backends_[i]->TotalInstances() < backends_[best]->TotalInstances()) {
          best = i;
        }
        break;
      case PlacementPolicy::kMemoryAware:
        if (fabric_.host(i).hypervisor().FreePoolFrames() >
            fabric_.host(best).hypervisor().FreePoolFrames()) {
          best = i;
        }
        break;
    }
  }
  return best;
}

Status ClusterBackend::Deploy() {
  if (backends_.empty()) {
    return ErrFailedPrecondition("cluster backend has no hosts");
  }
  // Every host deploys its own first instance: the per-host parent each
  // subsequent local clone descends from.
  for (UnikernelBackend* backend : backends_) {
    NEPHELE_RETURN_IF_ERROR(backend->Deploy());
  }
  return Status::Ok();
}

Status ClusterBackend::ScaleUp() {
  if (backends_.empty()) {
    return ErrFailedPrecondition("cluster backend has no hosts");
  }
  return backends_[PickScaleUpHost()]->ScaleUp();
}

Status ClusterBackend::ScaleDown() {
  if (backends_.empty()) {
    return ErrFailedPrecondition("cluster backend has no hosts");
  }
  // Retire from the fullest host; skip hosts already at their floor.
  std::size_t best = backends_.size();
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->TotalInstances() <= 1) {
      continue;
    }
    if (best == backends_.size() ||
        backends_[i]->TotalInstances() > backends_[best]->TotalInstances()) {
      best = i;
    }
  }
  if (best == backends_.size()) {
    return ErrFailedPrecondition("no host has instances to retire");
  }
  return backends_[best]->ScaleDown();
}

std::size_t ClusterBackend::ReadyInstances() const {
  std::size_t n = 0;
  for (const UnikernelBackend* b : backends_) {
    n += b->ReadyInstances();
  }
  return n;
}

std::size_t ClusterBackend::TotalInstances() const {
  std::size_t n = 0;
  for (const UnikernelBackend* b : backends_) {
    n += b->TotalInstances();
  }
  return n;
}

double ClusterBackend::CapacityPerInstance() const {
  return backends_.empty() ? 0.0 : backends_[0]->CapacityPerInstance();
}

std::size_t ClusterBackend::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const UnikernelBackend* b : backends_) {
    bytes += b->MemoryBytes();
  }
  return bytes;
}

const std::vector<double>& ClusterBackend::ReadinessTimes() const {
  merged_readiness_.clear();
  for (const UnikernelBackend* b : backends_) {
    const std::vector<double>& times = b->ReadinessTimes();
    merged_readiness_.insert(merged_readiness_.end(), times.begin(), times.end());
  }
  std::sort(merged_readiness_.begin(), merged_readiness_.end());
  return merged_readiness_;
}

std::size_t ClusterBackend::InstancesOn(std::size_t host) const {
  return host < backends_.size() ? backends_[host]->TotalInstances() : 0;
}

}  // namespace nephele