#include "src/faas/gateway.h"

namespace nephele {

GatewayRunResult OpenFaasGateway::Run(SimDuration duration,
                                      std::function<double(double)> demand_rps) {
  GatewayRunResult result;
  SimTime start = loop_.Now();
  (void)backend_.Deploy();

  const SimDuration tick = SimDuration::Seconds(1);
  SimTime next_query = start + config_.query_interval;

  for (SimTime t = start + tick; t <= start + duration; t = t + tick) {
    loop_.RunUntil(t);
    double rel = (t - start).ToSeconds();
    double demand = demand_rps(rel);
    std::size_t ready = backend_.ReadyInstances();
    double capacity = static_cast<double>(ready) * backend_.CapacityPerInstance();
    double served = std::min(demand, capacity);
    result.total_served += served;

    if (t >= next_query) {
      next_query = next_query + config_.query_interval;
      // OpenFaaS alert rule: load per instance above threshold -> scale.
      std::size_t total = backend_.TotalInstances();
      double unmet = demand - served;
      double per_instance = total > 0 ? (served + unmet) / static_cast<double>(total) : demand;
      if (per_instance > config_.rps_threshold_per_instance &&
          total < config_.max_instances) {
        for (unsigned i = 0; i < config_.instances_per_scale_up; ++i) {
          if (backend_.TotalInstances() >= config_.max_instances) {
            break;
          }
          (void)backend_.ScaleUp();
        }
      } else if (config_.scale_down_threshold_per_instance > 0 && total > 1 &&
                 per_instance < config_.scale_down_threshold_per_instance) {
        (void)backend_.ScaleDown();
      }
    }

    GatewaySample sample;
    sample.t_seconds = rel;
    sample.demand_rps = demand;
    sample.served_rps = served;
    sample.instances_ready = ready;
    sample.instances_total = backend_.TotalInstances();
    sample.memory_mb = static_cast<double>(backend_.MemoryBytes()) / static_cast<double>(kMiB);
    result.series.push_back(sample);
  }
  result.readiness_times = backend_.ReadinessTimes();
  return result;
}

}  // namespace nephele
