#include "src/faas/gateway.h"

#include "src/load/dispatch.h"
#include "src/load/load_gen.h"

namespace nephele {

GatewayRunResult OpenFaasGateway::Run(SimDuration duration,
                                      std::function<double(double)> demand_rps) {
  GatewayRunResult result;
  SimTime start = loop_.Now();
  (void)backend_.Deploy();

  const SimDuration tick = SimDuration::Seconds(1);
  SimTime next_query = start + config_.query_interval;

  for (SimTime t = start + tick; t <= start + duration; t = t + tick) {
    loop_.RunUntil(t);
    double rel = (t - start).ToSeconds();
    double demand = demand_rps(rel);
    std::size_t ready = backend_.ReadyInstances();
    double capacity = static_cast<double>(ready) * backend_.CapacityPerInstance();
    double served = std::min(demand, capacity);
    result.total_served += served;

    if (t >= next_query) {
      next_query = next_query + config_.query_interval;
      // OpenFaaS alert rule: load per instance above threshold -> scale.
      std::size_t total = backend_.TotalInstances();
      double unmet = demand - served;
      double per_instance = total > 0 ? (served + unmet) / static_cast<double>(total) : demand;
      if (per_instance > config_.rps_threshold_per_instance &&
          total < config_.max_instances) {
        for (unsigned i = 0; i < config_.instances_per_scale_up; ++i) {
          if (backend_.TotalInstances() >= config_.max_instances) {
            break;
          }
          (void)backend_.ScaleUp();
        }
      } else if (config_.scale_down_threshold_per_instance > 0 && total > 1 &&
                 per_instance < config_.scale_down_threshold_per_instance) {
        (void)backend_.ScaleDown();
      }
    }

    GatewaySample sample;
    sample.t_seconds = rel;
    sample.demand_rps = demand;
    sample.served_rps = served;
    sample.instances_ready = ready;
    sample.instances_total = backend_.TotalInstances();
    sample.memory_mb = static_cast<double>(backend_.MemoryBytes()) / static_cast<double>(kMiB);
    result.series.push_back(sample);
  }
  result.readiness_times = backend_.ReadinessTimes();
  return result;
}

RequestRunResult OpenFaasGateway::RunRequestLoad(SimDuration duration,
                                                 LoadGenerator& generator,
                                                 RequestCloneDispatcher& dispatcher) {
  RequestRunResult result;
  SimTime start = loop_.Now();
  (void)backend_.Deploy();
  generator.Start(duration,
                  [&dispatcher](const LoadRequest& request) { dispatcher.Submit(request); });

  const SimDuration tick = SimDuration::Seconds(1);
  SimTime next_query = start + config_.query_interval;
  std::uint64_t last_generated = 0;
  std::uint64_t last_wins = 0;

  for (SimTime t = start + tick; t <= start + duration; t = t + tick) {
    loop_.RunUntil(t);
    double rel = (t - start).ToSeconds();
    const std::uint64_t generated = generator.generated();
    const std::uint64_t wins = dispatcher.wins();
    double demand = static_cast<double>(generated - last_generated);
    double served = static_cast<double>(wins - last_wins);
    last_generated = generated;
    last_wins = wins;

    if (t >= next_query) {
      next_query = next_query + config_.query_interval;
      std::size_t total = backend_.TotalInstances();
      double per_instance = total > 0 ? demand / static_cast<double>(total) : demand;
      if (per_instance > config_.rps_threshold_per_instance &&
          total < config_.max_instances) {
        for (unsigned i = 0; i < config_.instances_per_scale_up; ++i) {
          if (backend_.TotalInstances() >= config_.max_instances) {
            break;
          }
          (void)backend_.ScaleUp();
        }
      } else if (config_.scale_down_threshold_per_instance > 0 && total > 1 &&
                 per_instance < config_.scale_down_threshold_per_instance) {
        (void)backend_.ScaleDown();
      }
    }

    GatewaySample sample;
    sample.t_seconds = rel;
    sample.demand_rps = demand;
    sample.served_rps = served;
    sample.instances_ready = backend_.ReadyInstances();
    sample.instances_total = backend_.TotalInstances();
    sample.memory_mb = static_cast<double>(backend_.MemoryBytes()) / static_cast<double>(kMiB);
    result.series.push_back(sample);
  }
  // The generator has stopped; drain the duplicates still in flight so the
  // accounting identity holds on the returned totals.
  loop_.Run();
  result.readiness_times = backend_.ReadinessTimes();
  result.generated = generator.generated();
  result.wins = dispatcher.wins();
  result.cancelled = dispatcher.cancelled();
  result.rejected = dispatcher.rejected();
  return result;
}

}  // namespace nephele
