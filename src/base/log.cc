#include "src/base/log.h"

#include <cstdio>

namespace nephele {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", LevelTag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace nephele
