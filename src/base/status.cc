#include "src/base/status.h"

#include <cassert>
#include <ostream>

namespace nephele {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kAborted:
      return "aborted";
  }
  return "unknown";
}

Status::Status(StatusCode code) : code_(code) {
  assert(code != StatusCode::kOk && "error status must carry an error code");
}

Status::Status(StatusCode code, std::string_view message) : code_(code) {
  assert(code != StatusCode::kOk && "error status must carry an error code");
  if (!message.empty()) {
    message_ = std::make_shared<const std::string>(message);
  }
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (message_ != nullptr) {
    out += ": ";
    out += *message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

Status ErrInvalidArgument(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, msg);
}
Status ErrNotFound(std::string_view msg) { return Status(StatusCode::kNotFound, msg); }
Status ErrAlreadyExists(std::string_view msg) { return Status(StatusCode::kAlreadyExists, msg); }
Status ErrPermissionDenied(std::string_view msg) {
  return Status(StatusCode::kPermissionDenied, msg);
}
Status ErrResourceExhausted(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, msg);
}
Status ErrFailedPrecondition(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, msg);
}
Status ErrOutOfRange(std::string_view msg) { return Status(StatusCode::kOutOfRange, msg); }
Status ErrUnimplemented(std::string_view msg) { return Status(StatusCode::kUnimplemented, msg); }
Status ErrInternal(std::string_view msg) { return Status(StatusCode::kInternal, msg); }
Status ErrUnavailable(std::string_view msg) { return Status(StatusCode::kUnavailable, msg); }
Status ErrAborted(std::string_view msg) { return Status(StatusCode::kAborted, msg); }

}  // namespace nephele
