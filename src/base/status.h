// Lightweight status codes for library-wide, exception-free error handling.
//
// The os-systems idiom (Zircon/Abseil style): functions that can fail return
// `Status`, or `Result<T>` (see src/base/result.h) when they also produce a
// value. `Status` is cheap to copy (code + optional message pointer).

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

namespace nephele {

// Error space shared by every subsystem. Values are stable; new codes are
// appended, never renumbered.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // named entity does not exist
  kAlreadyExists = 3,     // unique-name or id collision
  kPermissionDenied = 4,  // security check failed (e.g. cross-family sharing)
  kResourceExhausted = 5, // out of frames, ports, grant entries, ...
  kFailedPrecondition = 6,// object in the wrong state for this operation
  kOutOfRange = 7,        // index outside a valid range
  kUnimplemented = 8,     // operation not supported (e.g. unikraft syscalls)
  kInternal = 9,          // invariant violation inside the library
  kUnavailable = 10,      // transient: retry later (e.g. ring full)
  kAborted = 11,          // operation cancelled (e.g. transaction conflict)
};

// Returns the canonical lowercase name, e.g. "not_found".
std::string_view StatusCodeName(StatusCode code);

// A status is either OK (no allocation) or an error code with an optional
// human-readable message.
class Status {
 public:
  // OK status.
  constexpr Status() noexcept = default;

  // Error status without a message. `code` must not be kOk (checked in
  // debug builds).
  explicit Status(StatusCode code);

  // Error status. `code` must not be kOk (checked in debug builds).
  Status(StatusCode code, std::string_view message);

  static Status Ok() { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }

  // Empty for OK statuses.
  std::string_view message() const noexcept {
    return message_ == nullptr ? std::string_view() : std::string_view(*message_);
  }

  // "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

  // Streams ToString(), for gtest failure messages and logging.
  friend std::ostream& operator<<(std::ostream& os, const Status& s);

 private:
  StatusCode code_ = StatusCode::kOk;
  // Shared so Status stays cheap to copy. Null for OK and message-less errors.
  std::shared_ptr<const std::string> message_;
};

// Convenience constructors mirroring the code enum.
Status ErrInvalidArgument(std::string_view msg);
Status ErrNotFound(std::string_view msg);
Status ErrAlreadyExists(std::string_view msg);
Status ErrPermissionDenied(std::string_view msg);
Status ErrResourceExhausted(std::string_view msg);
Status ErrFailedPrecondition(std::string_view msg);
Status ErrOutOfRange(std::string_view msg);
Status ErrUnimplemented(std::string_view msg);
Status ErrInternal(std::string_view msg);
Status ErrUnavailable(std::string_view msg);
Status ErrAborted(std::string_view msg);

// Propagates errors: evaluates `expr` (a Status expression) and returns it
// from the enclosing function if it is not OK.
#define NEPHELE_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::nephele::Status nephele_status_tmp_ = (expr);    \
    if (!nephele_status_tmp_.ok()) {                   \
      return nephele_status_tmp_;                      \
    }                                                  \
  } while (false)

}  // namespace nephele

#endif  // SRC_BASE_STATUS_H_
