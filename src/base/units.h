// Byte-size and page arithmetic shared across the tree.

#ifndef SRC_BASE_UNITS_H_
#define SRC_BASE_UNITS_H_

#include <cstddef>
#include <cstdint>

namespace nephele {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

// Xen (and our simulated machine) use 4 KiB frames.
inline constexpr std::size_t kPageSize = 4 * kKiB;
inline constexpr std::size_t kPageShift = 12;

// Entries per page-table page on x86-64 (8-byte entries in a 4 KiB page).
inline constexpr std::size_t kPtEntriesPerPage = 512;

constexpr std::size_t BytesToPages(std::size_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

constexpr std::size_t PagesToBytes(std::size_t pages) { return pages * kPageSize; }

constexpr std::size_t MiBToPages(std::size_t mib) { return mib * kMiB / kPageSize; }

// Number of page-table pages (all levels) needed to map `pages` 4 KiB pages,
// assuming a dense mapping starting at zero: L1 tables + L2 + L3 + one L4.
constexpr std::size_t PageTablePagesFor(std::size_t pages) {
  std::size_t total = 0;
  std::size_t level_pages = pages;
  // Four levels on x86-64; each level divides fan-out by 512.
  for (int level = 0; level < 4; ++level) {
    level_pages = (level_pages + kPtEntriesPerPage - 1) / kPtEntriesPerPage;
    if (level_pages == 0) {
      level_pages = 1;
    }
    total += level_pages;
  }
  return total;
}

}  // namespace nephele

#endif  // SRC_BASE_UNITS_H_
