// Result<T>: value-or-Status, the companion of src/base/status.h.

#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/base/status.h"

namespace nephele {

// Holds either a T or a non-OK Status. Modeled after absl::StatusOr / zx::result.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return ErrNotFound("...");`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(state_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }

  // OK results report StatusCode::kOk.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(state_);
  }

  // Preconditions: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> state_;
};

// Assigns the value of a Result expression to `lhs` or propagates its error.
//   NEPHELE_ASSIGN_OR_RETURN(auto dom, hv.FindDomain(id));
#define NEPHELE_ASSIGN_OR_RETURN(lhs, expr)           \
  NEPHELE_ASSIGN_OR_RETURN_IMPL_(                     \
      NEPHELE_RESULT_CONCAT_(nephele_result_, __LINE__), lhs, expr)

#define NEPHELE_RESULT_CONCAT_INNER_(a, b) a##b
#define NEPHELE_RESULT_CONCAT_(a, b) NEPHELE_RESULT_CONCAT_INNER_(a, b)
#define NEPHELE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

}  // namespace nephele

#endif  // SRC_BASE_RESULT_H_
