// Minimal leveled logging. Components log through a named Logger; global
// verbosity is a process-wide setting so tests and benches stay quiet by
// default.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>
#include <string_view>

namespace nephele {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line: "[level] component: message". Thread-compatible (the
// simulator is single-threaded by design).
void LogMessage(LogLevel level, std::string_view component, std::string_view message);

// Stream-style helper:
//   NEPHELE_LOG(kInfo, "xencloned") << "cloned dom" << id;
#define NEPHELE_LOG(level, component)                                               \
  for (bool nephele_log_once_ = ::nephele::GetLogLevel() <= ::nephele::LogLevel::level; \
       nephele_log_once_; nephele_log_once_ = false)                                \
  ::nephele::LogLine(::nephele::LogLevel::level, component)

// RAII line builder used by NEPHELE_LOG; flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() { LogMessage(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace nephele

#endif  // SRC_BASE_LOG_H_
