// The Mini-OS UDP server of Sec. 6.1: binds a UDP port, notifies the host
// with a UDP packet once ready, then waits for interrupts (echoes traffic).
// The instantiation benchmarks (Figs. 4, 5) measure time-to-ready with this
// app under boot, restore and clone.

#ifndef SRC_APPS_UDP_READY_APP_H_
#define SRC_APPS_UDP_READY_APP_H_

#include <string>

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"

namespace nephele {

struct UdpReadyConfig {
  Ipv4Addr host_ip = MakeIpv4(10, 8, 255, 1);
  std::uint16_t host_port = 9999;
  std::uint16_t listen_port = 7;
  // Source port for the ready notification; the Fig. 4 clone methodology
  // assigns each clone a unique port so bond hashing stays collision-free.
  std::uint16_t src_port = 10000;
};

class UdpReadyApp : public GuestApp {
 public:
  explicit UdpReadyApp(UdpReadyConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  void OnPacket(GuestContext& ctx, const Packet& packet) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "udp-ready"; }

  // Sends the ready notification; fork continuations call this on clones.
  void SendReady(GuestContext& ctx);

  UdpReadyConfig& config() { return config_; }
  std::uint64_t packets_echoed() const { return packets_echoed_; }

 private:
  UdpReadyConfig config_;
  std::uint64_t packets_echoed_ = 0;
};

}  // namespace nephele

#endif  // SRC_APPS_UDP_READY_APP_H_
