// Redis-like in-memory key-value store (Sec. 7.1): SET/GET over TCP and a
// SAVE command that fork()s a clone which serializes the database to the
// 9pfs share and exits — the exact COW-snapshot pattern Redis depends on.
//
// Two populations coexist: explicit keys (fully retrievable; used by tests
// and examples) and mass-inserted synthetic keys (counted and sized but not
// individually materialised, so the Fig. 8 sweep to 10^6 keys stays cheap
// in host memory while still dirtying a realistic number of guest pages).

#ifndef SRC_APPS_REDIS_APP_H_
#define SRC_APPS_REDIS_APP_H_

#include <functional>
#include <map>
#include <string>

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"

namespace nephele {

struct RedisConfig {
  std::uint16_t port = 6379;
  std::string dump_path = "dump.rdb";
  // Approximate stored size per mass-inserted key (key + value + dict
  // entry overhead).
  std::size_t bytes_per_key = 100;
};

class RedisApp : public GuestApp {
 public:
  explicit RedisApp(RedisConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  void OnPacket(GuestContext& ctx, const Packet& packet) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "redis"; }

  // --- direct API (benchmarks/tests drive these without TCP framing) ---
  Status Set(GuestContext& ctx, const std::string& key, const std::string& value);
  Result<std::string> Get(const std::string& key) const;
  // redis-cli --pipe style mass insertion.
  Status MassInsert(GuestContext& ctx, std::size_t keys);
  // BGSAVE: forks; the child serializes and exits. `on_saved` fires (host
  // side) with the clone's domid when the dump is on "disk".
  Status Save(GuestContext& ctx);

  using SaveCallback = std::function<void(DomId child)>;
  void set_on_saved(SaveCallback cb) { on_saved_ = std::move(cb); }

  std::size_t num_keys() const { return kv_.size() + synthetic_keys_; }
  std::size_t dataset_bytes() const;

 private:
  void SerializeAndExit(GuestContext& ctx);

  RedisConfig config_;
  std::map<std::string, std::string> kv_;
  std::size_t synthetic_keys_ = 0;
  SaveCallback on_saved_;
};

}  // namespace nephele

#endif  // SRC_APPS_REDIS_APP_H_
