#include "src/apps/udp_ready_app.h"

namespace nephele {

void UdpReadyApp::OnBoot(GuestContext& ctx) {
  (void)ctx.UdpBind(config_.listen_port);
  SendReady(ctx);
}

void UdpReadyApp::SendReady(GuestContext& ctx) {
  std::string msg = "ready:" + std::to_string(ctx.id());
  (void)ctx.UdpSend(config_.src_port, config_.host_ip, config_.host_port,
                    std::vector<std::uint8_t>(msg.begin(), msg.end()));
}

void UdpReadyApp::OnPacket(GuestContext& ctx, const Packet& packet) {
  if (packet.proto != IpProto::kUdp) {
    return;
  }
  ++packets_echoed_;
  Packet reply = packet;
  std::swap(reply.src_ip, reply.dst_ip);
  std::swap(reply.src_port, reply.dst_port);
  std::swap(reply.src_mac, reply.dst_mac);
  if (ctx.net().frontend() != nullptr) {
    (void)ctx.net().frontend()->Send(reply);
  }
}

std::unique_ptr<GuestApp> UdpReadyApp::CloneApp() const {
  return std::make_unique<UdpReadyApp>(*this);
}

}  // namespace nephele
