#include "src/apps/forkjoin_app.h"

#include <cstring>

#include "src/base/log.h"
#include "src/base/units.h"
#include "src/core/system.h"
#include "src/guest/guest_manager.h"

namespace nephele {

namespace {
// Deterministic dataset byte: cheap to recompute for verification.
std::uint8_t DatasetByte(std::size_t i) {
  return static_cast<std::uint8_t>((i * 131) ^ (i >> 7));
}
}  // namespace

void ForkJoinApp::OnBoot(GuestContext& ctx) {
  Status s = Run(ctx);
  if (!s.ok()) {
    NEPHELE_LOG(kError, "forkjoin") << "run failed: " << s.ToString();
  }
}

std::uint64_t ForkJoinApp::ExpectedSum() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < config_.dataset_kb * kKiB; ++i) {
    sum += DatasetByte(i);
  }
  return sum;
}

Status ForkJoinApp::Run(GuestContext& ctx) {
  // 1. Load the dataset into guest heap pages (dirtying them for real).
  NEPHELE_ASSIGN_OR_RETURN(ArenaBlock block,
                           ctx.arena().Allocate(config_.dataset_kb * kKiB, /*resident=*/true));
  dataset_ = block;
  std::vector<std::uint8_t> chunk(kKiB);
  for (std::size_t off = 0; off < config_.dataset_kb * kKiB; off += chunk.size()) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = DatasetByte(off + i);
    }
    NEPHELE_RETURN_IF_ERROR(ctx.arena().Write(block.offset + off, chunk.data(), chunk.size()));
  }

  // 2. IDC plumbing, created BEFORE the fork so every clone inherits it.
  Hypervisor& hv = ctx.manager().system().hypervisor();
  NEPHELE_ASSIGN_OR_RETURN(auto mq, IdcMessageQueue::Create(hv, ctx.id(), 64));
  results_ = std::move(mq);
  NEPHELE_ASSIGN_OR_RETURN(auto sem, IdcSemaphore::Create(hv, ctx.id(), 0));
  reported_ = std::move(sem);

  // 3. fork() the workers. Each child derives its shard index from its
  // position in the family (the real app would use the domid array the
  // hypervisor filled in for the parent).
  return ctx.Fork(config_.workers,
                  [](GuestContext& fctx, GuestApp& self, const ForkResult& r) {
                    auto& app = static_cast<ForkJoinApp&>(self);
                    if (r.is_child) {
                      Hypervisor& hyp = fctx.manager().system().hypervisor();
                      const Domain* me = hyp.FindDomain(fctx.id());
                      const Domain* parent = hyp.FindDomain(me->parent);
                      unsigned index = 0;
                      for (std::size_t i = 0; i < parent->children.size(); ++i) {
                        if (parent->children[i] == fctx.id()) {
                          index = static_cast<unsigned>(i);
                          break;
                        }
                      }
                      app.WorkerBody(fctx, index);
                    } else {
                      app.ParentCollect(fctx);
                    }
                  });
}

std::unique_ptr<GuestApp> ForkJoinApp::CloneApp() const {
  return std::make_unique<ForkJoinApp>(*this);
}

void ForkJoinApp::WorkerBody(GuestContext& ctx, unsigned index) {
  // Checksum this worker's shard of the COW-shared dataset.
  const std::size_t total_bytes = config_.dataset_kb * kKiB;
  const std::size_t shard = (total_bytes + config_.workers - 1) / config_.workers;
  const std::size_t begin = index * shard;
  const std::size_t end = std::min(total_bytes, begin + shard);
  std::uint64_t sum = 0;
  std::vector<std::uint8_t> buf(kKiB);
  for (std::size_t off = begin; off < end; off += buf.size()) {
    std::size_t n = std::min(buf.size(), end - off);
    if (!ctx.arena().Read(dataset_->offset + off, buf.data(), n).ok()) {
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      sum += buf[i];
    }
  }
  // Report over IDC and exit, fork+exit style.
  std::vector<std::uint8_t> msg(12);
  std::memcpy(msg.data(), &index, 4);
  std::memcpy(msg.data() + 4, &sum, 8);
  (void)results_->Send(ctx.id(), msg);
  (void)reported_->Post(ctx.id());
  ctx.Exit();
}

void ForkJoinApp::ParentCollect(GuestContext& ctx) {
  // Children resumed (and reported) before the parent; drain everything.
  unsigned collected = 0;
  while (collected < config_.workers) {
    auto token = reported_->TryWait(ctx.id());
    if (!token.ok() || !*token) {
      break;  // worker died: report what we have
    }
    auto msg = results_->Receive(ctx.id());
    if (!msg.ok() || msg->size() != 12) {
      break;
    }
    std::uint64_t partial = 0;
    std::memcpy(&partial, msg->data() + 4, 8);
    total_ += partial;
    ++collected;
  }
  done_ = true;
  if (on_done_) {
    on_done_(total_, collected);
  }
}

}  // namespace nephele
