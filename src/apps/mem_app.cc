#include "src/apps/mem_app.h"

#include "src/base/log.h"
#include "src/base/units.h"

namespace nephele {

void MemApp::OnBoot(GuestContext& ctx) {
  auto block = ctx.arena().Allocate(config_.alloc_mb * kMiB, /*resident=*/true);
  if (block.ok()) {
    block_ = *block;
  } else {
    NEPHELE_LOG(kError, "memapp") << "allocation failed: " << block.status().ToString();
  }
  (void)ctx.TcpListen(config_.tcp_port);
}

void MemApp::OnPacket(GuestContext& ctx, const Packet& packet) {
  if (packet.proto != IpProto::kTcp) {
    return;
  }
  std::string cmd(packet.payload.begin(), packet.payload.end());
  if (cmd == "fork") {
    Packet request = packet;
    (void)ctx.Fork(1, [request](GuestContext& fctx, GuestApp& self, const ForkResult& r) {
      (void)self;
      if (!r.is_child) {
        std::string reply = "forked:" + std::to_string(r.children.front());
        (void)fctx.TcpReply(request, std::vector<std::uint8_t>(reply.begin(), reply.end()));
      }
    });
    return;
  }
  std::string reply = "unknown";
  (void)ctx.TcpReply(packet, std::vector<std::uint8_t>(reply.begin(), reply.end()));
}

std::unique_ptr<GuestApp> MemApp::CloneApp() const { return std::make_unique<MemApp>(*this); }

}  // namespace nephele
