// The Fig. 6 workload: allocates a resident chunk of memory, then serves
// fork/clone requests over a simple TCP protocol. Built once as a Linux
// process (src/baseline) and once as this unikernel app; the benchmark
// compares fork vs. clone durations across allocation sizes.

#ifndef SRC_APPS_MEM_APP_H_
#define SRC_APPS_MEM_APP_H_

#include <optional>

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"

namespace nephele {

struct MemAppConfig {
  std::size_t alloc_mb = 1;
  std::uint16_t tcp_port = 4000;
};

class MemApp : public GuestApp {
 public:
  explicit MemApp(MemAppConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  void OnPacket(GuestContext& ctx, const Packet& packet) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "memapp"; }

  bool allocated() const { return block_.has_value(); }
  const ArenaBlock& block() const { return *block_; }

 private:
  MemAppConfig config_;
  std::optional<ArenaBlock> block_;
};

}  // namespace nephele

#endif  // SRC_APPS_MEM_APP_H_
