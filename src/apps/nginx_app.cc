#include "src/apps/nginx_app.h"

namespace nephele {

namespace {
const char kHttpOk[] = "HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\nhello world\n";
}  // namespace

void NginxApp::OnBoot(GuestContext& ctx) {
  (void)ctx.TcpListen(config_.listen_port);
  is_worker_ = true;  // the master also serves; clones inherit this
  if (config_.workers > 1) {
    // fork() the remaining workers; each clone inherits the listening
    // socket state — load balancing happens in Dom0 (bond), so no
    // SO_REUSEPORT analogue is needed in the guest (Sec. 7.1).
    (void)ctx.Fork(config_.workers - 1,
                   [](GuestContext& fctx, GuestApp& self, const ForkResult& r) {
                     auto& app = static_cast<NginxApp&>(self);
                     (void)fctx;
                     (void)r;
                     app.is_worker_ = true;
                   });
  }
}

void NginxApp::OnPacket(GuestContext& ctx, const Packet& packet) {
  if (packet.proto != IpProto::kTcp || packet.dst_port != config_.listen_port) {
    return;
  }
  // Single-core worker queueing model.
  SimTime now = ctx.Now();
  SimTime start = busy_until_ < now ? now : busy_until_;
  double jitter = 1.0 + (rng_.NextDouble() * 2.0 - 1.0) * config_.jitter;
  busy_until_ = start + config_.service_time * jitter;
  ++requests_served_;
  SimDuration reply_in = busy_until_ - now;
  Packet request = packet;
  ctx.Post(reply_in, [request](GuestContext& pctx) {
    (void)pctx.TcpReply(request,
                        std::vector<std::uint8_t>(kHttpOk, kHttpOk + sizeof(kHttpOk) - 1));
  });
}

std::unique_ptr<GuestApp> NginxApp::CloneApp() const {
  auto clone = std::make_unique<NginxApp>(config_);
  clone->is_worker_ = is_worker_;
  return clone;
}

}  // namespace nephele
