// FaaS function runner (Sec. 7.3): a Python-interpreter-on-Unikraft image
// whose runtime is shared via the 9pfs root; serves "Hello World" over HTTP.
// Capacity is a single-core busy model (~300 req/s on the lwip stack per the
// paper, vs ~600 req/s for the container's native stack).

#ifndef SRC_APPS_FAAS_APP_H_
#define SRC_APPS_FAAS_APP_H_

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"

namespace nephele {

struct FaasAppConfig {
  std::uint16_t port = 8080;
  // ~300 requests/s per unikernel instance (Fig. 11).
  SimDuration service_time = SimDuration::Micros(3333);
};

class FaasApp : public GuestApp {
 public:
  explicit FaasApp(FaasAppConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  void OnPacket(GuestContext& ctx, const Packet& packet) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "faas-fn"; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  FaasAppConfig config_;
  std::uint64_t requests_served_ = 0;
  SimTime busy_until_;
};

}  // namespace nephele

#endif  // SRC_APPS_FAAS_APP_H_
