#include "src/apps/faas_app.h"

namespace nephele {

void FaasApp::OnBoot(GuestContext& ctx) { (void)ctx.TcpListen(config_.port); }

void FaasApp::OnPacket(GuestContext& ctx, const Packet& packet) {
  if (packet.proto != IpProto::kTcp || packet.dst_port != config_.port) {
    return;
  }
  SimTime now = ctx.Now();
  SimTime start = busy_until_ < now ? now : busy_until_;
  busy_until_ = start + config_.service_time;
  ++requests_served_;
  Packet request = packet;
  ctx.Post(busy_until_ - now, [request](GuestContext& pctx) {
    static const char kBody[] = "Hello World";
    (void)pctx.TcpReply(request, std::vector<std::uint8_t>(kBody, kBody + sizeof(kBody) - 1));
  });
}

std::unique_ptr<GuestApp> FaasApp::CloneApp() const { return std::make_unique<FaasApp>(*this); }

}  // namespace nephele
