// NGINX-like web server (Sec. 7.1): a master that fork()s worker clones and
// workers that serve HTTP over TCP. In the cloned deployment every worker is
// its own VM pinned to a core, with parent and clone vifs aggregated by a
// Dom0 bond — no socket sharding needed inside the unikernel.
//
// Each worker is modelled as a single-core server with an explicit busy
// horizon: a request entering at t completes at max(t, busy_until) +
// service_time, so N workers genuinely serve in parallel under one virtual
// clock.

#ifndef SRC_APPS_NGINX_APP_H_
#define SRC_APPS_NGINX_APP_H_

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"
#include "src/sim/rng.h"

namespace nephele {

struct NginxConfig {
  std::uint16_t listen_port = 80;
  // Workers to fork at boot (1 = serve from the master alone).
  unsigned workers = 1;
  // Mean per-request service time on a dedicated core. Anchor: Fig. 7 —
  // Unikraft clones reach ~30k requests/s per worker.
  SimDuration service_time = SimDuration::Micros(34);
  // Relative service-time jitter (clones: low — exclusive cores, no
  // user/kernel switches; Sec. 7.1).
  double jitter = 0.02;
};

class NginxApp : public GuestApp {
 public:
  explicit NginxApp(NginxConfig config) : config_(config), rng_(42) {}

  void OnBoot(GuestContext& ctx) override;
  void OnPacket(GuestContext& ctx, const Packet& packet) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "nginx"; }

  std::uint64_t requests_served() const { return requests_served_; }
  bool is_worker() const { return is_worker_; }

 private:
  NginxConfig config_;
  Rng rng_;
  bool is_worker_ = false;
  std::uint64_t requests_served_ = 0;
  SimTime busy_until_;
};

}  // namespace nephele

#endif  // SRC_APPS_NGINX_APP_H_
