// Fork-join data-parallel app — the "compelling use-cases" style of Sec. 2:
// the parent loads a dataset into its heap, fork()s N workers, and each
// worker checksums its shard of the (COW-shared) dataset, reports the
// partial result over an IDC message queue and posts a semaphore; the parent
// aggregates once every worker reported. Workers exit like fork+exit
// children.

#ifndef SRC_APPS_FORKJOIN_APP_H_
#define SRC_APPS_FORKJOIN_APP_H_

#include <functional>
#include <memory>
#include <optional>

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"
#include "src/guest/mq.h"

namespace nephele {

struct ForkJoinConfig {
  std::size_t dataset_kb = 128;
  unsigned workers = 4;
};

class ForkJoinApp : public GuestApp {
 public:
  explicit ForkJoinApp(ForkJoinConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "fork-join"; }

  // Fires on the parent once all workers reported. The sum is over the
  // deterministic dataset; VerifyExpectedSum() recomputes it host-side.
  using DoneCallback = std::function<void(std::uint64_t total, unsigned workers)>;
  void set_on_done(DoneCallback cb) { on_done_ = std::move(cb); }

  // Starts the computation (also invoked by OnBoot).
  Status Run(GuestContext& ctx);

  std::uint64_t ExpectedSum() const;
  bool done() const { return done_; }
  std::uint64_t total() const { return total_; }

 private:
  void WorkerBody(GuestContext& ctx, unsigned index);
  void ParentCollect(GuestContext& ctx);

  ForkJoinConfig config_;
  std::optional<ArenaBlock> dataset_;
  // Shared across the family: the queue/semaphore objects wrap guest memory
  // that the clone first stage keeps genuinely shared.
  std::shared_ptr<IdcMessageQueue> results_;
  std::shared_ptr<IdcSemaphore> reported_;
  bool done_ = false;
  std::uint64_t total_ = 0;
  DoneCallback on_done_;
};

}  // namespace nephele

#endif  // SRC_APPS_FORKJOIN_APP_H_
