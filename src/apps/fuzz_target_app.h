// The Sec. 7.2 fuzz target: an adapter that interprets fuzzer input as a
// sequence of system calls against the unikernel's syscall layer. The
// syscall subsystem is deliberately *partially* supported (as in the paper's
// Unikraft tree), so unsupported calls end the execution early and make the
// observed throughput vary; a "getppid-only" mode provides the stable
// baseline series.

#ifndef SRC_APPS_FUZZ_TARGET_APP_H_
#define SRC_APPS_FUZZ_TARGET_APP_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"

namespace nephele {

struct ExecOutcome {
  // Edge ids covered by this execution (feed the AFL coverage map).
  std::vector<std::uint32_t> coverage;
  // Execution hit an unsupported syscall / fault.
  bool crashed = false;
  // Guest pages dirtied by the execution (restored by clone_reset).
  std::size_t pages_dirtied = 0;
};

struct FuzzTargetConfig {
  // Syscalls 0..63 exist; only [0, implemented_syscalls) are supported.
  unsigned implemented_syscalls = 56;
  // getppid-style trivial mode: every input exercises one always-supported
  // syscall (the Fig. 9 "baseline" series).
  bool trivial_getppid_mode = false;
  // Scratch pages the adapter writes per execution (~3 dirty pages for
  // Unikraft per Sec. 7.2).
  std::size_t scratch_pages = 3;
};

class FuzzTargetApp : public GuestApp {
 public:
  explicit FuzzTargetApp(FuzzTargetConfig config) : config_(config) {}

  void OnBoot(GuestContext& ctx) override;
  std::unique_ptr<GuestApp> CloneApp() const override;
  std::string_view app_name() const override { return "fuzz-target"; }

  // Runs one fuzz input inside the guest. The KFX harness calls this on a
  // clone, then resets it with clone_reset.
  ExecOutcome ExecuteInput(GuestContext& ctx, std::span<const std::uint8_t> input);

  const FuzzTargetConfig& config() const { return config_; }

 private:
  FuzzTargetConfig config_;
  std::optional<ArenaBlock> scratch_;
};

}  // namespace nephele

#endif  // SRC_APPS_FUZZ_TARGET_APP_H_
