#include "src/apps/fuzz_target_app.h"

#include "src/base/units.h"

namespace nephele {

void FuzzTargetApp::OnBoot(GuestContext& ctx) {
  auto block = ctx.arena().Allocate((config_.scratch_pages + 1) * kPageSize, /*resident=*/true);
  if (block.ok()) {
    scratch_ = *block;
  }
}

ExecOutcome FuzzTargetApp::ExecuteInput(GuestContext& ctx, std::span<const std::uint8_t> input) {
  ExecOutcome outcome;
  if (config_.trivial_getppid_mode) {
    outcome.coverage = {1u, 2u, 3u};  // entry, getppid body, return
  } else {
    // Each 4-byte chunk encodes (syscall_nr, arg byte, arg byte, flags).
    for (std::size_t i = 0; i + 4 <= input.size(); i += 4) {
      std::uint32_t nr = input[i] % 64;
      std::uint32_t arg_class = input[i + 1] % 8;
      // Edge ids: syscall entry edge + per-arg-class branch edge.
      outcome.coverage.push_back(100 + nr);
      outcome.coverage.push_back(1000 + nr * 8 + arg_class);
      if (nr >= config_.implemented_syscalls) {
        // Unsupported syscall: the run faults (the paper notes the syscall
        // subsystem "is not fully supported ... and this can generate
        // considerable variations in the fuzzing throughput").
        outcome.coverage.push_back(5000 + nr);
        outcome.crashed = true;
        break;
      }
      if ((input[i + 3] & 0x0f) == 0x0f) {
        // Deep path: extra edge.
        outcome.coverage.push_back(2000 + nr);
      }
    }
  }
  // The execution dirties scratch state inside the guest (restored later by
  // clone_reset).
  if (scratch_.has_value()) {
    std::size_t pages = config_.trivial_getppid_mode ? 1 : config_.scratch_pages;
    for (std::size_t p = 0; p < pages; ++p) {
      std::uint8_t marker = static_cast<std::uint8_t>(input.empty() ? 0 : input[0]);
      (void)ctx.arena().Write(scratch_->offset + p * kPageSize, &marker, 1);
    }
    outcome.pages_dirtied = pages;
  }
  return outcome;
}

std::unique_ptr<GuestApp> FuzzTargetApp::CloneApp() const {
  return std::make_unique<FuzzTargetApp>(*this);
}

}  // namespace nephele
