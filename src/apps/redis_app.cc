#include "src/apps/redis_app.h"

#include "src/base/log.h"
#include "src/core/system.h"
#include "src/guest/guest_manager.h"

namespace nephele {

void RedisApp::OnBoot(GuestContext& ctx) { (void)ctx.TcpListen(config_.port); }

std::size_t RedisApp::dataset_bytes() const {
  std::size_t bytes = synthetic_keys_ * config_.bytes_per_key;
  for (const auto& [k, v] : kv_) {
    bytes += k.size() + v.size() + 48;
  }
  return bytes;
}

Status RedisApp::Set(GuestContext& ctx, const std::string& key, const std::string& value) {
  // Dict entry + SDS strings dirty heap pages like the real allocator would.
  NEPHELE_RETURN_IF_ERROR(
      ctx.arena().Allocate(key.size() + value.size() + 48, /*resident=*/true).status());
  kv_[key] = value;
  return Status::Ok();
}

Result<std::string> RedisApp::Get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) {
    return ErrNotFound(key);
  }
  return it->second;
}

Status RedisApp::MassInsert(GuestContext& ctx, std::size_t keys) {
  if (keys == 0) {
    return Status::Ok();
  }
  NEPHELE_RETURN_IF_ERROR(
      ctx.arena().Allocate(keys * config_.bytes_per_key, /*resident=*/true).status());
  synthetic_keys_ += keys;
  return Status::Ok();
}

void RedisApp::SerializeAndExit(GuestContext& ctx) {
  const CostModel& costs = ctx.manager().system().costs();
  ctx.manager().system().loop().AdvanceBy(costs.redis_serialize_key *
                                          static_cast<double>(num_keys()));
  auto fid = ctx.fs().Create(config_.dump_path);
  if (fid.ok()) {
    // The RDB payload; written through the 9pfs share (Sec. 7.1 runs the
    // baseline against a 9pfs mount as well, as Unikraft supports only
    // 9pfs).
    std::vector<std::uint8_t> payload(dataset_bytes(), 0xAB);
    (void)ctx.fs().Write(*fid, 0, payload);
    (void)ctx.fs().Close(*fid);
  } else {
    NEPHELE_LOG(kError, "redis") << "dump create failed: " << fid.status().ToString();
  }
  if (on_saved_) {
    on_saved_(ctx.id());
  }
  ctx.Exit();
}

Status RedisApp::Save(GuestContext& ctx) {
  return ctx.Fork(1, [](GuestContext& fctx, GuestApp& self, const ForkResult& r) {
    if (r.is_child) {
      static_cast<RedisApp&>(self).SerializeAndExit(fctx);
    }
  });
}

void RedisApp::OnPacket(GuestContext& ctx, const Packet& packet) {
  if (packet.proto != IpProto::kTcp || packet.dst_port != config_.port) {
    return;
  }
  std::string cmd(packet.payload.begin(), packet.payload.end());
  auto reply = [&](const std::string& text) {
    (void)ctx.TcpReply(packet, std::vector<std::uint8_t>(text.begin(), text.end()));
  };
  if (cmd.rfind("SET ", 0) == 0) {
    std::size_t space = cmd.find(' ', 4);
    if (space == std::string::npos) {
      reply("-ERR syntax");
      return;
    }
    Status s = Set(ctx, cmd.substr(4, space - 4), cmd.substr(space + 1));
    reply(s.ok() ? "+OK" : "-ERR oom");
    return;
  }
  if (cmd.rfind("GET ", 0) == 0) {
    auto v = Get(cmd.substr(4));
    reply(v.ok() ? "$" + *v : "$-1");
    return;
  }
  if (cmd == "BGSAVE") {
    Status s = Save(ctx);
    reply(s.ok() ? "+Background saving started" : "-ERR fork failed");
    return;
  }
  if (cmd == "DBSIZE") {
    reply(":" + std::to_string(num_keys()));
    return;
  }
  reply("-ERR unknown command");
}

std::unique_ptr<GuestApp> RedisApp::CloneApp() const { return std::make_unique<RedisApp>(*this); }

}  // namespace nephele
