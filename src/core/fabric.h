// ClusterFabric: N Hosts under one discrete-event loop, connected by a
// simulated network of latency/bandwidth-costed links (src/net/link.h).
// This is the cross-host layer the paper's Sec. 8 leaves open: emigration
// becomes a first-class, typed fabric operation — Migrate(dom, src, dst)
// ships a stop-and-copy stream over the inter-host link and rolls the
// source back cleanly on any link or immigration failure — and parent
// images replicate to peers so cross-host clone placement (ClusterScheduler,
// src/sched/cluster_scheduler.h) can satisfy an Acquire on any host.
//
// Observability: each host keeps its own registry with unchanged metric
// names; the fabric adds its own registry (fabric/..., cluster/...) and
// ExportClusterMetricsJson() merges everything into one deterministic
// export, tagging host metrics "hostN/...". Fabric-level fault points
// ("fabric/link", "fabric/migrate") live in the fabric's own injector so
// per-host fault sweeps keep their exact point surface.

#ifndef SRC_CORE_FABRIC_H_
#define SRC_CORE_FABRIC_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/core/host.h"
#include "src/fault/fault.h"
#include "src/net/link.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"

namespace nephele {

// Where the cluster scheduler places the next child (DESIGN.md §16).
enum class PlacementPolicy : int {
  kPack = 0,        // fill the lowest-indexed host until memory pressure
  kSpread = 1,      // least active children first (load balancing)
  kMemoryAware = 2, // most free hypervisor-pool frames first
};

struct ClusterConfig {
  // Number of hosts in the fabric.
  std::size_t hosts = 1;
  // Per-host configuration; every host is built from this one template.
  SystemConfig host;
  // Every inter-host link (full mesh, one FabricLink per ordered pair).
  LinkConfig link;
  // Default placement policy consumed by ClusterScheduler.
  PlacementPolicy placement = PlacementPolicy::kSpread;
  // kPack: spill to the next host once the packed host's free frame pool
  // dips below this reserve.
  std::size_t pack_reserve_frames = 1024;
};

class ClusterFabric {
 public:
  explicit ClusterFabric(ClusterConfig config = {});

  ClusterFabric(const ClusterFabric&) = delete;
  ClusterFabric& operator=(const ClusterFabric&) = delete;

  EventLoop& loop() { return loop_; }
  std::size_t num_hosts() const { return hosts_.size(); }
  Host& host(std::size_t i) { return *hosts_.at(i); }
  const Host& host(std::size_t i) const { return *hosts_.at(i); }

  // Fabric-level observability: link/migration/replication counters and the
  // cluster scheduler's placement metrics. Host-local metrics stay in each
  // host's registry.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  FaultInjector& fault_injector() { return faults_; }
  const ClusterConfig& config() const { return config_; }

  // The directed link src -> dst (created eagerly at construction).
  FabricLink& link(std::size_t src, std::size_t dst);

  // Partition injection. SetLinkDown cuts one direction; Partition cuts
  // every link touching `host_index` in both directions.
  Status SetLinkDown(std::size_t src, std::size_t dst, bool down);
  Status Partition(std::size_t host_index, bool down);

  // First-class cross-host migration: BeginMigrateOut on the source host
  // (typed kFailedPrecondition for family-linked domains, naming the
  // blocking relatives), stream over the src->dst link, MigrateIn on the
  // destination, then CompleteMigrateOut retires the source copy. Any link
  // fault, injected "fabric/migrate" fault or immigration failure rolls the
  // source back to running via AbortMigrateOut — frame conservation holds
  // on both hosts throughout. Returns the domain's id on the destination.
  Result<DomId> Migrate(DomId dom, std::size_t src_host, std::size_t dst_host);

  // Replicates a (possibly family-rooted) parent image to a peer without
  // disturbing the source: SnapshotDomain pauses, serializes and resumes
  // it, the stream ships over the link, and the destination boots its own
  // copy. Cross-host warm pools clone from these replicas.
  Result<DomId> ReplicateParent(DomId dom, std::size_t src_host, std::size_t dst_host);

  // One deterministic JSON export of the whole cluster: fabric metrics
  // unprefixed, each host's metrics under "hostN/...".
  std::string ExportClusterMetricsJson() const;

  // Runs the shared event loop until idle.
  void Settle() { loop_.Run(); }
  SimTime Now() const { return loop_.Now(); }

 private:
  // Payload bytes a migration/replication stream occupies on the wire.
  static std::size_t StreamPayloadBytes(const MigrationStream& stream);

  ClusterConfig config_;
  EventLoop loop_;
  MetricsRegistry metrics_;
  TraceRecorder trace_{loop_};
  FaultInjector faults_{&metrics_};
  FaultPoint* f_migrate_;
  std::vector<std::unique_ptr<Host>> hosts_;
  // Directed full mesh, keyed (src, dst).
  std::map<std::pair<std::size_t, std::size_t>, std::unique_ptr<FabricLink>> links_;
  Counter& m_migrations_;
  Counter& m_migrations_failed_;
  Counter& m_replications_;
  Counter& m_replications_failed_;
  Histogram& h_migration_ns_;
  Histogram& h_replication_ns_;
};

}  // namespace nephele

#endif  // SRC_CORE_FABRIC_H_
