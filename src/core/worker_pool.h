// A small fixed-size thread pool with one FIFO queue per worker.
//
// The clone engine partitions a batch's children across workers
// deterministically (child i -> worker i % size), so work placement never
// depends on scheduling luck; only the interleaving of the workers' memory
// operations varies between runs, and the engine's staging jobs are written
// to commute. WaitIdle() is the batch barrier: it returns once every queue
// is drained and every worker is parked.
//
// Jobs must not throw and must not touch the pool itself (no nested Submit).

#ifndef SRC_CORE_WORKER_POOL_H_
#define SRC_CORE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nephele {

class WorkerPool {
 public:
  // Spawns `size` threads (at least one). Threads live until destruction.
  explicit WorkerPool(unsigned size);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues `job` on worker `worker % size()`. Jobs on one worker run in
  // submission order.
  void Submit(unsigned worker, std::function<void()> job);

  // Blocks until every worker has an empty queue and is not running a job.
  void WaitIdle();

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;       // signals the worker thread
    std::condition_variable idle_cv;  // signals WaitIdle
    std::deque<std::function<void()>> queue;
    bool busy = false;
    bool stop = false;
    std::thread thread;
  };

  void RunWorker(Worker& w);

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace nephele

#endif  // SRC_CORE_WORKER_POOL_H_
