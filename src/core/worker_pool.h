// A small fixed-size thread pool with one FIFO queue per worker.
//
// The clone engine partitions a batch's children across workers
// deterministically (child i -> worker i % size), so work placement never
// depends on scheduling luck; only the interleaving of the workers' memory
// operations varies between runs, and the engine's staging jobs are written
// to commute. WaitIdle() is the batch barrier: it returns once every queue
// is drained and every worker is parked.
//
// Jobs must not touch the pool itself (no nested Submit). A job that throws
// does not take the worker thread down: the exception is swallowed and
// counted in exceptions_caught().

#ifndef SRC_CORE_WORKER_POOL_H_
#define SRC_CORE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nephele {

class WorkerPool {
 public:
  // Spawns `size` threads (at least one). Threads live until Shutdown() or
  // destruction.
  explicit WorkerPool(unsigned size);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues `job` on worker `worker % size()`. Jobs on one worker run in
  // submission order. After Shutdown() the job is dropped (never run) and
  // counted in rejected_jobs().
  void Submit(unsigned worker, std::function<void()> job);

  // Blocks until every worker has an empty queue and is not running a job.
  void WaitIdle();

  // Drains every queue (pending jobs still run), then joins all threads.
  // Idempotent; the destructor calls it.
  void Shutdown();

  bool shut_down() const { return shut_down_.load(std::memory_order_acquire); }
  // Jobs dropped by Submit() after Shutdown().
  std::uint64_t rejected_jobs() const { return rejected_jobs_.load(std::memory_order_relaxed); }
  // Jobs whose exception was caught by the worker loop.
  std::uint64_t exceptions_caught() const {
    return exceptions_caught_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;       // signals the worker thread
    std::condition_variable idle_cv;  // signals WaitIdle
    std::deque<std::function<void()>> queue;
    bool busy = false;
    bool stop = false;
    std::thread thread;
  };

  void RunWorker(Worker& w);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> rejected_jobs_{0};
  std::atomic<std::uint64_t> exceptions_caught_{0};
};

}  // namespace nephele

#endif  // SRC_CORE_WORKER_POOL_H_
