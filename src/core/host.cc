#include "src/core/host.h"

namespace nephele {

Host::Host(EventLoop& loop, SystemConfig config, std::size_t index)
    : config_(std::move(config)),
      costs_(config_.costs),
      loop_(loop),
      index_(index),
      metrics_prefix_("host" + std::to_string(index) + "/") {
  hv_ = std::make_unique<Hypervisor>(loop_, costs_, config_.hypervisor, &metrics_, &faults_);
  xs_ = std::make_unique<XenstoreDaemon>(loop_, costs_, &metrics_, &faults_);
  devices_ = std::make_unique<DeviceManager>(*hv_, *xs_, loop_, costs_, &faults_);
  toolstack_ = std::make_unique<Toolstack>(*hv_, *xs_, *devices_, loop_, costs_, services());
  engine_ = std::make_unique<CloneEngine>(*hv_, services());
  engine_->SetWorkerThreads(config_.clone_worker_threads);
  engine_->SetLazyConfig(config_.lazy_clone);
  // The toolstack's administrator knob routes through the host so config()
  // keeps reflecting the effective thread count.
  toolstack_->AttachCloneThreadSetter([this](unsigned n) { SetCloneWorkerThreads(n); });
  xencloned_ = std::make_unique<Xencloned>(*hv_, *engine_, *xs_, *devices_, *toolstack_, loop_,
                                           costs_, services());

  // The metrics layer subscribes to the clone path like any other observer.
  clone_metrics_ = std::make_unique<CloneMetricsObserver>(metrics_, loop_);
  engine_->AddObserver(clone_metrics_.get());

  // Route udev events: devices of clones are completed by xencloned, freshly
  // booted ones by the toolstack hotplug scripts.
  devices_->SetUdevHandler([this](const UdevEvent& event) {
    const Domain* d = hv_->FindDomain(event.device.dom);
    if (d != nullptr && d->parent != kDomInvalid) {
      xencloned_->HandleUdev(event);
    } else {
      (void)toolstack_->HandleVifHotplug(event);
    }
  });

  if (config_.start_xencloned) {
    (void)xencloned_->Start();
  }
}

}  // namespace nephele
