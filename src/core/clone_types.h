// Shared types of the CLONEOP hypercall interface (Sec. 5.1).

#ifndef SRC_CORE_CLONE_TYPES_H_
#define SRC_CORE_CLONE_TYPES_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/hypervisor/types.h"
#include "src/sim/time.h"

namespace nephele {

// Subcommands of the single new hypercall.
enum class CloneOpCmd : int {
  kClone = 0,            // guest (or Dom0 on its behalf) requests clones
  kCloneCompletion = 1,  // xencloned reports second-stage completion
  kCloneCow = 2,         // trigger COW explicitly for a page (KFX breakpoints)
  kCloneReset = 3,       // restore a clone's memory to its post-clone state
  kEnableGlobal = 4,     // xencloned enables cloning system-wide
};

// The typed argument block of CLONEOP kClone — what the caller marshals into
// the hypercall. `caller` is the invoking domain (the parent itself on the
// guest path, Dom0 when cloning is driven from outside the VM);
// `start_info_mfn` must name the parent's start_info page (interface check).
struct CloneRequest {
  DomId caller = kDomInvalid;
  DomId parent = kDomInvalid;
  Mfn start_info_mfn = kInvalidMfn;
  unsigned num_children = 1;
};

// Knobs of the clone scheduler (src/sched). Lives here — not in src/sched —
// so SystemConfig can carry the whole knob surface without the core layer
// depending on the scheduler built on top of it.
struct SchedulerConfig {
  // Clone requests for the same parent arriving within this window coalesce
  // into one CloneEngine batch.
  SimDuration batch_window = SimDuration::Millis(2);
  // A parent's pending queue dispatches immediately once it holds this many
  // requests, without waiting for the window to expire.
  unsigned max_batch = 8;
  // Warm children parked per parent; the least-recently-parked child is
  // evicted (destroyed) when a park would exceed this.
  std::size_t warm_pool_capacity = 4;
  // Admission control: pending (queued, not yet dispatched) requests per
  // parent. An acquire that would push the queue past this is rejected with
  // kResourceExhausted instead of growing the queue unboundedly.
  std::size_t max_queue_depth = 32;
  // A queued request not dispatched within this duration fails with
  // kAborted instead of waiting forever.
  SimDuration request_timeout = SimDuration::Seconds(5);
  // Memory-pressure watermark: after every park, warm children are evicted
  // LRU-first until Toolstack::Dom0FreeBytes() is back above this. 0
  // disables pressure eviction.
  std::size_t dom0_low_watermark_bytes = 0;
  // Telemetry feedback (SchedulerAlarmFeedback): while the warm-pool-thrash
  // alarm is raised, the batch window is stretched by this factor — wider
  // windows coalesce more requests per batch, easing churn — and LRU
  // eviction is frozen so the pool stops shedding children it is about to
  // need again. Must be >= 1.
  double thrash_window_multiplier = 4.0;
};

// One entry of the hypervisor -> xencloned notification ring. "A
// notification contains only the minimum required information for xencloned
// to proceed with the second stage" (Sec. 5.1).
struct CloneNotification {
  DomId parent = kDomInvalid;
  DomId child = kDomInvalid;
  Mfn parent_start_info_mfn = kInvalidMfn;
  Mfn child_start_info_mfn = kInvalidMfn;
};

// Bounded ring carrying clone notifications to xencloned. A full ring acts
// as backpressure on the first stage (Sec. 5).
class CloneNotificationRing {
 public:
  explicit CloneNotificationRing(std::size_t capacity = 64) : capacity_(capacity) {}

  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  bool Push(const CloneNotification& n) {
    if (full()) {
      ++dropped_;
      return false;
    }
    entries_.push_back(n);
    return true;
  }

  bool Pop(CloneNotification* out) {
    if (entries_.empty()) {
      return false;
    }
    *out = entries_.front();
    entries_.pop_front();
    return true;
  }

  std::uint64_t backpressure_events() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<CloneNotification> entries_;
  std::uint64_t dropped_ = 0;
};

// Statistics of the clone first stage, for tests and benches.
struct CloneStats {
  // Virtual time at which the last blocked parent was unpaused (set
  // synchronously in clone_completion; benches use it to measure the
  // guest-visible fork() duration).
  SimTime last_parent_resume;
  std::uint64_t clones = 0;
  std::uint64_t pages_shared_first = 0;
  std::uint64_t pages_shared_again = 0;
  std::uint64_t pages_private_copied = 0;
  std::uint64_t pages_idc_shared = 0;
  std::uint64_t resets = 0;
  std::uint64_t reset_pages_restored = 0;
  std::uint64_t explicit_cow_pages = 0;
  // Rollback events: failed first-stage batches unwound plus second-stage
  // aborts reported by xencloned.
  std::uint64_t rollbacks = 0;
};

}  // namespace nephele

#endif  // SRC_CORE_CLONE_TYPES_H_
