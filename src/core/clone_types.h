// Shared types of the CLONEOP hypercall interface (Sec. 5.1).

#ifndef SRC_CORE_CLONE_TYPES_H_
#define SRC_CORE_CLONE_TYPES_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/hypervisor/types.h"
#include "src/sim/time.h"

namespace nephele {

// Subcommands of the single new hypercall.
enum class CloneOpCmd : int {
  kClone = 0,            // guest (or Dom0 on its behalf) requests clones
  kCloneCompletion = 1,  // xencloned reports second-stage completion
  kCloneCow = 2,         // trigger COW explicitly for a page (KFX breakpoints)
  kCloneReset = 3,       // restore a clone's memory to its post-clone state
  kEnableGlobal = 4,     // xencloned enables cloning system-wide
};

// The typed argument block of CLONEOP kClone — what the caller marshals into
// the hypercall. `caller` is the invoking domain (the parent itself on the
// guest path, Dom0 when cloning is driven from outside the VM);
// `start_info_mfn` must name the parent's start_info page (interface check).
struct CloneRequest {
  CloneRequest() = default;
  // Positional convenience for the overwhelmingly common eager call shape
  // Clone({caller, parent, start_info_mfn, n}); lazy callers append the
  // mode flag and an optional hot-page hint.
  CloneRequest(DomId caller_in, DomId parent_in, Mfn start_info_mfn_in,
               unsigned num_children_in = 1, bool lazy_in = false,
               std::vector<Gfn> hot_pages_in = {})
      : caller(caller_in),
        parent(parent_in),
        start_info_mfn(start_info_mfn_in),
        num_children(num_children_in),
        lazy(lazy_in),
        hot_pages(std::move(hot_pages_in)) {}

  DomId caller = kDomInvalid;
  DomId parent = kDomInvalid;
  Mfn start_info_mfn = kInvalidMfn;
  unsigned num_children = 1;
  // Post-copy mode: stage 1 maps only the hot working set (specials, private
  // pages, the parent's dirty/recently-touched pages and the explicit
  // `hot_pages` hint below) and defers the remaining COW-shareable pages,
  // which stream in afterwards (LazyCloneConfig) or demand-fault on touch.
  bool lazy = false;
  // Caller-supplied working-set hint: gfns to map eagerly in a lazy clone.
  // Out-of-range entries are ignored. Unused for eager clones.
  std::vector<Gfn> hot_pages;
};

// Knobs of the lazy-clone (post-copy) background prefetcher. Like
// SchedulerConfig this lives here so SystemConfig carries the knob surface.
struct LazyCloneConfig {
  // Master gate: when false, requests with lazy=true degrade to eager
  // full-copy clones (every page mapped in stage 1).
  bool enabled = true;
  // Pages materialised per prefetcher batch.
  std::size_t stream_batch_pages = 64;
  // Delay between consecutive prefetcher batches of one child (the stream's
  // rate limit).
  SimDuration stream_interval = SimDuration::Micros(250);
  // When false the background prefetcher never runs on its own: pages
  // materialise only via demand faults, explicit StreamPump() calls, or
  // FinishStreaming(). The DST executor and the hvfuzz harness use manual
  // mode to open deterministic mid-stream windows between ops.
  bool auto_stream = true;
  // Cap on the number of recently-touched parent pages seeded into the hot
  // set (beyond specials, private pages and the explicit hint). On a parent
  // whose pages are all still writable — never cloned before — this cap is
  // what keeps a lazy clone from degrading to eager.
  std::size_t max_hot_pages = 128;
};

// Knobs of the clone scheduler (src/sched). Lives here — not in src/sched —
// so SystemConfig can carry the whole knob surface without the core layer
// depending on the scheduler built on top of it.
struct SchedulerConfig {
  // Clone requests for the same parent arriving within this window coalesce
  // into one CloneEngine batch.
  SimDuration batch_window = SimDuration::Millis(2);
  // A parent's pending queue dispatches immediately once it holds this many
  // requests, without waiting for the window to expire.
  unsigned max_batch = 8;
  // Warm children parked per parent; the least-recently-parked child is
  // evicted (destroyed) when a park would exceed this.
  std::size_t warm_pool_capacity = 4;
  // Admission control: pending (queued, not yet dispatched) requests per
  // parent. An acquire that would push the queue past this is rejected with
  // kResourceExhausted instead of growing the queue unboundedly.
  std::size_t max_queue_depth = 32;
  // A queued request not dispatched within this duration fails with
  // kAborted instead of waiting forever.
  SimDuration request_timeout = SimDuration::Seconds(5);
  // Memory-pressure watermark: after every park, warm children are evicted
  // LRU-first until Toolstack::Dom0FreeBytes() is back above this. 0
  // disables pressure eviction.
  std::size_t dom0_low_watermark_bytes = 0;
  // Telemetry feedback (SchedulerAlarmFeedback): while the warm-pool-thrash
  // alarm is raised, the batch window is stretched by this factor — wider
  // windows coalesce more requests per batch, easing churn — and LRU
  // eviction is frozen so the pool stops shedding children it is about to
  // need again. Must be >= 1.
  double thrash_window_multiplier = 4.0;
  // Dispatch cold batches as lazy (post-copy) clones: children are granted
  // as soon as their hot working set is mapped and stream the rest in the
  // background. Release() finishes a child's stream before parking it, so
  // warm hits always hand out fully-mapped domains.
  bool lazy_dispatch = false;
};

// Arrival processes of the open-loop load generator (src/load/arrival.h).
enum class ArrivalKind : int {
  kPoisson = 0,  // homogeneous: i.i.d. exponential inter-arrival gaps
  kBursty = 1,   // two-state MMPP: calm/burst rates with exponential dwells
  kDiurnal = 2,  // nonhomogeneous Poisson, sinusoidal rate, sampled by thinning
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // Mean arrival rate (requests/s): the Poisson rate, the MMPP calm-state
  // rate, and the baseline the diurnal sinusoid swings around. Must be > 0.
  double rate_rps = 200.0;
  // kBursty only: burst-state rate and the mean exponential dwell times.
  double burst_rate_rps = 2000.0;
  SimDuration calm_dwell_mean = SimDuration::Seconds(2);
  SimDuration burst_dwell_mean = SimDuration::Millis(250);
  // kDiurnal only: rate(t) = rate_rps * (1 + amplitude * sin(2*pi*t/period)).
  double diurnal_amplitude = 0.8;  // in [0, 1)
  SimDuration diurnal_period = SimDuration::Seconds(120);
};

// Knobs of the heavy-traffic request layer (src/load): the open-loop load
// generator and the request-cloning dispatcher. Lives here — like
// SchedulerConfig — so SystemConfig carries the whole knob surface without
// the core layer depending on the request layer built on top of it.
struct LoadConfig {
  ArrivalConfig arrival;
  // Seed of the whole request layer (arrival gaps, user-id draws, service
  // times): one (config, seed) pair reproduces a run byte for byte.
  std::uint64_t seed = 1;
  // Simulated user population: each request carries a user id drawn
  // uniformly from [0, user_population). Users are per-request records, not
  // simulated objects — millions of users cost one id draw per request.
  std::uint64_t user_population = 10'000'000;
  // Request cloning (arXiv 2002.04416): every request is duplicated to this
  // many cloned instances; the first response wins, the losers are
  // cancelled immediately and their instances released to the warm pool.
  unsigned clone_factor = 2;
  // Scheduler-mode service slots (the c servers of the queueing model): at
  // most this many duplicates hold an acquired instance at once; the rest
  // wait in the dispatcher's FIFO.
  std::size_t max_concurrent = 8;
  // Pending duplicates the dispatcher queues; overflow rejects.
  std::size_t max_pending = 4096;
  // Per-request service demand, priced by the cost model: touching
  // `service_pages` guest pages, `service_p9_rpcs` 9p RPCs and
  // `service_net_packets` packets through the split driver. Each
  // duplicate's actual service time is that base scaled by an independent
  // Exp(1) draw — the i.i.d. assumption that makes first-response-wins cut
  // the tail.
  std::size_t service_pages = 512;
  std::size_t service_p9_rpcs = 4;
  std::size_t service_net_packets = 8;
  // Recent win latencies backing the req/latency_p99_ns gauge (the series
  // the req_tail alarm watches).
  std::size_t tail_window = 256;
};

// One entry of the hypervisor -> xencloned notification ring. "A
// notification contains only the minimum required information for xencloned
// to proceed with the second stage" (Sec. 5.1).
struct CloneNotification {
  DomId parent = kDomInvalid;
  DomId child = kDomInvalid;
  Mfn parent_start_info_mfn = kInvalidMfn;
  Mfn child_start_info_mfn = kInvalidMfn;
};

// Bounded ring carrying clone notifications to xencloned. A full ring acts
// as backpressure on the first stage (Sec. 5).
class CloneNotificationRing {
 public:
  explicit CloneNotificationRing(std::size_t capacity = 64) : capacity_(capacity) {}

  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  bool Push(const CloneNotification& n) {
    if (full()) {
      ++dropped_;
      return false;
    }
    entries_.push_back(n);
    return true;
  }

  bool Pop(CloneNotification* out) {
    if (entries_.empty()) {
      return false;
    }
    *out = entries_.front();
    entries_.pop_front();
    return true;
  }

  std::uint64_t backpressure_events() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<CloneNotification> entries_;
  std::uint64_t dropped_ = 0;
};

// Statistics of the clone first stage, for tests and benches.
struct CloneStats {
  // Virtual time at which the last blocked parent was unpaused (set
  // synchronously in clone_completion; benches use it to measure the
  // guest-visible fork() duration).
  SimTime last_parent_resume;
  std::uint64_t clones = 0;
  std::uint64_t pages_shared_first = 0;
  std::uint64_t pages_shared_again = 0;
  std::uint64_t pages_private_copied = 0;
  std::uint64_t pages_idc_shared = 0;
  std::uint64_t resets = 0;
  std::uint64_t reset_pages_restored = 0;
  std::uint64_t explicit_cow_pages = 0;
  // Lazy (post-copy) cloning.
  std::uint64_t lazy_clones = 0;
  std::uint64_t pages_deferred = 0;
  std::uint64_t pages_streamed = 0;
  std::uint64_t lazy_demand_faults = 0;
  // Rollback events: failed first-stage batches unwound plus second-stage
  // aborts reported by xencloned.
  std::uint64_t rollbacks = 0;
};

}  // namespace nephele

#endif  // SRC_CORE_CLONE_TYPES_H_
