// Host: one fully-wired virtualization host — hypervisor, Xenstore, device
// backends, toolstack, clone engine and xencloned — running on a shared
// discrete-event loop owned by the ClusterFabric (src/core/fabric.h). Every
// host keeps its own MetricsRegistry, TraceRecorder and FaultInjector, so a
// host's observable behaviour (metric names, golden exports, fault-point
// sets) is identical whether it runs alone behind the NepheleSystem facade
// or as one of N fabric peers; cluster-level exports tag each host's metrics
// with its `metrics_prefix()` ("hostN/") instead of renaming them in place.

#ifndef SRC_CORE_HOST_H_
#define SRC_CORE_HOST_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/core/clone_engine.h"
#include "src/core/xencloned.h"
#include "src/devices/device_manager.h"
#include "src/fault/fault.h"
#include "src/hypervisor/hypervisor.h"
#include "src/obs/clone_metrics.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"
#include "src/toolstack/toolstack.h"
#include "src/xenstore/store.h"

namespace nephele {

// The single source of truth for every host-side knob. Runtime setters
// (Host::SetCloneWorkerThreads, Toolstack::SetCloneWorkerThreads) are thin
// forwards that update this struct and push the value down; reading
// Host::config() always reflects the current effective settings.
struct SystemConfig {
  HypervisorConfig hypervisor;
  CostModel costs;
  // Start xencloned (and enable cloning globally) at construction.
  bool start_xencloned = true;
  // Host threads staging clone batches. 1 = serial; results are identical
  // at any setting.
  unsigned clone_worker_threads = 1;
  // Clone-scheduler knobs (batch window, max batch, warm-pool capacity,
  // queue depth, ...). Consumed by CloneScheduler(Host&).
  SchedulerConfig sched;
  // Lazy-clone (post-copy) knobs: prefetcher batch size, rate limit,
  // auto/manual streaming. Consumed by CloneEngine for requests with
  // CloneRequest::lazy set.
  LazyCloneConfig lazy_clone;
  // Telemetry-pipeline knobs (tick interval, ring capacity). Consumed by
  // TsdbCollector(host.metrics(), host.loop(), host.config().tsdb); like
  // the scheduler, hosts that never collect pay nothing.
  TsdbConfig tsdb;
  // Heavy-traffic request-layer knobs (arrival process, clone factor,
  // service model). Consumed by LoadGenerator(Host&) and
  // RequestCloneDispatcher(Host&, CloneScheduler&); hosts that never
  // generate load pay nothing.
  LoadConfig load;
};

class Host {
 public:
  // `loop` outlives the host; the fabric owns it. `index` names the host in
  // cluster-level exports ("host0/", "host1/", ...).
  explicit Host(EventLoop& loop, SystemConfig config = {}, std::size_t index = 0);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  EventLoop& loop() { return loop_; }
  const CostModel& costs() const { return costs_; }
  Hypervisor& hypervisor() { return *hv_; }
  const Hypervisor& hypervisor() const { return *hv_; }
  XenstoreDaemon& xenstore() { return *xs_; }
  DeviceManager& devices() { return *devices_; }
  Toolstack& toolstack() { return *toolstack_; }
  CloneEngine& clone_engine() { return *engine_; }
  Xencloned& xencloned() { return *xencloned_; }

  // This host's position in the fabric and its tag in cluster exports.
  std::size_t index() const { return index_; }
  const std::string& metrics_prefix() const { return metrics_prefix_; }

  // The host-wide observability surface: every subsystem of this host
  // records into this one registry, so MetricsRegistry::ExportJson() is the
  // whole story of a single-host run. Deterministic for a seeded scenario.
  // Names are NOT host-prefixed here — ExportMergedJson applies the prefix
  // at the cluster level, keeping single-host golden exports stable.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }

  // The host-wide deterministic fault injector. Every subsystem registers
  // its fault points here at construction; tests arm them by name (see
  // src/fault/fault.h). Fabric-level points (fabric/link, fabric/migrate)
  // live in ClusterFabric::fault_injector(), not here, so per-host fault
  // sweeps keep enumerating exactly the host-local surface.
  FaultInjector& fault_injector() { return faults_; }

  // The service bundle (metrics + trace + faults) components constructed on
  // top of this host (GuestManager, CloneScheduler, ...) should receive.
  SystemServices services() { return SystemServices{&metrics_, &trace_, &faults_}; }

  // The effective configuration. Runtime setters below keep it current, so
  // this is always what the host is actually running with.
  const SystemConfig& config() const { return config_; }

  // Single entry point for retuning clone staging parallelism at runtime:
  // updates config() and forwards to the engine. Toolstack's administrator
  // knob is wired here too, so every path converges on one source of truth.
  void SetCloneWorkerThreads(unsigned n) {
    config_.clone_worker_threads = n == 0 ? 1 : n;
    engine_->SetWorkerThreads(n);
  }

  // Runs the (shared) event loop until idle.
  void Settle() { loop_.Run(); }
  SimTime Now() const { return loop_.Now(); }

 private:
  SystemConfig config_;
  CostModel costs_;
  EventLoop& loop_;
  std::size_t index_;
  std::string metrics_prefix_;
  MetricsRegistry metrics_;  // constructed before every subsystem using it
  TraceRecorder trace_{loop_};
  FaultInjector faults_{&metrics_};
  std::unique_ptr<Hypervisor> hv_;
  std::unique_ptr<XenstoreDaemon> xs_;
  std::unique_ptr<DeviceManager> devices_;
  std::unique_ptr<Toolstack> toolstack_;
  std::unique_ptr<CloneEngine> engine_;
  std::unique_ptr<Xencloned> xencloned_;
  std::unique_ptr<CloneMetricsObserver> clone_metrics_;
};

}  // namespace nephele

#endif  // SRC_CORE_HOST_H_
