// SMP mitigation helper — the paper's closing future-work idea (Sec. 9):
// "lack of SMP support can be mitigated by running clones on different
// CPUs." Pins every member of a clone family to its own physical CPU,
// round-robin, the way the Fig. 7 NGINX deployment pins one worker per core.

#ifndef SRC_CORE_SMP_H_
#define SRC_CORE_SMP_H_

#include <vector>

#include "src/base/result.h"
#include "src/hypervisor/hypervisor.h"

namespace nephele {

// All family members of `root` (root + descendants), in creation order.
std::vector<DomId> CollectFamily(const Hypervisor& hv, DomId root);

// Assigns vCPU affinities round-robin across [0, num_cpus). Returns the
// number of domains pinned. Existing pins are overwritten.
Result<std::size_t> PinFamilyAcrossCpus(Hypervisor& hv, DomId root, int num_cpus);

}  // namespace nephele

#endif  // SRC_CORE_SMP_H_
