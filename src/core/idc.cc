#include "src/core/idc.h"

namespace nephele {

Result<IdcRegion> IdcRegion::Create(Hypervisor& hv, DomId owner, std::size_t pages) {
  if (pages == 0) {
    return ErrInvalidArgument("empty region");
  }
  hv.ChargeHypercall();
  NEPHELE_ASSIGN_OR_RETURN(Gfn first, hv.PopulatePhysmap(owner, pages, PageRole::kIdcShared));
  // Grant the whole region to whatever clones the owner will have (the
  // DOMID_CHILD wildcard, Sec. 5.1). A grant failure mid-region unwinds the
  // grants already made so no half-granted region survives; the populated
  // pages stay charged to the owner and are reclaimed at domain destruction.
  std::vector<GrantRef> granted;
  granted.reserve(pages);
  for (std::size_t i = 0; i < pages; ++i) {
    auto ref = hv.GrantAccess(owner, kDomChild, first + static_cast<Gfn>(i), false);
    if (!ref.ok()) {
      for (std::size_t j = granted.size(); j-- > 0;) {
        (void)hv.EndGrantAccess(owner, granted[j]);
      }
      return ref.status();
    }
    granted.push_back(*ref);
  }
  return IdcRegion(hv, owner, first, pages, granted.front());
}

Status IdcRegion::CheckAccess(DomId accessor) const {
  if (accessor == owner_ || hv_->IsDescendantOf(accessor, owner_)) {
    return Status::Ok();
  }
  return ErrPermissionDenied("not a member of the owning family");
}

Status IdcRegion::Write(DomId accessor, std::size_t offset, const void* src, std::size_t len) {
  NEPHELE_RETURN_IF_ERROR(CheckAccess(accessor));
  if (offset + len > pages_ * kPageSize) {
    return ErrOutOfRange("write outside region");
  }
  const auto* bytes = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    // The region pages live in the owner's p2m; family members reach the
    // same machine frames through their grant mappings.
    NEPHELE_RETURN_IF_ERROR(hv_->WriteGuestPage(owner_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status IdcRegion::Read(DomId accessor, std::size_t offset, void* out, std::size_t len) const {
  NEPHELE_RETURN_IF_ERROR(CheckAccess(accessor));
  if (offset + len > pages_ * kPageSize) {
    return ErrOutOfRange("read outside region");
  }
  auto* bytes = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    NEPHELE_RETURN_IF_ERROR(hv_->ReadGuestPage(owner_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Result<std::uint32_t> IdcRegion::LoadU32(DomId accessor, std::size_t offset) const {
  std::uint32_t v = 0;
  NEPHELE_RETURN_IF_ERROR(Read(accessor, offset, &v, sizeof(v)));
  return v;
}

Status IdcRegion::StoreU32(DomId accessor, std::size_t offset, std::uint32_t value) {
  return Write(accessor, offset, &value, sizeof(value));
}

Result<IdcChannel> IdcChannel::Create(Hypervisor& hv, DomId owner) {
  hv.ChargeHypercall();
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort port, hv.EvtchnAllocUnbound(owner, kDomChild));
  return IdcChannel(hv, owner, port);
}

Status IdcChannel::Notify(DomId sender) {
  // Both ends use the same port index: the clone first stage duplicates the
  // owner's table, so a clone's entry `port` targets owner:port and the
  // owner's entry targets its first-bound clone.
  return hv_->EvtchnSend(sender, port_);
}

}  // namespace nephele
