#include "src/core/system.h"

namespace nephele {

NepheleSystem::NepheleSystem(SystemConfig config) : costs_(config.costs) {
  hv_ = std::make_unique<Hypervisor>(loop_, costs_, config.hypervisor, &metrics_, &faults_);
  xs_ = std::make_unique<XenstoreDaemon>(loop_, costs_, &metrics_, &faults_);
  devices_ = std::make_unique<DeviceManager>(*hv_, *xs_, loop_, costs_, &faults_);
  toolstack_ = std::make_unique<Toolstack>(*hv_, *xs_, *devices_, loop_, costs_, &metrics_,
                                           &trace_, &faults_);
  engine_ = std::make_unique<CloneEngine>(*hv_, &metrics_, &trace_, &faults_);
  engine_->SetWorkerThreads(config.clone_worker_threads);
  toolstack_->AttachCloneThreadSetter(
      [e = engine_.get()](unsigned n) { e->SetWorkerThreads(n); });
  xencloned_ = std::make_unique<Xencloned>(*hv_, *engine_, *xs_, *devices_, *toolstack_, loop_,
                                           costs_, &metrics_, &trace_, &faults_);

  // The metrics layer subscribes to the clone path like any other observer.
  clone_metrics_ = std::make_unique<CloneMetricsObserver>(metrics_, loop_);
  engine_->AddObserver(clone_metrics_.get());

  // Route udev events: devices of clones are completed by xencloned, freshly
  // booted ones by the toolstack hotplug scripts.
  devices_->SetUdevHandler([this](const UdevEvent& event) {
    const Domain* d = hv_->FindDomain(event.device.dom);
    if (d != nullptr && d->parent != kDomInvalid) {
      xencloned_->HandleUdev(event);
    } else {
      (void)toolstack_->HandleVifHotplug(event);
    }
  });

  if (config.start_xencloned) {
    (void)xencloned_->Start();
  }
}

}  // namespace nephele
