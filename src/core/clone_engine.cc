#include "src/core/clone_engine.h"

#include <algorithm>

#include "src/base/log.h"

namespace nephele {

CloneEngine::CloneEngine(Hypervisor& hv, MetricsRegistry* metrics, TraceRecorder* trace,
                         FaultInjector* faults)
    : hv_(hv),
      ring_(256),
      own_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(metrics != nullptr ? metrics : own_metrics_.get()),
      trace_(trace),
      m_clones_(metrics_->GetCounter("clone/clones_total")),
      m_batches_(metrics_->GetCounter("clone/batches_total")),
      m_pages_shared_(metrics_->GetCounter("clone/stage1/pages_shared")),
      m_pages_shared_first_(metrics_->GetCounter("clone/stage1/pages_shared_first")),
      m_pages_shared_again_(metrics_->GetCounter("clone/stage1/pages_shared_again")),
      m_pages_private_copied_(metrics_->GetCounter("clone/stage1/pages_private_copied")),
      m_pages_idc_shared_(metrics_->GetCounter("clone/stage1/pages_idc_shared")),
      m_resets_(metrics_->GetCounter("clone/reset/count")),
      m_reset_pages_restored_(metrics_->GetCounter("clone/reset/pages_restored")),
      m_explicit_cow_pages_(metrics_->GetCounter("clone/cow/explicit_pages")),
      m_ring_backpressure_(metrics_->GetCounter("clone/ring/backpressure")),
      m_rolled_back_(metrics_->GetCounter("clone/rolled_back")),
      m_stage1_ns_(metrics_->GetHistogram("clone/stage1/duration_ns")),
      m_stage2_ns_(metrics_->GetHistogram("clone/stage2/duration_ns")) {
  if (faults != nullptr) {
    f_stage1_create_ = faults->GetPoint("clone/stage1/create_domain");
    f_stage1_memory_ = faults->GetPoint("clone/stage1/memory");
    f_stage1_share_ = faults->GetPoint("clone/stage1/share");
    f_stage1_page_tables_ = faults->GetPoint("clone/stage1/page_tables");
    f_stage1_grants_ = faults->GetPoint("clone/stage1/grants");
    f_stage1_evtchns_ = faults->GetPoint("clone/stage1/evtchns");
    f_reset_ = faults->GetPoint("clone/reset");
  }
  // COW faults are resolved inside the hypervisor; surface them to clone
  // observers (metrics, fuzzing harnesses) through the engine.
  hv_.SetCowFaultHook([this](DomId dom, Gfn gfn, bool copied) {
    for (CloneObserver* obs : observers_) {
      obs->OnCowFault(dom, gfn, copied);
    }
  });
}

void CloneEngine::AddObserver(CloneObserver* observer) { observers_.push_back(observer); }

void CloneEngine::RemoveObserver(CloneObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void CloneEngine::CloneVcpus(const Domain& parent, Domain& child) {
  child.vcpus = parent.vcpus;
  for (auto& v : child.vcpus) {
    // The hypercall return value: 0 for the parent, 1 for any child
    // (Sec. 5.2).
    v.rax = 1;
  }
  hv_.loop().AdvanceBy(hv_.costs().vcpu_clone * static_cast<double>(child.vcpus.size()));
}

Status CloneEngine::CloneMemory(Domain& parent, Domain& child, std::vector<UndoEntry>& undo) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_memory_));
  const CostModel& costs = hv_.costs();
  FrameTable& frames = hv_.frames();
  child.p2m.reserve(parent.p2m.size());
  undo.reserve(parent.p2m.size());

  for (Gfn gfn = 0; gfn < parent.p2m.size(); ++gfn) {
    P2mEntry& pe = parent.p2m[gfn];
    if (IsPrivateRole(pe.role)) {
      // Private page: duplicated (or rewritten) for the child (Sec. 4.1).
      NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, hv_.AllocGuestFrame(child.id));
      undo.push_back(UndoEntry{UndoEntry::Kind::kChildFrame, mfn, gfn, false});
      if (frames.info(pe.mfn).data != nullptr) {
        frames.CopyPage(pe.mfn, mfn);
        hv_.loop().AdvanceBy(costs.page_copy);
      } else {
        hv_.loop().AdvanceBy(costs.private_page_rewrite);
      }
      child.p2m.push_back(P2mEntry{mfn, pe.role, /*writable=*/true});
      ++stats_.pages_private_copied;
      m_pages_private_copied_.Increment();
      continue;
    }
    NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_share_));
    if (pe.role == PageRole::kIdcShared) {
      // IDC regions stay writable on both sides: true sharing, no COW
      // (Sec. 5.2.2 — ownership still moves to dom_cow like any shared page).
      if (frames.IsShared(pe.mfn)) {
        NEPHELE_RETURN_IF_ERROR(frames.ShareAgain(pe.mfn));
        undo.push_back(UndoEntry{UndoEntry::Kind::kShareAgain, pe.mfn, gfn, pe.writable});
        hv_.loop().AdvanceBy(costs.page_share_again);
      } else {
        NEPHELE_RETURN_IF_ERROR(frames.ShareFirst(pe.mfn));
        undo.push_back(UndoEntry{UndoEntry::Kind::kShareFirst, pe.mfn, gfn, pe.writable});
        hv_.loop().AdvanceBy(costs.page_share_first);
      }
      child.p2m.push_back(P2mEntry{pe.mfn, pe.role, /*writable=*/true});
      ++stats_.pages_idc_shared;
      m_pages_idc_shared_.Increment();
      continue;
    }
    // Regular memory: share copy-on-write. Writable pages are marked
    // read-only and will be COWed on the next write by either side.
    if (frames.IsShared(pe.mfn)) {
      NEPHELE_RETURN_IF_ERROR(frames.ShareAgain(pe.mfn));
      undo.push_back(UndoEntry{UndoEntry::Kind::kShareAgain, pe.mfn, gfn, pe.writable});
      hv_.loop().AdvanceBy(costs.page_share_again);
      ++stats_.pages_shared_again;
      m_pages_shared_again_.Increment();
    } else {
      NEPHELE_RETURN_IF_ERROR(frames.ShareFirst(pe.mfn));
      undo.push_back(UndoEntry{UndoEntry::Kind::kShareFirst, pe.mfn, gfn, pe.writable});
      hv_.loop().AdvanceBy(costs.page_share_first);
      ++stats_.pages_shared_first;
      m_pages_shared_first_.Increment();
    }
    m_pages_shared_.Increment();
    pe.writable = false;
    child.p2m.push_back(P2mEntry{pe.mfn, pe.role, /*writable=*/false});
  }

  child.start_info_gfn = parent.start_info_gfn;
  child.console_ring_gfn = parent.console_ring_gfn;
  child.xenstore_ring_gfn = parent.xenstore_ring_gfn;

  // Rebuild private page tables and p2m map for the child (dominant cost for
  // large guests; Sec. 4.1). Frames allocated here land on the child's
  // page_table_frames/p2m_frames lists and are returned by DestroyDomain,
  // so a mid-build failure needs no undo entries of its own.
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_page_tables_));
  return hv_.BuildPageTables(child.id);
}

void CloneEngine::CloneEvtchns(const Domain& parent, Domain& child) {
  child.evtchns = parent.evtchns.CloneForChild();
  // IDC fix-up (Sec. 5.2.2): "On creation, a clone is implicitly bound to
  // all the IDC event channels of its parent." The child's copy of each
  // kDomChild port becomes its end of an interdomain channel to the parent;
  // the parent's port connects to its first child and keeps serving as the
  // receive end for later ones.
  for (EvtchnPort p = 1; p < child.evtchns.max_ports(); ++p) {
    EvtchnEntry& ce = child.evtchns.mutable_entry(p);
    if (ce.idc && ce.state == EvtchnState::kUnbound && ce.remote_dom == kDomChild) {
      ce.state = EvtchnState::kInterdomain;
      ce.remote_dom = parent.id;
      ce.remote_port = p;
    }
  }
  Domain* parent_mut = hv_.FindDomain(parent.id);
  for (EvtchnPort p = 1; p < parent_mut->evtchns.max_ports(); ++p) {
    EvtchnEntry& pe = parent_mut->evtchns.mutable_entry(p);
    if (pe.idc && pe.state == EvtchnState::kUnbound && pe.remote_dom == kDomChild) {
      pe.state = EvtchnState::kInterdomain;
      pe.remote_dom = child.id;
      pe.remote_port = p;
    }
  }
  std::size_t active = child.evtchns.active_ports();
  hv_.loop().AdvanceBy(hv_.costs().evtchn_clone * static_cast<double>(active));
}

Status CloneEngine::CloneOne(Domain& parent, StagedChild& staged) {
  hv_.loop().AdvanceBy(hv_.costs().clone_stage1_fixed);
  // struct domain initialisation by copy+edit of the parent's (Sec. 5).
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_create_));
  NEPHELE_ASSIGN_OR_RETURN(DomId child_id,
                           hv_.CreateDomain(/*name=*/"", static_cast<int>(parent.vcpus.size())));
  // From here on the child exists: record it before anything can fail so the
  // caller's rollback always sees it.
  staged.id = child_id;
  Domain* child = hv_.FindDomain(child_id);

  child->parent = parent.id;
  child->family_root = parent.family_root;
  child->cloning_enabled = parent.cloning_enabled;
  child->max_clones = parent.max_clones;
  parent.children.push_back(child_id);
  ++parent.clones_created;

  CloneVcpus(parent, *child);
  NEPHELE_RETURN_IF_ERROR(CloneMemory(parent, *child, staged.undo));

  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_grants_));
  child->grants = parent.grants.CloneForChild();
  hv_.loop().AdvanceBy(hv_.costs().grant_entry_clone *
                       static_cast<double>(child->grants.active_entries()));
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_evtchns_));
  CloneEvtchns(parent, *child);

  child->track_dirty = true;
  child->dirty_since_clone.clear();
  return Status::Ok();
}

void CloneEngine::RollbackStagedChild(Domain& parent, const StagedChild& staged) {
  FrameTable& frames = hv_.frames();
  // Reverse-walk the undo log: later entries may depend on earlier ones
  // (a ShareAgain presupposes the ShareFirst that precedes it in the log).
  for (auto it = staged.undo.rbegin(); it != staged.undo.rend(); ++it) {
    switch (it->kind) {
      case UndoEntry::Kind::kChildFrame:
        (void)frames.Release(it->mfn);
        break;
      case UndoEntry::Kind::kShareAgain:
        (void)frames.Release(it->mfn);
        parent.p2m[it->parent_gfn].writable = it->prev_writable;
        break;
      case UndoEntry::Kind::kShareFirst:
        (void)frames.Unshare(it->mfn, parent.id);
        parent.p2m[it->parent_gfn].writable = it->prev_writable;
        break;
    }
  }

  Domain* child = hv_.FindDomain(staged.id);
  if (child != nullptr) {
    // Revert the parent-side IDC evtchn fix-up (CloneEvtchns binds the
    // parent's unbound kDomChild ports to its first child).
    for (EvtchnPort p = 1; p < parent.evtchns.max_ports(); ++p) {
      EvtchnEntry& pe = parent.evtchns.mutable_entry(p);
      if (pe.idc && pe.state == EvtchnState::kInterdomain && pe.remote_dom == staged.id) {
        pe.state = EvtchnState::kUnbound;
        pe.remote_dom = kDomChild;
        pe.remote_port = 0;
      }
    }
    // Every guest frame was already returned through the undo log; clear the
    // p2m so DestroyDomain only releases the page-table and p2m-map frames
    // it still tracks (a double release would corrupt the free list).
    child->p2m.clear();
    (void)hv_.DestroyDomain(staged.id);
  }
  if (parent.clones_created > 0) {
    --parent.clones_created;
  }
  for (CloneObserver* obs : observers_) {
    obs->OnCloneAborted(parent.id, staged.id);
  }
}

Result<std::vector<DomId>> CloneEngine::Clone(DomId caller, DomId parent_id, Mfn start_info_mfn,
                                              unsigned num_clones) {
  hv_.ChargeHypercall();
  if (!hv_.cloning_globally_enabled()) {
    return ErrFailedPrecondition("cloning disabled globally");
  }
  if (caller != parent_id && caller != kDom0) {
    return ErrPermissionDenied("only the guest itself or Dom0 may clone it");
  }
  Domain* parent = hv_.FindDomain(parent_id);
  if (parent == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (!parent->cloning_enabled) {
    return ErrPermissionDenied("cloning not enabled for this domain");
  }
  if (parent->clones_created + num_clones > parent->max_clones) {
    return ErrResourceExhausted("max_clones exceeded");
  }
  if (num_clones == 0) {
    return ErrInvalidArgument("num_clones must be positive");
  }
  // Interface check: the caller passes the machine address of its
  // start_info page (Sec. 5.1).
  if (parent->start_info_gfn == kInvalidGfn ||
      parent->p2m[parent->start_info_gfn].mfn != start_info_mfn) {
    return ErrInvalidArgument("start_info mfn mismatch");
  }
  if (ring_.size() + num_clones > ring_.capacity()) {
    // Backpressure: the notification ring is full; the first stage stalls
    // (Sec. 5). Callers retry after xencloned drains.
    m_ring_backpressure_.Increment();
    return ErrUnavailable("clone notification ring full");
  }

  m_batches_.Increment();
  for (CloneObserver* obs : observers_) {
    obs->OnCloneStart(parent_id, num_clones);
  }
  const SimTime stage1_start = hv_.loop().Now();
  TraceSpan span = trace_ != nullptr ? trace_->BeginSpan("clone/stage1") : TraceSpan();
  span.AddArg("parent", static_cast<std::int64_t>(parent_id));
  span.AddArg("num_clones", static_cast<std::int64_t>(num_clones));

  // The parent is paused for the whole operation and stays paused until the
  // second stage completes for all children (Sec. 5).
  (void)hv_.PauseDomain(parent_id);
  parent->blocked_in_clone = true;

  // Stage phase: build every child without publishing anything. A failure
  // anywhere unwinds all staged children in reverse order and resumes the
  // parent, so a failed CLONEOP is side-effect free (the hypercall either
  // produces num_clones runnable children or none).
  std::vector<StagedChild> staged(num_clones);
  Status failure = Status::Ok();
  for (unsigned i = 0; i < num_clones; ++i) {
    failure = CloneOne(*parent, staged[i]);
    if (!failure.ok()) {
      for (unsigned j = i + 1; j-- > 0;) {
        if (staged[j].id != kDomInvalid) {
          RollbackStagedChild(*parent, staged[j]);
        }
      }
      ++stats_.rollbacks;
      m_rolled_back_.Increment();
      parent->blocked_in_clone = false;
      (void)hv_.UnpauseDomain(parent_id);
      return failure;
    }
  }

  // Commit phase: nothing below can fail. Publish the children to xencloned
  // and to the caller.
  std::vector<DomId> children;
  children.reserve(num_clones);
  for (StagedChild& sc : staged) {
    children.push_back(sc.id);
    pending_children_[sc.id] = PendingChild{parent_id, hv_.loop().Now()};
    ring_.Push(CloneNotification{parent_id, sc.id,
                                 parent->p2m[parent->start_info_gfn].mfn,
                                 hv_.FindDomain(sc.id)->p2m[parent->start_info_gfn].mfn});
    (void)hv_.RaiseVirq(kDom0, Virq::kCloned);
    ++stats_.clones;
    m_clones_.Increment();
  }
  outstanding_[parent_id] += num_clones;
  // Parent rax = 0: success, parent side.
  for (auto& v : parent->vcpus) {
    v.rax = 0;
  }
  m_stage1_ns_.Observe((hv_.loop().Now() - stage1_start).ns());
  return children;
}

Status CloneEngine::CloneAborted(DomId child) {
  hv_.ChargeHypercall();
  auto it = pending_children_.find(child);
  if (it == pending_children_.end()) {
    return ErrNotFound("no pending clone for this child");
  }
  DomId parent_id = it->second.parent;
  pending_children_.erase(it);
  ++stats_.rollbacks;
  m_rolled_back_.Increment();

  for (CloneObserver* obs : observers_) {
    obs->OnCloneAborted(parent_id, child);
  }

  // An aborted child retires its outstanding slot exactly like a completed
  // one: the parent must not stay paused forever because one clone of a
  // batch failed.
  auto out = outstanding_.find(parent_id);
  if (out != outstanding_.end() && --out->second == 0) {
    outstanding_.erase(out);
    Domain* parent = hv_.FindDomain(parent_id);
    if (parent != nullptr) {
      parent->blocked_in_clone = false;
      (void)hv_.UnpauseDomain(parent_id);
      stats_.last_parent_resume = hv_.loop().Now();
      FireResume(parent_id, /*is_child=*/false);
    }
  }
  return Status::Ok();
}

Status CloneEngine::CloneCompletion(DomId child) {
  hv_.ChargeHypercall();
  auto it = pending_children_.find(child);
  if (it == pending_children_.end()) {
    return ErrNotFound("no pending clone for this child");
  }
  DomId parent_id = it->second.parent;
  m_stage2_ns_.Observe((hv_.loop().Now() - it->second.pushed_at).ns());
  pending_children_.erase(it);

  for (CloneObserver* obs : observers_) {
    obs->OnCloneComplete(parent_id, child);
  }

  Domain* child_dom = hv_.FindDomain(child);
  if (child_dom != nullptr && child_dom->state != DomainState::kPaused) {
    // Children are resumed unless their configuration keeps them paused;
    // xencloned pauses them explicitly beforehand in that case.
    (void)hv_.UnpauseDomain(child);
    FireResume(child, /*is_child=*/true);
  }

  auto out = outstanding_.find(parent_id);
  if (out != outstanding_.end() && --out->second == 0) {
    outstanding_.erase(out);
    Domain* parent = hv_.FindDomain(parent_id);
    if (parent != nullptr) {
      parent->blocked_in_clone = false;
      (void)hv_.UnpauseDomain(parent_id);
      stats_.last_parent_resume = hv_.loop().Now();
      FireResume(parent_id, /*is_child=*/false);
    }
  }
  return Status::Ok();
}

void CloneEngine::FireResume(DomId dom, bool is_child) {
  // Observers are read at fire time, so registrations between the resume
  // decision and its delivery are honoured — the engine outlives the loop.
  hv_.loop().Post(SimDuration::Nanos(0), [this, dom, is_child] {
    for (CloneObserver* obs : observers_) {
      obs->OnResume(dom, is_child);
    }
  });
}

Status CloneEngine::CloneCow(DomId caller, DomId dom, Gfn gfn, std::size_t count) {
  hv_.ChargeHypercall();
  if (caller != dom && caller != kDom0) {
    return ErrPermissionDenied("clone_cow: not owner or Dom0");
  }
  for (std::size_t i = 0; i < count; ++i) {
    NEPHELE_RETURN_IF_ERROR(hv_.ForceCowResolve(dom, gfn + static_cast<Gfn>(i)));
    ++stats_.explicit_cow_pages;
    m_explicit_cow_pages_.Increment();
  }
  return Status::Ok();
}

Result<std::size_t> CloneEngine::CloneReset(DomId caller, DomId child_id) {
  hv_.ChargeHypercall();
  if (caller != kDom0 && caller != child_id) {
    return ErrPermissionDenied("clone_reset: not Dom0");
  }
  Domain* child = hv_.FindDomain(child_id);
  if (child == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (child->parent == kDomInvalid) {
    return ErrFailedPrecondition("domain is not a clone");
  }
  Domain* parent = hv_.FindDomain(child->parent);
  if (parent == nullptr) {
    return ErrFailedPrecondition("parent gone");
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_reset_));
  FrameTable& frames = hv_.frames();
  hv_.loop().AdvanceBy(hv_.costs().clone_reset_fixed);

  // Per-page restore is re-share then release, so a failure between the two
  // never leaves a page referencing a freed frame. On a mid-loop error the
  // already-restored prefix is dropped from the dirty list and the rest is
  // kept: a retry resumes exactly where this attempt stopped.
  std::vector<Gfn>& dirty = child->dirty_since_clone;
  std::size_t restored = 0;
  Status page_status = Status::Ok();
  for (Gfn gfn : dirty) {
    P2mEntry& ce = child->p2m[gfn];
    P2mEntry& pe = parent->p2m[gfn];
    if (frames.IsShared(pe.mfn)) {
      page_status = frames.ShareAgain(pe.mfn);
    } else {
      page_status = frames.ShareFirst(pe.mfn);
      if (page_status.ok()) {
        pe.writable = false;
      }
    }
    if (!page_status.ok()) {
      break;
    }
    (void)frames.Release(ce.mfn);
    ce.mfn = pe.mfn;
    ce.writable = false;
    hv_.loop().AdvanceBy(hv_.costs().clone_reset_per_page);
    ++restored;
  }
  if (!page_status.ok()) {
    dirty.erase(dirty.begin(), dirty.begin() + static_cast<std::ptrdiff_t>(restored));
    stats_.reset_pages_restored += restored;
    m_reset_pages_restored_.Increment(restored);
    return page_status;
  }
  dirty.clear();
  ++stats_.resets;
  stats_.reset_pages_restored += restored;
  m_resets_.Increment();
  m_reset_pages_restored_.Increment(restored);
  return restored;
}

Status CloneEngine::EnableGlobal(DomId caller, bool enabled) {
  hv_.ChargeHypercall();
  if (caller != kDom0) {
    return ErrPermissionDenied("only Dom0 may toggle global cloning");
  }
  hv_.SetCloningGloballyEnabled(enabled);
  return Status::Ok();
}

}  // namespace nephele
