#include "src/core/clone_engine.h"

#include <algorithm>
#include <atomic>

#include "src/base/log.h"
#include "src/base/units.h"

namespace nephele {

CloneEngine::CloneEngine(Hypervisor& hv, const SystemServices& services)
    : hv_(hv),
      ring_(256),
      own_metrics_(services.metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(services.metrics != nullptr ? services.metrics : own_metrics_.get()),
      trace_(services.trace),
      m_clones_(metrics_->GetCounter("clone/clones_total")),
      m_batches_(metrics_->GetCounter("clone/batches_total")),
      m_pages_shared_(metrics_->GetCounter("clone/stage1/pages_shared")),
      m_pages_shared_first_(metrics_->GetCounter("clone/stage1/pages_shared_first")),
      m_pages_shared_again_(metrics_->GetCounter("clone/stage1/pages_shared_again")),
      m_pages_private_copied_(metrics_->GetCounter("clone/stage1/pages_private_copied")),
      m_pages_idc_shared_(metrics_->GetCounter("clone/stage1/pages_idc_shared")),
      m_resets_(metrics_->GetCounter("clone/reset/count")),
      m_reset_pages_restored_(metrics_->GetCounter("clone/reset/pages_restored")),
      m_explicit_cow_pages_(metrics_->GetCounter("clone/cow/explicit_pages")),
      m_ring_backpressure_(metrics_->GetCounter("clone/ring/backpressure")),
      m_rolled_back_(metrics_->GetCounter("clone/rolled_back")),
      m_lazy_clones_(metrics_->GetCounter("clone/lazy/clones")),
      m_lazy_deferred_pages_(metrics_->GetCounter("clone/lazy/deferred_pages")),
      m_streamed_pages_(metrics_->GetCounter("clone/streamed_pages")),
      m_lazy_stream_batches_(metrics_->GetCounter("clone/lazy/stream_batches")),
      m_lazy_stream_stalls_(metrics_->GetCounter("clone/lazy/stream_stalls")),
      m_lazy_demand_faults_(metrics_->GetCounter("clone/lazy/demand_faults")),
      g_lazy_pending_pages_(metrics_->GetGauge("clone/lazy_pending_pages")),
      m_stage1_ns_(metrics_->GetHistogram("clone/stage1/duration_ns")),
      m_stage2_ns_(metrics_->GetHistogram("clone/stage2/duration_ns")) {
  if (services.faults != nullptr) {
    f_stage1_create_ = services.faults->GetPoint("clone/stage1/create_domain");
    f_stage1_memory_ = services.faults->GetPoint("clone/stage1/memory");
    f_stage1_share_ = services.faults->GetPoint("clone/stage1/share");
    f_stage1_page_tables_ = services.faults->GetPoint("clone/stage1/page_tables");
    f_stage1_grants_ = services.faults->GetPoint("clone/stage1/grants");
    f_stage1_evtchns_ = services.faults->GetPoint("clone/stage1/evtchns");
    f_reset_ = services.faults->GetPoint("clone/reset");
    f_lazy_stream_ = services.faults->GetPoint("lazy/stream");
    f_lazy_demand_ = services.faults->GetPoint("lazy/demand_fault");
  }
  // Sampled at export time: the sum of every streaming child's deferred
  // ledger. Reaching 0 is how dashboards (and the stream-stall alarm rule)
  // see a batch finish arriving.
  g_lazy_pending_pages_.SetProvider([this] {
    std::int64_t pending = 0;
    for (const auto& [child, st] : streaming_) {
      (void)st;
      const Domain* d = hv_.FindDomain(child);
      if (d != nullptr) {
        pending += static_cast<std::int64_t>(d->lazy_deferred_pages);
      }
    }
    return pending;
  });
  // COW faults are resolved inside the hypervisor; surface them to clone
  // observers (metrics, fuzzing harnesses) through the engine.
  hv_.SetCowFaultHook([this](DomId dom, Gfn gfn, bool copied) {
    for (CloneObserver* obs : observers_) {
      obs->OnCowFault(dom, gfn, copied);
    }
  });
  // Demand path of post-copy cloning: any touch of a not-present entry (and
  // any parent write that would outrun its children's streams) lands here
  // before the regular COW machinery looks at the entry.
  hv_.SetLazyTouchHook([this](DomId dom, Gfn gfn) { return OnLazyTouch(dom, gfn); });
  hv_.SetDomainDestroyHook([this](DomId dom) { OnDomainDestroy(dom); });
}

void CloneEngine::AddObserver(CloneObserver* observer) { observers_.push_back(observer); }

void CloneEngine::RemoveObserver(CloneObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void CloneEngine::SetWorkerThreads(unsigned n) {
  if (n == 0) {
    n = 1;
  }
  if (n == worker_threads_) {
    return;
  }
  worker_threads_ = n;
  // Recreated lazily on the next multi-threaded batch. Tearing down eagerly
  // keeps systems that only ever clone serially free of threads.
  pool_.reset();
}

std::size_t CloneEngine::PendingStreamPages(DomId child) const {
  if (streaming_.count(child) == 0) {
    return 0;
  }
  const Domain* d = hv_.FindDomain(child);
  return d == nullptr ? 0 : d->lazy_deferred_pages;
}

void CloneEngine::ComputeHotSet(const Domain& parent, const CloneRequest& req,
                                BatchPlan& batch) {
  batch.lazy = true;
  for (Gfn gfn : req.hot_pages) {
    if (gfn < parent.p2m.size()) {
      batch.hot.insert(gfn);
    }
  }
  // Seed up to max_hot_pages recently-touched pages beyond the explicit
  // hint: the dirty-since-clone list first (clone-of-clone parents track
  // it), then still-writable kData pages — a page is writable exactly when
  // it saw a write since it last entered COW sharing, which makes
  // writability the touch signal for root parents and re-cloned parents
  // alike.
  std::size_t seeded = 0;
  const std::size_t cap = lazy_cfg_.max_hot_pages;
  for (Gfn gfn : parent.dirty_since_clone) {
    if (seeded >= cap) {
      break;
    }
    if (gfn < parent.p2m.size() && batch.hot.insert(gfn).second) {
      ++seeded;
    }
  }
  for (Gfn gfn = 0; gfn < parent.p2m.size() && seeded < cap; ++gfn) {
    const P2mEntry& pe = parent.p2m[gfn];
    if (pe.role == PageRole::kData && pe.writable && batch.hot.insert(gfn).second) {
      ++seeded;
    }
  }
}

void CloneEngine::MaterializePage(Domain& parent, Domain& child, Gfn gfn) {
  FrameTable& frames = hv_.frames();
  const CostModel& costs = hv_.costs();
  P2mEntry& pe = parent.p2m[gfn];
  // The plan flipped the parent pte read-only when it deferred the page, so
  // the frame still holds the clone-time snapshot. Sharing it now is exactly
  // the share stage 1 skipped, at the same per-page cost.
  if (frames.IsShared(pe.mfn)) {
    (void)frames.ShareAgain(pe.mfn);
    hv_.loop().AdvanceBy(costs.page_share_again);
    ++stats_.pages_shared_again;
    m_pages_shared_again_.Increment();
  } else {
    (void)frames.ShareFirst(pe.mfn);
    hv_.loop().AdvanceBy(costs.page_share_first);
    ++stats_.pages_shared_first;
    m_pages_shared_first_.Increment();
  }
  m_pages_shared_.Increment();
  child.p2m[gfn].mfn = pe.mfn;
  // writable stays false: from here on the entry COWs like any shared page.
  if (child.lazy_deferred_pages > 0) {
    --child.lazy_deferred_pages;
  }
}

Status CloneEngine::RunStreamBatch(DomId child_id, std::size_t* out_pages) {
  if (out_pages != nullptr) {
    *out_pages = 0;
  }
  auto it = streaming_.find(child_id);
  if (it == streaming_.end()) {
    return Status::Ok();
  }
  StreamState& st = it->second;
  Domain* child = hv_.FindDomain(child_id);
  Domain* parent = hv_.FindDomain(st.parent);
  if (child == nullptr || parent == nullptr) {
    // Defensive only: the destroy hook retires streams before either side
    // of one can vanish.
    streaming_.erase(it);
    return Status::Ok();
  }
  Status batch_status = PokeFault(f_lazy_stream_);
  if (!batch_status.ok()) {
    // A stall, not a death: nothing was streamed, the child stays streaming
    // and the next batch (tick, pump or FinishStreaming retry) resumes.
    m_lazy_stream_stalls_.Increment();
    return batch_status;
  }
  hv_.loop().AdvanceBy(hv_.costs().lazy_stream_batch_fixed);
  m_lazy_stream_batches_.Increment();
  const std::size_t batch_pages =
      lazy_cfg_.stream_batch_pages == 0 ? 1 : lazy_cfg_.stream_batch_pages;
  std::size_t done = 0;
  while (done < batch_pages && st.cursor < st.deferred.size()) {
    Gfn gfn = st.deferred[st.cursor++];
    if (child->p2m[gfn].mfn != kInvalidMfn) {
      continue;  // a demand fault got here first
    }
    MaterializePage(*parent, *child, gfn);
    ++done;
    ++stats_.pages_streamed;
    m_streamed_pages_.Increment();
  }
  if (out_pages != nullptr) {
    *out_pages = done;
  }
  if (child->lazy_deferred_pages == 0) {
    streaming_.erase(it);
  }
  return Status::Ok();
}

Status CloneEngine::FinishStreaming(DomId child) {
  while (streaming_.count(child) > 0) {
    NEPHELE_RETURN_IF_ERROR(RunStreamBatch(child, nullptr));
  }
  return Status::Ok();
}

std::size_t CloneEngine::StreamPump(std::size_t batches) {
  std::size_t total = 0;
  DomId next = 0;
  for (std::size_t b = 0; b < batches && !streaming_.empty(); ++b) {
    auto it = streaming_.lower_bound(next);
    if (it == streaming_.end()) {
      it = streaming_.begin();
    }
    const DomId child = it->first;
    next = static_cast<DomId>(child + 1);
    std::size_t pages = 0;
    (void)RunStreamBatch(child, &pages);  // a stall consumes the batch slot
    total += pages;
  }
  return total;
}

void CloneEngine::ScheduleStreamTick(DomId child) {
  hv_.loop().Post(lazy_cfg_.stream_interval, [this, child] {
    if (streaming_.count(child) == 0) {
      return;  // finished (or torn down) before the tick fired
    }
    (void)RunStreamBatch(child, nullptr);
    if (streaming_.count(child) > 0) {
      // Re-arm, including after a stall: injected stream faults model
      // transient backend pressure, so the prefetcher retries.
      ScheduleStreamTick(child);
    }
  });
}

Status CloneEngine::OnLazyTouch(DomId dom, Gfn gfn) {
  // Case 1: a streaming child touches its own not-present entry — a demand
  // fault. The page jumps the stream queue and materialises on the spot;
  // the caller's COW machinery then treats it like any shared page.
  auto it = streaming_.find(dom);
  if (it != streaming_.end()) {
    Domain* child = hv_.FindDomain(dom);
    Domain* parent = hv_.FindDomain(it->second.parent);
    if (child != nullptr && parent != nullptr && gfn < child->p2m.size() &&
        child->p2m[gfn].mfn == kInvalidMfn) {
      NEPHELE_RETURN_IF_ERROR(PokeFault(f_lazy_demand_));
      hv_.loop().AdvanceBy(hv_.costs().lazy_demand_fault_fixed);
      MaterializePage(*parent, *child, gfn);
      ++stats_.lazy_demand_faults;
      m_lazy_demand_faults_.Increment();
      if (child->lazy_deferred_pages == 0) {
        streaming_.erase(it);
      }
      return Status::Ok();
    }
  }
  // Case 2: a parent is about to COW-write a page its streaming children
  // still defer. The write would change the frame the children read through,
  // so the clone-time snapshot is pushed to them first. A fault here fails
  // the parent's write with everything still deferred; a retry resumes with
  // whatever was already pushed.
  Domain* parent = hv_.FindDomain(dom);
  if (parent == nullptr) {
    return Status::Ok();
  }
  for (auto sit = streaming_.begin(); sit != streaming_.end();) {
    if (sit->second.parent != dom) {
      ++sit;
      continue;
    }
    Domain* child = hv_.FindDomain(sit->first);
    if (child == nullptr || gfn >= child->p2m.size() ||
        child->p2m[gfn].mfn != kInvalidMfn) {
      ++sit;
      continue;
    }
    NEPHELE_RETURN_IF_ERROR(PokeFault(f_lazy_demand_));
    hv_.loop().AdvanceBy(hv_.costs().lazy_demand_fault_fixed);
    MaterializePage(*parent, *child, gfn);
    ++stats_.lazy_demand_faults;
    m_lazy_demand_faults_.Increment();
    if (child->lazy_deferred_pages == 0) {
      sit = streaming_.erase(sit);
    } else {
      ++sit;
    }
  }
  return Status::Ok();
}

void CloneEngine::OnDomainDestroy(DomId dom) {
  // A dying child abandons its stream: its not-present entries hold no
  // frames, so there is nothing to unwind.
  streaming_.erase(dom);
  // A dying parent is the stream source of its lazy children: everything
  // they still defer materialises now, before the parent's frames go away.
  // The destruction is already committed, so no fault pokes — this path
  // cannot fail.
  Domain* parent = hv_.FindDomain(dom);
  for (auto it = streaming_.begin(); it != streaming_.end();) {
    if (it->second.parent != dom) {
      ++it;
      continue;
    }
    Domain* child = hv_.FindDomain(it->first);
    if (child != nullptr && parent != nullptr) {
      StreamState& st = it->second;
      while (st.cursor < st.deferred.size()) {
        Gfn gfn = st.deferred[st.cursor++];
        if (child->p2m[gfn].mfn != kInvalidMfn) {
          continue;
        }
        MaterializePage(*parent, *child, gfn);
        ++stats_.pages_streamed;
        m_streamed_pages_.Increment();
      }
    }
    it = streaming_.erase(it);
  }
}

void CloneEngine::CloneVcpus(const Domain& parent, Domain& child) {
  child.vcpus = parent.vcpus;
  for (auto& v : child.vcpus) {
    // The hypercall return value: 0 for the parent, 1 for any child
    // (Sec. 5.2).
    v.rax = 1;
  }
}

Status CloneEngine::PlanChildCommon(Domain& parent, ChildPlan& cp) {
  cp.lane += hv_.costs().clone_stage1_fixed;
  // struct domain initialisation by copy+edit of the parent's (Sec. 5).
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_create_));
  NEPHELE_ASSIGN_OR_RETURN(DomId child_id,
                           hv_.CreateDomain(/*name=*/"", static_cast<int>(parent.vcpus.size())));
  // From here on the child exists: record it before anything can fail so the
  // batch rollback always sees it.
  cp.id = child_id;
  cp.child = hv_.FindDomain(child_id);
  Domain& child = *cp.child;

  child.parent = parent.id;
  child.family_root = parent.family_root;
  child.cloning_enabled = parent.cloning_enabled;
  child.max_clones = parent.max_clones;
  child.start_info_gfn = parent.start_info_gfn;
  child.console_ring_gfn = parent.console_ring_gfn;
  child.xenstore_ring_gfn = parent.xenstore_ring_gfn;
  child.track_dirty = true;
  child.dirty_since_clone.clear();
  parent.children.push_back(child_id);
  ++parent.clones_created;

  CloneVcpus(parent, child);
  cp.lane += hv_.costs().vcpu_clone * static_cast<double>(child.vcpus.size());
  return Status::Ok();
}

Status CloneEngine::PlanFirstChild(Domain& parent, BatchPlan& batch, ChildPlan& cp) {
  NEPHELE_RETURN_IF_ERROR(PlanChildCommon(parent, cp));
  batch.first_child = cp.id;
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_memory_));
  const CostModel& costs = hv_.costs();
  FrameTable& frames = hv_.frames();

  // The only full per-page scan of the batch: classify every parent page,
  // poking faults and bumping counters exactly like the serial engine did,
  // and record the batch-wide facts later children and the rollback reuse.
  for (Gfn gfn = 0; gfn < parent.p2m.size(); ++gfn) {
    P2mEntry& pe = parent.p2m[gfn];
    if (IsPrivateRole(pe.role)) {
      // Private page: duplicated (or rewritten) for the child (Sec. 4.1).
      NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, hv_.StageGuestFrame(cp.id));
      cp.private_mfns.push_back(mfn);
      batch.private_gfns.push_back(gfn);
      SimDuration cost = costs.frame_alloc + (frames.info(pe.mfn).data != nullptr
                                                  ? costs.page_copy
                                                  : costs.private_page_rewrite);
      cp.lane += cost;
      batch.private_cost += cost;
      ++stats_.pages_private_copied;
      m_pages_private_copied_.Increment();
      continue;
    }
    NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_share_));
    // first_shared first: it already records every frame a previous child's
    // plan turned shared, so the locked read only runs for frames shared
    // before this batch. IsSharedSync (not IsShared) because staging of the
    // previous child may still be flipping frames on the worker pool.
    const bool already_shared =
        batch.first_shared.count(pe.mfn) > 0 || frames.IsSharedSync(pe.mfn);
    if (pe.role == PageRole::kIdcShared) {
      // IDC regions stay writable on both sides: true sharing, no COW
      // (Sec. 5.2.2 — ownership still moves to dom_cow like any shared page).
      cp.lane += already_shared ? costs.page_share_again : costs.page_share_first;
      if (!already_shared) {
        batch.first_shared.insert(pe.mfn);
      }
      ++stats_.pages_idc_shared;
      m_pages_idc_shared_.Increment();
      ++batch.idc_pages;
      continue;
    }
    // Regular memory: share copy-on-write. Writable pages are marked
    // read-only and will be COWed on the next write by either side.
    if (already_shared) {
      cp.lane += costs.page_share_again;
      ++stats_.pages_shared_again;
      m_pages_shared_again_.Increment();
    } else {
      cp.lane += costs.page_share_first;
      batch.first_shared.insert(pe.mfn);
      ++stats_.pages_shared_first;
      m_pages_shared_first_.Increment();
    }
    m_pages_shared_.Increment();
    ++batch.regular_pages;
    if (pe.writable) {
      batch.writable_flips.push_back(gfn);
      pe.writable = false;
    }
  }
  return PlanTables(parent, cp);
}

void CloneEngine::AccountPartialScan(const Domain& parent, Gfn end_gfn, SimDuration& lane) {
  const CostModel& costs = hv_.costs();
  const FrameTable& frames = hv_.frames();
  std::size_t priv = 0;
  std::size_t idc = 0;
  std::size_t regular = 0;
  for (Gfn gfn = 0; gfn < end_gfn; ++gfn) {
    const P2mEntry& pe = parent.p2m[gfn];
    if (IsPrivateRole(pe.role)) {
      ++priv;
      lane += costs.frame_alloc + (frames.info(pe.mfn).data != nullptr
                                       ? costs.page_copy
                                       : costs.private_page_rewrite);
    } else {
      lane += costs.page_share_again;
      if (pe.role == PageRole::kIdcShared) {
        ++idc;
      } else {
        ++regular;
      }
    }
  }
  stats_.pages_private_copied += priv;
  m_pages_private_copied_.Increment(priv);
  stats_.pages_idc_shared += idc;
  m_pages_idc_shared_.Increment(idc);
  stats_.pages_shared_again += regular;
  m_pages_shared_again_.Increment(regular);
  m_pages_shared_.Increment(regular);
}

Status CloneEngine::PlanNextChild(Domain& parent, BatchPlan& batch, ChildPlan& cp) {
  NEPHELE_RETURN_IF_ERROR(PlanChildCommon(parent, cp));
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_memory_));
  const CostModel& costs = hv_.costs();

  // The first child shared every non-private page, so every share of this
  // child is a re-share: no per-page decisions remain and the scan reduces
  // to the private gfns plus bulk fault pokes for the share runs between
  // them. The failure paths recompute the exact per-page prefix the fast
  // path skipped, so an armed fault point observes identical hit counts and
  // counter state as with the serial per-page walk.
  cp.private_mfns.reserve(batch.private_gfns.size());
  Gfn next = 0;
  for (Gfn pgfn : batch.private_gfns) {
    if (f_stage1_share_ != nullptr) {
      FaultPoint::BulkPoke bulk = f_stage1_share_->PokeMany(pgfn - next);
      if (!bulk.status.ok()) {
        AccountPartialScan(parent, next + static_cast<Gfn>(bulk.performed) - 1, cp.lane);
        return bulk.status;
      }
    }
    auto mfn = hv_.StageGuestFrame(cp.id);
    if (!mfn.ok()) {
      AccountPartialScan(parent, pgfn, cp.lane);
      return mfn.status();
    }
    cp.private_mfns.push_back(*mfn);
    next = pgfn + 1;
  }
  if (f_stage1_share_ != nullptr) {
    FaultPoint::BulkPoke bulk =
        f_stage1_share_->PokeMany(static_cast<Gfn>(parent.p2m.size()) - next);
    if (!bulk.status.ok()) {
      AccountPartialScan(parent, next + static_cast<Gfn>(bulk.performed) - 1, cp.lane);
      return bulk.status;
    }
  }

  stats_.pages_private_copied += batch.private_gfns.size();
  m_pages_private_copied_.Increment(batch.private_gfns.size());
  stats_.pages_idc_shared += batch.idc_pages;
  m_pages_idc_shared_.Increment(batch.idc_pages);
  stats_.pages_shared_again += batch.regular_pages;
  m_pages_shared_again_.Increment(batch.regular_pages);
  m_pages_shared_.Increment(batch.regular_pages);
  cp.lane += batch.private_cost +
             costs.page_share_again * static_cast<double>(batch.idc_pages + batch.regular_pages);
  return PlanTables(parent, cp);
}

Status CloneEngine::PlanChildLazy(Domain& parent, BatchPlan& batch, ChildPlan& cp,
                                  bool first) {
  NEPHELE_RETURN_IF_ERROR(PlanChildCommon(parent, cp));
  if (first) {
    batch.first_child = cp.id;
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_memory_));
  const CostModel& costs = hv_.costs();
  FrameTable& frames = hv_.frames();

  // Lazy plan: a full per-page walk for every child. Deferral already
  // removed the bulk of the stage-1 work, so the O(private) fast path of
  // PlanNextChild buys nothing here, and one uniform walk keeps the fault
  // ordering identical for every child of the batch.
  for (Gfn gfn = 0; gfn < parent.p2m.size(); ++gfn) {
    P2mEntry& pe = parent.p2m[gfn];
    if (IsPrivateRole(pe.role)) {
      NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, hv_.StageGuestFrame(cp.id));
      cp.private_mfns.push_back(mfn);
      SimDuration cost = costs.frame_alloc + (frames.info(pe.mfn).data != nullptr
                                                  ? costs.page_copy
                                                  : costs.private_page_rewrite);
      if (first) {
        batch.private_gfns.push_back(gfn);
        batch.private_cost += cost;
      }
      cp.lane += cost;
      ++stats_.pages_private_copied;
      m_pages_private_copied_.Increment();
      continue;
    }
    if (pe.role == PageRole::kData && batch.hot.count(gfn) == 0) {
      // Deferred: the child's entry will be not-present — no share, no
      // fault poke, no lane cost. That skipped cost is the entire
      // time-to-first-request win. The parent pte still turns read-only
      // NOW, so a parent write demand-pushes the page to the children
      // before changing it (they must keep seeing the clone-time snapshot).
      if (first) {
        batch.deferred_gfns.push_back(gfn);
      }
      if (pe.writable) {
        batch.writable_flips.push_back(gfn);
        pe.writable = false;
      }
      ++stats_.pages_deferred;
      m_lazy_deferred_pages_.Increment();
      continue;
    }
    NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_share_));
    // first_shared first: it already records every frame a previous child's
    // plan turned shared, so the locked read only runs for frames shared
    // before this batch. IsSharedSync (not IsShared) because staging of the
    // previous child may still be flipping frames on the worker pool.
    const bool already_shared =
        batch.first_shared.count(pe.mfn) > 0 || frames.IsSharedSync(pe.mfn);
    if (pe.role == PageRole::kIdcShared) {
      cp.lane += already_shared ? costs.page_share_again : costs.page_share_first;
      if (!already_shared) {
        batch.first_shared.insert(pe.mfn);
      }
      ++stats_.pages_idc_shared;
      m_pages_idc_shared_.Increment();
      if (first) {
        ++batch.idc_pages;
      }
      continue;
    }
    if (already_shared) {
      cp.lane += costs.page_share_again;
      ++stats_.pages_shared_again;
      m_pages_shared_again_.Increment();
    } else {
      cp.lane += costs.page_share_first;
      batch.first_shared.insert(pe.mfn);
      ++stats_.pages_shared_first;
      m_pages_shared_first_.Increment();
    }
    m_pages_shared_.Increment();
    if (first) {
      ++batch.regular_pages;
    }
    if (pe.writable) {
      batch.writable_flips.push_back(gfn);
      pe.writable = false;
    }
  }
  return PlanTables(parent, cp);
}

Status CloneEngine::PlanTables(Domain& parent, ChildPlan& cp) {
  const CostModel& costs = hv_.costs();
  Domain& child = *cp.child;
  // Private page tables and p2m map (dominant cost for large guests;
  // Sec. 4.1). Frames land on the child's page_table_frames/p2m_frames
  // lists and are returned by DestroyDomain, so a mid-build failure needs
  // no undo bookkeeping of its own.
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_page_tables_));
  std::size_t pt_pages = PageTablePagesFor(parent.p2m.size());
  for (std::size_t i = 0; i < pt_pages; ++i) {
    NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, hv_.StageGuestFrame(cp.id));
    child.page_table_frames.push_back(mfn);
    cp.lane += costs.frame_alloc + costs.private_page_rewrite;
  }
  std::size_t p2m_pages = (parent.p2m.size() * 4 + kPageSize - 1) / kPageSize;
  if (p2m_pages == 0) {
    p2m_pages = 1;
  }
  for (std::size_t i = 0; i < p2m_pages; ++i) {
    NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, hv_.StageGuestFrame(cp.id));
    child.p2m_frames.push_back(mfn);
    cp.lane += costs.frame_alloc;
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_grants_));
  cp.lane +=
      costs.grant_entry_clone * static_cast<double>(parent.grants.active_entries());
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage1_evtchns_));
  cp.lane += costs.evtchn_clone * static_cast<double>(parent.evtchns.active_ports());
  return Status::Ok();
}

void CloneEngine::StageChild(const Domain& parent, const BatchPlan& batch, ChildPlan& cp) {
  Domain& child = *cp.child;
  FrameTable& frames = hv_.frames();

  // Guest memory: private pages copy into the pre-allocated frames; shared
  // pages take one commutative refcount each through one StageShareAll
  // batch. Parent state is read-only here (the parent is paused and the
  // plan phase has finished mutating it before the first dispatch).
  child.p2m.reserve(parent.p2m.size());
  std::vector<Mfn> shares;
  shares.reserve(parent.p2m.size());
  std::size_t pi = 0;
  for (Gfn gfn = 0; gfn < parent.p2m.size(); ++gfn) {
    const P2mEntry& pe = parent.p2m[gfn];
    if (IsPrivateRole(pe.role)) {
      Mfn mfn = cp.private_mfns[pi++];
      if (frames.info(pe.mfn).data != nullptr) {
        frames.CopyPage(pe.mfn, mfn);
      }
      child.p2m.push_back(P2mEntry{mfn, pe.role, /*writable=*/true});
    } else if (batch.lazy && pe.role == PageRole::kData && batch.hot.count(gfn) == 0) {
      // Deferred (the same predicate the plan used): not-present entry, no
      // share ref. The ledger is child-local state, so bumping it here is
      // safe from a pool worker.
      child.p2m.push_back(P2mEntry{kInvalidMfn, pe.role, /*writable=*/false});
      ++child.lazy_deferred_pages;
    } else {
      shares.push_back(pe.mfn);
      child.p2m.push_back(
          P2mEntry{pe.mfn, pe.role, /*writable=*/pe.role == PageRole::kIdcShared});
    }
  }
  frames.StageShareAll(shares, cp.id);

  child.grants = parent.grants.CloneForChild();

  child.evtchns = parent.evtchns.CloneForChild();
  // IDC fix-up (Sec. 5.2.2): "On creation, a clone is implicitly bound to
  // all the IDC event channels of its parent." The first child's copy of
  // each kDomChild port becomes its end of an interdomain channel to the
  // parent; later children connect to the first child — exactly the state
  // the serial engine produced by copying the parent's table after its own
  // fix-up had bound those ports to the first child. The parent-side half
  // of the fix-up is applied serially at commit.
  const DomId bind_to = cp.id == batch.first_child ? parent.id : batch.first_child;
  for (EvtchnPort p = 1; p < child.evtchns.max_ports(); ++p) {
    EvtchnEntry& ce = child.evtchns.mutable_entry(p);
    if (ce.idc && ce.state == EvtchnState::kUnbound && ce.remote_dom == kDomChild) {
      ce.state = EvtchnState::kInterdomain;
      ce.remote_dom = bind_to;
      ce.remote_port = p;
    }
  }
}

void CloneEngine::RollbackBatch(Domain& parent, BatchPlan& batch,
                                std::vector<ChildPlan>& plans) {
  FrameTable& frames = hv_.frames();
  // Newest child first, so by the time the first child unwinds it holds the
  // last clone reference on every frame this batch shared — first-shared
  // frames are then back at refcount 2 (parent + first child) and Unshare
  // restores private parent ownership exactly.
  for (auto it = plans.rbegin(); it != plans.rend(); ++it) {
    ChildPlan& cp = *it;
    if (cp.id == kDomInvalid) {
      continue;  // create_domain failed: this child never existed
    }
    Domain& child = *cp.child;
    if (cp.dispatched) {
      // Fully staged: derive the undo from the child's p2m, newest entry
      // first (a re-share presupposes the first share that precedes it).
      for (auto pit = child.p2m.rbegin(); pit != child.p2m.rend(); ++pit) {
        if (pit->mfn == kInvalidMfn) {
          continue;  // deferred lazy entry: no frame, no share ref to undo
        }
        if (IsPrivateRole(pit->role)) {
          (void)frames.Release(pit->mfn);
          continue;
        }
        const bool shared_by_this_batch =
            cp.id == batch.first_child && batch.first_shared.count(pit->mfn) > 0 &&
            frames.info(pit->mfn).refcount.load(std::memory_order_relaxed) == 2;
        if (shared_by_this_batch) {
          (void)frames.Unshare(pit->mfn, parent.id);
        } else {
          (void)frames.Release(pit->mfn);
        }
      }
    } else {
      // The failing child: its staging job never ran, so no share refs
      // exist; only the frames its plan consumed go back.
      for (auto mit = cp.private_mfns.rbegin(); mit != cp.private_mfns.rend(); ++mit) {
        (void)frames.Release(*mit);
      }
    }
    // Every guest frame was already returned above; clear the p2m so
    // DestroyDomain only releases the page-table and p2m-map frames it
    // still tracks (a double release would corrupt the free list).
    child.p2m.clear();
    child.lazy_deferred_pages = 0;
    (void)hv_.DestroyDomain(cp.id);
    if (parent.clones_created > 0) {
      --parent.clones_created;
    }
    for (CloneObserver* obs : observers_) {
      obs->OnCloneAborted(parent.id, cp.id);
    }
  }
  // Restore the parent ptes this batch flipped read-only.
  for (Gfn gfn : batch.writable_flips) {
    parent.p2m[gfn].writable = true;
  }
}

Result<std::vector<DomId>> CloneEngine::Clone(const CloneRequest& req) {
  const DomId caller = req.caller;
  const DomId parent_id = req.parent;
  const Mfn start_info_mfn = req.start_info_mfn;
  const unsigned num_clones = req.num_children;
  hv_.ChargeHypercall();
  if (!hv_.cloning_globally_enabled()) {
    return ErrFailedPrecondition("cloning disabled globally");
  }
  if (caller != parent_id && caller != kDom0) {
    return ErrPermissionDenied("only the guest itself or Dom0 may clone it");
  }
  Domain* parent = hv_.FindDomain(parent_id);
  if (parent == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (!parent->cloning_enabled) {
    return ErrPermissionDenied("cloning not enabled for this domain");
  }
  if (parent->clones_created + num_clones > parent->max_clones) {
    return ErrResourceExhausted("max_clones exceeded");
  }
  if (num_clones == 0) {
    return ErrInvalidArgument("num_clones must be positive");
  }
  // Interface check: the caller passes the machine address of its
  // start_info page (Sec. 5.1).
  if (parent->start_info_gfn == kInvalidGfn ||
      parent->p2m[parent->start_info_gfn].mfn != start_info_mfn) {
    return ErrInvalidArgument("start_info mfn mismatch");
  }
  if (ring_.size() + num_clones > ring_.capacity()) {
    // Backpressure: the notification ring is full; the first stage stalls
    // (Sec. 5). Callers retry after xencloned drains.
    m_ring_backpressure_.Increment();
    return ErrUnavailable("clone notification ring full");
  }
  // A streaming parent is itself only partially mapped — its deferred
  // entries hold no frame to share or copy from yet. Its own stream must
  // finish before it can serve as a clone source; a stall there fails the
  // clone with the stream's error and no side effects.
  if (IsStreaming(parent_id)) {
    NEPHELE_RETURN_IF_ERROR(FinishStreaming(parent_id));
  }
  const bool lazy = req.lazy && lazy_cfg_.enabled;

  m_batches_.Increment();
  for (CloneObserver* obs : observers_) {
    obs->OnCloneStart(parent_id, num_clones);
  }
  const SimTime stage1_start = hv_.loop().Now();
  TraceSpan span = trace_ != nullptr ? trace_->BeginSpan("clone/stage1") : TraceSpan();
  span.AddArg("parent", static_cast<std::int64_t>(parent_id));
  span.AddArg("num_clones", static_cast<std::int64_t>(num_clones));

  // The parent is paused for the whole operation and stays paused until the
  // second stage completes for all children (Sec. 5).
  (void)hv_.PauseDomain(parent_id);
  parent->blocked_in_clone = true;

  // Lazy pool creation: systems that only ever clone with one thread never
  // spawn workers.
  if (worker_threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(worker_threads_);
  }

  // Plan each child serially, then pipeline its staging onto the pool while
  // the next child is planned. Everything that can fail fails in the plan,
  // so a dispatched staging job always completes.
  BatchPlan batch;
  if (lazy) {
    ComputeHotSet(*parent, req, batch);
  }
  std::vector<ChildPlan> plans;
  plans.reserve(num_clones);  // workers hold references; must not reallocate
  Status failure = Status::Ok();
  for (unsigned i = 0; i < num_clones; ++i) {
    plans.emplace_back();
    ChildPlan& cp = plans.back();
    failure = lazy ? PlanChildLazy(*parent, batch, cp, i == 0)
                   : (i == 0 ? PlanFirstChild(*parent, batch, cp)
                             : PlanNextChild(*parent, batch, cp));
    if (!failure.ok()) {
      break;
    }
    cp.dispatched = true;
    if (pool_ != nullptr) {
      pool_->Submit(i, [this, parent, &batch, &cp] { StageChild(*parent, batch, cp); });
    } else {
      StageChild(*parent, batch, cp);
    }
  }
  if (pool_ != nullptr) {
    pool_->WaitIdle();
  }

  // The batch costs its slowest child in virtual time — concurrency is the
  // point of the worker pool, and the charge must not depend on the host
  // thread count. A single clone degenerates to the serial engine's exact
  // sum; a failed batch charges the work staged up to the failure.
  std::vector<SimDuration> lanes;
  lanes.reserve(plans.size());
  for (const ChildPlan& cp : plans) {
    lanes.push_back(cp.lane);
  }
  hv_.loop().AdvanceByCriticalPath(lanes);

  if (!failure.ok()) {
    // A failure anywhere unwinds all staged children and resumes the
    // parent, so a failed CLONEOP is side-effect free (the hypercall either
    // produces num_clones runnable children or none).
    RollbackBatch(*parent, batch, plans);
    ++stats_.rollbacks;
    m_rolled_back_.Increment();
    parent->blocked_in_clone = false;
    (void)hv_.UnpauseDomain(parent_id);
    return failure;
  }

  // Commit phase: serial, in child-index order; nothing below can fail.
  // Parent half of the IDC event-channel fix-up: its unbound kDomChild
  // ports connect to the first child (which keeps serving as the receive
  // end for later ones).
  for (EvtchnPort p = 1; p < parent->evtchns.max_ports(); ++p) {
    EvtchnEntry& pe = parent->evtchns.mutable_entry(p);
    if (pe.idc && pe.state == EvtchnState::kUnbound && pe.remote_dom == kDomChild) {
      pe.state = EvtchnState::kInterdomain;
      pe.remote_dom = batch.first_child;
      pe.remote_port = p;
    }
  }
  // Publish the children to xencloned and to the caller.
  std::vector<DomId> children;
  children.reserve(num_clones);
  for (ChildPlan& cp : plans) {
    children.push_back(cp.id);
    pending_children_[cp.id] = PendingChild{parent_id, hv_.loop().Now()};
    ring_.Push(CloneNotification{parent_id, cp.id,
                                 parent->p2m[parent->start_info_gfn].mfn,
                                 cp.child->p2m[parent->start_info_gfn].mfn});
    (void)hv_.RaiseVirq(kDom0, Virq::kCloned);
    ++stats_.clones;
    m_clones_.Increment();
  }
  // Register the lazy streams: each child owes batch.deferred_gfns, and the
  // background prefetcher starts ticking (unless manual mode). A lazy batch
  // with nothing deferred (tiny guest, everything hot) is already complete.
  if (batch.lazy) {
    for (const ChildPlan& cp : plans) {
      ++stats_.lazy_clones;
      m_lazy_clones_.Increment();
      if (!batch.deferred_gfns.empty()) {
        streaming_.emplace(cp.id, StreamState{parent_id, batch.deferred_gfns, 0});
        if (lazy_cfg_.auto_stream) {
          ScheduleStreamTick(cp.id);
        }
      }
    }
  }
  outstanding_[parent_id] += num_clones;
  // Parent rax = 0: success, parent side.
  for (auto& v : parent->vcpus) {
    v.rax = 0;
  }
  m_stage1_ns_.Observe((hv_.loop().Now() - stage1_start).ns());
  return children;
}

Status CloneEngine::CloneAborted(DomId child) {
  hv_.ChargeHypercall();
  auto it = pending_children_.find(child);
  if (it == pending_children_.end()) {
    return ErrNotFound("no pending clone for this child");
  }
  DomId parent_id = it->second.parent;
  pending_children_.erase(it);
  ++stats_.rollbacks;
  m_rolled_back_.Increment();

  for (CloneObserver* obs : observers_) {
    obs->OnCloneAborted(parent_id, child);
  }

  // An aborted child retires its outstanding slot exactly like a completed
  // one: the parent must not stay paused forever because one clone of a
  // batch failed.
  auto out = outstanding_.find(parent_id);
  if (out != outstanding_.end() && --out->second == 0) {
    outstanding_.erase(out);
    Domain* parent = hv_.FindDomain(parent_id);
    if (parent != nullptr) {
      parent->blocked_in_clone = false;
      (void)hv_.UnpauseDomain(parent_id);
      stats_.last_parent_resume = hv_.loop().Now();
      FireResume(parent_id, /*is_child=*/false);
    }
  }
  return Status::Ok();
}

Status CloneEngine::CloneCompletion(DomId child) {
  hv_.ChargeHypercall();
  auto it = pending_children_.find(child);
  if (it == pending_children_.end()) {
    return ErrNotFound("no pending clone for this child");
  }
  DomId parent_id = it->second.parent;
  m_stage2_ns_.Observe((hv_.loop().Now() - it->second.pushed_at).ns());
  pending_children_.erase(it);

  for (CloneObserver* obs : observers_) {
    obs->OnCloneComplete(parent_id, child);
  }

  Domain* child_dom = hv_.FindDomain(child);
  if (child_dom != nullptr && child_dom->state != DomainState::kPaused) {
    // Children are resumed unless their configuration keeps them paused;
    // xencloned pauses them explicitly beforehand in that case.
    (void)hv_.UnpauseDomain(child);
    FireResume(child, /*is_child=*/true);
  }

  auto out = outstanding_.find(parent_id);
  if (out != outstanding_.end() && --out->second == 0) {
    outstanding_.erase(out);
    Domain* parent = hv_.FindDomain(parent_id);
    if (parent != nullptr) {
      parent->blocked_in_clone = false;
      (void)hv_.UnpauseDomain(parent_id);
      stats_.last_parent_resume = hv_.loop().Now();
      FireResume(parent_id, /*is_child=*/false);
    }
  }
  return Status::Ok();
}

void CloneEngine::FireResume(DomId dom, bool is_child) {
  // Observers are read at fire time, so registrations between the resume
  // decision and its delivery are honoured — the engine outlives the loop.
  hv_.loop().Post(SimDuration::Nanos(0), [this, dom, is_child] {
    for (CloneObserver* obs : observers_) {
      obs->OnResume(dom, is_child);
    }
  });
}

Status CloneEngine::CloneCow(DomId caller, DomId dom, Gfn gfn, std::size_t count) {
  hv_.ChargeHypercall();
  if (caller != dom && caller != kDom0) {
    return ErrPermissionDenied("clone_cow: not owner or Dom0");
  }
  const Domain* d = hv_.FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("clone_cow: no such domain");
  }
  // Bound the whole range up front: `gfn + i` wraps at 2^32 for hostile
  // counts, which would otherwise loop (and resolve COW) astronomically.
  if (gfn > d->p2m.size() || count > d->p2m.size() - gfn) {
    return ErrOutOfRange("clone_cow: range outside p2m");
  }
  for (std::size_t i = 0; i < count; ++i) {
    NEPHELE_RETURN_IF_ERROR(hv_.ForceCowResolve(dom, gfn + static_cast<Gfn>(i)));
    ++stats_.explicit_cow_pages;
    m_explicit_cow_pages_.Increment();
  }
  return Status::Ok();
}

Result<std::size_t> CloneEngine::CloneReset(DomId caller, DomId child_id) {
  hv_.ChargeHypercall();
  if (caller != kDom0 && caller != child_id) {
    return ErrPermissionDenied("clone_reset: not Dom0");
  }
  Domain* child = hv_.FindDomain(child_id);
  if (child == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (child->parent == kDomInvalid) {
    return ErrFailedPrecondition("domain is not a clone");
  }
  Domain* parent = hv_.FindDomain(child->parent);
  if (parent == nullptr) {
    return ErrFailedPrecondition("parent gone");
  }
  // Post-copy interaction: a half-streamed child resets to its post-clone
  // state only once that state fully exists, and a target with streaming
  // children must not swap out frames they still read through. Finish both
  // directions first; a stream stall surfaces as the reset's error with the
  // partial stream progress kept.
  NEPHELE_RETURN_IF_ERROR(FinishStreaming(child_id));
  std::vector<DomId> streaming_children;
  for (const auto& [c, st] : streaming_) {
    if (st.parent == child_id) {
      streaming_children.push_back(c);
    }
  }
  for (DomId c : streaming_children) {
    NEPHELE_RETURN_IF_ERROR(FinishStreaming(c));
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_reset_));
  FrameTable& frames = hv_.frames();
  hv_.loop().AdvanceBy(hv_.costs().clone_reset_fixed);

  // Per-page restore is re-share then release, so a failure between the two
  // never leaves a page referencing a freed frame. On a mid-loop error the
  // already-restored prefix is dropped from the dirty list and the rest is
  // kept: a retry resumes exactly where this attempt stopped.
  std::vector<Gfn>& dirty = child->dirty_since_clone;
  std::size_t restored = 0;
  Status page_status = Status::Ok();
  for (Gfn gfn : dirty) {
    P2mEntry& ce = child->p2m[gfn];
    P2mEntry& pe = parent->p2m[gfn];
    if (frames.IsShared(pe.mfn)) {
      page_status = frames.ShareAgain(pe.mfn);
    } else {
      page_status = frames.ShareFirst(pe.mfn);
      if (page_status.ok()) {
        pe.writable = false;
      }
    }
    if (!page_status.ok()) {
      break;
    }
    (void)frames.Release(ce.mfn);
    ce.mfn = pe.mfn;
    ce.writable = false;
    hv_.loop().AdvanceBy(hv_.costs().clone_reset_per_page);
    ++restored;
  }
  if (!page_status.ok()) {
    dirty.erase(dirty.begin(), dirty.begin() + static_cast<std::ptrdiff_t>(restored));
    stats_.reset_pages_restored += restored;
    m_reset_pages_restored_.Increment(restored);
    return page_status;
  }
  dirty.clear();
  ++stats_.resets;
  stats_.reset_pages_restored += restored;
  m_resets_.Increment();
  m_reset_pages_restored_.Increment(restored);
  return restored;
}

Status CloneEngine::EnableGlobal(DomId caller, bool enabled) {
  hv_.ChargeHypercall();
  if (caller != kDom0) {
    return ErrPermissionDenied("only Dom0 may toggle global cloning");
  }
  hv_.SetCloningGloballyEnabled(enabled);
  return Status::Ok();
}

}  // namespace nephele
