#include "src/core/xencloned.h"

#include "src/base/log.h"
#include "src/xenstore/path.h"

namespace nephele {

Xencloned::Xencloned(Hypervisor& hv, CloneEngine& engine, XenstoreDaemon& xs,
                     DeviceManager& devices, Toolstack& toolstack, EventLoop& loop,
                     const CostModel& costs, const SystemServices& services)
    : hv_(hv),
      engine_(engine),
      xs_(xs),
      devices_(devices),
      toolstack_(toolstack),
      loop_(loop),
      costs_(costs),
      own_metrics_(services.metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(services.metrics != nullptr ? services.metrics : own_metrics_.get()),
      trace_(services.trace),
      m_clones_completed_(metrics_->GetCounter("xencloned/clones_completed")),
      m_clones_aborted_(metrics_->GetCounter("xencloned/clones_aborted")),
      m_cache_hits_(metrics_->GetCounter("xencloned/cache_hits")),
      m_cache_misses_(metrics_->GetCounter("xencloned/cache_misses")),
      m_deep_copy_writes_(metrics_->GetCounter("xencloned/deep_copy_writes")),
      m_stage2_ns_(metrics_->GetHistogram("xencloned/stage2/duration_ns")) {
  if (services.faults != nullptr) {
    f_stage2_ = services.faults->GetPoint("xencloned/stage2");
  }
}

Status Xencloned::Start() {
  // Bind VIRQ_CLONED and install the Dom0 upcall; the daemon then enables
  // cloning globally (Sec. 5.1).
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort virq_port, hv_.EvtchnBindVirq(kDom0, Virq::kCloned));
  hv_.SetEvtchnHandler(kDom0, [this, virq_port](EvtchnPort port) {
    if (port == virq_port) {
      DrainNotifications();
    }
  });
  return engine_.EnableGlobal(kDom0, true);
}

void Xencloned::DrainNotifications() {
  CloneNotification n;
  while (engine_.notification_ring().Pop(&n)) {
    HandleNotification(n);
  }
}

const DomainConfig& Xencloned::ParentConfig(DomId parent) {
  ParentInfoCache& cache = parent_cache_[parent];
  if (cache.valid) {
    ++stats_.cache_hits;
    m_cache_hits_.Increment();
    return cache.config;
  }
  ++stats_.cache_misses;
  m_cache_misses_.Increment();
  // First clone of this parent: read its Xenstore information and keep it
  // cached to speed up future invocations (Sec. 6.2).
  loop_.AdvanceBy(costs_.xencloned_parent_scan);
  (void)xs_.Read(XsDomainPath(parent) + "/name");
  (void)xs_.Read(XsDomainPath(parent) + "/console/type");
  const DomainConfig* cfg = toolstack_.FindConfig(parent);
  if (cfg != nullptr) {
    cache.config = *cfg;
  }
  cache.valid = true;
  return cache.config;
}

Status Xencloned::CloneXenstoreEntries(DomId parent, DomId child, const DomainConfig& config) {
  // One request clones the whole per-domain directory with domid rewriting;
  // one more covers the backend side of each device type (Sec. 5.2.1).
  NEPHELE_RETURN_IF_ERROR(xs_.XsClone(parent, child, XsCloneOp::kDevVif, XsDomainPath(parent),
                                      XsDomainPath(child)));
  if (config.with_vif) {
    NEPHELE_RETURN_IF_ERROR(xs_.XsClone(parent, child, XsCloneOp::kDevVif,
                                        XsBackendPath(kDom0, "vif", parent, 0),
                                        XsBackendPath(kDom0, "vif", child, 0)));
  }
  if (config.with_p9fs) {
    NEPHELE_RETURN_IF_ERROR(xs_.XsClone(parent, child, XsCloneOp::kDev9pfs,
                                        XsBackendPath(kDom0, "9pfs", parent, 0),
                                        XsBackendPath(kDom0, "9pfs", child, 0)));
  }
  if (config.with_vbd) {
    NEPHELE_RETURN_IF_ERROR(xs_.XsClone(parent, child, XsCloneOp::kDevVbd,
                                        XsBackendPath(kDom0, "vbd", parent, 0),
                                        XsBackendPath(kDom0, "vbd", child, 0)));
  }
  return Status::Ok();
}

Status Xencloned::DeepCopyXenstoreEntries(DomId /*parent*/, DomId child,
                                          const DomainConfig& config) {
  // Ablation path: one write request per entry, "similarly to how the
  // Xenstore entries are created on regular instantiation" (Sec. 6.1).
  const std::string dp = XsDomainPath(child);
  const std::string parent_name = config.name;
  // The first failed write stops the copy; later calls are no-ops so the
  // long literal sequence below needs no per-call checks.
  Status status = Status::Ok();
  auto write = [&](const std::string& path, const std::string& value) {
    if (!status.ok()) {
      return;
    }
    status = xs_.Write(path, value);
    if (!status.ok()) {
      return;
    }
    ++stats_.deep_copy_writes;
    m_deep_copy_writes_.Increment();
  };
  write(dp + "/name", parent_name);
  write(dp + "/domid", std::to_string(child));
  write(dp + "/console/ring-ref", "consring");
  write(dp + "/console/port", "2");
  write(dp + "/console/type", "xenconsoled");
  write(dp + "/console/limit", "1048576");
  write(dp + "/store/ring-ref", "storering");
  write(dp + "/store/port", "1");
  write("/vm/" + std::to_string(child) + "/name", parent_name);
  write("/vm/" + std::to_string(child) + "/uuid", "uuid-" + std::to_string(child));
  write("/libxl/" + std::to_string(child) + "/type", "pv");
  if (config.with_vif) {
    const std::string fe = XsFrontendPath(child, "vif", 0);
    const std::string be = XsBackendPath(kDom0, "vif", child, 0);
    write(fe + "/backend", be);
    write(fe + "/backend-id", "0");
    write(fe + "/handle", "0");
    write(fe + "/mac", "inherited");
    write(fe + "/tx-ring-ref", "txring");
    write(fe + "/rx-ring-ref", "rxring");
    write(fe + "/event-channel", "4");
    write(fe + "/state", XenbusStateValue(XenbusState::kConnected));
    write(be + "/frontend", fe);
    write(be + "/frontend-id", std::to_string(child));
    write(be + "/handle", "0");
    write(be + "/mac", "inherited");
    write(be + "/bridge", "xenbr0");
    write(be + "/hotplug-status", "connected");
    write(be + "/state", XenbusStateValue(XenbusState::kConnected));
  }
  if (config.with_p9fs) {
    const std::string fe = XsFrontendPath(child, "9pfs", 0);
    const std::string be = XsBackendPath(kDom0, "9pfs", child, 0);
    write(fe + "/backend", be);
    write(fe + "/backend-id", "0");
    write(fe + "/state", XenbusStateValue(XenbusState::kConnected));
    write(be + "/frontend", fe);
    write(be + "/frontend-id", std::to_string(child));
    write(be + "/path", config.p9_export);
    write(be + "/security_model", "none");
    write(be + "/state", XenbusStateValue(XenbusState::kConnected));
  }
  if (config.with_vbd) {
    const std::string fe = XsFrontendPath(child, "vbd", 0);
    const std::string be = XsBackendPath(kDom0, "vbd", child, 0);
    write(fe + "/backend", be);
    write(fe + "/backend-id", "0");
    write(fe + "/state", XenbusStateValue(XenbusState::kConnected));
    write(be + "/frontend", fe);
    write(be + "/frontend-id", std::to_string(child));
    write(be + "/sectors", std::to_string(config.vbd_size_mb * kMiB / 512));
    write(be + "/state", XenbusStateValue(XenbusState::kConnected));
  }
  return status;
}

void Xencloned::HandleNotification(const CloneNotification& n) {
  Status status = RunSecondStage(n);
  if (!status.ok()) {
    AbortSecondStage(n, status);
  }
}

Status Xencloned::RunSecondStage(const CloneNotification& n) {
  SimTime stage_start = loop_.Now();
  TraceSpan span = trace_ != nullptr ? trace_->BeginSpan("clone/stage2") : TraceSpan();
  span.AddArg("parent", static_cast<std::int64_t>(n.parent));
  span.AddArg("child", static_cast<std::int64_t>(n.child));
  loop_.AdvanceBy(costs_.xencloned_fixed);
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_stage2_));
  const DomainConfig& parent_cfg = ParentConfig(n.parent);

  // Step 2.1: introduce the child (carrying the parent id) and clone the
  // registry entries.
  NEPHELE_RETURN_IF_ERROR(xs_.IntroduceDomain(n.child, n.parent));
  if (use_xs_clone_) {
    NEPHELE_RETURN_IF_ERROR(CloneXenstoreEntries(n.parent, n.child, parent_cfg));
  } else {
    NEPHELE_RETURN_IF_ERROR(DeepCopyXenstoreEntries(n.parent, n.child, parent_cfg));
  }

  // xencloned generates and sets the clone's name — guaranteed unique, so no
  // uniqueness scan is needed (Sec. 6.1).
  DomainConfig child_cfg = parent_cfg;
  child_cfg.name = parent_cfg.name + ".clone" + std::to_string(++clone_name_counter_);
  NEPHELE_RETURN_IF_ERROR(xs_.Write(XsDomainPath(n.child) + "/name", child_cfg.name));
  (void)hv_.SetDomainName(n.child, child_cfg.name);

  GuestDevices child_devices;
  const Domain* child_dom = hv_.FindDomain(n.child);

  // Console: Xenstore watch wakes the QEMU console process, which builds the
  // clone state internally; the ring is NOT copied (Sec. 4.2).
  NEPHELE_RETURN_IF_ERROR(devices_.console().CloneConsole(
      n.parent, n.child, child_dom != nullptr ? child_dom->console_ring_gfn : kInvalidGfn));

  bool wait_for_udev = false;
  if (parent_cfg.with_vif) {
    GuestDevices* parent_devices = toolstack_.FindDevices(n.parent);
    if (parent_devices != nullptr && parent_devices->net != nullptr) {
      // Step 2.3 path: netback creates the vif Connected (negotiation
      // skipped), rings copied; the udev event completes setup below.
      auto child_fe = std::make_unique<NetFrontend>(
          hv_, n.child, parent_devices->net->devid(), parent_devices->net->mac(),
          parent_devices->net->ip());
      (void)child_fe->AdoptLayoutFrom(*parent_devices->net);
      auto vif = devices_.netback().CloneDevice(
          DeviceId{n.parent, DeviceType::kVif, parent_devices->net->devid()},
          DeviceId{n.child, DeviceType::kVif, parent_devices->net->devid()}, child_fe.get());
      NEPHELE_RETURN_IF_ERROR(vif.status());
      wait_for_udev = true;
      child_devices.net = std::move(child_fe);
    }
  }
  if (parent_cfg.with_p9fs) {
    // Step 2.2: QMP clone request to the (shared) 9pfs backend process.
    NEPHELE_RETURN_IF_ERROR(devices_.p9().CloneForChild(n.parent, n.child));
    GuestDevices* parent_devices = toolstack_.FindDevices(n.parent);
    if (parent_devices != nullptr) {
      child_devices.p9 = parent_devices->p9;
      child_devices.p9_root_fid = parent_devices->p9_root_fid;
    }
  }
  if (parent_cfg.with_vbd) {
    // Extension device type (Sec. 5.3): the child disk is a COW snapshot of
    // the parent's block table.
    DeviceId parent_disk{n.parent, DeviceType::kVbd, 0};
    DeviceId child_disk{n.child, DeviceType::kVbd, 0};
    NEPHELE_RETURN_IF_ERROR(devices_.vbd().CloneDisk(parent_disk, child_disk));
    child_devices.vbd = std::make_unique<VbdFrontend>(devices_.vbd(), child_disk);
  }

  toolstack_.AdoptClonedDomain(n.child, child_cfg, std::move(child_devices));

  if (child_cfg.start_clones_paused) {
    (void)hv_.PauseDomain(n.child);
  }
  ++stats_.clones_completed;
  m_clones_completed_.Increment();
  stats_.last_second_stage = loop_.Now() - stage_start;
  m_stage2_ns_.Observe(stats_.last_second_stage.ns());
  if (!wait_for_udev) {
    // Step 2.4: nothing left in userspace; report completion now.
    (void)engine_.CloneCompletion(n.child);
  }
  // Otherwise HandleUdev() reports completion once the vif is attached.
  return Status::Ok();
}

void Xencloned::AbortSecondStage(const CloneNotification& n, const Status& why) {
  NEPHELE_LOG(kWarn, "xencloned") << "aborting second stage of dom" << n.child << ": "
                                  << why.ToString();
  const DomainConfig& cfg = ParentConfig(n.parent);
  // Reverse of the second-stage order; every step is best-effort — whatever
  // was not yet created simply reports not-found and is skipped.
  if (cfg.with_vbd) {
    (void)devices_.vbd().DestroyDisk(DeviceId{n.child, DeviceType::kVbd, 0});
    (void)xs_.Rm(XsBackendPath(kDom0, "vbd", n.child, 0));
  }
  if (cfg.with_p9fs) {
    if (P9BackendProcess* proc = devices_.p9().FindServing(n.child); proc != nullptr) {
      (void)proc->ReleaseDomain(n.child);
    }
    (void)xs_.Rm(XsBackendPath(kDom0, "9pfs", n.child, 0));
  }
  if (cfg.with_vif) {
    (void)devices_.netback().DestroyDevice(DeviceId{n.child, DeviceType::kVif, 0});
    (void)xs_.Rm(XsBackendPath(kDom0, "vif", n.child, 0));
  }
  (void)devices_.console().DestroyConsole(n.child);
  (void)xs_.Rm(XsDomainPath(n.child));
  (void)xs_.Rm("/vm/" + std::to_string(n.child));
  (void)xs_.Rm("/libxl/" + std::to_string(n.child));
  if (xs_.DomainKnown(n.child)) {
    (void)xs_.ReleaseDomain(n.child);
  }
  ++stats_.clones_aborted;
  m_clones_aborted_.Increment();
  // Retire the pending slot first so the parent is unblocked even if the
  // destroy below were to fail.
  (void)engine_.CloneAborted(n.child);
  (void)hv_.DestroyDomain(n.child);
}

void Xencloned::HandleUdev(const UdevEvent& event) {
  if (event.kind != UdevEvent::Kind::kAdd || event.device.type != DeviceType::kVif) {
    return;
  }
  Vif* vif = devices_.netback().FindVif(event.device);
  if (vif == nullptr || vif->attached_switch() != nullptr) {
    return;
  }
  loop_.AdvanceBy(costs_.udev_event);
  loop_.AdvanceBy(costs_.switch_attach);
  HostSwitch* sw = toolstack_.default_switch();
  (void)sw->Attach(vif);
  vif->set_attached_switch(sw);
  (void)engine_.CloneCompletion(event.device.dom);
}

}  // namespace nephele
