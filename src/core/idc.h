// Inter-domain communication (IDC) primitives — the guest-visible API the
// paper adds to Unikraft (Sec. 4.3 / 5.2.2). IPC mechanisms (pipes, socket
// pairs — src/guest/ipc.h) are built from the two primitives here:
//
//  * IdcRegion  — memory shared between the parent and all current/future
//    clones, created with the DOMID_CHILD grant wildcard. Clone-time
//    ownership moves to dom_cow like any shared page, but the pages stay
//    writable on both sides (true sharing, not COW).
//  * IdcChannel — an event channel created with the DOMID_CHILD wildcard;
//    every clone is implicitly bound to it at clone time.

#ifndef SRC_CORE_IDC_H_
#define SRC_CORE_IDC_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/hypervisor/hypervisor.h"

namespace nephele {

class IdcRegion {
 public:
  // Allocates `pages` from the owner's memory, tags them kIdcShared and
  // grants access to future clones (DOMID_CHILD).
  static Result<IdcRegion> Create(Hypervisor& hv, DomId owner, std::size_t pages);

  DomId owner() const { return owner_; }
  Gfn first_gfn() const { return first_gfn_; }
  std::size_t pages() const { return pages_; }
  GrantRef first_grant_ref() const { return first_ref_; }

  // Byte access for any family member. Bounds are region-relative.
  Status Write(DomId accessor, std::size_t offset, const void* src, std::size_t len);
  Status Read(DomId accessor, std::size_t offset, void* out, std::size_t len) const;

  // Atomic-ish helpers for control words stored in the region.
  Result<std::uint32_t> LoadU32(DomId accessor, std::size_t offset) const;
  Status StoreU32(DomId accessor, std::size_t offset, std::uint32_t value);

 private:
  IdcRegion(Hypervisor& hv, DomId owner, Gfn first_gfn, std::size_t pages, GrantRef ref)
      : hv_(&hv), owner_(owner), first_gfn_(first_gfn), pages_(pages), first_ref_(ref) {}

  Status CheckAccess(DomId accessor) const;

  Hypervisor* hv_;
  DomId owner_;
  Gfn first_gfn_;
  std::size_t pages_;
  GrantRef first_ref_;
};

class IdcChannel {
 public:
  // Allocates an unbound port on `owner` naming DOMID_CHILD as the peer.
  static Result<IdcChannel> Create(Hypervisor& hv, DomId owner);

  DomId owner() const { return owner_; }
  EvtchnPort port() const { return port_; }

  // Sends a notification from `sender`'s end of the channel. For the owner
  // this reaches the first-bound clone; for a clone it reaches the owner
  // (every clone's end targets owner:port).
  Status Notify(DomId sender);

 private:
  IdcChannel(Hypervisor& hv, DomId owner, EvtchnPort port)
      : hv_(&hv), owner_(owner), port_(port) {}

  Hypervisor* hv_;
  DomId owner_;
  EvtchnPort port_;
};

}  // namespace nephele

#endif  // SRC_CORE_IDC_H_
