#include "src/core/smp.h"

namespace nephele {

namespace {

void CollectInto(const Hypervisor& hv, DomId dom, std::vector<DomId>* out) {
  const Domain* d = hv.FindDomain(dom);
  if (d == nullptr) {
    return;
  }
  out->push_back(dom);
  for (DomId child : d->children) {
    CollectInto(hv, child, out);
  }
}

}  // namespace

std::vector<DomId> CollectFamily(const Hypervisor& hv, DomId root) {
  std::vector<DomId> out;
  CollectInto(hv, root, &out);
  return out;
}

Result<std::size_t> PinFamilyAcrossCpus(Hypervisor& hv, DomId root, int num_cpus) {
  if (num_cpus <= 0) {
    return ErrInvalidArgument("need at least one cpu");
  }
  if (hv.FindDomain(root) == nullptr) {
    return ErrNotFound("no such domain");
  }
  std::vector<DomId> family = CollectFamily(hv, root);
  int next_cpu = 0;
  for (DomId dom : family) {
    Domain* d = hv.FindDomain(dom);
    for (auto& vcpu : d->vcpus) {
      vcpu.affinity = next_cpu;
      next_cpu = (next_cpu + 1) % num_cpus;
    }
    hv.ChargeHypercall();  // vcpu_set_affinity per domain
  }
  return family.size();
}

}  // namespace nephele
