#include "src/core/fabric.h"

#include "src/hypervisor/types.h"

namespace nephele {

ClusterFabric::ClusterFabric(ClusterConfig config)
    : config_(std::move(config)),
      f_migrate_(faults_.GetPoint("fabric/migrate")),
      m_migrations_(metrics_.GetCounter("fabric/migrations_total")),
      m_migrations_failed_(metrics_.GetCounter("fabric/migrations_failed")),
      m_replications_(metrics_.GetCounter("fabric/replications_total")),
      m_replications_failed_(metrics_.GetCounter("fabric/replications_failed")),
      h_migration_ns_(metrics_.GetHistogram("fabric/migration_ns")),
      h_replication_ns_(metrics_.GetHistogram("fabric/replication_ns")) {
  if (config_.hosts == 0) {
    config_.hosts = 1;
  }
  hosts_.reserve(config_.hosts);
  for (std::size_t i = 0; i < config_.hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(loop_, config_.host, i));
  }
  // Full directed mesh. Links share the fabric registry's counters and the
  // single "fabric/link" fault point, so one armed spec covers every link.
  for (std::size_t s = 0; s < config_.hosts; ++s) {
    for (std::size_t d = 0; d < config_.hosts; ++d) {
      if (s == d) {
        continue;
      }
      std::string name =
          "host" + std::to_string(s) + "->host" + std::to_string(d);
      links_.emplace(std::make_pair(s, d),
                     std::make_unique<FabricLink>(loop_, std::move(name), config_.link,
                                                  &metrics_, &faults_));
    }
  }
}

FabricLink& ClusterFabric::link(std::size_t src, std::size_t dst) {
  return *links_.at({src, dst});
}

Status ClusterFabric::SetLinkDown(std::size_t src, std::size_t dst, bool down) {
  auto it = links_.find({src, dst});
  if (it == links_.end()) {
    return ErrInvalidArgument("no such link");
  }
  it->second->SetDown(down);
  return Status::Ok();
}

Status ClusterFabric::Partition(std::size_t host_index, bool down) {
  if (host_index >= hosts_.size()) {
    return ErrInvalidArgument("no such host");
  }
  for (auto& [key, link] : links_) {
    if (key.first == host_index || key.second == host_index) {
      link->SetDown(down);
    }
  }
  return Status::Ok();
}

std::size_t ClusterFabric::StreamPayloadBytes(const MigrationStream& stream) {
  // Written pages ship explicitly; the rest of the allocation is carried as
  // p2m metadata, priced one page of descriptors per domain.
  return stream.written_pages.size() * kPageSize + kPageSize;
}

Result<DomId> ClusterFabric::Migrate(DomId dom, std::size_t src_host, std::size_t dst_host) {
  if (src_host >= hosts_.size() || dst_host >= hosts_.size()) {
    return ErrInvalidArgument("no such host");
  }
  if (src_host == dst_host) {
    return ErrInvalidArgument("source and destination host are the same");
  }
  const SimTime start = loop_.Now();
  m_migrations_.Increment();
  Host& src = *hosts_[src_host];
  Host& dst = *hosts_[dst_host];

  auto stream = src.toolstack().BeginMigrateOut(dom);
  if (!stream.ok()) {
    m_migrations_failed_.Increment();
    return stream.status();
  }
  // From here until CompleteMigrateOut the source sits paused with its
  // state intact: every failure rolls it back to running.
  auto roll_back = [&](Status why) -> Result<DomId> {
    src.toolstack().AbortMigrateOut(dom);
    m_migrations_failed_.Increment();
    return why;
  };
  if (Status s = link(src_host, dst_host).Transfer(StreamPayloadBytes(*stream)); !s.ok()) {
    return roll_back(s);
  }
  if (Status s = f_migrate_->Poke(); !s.ok()) {
    return roll_back(s);
  }
  auto in = dst.toolstack().MigrateIn(*stream);
  if (!in.ok()) {
    return roll_back(in.status());
  }
  // Point of no return: the copy runs on the destination; retire the source.
  if (Status s = src.toolstack().CompleteMigrateOut(dom); !s.ok()) {
    m_migrations_failed_.Increment();
    return s;
  }
  h_migration_ns_.Observe((loop_.Now() - start).ns());
  return in;
}

Result<DomId> ClusterFabric::ReplicateParent(DomId dom, std::size_t src_host,
                                             std::size_t dst_host) {
  if (src_host >= hosts_.size() || dst_host >= hosts_.size()) {
    return ErrInvalidArgument("no such host");
  }
  if (src_host == dst_host) {
    return ErrInvalidArgument("source and destination host are the same");
  }
  const SimTime start = loop_.Now();
  m_replications_.Increment();
  auto stream = hosts_[src_host]->toolstack().SnapshotDomain(dom);
  if (!stream.ok()) {
    m_replications_failed_.Increment();
    return stream.status();
  }
  if (Status s = link(src_host, dst_host).Transfer(StreamPayloadBytes(*stream)); !s.ok()) {
    m_replications_failed_.Increment();
    return s;
  }
  auto in = hosts_[dst_host]->toolstack().MigrateIn(*stream);
  if (!in.ok()) {
    m_replications_failed_.Increment();
    return in.status();
  }
  h_replication_ns_.Observe((loop_.Now() - start).ns());
  return in;
}

std::string ClusterFabric::ExportClusterMetricsJson() const {
  std::vector<std::pair<std::string, const MetricsRegistry*>> parts;
  parts.reserve(hosts_.size() + 1);
  parts.emplace_back("", &metrics_);
  for (const auto& host : hosts_) {
    parts.emplace_back(host->metrics_prefix(), &host->metrics());
  }
  return ExportMergedJson(parts);
}

}  // namespace nephele
