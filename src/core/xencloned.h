// xencloned: the new toolstack daemon that runs the second stage of cloning
// in Dom0 userspace (Sec. 4.2, 5): introduces the child to Xenstore, clones
// the device registry entries (via xs_clone or per-entry deep copy), kicks
// each backend's clone path, handles the resulting udev events, and reports
// completion back to the hypervisor.

#ifndef SRC_CORE_XENCLONED_H_
#define SRC_CORE_XENCLONED_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/result.h"
#include "src/core/clone_engine.h"
#include "src/core/clone_types.h"
#include "src/devices/device_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/services.h"
#include "src/obs/trace.h"
#include "src/toolstack/toolstack.h"
#include "src/xenstore/store.h"

namespace nephele {

struct XenclonedStats {
  std::uint64_t clones_completed = 0;
  // Second stages that failed midway and were unwound (child destroyed,
  // Xenstore subtrees removed, parent unblocked).
  std::uint64_t clones_aborted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t deep_copy_writes = 0;
  // Userspace (second-stage) duration of the most recent clone, excluding
  // asynchronous udev completion — the "userspace operations" series of
  // Figs. 6 and 8.
  SimDuration last_second_stage;
};

class Xencloned {
 public:
  // Every service in `services` may be null: the daemon then records into a
  // private registry, skips tracing (standalone constructions keep working),
  // and never arms the xencloned/stage2 fault point.
  Xencloned(Hypervisor& hv, CloneEngine& engine, XenstoreDaemon& xs, DeviceManager& devices,
            Toolstack& toolstack, EventLoop& loop, const CostModel& costs,
            const SystemServices& services = {});

  // Binds VIRQ_CLONED, submits the notification ring and enables cloning
  // globally — the daemon's startup sequence.
  Status Start();

  // The xs_clone ablation: disable to fall back to one write request per
  // Xenstore entry (the "clone + XS deep copy" series of Fig. 4).
  void SetUseXsClone(bool use) { use_xs_clone_ = use; }

  // Udev events for clone-created vifs land here (routed by the system
  // wiring); completes the userspace part of device setup.
  void HandleUdev(const UdevEvent& event);

  const XenclonedStats& stats() const { return stats_; }

  // Drains any pending notifications immediately (normally driven by
  // VIRQ_CLONED through the event loop).
  void DrainNotifications();

 private:
  struct ParentInfoCache {
    DomainConfig config;
    bool valid = false;
  };

  void HandleNotification(const CloneNotification& n);
  // The fallible body of the second stage. Any error aborts the clone:
  // HandleNotification then calls AbortSecondStage to unwind.
  Status RunSecondStage(const CloneNotification& n);
  // Best-effort reverse-order unwind of a failed second stage: device
  // backends, Xenstore subtrees, the store connection and finally the child
  // domain itself; retires the pending slot through CloneEngine::CloneAborted
  // so the parent never stays blocked on the failed child.
  void AbortSecondStage(const CloneNotification& n, const Status& why);
  // Reads (or serves from cache) the parent's Xenstore information needed
  // to build the clone's entries (Sec. 6.2: ~3 ms first clone, ~1.9 ms
  // cached afterwards).
  const DomainConfig& ParentConfig(DomId parent);
  Status CloneXenstoreEntries(DomId parent, DomId child, const DomainConfig& config);
  Status DeepCopyXenstoreEntries(DomId parent, DomId child, const DomainConfig& config);

  Hypervisor& hv_;
  CloneEngine& engine_;
  XenstoreDaemon& xs_;
  DeviceManager& devices_;
  Toolstack& toolstack_;
  EventLoop& loop_;
  const CostModel& costs_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;
  Counter& m_clones_completed_;
  Counter& m_clones_aborted_;
  Counter& m_cache_hits_;
  Counter& m_cache_misses_;
  Counter& m_deep_copy_writes_;
  Histogram& m_stage2_ns_;
  FaultPoint* f_stage2_ = nullptr;

  bool use_xs_clone_ = true;
  std::map<DomId, ParentInfoCache> parent_cache_;
  std::uint64_t clone_name_counter_ = 0;
  XenclonedStats stats_;
};

}  // namespace nephele

#endif  // SRC_CORE_XENCLONED_H_
