// CloneEngine: the hypervisor side of Nephele — the CLONEOP hypercall and
// the first stage of cloning (Sec. 4.1, 5.1, 5.2). It operates directly on
// hypervisor state, exactly as the real implementation extends Xen itself.
//
// The first stage of a batch runs in three phases:
//
//   plan    (simulation thread, serial)  — validation, fault pokes, frame
//           allocations off the free list, parent-side mutations (COW pte
//           flips, clone accounting), per-child virtual-time lane math and
//           every metrics/stats update. Everything that can fail fails here.
//   stage   (worker pool, parallel)      — per-child heavy lifting against
//           pre-allocated frames: private page copies, COW share refcounts
//           (FrameTable::StageShareAll), p2m construction, grant/event-
//           channel table duplication. Staging is infallible by construction.
//   commit  (simulation thread, serial, child-index order) — parent IDC
//           event-channel fix-up, notification-ring pushes, VIRQ_CLONED,
//           pending/outstanding bookkeeping.
//
// Because failures, metrics and externally visible ordering all live in the
// serial phases, the result of a batch is byte-identical at any worker
// thread count; only wall-clock time changes. Virtual time is charged as the
// critical path over the per-child lanes (a batch costs its slowest child,
// not the sum), which for a single clone degenerates to the exact serial
// cost.

#ifndef SRC_CORE_CLONE_ENGINE_H_
#define SRC_CORE_CLONE_ENGINE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/core/clone_types.h"
#include "src/core/worker_pool.h"
#include "src/fault/fault.h"
#include "src/hypervisor/hypervisor.h"
#include "src/obs/clone_observer.h"
#include "src/obs/metrics.h"
#include "src/obs/services.h"
#include "src/obs/trace.h"

namespace nephele {

class CloneEngine {
 public:
  // Every service in `services` may be null: the engine then records into a
  // private registry (standalone constructions in tests keep working), skips
  // tracing, and never arms its stage-1 fault points. NepheleSystem passes
  // services() so the whole stack exports through one registry.
  explicit CloneEngine(Hypervisor& hv, const SystemServices& services = {});

  // ---------------------------------------------------------------------
  // CLONEOP subcommands.
  // ---------------------------------------------------------------------

  // kClone: creates `req.num_children` children of `req.parent` (see
  // CloneRequest for the field semantics). On success the parent is paused
  // until every child finishes the second stage, and the returned array is
  // what the hypervisor writes back to the caller.
  Result<std::vector<DomId>> Clone(const CloneRequest& req);

  // kCloneCompletion: xencloned signals that the second stage of `child` is
  // done. Resumes the child (unless configured paused) and the parent once
  // all its outstanding children completed.
  Status CloneCompletion(DomId child);

  // The failure twin of CloneCompletion: xencloned reports that the second
  // stage of `child` failed and the child was destroyed. Retires the pending
  // entry, fires OnCloneAborted and — like a completion — unblocks the
  // parent once no children remain outstanding, so a partial batch failure
  // never wedges the parent.
  Status CloneAborted(DomId child);

  // kCloneCow: explicitly un-share (COW) `count` pages of `dom` starting at
  // `gfn`, so KFX can insert breakpoints into clone-private text (Sec. 7.2).
  Status CloneCow(DomId caller, DomId dom, Gfn gfn, std::size_t count);

  // kCloneReset: restores every page `child` dirtied since its clone back to
  // the shared post-clone state (Sec. 7.2 memory reset between fuzz
  // iterations). Returns the number of pages restored.
  Result<std::size_t> CloneReset(DomId caller, DomId child);

  // kEnableGlobal.
  Status EnableGlobal(DomId caller, bool enabled);

  // ---------------------------------------------------------------------
  // Lazy (post-copy) cloning.
  // ---------------------------------------------------------------------
  // A CloneRequest with `lazy` set (and LazyCloneConfig::enabled) maps only
  // the hot working set in stage 1; every other kData page becomes a
  // not-present p2m entry backed by the parent, recorded in the child's
  // deferred ledger (Domain::lazy_deferred_pages). The remainder streams in
  // through a background prefetcher on the event loop, with demand faults
  // (guest writes, grants, clone_cow) materialising individual pages ahead
  // of the stream. A fully-streamed lazy child is state-for-state identical
  // to an eager clone of the same parent.

  // Replaces the prefetcher knobs. Affects batches planned and stream
  // batches run after the call; in-flight streams keep their page list but
  // pick up the new batch size and interval.
  void SetLazyConfig(const LazyCloneConfig& cfg) { lazy_cfg_ = cfg; }
  const LazyCloneConfig& lazy_config() const { return lazy_cfg_; }

  // True while `child` still has deferred pages to stream.
  bool IsStreaming(DomId child) const { return streaming_.count(child) > 0; }
  // Deferred pages `child` still owes (0 when not streaming).
  std::size_t PendingStreamPages(DomId child) const;

  // Synchronously streams every remaining deferred page of `child`, poking
  // the "lazy/stream" fault point once per batch like the background
  // prefetcher would. On an injected fault the stream stalls: the error is
  // returned, progress so far is kept, and the child remains streaming.
  // Not-streaming children succeed trivially. Clone() of a streaming
  // parent, CloneReset() of a streaming child (or of a parent with
  // streaming children) and the scheduler's park path all funnel through
  // this, so no operation ever observes a half-mapped domain it would
  // mis-handle.
  Status FinishStreaming(DomId child);

  // Manual-mode pump: runs up to `batches` prefetcher batches, round-robin
  // over streaming children in ascending DomId order. Returns the number of
  // pages materialised. Stalled batches (armed "lazy/stream" fault) count
  // against `batches` but stream nothing. The DST executor and the hvfuzz
  // harness drive streams exclusively through this (auto_stream=false) so
  // mid-stream windows between ops are deterministic.
  std::size_t StreamPump(std::size_t batches = 1);

  // ---------------------------------------------------------------------
  // Wiring.
  // ---------------------------------------------------------------------
  CloneNotificationRing& notification_ring() { return ring_; }

  // All clone-path instrumentation — the guest runtime, the metrics layer,
  // tracing, benches — registers through this single interface. Observers
  // are not owned; callers must RemoveObserver before destroying one. They
  // run in registration order (see clone_observer.h for per-callback
  // delivery semantics).
  void AddObserver(CloneObserver* observer);
  void RemoveObserver(CloneObserver* observer);

  // Number of host threads staging clone batches. 1 (the default) stages
  // inline on the simulation thread; n > 1 partitions children of a batch
  // round-robin across n pool workers. The pool is created lazily on the
  // first multi-threaded batch and torn down on reconfiguration. Results
  // are identical at any setting; only wall-clock time changes.
  void SetWorkerThreads(unsigned n);
  unsigned worker_threads() const { return worker_threads_; }

  const CloneStats& stats() const { return stats_; }

  // Registry this engine records into (its own fallback unless one was
  // injected).
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  // Per-child output of the plan phase: everything a worker needs to stage
  // the child without taking any decision of its own.
  struct ChildPlan {
    DomId id = kDomInvalid;
    Domain* child = nullptr;
    // Frames pre-allocated for the child's private guest pages, in ascending
    // parent-gfn order (parallel to BatchPlan::private_gfns).
    std::vector<Mfn> private_mfns;
    // This child's virtual-time lane (its cost had it been cloned alone,
    // minus the hypercall trap).
    SimDuration lane;
    // True once the staging job was handed to a worker (or ran inline):
    // the child is then fully built and rollback derives its effects from
    // the child's p2m instead of from private_mfns.
    bool dispatched = false;
  };

  // Batch-wide facts computed once during the first child's full-page scan.
  // Later children reuse them instead of re-deciding per page.
  struct BatchPlan {
    // Parent gfns holding private-role pages, ascending.
    std::vector<Gfn> private_gfns;
    // Parent frames that entered COW sharing in THIS batch (rollback must
    // Unshare these; frames shared by an earlier batch only lose a ref).
    std::unordered_set<Mfn> first_shared;
    // Parent ptes flipped writable->read-only by this batch, for rollback.
    std::vector<Gfn> writable_flips;
    // Shared-page counts (idc + regular = every non-private page).
    std::size_t idc_pages = 0;
    std::size_t regular_pages = 0;
    // Cost of one child's private-page work (identical for every child).
    SimDuration private_cost;
    DomId first_child = kDomInvalid;
    // --- Lazy mode (set once in Clone(), read-only afterwards). ---
    bool lazy = false;
    // The hot working set: gfns mapped eagerly. StageChild re-derives the
    // defer decision from this set, so plan and stage agree by construction.
    std::unordered_set<Gfn> hot;
    // Parent gfns deferred for every child (kData, not hot), ascending —
    // the initial stream list of each child.
    std::vector<Gfn> deferred_gfns;
  };

  // Plan phase. PlanFirstChild walks every parent page (classifying,
  // poking faults in the serial-engine order, bumping page counters,
  // flipping parent ptes); PlanNextChild is O(private pages) — every one of
  // its shares is a re-share of a page the first child already shared.
  // Both leave a partially-planned child behind on failure; RollbackBatch
  // cleans it up.
  Status PlanChildCommon(Domain& parent, ChildPlan& cp);
  Status PlanFirstChild(Domain& parent, BatchPlan& batch, ChildPlan& cp);
  Status PlanNextChild(Domain& parent, BatchPlan& batch, ChildPlan& cp);
  Status PlanTables(Domain& parent, ChildPlan& cp);

  // Lazy-mode plan: a full per-page walk for EVERY child of the batch (no
  // O(private) fast path — deferral already removed the bulk of the work),
  // skipping shares for deferred pages. `first` fills the batch-wide facts.
  Status PlanChildLazy(Domain& parent, BatchPlan& batch, ChildPlan& cp, bool first);

  // Seeds BatchPlan::hot for a lazy batch: specials and private pages are
  // implicitly hot (never deferred); this collects the explicit hint plus up
  // to max_hot_pages recently-touched parent pages (dirty_since_clone, then
  // still-writable kData pages — exactly the pages that saw a write since
  // the previous clone).
  void ComputeHotSet(const Domain& parent, const CloneRequest& req, BatchPlan& batch);

  // Shares the parent's frame at `gfn` into `child` and clears the deferred
  // ledger entry. The caller has checked the entry is not present and
  // charges its own fixed cost (stream batch vs demand fault); this charges
  // the per-page share cost. Infallible: streaming state guarantees a live,
  // fully-mapped parent.
  void MaterializePage(Domain& parent, Domain& child, Gfn gfn);

  // One prefetcher batch for `child`: pokes "lazy/stream" (a fault stalls
  // the batch — returned, nothing streamed), charges the batch cost and
  // materialises up to stream_batch_pages deferred pages. `out_pages`
  // (optional) reports pages materialised. Erases the stream state when the
  // child finishes.
  Status RunStreamBatch(DomId child, std::size_t* out_pages);

  // Background tick: one batch, then re-posts itself while the child still
  // streams (also after a stall — the injected fault is treated as a
  // transient backend error, so the stream retries instead of dying).
  void ScheduleStreamTick(DomId child);

  // Demand path (Hypervisor::LazyTouchHook): a touch of (dom, gfn) that
  // needs page materialisation before the regular COW machinery may look at
  // the entry. Two cases — `dom` is a streaming child touching its own
  // not-present entry (demand fault), or `dom` is a parent about to COW a
  // page its streaming children still defer (the write would break the
  // children's snapshot, so the page is pushed to them first). Pokes
  // "lazy/demand_fault"; an injected fault surfaces as the touch's error
  // and leaves every entry deferred.
  Status OnLazyTouch(DomId dom, Gfn gfn);

  // Hypervisor::DomainDestroyHook: tearing down a streaming parent first
  // force-finishes its children's streams (no fault pokes — the destroy is
  // already committed); tearing down a streaming child cancels its stream.
  void OnDomainDestroy(DomId dom);

  // Stage phase: runs on a pool worker (or inline when worker_threads_==1).
  // Touches only the child's state, pre-allocated frames, read-only parent
  // state and the shard-locked FrameTable::StageShareAll path.
  void StageChild(const Domain& parent, const BatchPlan& batch, ChildPlan& cp);

  // Unwinds a failed batch (children [0, n) of `plans`, newest first) back
  // to the pre-hypercall state. Dispatched children are derived-rolled-back
  // from their p2m; the failing child returns its consumed allocations.
  void RollbackBatch(Domain& parent, BatchPlan& batch, std::vector<ChildPlan>& plans);

  // Exact per-page counter/lane accounting for a mid-scan plan failure in
  // PlanNextChild: recomputes what the pages in [0, end_gfn) contributed.
  void AccountPartialScan(const Domain& parent, Gfn end_gfn, SimDuration& lane);

  void CloneVcpus(const Domain& parent, Domain& child);
  void FireResume(DomId dom, bool is_child);

  struct PendingChild {
    DomId parent = kDomInvalid;
    // When the notification was pushed: start of the second stage.
    SimTime pushed_at;
  };

  // Stream of one lazy child. `deferred` is fixed at commit; `cursor` walks
  // it — entries a demand fault materialised first are skipped when the
  // stream reaches them. cursor == deferred.size() ⇔ ledger is 0 ⇔ done.
  struct StreamState {
    DomId parent = kDomInvalid;
    std::vector<Gfn> deferred;
    std::size_t cursor = 0;
  };

  Hypervisor& hv_;
  CloneNotificationRing ring_;
  CloneStats stats_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;

  Counter& m_clones_;
  Counter& m_batches_;
  Counter& m_pages_shared_;
  Counter& m_pages_shared_first_;
  Counter& m_pages_shared_again_;
  Counter& m_pages_private_copied_;
  Counter& m_pages_idc_shared_;
  Counter& m_resets_;
  Counter& m_reset_pages_restored_;
  Counter& m_explicit_cow_pages_;
  Counter& m_ring_backpressure_;
  Counter& m_rolled_back_;
  Counter& m_lazy_clones_;
  Counter& m_lazy_deferred_pages_;
  Counter& m_streamed_pages_;
  Counter& m_lazy_stream_batches_;
  Counter& m_lazy_stream_stalls_;
  Counter& m_lazy_demand_faults_;
  Gauge& g_lazy_pending_pages_;
  Histogram& m_stage1_ns_;
  Histogram& m_stage2_ns_;

  // Stage-1 fault points (null when no injector was passed).
  FaultPoint* f_stage1_create_ = nullptr;
  FaultPoint* f_stage1_memory_ = nullptr;
  FaultPoint* f_stage1_share_ = nullptr;
  FaultPoint* f_stage1_page_tables_ = nullptr;
  FaultPoint* f_stage1_grants_ = nullptr;
  FaultPoint* f_stage1_evtchns_ = nullptr;
  FaultPoint* f_reset_ = nullptr;
  FaultPoint* f_lazy_stream_ = nullptr;
  FaultPoint* f_lazy_demand_ = nullptr;

  unsigned worker_threads_ = 1;
  std::unique_ptr<WorkerPool> pool_;  // created lazily; null while serial

  std::vector<CloneObserver*> observers_;
  // Outstanding second-stage completions per parent.
  std::map<DomId, unsigned> outstanding_;
  std::map<DomId, PendingChild> pending_children_;

  LazyCloneConfig lazy_cfg_;
  // Active streams, keyed by child. Ordered so StreamPump's round-robin and
  // the pending-pages gauge are worker-count independent.
  std::map<DomId, StreamState> streaming_;
};

}  // namespace nephele

#endif  // SRC_CORE_CLONE_ENGINE_H_
