// CloneEngine: the hypervisor side of Nephele — the CLONEOP hypercall and
// the first stage of cloning (Sec. 4.1, 5.1, 5.2). It operates directly on
// hypervisor state, exactly as the real implementation extends Xen itself.

#ifndef SRC_CORE_CLONE_ENGINE_H_
#define SRC_CORE_CLONE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/core/clone_types.h"
#include "src/fault/fault.h"
#include "src/hypervisor/hypervisor.h"
#include "src/obs/clone_observer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace nephele {

class CloneEngine {
 public:
  // `metrics`/`trace` may be null: the engine then records into a private
  // registry (standalone constructions in tests keep working) and skips
  // tracing. NepheleSystem passes its own instances so the whole stack
  // exports through one registry. `faults` may be null — the stage-1 fault
  // points are then never armed.
  explicit CloneEngine(Hypervisor& hv, MetricsRegistry* metrics = nullptr,
                       TraceRecorder* trace = nullptr, FaultInjector* faults = nullptr);

  // ---------------------------------------------------------------------
  // CLONEOP subcommands.
  // ---------------------------------------------------------------------

  // kClone: creates `num_clones` children of `parent`. `caller` is the
  // invoking domain — the parent itself on the guest path, or kDom0 when
  // cloning is triggered from outside the VM (fuzzing). `start_info_mfn`
  // must name the parent's start_info page (interface check). On success
  // the parent is paused until every child finishes the second stage, and
  // the returned array is what the hypervisor writes back to the caller.
  Result<std::vector<DomId>> Clone(DomId caller, DomId parent, Mfn start_info_mfn,
                                   unsigned num_clones);

  // kCloneCompletion: xencloned signals that the second stage of `child` is
  // done. Resumes the child (unless configured paused) and the parent once
  // all its outstanding children completed.
  Status CloneCompletion(DomId child);

  // The failure twin of CloneCompletion: xencloned reports that the second
  // stage of `child` failed and the child was destroyed. Retires the pending
  // entry, fires OnCloneAborted and — like a completion — unblocks the
  // parent once no children remain outstanding, so a partial batch failure
  // never wedges the parent.
  Status CloneAborted(DomId child);

  // kCloneCow: explicitly un-share (COW) `count` pages of `dom` starting at
  // `gfn`, so KFX can insert breakpoints into clone-private text (Sec. 7.2).
  Status CloneCow(DomId caller, DomId dom, Gfn gfn, std::size_t count);

  // kCloneReset: restores every page `child` dirtied since its clone back to
  // the shared post-clone state (Sec. 7.2 memory reset between fuzz
  // iterations). Returns the number of pages restored.
  Result<std::size_t> CloneReset(DomId caller, DomId child);

  // kEnableGlobal.
  Status EnableGlobal(DomId caller, bool enabled);

  // ---------------------------------------------------------------------
  // Wiring.
  // ---------------------------------------------------------------------
  CloneNotificationRing& notification_ring() { return ring_; }

  // All clone-path instrumentation — the guest runtime, the metrics layer,
  // tracing, benches — registers through this single interface. Observers
  // are not owned; callers must RemoveObserver before destroying one. They
  // run in registration order (see clone_observer.h for per-callback
  // delivery semantics).
  void AddObserver(CloneObserver* observer);
  void RemoveObserver(CloneObserver* observer);

  const CloneStats& stats() const { return stats_; }

  // Registry this engine records into (its own fallback unless one was
  // injected).
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  // One reversible side effect of the first stage, recorded as it is
  // performed. Rollback walks a child's log in reverse (Sec. 5's first
  // stage is all-or-nothing in this implementation: a clone either becomes
  // visible in the notification ring or leaves no trace).
  struct UndoEntry {
    enum class Kind {
      kChildFrame,  // a frame allocated for (and owned by) the child
      kShareFirst,  // parent frame moved to dom_cow, refcount 1 -> 2
      kShareAgain,  // already-shared frame, refcount bumped
    };
    Kind kind;
    Mfn mfn = kInvalidMfn;
    Gfn parent_gfn = kInvalidGfn;  // share entries: gfn in the parent's p2m
    bool prev_writable = false;    // share entries: parent pte state before
  };

  // A child built by CloneOne but not yet committed (no ring notification,
  // no pending/outstanding bookkeeping).
  struct StagedChild {
    DomId id = kDomInvalid;
    std::vector<UndoEntry> undo;
  };

  // First-stage pieces.
  Status CloneOne(Domain& parent, StagedChild& staged);
  Status CloneMemory(Domain& parent, Domain& child, std::vector<UndoEntry>& undo);
  void CloneVcpus(const Domain& parent, Domain& child);
  void CloneEvtchns(const Domain& parent, Domain& child);

  // Unwinds one staged child completely: shared frames un-shared (parent
  // ptes restored), child frames returned, IDC evtchn fix-ups reverted, the
  // child domain destroyed. Safe on a partially-built child.
  void RollbackStagedChild(Domain& parent, const StagedChild& staged);

  void FireResume(DomId dom, bool is_child);

  struct PendingChild {
    DomId parent = kDomInvalid;
    // When the notification was pushed: start of the second stage.
    SimTime pushed_at;
  };

  Hypervisor& hv_;
  CloneNotificationRing ring_;
  CloneStats stats_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;

  Counter& m_clones_;
  Counter& m_batches_;
  Counter& m_pages_shared_;
  Counter& m_pages_shared_first_;
  Counter& m_pages_shared_again_;
  Counter& m_pages_private_copied_;
  Counter& m_pages_idc_shared_;
  Counter& m_resets_;
  Counter& m_reset_pages_restored_;
  Counter& m_explicit_cow_pages_;
  Counter& m_ring_backpressure_;
  Counter& m_rolled_back_;
  Histogram& m_stage1_ns_;
  Histogram& m_stage2_ns_;

  // Stage-1 fault points (null when no injector was passed).
  FaultPoint* f_stage1_create_ = nullptr;
  FaultPoint* f_stage1_memory_ = nullptr;
  FaultPoint* f_stage1_share_ = nullptr;
  FaultPoint* f_stage1_page_tables_ = nullptr;
  FaultPoint* f_stage1_grants_ = nullptr;
  FaultPoint* f_stage1_evtchns_ = nullptr;
  FaultPoint* f_reset_ = nullptr;

  std::vector<CloneObserver*> observers_;
  // Outstanding second-stage completions per parent.
  std::map<DomId, unsigned> outstanding_;
  std::map<DomId, PendingChild> pending_children_;
};

}  // namespace nephele

#endif  // SRC_CORE_CLONE_ENGINE_H_
