// CloneEngine: the hypervisor side of Nephele — the CLONEOP hypercall and
// the first stage of cloning (Sec. 4.1, 5.1, 5.2). It operates directly on
// hypervisor state, exactly as the real implementation extends Xen itself.

#ifndef SRC_CORE_CLONE_ENGINE_H_
#define SRC_CORE_CLONE_ENGINE_H_

#include <functional>
#include <map>
#include <vector>

#include "src/base/result.h"
#include "src/core/clone_types.h"
#include "src/hypervisor/hypervisor.h"

namespace nephele {

class CloneEngine {
 public:
  explicit CloneEngine(Hypervisor& hv);

  // ---------------------------------------------------------------------
  // CLONEOP subcommands.
  // ---------------------------------------------------------------------

  // kClone: creates `num_clones` children of `parent`. `caller` is the
  // invoking domain — the parent itself on the guest path, or kDom0 when
  // cloning is triggered from outside the VM (fuzzing). `start_info_mfn`
  // must name the parent's start_info page (interface check). On success
  // the parent is paused until every child finishes the second stage, and
  // the returned array is what the hypervisor writes back to the caller.
  Result<std::vector<DomId>> Clone(DomId caller, DomId parent, Mfn start_info_mfn,
                                   unsigned num_clones);

  // kCloneCompletion: xencloned signals that the second stage of `child` is
  // done. Resumes the child (unless configured paused) and the parent once
  // all its outstanding children completed.
  Status CloneCompletion(DomId child);

  // kCloneCow: explicitly un-share (COW) `count` pages of `dom` starting at
  // `gfn`, so KFX can insert breakpoints into clone-private text (Sec. 7.2).
  Status CloneCow(DomId caller, DomId dom, Gfn gfn, std::size_t count);

  // kCloneReset: restores every page `child` dirtied since its clone back to
  // the shared post-clone state (Sec. 7.2 memory reset between fuzz
  // iterations). Returns the number of pages restored.
  Result<std::size_t> CloneReset(DomId caller, DomId child);

  // kEnableGlobal.
  Status EnableGlobal(DomId caller, bool enabled);

  // ---------------------------------------------------------------------
  // Wiring.
  // ---------------------------------------------------------------------
  CloneNotificationRing& notification_ring() { return ring_; }

  // Invoked when a domain resumes after cloning: the parent (is_child ==
  // false, once per clone batch) or a child (is_child == true). The guest
  // runtime uses this to continue execution on both sides.
  using ResumeHandler = std::function<void(DomId dom, bool is_child)>;
  void SetResumeHandler(ResumeHandler handler) { on_resume_ = std::move(handler); }
  // Additional observers (benchmarks, tracing); run after the primary
  // handler.
  void AddResumeObserver(ResumeHandler observer) {
    resume_observers_.push_back(std::move(observer));
  }

  // Children of the last clone batch issued by `parent` (the "array filled
  // by the hypervisor").
  const CloneStats& stats() const { return stats_; }

 private:
  // First-stage pieces.
  Result<DomId> CloneOne(Domain& parent);
  Status CloneMemory(Domain& parent, Domain& child);
  void CloneVcpus(const Domain& parent, Domain& child);
  void CloneEvtchns(const Domain& parent, Domain& child);

  void FireResume(DomId dom, bool is_child);

  Hypervisor& hv_;
  CloneNotificationRing ring_;
  CloneStats stats_;
  ResumeHandler on_resume_;
  std::vector<ResumeHandler> resume_observers_;
  // Outstanding second-stage completions per parent.
  std::map<DomId, unsigned> outstanding_;
  std::map<DomId, DomId> parent_of_pending_child_;
};

}  // namespace nephele

#endif  // SRC_CORE_CLONE_ENGINE_H_
