// NepheleSystem: the single-host convenience facade — one fully-wired
// virtualization environment (hypervisor, Xenstore, device backends,
// toolstack, clone engine and xencloned) driven by a discrete-event loop.
// This remains the library's main entry point (see examples/quickstart.cc);
// since the cluster redesign it is a thin, permanent facade over a
// single-host ClusterFabric: the wired machinery lives in Host
// (src/core/host.h), the loop in the fabric (src/core/fabric.h), and every
// accessor below forwards to the one host. Components built on top take
// `Host&` and accept a NepheleSystem via the implicit conversion, so
// single-host code reads exactly as before while multi-host code constructs
// a ClusterFabric directly.

#ifndef SRC_CORE_SYSTEM_H_
#define SRC_CORE_SYSTEM_H_

#include "src/core/fabric.h"
#include "src/core/host.h"

namespace nephele {

class NepheleSystem {
 public:
  explicit NepheleSystem(SystemConfig config = {})
      : fabric_(MakeSingleHostConfig(std::move(config))), host_(&fabric_.host(0)) {}

  NepheleSystem(const NepheleSystem&) = delete;
  NepheleSystem& operator=(const NepheleSystem&) = delete;

  // The underlying host and its fabric. Components take Host&; the
  // conversion lets `CloneScheduler sched(system)` keep reading naturally.
  Host& host() { return *host_; }
  const Host& host() const { return *host_; }
  ClusterFabric& fabric() { return fabric_; }
  operator Host&() { return *host_; }  // NOLINT(google-explicit-constructor)

  EventLoop& loop() { return host_->loop(); }
  const CostModel& costs() const { return host_->costs(); }
  Hypervisor& hypervisor() { return host_->hypervisor(); }
  XenstoreDaemon& xenstore() { return host_->xenstore(); }
  DeviceManager& devices() { return host_->devices(); }
  Toolstack& toolstack() { return host_->toolstack(); }
  CloneEngine& clone_engine() { return host_->clone_engine(); }
  Xencloned& xencloned() { return host_->xencloned(); }

  // The system-wide observability surface: every subsystem records into the
  // host's one registry, so MetricsRegistry::ExportJson() is the whole
  // story of a run. Deterministic for a seeded scenario.
  MetricsRegistry& metrics() { return host_->metrics(); }
  const MetricsRegistry& metrics() const { return host_->metrics(); }
  TraceRecorder& trace() { return host_->trace(); }

  // The system-wide deterministic fault injector. Every subsystem registers
  // its fault points here at construction; tests arm them by name (see
  // src/fault/fault.h) to drive error paths that are otherwise unreachable.
  FaultInjector& fault_injector() { return host_->fault_injector(); }

  // The service bundle (metrics + trace + faults) components constructed on
  // top of this system (GuestManager, CloneScheduler, ...) should receive.
  SystemServices services() { return host_->services(); }

  // The effective configuration. Runtime setters below keep it current, so
  // this is always what the system is actually running with.
  const SystemConfig& config() const { return host_->config(); }

  // Single entry point for retuning clone staging parallelism at runtime.
  void SetCloneWorkerThreads(unsigned n) { host_->SetCloneWorkerThreads(n); }

  // Runs the event loop until idle.
  void Settle() { fabric_.Settle(); }
  SimTime Now() const { return fabric_.Now(); }

 private:
  static ClusterConfig MakeSingleHostConfig(SystemConfig config) {
    ClusterConfig cluster;
    cluster.hosts = 1;
    cluster.host = std::move(config);
    return cluster;
  }

  ClusterFabric fabric_;
  Host* host_;
};

}  // namespace nephele

#endif  // SRC_CORE_SYSTEM_H_
