#include "src/core/worker_pool.h"

#include <utility>

namespace nephele {

WorkerPool::WorkerPool(unsigned size) {
  if (size == 0) {
    size = 1;
  }
  workers_.reserve(size);
  for (unsigned i = 0; i < size; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn after the vector is fully built so RunWorker never observes a
  // partially-constructed pool.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { RunWorker(*worker); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  // The flag flips before the stop signal so a Submit racing with Shutdown
  // either lands in a queue that will still drain, or is rejected.
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void WorkerPool::Submit(unsigned worker, std::function<void()> job) {
  if (shut_down_.load(std::memory_order_acquire)) {
    rejected_jobs_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Worker& w = *workers_[worker % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(job));
  }
  w.cv.notify_one();
}

void WorkerPool::WaitIdle() {
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lock(w->mu);
    w->idle_cv.wait(lock, [&] { return w->queue.empty() && !w->busy; });
  }
}

void WorkerPool::RunWorker(Worker& w) {
  std::unique_lock<std::mutex> lock(w.mu);
  for (;;) {
    w.cv.wait(lock, [&] { return w.stop || !w.queue.empty(); });
    if (w.queue.empty()) {
      // stop && drained: exit. Pending jobs always run before shutdown.
      return;
    }
    std::function<void()> job = std::move(w.queue.front());
    w.queue.pop_front();
    w.busy = true;
    lock.unlock();
    try {
      job();
    } catch (...) {
      exceptions_caught_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
    w.busy = false;
    if (w.queue.empty()) {
      w.idle_cv.notify_all();
    }
  }
}

}  // namespace nephele
