// virtio-net device model + kvmcloned, the KVM port's central coordination
// daemon (the xencloned analogue the paper says a KVM port needs).
//
// On KVM the guest's virtqueues live in guest RAM, so the clone inherits
// them via fork-COW — nothing to copy. What does NOT come for free is the
// host side: the child's vhost worker must be set up with the child's
// memory maps, a fresh tap created and attached to the host switch. That is
// kvmcloned's job, after which it completes the clone.

#ifndef SRC_KVM_KVMCLONED_H_
#define SRC_KVM_KVMCLONED_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/kvm/kvm_host.h"
#include "src/net/switch.h"

namespace nephele {

// The host-side endpoint of one VM's virtio-net device: a tap attached to a
// switch, fed by a vhost worker.
class KvmTap : public SwitchPort {
 public:
  KvmTap(KvmHost& host, VmId vm, MacAddr mac, Ipv4Addr ip)
      : host_(&host), vm_(vm), mac_(mac), ip_(ip),
        name_("vnet" + std::to_string(vm)) {}

  void DeliverToGuest(const Packet& packet) override;
  MacAddr mac() const override { return mac_; }
  Ipv4Addr ip() const override { return ip_; }
  std::string port_name() const override { return name_; }

  // Guest->host transmit through the vhost worker.
  Status Transmit(const Packet& packet);

  using ReceiveHandler = std::function<void(const Packet&)>;
  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }
  void set_attached_switch(HostSwitch* sw) { switch_ = sw; }
  HostSwitch* attached_switch() const { return switch_; }
  VmId vm() const { return vm_; }

 private:
  KvmHost* host_;
  VmId vm_;
  MacAddr mac_;
  Ipv4Addr ip_;
  std::string name_;
  HostSwitch* switch_ = nullptr;
  ReceiveHandler on_receive_;
};

class Kvmcloned {
 public:
  Kvmcloned(KvmHost& host, HostSwitch& host_switch);

  // Boot path: creates the VM's virtio-net device (tap + vhost).
  Result<KvmTap*> SetupNet(VmId vm, MacAddr mac, Ipv4Addr ip);

  KvmTap* FindTap(VmId vm);
  std::uint64_t clones_completed() const { return clones_completed_; }

 private:
  // Second stage on KVM: vhost re-registration + tap + switch attach.
  void HandleClone(VmId parent, VmId child);

  KvmHost& host_;
  HostSwitch& switch_;
  std::map<VmId, std::unique_ptr<KvmTap>> taps_;
  std::uint64_t clones_completed_ = 0;
};

}  // namespace nephele

#endif  // SRC_KVM_KVMCLONED_H_
