// KVM platform port — the paper's Sec. 5.3 "porting to new platforms" point
// and its Sec. 9 future work ("we intend to port Nephele to KVM").
//
// The paper's porting analysis, implemented here:
//  * "KVM already supports page sharing between parent and child domains" —
//    guest RAM lives in VMM-process anonymous memory; cloning a VM forks the
//    VMM, so ALL of guest memory goes copy-on-write for free. There is no
//    Xen-style private-page classification: virtio rings and buffers live in
//    guest RAM and are COWed like everything else.
//  * "...but it needs hypervisor interface extensions (for both clone
//    operations and IDC)" — KVM_CLONE_VM (a new vm ioctl) and
//    ivshmem/irqfd-style IDC with the CHILD wildcard (KvmIdcRegion below).
//  * "...and I/O cloning support (a central daemon like xencloned for
//    coordination and backend drivers modifications)" — src/kvm/kvmcloned.h:
//    re-registers vhost memory maps for the child, creates its tap and
//    attaches it to the host switch.
//
// The frame table is reused as the host page allocator: on KVM its dom_cow
// plays the role of the kernel's shared COW anon pages after fork().

#ifndef SRC_KVM_KVM_HOST_H_
#define SRC_KVM_KVM_HOST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hypervisor/frame_table.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

using VmId = std::uint32_t;
inline constexpr VmId kInvalidVm = 0xffffffffu;

// One guest-physical page of a KVM guest.
struct KvmPage {
  Mfn host_page = kInvalidMfn;  // frame in the host allocator
  bool writable = true;         // false while COW-shared after a clone
  bool idc_shared = false;      // ivshmem region: stays writable, never COWs
};

struct KvmVcpu {
  std::uint64_t rax = 0;  // KVM_CLONE_VM return: 0 parent / 1 child
  std::uint64_t rip = 0;
  int affinity = -1;
};

// A VM = a VMM process with its guest memory slots (the QEMU/Firecracker
// process KVM attaches to).
struct KvmVm {
  VmId id = kInvalidVm;
  std::string name;
  std::vector<KvmVcpu> vcpus;
  std::vector<KvmPage> memory;  // gfn-indexed, one slot
  bool running = false;

  VmId parent = kInvalidVm;
  VmId family_root = kInvalidVm;
  std::vector<VmId> children;
  std::uint32_t max_clones = 0;
  std::uint32_t clones_made = 0;

  std::uint64_t cow_faults = 0;
};

class KvmHost {
 public:
  KvmHost(EventLoop& loop, const CostModel& costs, std::size_t pool_frames);

  // --- /dev/kvm-shaped API ---
  Result<VmId> CreateVm(const std::string& name, int vcpus);
  Status SetUserMemoryRegion(VmId vm, std::size_t pages);
  Status Run(VmId vm);  // KVM_RUN: mark runnable
  Status DestroyVm(VmId vm);

  // --- The Nephele extension: KVM_CLONE_VM ---
  // Forks the VMM process: every guest page goes COW (no private classes —
  // the KVM difference from Xen's Sec. 4.1 private-page handling). The
  // child is left !running until kvmcloned completes I/O cloning.
  Result<VmId> CloneVm(VmId vm);
  // kvmcloned signals I/O completion; parent and child resume.
  Status CloneComplete(VmId child);

  // Guest memory access with COW resolution on write.
  Status WriteGuestPage(VmId vm, Gfn gfn, std::size_t offset, const void* src, std::size_t len);
  Status ReadGuestPage(VmId vm, Gfn gfn, std::size_t offset, void* out, std::size_t len) const;

  KvmVm* Find(VmId vm);
  const KvmVm* Find(VmId vm) const;
  bool SameFamily(VmId a, VmId b) const;
  bool IsDescendantOf(VmId maybe_child, VmId ancestor) const;

  std::size_t FreePoolFrames() const { return frames_.free_frames(); }
  const FrameTable& frames() const { return frames_; }
  EventLoop& loop() { return loop_; }
  const CostModel& costs() const { return costs_; }

  // Clone notifications towards kvmcloned (the "central daemon").
  using CloneNotifier = std::function<void(VmId parent, VmId child)>;
  void SetCloneNotifier(CloneNotifier notifier) { notifier_ = std::move(notifier); }

 private:
  Status ResolveCow(KvmVm& vm, Gfn gfn);

  EventLoop& loop_;
  const CostModel& costs_;
  FrameTable frames_;
  std::map<VmId, std::unique_ptr<KvmVm>> vms_;
  VmId next_id_ = 1;
  CloneNotifier notifier_;
  std::map<VmId, VmId> pending_parent_of_;
};

// IDC for the KVM port: an ivshmem-style shared memory region that every
// clone of the owner inherits writable (the irqfd doorbell is modelled by
// the notify callback). Interface mirrors src/core/idc.h so guest code
// ports across platforms unchanged (Sec. 5.3 "supporting new guests").
class KvmIdcRegion {
 public:
  static Result<KvmIdcRegion> Create(KvmHost& host, VmId owner, std::size_t pages);

  Status Write(VmId accessor, std::size_t offset, const void* src, std::size_t len);
  Status Read(VmId accessor, std::size_t offset, void* out, std::size_t len) const;

  VmId owner() const { return owner_; }
  Gfn first_gfn() const { return first_gfn_; }

 private:
  KvmIdcRegion(KvmHost& host, VmId owner, Gfn first_gfn, std::size_t pages)
      : host_(&host), owner_(owner), first_gfn_(first_gfn), pages_(pages) {}

  Status CheckAccess(VmId accessor) const;

  KvmHost* host_;
  VmId owner_;
  Gfn first_gfn_;
  std::size_t pages_;
};

}  // namespace nephele

#endif  // SRC_KVM_KVM_HOST_H_
