#include "src/kvm/kvmcloned.h"

namespace nephele {

void KvmTap::DeliverToGuest(const Packet& packet) {
  const KvmVm* vm = host_->Find(vm_);
  if (vm == nullptr) {
    return;
  }
  host_->loop().AdvanceBy(host_->costs().net_rx_packet);
  // vhost injects the buffer into the guest's RX virtqueue and kicks the
  // guest; delivery waits for a runnable VM (a paused clone keeps the
  // descriptors pending in its — COW-shared — queue).
  KvmHost* host = host_;
  VmId id = vm_;
  Packet copy = packet;
  ReceiveHandler handler = on_receive_;
  host_->loop().Post(SimDuration::Micros(3), [host, id, copy, handler] {
    const KvmVm* v = host->Find(id);
    if (v == nullptr || !v->running || !handler) {
      return;
    }
    handler(copy);
  });
}

Status KvmTap::Transmit(const Packet& packet) {
  const KvmVm* vm = host_->Find(vm_);
  if (vm == nullptr || !vm->running) {
    return ErrFailedPrecondition("vm not running");
  }
  host_->loop().AdvanceBy(host_->costs().net_tx_packet);
  if (switch_ != nullptr) {
    switch_->TransmitFromGuest(this, packet);
  }
  return Status::Ok();
}

Kvmcloned::Kvmcloned(KvmHost& host, HostSwitch& host_switch)
    : host_(host), switch_(host_switch) {
  host_.SetCloneNotifier([this](VmId parent, VmId child) { HandleClone(parent, child); });
}

Result<KvmTap*> Kvmcloned::SetupNet(VmId vm, MacAddr mac, Ipv4Addr ip) {
  if (taps_.contains(vm)) {
    return ErrAlreadyExists("tap exists");
  }
  auto tap = std::make_unique<KvmTap>(host_, vm, mac, ip);
  KvmTap* raw = tap.get();
  // tap creation + vhost memory registration + switch attach.
  host_.loop().AdvanceBy(host_.costs().switch_attach);
  NEPHELE_RETURN_IF_ERROR(switch_.Attach(raw));
  raw->set_attached_switch(&switch_);
  taps_[vm] = std::move(tap);
  return raw;
}

void Kvmcloned::HandleClone(VmId parent, VmId child) {
  KvmTap* parent_tap = FindTap(parent);
  if (parent_tap != nullptr) {
    // The child keeps the parent's MAC/IP, like the Xen port; vhost must be
    // re-pointed at the child VMM's memory maps.
    host_.loop().AdvanceBy(SimDuration::Micros(400));  // vhost mem-table update
    auto tap = SetupNet(child, parent_tap->mac(), parent_tap->ip());
    if (tap.ok() && parent_tap->attached_switch() != nullptr) {
      // Receive path mirrors the parent's handler by default; the guest
      // runtime replaces it when it materialises the clone.
    }
  }
  ++clones_completed_;
  (void)host_.CloneComplete(child);
}

KvmTap* Kvmcloned::FindTap(VmId vm) {
  auto it = taps_.find(vm);
  return it == taps_.end() ? nullptr : it->second.get();
}

}  // namespace nephele
