#include "src/kvm/kvm_host.h"

#include "src/base/units.h"

namespace nephele {

namespace {
// FrameTable owners for KVM: one pseudo-domid per VM (offset to keep clear
// of Xen's special ids) — the frame table only needs distinct owners.
DomId OwnerOf(VmId vm) { return static_cast<DomId>(vm % 0x7000); }
}  // namespace

KvmHost::KvmHost(EventLoop& loop, const CostModel& costs, std::size_t pool_frames)
    : loop_(loop), costs_(costs), frames_(pool_frames) {}

Result<VmId> KvmHost::CreateVm(const std::string& name, int vcpus) {
  if (vcpus <= 0) {
    return ErrInvalidArgument("vcpus must be positive");
  }
  VmId id = next_id_++;
  auto vm = std::make_unique<KvmVm>();
  vm->id = id;
  vm->name = name;
  vm->vcpus.resize(static_cast<std::size_t>(vcpus));
  vm->family_root = id;
  vms_[id] = std::move(vm);
  loop_.AdvanceBy(SimDuration::Micros(120));  // KVM_CREATE_VM + vcpu setup
  return id;
}

Status KvmHost::SetUserMemoryRegion(VmId vm, std::size_t pages) {
  KvmVm* v = Find(vm);
  if (v == nullptr) {
    return ErrNotFound("no such vm");
  }
  if (!v->memory.empty()) {
    return ErrFailedPrecondition("memory slot already set");
  }
  v->memory.reserve(pages);
  for (std::size_t i = 0; i < pages; ++i) {
    NEPHELE_ASSIGN_OR_RETURN(Mfn frame, frames_.Alloc(OwnerOf(vm)));
    loop_.AdvanceBy(costs_.frame_alloc);
    v->memory.push_back(KvmPage{frame, /*writable=*/true, /*idc_shared=*/false});
  }
  return Status::Ok();
}

Status KvmHost::Run(VmId vm) {
  KvmVm* v = Find(vm);
  if (v == nullptr) {
    return ErrNotFound("no such vm");
  }
  v->running = true;
  return Status::Ok();
}

Status KvmHost::DestroyVm(VmId vm) {
  auto it = vms_.find(vm);
  if (it == vms_.end()) {
    return ErrNotFound("no such vm");
  }
  for (KvmPage& page : it->second->memory) {
    (void)frames_.Release(page.host_page);
  }
  if (KvmVm* parent = Find(it->second->parent); parent != nullptr) {
    std::erase(parent->children, vm);
    for (VmId c : it->second->children) {
      if (KvmVm* child = Find(c); child != nullptr) {
        child->parent = it->second->parent;
        parent->children.push_back(c);
      }
    }
  } else {
    for (VmId c : it->second->children) {
      if (KvmVm* child = Find(c); child != nullptr) {
        child->parent = kInvalidVm;
      }
    }
  }
  vms_.erase(it);
  return Status::Ok();
}

Result<VmId> KvmHost::CloneVm(VmId vm) {
  KvmVm* parent = Find(vm);
  if (parent == nullptr) {
    return ErrNotFound("no such vm");
  }
  if (parent->max_clones == 0 || parent->clones_made >= parent->max_clones) {
    return ErrPermissionDenied("cloning not enabled / exhausted for this vm");
  }
  // fork() of the VMM process: O(page-table) work, all anon memory COW.
  loop_.AdvanceBy(costs_.proc_fork_fixed);
  loop_.AdvanceBy(SimDuration::Nanos(costs_.proc_fork_pte_copy.ns() *
                                     static_cast<std::int64_t>(parent->memory.size())));

  VmId child_id = next_id_++;
  auto child = std::make_unique<KvmVm>();
  child->id = child_id;
  child->name = parent->name + ".clone" + std::to_string(parent->clones_made + 1);
  child->vcpus = parent->vcpus;
  for (auto& vcpu : child->vcpus) {
    vcpu.rax = 1;  // same guest-visible contract as the Xen CLONEOP
  }
  child->parent = vm;
  child->family_root = parent->family_root;
  child->max_clones = parent->max_clones;

  child->memory.reserve(parent->memory.size());
  for (KvmPage& page : parent->memory) {
    // No private-page classes on KVM: EVERYTHING shares, including what Xen
    // would duplicate (rings, buffers); ivshmem IDC pages stay writable.
    if (frames_.IsShared(page.host_page)) {
      NEPHELE_RETURN_IF_ERROR(frames_.ShareAgain(page.host_page));
      loop_.AdvanceBy(costs_.page_share_again);
    } else {
      NEPHELE_RETURN_IF_ERROR(frames_.ShareFirst(page.host_page));
      loop_.AdvanceBy(costs_.page_share_first);
    }
    bool writable = page.idc_shared;
    page.writable = writable;
    child->memory.push_back(KvmPage{page.host_page, writable, page.idc_shared});
  }
  parent->children.push_back(child_id);
  ++parent->clones_made;
  for (auto& vcpu : parent->vcpus) {
    vcpu.rax = 0;
  }

  // Parent pauses until the central daemon finishes I/O cloning, exactly as
  // on Xen (Sec. 5); child starts paused.
  parent->running = false;
  child->running = false;
  pending_parent_of_[child_id] = vm;
  VmId parent_id = vm;
  vms_[child_id] = std::move(child);
  if (notifier_) {
    auto notify = notifier_;
    loop_.Post(SimDuration::Micros(50), [notify, parent_id, child_id] {
      notify(parent_id, child_id);
    });
  }
  return child_id;
}

Status KvmHost::CloneComplete(VmId child) {
  auto it = pending_parent_of_.find(child);
  if (it == pending_parent_of_.end()) {
    return ErrNotFound("no pending clone");
  }
  VmId parent = it->second;
  pending_parent_of_.erase(it);
  if (KvmVm* c = Find(child); c != nullptr) {
    c->running = true;
  }
  if (KvmVm* p = Find(parent); p != nullptr) {
    p->running = true;
  }
  return Status::Ok();
}

Status KvmHost::ResolveCow(KvmVm& vm, Gfn gfn) {
  KvmPage& page = vm.memory[gfn];
  if (page.writable) {
    return Status::Ok();
  }
  loop_.AdvanceBy(costs_.proc_cow_fault);
  NEPHELE_ASSIGN_OR_RETURN(auto res, frames_.ResolveCowWrite(page.host_page, OwnerOf(vm.id)));
  if (res.copied) {
    loop_.AdvanceBy(costs_.page_copy + costs_.frame_alloc);
  }
  page.host_page = res.mfn;
  page.writable = true;
  ++vm.cow_faults;
  return Status::Ok();
}

Status KvmHost::WriteGuestPage(VmId vm, Gfn gfn, std::size_t offset, const void* src,
                               std::size_t len) {
  KvmVm* v = Find(vm);
  if (v == nullptr) {
    return ErrNotFound("no such vm");
  }
  if (gfn >= v->memory.size() || offset + len > kPageSize) {
    return ErrOutOfRange("guest write outside page");
  }
  NEPHELE_RETURN_IF_ERROR(ResolveCow(*v, gfn));
  frames_.WriteBytes(v->memory[gfn].host_page, offset, static_cast<const std::uint8_t*>(src),
                     len);
  return Status::Ok();
}

Status KvmHost::ReadGuestPage(VmId vm, Gfn gfn, std::size_t offset, void* out,
                              std::size_t len) const {
  const KvmVm* v = Find(vm);
  if (v == nullptr) {
    return ErrNotFound("no such vm");
  }
  if (gfn >= v->memory.size() || offset + len > kPageSize) {
    return ErrOutOfRange("guest read outside page");
  }
  frames_.ReadBytes(v->memory[gfn].host_page, offset, static_cast<std::uint8_t*>(out), len);
  return Status::Ok();
}

KvmVm* KvmHost::Find(VmId vm) {
  auto it = vms_.find(vm);
  return it == vms_.end() ? nullptr : it->second.get();
}

const KvmVm* KvmHost::Find(VmId vm) const {
  auto it = vms_.find(vm);
  return it == vms_.end() ? nullptr : it->second.get();
}

bool KvmHost::IsDescendantOf(VmId maybe_child, VmId ancestor) const {
  const KvmVm* v = Find(maybe_child);
  while (v != nullptr && v->parent != kInvalidVm) {
    if (v->parent == ancestor) {
      return true;
    }
    v = Find(v->parent);
  }
  return false;
}

bool KvmHost::SameFamily(VmId a, VmId b) const {
  const KvmVm* va = Find(a);
  const KvmVm* vb = Find(b);
  return va != nullptr && vb != nullptr && va->family_root == vb->family_root;
}

// ---------------------------------------------------------------------------
// KvmIdcRegion
// ---------------------------------------------------------------------------

Result<KvmIdcRegion> KvmIdcRegion::Create(KvmHost& host, VmId owner, std::size_t pages) {
  KvmVm* vm = host.Find(owner);
  if (vm == nullptr) {
    return ErrNotFound("no such vm");
  }
  if (pages == 0) {
    return ErrInvalidArgument("empty region");
  }
  // ivshmem BAR carved out of the tail of guest memory: mark the pages.
  if (vm->memory.size() < pages) {
    return ErrFailedPrecondition("vm memory too small");
  }
  Gfn first = static_cast<Gfn>(vm->memory.size() - pages);
  for (std::size_t i = 0; i < pages; ++i) {
    vm->memory[first + i].idc_shared = true;
  }
  return KvmIdcRegion(host, owner, first, pages);
}

Status KvmIdcRegion::CheckAccess(VmId accessor) const {
  if (accessor == owner_ || host_->IsDescendantOf(accessor, owner_)) {
    return Status::Ok();
  }
  return ErrPermissionDenied("not a member of the owning family");
}

Status KvmIdcRegion::Write(VmId accessor, std::size_t offset, const void* src, std::size_t len) {
  NEPHELE_RETURN_IF_ERROR(CheckAccess(accessor));
  if (offset + len > pages_ * kPageSize) {
    return ErrOutOfRange("write outside region");
  }
  const auto* bytes = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    NEPHELE_RETURN_IF_ERROR(host_->WriteGuestPage(owner_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status KvmIdcRegion::Read(VmId accessor, std::size_t offset, void* out, std::size_t len) const {
  NEPHELE_RETURN_IF_ERROR(CheckAccess(accessor));
  if (offset + len > pages_ * kPageSize) {
    return ErrOutOfRange("read outside region");
  }
  auto* bytes = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    NEPHELE_RETURN_IF_ERROR(host_->ReadGuestPage(owner_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

}  // namespace nephele
