#include "src/xenstore/store.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/xenstore/path.h"

namespace nephele {

namespace {
// Approximate oxenstored per-node overhead (tree node, perms, strings).
constexpr std::size_t kPerNodeBytes = 320;

// Hostile-input limits, modelled on xenstored's quota knobs: a guest must
// not be able to balloon dom0 memory with one oversized key or value, nor
// smuggle relative components ("..") past path-prefix permission checks.
constexpr std::size_t kMaxPathBytes = 1024;
constexpr std::size_t kMaxComponentBytes = 256;
constexpr std::size_t kMaxValueBytes = 4096;

Status ValidateXsPath(const std::string& path) {
  if (path.size() > kMaxPathBytes) {
    return ErrInvalidArgument("xenstore path too long");
  }
  for (const auto& comp : SplitXsPath(path)) {
    if (comp.size() > kMaxComponentBytes) {
      return ErrInvalidArgument("xenstore path component too long");
    }
    if (comp == "." || comp == "..") {
      return ErrInvalidArgument("xenstore path components '.'/'..' not allowed");
    }
  }
  return Status::Ok();
}

Status ValidateXsValue(const std::string& value) {
  if (value.size() > kMaxValueBytes) {
    return ErrInvalidArgument("xenstore value too large");
  }
  return Status::Ok();
}
}  // namespace

XenstoreDaemon::XenstoreDaemon(EventLoop& loop, const CostModel& costs,
                               MetricsRegistry* metrics, FaultInjector* faults)
    : loop_(loop),
      costs_(costs),
      own_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(metrics != nullptr ? metrics : own_metrics_.get()),
      m_requests_(metrics_->GetCounter("xenstore/requests/total")),
      m_req_write_(metrics_->GetCounter("xenstore/requests/write")),
      m_req_read_(metrics_->GetCounter("xenstore/requests/read")),
      m_req_mkdir_(metrics_->GetCounter("xenstore/requests/mkdir")),
      m_req_rm_(metrics_->GetCounter("xenstore/requests/rm")),
      m_req_directory_(metrics_->GetCounter("xenstore/requests/directory")),
      m_req_txn_start_(metrics_->GetCounter("xenstore/requests/transaction_start")),
      m_req_txn_end_(metrics_->GetCounter("xenstore/requests/transaction_end")),
      m_req_watch_(metrics_->GetCounter("xenstore/requests/watch")),
      m_req_unwatch_(metrics_->GetCounter("xenstore/requests/unwatch")),
      m_req_introduce_(metrics_->GetCounter("xenstore/requests/introduce")),
      m_req_release_(metrics_->GetCounter("xenstore/requests/release")),
      m_req_xs_clone_(metrics_->GetCounter("xenstore/requests/xs_clone")),
      m_watches_fired_(metrics_->GetCounter("xenstore/watches/fired")),
      m_log_rotations_(metrics_->GetCounter("xenstore/log/rotations")),
      m_txn_conflicts_(metrics_->GetCounter("xenstore/txn/conflicts")) {
  if (faults != nullptr) {
    f_request_ = faults->GetPoint("xenstore/request");
    f_txn_commit_ = faults->GetPoint("xenstore/txn_commit");
    f_xs_clone_ = faults->GetPoint("xenstore/xs_clone");
  }
  metrics_->GetGauge("xenstore/entries").SetProvider([this] {
    return static_cast<std::int64_t>(stats_.entries);
  });
  metrics_->GetGauge("xenstore/approx_bytes").SetProvider([this] {
    return static_cast<std::int64_t>(approx_bytes_);
  });
  metrics_->GetGauge("xenstore/watches/active").SetProvider([this] {
    return static_cast<std::int64_t>(watches_.size());
  });
  metrics_->GetGauge("xenstore/transactions/active").SetProvider([this] {
    return static_cast<std::int64_t>(transactions_.size());
  });
}

Status XenstoreDaemon::ChargeRequest(Counter& op_counter) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_request_));
  ++stats_.requests;
  m_requests_.Increment();
  op_counter.Increment();
  SimDuration cost = costs_.xs_request_base;
  cost += SimDuration::Nanos(costs_.xs_per_entry_scan.ns() *
                             static_cast<std::int64_t>(stats_.entries));
  if (access_log_enabled_) {
    cost += costs_.xs_log_append;
    if (++requests_since_rotation_ >= costs_.xs_log_rotate_every) {
      requests_since_rotation_ = 0;
      ++stats_.log_rotations;
      m_log_rotations_.Increment();
      cost += costs_.xs_log_rotate;
    }
  }
  loop_.AdvanceBy(cost);
  return Status::Ok();
}

XenstoreDaemon::Node* XenstoreDaemon::Lookup(const std::string& path) {
  Node* n = &root_;
  for (const auto& comp : SplitXsPath(path)) {
    auto it = n->children.find(comp);
    if (it == n->children.end()) {
      return nullptr;
    }
    n = it->second.get();
  }
  return n;
}

const XenstoreDaemon::Node* XenstoreDaemon::Lookup(const std::string& path) const {
  return const_cast<XenstoreDaemon*>(this)->Lookup(path);
}

XenstoreDaemon::Node* XenstoreDaemon::LookupOrCreate(const std::string& path) {
  Node* n = &root_;
  for (const auto& comp : SplitXsPath(path)) {
    auto it = n->children.find(comp);
    if (it == n->children.end()) {
      auto child = std::make_unique<Node>();
      Node* raw = child.get();
      n->children.emplace(comp, std::move(child));
      approx_bytes_ += kPerNodeBytes + comp.size();
      n = raw;
    } else {
      n = it->second.get();
    }
  }
  return n;
}

void XenstoreDaemon::InternalWrite(const std::string& path, const std::string& value,
                                   bool fire_watches) {
  Node* n = LookupOrCreate(path);
  if (!n->has_value) {
    n->has_value = true;
    ++stats_.entries;
  }
  approx_bytes_ += value.size() > n->value.size() ? value.size() - n->value.size() : 0;
  n->value = value;
  if (fire_watches) {
    FireWatches(path);
  }
}

Status XenstoreDaemon::Write(const std::string& path, const std::string& value) {
  NEPHELE_RETURN_IF_ERROR(ValidateXsPath(path));
  NEPHELE_RETURN_IF_ERROR(ValidateXsValue(value));
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_write_));
  ++stats_.writes;
  InternalWrite(path, value, /*fire_watches=*/true);
  JournalWrite(path);
  return Status::Ok();
}

void XenstoreDaemon::JournalWrite(const std::string& path) {
  write_journal_.emplace_back(++write_version_, path);
  // Bound the journal; transactions older than the window simply conflict.
  if (write_journal_.size() > 4096) {
    write_journal_.erase(write_journal_.begin(), write_journal_.begin() + 2048);
  }
}

Result<std::string> XenstoreDaemon::Read(const std::string& path) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_read_));
  ++stats_.reads;
  const Node* n = Lookup(path);
  if (n == nullptr || !n->has_value) {
    return ErrNotFound(path);
  }
  return n->value;
}

Status XenstoreDaemon::Mkdir(const std::string& path) {
  NEPHELE_RETURN_IF_ERROR(ValidateXsPath(path));
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_mkdir_));
  ++stats_.writes;
  LookupOrCreate(path);
  FireWatches(path);
  return Status::Ok();
}

void XenstoreDaemon::CountRemovedSubtree(const Node& node) {
  if (node.has_value) {
    --stats_.entries;
    approx_bytes_ -= std::min(approx_bytes_, node.value.size());
  }
  approx_bytes_ -= std::min(approx_bytes_, kPerNodeBytes);
  for (const auto& [name, child] : node.children) {
    CountRemovedSubtree(*child);
  }
}

Status XenstoreDaemon::Rm(const std::string& path) {
  NEPHELE_RETURN_IF_ERROR(ValidateXsPath(path));
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_rm_));
  ++stats_.writes;
  auto comps = SplitXsPath(path);
  if (comps.empty()) {
    return ErrInvalidArgument("cannot remove root");
  }
  std::string leaf = comps.back();
  comps.pop_back();
  Node* parent = Lookup(JoinXsPath(comps));
  if (parent == nullptr) {
    return ErrNotFound(path);
  }
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return ErrNotFound(path);
  }
  CountRemovedSubtree(*it->second);
  parent->children.erase(it);
  FireWatches(path);
  JournalWrite(path);
  return Status::Ok();
}

Result<std::vector<std::string>> XenstoreDaemon::Directory(const std::string& path) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_directory_));
  ++stats_.directory_lists;
  const Node* n = Lookup(path);
  if (n == nullptr) {
    return ErrNotFound(path);
  }
  std::vector<std::string> names;
  names.reserve(n->children.size());
  for (const auto& [name, child] : n->children) {
    names.push_back(name);
  }
  return names;
}


Result<XsTransactionId> XenstoreDaemon::TransactionStart() {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_txn_start_));
  XsTransactionId id = next_txn_++;
  Transaction t;
  t.start_version = write_version_;
  transactions_[id] = std::move(t);
  return id;
}

Status XenstoreDaemon::TxnWrite(XsTransactionId txn, const std::string& path,
                                const std::string& value) {
  NEPHELE_RETURN_IF_ERROR(ValidateXsPath(path));
  NEPHELE_RETURN_IF_ERROR(ValidateXsValue(value));
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_write_));
  ++stats_.writes;
  auto it = transactions_.find(txn);
  if (it == transactions_.end()) {
    return ErrNotFound("no such transaction");
  }
  it->second.writes.emplace_back(path, value);
  return Status::Ok();
}

Result<std::string> XenstoreDaemon::TxnRead(XsTransactionId txn, const std::string& path) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_read_));
  ++stats_.reads;
  auto it = transactions_.find(txn);
  if (it == transactions_.end()) {
    return ErrNotFound("no such transaction");
  }
  it->second.reads.push_back(path);
  // Read-your-writes within the transaction.
  for (auto w = it->second.writes.rbegin(); w != it->second.writes.rend(); ++w) {
    if (w->first == path) {
      return w->second;
    }
  }
  const Node* n = Lookup(path);
  if (n == nullptr || !n->has_value) {
    return ErrNotFound(path);
  }
  return n->value;
}

Status XenstoreDaemon::TransactionEnd(XsTransactionId txn, bool commit) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_txn_end_));
  auto it = transactions_.find(txn);
  if (it == transactions_.end()) {
    return ErrNotFound("no such transaction");
  }
  Transaction t = std::move(it->second);
  transactions_.erase(it);
  if (!commit) {
    return Status::Ok();
  }
  // An injected commit failure behaves exactly like a lost conflict race:
  // the transaction is gone and the caller must restart it.
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_txn_commit_));
  // Conflict detection: any committed write since transaction start that
  // touches one of this transaction's paths aborts it (EAGAIN).
  auto touches = [&](const std::string& path) {
    for (const auto& [version, written] : write_journal_) {
      if (version > t.start_version && written == path) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [path, value] : t.writes) {
    if (touches(path)) {
      m_txn_conflicts_.Increment();
      return ErrAborted("transaction conflict");
    }
  }
  for (const auto& path : t.reads) {
    if (touches(path)) {
      m_txn_conflicts_.Increment();
      return ErrAborted("transaction conflict");
    }
  }
  for (const auto& [path, value] : t.writes) {
    InternalWrite(path, value, /*fire_watches=*/true);
    JournalWrite(path);
  }
  return Status::Ok();
}

Status XenstoreDaemon::Watch(const std::string& prefix, const std::string& token,
                             const std::string& owner_tag, XsWatchCallback callback) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_watch_));
  watches_.push_back(WatchEntry{prefix, token, owner_tag, std::move(callback)});
  return Status::Ok();
}

Status XenstoreDaemon::Unwatch(const std::string& prefix, const std::string& token) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_unwatch_));
  auto before = watches_.size();
  std::erase_if(watches_, [&](const WatchEntry& w) {
    return w.prefix == prefix && w.token == token;
  });
  return watches_.size() < before ? Status::Ok() : ErrNotFound("no such watch");
}

void XenstoreDaemon::RemoveWatchesOwnedBy(const std::string& owner_tag) {
  std::erase_if(watches_, [&](const WatchEntry& w) { return w.owner_tag == owner_tag; });
}

void XenstoreDaemon::FireWatches(const std::string& path) {
  for (const auto& w : watches_) {
    if (XsPathHasPrefix(path, w.prefix)) {
      ++stats_.watches_fired;
      m_watches_fired_.Increment();
      // Watch events are delivered asynchronously over the client socket.
      auto cb = w.callback;
      auto token = w.token;
      loop_.Post(SimDuration::Micros(20), [cb, path, token] { cb(path, token); });
    }
  }
}

Status XenstoreDaemon::IntroduceDomain(DomId domid, DomId parent) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_introduce_));
  if (known_domains_.contains(domid)) {
    return ErrAlreadyExists("domain already introduced");
  }
  known_domains_[domid] = parent;
  return Status::Ok();
}

Status XenstoreDaemon::ReleaseDomain(DomId domid) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_release_));
  if (known_domains_.erase(domid) == 0) {
    return ErrNotFound("domain not introduced");
  }
  return Status::Ok();
}

bool XenstoreDaemon::DomainKnown(DomId domid) const { return known_domains_.contains(domid); }

std::string XenstoreDaemon::GetDomainPath(DomId domid) const { return XsDomainPath(domid); }

std::string XenstoreDaemon::RewriteValue(const std::string& value, DomId parent, DomId child,
                                         XsCloneOp op) const {
  if (op == XsCloneOp::kBasic) {
    return value;
  }
  const std::string parent_str = std::to_string(parent);
  const std::string child_str = std::to_string(child);
  // Whole-value domid reference (e.g. "frontend-id" = "7").
  if (value == parent_str) {
    return child_str;
  }
  // Path fragment references (e.g. backend = ".../vif/7/0").
  std::string out = value;
  const std::string needle = "/" + parent_str + "/";
  const std::string repl = "/" + child_str + "/";
  std::size_t pos = 0;
  while ((pos = out.find(needle, pos)) != std::string::npos) {
    out.replace(pos, needle.size(), repl);
    pos += repl.size();
  }
  // Trailing "/domain/<id>" references.
  const std::string tail = "/domain/" + parent_str;
  if (out.size() >= tail.size() && out.compare(out.size() - tail.size(), tail.size(), tail) == 0) {
    out.replace(out.size() - tail.size(), tail.size(), "/domain/" + child_str);
  }
  return out;
}

void XenstoreDaemon::CloneSubtree(const Node& src, const std::string& dst_path, DomId parent,
                                  DomId child, XsCloneOp op) {
  // Server-side per-node work is far cheaper than a client request: no
  // socket roundtrip, no log append.
  loop_.AdvanceBy(SimDuration::Micros(2));
  if (src.has_value) {
    InternalWrite(dst_path, RewriteValue(src.value, parent, child, op), /*fire_watches=*/false);
  } else {
    LookupOrCreate(dst_path);
  }
  for (const auto& [name, node] : src.children) {
    CloneSubtree(*node, dst_path + "/" + name, parent, child, op);
  }
}

Status XenstoreDaemon::XsClone(DomId parent_domid, DomId child_domid, XsCloneOp op,
                               const std::string& parent_path, const std::string& child_path) {
  NEPHELE_RETURN_IF_ERROR(ChargeRequest(m_req_xs_clone_));
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_xs_clone_));
  ++stats_.xs_clone_requests;
  const Node* src = Lookup(parent_path);
  if (src == nullptr) {
    return ErrNotFound(parent_path);
  }
  if (!known_domains_.contains(child_domid)) {
    return ErrFailedPrecondition("child domain not introduced");
  }
  CloneSubtree(*src, child_path, parent_domid, child_domid, op);
  // One watch event for the cloned directory root: backends subscribed to
  // the device root discover the new subtree from it.
  FireWatches(child_path);
  return Status::Ok();
}

bool XenstoreDaemon::Exists(const std::string& path) const {
  const Node* n = Lookup(path);
  return n != nullptr;
}

const std::string* XenstoreDaemon::PeekValue(const std::string& path) const {
  const Node* n = Lookup(path);
  return n != nullptr && n->has_value ? &n->value : nullptr;
}

}  // namespace nephele
