// Xenstore path helpers: '/'-separated hierarchical keys.

#ifndef SRC_XENSTORE_PATH_H_
#define SRC_XENSTORE_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace nephele {

// Splits "/local/domain/3" into {"local", "domain", "3"}; empty components
// are dropped.
std::vector<std::string> SplitXsPath(std::string_view path);

// Joins components with '/', producing an absolute path.
std::string JoinXsPath(const std::vector<std::string>& components);

// True if `path` equals `prefix` or is beneath it.
bool XsPathHasPrefix(std::string_view path, std::string_view prefix);

// Canonical per-domain roots.
std::string XsDomainPath(unsigned domid);                        // /local/domain/<id>
std::string XsBackendPath(unsigned backend_domid, std::string_view type, unsigned frontend_domid,
                          unsigned devid);                       // /local/domain/0/backend/...
std::string XsFrontendPath(unsigned domid, std::string_view type, unsigned devid);

}  // namespace nephele

#endif  // SRC_XENSTORE_PATH_H_
