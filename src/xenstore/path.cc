#include "src/xenstore/path.h"

namespace nephele {

std::vector<std::string> SplitXsPath(std::string_view path) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) {
      slash = path.size();
    }
    if (slash > start) {
      out.emplace_back(path.substr(start, slash - start));
    }
    start = slash + 1;
  }
  return out;
}

std::string JoinXsPath(const std::vector<std::string>& components) {
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  if (out.empty()) {
    out = "/";
  }
  return out;
}

bool XsPathHasPrefix(std::string_view path, std::string_view prefix) {
  if (prefix.empty() || prefix == "/") {
    return true;
  }
  if (path.size() < prefix.size() || path.substr(0, prefix.size()) != prefix) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::string XsDomainPath(unsigned domid) { return "/local/domain/" + std::to_string(domid); }

std::string XsBackendPath(unsigned backend_domid, std::string_view type, unsigned frontend_domid,
                          unsigned devid) {
  return XsDomainPath(backend_domid) + "/backend/" + std::string(type) + "/" +
         std::to_string(frontend_domid) + "/" + std::to_string(devid);
}

std::string XsFrontendPath(unsigned domid, std::string_view type, unsigned devid) {
  return XsDomainPath(domid) + "/device/" + std::string(type) + "/" + std::to_string(devid);
}

}  // namespace nephele
