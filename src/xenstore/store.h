// The Xenstore daemon: hierarchical key-value registry with watches, the
// access log (whose rotation causes the Fig. 4 latency spikes), and Nephele's
// xs_clone request (Sec. 5.2.1) that clones a whole device directory in one
// request, rewriting domid references server-side.

#ifndef SRC_XENSTORE_STORE_H_
#define SRC_XENSTORE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/hypervisor/types.h"
#include "src/obs/metrics.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

// Clone-request flavours (paper Fig. 3).
enum class XsCloneOp : int {
  kBasic = 0,       // plain in-depth directory copy
  kDevConsole = 1,  // console device heuristics
  kDevVif = 2,      // network device heuristics
  kDev9pfs = 3,     // 9pfs device heuristics
  kDevVbd = 4,      // block device heuristics (Sec. 5.3 extension)
};

// Transaction handle (the xs_transaction_t of the client API, paper Fig. 2).
using XsTransactionId = std::uint32_t;
inline constexpr XsTransactionId kXsNoTransaction = 0;

// Fired on any change at or below the watched prefix. `path` is the changed
// node, `token` the caller-chosen tag.
using XsWatchCallback = std::function<void(const std::string& path, const std::string& token)>;

struct XenstoreStats {
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t directory_lists = 0;
  std::uint64_t watches_fired = 0;
  std::uint64_t xs_clone_requests = 0;
  std::uint64_t log_rotations = 0;
  std::uint64_t entries = 0;  // live nodes with values
};

class XenstoreDaemon {
 public:
  // `metrics` may be null: the daemon then records into a private registry
  // (standalone constructions in tests keep working). `faults` may be null
  // too — fault points are then never armed.
  XenstoreDaemon(EventLoop& loop, const CostModel& costs, MetricsRegistry* metrics = nullptr,
                 FaultInjector* faults = nullptr);

  XenstoreDaemon(const XenstoreDaemon&) = delete;
  XenstoreDaemon& operator=(const XenstoreDaemon&) = delete;

  // ------------------------------------------------------------------
  // Standard requests. Every call below models one client request: it
  // charges the request cost, appends to the access log, and may trip a
  // log rotation.
  // ------------------------------------------------------------------
  Status Write(const std::string& path, const std::string& value);
  Result<std::string> Read(const std::string& path);
  Status Mkdir(const std::string& path);
  // Removes the node and its subtree.
  Status Rm(const std::string& path);
  Result<std::vector<std::string>> Directory(const std::string& path);

  // ------------------------------------------------------------------
  // Transactions (XS_TRANSACTION_START/END): writes inside a transaction
  // are buffered and applied atomically on commit. A commit fails with
  // kAborted (xenstored's EAGAIN) when another client wrote one of the
  // transaction's touched paths in the meantime.
  // ------------------------------------------------------------------
  Result<XsTransactionId> TransactionStart();
  // commit=false discards the buffered writes.
  Status TransactionEnd(XsTransactionId txn, bool commit);
  Status TxnWrite(XsTransactionId txn, const std::string& path, const std::string& value);
  // Reads the transaction's own pending write first, then the store.
  Result<std::string> TxnRead(XsTransactionId txn, const std::string& path);
  std::size_t ActiveTransactions() const { return transactions_.size(); }

  // Registers a watch owned by `owner_tag` (used for bulk removal).
  Status Watch(const std::string& prefix, const std::string& token, const std::string& owner_tag,
               XsWatchCallback callback);
  Status Unwatch(const std::string& prefix, const std::string& token);
  void RemoveWatchesOwnedBy(const std::string& owner_tag);

  // Domain registry (XS_INTRODUCE). Cloned domains carry their parent id
  // (Sec. 5.2.1: "the introduction request being augmented with an
  // additional parameter indicating the parent ID").
  Status IntroduceDomain(DomId domid, DomId parent = kDomInvalid);
  Status ReleaseDomain(DomId domid);
  bool DomainKnown(DomId domid) const;
  std::string GetDomainPath(DomId domid) const;

  // ------------------------------------------------------------------
  // xs_clone (paper Fig. 2): clones the directory at `parent_path` to
  // `child_path` as ONE request. Device flavours rewrite every reference
  // to `parent_domid` into `child_domid` (path fragments and whole-value
  // domid strings).
  // ------------------------------------------------------------------
  Status XsClone(DomId parent_domid, DomId child_domid, XsCloneOp op,
                 const std::string& parent_path, const std::string& child_path);

  // ------------------------------------------------------------------
  // Introspection.
  // ------------------------------------------------------------------
  const XenstoreStats& stats() const { return stats_; }
  bool Exists(const std::string& path) const;
  // Side-effect-free value lookup: no request charge, no access-log append,
  // no fault pokes. Null when the node is absent or holds no value. This is
  // the DST oracle's window into the store — probing must not perturb the
  // simulation it is checking.
  const std::string* PeekValue(const std::string& path) const;
  std::size_t NumEntries() const { return stats_.entries; }
  // Approximate resident memory of the daemon (for Dom0 accounting, Fig. 5).
  std::size_t ApproxMemoryBytes() const { return approx_bytes_; }

  // Access logging can be disabled (the paper checked this has no effect on
  // the non-spike baseline; we expose it for the same ablation).
  void SetAccessLogEnabled(bool enabled) { access_log_enabled_ = enabled; }

 private:
  struct Node {
    std::string value;
    bool has_value = false;
    std::map<std::string, std::unique_ptr<Node>> children;
  };
  struct WatchEntry {
    std::string prefix;
    std::string token;
    std::string owner_tag;
    XsWatchCallback callback;
  };
  struct Transaction {
    std::uint64_t start_version = 0;
    std::vector<std::pair<std::string, std::string>> writes;  // ordered
    std::vector<std::string> reads;
  };

  // Charges one request: base + store-size scan + access log (and possibly
  // a rotation). `op_counter` is the per-op-type metric of the request.
  // Fails (before any accounting) when the "xenstore/request" fault point
  // fires — modelling a dropped/errored client request.
  Status ChargeRequest(Counter& op_counter);
  void FireWatches(const std::string& path);

  Node* Lookup(const std::string& path);
  const Node* Lookup(const std::string& path) const;
  Node* LookupOrCreate(const std::string& path);
  // Writes without request accounting (used inside xs_clone: server-side).
  void InternalWrite(const std::string& path, const std::string& value, bool fire_watches);
  void CountRemovedSubtree(const Node& node);
  void JournalWrite(const std::string& path);
  // Rewrites parent-domid references in a value per the device heuristics.
  std::string RewriteValue(const std::string& value, DomId parent, DomId child,
                           XsCloneOp op) const;
  void CloneSubtree(const Node& src, const std::string& dst_path, DomId parent, DomId child,
                    XsCloneOp op);

  EventLoop& loop_;
  const CostModel& costs_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  Counter& m_requests_;
  Counter& m_req_write_;
  Counter& m_req_read_;
  Counter& m_req_mkdir_;
  Counter& m_req_rm_;
  Counter& m_req_directory_;
  Counter& m_req_txn_start_;
  Counter& m_req_txn_end_;
  Counter& m_req_watch_;
  Counter& m_req_unwatch_;
  Counter& m_req_introduce_;
  Counter& m_req_release_;
  Counter& m_req_xs_clone_;
  Counter& m_watches_fired_;
  Counter& m_log_rotations_;
  Counter& m_txn_conflicts_;
  FaultPoint* f_request_ = nullptr;
  FaultPoint* f_txn_commit_ = nullptr;
  FaultPoint* f_xs_clone_ = nullptr;

  Node root_;
  std::vector<WatchEntry> watches_;
  std::map<DomId, DomId> known_domains_;  // domid -> parent (or kDomInvalid)
  std::map<XsTransactionId, Transaction> transactions_;
  XsTransactionId next_txn_ = 1;
  // Committed-write journal for conflict detection: (version, path).
  std::vector<std::pair<std::uint64_t, std::string>> write_journal_;
  std::uint64_t write_version_ = 0;
  XenstoreStats stats_;
  std::uint64_t requests_since_rotation_ = 0;
  bool access_log_enabled_ = true;
  std::size_t approx_bytes_ = 0;
};

}  // namespace nephele

#endif  // SRC_XENSTORE_STORE_H_
