#include "src/hvfuzz/fuzzer.h"

#include <utility>

#include "src/dst/ddmin.h"

namespace nephele {

HvFuzzer::HvFuzzer(std::uint64_t seed) : seed_(seed), engine_(seed) {
  // Graded seeds: the empty input exercises the pure fallback stream, the
  // ramps give the mutator structure to splice and flip.
  engine_.AddSeed({});
  std::vector<std::uint8_t> ramp;
  for (std::uint8_t len : {4, 12, 32}) {
    ramp.clear();
    for (std::uint8_t i = 0; i < len; ++i) {
      ramp.push_back(static_cast<std::uint8_t>(i * 7 + len));
    }
    engine_.AddSeed(ramp);
  }
}

HvTape HvFuzzer::Next() {
  last_bytes_ = engine_.NextInput();
  return TapeFromBytes(seed_, last_bytes_);
}

void HvFuzzer::Report(const HvRunResult& result) {
  engine_.ReportResult(last_bytes_, result.edges, !result.ok());
}

namespace {

// Operand reductions tried per op once deletion bottoms out. Selectors all
// pull toward 0 (the first, least hostile menu entry); structural knobs
// toward their minimum.
std::vector<HvOp> SimplerTapeVariants(const HvOp& op) {
  std::vector<HvOp> out;
  auto add = [&out, &op](auto mutate) {
    HvOp v = op;
    mutate(v);
    if (!(v == op)) {
      out.push_back(std::move(v));
    }
  };
  add([](HvOp& v) { v.a = 0; });
  add([](HvOp& v) { v.b = 0; });
  add([](HvOp& v) { v.c = 0; });
  add([](HvOp& v) {
    v.n = v.kind == HvOpKind::kClone || v.kind == HvOpKind::kLazyClone ? 1 : 0;
  });
  add([](HvOp& v) { v.v = v.v > 1 ? 1 : v.v; });
  add([](HvOp& v) { v.flags = 0; });
  // A lazy clone that eagerly maps everything is the simpler mechanism.
  add([](HvOp& v) {
    if (v.kind == HvOpKind::kLazyClone) {
      v.kind = HvOpKind::kClone;
    }
  });
  add([](HvOp& v) { v.amount = v.amount > 1 ? 1 : v.amount; });
  add([](HvOp& v) { v.nth = 1; });
  return out;
}

}  // namespace

HvShrinkOutcome ShrinkHvTape(const HvTape& failing, const HvRunResult& failure,
                             const HvRunOptions& options) {
  HvTape shell = failing;
  const std::string want_kind = failure.fail_kind;
  auto outcome = DdminShrink<HvOp, HvRunResult>(
      failing.ops, failure, failure.fail_op,
      [&shell, &options](const std::vector<HvOp>& ops) {
        shell.ops = ops;
        return RunTape(shell, options);
      },
      [&want_kind](const HvRunResult& r) { return !r.ok() && r.fail_kind == want_kind; },
      &SimplerTapeVariants);
  shell.ops = std::move(outcome.ops);
  return HvShrinkOutcome{std::move(shell), std::move(outcome.result), outcome.runs};
}

}  // namespace nephele
