// Hostile-guest operation tapes: the hvfuzz input format.
//
// A tape is a seed plus a list of HvOps — guest-issued operations against a
// live NepheleSystem, with operand *selectors* rather than concrete ids:
// `a`/`b`/`c` index menus of targets (live domain / dead domain / Dom0 /
// kDomChild / out-of-range gfn / stale handle / oversized length ...) that
// the harness resolves against its current state. Selectors keep tapes
// replayable after shrinking: deleting an op never invalidates the ones
// after it, it only changes which menu entry they land on.
//
// Tapes exist in three forms:
//   * bytes   — AFL mutation input; TapeFromBytes is a total decoder (any
//               byte string is a valid tape, same bytes => same tape);
//   * structs — what the harness executes and the ddmin shrinker edits;
//   * text    — the corpus format (tests/hvfuzz_corpus/*.tape), a strict
//               line-oriented round-trippable encoding for humans and git.

#ifndef SRC_HVFUZZ_TAPE_H_
#define SRC_HVFUZZ_TAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace nephele {

enum class HvOpKind : std::uint8_t {
  kLaunch = 0,   // boot a fresh root guest via the toolstack
  kClone,        // clone_op: a=parent sel, b=caller sel, n=children,
                 // flags bit0=bogus start_info mfn, bit1=skip settle
  kReset,        // clone_reset: a=target sel, b=caller sel
  kCow,          // clone_cow: a=target sel, c=gfn menu, n=count menu
  kDestroy,      // a=target sel
  kGrant,        // grant_access: a=granter sel, b=grantee menu, c=gfn menu,
                 // flags bit0=readonly
  kMap,          // map_grant: a=mapper sel, c=grant-handle menu
  kUnmap,        // unmap_grant: a=caller sel, c=grant-handle menu
  kEndGrant,     // end_access: c=grant-handle menu
  kEvAlloc,      // evtchn_alloc_unbound: a=owner sel, b=remote menu
  kEvBind,       // evtchn_bind_interdomain: a=binder sel, c=port-handle menu
  kEvSend,       // a=sender sel, c=port-handle menu
  kEvClose,      // a=closer sel, c=port-handle menu
  kXsWrite,      // hostile xenstore write: b=key menu, c=value menu
  kP9,           // 9p request: b=sub-op menu, c=path/fid menu
  kWrite,        // tracked heap-cell write: a=dom sel, c=slot, v=value
  kRawWrite,     // WriteGuestPage: a=dom sel, c=gfn menu, n=offset menu,
                 // v=len menu
  kRead,         // ReadGuestPage, same menus as kRawWrite
  kTouch,        // TouchGuestPages: a=dom sel, c=gfn menu, n=count menu
  kArm,          // arm fault point `point` with NthHit(nth)
  kDisarm,       // disarm all fault points
  kAdvance,      // advance virtual time by `amount` ns (capped)
  kSettle,       // drain the event loop
  kLazyClone,    // clone_op with lazy=true (post-copy): same operands as
                 // kClone; children stay partially mapped until streamed
  kLazyTouch,    // guest touch aimed at a not-present (deferred) page:
                 // a=dom sel, c=fallback gfn menu, n=count menu
  kStream,       // advance post-copy streams: flags bit0 ? FinishStreaming
                 // of a=dom sel : StreamPump(1 + n%4) manual batches
};
inline constexpr std::size_t kNumHvOpKinds = 26;

const char* HvOpKindName(HvOpKind kind);

struct HvOp {
  HvOpKind kind = HvOpKind::kLaunch;
  std::uint32_t a = 0;      // primary target selector
  std::uint32_t b = 0;      // secondary selector (caller / peer / key)
  std::uint32_t c = 0;      // tertiary selector (gfn / handle / value menu)
  std::uint32_t n = 0;      // count / offset selector
  std::uint32_t v = 0;      // value / length selector
  std::uint32_t flags = 0;  // per-kind behaviour bits
  std::uint64_t amount = 0; // time advance (ns)
  std::uint64_t nth = 1;    // kArm: NthHit trigger
  std::string point;        // kArm: fault point name

  bool operator==(const HvOp& o) const = default;
};

struct HvTape {
  std::uint64_t seed = 1;
  std::vector<HvOp> ops;

  bool operator==(const HvTape& o) const = default;
};

// Total decoder: every byte string decodes to a tape; the same (seed, bytes)
// pair always decodes to the same tape. Bytes drive the choices first, then
// a deterministic fallback stream derived from everything consumed so far.
HvTape TapeFromBytes(std::uint64_t seed, const std::vector<std::uint8_t>& bytes);

// Corpus text format:
//   # nephele hvfuzz tape v1
//   seed <n>
//   <op-name> [a=<n>] [b=<n>] [c=<n>] [n=<n>] [v=<n>] [flags=<n>]
//             [amount=<n>] [nth=<n>] [point=<name>]
// Zero-valued fields (nth: 1) are omitted on write and defaulted on parse.
std::string TapeToText(const HvTape& tape);
Result<HvTape> ParseTape(const std::string& text);

}  // namespace nephele

#endif  // SRC_HVFUZZ_TAPE_H_
