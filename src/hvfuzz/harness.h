// Hostile-guest harness: replays an HvTape against a live NepheleSystem,
// resolving each op's selectors into concrete (often deliberately invalid)
// hypercall arguments, and evaluates a hypervisor state-invariant oracle
// after every op — the bug signal is a violated invariant or an internal
// error escaping the API, not just a crash.
//
// Oracle layers, in order:
//   op-status   no operation may surface StatusCode::kInternal — hostile
//               arguments get typed errors, never invariant breakage;
//   frames      frame conservation and refcount-vs-mapping agreement;
//   p2m         every mapping names an allocated frame with a consistent
//               owner; writable-over-shared only for IDC pages;
//   grants      granter-side and mapper-side bookkeeping agree, no mapping
//               held by or into a dead domain;
//   evtchns     no dangling connections after closes and destroys;
//   cells       tracked heap cells of every guest read exactly the model's
//               value — COW isolation and clone_reset correctness;
//   teardown    after destroying everything, the pool returns to boot level.
//
// State checks run at quiesced points: an op that deliberately skips the
// post-op Settle (clone flags bit1 — the clone-during-clone window) defers
// frames/p2m/grants/evtchns/cells until the next settled op. A run is
// deterministic: the same tape yields a byte-identical digest at any clone
// worker-thread count.

#ifndef SRC_HVFUZZ_HARNESS_H_
#define SRC_HVFUZZ_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/hvfuzz/tape.h"
#include "src/toolstack/domain_config.h"

namespace nephele {

class NepheleSystem;

// The fixed configuration every hvfuzz guest boots with.
DomainConfig HvGuestConfig();

struct HvRunOptions {
  // Non-zero: stage every clone batch with this many worker threads. The
  // determinism test replays tapes at 1 and 4 and compares digests.
  unsigned force_workers = 0;
  // Test-only hook, invoked after each op executes (before the oracle) —
  // used to seed deliberate invariant bugs behind the model's back.
  std::function<void(NepheleSystem&, const HvOp&, std::size_t op_index)> after_op;
};

struct HvRunResult {
  // Empty when the run passed; otherwise the failing oracle layer
  // ("op-status", "frames", "p2m", "grants", "evtchns", "cells", "teardown").
  std::string fail_kind;
  std::size_t fail_op = static_cast<std::size_t>(-1);
  std::string message;

  // Deterministic fingerprint: per-op outcome log plus hashes of the final
  // metrics JSON, trace JSON and virtual time.
  std::string digest;
  // Coverage edges for the AFL feedback loop.
  std::vector<std::uint32_t> edges;
  std::size_t ops_executed = 0;

  bool ok() const { return fail_kind.empty(); }
};

HvRunResult RunTape(const HvTape& tape, const HvRunOptions& options = {});

}  // namespace nephele

#endif  // SRC_HVFUZZ_HARNESS_H_
