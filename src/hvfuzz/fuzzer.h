// Coverage-guided driver for the hostile-guest harness: wraps the existing
// AflEngine so hvfuzz runs ride its queue/mutation machinery, with the
// harness's executor state-edges as the coverage signal. Failing tapes go
// through the generic ddmin engine (src/dst/ddmin.h) to a 1-minimal tape
// with the same failing oracle kind, ready to be written into
// tests/hvfuzz_corpus/.

#ifndef SRC_HVFUZZ_FUZZER_H_
#define SRC_HVFUZZ_FUZZER_H_

#include <cstdint>
#include <vector>

#include "src/fuzz/afl.h"
#include "src/hvfuzz/harness.h"
#include "src/hvfuzz/tape.h"

namespace nephele {

class HvFuzzer {
 public:
  explicit HvFuzzer(std::uint64_t seed);

  // Pulls the next mutated input from the AFL queue and decodes it.
  HvTape Next();
  // Feeds the run's coverage (and crash bit) back for the tape from the
  // most recent Next().
  void Report(const HvRunResult& result);

  const AflEngine& engine() const { return engine_; }

 private:
  std::uint64_t seed_;
  AflEngine engine_;
  std::vector<std::uint8_t> last_bytes_;
};

struct HvShrinkOutcome {
  HvTape tape;          // the minimised failing tape
  HvRunResult result;   // its failing run
  std::size_t runs = 0;  // executions spent shrinking
};

// Minimises a failing tape: truncate after the failing op, ddmin-delete ops,
// then reduce operands — accepting a candidate only when it still fails with
// the same oracle kind. `options` travels with every rerun so seeded-bug
// hooks stay active while shrinking.
HvShrinkOutcome ShrinkHvTape(const HvTape& failing, const HvRunResult& failure,
                             const HvRunOptions& options = {});

}  // namespace nephele

#endif  // SRC_HVFUZZ_FUZZER_H_
