#include "src/hvfuzz/harness.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "src/core/system.h"
#include "src/devices/hostfs.h"
#include "src/devices/p9.h"
#include "src/hypervisor/invariants.h"
#include "src/xenstore/path.h"

namespace nephele {

namespace {

constexpr std::uint32_t kCells = 8;

// 64 MiB pool: enough for ~10 guests, small enough that hostile clone storms
// reach genuine pool exhaustion (the richest rollback surface).
constexpr std::size_t kPoolFrames = 16384;

std::uint64_t HvHash64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Harness {
 public:
  Harness(const HvTape& tape, const HvRunOptions& options) : tape_(tape), options_(options) {}

  HvRunResult Run();

 private:
  void ExecuteOp(const HvOp& op);

  // --- Selector resolution. ---
  // Every 4th selector value resolves hostile: Dom0, a destroyed domain id,
  // or the kDomChild pseudo-domain. An empty live set is always hostile.
  DomId ResolveDom(std::uint32_t sel) {
    if (live_.empty() || sel % 4 == 3) {
      switch ((sel / 4) % 3) {
        case 0:
          return kDom0;
        case 1:
          return dead_.empty() ? static_cast<DomId>(4242) : dead_[(sel / 16) % dead_.size()];
        default:
          return kDomChild;
      }
    }
    return live_[(sel / 4) % live_.size()];
  }

  Gfn CellGfn(std::uint32_t slot) const { return heap0_ + slot; }
  static std::size_t CellOffset(std::uint32_t slot) { return 17 + slot * 13; }

  // Boundary-heavy gfn menu. Plain-heap entries start past the tracked cell
  // pages so only kWrite/kTouch/kCow ranges ever alias a cell.
  Gfn GfnMenu(std::uint32_t c) const {
    switch (c % 6) {
      case 0:
        return 0;  // image text page
      case 1:
        return heap0_ + kCells + (c / 8) % 8;  // plain heap, never a cell
      case 2:
        return static_cast<Gfn>(guest_pages_ - 1);
      case 3:
        return static_cast<Gfn>(guest_pages_);  // one past the end
      case 4:
        return static_cast<Gfn>(guest_pages_) + c;  // far out of range
      default:
        return 0xFFFFFFF0u;  // gfn + count wrap bait
    }
  }
  static std::size_t OffMenu(std::uint32_t n) {
    constexpr std::size_t kMenu[] = {0, 1, 64, 4095, 4096, 4097, static_cast<std::size_t>(-2)};
    return kMenu[n % 7];
  }
  static std::size_t LenMenu(std::uint32_t v) {
    constexpr std::size_t kMenu[] = {0, 1, 2, 4096, 4097, static_cast<std::size_t>(-1) / 2};
    return kMenu[v % 6];
  }
  static std::size_t CountMenu(std::uint32_t n) {
    constexpr std::size_t kMenu[] = {0, 1, 8, 1024, 70000, 0xFFFFFFFFu};
    return kMenu[n % 6];
  }

  // Stale-handle menus: every 4th choice invents a handle out of thin air.
  std::pair<DomId, GrantRef> GrantHandle(std::uint32_t c) {
    if (grants_.empty() || c % 4 == 3) {
      return {ResolveDom(c / 4), static_cast<GrantRef>((c / 16) % 2048)};
    }
    return grants_[c % grants_.size()];
  }
  std::pair<DomId, EvtchnPort> PortHandle(std::uint32_t c) {
    if (ports_.empty() || c % 4 == 3) {
      return {ResolveDom(c / 4), static_cast<EvtchnPort>((c / 16) % 1500)};
    }
    return ports_[c % ports_.size()];
  }
  std::pair<DomId, std::uint32_t> FidHandle(std::uint32_t c, DomId dom) {
    if (fids_.empty() || c % 4 == 3) {
      return {dom, 9999 + c % 7};
    }
    return fids_[c % fids_.size()];
  }

  Mfn StartInfoMfnSafe(DomId dom) const {
    const Domain* d = sys_->hypervisor().FindDomain(dom);
    if (d == nullptr || d->start_info_gfn == kInvalidGfn || d->start_info_gfn >= d->p2m.size()) {
      return kInvalidMfn;
    }
    return d->p2m[d->start_info_gfn].mfn;
  }

  // --- Cell model maintenance. ---
  bool RangeCoversCell(Gfn gfn, std::size_t count, std::uint32_t slot) const {
    const std::uint64_t g = CellGfn(slot);
    return g >= gfn && g - gfn < count;
  }
  void MarkDirtyRange(DomId dom, Gfn gfn, std::size_t count) {
    if (!cells_.contains(dom)) {
      return;
    }
    for (std::uint32_t slot = 0; slot < kCells; ++slot) {
      if (RangeCoversCell(gfn, count, slot)) {
        dirty_[dom].insert(slot);
      }
    }
  }
  bool RangeIntersectsCells(Gfn gfn, std::size_t count) const {
    for (std::uint32_t slot = 0; slot < kCells; ++slot) {
      if (RangeCoversCell(gfn, count, slot)) {
        return true;
      }
    }
    return false;
  }
  void ResyncCells(DomId dom) {
    auto it = cells_.find(dom);
    if (it == cells_.end()) {
      return;
    }
    for (std::uint32_t slot = 0; slot < kCells; ++slot) {
      std::uint8_t got = 0;
      if (sys_->hypervisor()
              .ReadGuestPage(dom, CellGfn(slot), CellOffset(slot), &got, 1)
              .ok()) {
        it->second[slot] = got;
      }
    }
  }
  void ForgetDomain(DomId dom) {
    live_.erase(std::remove(live_.begin(), live_.end(), dom), live_.end());
    cells_.erase(dom);
    dirty_.erase(dom);
    tainted_.erase(dom);
    dead_.push_back(dom);
  }
  // Stage-2 aborts destroy children behind the op stream's back; fold them
  // into the dead list (and the digest) before the oracle runs.
  void PruneVanished() {
    std::vector<DomId> gone;
    for (DomId dom : live_) {
      if (sys_->hypervisor().FindDomain(dom) == nullptr) {
        gone.push_back(dom);
      }
    }
    for (DomId dom : gone) {
      log_ << " gone=" << dom;
      ForgetDomain(dom);
    }
  }

  // --- Oracle. ---
  void Fail(std::string kind, std::string message) {
    if (result_.ok()) {
      result_.fail_kind = std::move(kind);
      result_.fail_op = cur_op_;
      result_.message = std::move(message);
    }
  }
  // Logs an op outcome and enforces status discipline: hostile arguments
  // must surface typed errors, never kInternal.
  void OpCode(const Status& s) {
    last_code_ = static_cast<int>(s.code());
    log_ << ' ' << last_code_;
    if (s.code() == StatusCode::kInternal) {
      Fail("op-status", "internal error escaped the API: " + s.ToString());
    }
  }
  std::string CheckCells() {
    for (const auto& [id, want] : cells_) {
      for (std::uint32_t slot = 0; slot < kCells; ++slot) {
        std::uint8_t got = 0;
        Status s = sys_->hypervisor().ReadGuestPage(id, CellGfn(slot), CellOffset(slot), &got, 1);
        if (!s.ok()) {
          return "cell read failed for dom " + std::to_string(id) + ": " + s.ToString();
        }
        if (got != want[slot]) {
          return "COW isolation violated: dom " + std::to_string(id) + " slot " +
                 std::to_string(slot) + " reads " + std::to_string(got) + ", model says " +
                 std::to_string(want[slot]);
        }
      }
    }
    return "";
  }
  void RunOracle() {
    if (!result_.ok() || unsettled_) {
      // Mid-clone windows are not quiesced; invariants are only guaranteed
      // at settled points and will be checked at the next one.
      return;
    }
    struct Check {
      const char* kind;
      std::string message;
    };
    const Hypervisor& hv = sys_->hypervisor();
    Check checks[] = {
        {"frames", CheckFrameInvariants(hv)}, {"p2m", CheckP2mInvariants(hv)},
        {"grants", CheckGrantInvariants(hv)}, {"evtchns", CheckEvtchnInvariants(hv)},
        {"cells", CheckCells()},
    };
    for (Check& check : checks) {
      if (!check.message.empty()) {
        Fail(check.kind, std::move(check.message));
        return;
      }
    }
  }

  void Settle() {
    sys_->Settle();
    unsettled_ = false;
  }

  void Edge(std::uint32_t value) { result_.edges.push_back(value % 0x10000u); }
  void OpEdges(const HvOp& op) {
    auto k = static_cast<std::uint32_t>(op.kind);
    auto code = static_cast<std::uint32_t>(last_code_);
    Edge(static_cast<std::uint32_t>(HvHash64("hvop") * 31 + k * 17 + code));
    Edge((prev_kind_ * 41 + k) * 13 + code);
    std::uint32_t live_bucket = static_cast<std::uint32_t>(std::min<std::size_t>(live_.size(), 7));
    Edge(k * 257 + live_bucket * 29 + (faults_armed_ ? 7919 : 0));
    prev_kind_ = k;
  }

  // --- Op implementations. ---
  void OpLaunch();
  void OpClone(const HvOp& op, bool lazy);
  void OpReset(const HvOp& op);
  void OpCow(const HvOp& op);
  void OpDestroy(const HvOp& op);
  void OpGrant(const HvOp& op);
  void OpMap(const HvOp& op);
  void OpUnmap(const HvOp& op);
  void OpEndGrant(const HvOp& op);
  void OpEvAlloc(const HvOp& op);
  void OpEvBind(const HvOp& op);
  void OpEvSend(const HvOp& op);
  void OpEvClose(const HvOp& op);
  void OpXsWrite(const HvOp& op);
  void OpP9(const HvOp& op);
  void OpWrite(const HvOp& op);
  void OpRawAccess(const HvOp& op, bool write);
  void OpTouch(const HvOp& op);
  void OpLazyTouch(const HvOp& op);
  void OpStream(const HvOp& op);
  void OpArm(const HvOp& op);

  const HvTape& tape_;
  const HvRunOptions& options_;
  HvRunResult result_;

  std::unique_ptr<NepheleSystem> sys_;
  HostFs fs_;
  std::unique_ptr<P9BackendProcess> p9_;

  std::vector<DomId> live_;  // creation order
  std::vector<DomId> dead_;  // destroyed ids (never reused)
  std::vector<std::pair<DomId, GrantRef>> grants_;   // (granter, ref)
  std::vector<std::pair<DomId, EvtchnPort>> ports_;  // (owner, port)
  std::vector<std::pair<DomId, std::uint32_t>> fids_;

  // Cell model: expected heap-cell bytes per tracked guest, plus which slots
  // were written since the last clone/reset (clone_reset restores exactly
  // the dirtied pages to the parent's current content). A dom is "tainted"
  // when a partial failure left its dirty set unknowable; the next
  // successful reset resyncs from a readback instead of predicting.
  std::map<DomId, std::array<std::uint8_t, kCells>> cells_;
  std::map<DomId, std::set<std::uint32_t>> dirty_;
  std::set<DomId> tainted_;

  bool faults_armed_ = false;
  bool unsettled_ = false;
  std::size_t initial_free_ = 0;
  Gfn heap0_ = 0;
  std::size_t guest_pages_ = 0;
  std::size_t cur_op_ = 0;
  int last_code_ = 0;
  std::uint32_t prev_kind_ = 0;
  std::ostringstream log_;
};

HvRunResult Harness::Run() {
  SystemConfig config;
  config.hypervisor.pool_frames = kPoolFrames;
  config.clone_worker_threads = options_.force_workers != 0 ? options_.force_workers : 1;
  // Manual streaming: lazy children stay half-mapped until a kStream op (or
  // a demand fault) moves them along — the widest hostile window the lazy
  // surface allows. max_hot_pages=0 keeps even the tracked cell pages
  // deferred so kLazyTouch reliably finds not-present targets.
  config.lazy_clone.auto_stream = false;
  config.lazy_clone.stream_batch_pages = 128;
  config.lazy_clone.max_hot_pages = 0;
  sys_ = std::make_unique<NepheleSystem>(config);
  p9_ = std::make_unique<P9BackendProcess>(sys_->loop(), sys_->costs(), fs_, "/srv/hv");
  // Seed host files so hostile 9p opens/reads have something legitimate to
  // hit between the escape attempts.
  (void)fs_.CreateFile("/srv/hv/data");
  (void)fs_.CreateFile("/srv/hv/x");
  sys_->Settle();
  initial_free_ = sys_->hypervisor().FreePoolFrames();

  GuestMemoryLayout layout =
      ComputeGuestLayout(HvGuestConfig(), sys_->hypervisor().config().min_domain_pages);
  heap0_ = static_cast<Gfn>(layout.heap_first_gfn);
  guest_pages_ = layout.total_pages;

  for (std::size_t i = 0; i < tape_.ops.size(); ++i) {
    const HvOp& op = tape_.ops[i];
    cur_op_ = i;
    last_code_ = 0;
    log_ << i << ' ' << HvOpKindName(op.kind);
    ExecuteOp(op);
    PruneVanished();
    log_ << '\n';
    ++result_.ops_executed;
    OpEdges(op);
    if (options_.after_op) {
      options_.after_op(*sys_, op, i);
    }
    RunOracle();
    if (!result_.ok()) {
      result_.digest = log_.str();
      return std::move(result_);
    }
  }

  // Teardown: disarm, quiesce, everything down in reverse creation order;
  // the pool must return to its boot level.
  sys_->fault_injector().DisarmAll();
  faults_armed_ = false;
  cur_op_ = tape_.ops.size();
  Settle();
  PruneVanished();
  std::vector<DomId> doomed(live_.rbegin(), live_.rend());
  for (DomId dom : doomed) {
    log_ << "teardown " << dom;
    Status s = sys_->toolstack().DestroyDomain(dom);
    if (sys_->hypervisor().FindDomain(dom) != nullptr) {
      s = sys_->hypervisor().DestroyDomain(dom);
    }
    Settle();
    OpCode(s);
    if (sys_->hypervisor().FindDomain(dom) == nullptr) {
      ForgetDomain(dom);
    }
    PruneVanished();
    log_ << '\n';
  }
  RunOracle();
  if (result_.ok() && !live_.empty()) {
    Fail("teardown", "teardown left " + std::to_string(live_.size()) + " domains alive");
  }
  if (result_.ok() && sys_->hypervisor().FreePoolFrames() != initial_free_) {
    Fail("teardown", "pool did not return to boot level: free=" +
                         std::to_string(sys_->hypervisor().FreePoolFrames()) + " vs initial " +
                         std::to_string(initial_free_));
  }

  log_ << "metrics " << HvHash64(sys_->metrics().ExportJson()) << '\n';
  log_ << "trace " << HvHash64(sys_->trace().ExportJson()) << '\n';
  log_ << "simtime " << sys_->Now().ns() << '\n';
  result_.digest = log_.str();
  return std::move(result_);
}

void Harness::ExecuteOp(const HvOp& op) {
  switch (op.kind) {
    case HvOpKind::kLaunch:
      OpLaunch();
      break;
    case HvOpKind::kClone:
      OpClone(op, /*lazy=*/false);
      break;
    case HvOpKind::kLazyClone:
      OpClone(op, /*lazy=*/true);
      break;
    case HvOpKind::kLazyTouch:
      OpLazyTouch(op);
      break;
    case HvOpKind::kStream:
      OpStream(op);
      break;
    case HvOpKind::kReset:
      OpReset(op);
      break;
    case HvOpKind::kCow:
      OpCow(op);
      break;
    case HvOpKind::kDestroy:
      OpDestroy(op);
      break;
    case HvOpKind::kGrant:
      OpGrant(op);
      break;
    case HvOpKind::kMap:
      OpMap(op);
      break;
    case HvOpKind::kUnmap:
      OpUnmap(op);
      break;
    case HvOpKind::kEndGrant:
      OpEndGrant(op);
      break;
    case HvOpKind::kEvAlloc:
      OpEvAlloc(op);
      break;
    case HvOpKind::kEvBind:
      OpEvBind(op);
      break;
    case HvOpKind::kEvSend:
      OpEvSend(op);
      break;
    case HvOpKind::kEvClose:
      OpEvClose(op);
      break;
    case HvOpKind::kXsWrite:
      OpXsWrite(op);
      break;
    case HvOpKind::kP9:
      OpP9(op);
      break;
    case HvOpKind::kWrite:
      OpWrite(op);
      break;
    case HvOpKind::kRawWrite:
      OpRawAccess(op, /*write=*/true);
      break;
    case HvOpKind::kRead:
      OpRawAccess(op, /*write=*/false);
      break;
    case HvOpKind::kTouch:
      OpTouch(op);
      break;
    case HvOpKind::kArm:
      OpArm(op);
      break;
    case HvOpKind::kDisarm:
      // Deliberately no Settle: disarming must not close an open mid-clone
      // window (same for kArm and kAdvance below).
      sys_->fault_injector().DisarmAll();
      faults_armed_ = false;
      break;
    case HvOpKind::kAdvance:
      sys_->loop().AdvanceBy(SimDuration::Nanos(
          static_cast<std::int64_t>(std::min<std::uint64_t>(op.amount, 1'000'000'000ULL))));
      break;
    case HvOpKind::kSettle:
      Settle();
      break;
  }
}

void Harness::OpLaunch() {
  auto dom = sys_->toolstack().CreateDomain(HvGuestConfig());
  Settle();
  OpCode(dom.status());
  if (dom.ok()) {
    log_ << " dom=" << *dom;
    live_.push_back(*dom);
    cells_[*dom] = {};
    dirty_[*dom].clear();
  }
}

void Harness::OpClone(const HvOp& op, bool lazy) {
  DomId parent = ResolveDom(op.a);
  DomId caller = parent;
  switch (op.b % 4) {
    case 0:
      break;  // the parent clones itself — the paper's own model
    case 1:
      caller = kDom0;
      break;
    case 2:
      caller = ResolveDom(op.b / 4);  // an unrelated domain tries
      break;
    default:
      caller = kDomInvalid;
      break;
  }
  const Mfn si = (op.flags & 1) != 0 ? static_cast<Mfn>(0xDEADBEEF) : StartInfoMfnSafe(parent);
  const unsigned n = op.n == 0 ? 1 : 1 + (op.n - 1) % 4;
  auto children = sys_->clone_engine().Clone({caller, parent, si, n, lazy});
  if ((op.flags & 2) != 0) {
    unsettled_ = true;  // leave stage 2 pending: the clone-during-clone window
  } else {
    Settle();
  }
  OpCode(children.status());
  log_ << " parent=" << parent << " n=" << n;
  if (lazy) {
    log_ << " lazy";
  }
  if (children.ok()) {
    for (DomId child : *children) {
      if (sys_->hypervisor().FindDomain(child) != nullptr) {
        live_.push_back(child);
        auto it = cells_.find(parent);
        cells_[child] = it != cells_.end() ? it->second : std::array<std::uint8_t, kCells>{};
        dirty_[child].clear();
        log_ << " c" << child;
      } else {
        dead_.push_back(child);
        log_ << " a" << child;
      }
    }
  }
}

void Harness::OpReset(const HvOp& op) {
  DomId target = ResolveDom(op.a);
  DomId caller = kDom0;
  switch (op.b % 3) {
    case 0:
      break;
    case 1:
      caller = target;  // self-reset, allowed
      break;
    default:
      caller = ResolveDom(op.b / 4);  // a stranger tries
      break;
  }
  DomId parent = kDomInvalid;
  if (const Domain* d = sys_->hypervisor().FindDomain(target); d != nullptr) {
    parent = d->parent;
  }
  auto restored = sys_->clone_engine().CloneReset(caller, target);
  Settle();
  OpCode(restored.status());
  log_ << " dom=" << target;
  if (restored.ok()) {
    log_ << " restored=" << *restored;
    if (cells_.contains(target)) {
      auto pit = cells_.find(parent);
      if (tainted_.contains(target) || pit == cells_.end()) {
        ResyncCells(target);
        tainted_.erase(target);
      } else {
        // Reset re-shares exactly the dirtied pages against the parent's
        // *current* frames; untouched pages keep their clone-time content.
        for (std::uint32_t slot : dirty_[target]) {
          cells_[target][slot] = pit->second[slot];
        }
      }
      dirty_[target].clear();
    }
  } else if (cells_.contains(target)) {
    // A mid-loop failure legitimately leaves a restored prefix (documented
    // resume semantics); the model cannot know which slots, so read back.
    ResyncCells(target);
    tainted_.insert(target);
  }
}

void Harness::OpCow(const HvOp& op) {
  DomId target = ResolveDom(op.a);
  const Gfn gfn = GfnMenu(op.c);
  const std::size_t count = CountMenu(op.n);
  Status s = sys_->clone_engine().CloneCow(kDom0, target, gfn, count);
  Settle();
  OpCode(s);
  log_ << " dom=" << target;
  if (s.ok()) {
    MarkDirtyRange(target, gfn, count);
  } else if (cells_.contains(target) && RangeIntersectsCells(gfn, count)) {
    tainted_.insert(target);  // partial resolve possible before the failure
  }
}

void Harness::OpDestroy(const HvOp& op) {
  DomId target = ResolveDom(op.a);
  Status s = sys_->toolstack().DestroyDomain(target);
  if (sys_->hypervisor().FindDomain(target) != nullptr) {
    s = sys_->hypervisor().DestroyDomain(target);
  }
  Settle();
  OpCode(s);
  log_ << " dom=" << target;
  if (sys_->hypervisor().FindDomain(target) == nullptr &&
      std::find(live_.begin(), live_.end(), target) != live_.end()) {
    ForgetDomain(target);
  }
}

void Harness::OpGrant(const HvOp& op) {
  DomId granter = ResolveDom(op.a);
  DomId grantee = kDomInvalid;
  switch (op.b % 5) {
    case 0:
      grantee = ResolveDom(op.b / 8);
      break;
    case 1:
      grantee = granter;  // self-grant
      break;
    case 2:
      grantee = kDomChild;  // the Nephele wildcard
      break;
    case 3:
      grantee = kDom0;
      break;
    default:
      break;  // kDomInvalid
  }
  auto ref = sys_->hypervisor().GrantAccess(granter, grantee, GfnMenu(op.c), (op.flags & 1) != 0);
  Settle();
  OpCode(ref.status());
  if (ref.ok()) {
    grants_.emplace_back(granter, *ref);
    log_ << " ref=" << *ref;
  }
}

void Harness::OpMap(const HvOp& op) {
  DomId mapper = ResolveDom(op.a);
  auto [granter, ref] = GrantHandle(op.c);
  auto gfn = sys_->hypervisor().MapGrant(mapper, granter, ref);
  Settle();
  OpCode(gfn.status());
}

void Harness::OpUnmap(const HvOp& op) {
  DomId caller = ResolveDom(op.a);
  auto [granter, ref] = GrantHandle(op.c);
  Status s = sys_->hypervisor().UnmapGrant(caller, granter, ref);
  Settle();
  OpCode(s);
}

void Harness::OpEndGrant(const HvOp& op) {
  auto [granter, ref] = GrantHandle(op.c);
  if (op.a % 2 == 1) {
    granter = ResolveDom(op.a / 2);  // a stranger tries to revoke
  }
  Status s = sys_->hypervisor().EndGrantAccess(granter, ref);
  Settle();
  OpCode(s);
}

void Harness::OpEvAlloc(const HvOp& op) {
  DomId owner = ResolveDom(op.a);
  DomId remote = kDomInvalid;
  switch (op.b % 4) {
    case 0:
      remote = ResolveDom(op.b / 8);
      break;
    case 1:
      remote = kDomChild;  // IDC
      break;
    case 2:
      remote = kDom0;
      break;
    default:
      remote = dead_.empty() ? static_cast<DomId>(4242) : dead_[(op.b / 8) % dead_.size()];
      break;
  }
  auto port = sys_->hypervisor().EvtchnAllocUnbound(owner, remote);
  Settle();
  OpCode(port.status());
  if (port.ok()) {
    ports_.emplace_back(owner, *port);
    log_ << " port=" << *port;
  }
}

void Harness::OpEvBind(const HvOp& op) {
  DomId binder = ResolveDom(op.a);
  auto [remote_dom, remote_port] = PortHandle(op.c);
  auto port = sys_->hypervisor().EvtchnBindInterdomain(binder, remote_dom, remote_port);
  Settle();
  OpCode(port.status());
  if (port.ok()) {
    ports_.emplace_back(binder, *port);
    log_ << " port=" << *port;
  }
}

void Harness::OpEvSend(const HvOp& op) {
  auto [owner, port] = PortHandle(op.c);
  DomId actor = op.a % 2 == 0 ? owner : ResolveDom(op.a / 2);
  Status s = sys_->hypervisor().EvtchnSend(actor, port);
  Settle();
  OpCode(s);
}

void Harness::OpEvClose(const HvOp& op) {
  auto [owner, port] = PortHandle(op.c);
  DomId actor = op.a % 2 == 0 ? owner : ResolveDom(op.a / 2);
  Status s = sys_->hypervisor().EvtchnClose(actor, port);
  Settle();
  OpCode(s);
}

void Harness::OpXsWrite(const HvOp& op) {
  DomId dom = ResolveDom(op.a);
  std::string path;
  switch (op.b % 6) {
    case 0:
      path = XsDomainPath(dom) + "/data/hv/" +
             std::string(1, static_cast<char>('a' + (op.b / 8) % 4));
      break;
    case 1:
      path = XsDomainPath(dom) + "/data/" + std::string(300, 'k');  // oversized component
      break;
    case 2:
      path = XsDomainPath(dom) + "/data/../../0/data/escape";  // subtree escape
      break;
    case 3: {
      path = XsDomainPath(dom) + "/data";
      for (int i = 0; i < 600; ++i) {
        path += "/d";  // 1200+ bytes: over the path cap
      }
      break;
    }
    case 4:
      path = XsDomainPath(dom) + "/data/./x";  // dot component
      break;
    default:
      path = "/tool/hvfuzz";  // outside any domain subtree
      break;
  }
  std::string value;
  switch (op.c % 3) {
    case 0:
      value = "v" + std::to_string(op.c);
      break;
    case 1:
      value = std::string(5000, 'x');  // over the value cap
      break;
    default:
      break;  // empty
  }
  Status s = sys_->xenstore().Write(path, value);
  Settle();
  OpCode(s);
}

void Harness::OpP9(const HvOp& op) {
  DomId dom = ResolveDom(op.a);
  switch (op.b % 7) {
    case 0: {
      auto fid = p9_->Attach(dom);
      Settle();
      OpCode(fid.status());
      if (fid.ok()) {
        fids_.emplace_back(dom, *fid);
      }
      break;
    }
    case 1: {
      auto [fdom, fid] = FidHandle(op.c, dom);
      static constexpr const char* kPaths[] = {"..", "a/../../b", ".", "data", "x"};
      auto walked = p9_->Walk(fdom, fid, kPaths[op.c % 5]);
      Settle();
      OpCode(walked.status());
      if (walked.ok()) {
        fids_.emplace_back(fdom, *walked);
      }
      break;
    }
    case 2: {
      auto [fdom, fid] = FidHandle(op.c, dom);
      Status s = p9_->Open(fdom, fid, (op.c / 8) % 2 != 0);
      Settle();
      OpCode(s);
      break;
    }
    case 3: {
      auto [fdom, fid] = FidHandle(op.c, dom);
      static const std::string kNames[] = {"f", "..", "a/b", ".", std::string(64, 'n')};
      auto created = p9_->Create(fdom, fid, kNames[op.c % 5]);
      Settle();
      OpCode(created.status());
      if (created.ok()) {
        fids_.emplace_back(fdom, *created);
      }
      break;
    }
    case 4: {
      auto [fdom, fid] = FidHandle(op.c, dom);
      Status s = p9_->Clunk(fdom, fid);  // handles stay: stale-fid bait
      Settle();
      OpCode(s);
      break;
    }
    case 5: {
      auto [fdom, fid] = FidHandle(op.c, dom);
      auto data = p9_->Read(fdom, fid, OffMenu(op.n), 4096);
      Settle();
      OpCode(data.status());
      break;
    }
    default: {
      Status s = p9_->QmpCloneFids(dom, ResolveDom(op.b / 8));
      Settle();
      OpCode(s);
      break;
    }
  }
}

void Harness::OpWrite(const HvOp& op) {
  DomId dom = ResolveDom(op.a);
  const std::uint32_t slot = op.c % kCells;
  const std::uint8_t value = static_cast<std::uint8_t>(op.v);
  Status s = sys_->hypervisor().WriteGuestPage(dom, CellGfn(slot), CellOffset(slot), &value, 1);
  Settle();
  OpCode(s);
  log_ << " dom=" << dom << " slot=" << slot;
  if (s.ok() && cells_.contains(dom)) {
    cells_[dom][slot] = value;
    dirty_[dom].insert(slot);
  }
}

void Harness::OpRawAccess(const HvOp& op, bool write) {
  DomId dom = ResolveDom(op.a);
  const Gfn gfn = GfnMenu(op.c);
  const std::size_t off = OffMenu(op.n);
  const std::size_t len = LenMenu(op.v);
  // Oversized lengths get a 1-byte buffer on purpose: the API must reject
  // them before touching memory, and a regression dies under ASan.
  std::vector<std::uint8_t> buf(len <= kPageSize ? std::max<std::size_t>(len, 1) : 1,
                                static_cast<std::uint8_t>(op.v));
  Status s = write ? sys_->hypervisor().WriteGuestPage(dom, gfn, off, buf.data(), len)
                   : sys_->hypervisor().ReadGuestPage(dom, gfn, off, buf.data(), len);
  Settle();
  OpCode(s);
  if (write && s.ok()) {
    MarkDirtyRange(dom, gfn, 1);  // menu gfns never alias a cell; belt and braces
  }
}

void Harness::OpTouch(const HvOp& op) {
  DomId dom = ResolveDom(op.a);
  const Gfn gfn = GfnMenu(op.c);
  const std::size_t count = CountMenu(op.n);
  Status s = sys_->hypervisor().TouchGuestPages(dom, gfn, count);
  Settle();
  OpCode(s);
  if (s.ok()) {
    MarkDirtyRange(dom, gfn, count);
  } else if (cells_.contains(dom) && RangeIntersectsCells(gfn, count)) {
    tainted_.insert(dom);  // partial touch possible before the failure
  }
}

void Harness::OpLazyTouch(const HvOp& op) {
  DomId dom = ResolveDom(op.a);
  // Aim at a genuinely not-present page when the target has one (the demand
  // fault path); otherwise fall back to the hostile gfn menu like kTouch.
  Gfn gfn = GfnMenu(op.c);
  if (const Domain* d = sys_->hypervisor().FindDomain(dom); d != nullptr) {
    for (std::size_t g = heap0_; g < d->p2m.size(); ++g) {
      if (d->p2m[g].mfn == kInvalidMfn) {
        gfn = static_cast<Gfn>(g);
        break;
      }
    }
  }
  const std::size_t count = CountMenu(op.n);
  Status s = sys_->hypervisor().TouchGuestPages(dom, gfn, count);
  Settle();
  OpCode(s);
  log_ << " dom=" << dom << " gfn=" << gfn;
  if (s.ok()) {
    MarkDirtyRange(dom, gfn, count);
  } else if (cells_.contains(dom) && RangeIntersectsCells(gfn, count)) {
    tainted_.insert(dom);  // partial touch possible before the failure
  }
}

void Harness::OpStream(const HvOp& op) {
  if ((op.flags & 1) != 0) {
    DomId dom = ResolveDom(op.a);
    Status s = sys_->clone_engine().FinishStreaming(dom);
    Settle();
    OpCode(s);
    log_ << " finish dom=" << dom;
  } else {
    const std::size_t pages = sys_->clone_engine().StreamPump(1 + op.n % 4);
    Settle();
    log_ << ' ' << last_code_ << " pages=" << pages;
  }
}

void Harness::OpArm(const HvOp& op) {
  Status s = sys_->fault_injector().Arm(op.point, FaultSpec::NthHit(op.nth == 0 ? 1 : op.nth));
  OpCode(s);
  log_ << ' ' << op.point;
  if (s.ok()) {
    faults_armed_ = true;
  }
}

}  // namespace

DomainConfig HvGuestConfig() {
  DomainConfig cfg;
  cfg.name = "hvfuzz";
  cfg.memory_mb = 4;
  cfg.max_clones = 512;
  cfg.with_vif = true;
  return cfg;
}

HvRunResult RunTape(const HvTape& tape, const HvRunOptions& options) {
  Harness harness(tape, options);
  return harness.Run();
}

}  // namespace nephele
