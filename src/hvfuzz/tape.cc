#include "src/hvfuzz/tape.h"

#include <cstddef>
#include <sstream>

#include "src/sim/rng.h"

namespace nephele {

namespace {

constexpr const char* kKindNames[kNumHvOpKinds] = {
    "launch", "clone",   "reset",   "cow",     "destroy", "grant",  "map",   "unmap",
    "endgrant", "evalloc", "evbind",  "evsend",  "evclose", "xswrite", "p9",   "write",
    "rawwrite", "read",    "touch",   "arm",     "disarm",  "advance", "settle",
    "lazyclone", "lazytouch", "stream",
};

// Fault points worth arming in fuzz tapes: the allocation, COW, grant,
// evtchn, clone-stage and xenstore paths, so fault-point interleavings hit
// every rollback the oracle guards. All NthHit — a shrunk tape still fires
// the same injection.
constexpr const char* kFaultMenu[] = {
    "hypervisor/frame_alloc", "hypervisor/cow_resolve", "hypervisor/grant_access",
    "hypervisor/evtchn_alloc", "clone/stage1/memory",    "clone/stage1/share",
    "clone/stage1/grants",     "clone/stage1/evtchns",   "clone/reset",
    "xencloned/stage2",        "xenstore/request",       "lazy/stream",
    "lazy/demand_fault",
};
constexpr std::size_t kFaultMenuSize = sizeof(kFaultMenu) / sizeof(kFaultMenu[0]);

// Byte reader backed by the mutation input, falling back to a deterministic
// stream once the bytes run out (same pattern as the DST generator's tape).
class ByteTape {
 public:
  ByteTape(std::uint64_t seed, const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes), fallback_(Mix(seed, bytes)) {}

  std::uint8_t Byte() {
    if (pos_ < bytes_.size()) {
      return bytes_[pos_++];
    }
    return static_cast<std::uint8_t>(fallback_.NextU64());
  }

  std::uint32_t Below(std::uint32_t bound) { return bound == 0 ? 0 : Byte() % bound; }

 private:
  static std::uint64_t Mix(std::uint64_t seed, const std::vector<std::uint8_t>& bytes) {
    std::uint64_t h = seed ^ 0x687666757a7aULL;  // "hvfuzz"
    for (std::uint8_t b : bytes) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
    return h;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  Rng fallback_;
};

struct Weighted {
  HvOpKind kind;
  std::uint32_t weight;
};

// Hostile structural ops (grants, event channels, raw guest access) dominate;
// launches are frequent enough that most tapes have several live targets.
constexpr Weighted kWeights[] = {
    {HvOpKind::kLaunch, 4},   {HvOpKind::kClone, 5},   {HvOpKind::kReset, 3},
    {HvOpKind::kCow, 3},      {HvOpKind::kDestroy, 3}, {HvOpKind::kGrant, 5},
    {HvOpKind::kMap, 5},      {HvOpKind::kUnmap, 4},   {HvOpKind::kEndGrant, 3},
    {HvOpKind::kEvAlloc, 4},  {HvOpKind::kEvBind, 4},  {HvOpKind::kEvSend, 4},
    {HvOpKind::kEvClose, 4},  {HvOpKind::kXsWrite, 4}, {HvOpKind::kP9, 4},
    {HvOpKind::kWrite, 6},    {HvOpKind::kRawWrite, 5}, {HvOpKind::kRead, 3},
    {HvOpKind::kTouch, 4},    {HvOpKind::kArm, 2},     {HvOpKind::kDisarm, 2},
    {HvOpKind::kAdvance, 3},  {HvOpKind::kSettle, 1},  {HvOpKind::kLazyClone, 5},
    {HvOpKind::kLazyTouch, 5}, {HvOpKind::kStream, 4},
};

}  // namespace

const char* HvOpKindName(HvOpKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

HvTape TapeFromBytes(std::uint64_t seed, const std::vector<std::uint8_t>& bytes) {
  ByteTape t(seed, bytes);
  HvTape tape;
  tape.seed = seed;

  constexpr std::uint32_t kTotalWeight = [] {
    std::uint32_t sum = 0;
    for (const Weighted& w : kWeights) {
      sum += w.weight;
    }
    return sum;
  }();

  const std::size_t num_ops = 6 + t.Below(26);

  // Every tape opens with a root guest so early ops have a live target.
  HvOp boot;
  boot.kind = HvOpKind::kLaunch;
  tape.ops.push_back(boot);

  while (tape.ops.size() < num_ops) {
    std::uint32_t roll = t.Below(kTotalWeight);
    HvOpKind kind = HvOpKind::kLaunch;
    for (const Weighted& w : kWeights) {
      if (roll < w.weight) {
        kind = w.kind;
        break;
      }
      roll -= w.weight;
    }

    HvOp op;
    op.kind = kind;
    switch (kind) {
      case HvOpKind::kLaunch:
      case HvOpKind::kDisarm:
      case HvOpKind::kSettle:
        break;
      case HvOpKind::kClone:
      case HvOpKind::kLazyClone:
        op.a = t.Byte();
        op.b = t.Byte();
        op.n = 1 + t.Below(4);
        op.flags = t.Below(4);
        break;
      case HvOpKind::kReset:
        op.a = t.Byte();
        op.b = t.Byte();
        break;
      case HvOpKind::kCow:
      case HvOpKind::kTouch:
      case HvOpKind::kLazyTouch:
        op.a = t.Byte();
        op.c = t.Byte();
        op.n = t.Byte();
        break;
      case HvOpKind::kStream:
        op.a = t.Byte();
        op.n = t.Byte();
        op.flags = t.Below(2);
        break;
      case HvOpKind::kDestroy:
        op.a = t.Byte();
        break;
      case HvOpKind::kGrant:
        op.a = t.Byte();
        op.b = t.Byte();
        op.c = t.Byte();
        op.flags = t.Below(2);
        break;
      case HvOpKind::kMap:
      case HvOpKind::kUnmap:
      case HvOpKind::kEndGrant:
      case HvOpKind::kEvBind:
      case HvOpKind::kEvSend:
      case HvOpKind::kEvClose:
        op.a = t.Byte();
        op.c = t.Byte();
        break;
      case HvOpKind::kEvAlloc:
        op.a = t.Byte();
        op.b = t.Byte();
        break;
      case HvOpKind::kXsWrite:
        op.a = t.Byte();
        op.b = t.Byte();
        op.c = t.Byte();
        break;
      case HvOpKind::kP9:
        op.a = t.Byte();
        op.b = t.Byte();
        op.c = t.Byte();
        break;
      case HvOpKind::kWrite:
        op.a = t.Byte();
        op.c = t.Byte();
        op.v = t.Byte();
        break;
      case HvOpKind::kRawWrite:
      case HvOpKind::kRead:
        op.a = t.Byte();
        op.c = t.Byte();
        op.n = t.Byte();
        op.v = t.Byte();
        break;
      case HvOpKind::kArm:
        op.point = kFaultMenu[t.Below(kFaultMenuSize)];
        op.nth = 1 + t.Below(3);
        break;
      case HvOpKind::kAdvance:
        op.amount = (1ull + t.Byte()) * 250'000ull;  // 0.25 .. 64 ms
        break;
    }
    tape.ops.push_back(op);
  }
  return tape;
}

std::string TapeToText(const HvTape& tape) {
  std::ostringstream out;
  out << "# nephele hvfuzz tape v1\n";
  out << "seed " << tape.seed << '\n';
  for (const HvOp& op : tape.ops) {
    out << HvOpKindName(op.kind);
    if (op.a != 0) out << " a=" << op.a;
    if (op.b != 0) out << " b=" << op.b;
    if (op.c != 0) out << " c=" << op.c;
    if (op.n != 0) out << " n=" << op.n;
    if (op.v != 0) out << " v=" << op.v;
    if (op.flags != 0) out << " flags=" << op.flags;
    if (op.amount != 0) out << " amount=" << op.amount;
    if (op.nth != 1) out << " nth=" << op.nth;
    if (!op.point.empty()) out << " point=" << op.point;
    out << '\n';
  }
  return out.str();
}

namespace {

Result<std::uint64_t> ParseU64(const std::string& token) {
  if (token.empty()) {
    return ErrInvalidArgument("empty numeric field");
  }
  std::uint64_t value = 0;
  for (char ch : token) {
    if (ch < '0' || ch > '9') {
      return ErrInvalidArgument("bad numeric field: " + token);
    }
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return value;
}

Result<HvOpKind> KindFromName(const std::string& name) {
  for (std::size_t i = 0; i < kNumHvOpKinds; ++i) {
    if (name == kKindNames[i]) {
      return static_cast<HvOpKind>(i);
    }
  }
  return ErrInvalidArgument("unknown op: " + name);
}

}  // namespace

Result<HvTape> ParseTape(const std::string& text) {
  HvTape tape;
  bool saw_seed = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    if (!saw_seed) {
      if (head != "seed") {
        return ErrInvalidArgument("tape must start with a seed line");
      }
      std::string value;
      tokens >> value;
      NEPHELE_ASSIGN_OR_RETURN(tape.seed, ParseU64(value));
      saw_seed = true;
      continue;
    }
    NEPHELE_ASSIGN_OR_RETURN(HvOpKind kind, KindFromName(head));
    HvOp op;
    op.kind = kind;
    std::string field;
    while (tokens >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return ErrInvalidArgument("bad field (want key=value): " + field);
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "point") {
        op.point = value;
        continue;
      }
      NEPHELE_ASSIGN_OR_RETURN(std::uint64_t num, ParseU64(value));
      if (key == "a") {
        op.a = static_cast<std::uint32_t>(num);
      } else if (key == "b") {
        op.b = static_cast<std::uint32_t>(num);
      } else if (key == "c") {
        op.c = static_cast<std::uint32_t>(num);
      } else if (key == "n") {
        op.n = static_cast<std::uint32_t>(num);
      } else if (key == "v") {
        op.v = static_cast<std::uint32_t>(num);
      } else if (key == "flags") {
        op.flags = static_cast<std::uint32_t>(num);
      } else if (key == "amount") {
        op.amount = num;
      } else if (key == "nth") {
        op.nth = num;
      } else {
        return ErrInvalidArgument("unknown field: " + key);
      }
    }
    tape.ops.push_back(std::move(op));
  }
  if (!saw_seed) {
    return ErrInvalidArgument("tape must start with a seed line");
  }
  return tape;
}

}  // namespace nephele
