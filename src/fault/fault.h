// Deterministic fault injection: named fault points threaded through the
// hypervisor, xenstore, toolstack, devices and the clone engine.
//
// A subsystem registers a point once (find-or-create, like metric handles)
// and calls Poke() on the guarded path; the call returns OK unless a test
// armed the point with a FaultSpec. Both trigger policies are deterministic:
// nth-hit counts hits since arming, and the probability policy draws from a
// per-point Rng seeded by the spec — the same plan against the same workload
// injects the same faults, byte for byte.

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/sim/rng.h"

namespace nephele {

// What to inject and when. Built via the static helpers; the default spec
// never fires.
struct FaultSpec {
  enum class Policy { kNever, kNthHit, kProbability };

  Policy policy = Policy::kNever;
  // kNthHit: fire on the nth Poke() after arming (1-based), exactly once.
  std::uint64_t nth = 1;
  // kProbability: fire independently on each Poke() with this probability,
  // drawn from an Rng seeded with `seed` at arming time.
  double probability = 0.0;
  std::uint64_t seed = 0;
  // The error injected. Defaults to the most common real-world shape.
  StatusCode code = StatusCode::kResourceExhausted;
  std::string message = "injected fault";

  static FaultSpec NthHit(std::uint64_t n, StatusCode code = StatusCode::kResourceExhausted,
                          std::string message = "injected fault");
  static FaultSpec WithProbability(double p, std::uint64_t seed,
                                   StatusCode code = StatusCode::kResourceExhausted,
                                   std::string message = "injected fault");
};

// A single named injection site. Handles are owned by the injector and stay
// valid for its lifetime; subsystems cache them at construction.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }

  // Called on the guarded path. Counts the hit, evaluates the armed policy
  // and returns the injected error when it fires.
  Status Poke();

  // Bulk poke: exactly equivalent to calling Poke() up to `n` times,
  // stopping at the first poke that fires. `performed` reports how many
  // pokes ran (== n when none fired). The clone engine's plan phase uses
  // this to account a run of identical per-page pokes in O(1) for the
  // common unarmed case while keeping hit counts and rng draws bit-exact.
  struct BulkPoke {
    std::uint64_t performed = 0;
    Status status;
  };
  BulkPoke PokeMany(std::uint64_t n);

  // Total Poke() calls since construction (armed or not).
  std::uint64_t hits() const { return hits_; }
  // Total faults injected since construction.
  std::uint64_t injected() const { return injected_; }

 private:
  friend class FaultInjector;

  void Arm(const FaultSpec& spec);
  void Disarm();

  std::string name_;
  FaultSpec spec_;
  bool armed_ = false;
  // Hits since the point was last armed; drives the nth-hit policy.
  std::uint64_t hits_since_armed_ = 0;
  bool fired_once_ = false;
  Rng rng_;

  std::uint64_t hits_ = 0;
  std::uint64_t injected_ = 0;
  Counter* injected_metric_ = nullptr;  // registry-wide "fault/injected"
};

// A reusable per-run fault plan: a set of (point name, spec) pairs applied
// together. Tests build one per scenario variant.
struct FaultPlan {
  struct Arm {
    std::string point;
    FaultSpec spec;
  };
  std::vector<Arm> arms;

  FaultPlan& Add(std::string point, FaultSpec spec) {
    arms.push_back({std::move(point), std::move(spec)});
    return *this;
  }
};

// Registry of fault points. Single-threaded, like the rest of the
// simulation. `metrics` may be null (tests constructing subsystems in
// isolation); the injector then keeps its own private registry so handle
// wiring stays unconditional.
class FaultInjector {
 public:
  explicit FaultInjector(MetricsRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Find-or-create. The returned pointer stays valid for the injector's
  // lifetime.
  FaultPoint* GetPoint(std::string_view name);

  // Read-only lookup; null when the point was never registered.
  const FaultPoint* FindPoint(std::string_view name) const;

  // Arms an already-registered point. Unknown names are an error so tests
  // fail loudly on typos instead of silently never injecting.
  Status Arm(std::string_view name, const FaultSpec& spec);
  // Disarming an unknown or unarmed point is a no-op.
  void Disarm(std::string_view name);
  void DisarmAll();

  // Applies every arm in the plan (all-or-nothing is not needed: the first
  // unknown name aborts and the caller resets with DisarmAll()).
  Status LoadPlan(const FaultPlan& plan);

  // Sorted names of every registered point — the sweep harness enumerates
  // these to guarantee coverage.
  std::vector<std::string> PointNames() const;

  std::uint64_t HitCount(std::string_view name) const;
  std::uint64_t InjectedCount(std::string_view name) const;
  // Sum of injections across all points (mirrors the "fault/injected"
  // counter in the shared registry).
  std::uint64_t injected_total() const;

 private:
  std::map<std::string, std::unique_ptr<FaultPoint>, std::less<>> points_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_;
  Counter& injected_counter_;
};

// Null-safe guard for subsystems whose injector is optional.
inline Status PokeFault(FaultPoint* point) {
  return point == nullptr ? Status::Ok() : point->Poke();
}

}  // namespace nephele

#endif  // SRC_FAULT_FAULT_H_
