#include "src/fault/fault.h"

#include <algorithm>

namespace nephele {

FaultSpec FaultSpec::NthHit(std::uint64_t n, StatusCode code, std::string message) {
  FaultSpec spec;
  spec.policy = Policy::kNthHit;
  spec.nth = n == 0 ? 1 : n;
  spec.code = code;
  spec.message = std::move(message);
  return spec;
}

FaultSpec FaultSpec::WithProbability(double p, std::uint64_t seed, StatusCode code,
                                     std::string message) {
  FaultSpec spec;
  spec.policy = Policy::kProbability;
  spec.probability = std::clamp(p, 0.0, 1.0);
  spec.seed = seed;
  spec.code = code;
  spec.message = std::move(message);
  return spec;
}

Status FaultPoint::Poke() {
  ++hits_;
  if (!armed_) {
    return Status::Ok();
  }
  ++hits_since_armed_;
  bool fire = false;
  switch (spec_.policy) {
    case FaultSpec::Policy::kNever:
      break;
    case FaultSpec::Policy::kNthHit:
      fire = !fired_once_ && hits_since_armed_ == spec_.nth;
      break;
    case FaultSpec::Policy::kProbability:
      fire = rng_.NextBool(spec_.probability);
      break;
  }
  if (!fire) {
    return Status::Ok();
  }
  fired_once_ = true;
  ++injected_;
  if (injected_metric_ != nullptr) {
    injected_metric_->Increment();
  }
  return Status(spec_.code, spec_.message + " at " + name_);
}

FaultPoint::BulkPoke FaultPoint::PokeMany(std::uint64_t n) {
  BulkPoke result;
  if (!armed_) {
    // Fast path: an unarmed Poke() only counts the hit.
    hits_ += n;
    result.performed = n;
    return result;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    ++result.performed;
    result.status = Poke();
    if (!result.status.ok()) {
      return result;
    }
  }
  return result;
}

void FaultPoint::Arm(const FaultSpec& spec) {
  spec_ = spec;
  armed_ = true;
  hits_since_armed_ = 0;
  fired_once_ = false;
  rng_ = Rng(spec.seed);
}

void FaultPoint::Disarm() {
  armed_ = false;
  spec_ = FaultSpec{};
  hits_since_armed_ = 0;
  fired_once_ = false;
}

FaultInjector::FaultInjector(MetricsRegistry* metrics)
    : own_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(metrics == nullptr ? own_metrics_.get() : metrics),
      injected_counter_(metrics_->GetCounter("fault/injected")) {}

FaultPoint* FaultInjector::GetPoint(std::string_view name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), std::make_unique<FaultPoint>(std::string(name)))
             .first;
    it->second->injected_metric_ = &injected_counter_;
  }
  return it->second.get();
}

const FaultPoint* FaultInjector::FindPoint(std::string_view name) const {
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

Status FaultInjector::Arm(std::string_view name, const FaultSpec& spec) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    return ErrNotFound("unknown fault point: " + std::string(name));
  }
  it->second->Arm(spec);
  return Status::Ok();
}

void FaultInjector::Disarm(std::string_view name) {
  auto it = points_.find(name);
  if (it != points_.end()) {
    it->second->Disarm();
  }
}

void FaultInjector::DisarmAll() {
  for (auto& [name, point] : points_) {
    point->Disarm();
  }
}

Status FaultInjector::LoadPlan(const FaultPlan& plan) {
  for (const FaultPlan::Arm& arm : plan.arms) {
    NEPHELE_RETURN_IF_ERROR(Arm(arm.point, arm.spec));
  }
  return Status::Ok();
}

std::vector<std::string> FaultInjector::PointNames() const {
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::uint64_t FaultInjector::HitCount(std::string_view name) const {
  const FaultPoint* p = FindPoint(name);
  return p == nullptr ? 0 : p->hits();
}

std::uint64_t FaultInjector::InjectedCount(std::string_view name) const {
  const FaultPoint* p = FindPoint(name);
  return p == nullptr ? 0 : p->injected();
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& [name, point] : points_) {
    total += point->injected();
  }
  return total;
}

}  // namespace nephele
