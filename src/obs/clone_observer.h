// CloneObserver: the single instrumentation/observer interface of the clone
// path. The guest runtime, the metrics layer, tracing and benches all
// register through CloneEngine::AddObserver() — this replaces the old
// SetResumeHandler/AddResumeObserver dual path.
//
// Callback order: observers run in registration order. OnCloneStart and
// OnCloneComplete fire synchronously inside the CLONEOP handlers; OnResume is
// delivered through the event loop (the domain really runs again at that
// simulated instant); OnCowFault fires synchronously when a COW fault
// un-shares a page of any family member.

#ifndef SRC_OBS_CLONE_OBSERVER_H_
#define SRC_OBS_CLONE_OBSERVER_H_

#include "src/hypervisor/types.h"

namespace nephele {

class CloneObserver {
 public:
  virtual ~CloneObserver() = default;

  // A clone batch passed validation and enters the first stage.
  virtual void OnCloneStart(DomId /*parent*/, unsigned /*num_clones*/) {}

  // xencloned reported second-stage completion for `child`.
  virtual void OnCloneComplete(DomId /*parent*/, DomId /*child*/) {}

  // `child` was rolled back instead of completing: either the first stage
  // failed mid-batch (the child never became visible to callers) or the
  // second stage aborted and xencloned unwound it. Fires synchronously
  // inside the rollback, after the child's resources were returned.
  virtual void OnCloneAborted(DomId /*parent*/, DomId /*child*/) {}

  // A domain resumes after cloning: each child once, and the parent once per
  // batch after every child completed.
  virtual void OnResume(DomId /*dom*/, bool /*is_child*/) {}

  // A COW fault resolved for `dom`. `copied` is true when a fresh frame was
  // allocated (refcount > 1), false when ownership moved in place.
  virtual void OnCowFault(DomId /*dom*/, Gfn /*gfn*/, bool /*copied*/) {}
};

}  // namespace nephele

#endif  // SRC_OBS_CLONE_OBSERVER_H_
