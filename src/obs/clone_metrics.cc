#include "src/obs/clone_metrics.h"

namespace nephele {

CloneMetricsObserver::CloneMetricsObserver(MetricsRegistry& metrics, EventLoop& loop)
    : loop_(loop),
      batches_(metrics.GetCounter("clone/batches")),
      completions_(metrics.GetCounter("clone/completions")),
      child_resumes_(metrics.GetCounter("clone/resume/child_total")),
      parent_resumes_(metrics.GetCounter("clone/resume/parent_total")),
      cow_faults_(metrics.GetCounter("cow/faults")),
      cow_pages_copied_(metrics.GetCounter("cow/pages_copied")),
      fork_to_resume_ns_(metrics.GetHistogram("clone/fork_to_resume/duration_ns")) {}

void CloneMetricsObserver::OnCloneStart(DomId parent, unsigned /*num_clones*/) {
  batches_.Increment();
  // A parent can only have one batch in flight (it is paused until the batch
  // completes), so a plain map entry suffices.
  batch_start_[parent] = loop_.Now();
}

void CloneMetricsObserver::OnCloneComplete(DomId /*parent*/, DomId /*child*/) {
  completions_.Increment();
}

void CloneMetricsObserver::OnResume(DomId dom, bool is_child) {
  if (is_child) {
    child_resumes_.Increment();
    return;
  }
  parent_resumes_.Increment();
  auto it = batch_start_.find(dom);
  if (it != batch_start_.end()) {
    fork_to_resume_ns_.Observe((loop_.Now() - it->second).ns());
    batch_start_.erase(it);
  }
}

void CloneMetricsObserver::OnCowFault(DomId /*dom*/, Gfn /*gfn*/, bool copied) {
  cow_faults_.Increment();
  if (copied) {
    cow_pages_copied_.Increment();
  }
}

}  // namespace nephele
