// SystemServices: the bundle of cross-cutting service handles (metrics,
// tracing, fault injection) every control-plane component receives at
// construction. Replaces the old trailing `MetricsRegistry*, TraceRecorder*,
// FaultInjector*` optional-pointer tails on Toolstack, CloneEngine, Xencloned
// and CloneScheduler: one struct passed by const-ref, so adding a service
// never changes a constructor signature again.
//
// Every member may be null — components then fall back to a private registry
// (metrics), skip tracing, or never arm their fault points, exactly as the
// old null pointer tails behaved. NepheleSystem::services() hands out the
// fully-populated bundle.

#ifndef SRC_OBS_SERVICES_H_
#define SRC_OBS_SERVICES_H_

namespace nephele {

class MetricsRegistry;
class TraceRecorder;
class FaultInjector;

struct SystemServices {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  FaultInjector* faults = nullptr;
};

}  // namespace nephele

#endif  // SRC_OBS_SERVICES_H_
