#include "src/obs/trace.h"

namespace nephele {

TraceSpan::TraceSpan(TraceRecorder* recorder, std::string name) : recorder_(recorder) {
  event_.name = std::move(name);
  if (recorder_ != nullptr) {
    event_.start = recorder_->Now();
  }
}

void TraceSpan::AddArg(std::string key, std::int64_t value) {
  event_.args.emplace_back(std::move(key), value);
}

void TraceSpan::End() {
  if (recorder_ == nullptr) {
    return;
  }
  event_.end = recorder_->Now();
  recorder_->Record(std::move(event_));
  recorder_ = nullptr;
}

std::string TraceRecorder::ExportJson() const {
  std::string out = "{\n  \"spans\": [";
  bool first = true;
  for (const TraceEvent& e : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + e.name + "\", \"start_ns\": " + std::to_string(e.start.ns()) +
           ", \"end_ns\": " + std::to_string(e.end.ns());
    if (!e.args.empty()) {
      out += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) {
          out += ", ";
        }
        first_arg = false;
        out += "\"" + key + "\": " + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace nephele
