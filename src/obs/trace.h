// Lightweight trace spans stamped with *simulated* time from the EventLoop.
// A span covers one logical operation on the clone/boot path ("clone/stage1",
// "clone/stage2", "toolstack/boot"); the recorder keeps a bounded buffer and
// exports deterministic JSON for offline inspection.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/time.h"

namespace nephele {

struct TraceEvent {
  std::string name;
  SimTime start;
  SimTime end;
  // Small integer annotations (domid, clone count, pages...), in the order
  // they were added.
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class TraceRecorder;

// RAII span: records into the recorder when End() runs (or at destruction).
// Inert when created from a null recorder, so instrumented code needs no
// null checks.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceRecorder* recorder, std::string name);

  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    End();
    recorder_ = other.recorder_;
    event_ = std::move(other.event_);
    other.recorder_ = nullptr;
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  void AddArg(std::string key, std::int64_t value);
  // Stamps the end time and hands the event to the recorder. Idempotent.
  void End();

 private:
  TraceRecorder* recorder_ = nullptr;
  TraceEvent event_;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(EventLoop& loop, std::size_t max_events = 8192)
      : loop_(loop), max_events_(max_events) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  TraceSpan BeginSpan(std::string name) { return TraceSpan(this, std::move(name)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // {"spans": [{"name": ..., "start_ns": ..., "end_ns": ..., "args": {...}},
  // ...]} in recording order — deterministic for a deterministic scenario.
  std::string ExportJson() const;

 private:
  friend class TraceSpan;

  SimTime Now() const { return loop_.Now(); }
  void Record(TraceEvent event) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(event));
  }

  EventLoop& loop_;
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace nephele

#endif  // SRC_OBS_TRACE_H_
