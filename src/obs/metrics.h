// Process-wide metrics registry: monotonic counters, gauges and fixed-bucket
// histograms keyed by hierarchical names ("clone/stage1/pages_shared").
//
// Every value is an integer and the export walks sorted maps, so
// MetricsRegistry::ExportJson() is byte-identical across runs of the same
// seeded scenario — benches and tests assert on it directly. Handles returned
// by the registry are stable for its lifetime; subsystems cache them at
// construction and update them on the hot path without any lookup.
//
// Threading: individual metric updates are thread-safe (atomic counters and
// gauges, an internal mutex per histogram) so clone-engine worker threads may
// record concurrently. Find-or-create and read paths on the registry are
// guarded by a registry mutex. Gauge providers and the export itself are
// still expected to run on the simulation thread.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nephele {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value. Either set explicitly or backed by a provider that is
// sampled at read/export time (the netdata collector style — the gauge then
// always reflects live subsystem state without hot-path updates).
class Gauge {
 public:
  using Provider = std::function<std::int64_t()>;

  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void SetProvider(Provider provider) { provider_ = std::move(provider); }

  std::int64_t value() const {
    return provider_ ? provider_() : value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  Provider provider_;
};

// Fixed-bucket histogram over integer samples (durations in nanoseconds,
// page counts, ...). Bucket i counts samples <= bounds[i]; one implicit
// overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  // Upper bounds for simulated-time latencies, in nanoseconds: 1us .. 1s.
  static const std::vector<std::int64_t>& DefaultLatencyBoundsNs();

  void Observe(std::int64_t value);

  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::int64_t sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  std::int64_t min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : min_;
  }
  std::int64_t max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : max_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Bounds are fixed at construction; no lock needed.
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t BucketCount(std::size_t i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return buckets_[i];
  }

 private:
  std::vector<std::int64_t> bounds_;
  mutable std::mutex mu_;               // guards everything below
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The returned reference stays valid for the registry's
  // lifetime. A histogram's bucket bounds are fixed by the first call for
  // its name; later calls ignore `bounds`.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<std::int64_t> bounds = {});

  // Read-only lookup (null when the metric was never created).
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Convenience readers for tests/benches; 0 for absent metrics.
  std::uint64_t CounterValue(std::string_view name) const;
  std::int64_t GaugeValue(std::string_view name) const;

  // Point-in-time snapshots of every metric, names sorted — the collector
  // interface of the TSDB (src/obs/tsdb) and the metric-naming audit. One
  // registry lock, then per-metric reads; provider-backed gauges are sampled
  // while taking the snapshot, so like export these run on the simulation
  // thread. Histograms are reduced to their (count, sum) pair: the two
  // series windowed rate/mean queries need.
  struct HistogramSample {
    std::uint64_t count = 0;
    std::int64_t sum = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters() const;
  std::vector<std::pair<std::string, std::int64_t>> SnapshotGauges() const;
  std::vector<std::pair<std::string, HistogramSample>> SnapshotHistograms() const;

  // Every metric name currently registered (counters, gauges and histograms
  // interleaved), sorted and de-duplicated.
  std::vector<std::string> AllNames() const;

  // Deterministic export: {"counters": {...}, "gauges": {...},
  // "histograms": {...}} with names sorted and integer values only.
  // Provider-backed gauges are sampled at export time.
  std::string ExportJson() const;

 private:
  friend std::string ExportMergedJson(
      const std::vector<std::pair<std::string, const MetricsRegistry*>>& parts);

  mutable std::mutex mu_;  // guards the three maps (not the metrics themselves)
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Merges several registries into one export, each metric name prefixed by
// its part's tag (e.g. "host0/"). The output is byte-for-byte the ExportJson
// format — same sections, sorting and histogram layout — so the cluster
// export of a single host with an empty prefix equals that host's own
// ExportJson(). Null registries are skipped; later parts win name collisions
// (which prefixed callers never produce).
std::string ExportMergedJson(
    const std::vector<std::pair<std::string, const MetricsRegistry*>>& parts);

}  // namespace nephele

#endif  // SRC_OBS_METRICS_H_
