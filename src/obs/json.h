// Minimal JSON support (no external dependency): a well-formedness checker
// for tests and bench_smoke, plus a small DOM parser used by the bench
// perf-regression gate to read BENCH_*.json and scripts/bench_baseline.json.
// The DOM is deliberately simple — a tagged struct, object members kept in
// document order — because every JSON this repo reads is one it wrote.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nephele {

// One parsed JSON value. Numbers are held as double (every number this repo
// emits fits); object members preserve document order and are looked up
// linearly via Find().
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // First member with this key (null when absent or not an object).
  const JsonValue* Find(std::string_view key) const;
};

// Parses exactly one JSON value (objects, arrays, strings with the common
// escapes, numbers, true/false/null) with nothing but whitespace around it.
// On failure returns false and, if non-null, `error` names the offset and
// what was expected.
bool ParseJson(std::string_view json, JsonValue* out, std::string* error = nullptr);

// True when `json` parses; same diagnostics contract as ParseJson.
bool JsonIsWellFormed(std::string_view json, std::string* error = nullptr);

}  // namespace nephele

#endif  // SRC_OBS_JSON_H_
