// Minimal JSON well-formedness checker (no DOM, no allocation): enough for
// tests and the bench_smoke target to validate exported metrics/trace JSON
// without an external dependency.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <string>
#include <string_view>

namespace nephele {

// True when `json` is exactly one valid JSON value (objects, arrays, strings
// with the common escapes, numbers, true/false/null) with nothing but
// whitespace around it. On failure `error` (if non-null) names the offset and
// what was expected.
bool JsonIsWellFormed(std::string_view json, std::string* error = nullptr);

}  // namespace nephele

#endif  // SRC_OBS_JSON_H_
