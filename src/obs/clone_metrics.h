// CloneMetricsObserver: the metrics layer's CloneObserver. Turns clone-path
// events into registry metrics — exactly the way a bench or tracer would
// subscribe, proving the observer API carries enough information.

#ifndef SRC_OBS_CLONE_METRICS_H_
#define SRC_OBS_CLONE_METRICS_H_

#include <map>

#include "src/obs/clone_observer.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"

namespace nephele {

class CloneMetricsObserver : public CloneObserver {
 public:
  CloneMetricsObserver(MetricsRegistry& metrics, EventLoop& loop);

  void OnCloneStart(DomId parent, unsigned num_clones) override;
  void OnCloneComplete(DomId parent, DomId child) override;
  void OnResume(DomId dom, bool is_child) override;
  void OnCowFault(DomId dom, Gfn gfn, bool copied) override;

 private:
  EventLoop& loop_;
  Counter& batches_;
  Counter& completions_;
  Counter& child_resumes_;
  Counter& parent_resumes_;
  Counter& cow_faults_;
  Counter& cow_pages_copied_;
  // Guest-visible fork() latency: CLONEOP entry to parent resume.
  Histogram& fork_to_resume_ns_;
  std::map<DomId, SimTime> batch_start_;
};

}  // namespace nephele

#endif  // SRC_OBS_CLONE_METRICS_H_
