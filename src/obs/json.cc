#include "src/obs/json.h"

#include <cctype>
#include <string>

namespace nephele {
namespace {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after top-level value");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool Value() {
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool String() {
    if (!Consume('"')) return false;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (AtEnd()) return Fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (AtEnd() || std::isxdigit(static_cast<unsigned char>(Peek())) == 0) {
                return Fail("invalid \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      }
    }
  }

  bool Number() {
    std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return Fail("expected a value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonIsWellFormed(std::string_view json, std::string* error) {
  return Checker(json).Run(error);
}

}  // namespace nephele
