#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace nephele {
namespace {

// Recursive-descent parser. The well-formedness checker is the same walk
// with the value thrown away, so the two can never disagree about what is
// valid JSON.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Run(JsonValue* out, std::string* error) {
    SkipWs();
    JsonValue root;
    if (!Value(root)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after top-level value");
      if (error != nullptr) *error = error_;
      return false;
    }
    if (out != nullptr) *out = std::move(root);
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool Value(JsonValue& out) {
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return String(out.string_value);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = true;
        return Literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = false;
        return Literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue member;
      if (!Value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool Array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue element;
      if (!Value(element)) return false;
      out.elements.push_back(std::move(element));
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool String(std::string& out) {
    if (!Consume('"')) return false;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || std::isxdigit(static_cast<unsigned char>(Peek())) == 0) {
              return Fail("invalid \\u escape");
            }
            char h = text_[pos_++];
            unsigned digit = h <= '9'   ? static_cast<unsigned>(h - '0')
                             : h <= 'F' ? static_cast<unsigned>(h - 'A' + 10)
                                        : static_cast<unsigned>(h - 'a' + 10);
            code = code * 16 + digit;
          }
          // Only BMP code points below 0x80 round-trip losslessly in this
          // byte-oriented DOM; everything else keeps a replacement '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool Number(JsonValue& out) {
    std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return Fail("expected a value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool ParseJson(std::string_view json, JsonValue* out, std::string* error) {
  return Parser(json).Run(out, error);
}

bool JsonIsWellFormed(std::string_view json, std::string* error) {
  return Parser(json).Run(nullptr, error);
}

}  // namespace nephele
