#include "src/obs/metrics.h"

#include <algorithm>

namespace nephele {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
}

void AppendKey(std::string& out, std::string_view name) {
  out += '"';
  AppendEscaped(out, name);
  out += "\": ";
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultLatencyBoundsNs();
  }
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

const std::vector<std::int64_t>& Histogram::DefaultLatencyBoundsNs() {
  static const std::vector<std::int64_t> kBounds = {
      1'000,         10'000,        50'000,        100'000,      500'000,
      1'000'000,     2'000'000,     5'000'000,     10'000'000,   50'000'000,
      100'000'000,   500'000'000,   1'000'000'000};
  return kBounds;
}

void Histogram::Observe(std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

std::int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  const Gauge* g = FindGauge(name);
  return g == nullptr ? 0 : g->value();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::HistogramSample>>
MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSample>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, HistogramSample{hist->count(), hist->sum()});
  }
  return out;
}

std::vector<std::string> MetricsRegistry::AllNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(name);
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(name);
  }
  for (const auto& [name, hist] : histograms_) {
    out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += "{\n      \"count\": " + std::to_string(hist->count());
    out += ",\n      \"sum\": " + std::to_string(hist->sum());
    out += ",\n      \"min\": " + std::to_string(hist->min());
    out += ",\n      \"max\": " + std::to_string(hist->max());
    out += ",\n      \"buckets\": [";
    for (std::size_t i = 0; i < hist->bounds().size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "        {\"le\": " + std::to_string(hist->bounds()[i]) +
             ", \"count\": " + std::to_string(hist->BucketCount(i)) + "}";
    }
    out += ",\n        {\"le\": \"+inf\", \"count\": " +
           std::to_string(hist->BucketCount(hist->bounds().size())) + "}\n      ]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string ExportMergedJson(
    const std::vector<std::pair<std::string, const MetricsRegistry*>>& parts) {
  // Collect prefixed snapshots first (one lock per part), then emit in
  // exactly the ExportJson layout so merged and single-registry exports
  // diff cleanly against each other.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const auto& [prefix, registry] : parts) {
    if (registry == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lock(registry->mu_);
    for (const auto& [name, counter] : registry->counters_) {
      counters[prefix + name] = counter->value();
    }
    for (const auto& [name, gauge] : registry->gauges_) {
      gauges[prefix + name] = gauge->value();
    }
    for (const auto& [name, hist] : registry->histograms_) {
      histograms[prefix + name] = hist.get();
    }
  }

  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendKey(out, name);
    out += "{\n      \"count\": " + std::to_string(hist->count());
    out += ",\n      \"sum\": " + std::to_string(hist->sum());
    out += ",\n      \"min\": " + std::to_string(hist->min());
    out += ",\n      \"max\": " + std::to_string(hist->max());
    out += ",\n      \"buckets\": [";
    for (std::size_t i = 0; i < hist->bounds().size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "        {\"le\": " + std::to_string(hist->bounds()[i]) +
             ", \"count\": " + std::to_string(hist->BucketCount(i)) + "}";
    }
    out += ",\n        {\"le\": \"+inf\", \"count\": " +
           std::to_string(hist->BucketCount(hist->bounds().size())) + "}\n      ]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace nephele
