// TsdbCollector: the time-series half of the observability layer. Where
// MetricsRegistry::ExportJson() is a single snapshot, the collector turns
// the registry into netdata-style per-tick history: on every tick it
// snapshots EVERY registry metric (counters and gauges as one series each,
// histograms as a `<name>/count` and `<name>/sum` pair) into fixed-size
// RingSeries, discovers new metrics as they appear, and offers windowed
// aggregation (min/max/mean/rate/percentile over the last N ticks) that the
// AlarmEngine — and through it the clone scheduler — consumes as feedback.
//
// Ticks run on simulated time and only when the owner asks for them:
// Tick() samples immediately, ScheduleTicks(n) posts n future ticks spaced
// config.tick_interval apart onto the event loop, where they interleave
// deterministically with workload events. The collector never re-arms
// itself, so EventLoop::Run()/Settle() always drains. Exports are
// byte-deterministic for a seeded scenario at any clone worker count.

#ifndef SRC_OBS_TSDB_TSDB_H_
#define SRC_OBS_TSDB_TSDB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/tsdb/ring_series.h"
#include "src/sim/event_loop.h"
#include "src/sim/time.h"

namespace nephele {

struct AlarmRule;

// Knobs of the telemetry pipeline; carried by SystemConfig::tsdb so the
// whole knob surface stays on the single source of truth.
struct TsdbConfig {
  // Simulated-time spacing of ScheduleTicks() samples.
  SimDuration tick_interval = SimDuration::Millis(10);
  // Samples retained per series; older ticks are overwritten in ring order.
  std::size_t ring_capacity = 256;
};

// Receives collector and alarm lifecycle events. Default-no-op so observers
// override only what they consume (the CloneObserver pattern). Observers are
// not owned; remove before destroying one.
class TsdbObserver {
 public:
  virtual ~TsdbObserver() = default;
  // After the samples of `tick` landed in the rings (and, for observers
  // registered on an AlarmEngine, after its rules were evaluated).
  virtual void OnTick(std::uint64_t tick) { (void)tick; }
  virtual void OnAlarmRaised(const AlarmRule& rule, std::uint64_t tick) {
    (void)rule;
    (void)tick;
  }
  virtual void OnAlarmCleared(const AlarmRule& rule, std::uint64_t tick) {
    (void)rule;
    (void)tick;
  }
};

// Windowed aggregate over the last N ticks of one series, clamped to what
// the ring still retains. `samples == 0` means the window was empty (absent
// series, or no ticks yet) and every figure is zero.
struct WindowStats {
  std::size_t samples = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  // First-to-last delta per tick across the window — the per-tick rate of a
  // monotonic counter series. 0 with fewer than two samples.
  double rate_per_tick = 0.0;
};

class TsdbCollector {
 public:
  TsdbCollector(MetricsRegistry& registry, EventLoop& loop, TsdbConfig config = {});

  TsdbCollector(const TsdbCollector&) = delete;
  TsdbCollector& operator=(const TsdbCollector&) = delete;

  const TsdbConfig& config() const { return config_; }
  // Ticks sampled so far; the next Tick() gets this index.
  std::uint64_t ticks() const { return tick_count_; }

  // Samples every registry metric now. New metrics get a fresh series whose
  // first sample lands at the current tick (earlier ticks simply are not
  // retained for it — the netdata gap semantics).
  void Tick();

  // Posts `n` ticks at Now()+i*tick_interval (i = 1..n). Settling the loop
  // runs them; the collector does not re-arm, so the loop always drains.
  void ScheduleTicks(unsigned n);

  // Null when the metric was never sampled.
  const RingSeries* FindSeries(std::string_view name) const;
  std::size_t series_count() const { return series_.size(); }

  // Aggregates the last `window` ticks of `name` (clamped to retained
  // history). Zero-filled stats when the series is absent or empty.
  WindowStats Aggregate(std::string_view name, std::size_t window) const;

  // Nearest-rank percentile (p in [0,100]) over the same window; 0 when the
  // window is empty.
  std::int64_t Percentile(std::string_view name, std::size_t window, double p) const;

  void AddObserver(TsdbObserver* observer);
  void RemoveObserver(TsdbObserver* observer);

  // Deterministic export of the whole database: config, tick count, and
  // every series' retained samples in name order. Integer-only values.
  std::string ExportJson() const;

  // Cluster-level export: each part's ExportJson() nested under its tag
  // (a host's metrics_prefix() with the trailing '/' stripped, e.g.
  // "host0"), tags sorted. Null collectors are skipped. One deterministic
  // document for an N-host fabric, mirroring ExportMergedJson for metrics.
  static std::string ExportMergedJson(
      const std::vector<std::pair<std::string, const TsdbCollector*>>& parts);

  // Collector tick at which a series was discovered: global tick of ring
  // sample i is `base_tick + i`, so exports stay aligned even for metrics
  // that appeared mid-run.
  struct Entry {
    std::uint64_t base_tick;
    RingSeries ring;
  };

 private:
  void AppendSample(const std::string& name, std::int64_t value);

  MetricsRegistry& registry_;
  EventLoop& loop_;
  TsdbConfig config_;

  Counter& m_ticks_;
  Counter& m_samples_;
  Gauge& g_series_;

  std::map<std::string, Entry, std::less<>> series_;
  std::vector<TsdbObserver*> observers_;
  std::uint64_t tick_count_ = 0;
};

}  // namespace nephele

#endif  // SRC_OBS_TSDB_TSDB_H_
