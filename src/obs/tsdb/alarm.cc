#include "src/obs/tsdb/alarm.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace nephele {

namespace {

// Thresholds and aggregates are exported in fixed-point micro-units so the
// JSON stays integer-only (and therefore byte-stable across libc printf
// implementations).
std::int64_t ToMicros(double v) {
  return static_cast<std::int64_t>(std::llround(v * 1e6));
}

}  // namespace

AlarmEngine::AlarmEngine(TsdbCollector& tsdb, MetricsRegistry& registry)
    : tsdb_(tsdb), registry_(registry) {
  tsdb_.AddObserver(this);
}

AlarmEngine::~AlarmEngine() { tsdb_.RemoveObserver(this); }

void AlarmEngine::AddRule(AlarmRule rule) {
  RuleState state;
  state.raised_total = &registry_.GetCounter("alarm/" + rule.name + "/raised_total");
  state.cleared_total = &registry_.GetCounter("alarm/" + rule.name + "/cleared_total");
  state.state_gauge = &registry_.GetGauge("alarm/" + rule.name + "/state");
  state.state_gauge->Set(0);
  std::string name = rule.name;
  state.rule = std::move(rule);
  rules_.insert_or_assign(std::move(name), std::move(state));
}

std::vector<AlarmRule> AlarmEngine::DefaultNepheleRules() {
  std::vector<AlarmRule> rules;
  // Warm-pool thrash: the scheduler is evicting parked children about as
  // fast as it parks them — the pool is undersized for the demand pattern
  // and every eviction throws away an O(reset) grant.
  AlarmRule thrash;
  thrash.name = "warm_pool_thrash";
  thrash.series = "sched/evictions";
  thrash.agg = WindowAgg::kRate;
  thrash.window = 4;
  thrash.raise_above = 0.5;  // evictions per tick
  thrash.clear_below = 0.125;
  thrash.raise_after = 2;
  thrash.clear_after = 2;
  rules.push_back(thrash);
  // Rollback storm: stage-1 failures (or stage-2 aborts) are recurring —
  // the clone path itself is unhealthy, not one unlucky request.
  AlarmRule storm;
  storm.name = "rollback_storm";
  storm.series = "clone/rolled_back";
  storm.agg = WindowAgg::kRate;
  storm.window = 4;
  storm.raise_above = 0.5;  // rollbacks per tick
  storm.clear_below = 0.125;
  storm.raise_after = 2;
  storm.clear_after = 2;
  rules.push_back(storm);
  // Stream stall: lazy (post-copy) clones owe pages and the backlog never
  // drained over the whole window — the prefetcher is stalled (armed
  // lazy/stream fault, starved loop) and children keep paying demand
  // faults. kMin over the pending gauge: a healthy stream touches 0
  // between batches; a stalled one never does.
  AlarmRule stall;
  stall.name = "stream_stall";
  stall.series = "clone/lazy_pending_pages";
  stall.agg = WindowAgg::kMin;
  stall.window = 4;
  stall.raise_above = 0.0;  // min pending stayed > 0 across the window
  stall.clear_below = 1.0;
  stall.raise_after = 2;
  stall.clear_after = 2;
  rules.push_back(stall);
  // Request-tail breach: the windowed p99 of first-response-wins latency
  // (req/latency_p99_ns, maintained by the request-cloning dispatcher over
  // its recent-wins ring) never dipped below 50 ms across the window — the
  // request layer is tail-degraded, not one unlucky spike. kMin, like
  // stream_stall: a healthy tail touches low values between bursts.
  AlarmRule tail;
  tail.name = "req_tail";
  tail.series = "req/latency_p99_ns";
  tail.agg = WindowAgg::kMin;
  tail.window = 4;
  tail.raise_above = 50e6;  // ns: p99 stayed above 50 ms
  tail.clear_below = 20e6;
  tail.raise_after = 2;
  tail.clear_after = 2;
  rules.push_back(tail);
  return rules;
}

AlarmState AlarmEngine::StateOf(std::string_view name) const {
  auto it = rules_.find(name);
  return it == rules_.end() ? AlarmState::kClear : it->second.state;
}

double AlarmEngine::LastValue(std::string_view name) const {
  auto it = rules_.find(name);
  return it == rules_.end() ? 0.0 : it->second.last_value;
}

void AlarmEngine::AddObserver(TsdbObserver* observer) {
  if (observer != nullptr &&
      std::find(observers_.begin(), observers_.end(), observer) == observers_.end()) {
    observers_.push_back(observer);
  }
}

void AlarmEngine::RemoveObserver(TsdbObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

double AlarmEngine::Evaluate(const AlarmRule& rule) const {
  switch (rule.agg) {
    case WindowAgg::kMin:
      return static_cast<double>(tsdb_.Aggregate(rule.series, rule.window).min);
    case WindowAgg::kMax:
      return static_cast<double>(tsdb_.Aggregate(rule.series, rule.window).max);
    case WindowAgg::kMean:
      return tsdb_.Aggregate(rule.series, rule.window).mean;
    case WindowAgg::kRate:
      return tsdb_.Aggregate(rule.series, rule.window).rate_per_tick;
    case WindowAgg::kPercentile:
      return static_cast<double>(tsdb_.Percentile(rule.series, rule.window, rule.percentile));
  }
  return 0.0;
}

void AlarmEngine::OnTick(std::uint64_t tick) {
  for (auto& [name, rs] : rules_) {
    const double value = Evaluate(rs.rule);
    rs.last_value = value;
    if (rs.state == AlarmState::kClear) {
      if (value > rs.rule.raise_above) {
        ++rs.over_streak;
      } else {
        rs.over_streak = 0;
      }
      if (rs.over_streak >= rs.rule.raise_after) {
        rs.state = AlarmState::kRaised;
        rs.over_streak = 0;
        rs.under_streak = 0;
        rs.last_transition_tick = tick;
        rs.raised_total->Increment();
        rs.state_gauge->Set(1);
        for (TsdbObserver* observer : observers_) {
          observer->OnAlarmRaised(rs.rule, tick);
        }
      }
    } else {
      if (value < rs.rule.clear_below) {
        ++rs.under_streak;
      } else {
        rs.under_streak = 0;
      }
      if (rs.under_streak >= rs.rule.clear_after) {
        rs.state = AlarmState::kClear;
        rs.over_streak = 0;
        rs.under_streak = 0;
        rs.last_transition_tick = tick;
        rs.cleared_total->Increment();
        rs.state_gauge->Set(0);
        for (TsdbObserver* observer : observers_) {
          observer->OnAlarmCleared(rs.rule, tick);
        }
      }
    }
  }
}

std::string AlarmEngine::ExportJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"alarms\": {";
  bool first = true;
  for (const auto& [name, rs] : rules_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;
    out += "\": {\n";
    out += "      \"series\": \"" + rs.rule.series + "\",\n";
    out += "      \"window\": " + std::to_string(rs.rule.window) + ",\n";
    out += "      \"raise_above_micros\": " + std::to_string(ToMicros(rs.rule.raise_above)) +
           ",\n";
    out += "      \"clear_below_micros\": " + std::to_string(ToMicros(rs.rule.clear_below)) +
           ",\n";
    out += "      \"state\": " + std::to_string(rs.state == AlarmState::kRaised ? 1 : 0) +
           ",\n";
    out += "      \"last_value_micros\": " + std::to_string(ToMicros(rs.last_value)) + ",\n";
    out += "      \"last_transition_tick\": " + std::to_string(rs.last_transition_tick) +
           ",\n";
    out += "      \"raised_total\": " + std::to_string(rs.raised_total->value()) + ",\n";
    out += "      \"cleared_total\": " + std::to_string(rs.cleared_total->value()) + "\n";
    out += "    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace nephele
