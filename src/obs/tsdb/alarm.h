// AlarmEngine: declarative threshold alarms over TSDB series — the netdata
// health-engine shape. Each rule names a series, a windowed aggregation and
// a pair of thresholds; the engine re-evaluates every rule after each
// collector tick and drives a hysteresis-guarded two-state machine:
//
//   clear -> raised   after `raise_after` CONSECUTIVE ticks with the
//                     aggregate strictly above `raise_above`
//   raised -> clear   after `clear_after` consecutive ticks strictly below
//                     `clear_below`
//
// Boundary values (== a threshold) advance neither streak, and the gap
// between the two thresholds plus the streak requirement means a series
// hovering at the limit cannot flap the alarm. Transitions fan out to
// TsdbObservers (the scheduler feedback adapter lives on this hook) and are
// mirrored into the registry as `alarm/<name>/{state,raised_total,
// cleared_total}` — where the collector picks them up as series like any
// other metric.

#ifndef SRC_OBS_TSDB_ALARM_H_
#define SRC_OBS_TSDB_ALARM_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/tsdb/tsdb.h"

namespace nephele {

enum class AlarmState { kClear, kRaised };

// How a rule reduces its window to the one value the thresholds judge.
enum class WindowAgg { kMin, kMax, kMean, kRate, kPercentile };

struct AlarmRule {
  // Alarm identity; must follow the subsystem-less `[a-z0-9_]+` shape (the
  // registry mirror prefixes it with "alarm/").
  std::string name;
  // TSDB series the rule watches (a registry metric name, or `<hist>/count`
  // / `<hist>/sum` for histogram series).
  std::string series;
  WindowAgg agg = WindowAgg::kRate;
  // Percentile rank for WindowAgg::kPercentile, in [0, 100].
  double percentile = 99.0;
  // Ticks aggregated per evaluation (clamped to retained history).
  std::size_t window = 4;
  // Hysteresis band: raise strictly above, clear strictly below. Keep
  // clear_below <= raise_above or the alarm can never settle.
  double raise_above = 0.0;
  double clear_below = 0.0;
  // Consecutive out-of-band ticks required for each transition.
  unsigned raise_after = 2;
  unsigned clear_after = 2;
};

class AlarmEngine : public TsdbObserver {
 public:
  // Registers itself as an observer on `tsdb`; transitions are mirrored
  // into `registry` (pass the same registry the collector samples so alarm
  // state itself becomes a series).
  AlarmEngine(TsdbCollector& tsdb, MetricsRegistry& registry);
  ~AlarmEngine() override;

  AlarmEngine(const AlarmEngine&) = delete;
  AlarmEngine& operator=(const AlarmEngine&) = delete;

  void AddRule(AlarmRule rule);
  // The stock rule set for a NepheleSystem: `warm_pool_thrash` on the
  // `sched/evictions` rate and `rollback_storm` on the `clone/rolled_back`
  // rate.
  static std::vector<AlarmRule> DefaultNepheleRules();

  std::size_t rule_count() const { return rules_.size(); }
  // kClear for unknown names (an alarm that does not exist is not firing).
  AlarmState StateOf(std::string_view name) const;
  // The rule's aggregate at its last evaluation (0 before any tick).
  double LastValue(std::string_view name) const;

  // Alarm transitions are delivered to these observers (OnAlarmRaised /
  // OnAlarmCleared), in registration order, during the collector tick that
  // caused them.
  void AddObserver(TsdbObserver* observer);
  void RemoveObserver(TsdbObserver* observer);

  // TsdbObserver: evaluates every rule, in rule-name order.
  void OnTick(std::uint64_t tick) override;

  // Deterministic export: every rule's configuration echo, state and
  // transition counts in name order. Integer values plus fixed-point
  // thresholds (micro-units), so reruns are byte-identical.
  std::string ExportJson() const;

 private:
  struct RuleState {
    AlarmRule rule;
    AlarmState state = AlarmState::kClear;
    unsigned over_streak = 0;
    unsigned under_streak = 0;
    double last_value = 0.0;
    std::uint64_t last_transition_tick = 0;
    Counter* raised_total = nullptr;
    Counter* cleared_total = nullptr;
    Gauge* state_gauge = nullptr;
  };

  double Evaluate(const AlarmRule& rule) const;

  TsdbCollector& tsdb_;
  MetricsRegistry& registry_;
  std::map<std::string, RuleState, std::less<>> rules_;
  std::vector<TsdbObserver*> observers_;
};

}  // namespace nephele

#endif  // SRC_OBS_TSDB_ALARM_H_
