// RingSeries: the fixed-size storage cell of the TSDB (src/obs/tsdb) — one
// per collected metric, the netdata "round-robin database" shape. Samples
// are keyed by a monotonic tick index assigned at append time; once the ring
// is full every append overwrites the oldest sample, so a series always
// holds the last `capacity` ticks of history. Appends are O(1) and the
// contents are a pure function of the appended values, so exports built on
// top stay byte-deterministic.
//
// Single-threaded like the rest of the observability export surface: the
// collector samples on the simulation thread.

#ifndef SRC_OBS_TSDB_RING_SERIES_H_
#define SRC_OBS_TSDB_RING_SERIES_H_

#include <cstdint>
#include <vector>

namespace nephele {

class RingSeries {
 public:
  explicit RingSeries(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    samples_.reserve(capacity_);
  }

  std::size_t capacity() const { return capacity_; }
  // Number of samples currently retained (== min(appends, capacity)).
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Tick index the next append will get; equals the number of appends ever.
  std::uint64_t next_tick() const { return next_tick_; }
  // Oldest tick still retained. Meaningless while empty().
  std::uint64_t first_retained_tick() const { return next_tick_ - samples_.size(); }

  bool Retained(std::uint64_t tick) const {
    return tick < next_tick_ && tick >= first_retained_tick();
  }

  void Append(std::int64_t value) {
    if (samples_.size() < capacity_) {
      samples_.push_back(value);
    } else {
      samples_[head_] = value;
      head_ = (head_ + 1) % capacity_;
    }
    ++next_tick_;
  }

  // Sample recorded at `tick`; Retained(tick) must hold.
  std::int64_t AtTick(std::uint64_t tick) const {
    const std::size_t offset = static_cast<std::size_t>(tick - first_retained_tick());
    return samples_[(head_ + offset) % samples_.size()];
  }

  // Most recent sample; !empty() must hold.
  std::int64_t Last() const { return AtTick(next_tick_ - 1); }

 private:
  std::size_t capacity_;
  std::vector<std::int64_t> samples_;  // ring once full; head_ = oldest
  std::size_t head_ = 0;
  std::uint64_t next_tick_ = 0;
};

}  // namespace nephele

#endif  // SRC_OBS_TSDB_RING_SERIES_H_
