#include "src/obs/tsdb/tsdb.h"

#include <algorithm>
#include <cmath>

namespace nephele {

TsdbCollector::TsdbCollector(MetricsRegistry& registry, EventLoop& loop, TsdbConfig config)
    : registry_(registry),
      loop_(loop),
      config_(config),
      m_ticks_(registry.GetCounter("tsdb/ticks")),
      m_samples_(registry.GetCounter("tsdb/samples")),
      g_series_(registry.GetGauge("tsdb/series")) {
  if (config_.ring_capacity == 0) {
    config_.ring_capacity = 1;
  }
}

void TsdbCollector::AppendSample(const std::string& name, std::int64_t value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Entry{tick_count_, RingSeries(config_.ring_capacity)}).first;
  }
  it->second.ring.Append(value);
}

void TsdbCollector::Tick() {
  // Self-metrics first, then one coherent snapshot: the tick being recorded
  // is visible in this tick's own "tsdb/ticks" sample, while samples/series
  // tallies describe the PREVIOUS tick (they are updated after sampling).
  ++tick_count_;
  m_ticks_.Increment();

  const auto counters = registry_.SnapshotCounters();
  const auto gauges = registry_.SnapshotGauges();
  const auto histograms = registry_.SnapshotHistograms();

  std::uint64_t appended = 0;
  for (const auto& [name, value] : counters) {
    AppendSample(name, static_cast<std::int64_t>(value));
    ++appended;
  }
  for (const auto& [name, value] : gauges) {
    AppendSample(name, value);
    ++appended;
  }
  for (const auto& [name, sample] : histograms) {
    AppendSample(name + "/count", static_cast<std::int64_t>(sample.count));
    AppendSample(name + "/sum", sample.sum);
    appended += 2;
  }
  m_samples_.Increment(appended);
  g_series_.Set(static_cast<std::int64_t>(series_.size()));

  const std::uint64_t tick = tick_count_ - 1;  // index of the tick just taken
  for (TsdbObserver* observer : observers_) {
    observer->OnTick(tick);
  }
}

void TsdbCollector::ScheduleTicks(unsigned n) {
  for (unsigned i = 1; i <= n; ++i) {
    loop_.Post(config_.tick_interval * static_cast<double>(i), [this] { Tick(); });
  }
}

const RingSeries* TsdbCollector::FindSeries(std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second.ring;
}

WindowStats TsdbCollector::Aggregate(std::string_view name, std::size_t window) const {
  WindowStats stats;
  const RingSeries* ring = FindSeries(name);
  if (ring == nullptr || ring->empty() || window == 0) {
    return stats;
  }
  const std::size_t n = std::min(window, ring->size());
  const std::uint64_t last = ring->next_tick() - 1;
  const std::uint64_t first = last - (n - 1);
  std::int64_t sum = 0;
  for (std::uint64_t t = first; t <= last; ++t) {
    const std::int64_t v = ring->AtTick(t);
    if (stats.samples == 0 || v < stats.min) {
      stats.min = v;
    }
    if (stats.samples == 0 || v > stats.max) {
      stats.max = v;
    }
    sum += v;
    ++stats.samples;
  }
  stats.mean = static_cast<double>(sum) / static_cast<double>(n);
  if (n >= 2) {
    stats.rate_per_tick = static_cast<double>(ring->AtTick(last) - ring->AtTick(first)) /
                          static_cast<double>(n - 1);
  }
  return stats;
}

std::int64_t TsdbCollector::Percentile(std::string_view name, std::size_t window,
                                       double p) const {
  const RingSeries* ring = FindSeries(name);
  if (ring == nullptr || ring->empty() || window == 0) {
    return 0;
  }
  const std::size_t n = std::min(window, ring->size());
  const std::uint64_t last = ring->next_tick() - 1;
  std::vector<std::int64_t> values;
  values.reserve(n);
  for (std::uint64_t t = last - (n - 1); t <= last; ++t) {
    values.push_back(ring->AtTick(t));
  }
  std::sort(values.begin(), values.end());
  // Nearest-rank: the smallest value with at least p% of the window at or
  // below it. p <= 0 is the minimum, p >= 100 the maximum.
  const double clamped = std::clamp(p, 0.0, 100.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(n)));
  if (rank == 0) {
    rank = 1;
  }
  return values[rank - 1];
}

void TsdbCollector::AddObserver(TsdbObserver* observer) {
  if (observer != nullptr &&
      std::find(observers_.begin(), observers_.end(), observer) == observers_.end()) {
    observers_.push_back(observer);
  }
}

void TsdbCollector::RemoveObserver(TsdbObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

std::string TsdbCollector::ExportJson() const {
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"tick_interval_ns\": " + std::to_string(config_.tick_interval.ns()) + ",\n";
  out += "  \"ring_capacity\": " + std::to_string(config_.ring_capacity) + ",\n";
  out += "  \"ticks\": " + std::to_string(tick_count_) + ",\n";
  out += "  \"series\": {";
  bool first = true;
  for (const auto& [name, entry] : series_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;
    out += "\": {\"first_tick\": ";
    out += std::to_string(entry.base_tick + (entry.ring.empty()
                                                 ? 0
                                                 : entry.ring.first_retained_tick()));
    out += ", \"samples\": [";
    for (std::size_t i = 0; i < entry.ring.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += std::to_string(entry.ring.AtTick(entry.ring.first_retained_tick() + i));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string TsdbCollector::ExportMergedJson(
    const std::vector<std::pair<std::string, const TsdbCollector*>>& parts) {
  // Tags sorted, each part's own deterministic document embedded verbatim.
  std::map<std::string, std::string> docs;
  for (const auto& [tag, collector] : parts) {
    if (collector != nullptr) {
      docs[tag] = collector->ExportJson();
    }
  }
  std::string out;
  out.reserve(4096);
  out += "{\n  \"parts\": {";
  bool first = true;
  for (const auto& [tag, doc] : docs) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + tag + "\": " + doc;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace nephele