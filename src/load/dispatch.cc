#include "src/load/dispatch.h"

#include <algorithm>
#include <cmath>

namespace nephele {

RequestCloneDispatcher::RequestCloneDispatcher(Host& host, CloneScheduler& sched)
    : loop_(host.loop()),
      sched_(sched),
      costs_(host.costs()),
      config_(host.config().load),
      // A stream of its own: service draws must not perturb arrival or
      // user draws (and vice versa), or the d=1 and d=2 runs of the
      // dominance oracle would see different arrival sequences.
      service_rng_(host.config().load.seed ^ 0xd15b47c4e5ULL),
      c_submitted_(host.metrics().GetCounter("req/submitted")),
      c_dispatched_(host.metrics().GetCounter("req/dispatched")),
      c_wins_(host.metrics().GetCounter("req/wins")),
      c_cancelled_(host.metrics().GetCounter("req/cancelled")),
      c_rejected_(host.metrics().GetCounter("req/rejected")),
      c_failed_(host.metrics().GetCounter("req/failed")),
      h_latency_(host.metrics().GetHistogram("req/latency_ns",
                                               Histogram::DefaultLatencyBoundsNs())),
      h_service_(host.metrics().GetHistogram("req/service_ns",
                                               Histogram::DefaultLatencyBoundsNs())),
      g_in_flight_(host.metrics().GetGauge("req/in_flight")),
      g_latency_p99_(host.metrics().GetGauge("req/latency_p99_ns")) {}

SimDuration RequestCloneDispatcher::MeanServiceTime(const LoadConfig& config,
                                                    const CostModel& costs) {
  const double base_ns =
      static_cast<double>(config.service_pages) *
          static_cast<double>(costs.guest_touch_page.ns()) +
      static_cast<double>(config.service_p9_rpcs) * static_cast<double>(costs.p9_rpc.ns()) +
      static_cast<double>(config.service_net_packets) *
          static_cast<double>(costs.net_tx_packet.ns() + costs.net_rx_packet.ns());
  return SimDuration::Nanos(static_cast<std::int64_t>(std::llround(base_ns)));
}

SimDuration RequestCloneDispatcher::DrawServiceTime() {
  const double base_ns = static_cast<double>(MeanServiceTime(config_, costs_).ns());
  const double mult = -std::log(1.0 - service_rng_.NextDouble());  // Exp(1)
  const auto ns = static_cast<std::int64_t>(std::llround(base_ns * mult));
  return SimDuration::Nanos(ns < 1 ? 1 : ns);
}

void RequestCloneDispatcher::Submit(const LoadRequest& request) {
  c_submitted_.Increment();
  const unsigned d = std::max(1u, config_.clone_factor);
  RequestState state;
  state.request = request;
  state.unresolved = d;
  state.dups.resize(d);
  requests_.emplace(request.id, std::move(state));
  g_in_flight_.Set(static_cast<std::int64_t>(requests_.size()));
  for (unsigned i = 0; i < d; ++i) {
    StartDuplicate(request.id, i);
  }
}

void RequestCloneDispatcher::StartDuplicate(std::uint64_t id, unsigned idx) {
  c_dispatched_.Increment();
  if (fleet_mode_) {
    if (!idle_.empty()) {
      const DomId dom = idle_.front();
      idle_.pop_front();
      busy_[dom] = {id, idx};
      ActivateOn(id, idx, dom);
    } else if (pending_.size() < config_.max_pending) {
      pending_.emplace_back(id, idx);
    } else {
      Resolve(id, idx, Outcome::kReject);
    }
    return;
  }
  if (active_slots_ < config_.max_concurrent) {
    ++active_slots_;
    AcquireFor(id, idx);
  } else if (pending_.size() < config_.max_pending) {
    pending_.emplace_back(id, idx);
  } else {
    Resolve(id, idx, Outcome::kReject);
  }
}

void RequestCloneDispatcher::AcquireFor(std::uint64_t id, unsigned idx) {
  requests_.find(id)->second.dups[idx].state = DupState::kAwaitGrant;
  const Status status =
      sched_.Acquire(CloneRequest(kDom0, parent_, kInvalidMfn, 1),
                     [this, id, idx](Result<DomId> r) { OnGrant(id, idx, std::move(r)); });
  if (!status.ok()) {
    // Synchronous admission reject (queue full, armed sched/admit fault):
    // the callback never fires, the slot comes straight back.
    if (active_slots_ > 0) {
      --active_slots_;
    }
    Resolve(id, idx, Outcome::kReject);
  }
}

void RequestCloneDispatcher::OnGrant(std::uint64_t id, unsigned idx, Result<DomId> granted) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    // Defensive: a record cannot finalize while a grant is outstanding
    // (the awaiting duplicate stays unresolved), but never leak a child.
    if (granted.ok()) {
      if (active_slots_ > 0) {
        --active_slots_;
      }
      (void)sched_.Release(*granted);
      DrainPending();
    }
    return;
  }
  Duplicate& dup = it->second.dups[idx];
  if (!granted.ok()) {
    // Timeout, abort, or an injected dispatch fault failed the batch.
    if (active_slots_ > 0) {
      --active_slots_;
    }
    Resolve(id, idx, Outcome::kReject);
    DrainPending();
    return;
  }
  if (dup.cancel_on_grant) {
    // The sibling already won: hand the untouched child straight back.
    if (active_slots_ > 0) {
      --active_slots_;
    }
    (void)sched_.Release(*granted);
    Resolve(id, idx, Outcome::kCancel);
    DrainPending();
    return;
  }
  ActivateOn(id, idx, *granted);
}

void RequestCloneDispatcher::ActivateOn(std::uint64_t id, unsigned idx, DomId dom) {
  Duplicate& dup = requests_.find(id)->second.dups[idx];
  dup.state = DupState::kActive;
  dup.dom = dom;
  dup.service = DrawServiceTime();
  const std::uint64_t epoch = dup.epoch;
  loop_.Post(dup.service, [this, id, idx, epoch] { OnComplete(id, idx, epoch); });
}

void RequestCloneDispatcher::OnComplete(std::uint64_t id, unsigned idx, std::uint64_t epoch) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return;
  }
  RequestState& req = it->second;
  Duplicate& winner = req.dups[idx];
  if (winner.state != DupState::kActive || winner.epoch != epoch) {
    return;  // stale: this duplicate was cancelled or retired mid-service
  }
  // First response wins. Active losers are cancelled eagerly at every win,
  // so an active completion is always the first response.
  const std::int64_t latency = (loop_.Now() - req.request.arrival).ns();
  h_latency_.Observe(latency);
  h_service_.Observe(winner.service.ns());
  PushTailLatency(latency);
  if (latency_log_ != nullptr) {
    latency_log_->push_back(latency);
  }
  req.won = true;
  // Snapshot the losers before any Resolve can erase the record.
  struct LoserAction {
    unsigned idx;
    DomId dom;
    bool active;
  };
  std::vector<LoserAction> losers;
  for (unsigned i = 0; i < req.dups.size(); ++i) {
    if (i == idx) {
      continue;
    }
    Duplicate& dup = req.dups[i];
    if (dup.state == DupState::kResolved) {
      continue;
    }
    if (dup.state == DupState::kAwaitGrant) {
      dup.cancel_on_grant = true;  // counted when the grant lands
      continue;
    }
    if (dup.state == DupState::kActive) {
      ++dup.epoch;  // the loser's completion event is now stale
    }
    losers.push_back({i, dup.dom, dup.state == DupState::kActive});
  }
  const DomId winner_dom = winner.dom;
  FreeInstance(winner_dom);
  Resolve(id, idx, Outcome::kWin);
  for (const LoserAction& loser : losers) {
    if (loser.active) {
      FreeInstance(loser.dom);
    }
    Resolve(id, loser.idx, Outcome::kCancel);
  }
  DrainPending();
}

void RequestCloneDispatcher::Resolve(std::uint64_t id, unsigned idx, Outcome outcome) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return;
  }
  RequestState& req = it->second;
  Duplicate& dup = req.dups[idx];
  if (dup.state == DupState::kResolved) {
    return;
  }
  dup.state = DupState::kResolved;
  switch (outcome) {
    case Outcome::kWin:
      c_wins_.Increment();
      break;
    case Outcome::kCancel:
      c_cancelled_.Increment();
      break;
    case Outcome::kReject:
      c_rejected_.Increment();
      break;
  }
  if (--req.unresolved == 0) {
    if (!req.won) {
      // Request-level failure (every duplicate rejected) — outside the
      // per-duplicate identity by design.
      c_failed_.Increment();
    }
    requests_.erase(it);
    g_in_flight_.Set(static_cast<std::int64_t>(requests_.size()));
  }
}

void RequestCloneDispatcher::FreeInstance(DomId dom) {
  if (fleet_mode_) {
    if (busy_.erase(dom) > 0) {
      idle_.push_back(dom);
    }
    return;
  }
  if (active_slots_ > 0) {
    --active_slots_;
  }
  (void)sched_.Release(dom);
}

void RequestCloneDispatcher::DrainPending() {
  while (!pending_.empty()) {
    if (fleet_mode_ ? idle_.empty() : active_slots_ >= config_.max_concurrent) {
      return;
    }
    const auto [id, idx] = pending_.front();
    pending_.pop_front();
    auto it = requests_.find(id);
    if (it == requests_.end() || it->second.dups[idx].state != DupState::kPending) {
      continue;  // cancelled while queued
    }
    if (fleet_mode_) {
      const DomId dom = idle_.front();
      idle_.pop_front();
      busy_[dom] = {id, idx};
      ActivateOn(id, idx, dom);
    } else {
      ++active_slots_;
      AcquireFor(id, idx);
    }
  }
}

void RequestCloneDispatcher::AddFleetInstance(DomId dom) {
  if (busy_.count(dom) > 0 ||
      std::find(idle_.begin(), idle_.end(), dom) != idle_.end()) {
    return;
  }
  idle_.push_back(dom);
  DrainPending();
}

bool RequestCloneDispatcher::InstancePinned(DomId dom) const {
  auto it = busy_.find(dom);
  if (it == busy_.end()) {
    return false;
  }
  auto rit = requests_.find(it->second.first);
  return rit != requests_.end() && rit->second.unresolved == 1;
}

void RequestCloneDispatcher::HandleRetiredInstance(DomId dom) {
  auto idle_it = std::find(idle_.begin(), idle_.end(), dom);
  if (idle_it != idle_.end()) {
    idle_.erase(idle_it);
    return;
  }
  auto it = busy_.find(dom);
  if (it == busy_.end()) {
    return;
  }
  const auto [id, idx] = it->second;
  busy_.erase(it);
  auto rit = requests_.find(id);
  if (rit == requests_.end()) {
    return;
  }
  Duplicate& dup = rit->second.dups[idx];
  if (dup.state != DupState::kActive) {
    return;
  }
  ++dup.epoch;  // the in-flight completion event is now stale
  Resolve(id, idx, Outcome::kCancel);
}

void RequestCloneDispatcher::PushTailLatency(std::int64_t latency_ns) {
  const std::size_t window = std::max<std::size_t>(1, config_.tail_window);
  if (tail_.size() < window) {
    tail_.push_back(latency_ns);
  } else {
    tail_[tail_pos_] = latency_ns;
  }
  tail_pos_ = (tail_pos_ + 1) % window;
  // Nearest-rank p99 over the recent-wins window; this gauge is the series
  // the req_tail alarm evaluates.
  tail_scratch_ = tail_;
  std::size_t rank = (tail_scratch_.size() * 99 + 99) / 100;  // ceil
  if (rank > 0) {
    --rank;
  }
  std::nth_element(tail_scratch_.begin(),
                   tail_scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                   tail_scratch_.end());
  g_latency_p99_.Set(tail_scratch_[rank]);
}

}  // namespace nephele
