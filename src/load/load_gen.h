// Open-loop load generator on the simulated EventLoop: every arrival is one
// posted loop event producing one lightweight LoadRequest record, so
// millions of simulated users cost one id draw per request — no threads, no
// per-user state. Open loop means arrivals never wait for responses: the
// generator holds its configured rate even when the dispatcher saturates,
// which is what keeps tail latencies honest under overload.

#ifndef SRC_LOAD_LOAD_GEN_H_
#define SRC_LOAD_LOAD_GEN_H_

#include <cstdint>
#include <functional>

#include "src/core/system.h"
#include "src/load/arrival.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"

namespace nephele {

// One request: who asked, when. The record is all there is to a simulated
// user — the population size only scales the id space.
struct LoadRequest {
  std::uint64_t id = 0;
  std::uint64_t user = 0;
  SimTime arrival;
};

class LoadGenerator {
 public:
  using Sink = std::function<void(const LoadRequest&)>;

  LoadGenerator(EventLoop& loop, const LoadConfig& config, MetricsRegistry& metrics);
  // Convenience: loop, knobs and registry from the host (or a NepheleSystem
  // via its Host conversion).
  explicit LoadGenerator(Host& host)
      : LoadGenerator(host.loop(), host.config().load, host.metrics()) {}

  // Emits arrivals into `sink` from now until `duration` has elapsed (or
  // Stop()). Draining the loop then plays out the whole run.
  void Start(SimDuration duration, Sink sink);
  void Stop() { running_ = false; }

  std::uint64_t generated() const { return generated_; }
  const ArrivalProcess& arrivals() const { return arrivals_; }

 private:
  void ScheduleNext();

  EventLoop& loop_;
  LoadConfig config_;
  ArrivalProcess arrivals_;
  Rng user_rng_;
  Counter& c_generated_;
  Counter& c_state_switches_;
  Histogram& h_interarrival_;
  Sink sink_;
  SimTime next_;
  SimTime end_;
  bool running_ = false;
  std::uint64_t generated_ = 0;
  std::uint64_t reported_switches_ = 0;
};

}  // namespace nephele

#endif  // SRC_LOAD_LOAD_GEN_H_
