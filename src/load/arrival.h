// Seeded arrival processes for the open-loop load generator: homogeneous
// Poisson, a two-state MMPP ("bursty"), and a diurnal (sinusoidally
// modulated) nonhomogeneous Poisson sampled by thinning. All draws come
// from one SplitMix64 stream, so a (config, seed) pair reproduces the
// arrival sequence exactly — the statistical oracles in tests/load_test.cc
// rely on that.

#ifndef SRC_LOAD_ARRIVAL_H_
#define SRC_LOAD_ARRIVAL_H_

#include <cstdint>

#include "src/core/clone_types.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace nephele {

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig config, std::uint64_t seed);

  // The gap from the previous arrival to the next one. Always >= 1 ns, so
  // two arrivals never collapse onto the same loop instant.
  SimDuration NextGap();

  // The long-run mean rate implied by the config (requests/s): the Poisson
  // rate, the MMPP dwell-weighted mix, or the diurnal baseline (the
  // sinusoid integrates to zero over whole periods). Statistical oracles
  // compare empirical rates against this.
  double MeanRate() const;

  // MMPP telemetry: calm<->burst transitions taken so far.
  std::uint64_t state_switches() const { return state_switches_; }

  const ArrivalConfig& config() const { return config_; }

 private:
  double ExpSeconds(double rate_per_s);
  double DiurnalRate(double t_seconds) const;

  ArrivalConfig config_;
  Rng rng_;
  // MMPP state: which rate regime we are in and how much of its
  // exponentially drawn dwell remains.
  bool in_burst_ = false;
  double dwell_left_s_ = 0;
  std::uint64_t state_switches_ = 0;
  // Diurnal thinning cursor: absolute seconds since construction.
  double cursor_s_ = 0;
};

}  // namespace nephele

#endif  // SRC_LOAD_ARRIVAL_H_
