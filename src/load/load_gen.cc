#include "src/load/load_gen.h"

#include <utility>

namespace nephele {

LoadGenerator::LoadGenerator(EventLoop& loop, const LoadConfig& config,
                             MetricsRegistry& metrics)
    : loop_(loop),
      config_(config),
      arrivals_(config.arrival, config.seed),
      // A distinct stream for user draws, so the arrival sequence does not
      // depend on whether anyone reads the user ids.
      user_rng_(config.seed ^ 0x75e75eed5eedULL),
      c_generated_(metrics.GetCounter("load/generated")),
      c_state_switches_(metrics.GetCounter("load/state_switches")),
      h_interarrival_(metrics.GetHistogram("load/interarrival_ns",
                                           Histogram::DefaultLatencyBoundsNs())) {}

void LoadGenerator::Start(SimDuration duration, Sink sink) {
  sink_ = std::move(sink);
  next_ = loop_.Now();
  end_ = next_ + duration;
  running_ = true;
  ScheduleNext();
}

void LoadGenerator::ScheduleNext() {
  // Arrivals anchor to absolute process time, not to Now() at re-arm:
  // components charge virtual time synchronously (EventLoop::AdvanceBy)
  // while the sink dispatches, and an open-loop generator must not let that
  // work stretch its inter-arrival gaps.
  const SimDuration gap = arrivals_.NextGap();
  next_ = next_ + gap;
  if (next_ > end_) {
    running_ = false;
    return;
  }
  loop_.PostAt(next_, [this, gap] {
    if (!running_) {
      return;
    }
    LoadRequest request;
    request.id = ++generated_;
    request.user = user_rng_.NextBelow(
        config_.user_population == 0 ? 1 : config_.user_population);
    request.arrival = loop_.Now();
    c_generated_.Increment();
    h_interarrival_.Observe(gap.ns());
    c_state_switches_.Increment(arrivals_.state_switches() - reported_switches_);
    reported_switches_ = arrivals_.state_switches();
    if (sink_) {
      sink_(request);
    }
    ScheduleNext();
  });
}

}  // namespace nephele
