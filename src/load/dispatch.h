// Request-cloning dispatch policy (the processor-sharing request-cloning
// model of arXiv 2002.04416, on top of Nephele VM cloning): every request
// is duplicated to `clone_factor` cloned instances, the first response
// wins, the losers are cancelled immediately and their instances returned.
// Exact accounting invariant, per duplicate, checked by tests/load_test.cc
// at every quiescent point:
//
//   req/dispatched = req/wins + req/cancelled + req/rejected
//
// Two acquisition modes share the duplicate lifecycle:
//
//  * scheduler mode (default): each duplicate Acquires a fresh instance
//    from the CloneScheduler and Releases it to the warm pool on
//    resolution — the literal two-level-cloning policy. `max_concurrent`
//    bounds duplicates holding instances at once, which makes the
//    dispatcher a c-server queueing system with a FIFO.
//  * fleet mode: duplicates run on the ready instances of a
//    UnikernelBackend fleet (wired by UnikernelBackend::AttachDispatcher);
//    the backend consults InstancePinned() so gateway scale-down never
//    retires the instance holding the only unfinished duplicate of a
//    request.

#ifndef SRC_LOAD_DISPATCH_H_
#define SRC_LOAD_DISPATCH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/core/system.h"
#include "src/load/load_gen.h"
#include "src/sched/scheduler.h"

namespace nephele {

class RequestCloneDispatcher {
 public:
  RequestCloneDispatcher(Host& host, CloneScheduler& sched);

  // Scheduler mode: the parent whose clones serve duplicates. Must be set
  // before the first Submit unless fleet mode is active.
  void SetParent(DomId parent) { parent_ = parent; }

  // Fleet mode, driven by UnikernelBackend::AttachDispatcher.
  void SetFleetMode(bool on) { fleet_mode_ = on; }
  // A fleet instance became ready to serve duplicates.
  void AddFleetInstance(DomId dom);
  // True when `dom` is serving the only unfinished duplicate of a request:
  // retiring it would strand the request, so scale-down must skip it.
  bool InstancePinned(DomId dom) const;
  // The backend retired `dom` (scale-down): drop it from the idle list, or
  // cancel the redundant duplicate riding it.
  void HandleRetiredInstance(DomId dom);

  void Submit(const LoadRequest& request);

  // Tests and benches: collect each winning latency (ns) as it lands, in
  // win order. Pass nullptr to stop.
  void RecordLatenciesTo(std::vector<std::int64_t>* out) { latency_log_ = out; }

  std::uint64_t dispatched() const { return c_dispatched_.value(); }
  std::uint64_t wins() const { return c_wins_.value(); }
  std::uint64_t cancelled() const { return c_cancelled_.value(); }
  std::uint64_t rejected() const { return c_rejected_.value(); }
  std::uint64_t failed() const { return c_failed_.value(); }
  std::size_t in_flight() const { return requests_.size(); }
  std::size_t pending() const { return pending_.size(); }
  std::size_t idle_fleet_size() const { return idle_.size(); }

  // The mean duplicate service time the config's demand prices out to under
  // `costs` (the Exp(1) multiplier has mean 1). Benches derive arrival
  // rates for a target utilization from this.
  static SimDuration MeanServiceTime(const LoadConfig& config, const CostModel& costs);

 private:
  enum class DupState { kPending, kAwaitGrant, kActive, kResolved };
  enum class Outcome { kWin, kCancel, kReject };

  struct Duplicate {
    DupState state = DupState::kPending;
    DomId dom = kDomInvalid;
    // Bumped to invalidate an in-flight completion event (cancellation of
    // an active loser, instance retirement).
    std::uint64_t epoch = 0;
    // Win happened while the grant was outstanding: count the duplicate
    // cancelled when the grant lands, and release the instance untouched.
    bool cancel_on_grant = false;
    SimDuration service;
  };

  struct RequestState {
    LoadRequest request;
    unsigned unresolved = 0;
    bool won = false;
    std::vector<Duplicate> dups;
  };

  void StartDuplicate(std::uint64_t id, unsigned idx);
  void AcquireFor(std::uint64_t id, unsigned idx);
  void OnGrant(std::uint64_t id, unsigned idx, Result<DomId> granted);
  void ActivateOn(std::uint64_t id, unsigned idx, DomId dom);
  void OnComplete(std::uint64_t id, unsigned idx, std::uint64_t epoch);
  void Resolve(std::uint64_t id, unsigned idx, Outcome outcome);
  // Returns a finished duplicate's instance: scheduler mode releases it to
  // the warm pool and frees its slot; fleet mode marks it idle again.
  void FreeInstance(DomId dom);
  void DrainPending();
  SimDuration DrawServiceTime();
  void PushTailLatency(std::int64_t latency_ns);

  EventLoop& loop_;
  CloneScheduler& sched_;
  const CostModel& costs_;
  LoadConfig config_;
  Rng service_rng_;
  DomId parent_ = kDomInvalid;
  bool fleet_mode_ = false;

  std::map<std::uint64_t, RequestState> requests_;
  std::deque<std::pair<std::uint64_t, unsigned>> pending_;
  std::size_t active_slots_ = 0;          // scheduler mode
  std::deque<DomId> idle_;                // fleet mode: ready, unoccupied
  std::map<DomId, std::pair<std::uint64_t, unsigned>> busy_;  // fleet mode

  Counter& c_submitted_;
  Counter& c_dispatched_;
  Counter& c_wins_;
  Counter& c_cancelled_;
  Counter& c_rejected_;
  Counter& c_failed_;
  Histogram& h_latency_;
  Histogram& h_service_;
  Gauge& g_in_flight_;
  Gauge& g_latency_p99_;

  std::vector<std::int64_t> tail_;
  std::vector<std::int64_t> tail_scratch_;
  std::size_t tail_pos_ = 0;
  std::vector<std::int64_t>* latency_log_ = nullptr;
};

}  // namespace nephele

#endif  // SRC_LOAD_DISPATCH_H_
