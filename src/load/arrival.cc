#include "src/load/arrival.h"

#include <algorithm>
#include <cmath>

namespace nephele {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

SimDuration GapFromSeconds(double s) {
  const auto ns = static_cast<std::int64_t>(std::llround(s * 1e9));
  return SimDuration::Nanos(ns < 1 ? 1 : ns);
}

}  // namespace

ArrivalProcess::ArrivalProcess(ArrivalConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.kind == ArrivalKind::kBursty) {
    dwell_left_s_ = ExpSeconds(1.0 / std::max(config_.calm_dwell_mean.ToSeconds(), 1e-9));
  }
}

double ArrivalProcess::ExpSeconds(double rate_per_s) {
  // Inverse-CDF exponential; 1-U lies in (0, 1], so the log is finite.
  return -std::log(1.0 - rng_.NextDouble()) / rate_per_s;
}

double ArrivalProcess::DiurnalRate(double t_seconds) const {
  const double period = std::max(config_.diurnal_period.ToSeconds(), 1e-9);
  const double rate =
      config_.rate_rps *
      (1.0 + config_.diurnal_amplitude * std::sin(kTwoPi * t_seconds / period));
  return std::max(rate, 0.0);
}

SimDuration ArrivalProcess::NextGap() {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return GapFromSeconds(ExpSeconds(config_.rate_rps));
    case ArrivalKind::kBursty: {
      // Exponential gaps at the current state's rate; by memorylessness the
      // residual gap can be redrawn from scratch after each state switch.
      double acc = 0;
      for (;;) {
        const double rate = in_burst_ ? config_.burst_rate_rps : config_.rate_rps;
        const double gap = ExpSeconds(rate);
        if (gap <= dwell_left_s_) {
          dwell_left_s_ -= gap;
          return GapFromSeconds(acc + gap);
        }
        acc += dwell_left_s_;
        in_burst_ = !in_burst_;
        ++state_switches_;
        const SimDuration mean =
            in_burst_ ? config_.burst_dwell_mean : config_.calm_dwell_mean;
        dwell_left_s_ = ExpSeconds(1.0 / std::max(mean.ToSeconds(), 1e-9));
      }
    }
    case ArrivalKind::kDiurnal: {
      // Thinning (Lewis–Shedler): candidate gaps at the envelope rate
      // lambda_max, each accepted with probability rate(t)/lambda_max.
      const double lambda_max = config_.rate_rps * (1.0 + config_.diurnal_amplitude);
      const double prev = cursor_s_;
      for (;;) {
        cursor_s_ += ExpSeconds(lambda_max);
        if (rng_.NextDouble() * lambda_max <= DiurnalRate(cursor_s_)) {
          return GapFromSeconds(cursor_s_ - prev);
        }
      }
    }
  }
  return GapFromSeconds(ExpSeconds(config_.rate_rps));
}

double ArrivalProcess::MeanRate() const {
  if (config_.kind == ArrivalKind::kBursty) {
    const double calm_s = std::max(config_.calm_dwell_mean.ToSeconds(), 1e-9);
    const double burst_s = std::max(config_.burst_dwell_mean.ToSeconds(), 1e-9);
    return (config_.rate_rps * calm_s + config_.burst_rate_rps * burst_s) /
           (calm_s + burst_s);
  }
  return config_.rate_rps;
}

}  // namespace nephele
