#include "src/guest/posix.h"

#include "src/guest/guest_manager.h"

namespace nephele {

DomId PosixShim::GetPpid(GuestContext& ctx) {
  const Domain* d = ctx.manager().system().hypervisor().FindDomain(ctx.id());
  return d != nullptr ? d->parent : kDomInvalid;
}

Result<int> PosixShim::Open(GuestContext& ctx, const std::string& path, int flags) {
  Result<std::uint32_t> fid = (flags & kOpenCreate) != 0
                                  ? ctx.fs().Create(path)
                                  : ctx.fs().Open(path, (flags & kOpenWrite) != 0);
  if (!fid.ok()) {
    return fid.status();
  }
  int fd = next_fd_++;
  fds_[fd] = FileFd{*fid, 0, (flags & (kOpenWrite | kOpenCreate)) != 0};
  return fd;
}

Result<std::vector<std::uint8_t>> PosixShim::Read(GuestContext& ctx, int fd, std::size_t count) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  if (auto* file = std::get_if<FileFd>(&it->second)) {
    NEPHELE_ASSIGN_OR_RETURN(auto data, ctx.fs().Read(file->fid, file->offset, count));
    file->offset += data.size();
    return data;
  }
  if (auto* pipe = std::get_if<PipeFd>(&it->second)) {
    if (pipe->write_end) {
      return ErrFailedPrecondition("read on write end");
    }
    return pipe->pipe->Read(ctx.id(), count);
  }
  return ErrFailedPrecondition("fd not readable");
}

Result<std::size_t> PosixShim::Write(GuestContext& ctx, int fd,
                                     const std::vector<std::uint8_t>& data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  if (auto* file = std::get_if<FileFd>(&it->second)) {
    if (!file->writable) {
      return ErrPermissionDenied("fd opened read-only");
    }
    NEPHELE_ASSIGN_OR_RETURN(std::size_t n, ctx.fs().Write(file->fid, file->offset, data));
    file->offset += n;
    return n;
  }
  if (auto* pipe = std::get_if<PipeFd>(&it->second)) {
    if (!pipe->write_end) {
      return ErrFailedPrecondition("write on read end");
    }
    NEPHELE_ASSIGN_OR_RETURN(std::size_t n, pipe->pipe->Write(ctx.id(), data));
    (void)pipe->pipe->NotifyPeer(ctx.id());
    return n;
  }
  return ErrFailedPrecondition("fd not writable");
}

Result<std::size_t> PosixShim::Lseek(int fd, std::size_t offset) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  auto* file = std::get_if<FileFd>(&it->second);
  if (file == nullptr) {
    return ErrFailedPrecondition("lseek on non-file");
  }
  file->offset = offset;
  return offset;
}

Status PosixShim::Close(GuestContext& ctx, int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  if (auto* file = std::get_if<FileFd>(&it->second)) {
    (void)ctx.fs().Close(file->fid);
  }
  fds_.erase(it);
  return Status::Ok();
}

Result<std::pair<int, int>> PosixShim::Pipe(GuestContext& ctx) {
  NEPHELE_ASSIGN_OR_RETURN(auto pipe,
                           IdcPipe::Create(ctx.manager().system().hypervisor(), ctx.id()));
  std::shared_ptr<IdcPipe> shared(std::move(pipe));
  int read_fd = next_fd_++;
  int write_fd = next_fd_++;
  fds_[read_fd] = PipeFd{shared, /*write_end=*/false};
  fds_[write_fd] = PipeFd{shared, /*write_end=*/true};
  return std::make_pair(read_fd, write_fd);
}

Result<int> PosixShim::Socket(GuestContext& ctx) {
  (void)ctx;
  int fd = next_fd_++;
  fds_[fd] = SocketFd{};
  return fd;
}

Status PosixShim::Bind(GuestContext& ctx, int fd, std::uint16_t port) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  auto* sock = std::get_if<SocketFd>(&it->second);
  if (sock == nullptr) {
    return ErrFailedPrecondition("bind on non-socket");
  }
  NEPHELE_RETURN_IF_ERROR(ctx.UdpBind(port));
  sock->bound_port = port;
  return Status::Ok();
}

Status PosixShim::SendTo(GuestContext& ctx, int fd, Ipv4Addr dst_ip, std::uint16_t dst_port,
                         std::vector<std::uint8_t> payload) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrNotFound("bad fd");
  }
  auto* sock = std::get_if<SocketFd>(&it->second);
  if (sock == nullptr) {
    return ErrFailedPrecondition("sendto on non-socket");
  }
  std::uint16_t src = sock->bound_port != 0 ? sock->bound_port : 49152;
  return ctx.UdpSend(src, dst_ip, dst_port, std::move(payload));
}

}  // namespace nephele
