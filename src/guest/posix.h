// POSIX compatibility shim — the paper's goal is "to close the gap towards
// full POSIX compatibility" (Sec. 1, 7.1): this facade exposes the familiar
// POSIX surface over the unikernel runtime, mapping
//
//   fork()            -> CLONEOP cloning (continuation-passing, Sec. 4)
//   getpid()/getppid()-> domain ids (the family tree)
//   pipe()            -> IDC pipes (Sec. 4.3)
//   open/read/write   -> 9pfs-backed file descriptors
//   socket/bind/sendto-> the guest mini stack
//
// The shim is plain data, so it clones with the application object: file
// descriptors stay valid in the child (9pfs fids were duplicated by the QMP
// clone; pipes are family-shared by construction) — exactly the
// transparency contract fork() promises.

#ifndef SRC_GUEST_POSIX_H_
#define SRC_GUEST_POSIX_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/guest/guest_context.h"
#include "src/guest/ipc.h"

namespace nephele {

class PosixShim {
 public:
  PosixShim() = default;

  // --- process ---
  // fork(): see src/guest/guest_app.h for the continuation contract.
  Status Fork(GuestContext& ctx, ForkContinuation continuation) {
    return ctx.Fork(1, std::move(continuation));
  }
  static DomId GetPid(GuestContext& ctx) { return ctx.id(); }
  // getppid(): kDomInvalid for a booted (non-clone) domain, like pid 0.
  static DomId GetPpid(GuestContext& ctx);
  static void Exit(GuestContext& ctx) { ctx.Exit(); }

  // --- files (9pfs root) ---
  static constexpr int kOpenReadOnly = 0;
  static constexpr int kOpenWrite = 1;
  static constexpr int kOpenCreate = 2;
  Result<int> Open(GuestContext& ctx, const std::string& path, int flags);
  Result<std::vector<std::uint8_t>> Read(GuestContext& ctx, int fd, std::size_t count);
  Result<std::size_t> Write(GuestContext& ctx, int fd, const std::vector<std::uint8_t>& data);
  Result<std::size_t> Lseek(int fd, std::size_t offset);  // SEEK_SET only
  Status Close(GuestContext& ctx, int fd);

  // --- pipes (create BEFORE fork, like pipe(2)) ---
  // Returns {read_fd, write_fd}; both ends work from any family member.
  Result<std::pair<int, int>> Pipe(GuestContext& ctx);

  // --- sockets (UDP) ---
  Result<int> Socket(GuestContext& ctx);
  Status Bind(GuestContext& ctx, int fd, std::uint16_t port);
  Status SendTo(GuestContext& ctx, int fd, Ipv4Addr dst_ip, std::uint16_t dst_port,
                std::vector<std::uint8_t> payload);

  std::size_t OpenDescriptors() const { return fds_.size(); }

 private:
  struct FileFd {
    std::uint32_t fid = 0;
    std::size_t offset = 0;
    bool writable = false;
  };
  struct PipeFd {
    std::shared_ptr<IdcPipe> pipe;  // family-shared object
    bool write_end = false;
  };
  struct SocketFd {
    std::uint16_t bound_port = 0;  // 0 = unbound; ephemeral port on send
  };
  using FdState = std::variant<FileFd, PipeFd, SocketFd>;

  int next_fd_ = 3;  // 0/1/2 reserved, as tradition demands
  std::map<int, FdState> fds_;
};

}  // namespace nephele

#endif  // SRC_GUEST_POSIX_H_
