// POSIX-style IPC replicated as IDC (Sec. 4.3): anonymous pipes and socket
// pairs between a parent unikernel and its clones, built on IdcRegion (one
// truly-shared page per direction holding a byte ring) and IdcChannel
// notifications. Created BEFORE forking — like pipe(2) before fork(2) — so
// clones inherit the endpoints automatically.

#ifndef SRC_GUEST_IPC_H_
#define SRC_GUEST_IPC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/idc.h"

namespace nephele {

// Unidirectional byte stream over one shared page.
// Page layout: [0..3] head (read cursor), [4..7] tail (write cursor),
// [8..kPageSize) data ring.
class IdcPipe {
 public:
  static Result<std::unique_ptr<IdcPipe>> Create(Hypervisor& hv, DomId owner);

  // Writes up to the ring's free space; returns bytes accepted.
  Result<std::size_t> Write(DomId writer, const std::vector<std::uint8_t>& data);
  // Reads up to `max_len` available bytes.
  Result<std::vector<std::uint8_t>> Read(DomId reader, std::size_t max_len);

  Result<std::size_t> BytesAvailable(DomId accessor) const;
  std::size_t capacity() const { return kPageSize - kDataOffset - 1; }

  // Wakes the peer after a write (pipes use level-triggered reads; the
  // notification mirrors marking an fd readable, Sec. 5.2.2).
  Status NotifyPeer(DomId sender) { return channel_.Notify(sender); }
  EvtchnPort port() const { return channel_.port(); }
  DomId owner() const { return region_.owner(); }

 private:
  static constexpr std::size_t kHeadOffset = 0;
  static constexpr std::size_t kTailOffset = 4;
  static constexpr std::size_t kDataOffset = 8;

  IdcPipe(IdcRegion region, IdcChannel channel)
      : region_(std::move(region)), channel_(std::move(channel)) {}

  IdcRegion region_;
  IdcChannel channel_;
};

// Bidirectional: a pipe per direction, socketpair(2)-style. Endpoint 0 is
// the owner/parent side, endpoint 1 the clone side.
class IdcSocketPair {
 public:
  static Result<std::unique_ptr<IdcSocketPair>> Create(Hypervisor& hv, DomId owner);

  // endpoint: 0 = parent side, 1 = child side.
  Result<std::size_t> Send(DomId sender, int endpoint, const std::vector<std::uint8_t>& data);
  Result<std::vector<std::uint8_t>> Recv(DomId receiver, int endpoint, std::size_t max_len);

  DomId owner() const { return to_child_->owner(); }

 private:
  IdcSocketPair(std::unique_ptr<IdcPipe> to_child, std::unique_ptr<IdcPipe> to_parent)
      : to_child_(std::move(to_child)), to_parent_(std::move(to_parent)) {}

  std::unique_ptr<IdcPipe> to_child_;
  std::unique_ptr<IdcPipe> to_parent_;
};

}  // namespace nephele

#endif  // SRC_GUEST_IPC_H_
