// Guest-side 9pfs client: path-based file API over the family's backend
// process. Fid bookkeeping is plain data, so it survives CloneApp() and —
// because the backend duplicated the fid table on the QMP clone request —
// a clone's open files keep working (Sec. 5.2.1).

#ifndef SRC_GUEST_P9_CLIENT_H_
#define SRC_GUEST_P9_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/devices/p9.h"

namespace nephele {

class P9Client {
 public:
  P9Client() = default;
  P9Client(P9BackendProcess* backend, DomId dom, std::uint32_t root_fid)
      : backend_(backend), dom_(dom), root_fid_(root_fid) {}

  bool mounted() const { return backend_ != nullptr; }

  Result<std::uint32_t> Open(const std::string& path, bool writable);
  Result<std::uint32_t> Create(const std::string& path);
  Result<std::vector<std::uint8_t>> Read(std::uint32_t fid, std::size_t offset,
                                         std::size_t count);
  Result<std::size_t> Write(std::uint32_t fid, std::size_t offset,
                            const std::vector<std::uint8_t>& data);
  Result<std::size_t> Size(std::uint32_t fid);
  Status Close(std::uint32_t fid);
  Result<std::vector<std::string>> ListDir(const std::string& path);

  // Clone support: same backend process, child's (cloned) fid table.
  void RebindToDomain(DomId dom) { dom_ = dom; }
  DomId dom() const { return dom_; }

 private:
  P9BackendProcess* backend_ = nullptr;
  DomId dom_ = kDomInvalid;
  std::uint32_t root_fid_ = 0;
};

}  // namespace nephele

#endif  // SRC_GUEST_P9_CLIENT_H_
