#include "src/guest/p9_client.h"

namespace nephele {

Result<std::uint32_t> P9Client::Open(const std::string& path, bool writable) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t fid, backend_->Walk(dom_, root_fid_, path));
  Status s = backend_->Open(dom_, fid, writable);
  if (!s.ok()) {
    (void)backend_->Clunk(dom_, fid);
    return s;
  }
  return fid;
}

Result<std::uint32_t> P9Client::Create(const std::string& path) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  return backend_->Create(dom_, root_fid_, path);
}

Result<std::vector<std::uint8_t>> P9Client::Read(std::uint32_t fid, std::size_t offset,
                                                 std::size_t count) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  return backend_->Read(dom_, fid, offset, count);
}

Result<std::size_t> P9Client::Write(std::uint32_t fid, std::size_t offset,
                                    const std::vector<std::uint8_t>& data) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  return backend_->Write(dom_, fid, offset, data);
}

Result<std::size_t> P9Client::Size(std::uint32_t fid) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  return backend_->StatSize(dom_, fid);
}

Result<std::vector<std::string>> P9Client::ListDir(const std::string& path) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t fid, backend_->Walk(dom_, root_fid_, path));
  auto names = backend_->ReadDir(dom_, fid);
  (void)backend_->Clunk(dom_, fid);
  return names;
}

Status P9Client::Close(std::uint32_t fid) {
  if (!mounted()) {
    return ErrFailedPrecondition("no 9pfs mount");
  }
  return backend_->Clunk(dom_, fid);
}

}  // namespace nephele
