// The unikernel application model.
//
// Guests are event-driven: the runtime calls into the app (boot, packets,
// timers) and the app calls back through its GuestContext. fork() cannot
// duplicate a native C++ call stack, so the Fork API is continuation-passing:
//
//   ctx.Fork(1, [](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
//     if (r.is_child) { ... } else { ... use r.children ... }
//   });
//
// The runtime snapshots the app object (CloneApp()) at the fork call — the
// moment the real CLONEOP freezes the parent — and invokes the continuation
// once on the parent (r.is_child == false, rax = 0) and once on each child
// (r.is_child == true, rax = 1), each with its own context. Continuations
// must address state through `self`/`ctx`, never through captured pointers
// into the parent.

#ifndef SRC_GUEST_GUEST_APP_H_
#define SRC_GUEST_GUEST_APP_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/hypervisor/types.h"
#include "src/net/packet.h"

namespace nephele {

class GuestContext;
class GuestApp;

struct ForkResult {
  bool is_child = false;
  // Parent side only: the domain ids the hypervisor filled in (Sec. 5.1).
  std::vector<DomId> children;
};

using ForkContinuation =
    std::function<void(GuestContext& ctx, GuestApp& self, const ForkResult& result)>;

class GuestApp {
 public:
  virtual ~GuestApp() = default;

  // Invoked once after boot (and after restore). NOT invoked on clones —
  // they resume through the fork continuation instead, like fork() children.
  virtual void OnBoot(GuestContext& ctx) = 0;

  // A packet arrived on the guest's vif.
  virtual void OnPacket(GuestContext& ctx, const Packet& packet) { (void)ctx; (void)packet; }

  // An IDC notification arrived on `port`.
  virtual void OnIdcNotify(GuestContext& ctx, EvtchnPort port) { (void)ctx; (void)port; }

  // Deep copy of the whole application state; the runtime uses it to
  // materialise the child's execution state at clone time. (The page-level
  // COW cost/accounting of that state is handled by the hypervisor; this
  // copy is the semantic counterpart.)
  virtual std::unique_ptr<GuestApp> CloneApp() const = 0;

  virtual std::string_view app_name() const = 0;
};

}  // namespace nephele

#endif  // SRC_GUEST_GUEST_APP_H_
