#include "src/guest/arena.h"

namespace nephele {

GuestArena::GuestArena(Hypervisor& hv, DomId dom, Gfn first_gfn, std::size_t pages)
    : hv_(hv), dom_(dom), first_gfn_(first_gfn), pages_(pages) {
  free_list_.push_back(FreeRange{0, pages * kPageSize});
}

Result<ArenaBlock> GuestArena::Allocate(std::size_t bytes, bool resident) {
  if (bytes == 0) {
    return ErrInvalidArgument("zero-size allocation");
  }
  // 16-byte alignment, like tinyalloc's default block granularity.
  std::size_t need = (bytes + 15) & ~std::size_t{15};
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->size >= need) {
      ArenaBlock block{it->offset, need};
      it->offset += need;
      it->size -= need;
      if (it->size == 0) {
        free_list_.erase(it);
      }
      allocated_ += need;
      if (resident) {
        NEPHELE_RETURN_IF_ERROR(Touch(block));
      }
      return block;
    }
  }
  return ErrResourceExhausted("guest heap exhausted");
}

Status GuestArena::Free(const ArenaBlock& block) {
  if (block.offset + block.size > capacity_bytes()) {
    return ErrOutOfRange("block outside arena");
  }
  allocated_ -= std::min(allocated_, block.size);
  // Insert sorted and coalesce with neighbours.
  auto it = free_list_.begin();
  while (it != free_list_.end() && it->offset < block.offset) {
    ++it;
  }
  it = free_list_.insert(it, FreeRange{block.offset, block.size});
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      free_list_.erase(it);
      it = prev;
    }
  }
  auto next = std::next(it);
  if (next != free_list_.end() && it->offset + it->size == next->offset) {
    it->size += next->size;
    free_list_.erase(next);
  }
  return Status::Ok();
}

Status GuestArena::Touch(const ArenaBlock& block) {
  Gfn first = first_gfn_ + static_cast<Gfn>(block.offset / kPageSize);
  Gfn last = first_gfn_ + static_cast<Gfn>((block.offset + block.size - 1) / kPageSize);
  return hv_.TouchGuestPages(dom_, first, last - first + 1);
}

Status GuestArena::Write(std::size_t offset, const void* src, std::size_t len) {
  if (offset + len > capacity_bytes()) {
    return ErrOutOfRange("write outside arena");
  }
  const auto* bytes = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    NEPHELE_RETURN_IF_ERROR(hv_.WriteGuestPage(dom_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status GuestArena::Read(std::size_t offset, void* out, std::size_t len) const {
  if (offset + len > capacity_bytes()) {
    return ErrOutOfRange("read outside arena");
  }
  auto* bytes = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    Gfn gfn = first_gfn_ + static_cast<Gfn>(offset / kPageSize);
    std::size_t in_page = offset % kPageSize;
    std::size_t chunk = std::min(len, kPageSize - in_page);
    NEPHELE_RETURN_IF_ERROR(hv_.ReadGuestPage(dom_, gfn, in_page, bytes, chunk));
    bytes += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

}  // namespace nephele
