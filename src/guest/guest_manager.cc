#include "src/guest/guest_manager.h"

#include "src/base/log.h"

namespace nephele {

// ---------------------------------------------------------------------------
// GuestContext
// ---------------------------------------------------------------------------

GuestContext::GuestContext(GuestManager& manager, DomId dom) : manager_(manager), dom_(dom) {}

Status GuestContext::Fork(unsigned num_children, ForkContinuation continuation) {
  return manager_.Fork(dom_, num_children, std::move(continuation));
}

Ipv4Addr GuestContext::ip() const {
  return net_ != nullptr && net_->frontend() != nullptr ? net_->frontend()->ip() : 0;
}

VbdFrontend* GuestContext::block() {
  GuestDevices* devices = manager_.system().toolstack().FindDevices(dom_);
  return devices != nullptr ? devices->vbd.get() : nullptr;
}

Status GuestContext::ConsoleWrite(const std::string& text) {
  return manager_.system().devices().console().GuestWrite(dom_, text);
}

SimTime GuestContext::Now() const { return manager_.system().loop().Now(); }

void GuestContext::Post(SimDuration delay, std::function<void(GuestContext&)> fn) {
  GuestManager& mgr = manager_;
  DomId dom = dom_;
  mgr.system().loop().Post(delay, [&mgr, dom, fn = std::move(fn)] {
    GuestContext* ctx = mgr.ContextOf(dom);
    if (ctx != nullptr) {
      fn(*ctx);
    }
  });
}

void GuestContext::Exit() {
  GuestManager& mgr = manager_;
  DomId dom = dom_;
  mgr.system().loop().Post(SimDuration::Micros(50), [&mgr, dom] { (void)mgr.Destroy(dom); });
}

// ---------------------------------------------------------------------------
// GuestManager
// ---------------------------------------------------------------------------

GuestManager::GuestManager(Host& system) : system_(system) {
  system_.clone_engine().AddObserver(this);
}

GuestManager::~GuestManager() { system_.clone_engine().RemoveObserver(this); }

void GuestManager::OnResume(DomId dom, bool is_child) { OnCloneResume(dom, is_child); }

void GuestManager::OnCloneAborted(DomId parent, DomId child) {
  pending_child_parent_.erase(child);
  auto fit = pending_forks_.find(parent);
  if (fit == pending_forks_.end()) {
    return;
  }
  fit->second.snapshots.erase(child);
  std::erase(fit->second.children, child);
}

std::unique_ptr<GuestContext> GuestManager::BuildContext(DomId dom, const DomainConfig& config,
                                                         const GuestContext* parent_ctx) {
  auto ctx = std::make_unique<GuestContext>(*this, dom);
  GuestDevices* devices = system_.toolstack().FindDevices(dom);

  auto stack = std::make_unique<MiniStack>(
      devices != nullptr && devices->net != nullptr ? devices->net.get() : nullptr);
  if (parent_ctx != nullptr && parent_ctx->net_ != nullptr) {
    stack->CopyStateFrom(*parent_ctx->net_);
  }
  ctx->AttachNet(std::move(stack));

  const GuestMemoryLayout layout =
      ComputeGuestLayout(config, system_.hypervisor().config().min_domain_pages);
  if (parent_ctx != nullptr && parent_ctx->arena_ != nullptr) {
    // The child's heap has the same layout and allocation metadata as the
    // parent's (it lives in cloned pages); only the p2m it operates on
    // differs.
    auto arena = std::make_unique<GuestArena>(*parent_ctx->arena_);
    arena->RebindToDomain(dom);
    ctx->AttachArena(std::move(arena));
  } else {
    ctx->AttachArena(std::make_unique<GuestArena>(
        system_.hypervisor(), dom, static_cast<Gfn>(layout.heap_first_gfn), layout.heap_pages));
  }

  if (devices != nullptr && devices->p9 != nullptr) {
    P9Client fs(devices->p9, dom, devices->p9_root_fid);
    if (parent_ctx != nullptr) {
      fs = parent_ctx->fs_;
      fs.RebindToDomain(dom);
    }
    ctx->AttachFs(fs);
  }
  return ctx;
}

void GuestManager::WireDelivery(DomId /*dom*/, GuestInstance& instance) {
  GuestApp* app = instance.app.get();
  GuestContext* ctx = instance.ctx.get();
  MiniStack* stack = &ctx->net();
  if (stack->frontend() != nullptr) {
    stack->frontend()->set_receive_handler(
        [stack](const Packet& p) { stack->OnFrameReceived(p); });
  }
  stack->SetDeliveryHandler([app, ctx](const Packet& p) { app->OnPacket(*ctx, p); });
}

Result<DomId> GuestManager::Launch(const DomainConfig& config, std::unique_ptr<GuestApp> app) {
  NEPHELE_ASSIGN_OR_RETURN(DomId dom, system_.toolstack().CreateDomain(config));
  GuestInstance instance;
  instance.app = std::move(app);
  instance.ctx = BuildContext(dom, config, /*parent_ctx=*/nullptr);
  auto [it, inserted] = guests_.emplace(dom, std::move(instance));
  WireDelivery(dom, it->second);
  // Unikernel init runs inside the guest; OnBoot fires once it is done.
  SimDuration boot = system_.costs().guest_boot;
  system_.loop().Post(boot, [this, dom] {
    auto git = guests_.find(dom);
    if (git != guests_.end()) {
      git->second.app->OnBoot(*git->second.ctx);
    }
  });
  return dom;
}

Result<DomId> GuestManager::Restore(const DomainImage& image, std::unique_ptr<GuestApp> app) {
  NEPHELE_ASSIGN_OR_RETURN(DomId dom, system_.toolstack().RestoreDomain(image));
  GuestInstance instance;
  instance.app = std::move(app);
  instance.ctx = BuildContext(dom, image.config, /*parent_ctx=*/nullptr);
  auto [it, inserted] = guests_.emplace(dom, std::move(instance));
  WireDelivery(dom, it->second);
  SimDuration resume = system_.costs().guest_boot;
  system_.loop().Post(resume, [this, dom] {
    auto git = guests_.find(dom);
    if (git != guests_.end()) {
      git->second.app->OnBoot(*git->second.ctx);
    }
  });
  return dom;
}

Status GuestManager::Fork(DomId parent, unsigned num_children, ForkContinuation continuation,
                          DomId caller) {
  return ForkChildren(parent, num_children, std::move(continuation), caller).status();
}

Result<std::vector<DomId>> GuestManager::ForkChildren(DomId parent, unsigned num_children,
                                                      ForkContinuation continuation,
                                                      DomId caller) {
  auto git = guests_.find(parent);
  if (git == guests_.end()) {
    return ErrNotFound("no such guest");
  }
  if (pending_forks_.contains(parent)) {
    return ErrFailedPrecondition("fork already in flight for this guest");
  }
  const Domain* d = system_.hypervisor().FindDomain(parent);
  if (d == nullptr || d->start_info_gfn == kInvalidGfn) {
    return ErrInternal("parent domain incomplete");
  }
  CloneRequest req;
  req.caller = caller == kDomInvalid ? parent : caller;
  req.parent = parent;
  req.start_info_mfn = d->p2m[d->start_info_gfn].mfn;
  req.num_children = num_children;

  NEPHELE_ASSIGN_OR_RETURN(std::vector<DomId> children, system_.clone_engine().Clone(req));

  PendingFork pending;
  pending.continuation = std::move(continuation);
  pending.children = children;
  for (DomId child : children) {
    // The snapshot is the child's execution state at CLONEOP time.
    pending.snapshots[child] = git->second.app->CloneApp();
    pending_child_parent_[child] = parent;
  }
  pending_forks_[parent] = std::move(pending);
  return children;
}

void GuestManager::MaterialiseChild(DomId child, PendingFork& pending) {
  auto sit = pending.snapshots.find(child);
  if (sit == pending.snapshots.end()) {
    return;
  }
  DomId parent = pending_child_parent_[child];
  const DomainConfig* cfg = system_.toolstack().FindConfig(child);
  GuestContext* parent_ctx = ContextOf(parent);
  GuestInstance instance;
  instance.app = std::move(sit->second);
  instance.ctx = BuildContext(child, cfg != nullptr ? *cfg : DomainConfig{}, parent_ctx);
  pending.snapshots.erase(sit);
  auto [it, inserted] = guests_.emplace(child, std::move(instance));
  WireDelivery(child, it->second);

  if (pending.continuation) {
    ForkResult result;
    result.is_child = true;
    pending.continuation(*it->second.ctx, *it->second.app, result);
  }
}

void GuestManager::OnCloneResume(DomId dom, bool is_child) {
  if (is_child) {
    auto pit = pending_child_parent_.find(dom);
    if (pit == pending_child_parent_.end()) {
      return;
    }
    DomId parent = pit->second;
    auto fit = pending_forks_.find(parent);
    if (fit != pending_forks_.end()) {
      MaterialiseChild(dom, fit->second);
    }
    pending_child_parent_.erase(pit);
    return;
  }
  // Parent resumed: every child completed its second stage.
  auto fit = pending_forks_.find(dom);
  if (fit == pending_forks_.end()) {
    return;
  }
  // Children configured to start paused were not resumed; materialise them
  // now so they exist (paused) for the host to drive (fuzzing).
  for (DomId child : fit->second.children) {
    if (pending_child_parent_.contains(child)) {
      MaterialiseChild(child, fit->second);
      pending_child_parent_.erase(child);
    }
  }
  PendingFork pending = std::move(fit->second);
  pending_forks_.erase(fit);
  if (pending.continuation) {
    auto git = guests_.find(dom);
    if (git != guests_.end()) {
      ForkResult result;
      result.is_child = false;
      result.children = pending.children;
      pending.continuation(*git->second.ctx, *git->second.app, result);
    }
  }
}

Result<DomId> GuestManager::MigrateTo(GuestManager& target, DomId dom) {
  auto it = guests_.find(dom);
  if (it == guests_.end()) {
    return ErrNotFound("no such guest");
  }
  // Snapshot the app and the runtime state that lives in guest memory
  // (socket bindings, heap bookkeeping) before the source is torn down.
  std::unique_ptr<GuestApp> app = it->second.app->CloneApp();
  MiniStack stack_snapshot(nullptr);
  stack_snapshot.CopyStateFrom(it->second.ctx->net());
  GuestArena arena_snapshot(it->second.ctx->arena());
  NEPHELE_ASSIGN_OR_RETURN(MigrationStream stream, system_.toolstack().MigrateOut(dom));
  guests_.erase(dom);

  NEPHELE_ASSIGN_OR_RETURN(DomId new_dom, target.system_.toolstack().MigrateIn(stream));
  GuestInstance instance;
  instance.app = std::move(app);
  instance.ctx = target.BuildContext(new_dom, stream.config, /*parent_ctx=*/nullptr);
  auto [git, inserted] = target.guests_.emplace(new_dom, std::move(instance));
  target.WireDelivery(new_dom, git->second);
  git->second.ctx->net().CopyStateFrom(stack_snapshot);
  git->second.ctx->arena().AdoptAllocationsFrom(arena_snapshot);
  return new_dom;
}

Status GuestManager::Destroy(DomId dom) {
  auto it = guests_.find(dom);
  if (it == guests_.end()) {
    return ErrNotFound("no such guest");
  }
  guests_.erase(it);
  return system_.toolstack().DestroyDomain(dom);
}

GuestApp* GuestManager::AppOf(DomId dom) {
  auto it = guests_.find(dom);
  return it == guests_.end() ? nullptr : it->second.app.get();
}

GuestContext* GuestManager::ContextOf(DomId dom) {
  auto it = guests_.find(dom);
  return it == guests_.end() ? nullptr : it->second.ctx.get();
}

}  // namespace nephele
