// GuestContext: what a unikernel application sees of its environment — the
// Unikraft-side API surface: fork, sockets, files, console, timers, heap.

#ifndef SRC_GUEST_GUEST_CONTEXT_H_
#define SRC_GUEST_GUEST_CONTEXT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/guest/arena.h"
#include "src/guest/guest_app.h"
#include "src/guest/ministack.h"
#include "src/devices/vbd.h"
#include "src/guest/p9_client.h"

namespace nephele {

class GuestManager;

class GuestContext {
 public:
  GuestContext(GuestManager& manager, DomId dom);

  DomId id() const { return dom_; }
  GuestManager& manager() { return manager_; }

  // --- fork() (Sec. 4/5.1): clones this VM `num_children` times. The
  // continuation runs once on the parent and once on each child; see
  // src/guest/guest_app.h for the exact contract. ---
  Status Fork(unsigned num_children, ForkContinuation continuation);

  // --- Networking ---
  MiniStack& net() { return *net_; }
  Status UdpBind(std::uint16_t port) { return net_->UdpBind(port); }
  Status UdpSend(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                 std::vector<std::uint8_t> payload) {
    return net_->UdpSend(src_port, dst_ip, dst_port, std::move(payload));
  }
  Status TcpListen(std::uint16_t port) { return net_->TcpListen(port); }
  Status TcpReply(const Packet& request, std::vector<std::uint8_t> payload) {
    return net_->TcpReply(request, std::move(payload));
  }
  Ipv4Addr ip() const;

  // --- Filesystem (9pfs root) ---
  P9Client& fs() { return fs_; }

  // --- Block device (vbd extension; null when the guest has none) ---
  VbdFrontend* block();

  // --- Heap ---
  GuestArena& arena() { return *arena_; }

  // --- Console ---
  Status ConsoleWrite(const std::string& text);

  // --- Time ---
  SimTime Now() const;
  // One-shot guest timer; the callback is skipped if the domain is gone or
  // paused-forever by then.
  void Post(SimDuration delay, std::function<void(GuestContext&)> fn);

  // Terminates this guest (exit() analogue): the toolstack destroys the
  // domain asynchronously.
  void Exit();

  // Runtime wiring (GuestManager only).
  void AttachNet(std::unique_ptr<MiniStack> stack) { net_ = std::move(stack); }
  void AttachArena(std::unique_ptr<GuestArena> arena) { arena_ = std::move(arena); }
  void AttachFs(P9Client fs) { fs_ = fs; }

 private:
  friend class GuestManager;

  GuestManager& manager_;
  DomId dom_;
  std::unique_ptr<MiniStack> net_;
  std::unique_ptr<GuestArena> arena_;
  P9Client fs_;
};

}  // namespace nephele

#endif  // SRC_GUEST_GUEST_CONTEXT_H_
