#include "src/guest/mq.h"

#include "src/base/units.h"

namespace nephele {

Result<std::unique_ptr<IdcMessageQueue>> IdcMessageQueue::Create(Hypervisor& hv, DomId owner,
                                                                 std::size_t slots) {
  if (slots < 2) {
    return ErrInvalidArgument("need at least 2 slots");
  }
  std::size_t bytes = kSlotsOffset + slots * kSlotSize;
  std::size_t pages = BytesToPages(bytes);
  NEPHELE_ASSIGN_OR_RETURN(IdcRegion region, IdcRegion::Create(hv, owner, pages));
  NEPHELE_ASSIGN_OR_RETURN(IdcChannel channel, IdcChannel::Create(hv, owner));
  NEPHELE_RETURN_IF_ERROR(region.StoreU32(owner, kHeadOffset, 0));
  NEPHELE_RETURN_IF_ERROR(region.StoreU32(owner, kTailOffset, 0));
  return std::unique_ptr<IdcMessageQueue>(
      new IdcMessageQueue(std::move(region), std::move(channel), slots));
}

Status IdcMessageQueue::Send(DomId sender, const std::vector<std::uint8_t>& message) {
  if (message.size() > kMaxMessage) {
    return ErrInvalidArgument("message exceeds slot size");
  }
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(sender, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(sender, kTailOffset));
  if ((tail + 1) % slots_ == head) {
    return ErrUnavailable("queue full");
  }
  std::size_t slot_at = kSlotsOffset + tail * kSlotSize;
  auto len = static_cast<std::uint32_t>(message.size());
  NEPHELE_RETURN_IF_ERROR(region_.Write(sender, slot_at, &len, sizeof(len)));
  if (!message.empty()) {
    NEPHELE_RETURN_IF_ERROR(region_.Write(sender, slot_at + 4, message.data(), message.size()));
  }
  NEPHELE_RETURN_IF_ERROR(
      region_.StoreU32(sender, kTailOffset, static_cast<std::uint32_t>((tail + 1) % slots_)));
  (void)channel_.Notify(sender);
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> IdcMessageQueue::Receive(DomId receiver) {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(receiver, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(receiver, kTailOffset));
  if (head == tail) {
    return ErrUnavailable("queue empty");
  }
  std::size_t slot_at = kSlotsOffset + head * kSlotSize;
  std::uint32_t len = 0;
  NEPHELE_RETURN_IF_ERROR(region_.Read(receiver, slot_at, &len, sizeof(len)));
  if (len > kMaxMessage) {
    return ErrInternal("corrupt slot length");
  }
  std::vector<std::uint8_t> out(len);
  if (len > 0) {
    NEPHELE_RETURN_IF_ERROR(region_.Read(receiver, slot_at + 4, out.data(), len));
  }
  NEPHELE_RETURN_IF_ERROR(
      region_.StoreU32(receiver, kHeadOffset, static_cast<std::uint32_t>((head + 1) % slots_)));
  return out;
}

Result<std::size_t> IdcMessageQueue::MessagesQueued(DomId accessor) const {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(accessor, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(accessor, kTailOffset));
  return (tail + slots_ - head) % slots_;
}

Result<std::unique_ptr<IdcSemaphore>> IdcSemaphore::Create(Hypervisor& hv, DomId owner,
                                                           std::uint32_t initial) {
  NEPHELE_ASSIGN_OR_RETURN(IdcRegion region, IdcRegion::Create(hv, owner, 1));
  NEPHELE_ASSIGN_OR_RETURN(IdcChannel channel, IdcChannel::Create(hv, owner));
  NEPHELE_RETURN_IF_ERROR(region.StoreU32(owner, 0, initial));
  return std::unique_ptr<IdcSemaphore>(new IdcSemaphore(std::move(region), std::move(channel)));
}

Status IdcSemaphore::Post(DomId caller) {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t v, region_.LoadU32(caller, 0));
  NEPHELE_RETURN_IF_ERROR(region_.StoreU32(caller, 0, v + 1));
  (void)channel_.Notify(caller);
  return Status::Ok();
}

Result<bool> IdcSemaphore::TryWait(DomId caller) {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t v, region_.LoadU32(caller, 0));
  if (v == 0) {
    return false;
  }
  NEPHELE_RETURN_IF_ERROR(region_.StoreU32(caller, 0, v - 1));
  return true;
}

Result<std::uint32_t> IdcSemaphore::Value(DomId caller) const {
  return region_.LoadU32(caller, 0);
}

}  // namespace nephele
