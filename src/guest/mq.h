// Additional IDC mechanisms — the paper's Sec. 5.3 first extension point
// ("Implementations of new IDC mechanisms in Unikraft would use the internal
// API we implemented for Nephele ... since they all rely on shared memory
// and notifications"):
//
//  * IdcMessageQueue — POSIX-mq-style datagram queue: bounded, message
//    boundaries preserved, multi-producer across the family.
//  * IdcSemaphore    — counting semaphore in a shared word, with an
//    IdcChannel notification on post.

#ifndef SRC_GUEST_MQ_H_
#define SRC_GUEST_MQ_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/idc.h"

namespace nephele {

// Datagram queue over an IDC region. Layout (one or more pages):
//   [0..3]  head slot index
//   [4..7]  tail slot index
//   [8..]   slots: kSlotCount fixed-size slots of {u32 length, payload}.
class IdcMessageQueue {
 public:
  static constexpr std::size_t kSlotSize = 256;     // 4-byte length + payload
  static constexpr std::size_t kMaxMessage = kSlotSize - 4;

  // `slots` datagrams of up to kMaxMessage bytes each.
  static Result<std::unique_ptr<IdcMessageQueue>> Create(Hypervisor& hv, DomId owner,
                                                         std::size_t slots = 62);

  // Enqueues one datagram; kUnavailable when full, kInvalidArgument when
  // oversized. Notifies the peer.
  Status Send(DomId sender, const std::vector<std::uint8_t>& message);

  // Dequeues one datagram; kUnavailable when empty.
  Result<std::vector<std::uint8_t>> Receive(DomId receiver);

  Result<std::size_t> MessagesQueued(DomId accessor) const;
  std::size_t capacity_messages() const { return slots_ - 1; }
  DomId owner() const { return region_.owner(); }
  EvtchnPort notify_port() const { return channel_.port(); }

 private:
  static constexpr std::size_t kHeadOffset = 0;
  static constexpr std::size_t kTailOffset = 4;
  static constexpr std::size_t kSlotsOffset = 8;

  IdcMessageQueue(IdcRegion region, IdcChannel channel, std::size_t slots)
      : region_(std::move(region)), channel_(std::move(channel)), slots_(slots) {}

  IdcRegion region_;
  IdcChannel channel_;
  std::size_t slots_;
};

// Counting semaphore in one shared word. Post() increments and notifies;
// TryWait() decrements when positive. Family-wide, like the region backing
// it.
class IdcSemaphore {
 public:
  static Result<std::unique_ptr<IdcSemaphore>> Create(Hypervisor& hv, DomId owner,
                                                      std::uint32_t initial = 0);

  Status Post(DomId caller);
  // Returns true when the semaphore was decremented, false when it was zero.
  Result<bool> TryWait(DomId caller);
  Result<std::uint32_t> Value(DomId caller) const;

  DomId owner() const { return region_.owner(); }

 private:
  IdcSemaphore(IdcRegion region, IdcChannel channel)
      : region_(std::move(region)), channel_(std::move(channel)) {}

  IdcRegion region_;
  IdcChannel channel_;
};

}  // namespace nephele

#endif  // SRC_GUEST_MQ_H_
