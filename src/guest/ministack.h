// Minimal lwip-like guest network stack over a netfront device: UDP sockets
// and a thin TCP flow model (listen / implicit accept / request-response).
// All mutable state is plain data so it clones with the app (Sec. 4.3:
// transparency — the stack works identically in parent and child).

#ifndef SRC_GUEST_MINISTACK_H_
#define SRC_GUEST_MINISTACK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/base/result.h"
#include "src/devices/netif.h"
#include "src/net/packet.h"

namespace nephele {

struct TcpFlow {
  FlowKey key;           // remote -> local direction
  bool established = false;
  std::uint64_t requests = 0;
};

class MiniStack {
 public:
  explicit MiniStack(NetFrontend* frontend) : frontend_(frontend) {}

  // Packets not consumed by the stack itself (UDP to bound ports, TCP data
  // on established flows) are delivered here — the runtime routes them to
  // GuestApp::OnPacket.
  using DeliveryHandler = std::function<void(const Packet&)>;
  void SetDeliveryHandler(DeliveryHandler handler) { deliver_ = std::move(handler); }

  void RebindFrontend(NetFrontend* frontend) { frontend_ = frontend; }
  NetFrontend* frontend() { return frontend_; }

  // --- UDP ---
  Status UdpBind(std::uint16_t port);
  Status UdpSend(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                 std::vector<std::uint8_t> payload);

  // --- TCP (flow-level model) ---
  Status TcpListen(std::uint16_t port);
  // Replies on the reversed tuple of `request`.
  Status TcpReply(const Packet& request, std::vector<std::uint8_t> payload);

  // Entry point wired to the frontend's receive handler.
  void OnFrameReceived(const Packet& packet);

  // Clone support: copies bindings and flows from the parent's stack (the
  // page-level state was already duplicated by the clone first stage).
  void CopyStateFrom(const MiniStack& parent);

  std::size_t established_flows() const;
  std::uint64_t packets_dropped() const { return dropped_; }
  bool IsUdpBound(std::uint16_t port) const { return udp_ports_.contains(port); }
  bool IsTcpListening(std::uint16_t port) const { return tcp_listen_ports_.contains(port); }

 private:
  NetFrontend* frontend_;
  DeliveryHandler deliver_;
  std::set<std::uint16_t> udp_ports_;
  std::set<std::uint16_t> tcp_listen_ports_;
  std::map<FlowKey, TcpFlow> flows_;
  std::uint64_t dropped_ = 0;
};

}  // namespace nephele

#endif  // SRC_GUEST_MINISTACK_H_
