#include "src/guest/ipc.h"

namespace nephele {

Result<std::unique_ptr<IdcPipe>> IdcPipe::Create(Hypervisor& hv, DomId owner) {
  NEPHELE_ASSIGN_OR_RETURN(IdcRegion region, IdcRegion::Create(hv, owner, 1));
  NEPHELE_ASSIGN_OR_RETURN(IdcChannel channel, IdcChannel::Create(hv, owner));
  NEPHELE_RETURN_IF_ERROR(region.StoreU32(owner, kHeadOffset, 0));
  NEPHELE_RETURN_IF_ERROR(region.StoreU32(owner, kTailOffset, 0));
  return std::unique_ptr<IdcPipe>(new IdcPipe(std::move(region), std::move(channel)));
}

Result<std::size_t> IdcPipe::BytesAvailable(DomId accessor) const {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(accessor, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(accessor, kTailOffset));
  std::size_t ring = capacity() + 1;
  return (tail + ring - head) % ring;
}

Result<std::size_t> IdcPipe::Write(DomId writer, const std::vector<std::uint8_t>& data) {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(writer, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(writer, kTailOffset));
  const std::size_t ring = capacity() + 1;
  std::size_t used = (tail + ring - head) % ring;
  std::size_t space = ring - 1 - used;
  std::size_t n = std::min(space, data.size());
  for (std::size_t i = 0; i < n; ++i) {
    NEPHELE_RETURN_IF_ERROR(
        region_.Write(writer, kDataOffset + ((tail + i) % ring), &data[i], 1));
  }
  NEPHELE_RETURN_IF_ERROR(
      region_.StoreU32(writer, kTailOffset, static_cast<std::uint32_t>((tail + n) % ring)));
  return n;
}

Result<std::vector<std::uint8_t>> IdcPipe::Read(DomId reader, std::size_t max_len) {
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t head, region_.LoadU32(reader, kHeadOffset));
  NEPHELE_ASSIGN_OR_RETURN(std::uint32_t tail, region_.LoadU32(reader, kTailOffset));
  const std::size_t ring = capacity() + 1;
  std::size_t avail = (tail + ring - head) % ring;
  std::size_t n = std::min(avail, max_len);
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    NEPHELE_RETURN_IF_ERROR(region_.Read(reader, kDataOffset + ((head + i) % ring), &out[i], 1));
  }
  NEPHELE_RETURN_IF_ERROR(
      region_.StoreU32(reader, kHeadOffset, static_cast<std::uint32_t>((head + n) % ring)));
  return out;
}

Result<std::unique_ptr<IdcSocketPair>> IdcSocketPair::Create(Hypervisor& hv, DomId owner) {
  NEPHELE_ASSIGN_OR_RETURN(auto to_child, IdcPipe::Create(hv, owner));
  NEPHELE_ASSIGN_OR_RETURN(auto to_parent, IdcPipe::Create(hv, owner));
  return std::unique_ptr<IdcSocketPair>(
      new IdcSocketPair(std::move(to_child), std::move(to_parent)));
}

Result<std::size_t> IdcSocketPair::Send(DomId sender, int endpoint,
                                        const std::vector<std::uint8_t>& data) {
  IdcPipe& pipe = endpoint == 0 ? *to_child_ : *to_parent_;
  NEPHELE_ASSIGN_OR_RETURN(std::size_t n, pipe.Write(sender, data));
  (void)pipe.NotifyPeer(sender);
  return n;
}

Result<std::vector<std::uint8_t>> IdcSocketPair::Recv(DomId receiver, int endpoint,
                                                      std::size_t max_len) {
  IdcPipe& pipe = endpoint == 0 ? *to_parent_ : *to_child_;
  return pipe.Read(receiver, max_len);
}

}  // namespace nephele
