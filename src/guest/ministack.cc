#include "src/guest/ministack.h"

namespace nephele {

Status MiniStack::UdpBind(std::uint16_t port) {
  if (!udp_ports_.insert(port).second) {
    return ErrAlreadyExists("port bound");
  }
  return Status::Ok();
}

Status MiniStack::UdpSend(std::uint16_t src_port, Ipv4Addr dst_ip, std::uint16_t dst_port,
                          std::vector<std::uint8_t> payload) {
  if (frontend_ == nullptr) {
    return ErrFailedPrecondition("no vif");
  }
  Packet p;
  p.proto = IpProto::kUdp;
  p.src_mac = frontend_->mac();
  p.src_ip = frontend_->ip();
  p.src_port = src_port;
  p.dst_ip = dst_ip;
  p.dst_port = dst_port;
  p.payload = std::move(payload);
  return frontend_->Send(p);
}

Status MiniStack::TcpListen(std::uint16_t port) {
  if (!tcp_listen_ports_.insert(port).second) {
    return ErrAlreadyExists("port listening");
  }
  return Status::Ok();
}

Status MiniStack::TcpReply(const Packet& request, std::vector<std::uint8_t> payload) {
  if (frontend_ == nullptr) {
    return ErrFailedPrecondition("no vif");
  }
  Packet p;
  p.proto = IpProto::kTcp;
  p.src_mac = frontend_->mac();
  p.dst_mac = request.src_mac;
  p.src_ip = request.dst_ip;
  p.src_port = request.dst_port;
  p.dst_ip = request.src_ip;
  p.dst_port = request.src_port;
  p.payload = std::move(payload);
  auto it = flows_.find(KeyOf(request));
  if (it != flows_.end()) {
    ++it->second.requests;
  }
  return frontend_->Send(p);
}

void MiniStack::OnFrameReceived(const Packet& packet) {
  if (packet.proto == IpProto::kUdp) {
    if (!udp_ports_.contains(packet.dst_port)) {
      ++dropped_;
      return;
    }
    if (deliver_) {
      deliver_(packet);
    }
    return;
  }
  // TCP.
  FlowKey key = KeyOf(packet);
  auto it = flows_.find(key);
  if (packet.tcp_flag == TcpFlag::kSyn) {
    if (!tcp_listen_ports_.contains(packet.dst_port)) {
      ++dropped_;
      return;
    }
    TcpFlow flow;
    flow.key = key;
    flow.established = true;
    flows_[key] = flow;
    // SYN-ACK handshake reply.
    Packet synack;
    synack.proto = IpProto::kTcp;
    synack.tcp_flag = TcpFlag::kSynAck;
    synack.src_mac = frontend_ != nullptr ? frontend_->mac() : 0;
    synack.dst_mac = packet.src_mac;
    synack.src_ip = packet.dst_ip;
    synack.src_port = packet.dst_port;
    synack.dst_ip = packet.src_ip;
    synack.dst_port = packet.src_port;
    if (frontend_ != nullptr) {
      (void)frontend_->Send(synack);
    }
    return;
  }
  if (packet.tcp_flag == TcpFlag::kFin) {
    flows_.erase(key);
    return;
  }
  if (it == flows_.end() || !it->second.established) {
    // Data on unknown flow: accept implicitly when the port is listening
    // (generators may skip the handshake for throughput runs).
    if (!tcp_listen_ports_.contains(packet.dst_port)) {
      ++dropped_;
      return;
    }
    TcpFlow flow;
    flow.key = key;
    flow.established = true;
    flows_[key] = flow;
  }
  if (deliver_) {
    deliver_(packet);
  }
}

void MiniStack::CopyStateFrom(const MiniStack& parent) {
  udp_ports_ = parent.udp_ports_;
  tcp_listen_ports_ = parent.tcp_listen_ports_;
  flows_ = parent.flows_;
}

std::size_t MiniStack::established_flows() const {
  std::size_t n = 0;
  for (const auto& [key, flow] : flows_) {
    if (flow.established) {
      ++n;
    }
  }
  return n;
}

}  // namespace nephele
