// tinyalloc-style guest heap allocator (the allocator the paper picked for
// Unikraft in Sec. 6.2). Block-based first-fit over a contiguous gfn range;
// allocations for *resident* memory touch their pages through the hypervisor
// so COW accounting and fork/clone costs reflect real page state.

#ifndef SRC_GUEST_ARENA_H_
#define SRC_GUEST_ARENA_H_

#include <cstdint>
#include <list>

#include "src/base/result.h"
#include "src/hypervisor/hypervisor.h"

namespace nephele {

struct ArenaBlock {
  std::size_t offset = 0;  // byte offset within the arena
  std::size_t size = 0;
};

class GuestArena {
 public:
  // Manages [first_gfn, first_gfn + pages) of `dom`'s memory.
  GuestArena(Hypervisor& hv, DomId dom, Gfn first_gfn, std::size_t pages);

  // First-fit allocation. When `resident`, every covered page is touched
  // (dirtied) immediately — the mlock()/memset() behaviour the Fig. 6
  // workload depends on.
  Result<ArenaBlock> Allocate(std::size_t bytes, bool resident = true);

  Status Free(const ArenaBlock& block);

  // Dirties the block's pages again (e.g. after a clone, to measure COW).
  Status Touch(const ArenaBlock& block);

  // Byte access within a block (bounded by the arena).
  Status Write(std::size_t offset, const void* src, std::size_t len);
  Status Read(std::size_t offset, void* out, std::size_t len) const;

  std::size_t capacity_bytes() const { return pages_ * kPageSize; }
  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t free_bytes() const { return capacity_bytes() - allocated_; }
  DomId dom() const { return dom_; }
  Gfn first_gfn() const { return first_gfn_; }

  // Re-binds the arena to a cloned domain (same layout, child's p2m).
  void RebindToDomain(DomId dom) { dom_ = dom; }

  // Adopts another arena's allocation metadata (identical layout required):
  // used when a guest migrates and its heap bookkeeping — which lives in
  // guest memory — arrives with the pages.
  void AdoptAllocationsFrom(const GuestArena& other) {
    allocated_ = other.allocated_;
    free_list_ = other.free_list_;
  }

 private:
  struct FreeRange {
    std::size_t offset;
    std::size_t size;
  };

  Hypervisor& hv_;
  DomId dom_;
  Gfn first_gfn_;
  std::size_t pages_;
  std::size_t allocated_ = 0;
  std::list<FreeRange> free_list_;
};

}  // namespace nephele

#endif  // SRC_GUEST_ARENA_H_
