// GuestManager: hosts the unikernel runtimes — one (GuestApp, GuestContext)
// pair per domain — and implements fork semantics on top of the clone
// engine: app snapshot at CLONEOP time, child materialisation when the
// second stage completes, and continuation dispatch on both sides.

#ifndef SRC_GUEST_GUEST_MANAGER_H_
#define SRC_GUEST_GUEST_MANAGER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/system.h"
#include "src/guest/guest_app.h"
#include "src/guest/guest_context.h"
#include "src/obs/clone_observer.h"

namespace nephele {

// The guest runtime registers on the clone engine like any other observer:
// OnResume drives fork continuation dispatch on both sides.
class GuestManager : public CloneObserver {
 public:
  explicit GuestManager(Host& system);
  ~GuestManager() override;

  Host& system() { return system_; }

  // Boots a domain and schedules app->OnBoot() after the guest boot delay.
  Result<DomId> Launch(const DomainConfig& config, std::unique_ptr<GuestApp> app);

  // Restores a saved image; the app is re-instantiated and OnBoot() runs
  // again (the Fig. 4 restore methodology measures time-to-ready).
  Result<DomId> Restore(const DomainImage& image, std::unique_ptr<GuestApp> app);

  // fork(): clones `parent` n times. `caller` is the requesting domain —
  // the parent for the guest path, kDom0 for host-triggered cloning
  // (fuzzing). The continuation may be null for host-driven clones.
  Status Fork(DomId parent, unsigned num_children, ForkContinuation continuation,
              DomId caller = kDomInvalid);

  // Fork variant returning the created child ids (known synchronously after
  // CLONEOP stage 1; guest state still materialises asynchronously, exactly
  // like Fork). The clone scheduler uses this as its executor so it can map
  // batch members back to the requests they serve.
  Result<std::vector<DomId>> ForkChildren(DomId parent, unsigned num_children,
                                          ForkContinuation continuation,
                                          DomId caller = kDomInvalid);

  // Destroys a guest (and its domain).
  Status Destroy(DomId dom);

  // Live-migrates a guest to another host (another NepheleSystem's
  // manager): the domain is serialized out of this system, rebuilt on the
  // target, and the app resumes there with its state intact. Refused for
  // family members (Sec. 8).
  Result<DomId> MigrateTo(GuestManager& target, DomId dom);

  GuestApp* AppOf(DomId dom);
  GuestContext* ContextOf(DomId dom);
  bool Alive(DomId dom) const { return guests_.contains(dom); }
  std::size_t NumGuests() const { return guests_.size(); }

  // CloneObserver: delivered through the event loop when a domain really
  // resumes after cloning.
  void OnResume(DomId dom, bool is_child) override;

  // CloneObserver: a child of an in-flight fork was rolled back. Drops its
  // snapshot so it is never materialised; the parent-side continuation still
  // runs (with the aborted child absent) once the batch settles.
  void OnCloneAborted(DomId parent, DomId child) override;

 private:
  friend class GuestContext;

  struct GuestInstance {
    std::unique_ptr<GuestApp> app;
    std::unique_ptr<GuestContext> ctx;
  };
  struct PendingFork {
    ForkContinuation continuation;
    std::map<DomId, std::unique_ptr<GuestApp>> snapshots;
    std::vector<DomId> children;
  };

  void OnCloneResume(DomId dom, bool is_child);
  void MaterialiseChild(DomId child, PendingFork& pending);
  // Builds the runtime plumbing (stack, arena, fs) for a domain.
  std::unique_ptr<GuestContext> BuildContext(DomId dom, const DomainConfig& config,
                                             const GuestContext* parent_ctx);
  void WireDelivery(DomId dom, GuestInstance& instance);

  Host& system_;
  std::map<DomId, GuestInstance> guests_;
  std::map<DomId, PendingFork> pending_forks_;   // keyed by parent
  std::map<DomId, DomId> pending_child_parent_;  // child -> parent
};

}  // namespace nephele

#endif  // SRC_GUEST_GUEST_MANAGER_H_
