// Coverage-guided scenario generation.
//
// Scenarios are derived from a *decision tape*: a byte string consumed left
// to right to drive every choice of a weighted-op random walk (which op,
// which domain index, which cell, which fault point). The tape is the unit
// of mutation — AflEngine flips/extends/replaces tape bytes, and the edges a
// run reports feed its coverage map, so generation gravitates toward op
// sequences that reach new executor states. When a tape runs out of bytes
// the walk continues on a SplitMix64 stream seeded from the scenario seed
// and the consumed prefix, keeping `(seed, tape) -> Scenario` a total, pure
// function: replaying a tape always rebuilds the identical scenario.

#ifndef SRC_DST_GENERATOR_H_
#define SRC_DST_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/dst/executor.h"
#include "src/dst/scenario.h"
#include "src/fuzz/afl.h"

namespace nephele {

// Pure tape decoder (exposed for tests).
Scenario ScenarioFromTape(std::uint64_t seed, const std::vector<std::uint8_t>& tape);

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t seed);

  // Produces the next scenario to run (a mutation of a queued tape).
  Scenario Next();

  // Feeds the executed scenario's coverage edges back; tapes that found new
  // edges are queued for further mutation.
  void Report(const RunResult& result);

  std::size_t corpus_size() const { return engine_.queue_size(); }
  std::size_t edges_covered() const { return engine_.edges_covered(); }

 private:
  std::uint64_t seed_;
  AflEngine engine_;
  std::vector<std::uint8_t> last_tape_;
};

}  // namespace nephele

#endif  // SRC_DST_GENERATOR_H_
