// Generic delta-debugging minimiser over an op sequence, shared by the DST
// scenario shrinker and the hvfuzz tape shrinker. The caller supplies the
// failure predicate — "re-run this candidate op list; does it still fail the
// same way?" — so the algorithm is independent of what an op is or what
// executing one means:
//
//   1. truncate — ops after the failing op are irrelevant by construction;
//   2. ddmin    — delete chunks of ops, halving the chunk size down to 1,
//                 restarting whenever a deletion sticks;
//   3. simplify — per-op operand reduction via caller-supplied variants,
//                 accepted only when the failure persists.
//
// The result is 1-minimal: removing any single remaining op makes the
// failure disappear (under the caller's fails-same predicate).

#ifndef SRC_DST_DDMIN_H_
#define SRC_DST_DDMIN_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace nephele {

template <typename OpT, typename ResultT>
struct DdminOutcome {
  std::vector<OpT> ops;  // the minimised failing op list
  ResultT result;        // its failing run
  std::size_t runs = 0;  // executions spent shrinking
};

// `run`        executes a candidate op list and returns its result.
// `fails_same` decides whether a result reproduces the original failure.
// `fail_op`    index of the op the original failure surfaced at.
// `variants`   returns simpler candidate replacements for one op (may be
//              empty); each accepted simplification often unlocks deletions.
template <typename OpT, typename ResultT>
DdminOutcome<OpT, ResultT> DdminShrink(
    std::vector<OpT> ops, ResultT failure, std::size_t fail_op,
    const std::function<ResultT(const std::vector<OpT>&)>& run,
    const std::function<bool(const ResultT&)>& fails_same,
    const std::function<std::vector<OpT>(const OpT&)>& variants) {
  DdminOutcome<OpT, ResultT> out{std::move(ops), std::move(failure), 0};

  auto still_fails = [&](const std::vector<OpT>& candidate) {
    ++out.runs;
    ResultT r = run(candidate);
    if (fails_same(r)) {
      out.ops = candidate;
      out.result = std::move(r);
      return true;
    }
    return false;
  };

  // Truncate.
  if (fail_op + 1 < out.ops.size()) {
    std::vector<OpT> candidate = out.ops;
    candidate.resize(fail_op + 1);
    (void)still_fails(candidate);
  }

  // ddmin: chunked deletion with halving granularity.
  auto deletion_pass = [&] {
    bool shrunk = false;
    std::size_t chunk = std::max<std::size_t>(out.ops.size() / 2, 1);
    while (chunk >= 1) {
      bool progress = false;
      for (std::size_t start = 0; start < out.ops.size();) {
        std::vector<OpT> candidate = out.ops;
        const std::size_t end = std::min(start + chunk, candidate.size());
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start),
                        candidate.begin() + static_cast<std::ptrdiff_t>(end));
        if (!candidate.empty() && still_fails(candidate)) {
          progress = true;
          shrunk = true;
          // out.ops changed; retry the same start against the shorter list.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !progress) {
        break;
      }
      if (!progress) {
        chunk /= 2;
      }
    }
    return shrunk;
  };

  auto simplify_pass = [&] {
    bool shrunk = false;
    for (std::size_t i = 0; i < out.ops.size(); ++i) {
      for (const OpT& simpler : variants(out.ops[i])) {
        std::vector<OpT> candidate = out.ops;
        candidate[i] = simpler;
        if (still_fails(candidate)) {
          shrunk = true;
          break;  // re-derive variants from the new op on the next pass
        }
      }
    }
    return shrunk;
  };

  while (deletion_pass() || simplify_pass()) {
    // Either pass shrinking re-opens opportunities for the other; iterate to
    // a combined fixpoint.
  }
  return out;
}

}  // namespace nephele

#endif  // SRC_DST_DDMIN_H_
