#include "src/dst/generator.h"

#include "src/dst/reference_model.h"
#include "src/sim/rng.h"

namespace nephele {

namespace {

// Fault points worth arming in generated scenarios: the clone, reset and
// xenstore paths the oracle exercises. Probability faults are avoided here —
// NthHit specs keep the injected error at a tape-chosen hit, so a shrunk
// scenario still fires it.
constexpr const char* kFaultMenu[] = {
    "clone/stage1/create_domain",
    "clone/stage1/memory",
    "clone/stage1/share",
    "clone/stage1/page_tables",
    "clone/stage1/grants",
    "clone/stage1/evtchns",
    "clone/reset",
    "xencloned/stage2",
    "hypervisor/frame_alloc",
    "hypervisor/cow_resolve",
    "xenstore/xs_clone",
    "sched/admit",
    "sched/dispatch",
    "sched/park",
    "lazy/stream",
    "lazy/demand_fault",
};

// Tape reader: consumes mutation-controlled bytes first, then falls back to
// a deterministic stream derived from everything consumed so far.
class Tape {
 public:
  Tape(std::uint64_t seed, const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes), fallback_(Mix(seed, bytes)) {}

  std::uint8_t Byte() {
    if (pos_ < bytes_.size()) {
      return bytes_[pos_++];
    }
    return static_cast<std::uint8_t>(fallback_.NextU64());
  }

  std::uint32_t Below(std::uint32_t bound) { return bound == 0 ? 0 : Byte() % bound; }

 private:
  static std::uint64_t Mix(std::uint64_t seed, const std::vector<std::uint8_t>& bytes) {
    std::uint64_t h = seed ^ 0x6e657068656c65ULL;  // "nephele"
    for (std::uint8_t b : bytes) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
    return h;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  Rng fallback_;
};

struct Weighted {
  OpKind kind;
  std::uint32_t weight;
};

// The walk's op distribution. Writes dominate (they drive COW churn, the
// richest invariant surface); structural ops are rarer so scenarios keep a
// small, shrinkable domain population.
constexpr Weighted kWeights[] = {
    {OpKind::kLaunchGuest, 3}, {OpKind::kCloneBatch, 6}, {OpKind::kCowWrite, 10},
    {OpKind::kCloneReset, 4},  {OpKind::kDestroy, 2},    {OpKind::kMigrateOut, 1},
    {OpKind::kMigrateIn, 1},   {OpKind::kArmFault, 2},   {OpKind::kDisarmFaults, 2},
    {OpKind::kDeviceIo, 4},    {OpKind::kAdvanceTime, 2}, {OpKind::kSchedAcquire, 4},
    {OpKind::kSchedRelease, 3}, {OpKind::kCloneLazy, 5},  {OpKind::kTouchUnmapped, 6},
};

}  // namespace

Scenario ScenarioFromTape(std::uint64_t seed, const std::vector<std::uint8_t>& tape) {
  Tape t(seed, tape);
  Scenario scenario;
  scenario.seed = seed;

  constexpr std::uint32_t kTotalWeight = [] {
    std::uint32_t sum = 0;
    for (const Weighted& w : kWeights) {
      sum += w.weight;
    }
    return sum;
  }();

  const std::size_t num_ops = 8 + t.Below(25);
  // Approximate live count, only used to bias the walk (the executor
  // re-resolves indices modulo the actual live set).
  std::uint32_t live = 0;
  bool armed = false;

  // Every scenario opens with a root guest so early ops have a target.
  Op boot;
  boot.kind = OpKind::kLaunchGuest;
  scenario.ops.push_back(boot);
  ++live;

  while (scenario.ops.size() < num_ops) {
    std::uint32_t roll = t.Below(kTotalWeight);
    OpKind kind = OpKind::kLaunchGuest;
    for (const Weighted& w : kWeights) {
      if (roll < w.weight) {
        kind = w.kind;
        break;
      }
      roll -= w.weight;
    }

    Op op;
    op.kind = kind;
    switch (kind) {
      case OpKind::kLaunchGuest:
        ++live;
        break;
      case OpKind::kCloneBatch:
        op.dom = t.Below(live != 0 ? live : 1);
        op.n = 1 + t.Below(4);
        op.workers = t.Below(5);  // 0 = keep current thread count
        live += op.n;
        break;
      case OpKind::kCowWrite:
        op.dom = t.Below(live != 0 ? live : 1);
        op.slot = t.Below(ReferenceModel::kCells);
        op.value = 1 + t.Below(255);
        break;
      case OpKind::kCloneReset:
      case OpKind::kDestroy:
      case OpKind::kMigrateOut:
        op.dom = t.Below(live != 0 ? live : 1);
        if (kind != OpKind::kCloneReset && live > 0) {
          --live;
        }
        break;
      case OpKind::kMigrateIn:
        op.slot = t.Byte();
        ++live;
        break;
      case OpKind::kArmFault:
        op.point = kFaultMenu[t.Below(std::size(kFaultMenu))];
        op.spec = FaultSpec::NthHit(1 + t.Below(20));
        armed = true;
        break;
      case OpKind::kDisarmFaults:
        if (!armed) {
          continue;  // pointless op; spend the byte, emit nothing
        }
        armed = false;
        break;
      case OpKind::kDeviceIo:
        op.dom = t.Below(live != 0 ? live : 1);
        op.slot = t.Below(8);
        op.value = t.Byte();
        break;
      case OpKind::kAdvanceTime:
        op.amount = static_cast<std::uint64_t>(1 + t.Byte()) * 1000;
        break;
      case OpKind::kSchedAcquire:
        op.dom = t.Below(live != 0 ? live : 1);
        op.n = 1 + t.Below(2);
        live += op.n;  // approximate: grants may come warm or be rejected
        break;
      case OpKind::kSchedRelease:
        op.slot = t.Byte();
        break;
      case OpKind::kCloneLazy:
        op.dom = t.Below(live != 0 ? live : 1);
        op.n = 1 + t.Below(4);
        op.workers = t.Below(5);  // 0 = keep current thread count
        op.slot = t.Below(ReferenceModel::kTrackedPages);  // hot-page hint
        live += op.n;
        break;
      case OpKind::kTouchUnmapped:
        op.dom = t.Below(live != 0 ? live : 1);
        op.slot = t.Below(ReferenceModel::kTrackedPages);
        op.value = 1 + t.Below(255);
        break;
    }
    scenario.ops.push_back(std::move(op));
  }

  // Leave no fault armed at scenario end: the teardown phase asserts exact
  // frame conservation, which injected destroy failures would void.
  if (armed) {
    Op disarm;
    disarm.kind = OpKind::kDisarmFaults;
    scenario.ops.push_back(disarm);
  }
  return scenario;
}

ScenarioGenerator::ScenarioGenerator(std::uint64_t seed) : seed_(seed), engine_(seed) {
  // Seed tapes of graded length: the empty tape (pure fallback walk) plus a
  // few byte ramps give the mutator distinct starting shapes.
  engine_.AddSeed({});
  for (std::uint8_t len : {4, 12, 32}) {
    std::vector<std::uint8_t> ramp(len);
    for (std::uint8_t i = 0; i < len; ++i) {
      ramp[i] = static_cast<std::uint8_t>(i * 7 + len);
    }
    engine_.AddSeed(std::move(ramp));
  }
}

Scenario ScenarioGenerator::Next() {
  last_tape_ = engine_.NextInput();
  return ScenarioFromTape(seed_, last_tape_);
}

void ScenarioGenerator::Report(const RunResult& result) {
  engine_.ReportResult(last_tape_, result.edges, !result.ok());
}

}  // namespace nephele
